// Command tracegen manages the persistent trace store: it generates
// benchmark traces in bulk (in parallel, ahead of any experiment run),
// inspects stored traces, and verifies store integrity.
//
// Usage:
//
//	tracegen generate -tracedir DIR [-bench LIST] [-pes LIST] [-mode auto|par|seq] [-par N] [-shards K] [-v]
//	tracegen ls       -tracedir DIR
//	tracegen inspect  -tracedir DIR | file.rwt2...
//	tracegen verify   -tracedir DIR [-repair] | file.rwt2...
//
// generate accepts -cpuprofile/-memprofile to capture pprof profiles
// of bulk generation (the emulator + codec hot path):
//
//	tracegen generate -cpuprofile cpu.out -tracedir traces -bench qsort -pes 4
//	go tool pprof cpu.out
//
// generate runs the emulator once per missing (benchmark, PEs) cell —
// independent cells concurrently on a bounded worker pool — streaming
// each trace into the store's compact codec as it is produced, so even
// traces larger than RAM generate in constant memory. -bench accepts a
// comma-separated list of benchmark names (parameterized variants like
// qsort-2000 included) or the presets "paper", "large" and "all";
// -mode auto traces each PE count parallel, plus the 1-PE cell as the
// sequential WAM baseline (the convention the experiment drivers use).
//
// ls prints one line per stored trace. inspect decodes headers (and,
// for a store, footers) and prints benchmark, PEs, mode, emulator
// version, reference counts and bytes/ref. verify fully decodes every
// trace, checking header, chunk CRCs and footer totals.
//
// Example: warm the store for the full experiment sweep, then run it
// without a single emulator execution:
//
//	tracegen generate -tracedir traces -bench all -pes 1,2,4,8
//	experiments -tracedir traces -exp all
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro"

	"repro/internal/cliflag"
	"repro/internal/profflag"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "generate":
		cmdGenerate(args)
	case "ls":
		cmdLs(args)
	case "inspect":
		cmdInspect(args)
	case "verify":
		cmdVerify(args)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown command %q\n", cmd)
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracegen generate -tracedir DIR [-bench LIST] [-pes LIST] [-mode auto|par|seq] [-par N] [-shards K] [-v]
  tracegen ls       -tracedir DIR
  tracegen inspect  -tracedir DIR | file.rwt2...
  tracegen verify   -tracedir DIR [-repair] | file.rwt2...`)
	os.Exit(2)
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

// stopProfiles is installed before any work, so an error exit still
// flushes a valid CPU profile (see internal/profflag).
var stopProfiles = func() {}

func startProfiles(cpuPath, memPath string) func() {
	return profflag.Start(cpuPath, memPath, fatal)
}

// parseBenches expands a -bench list (names or presets) into
// benchmarks.
func parseBenches(list string) ([]rapwam.Benchmark, error) {
	var names []string
	for _, tok := range strings.Split(list, ",") {
		switch tok = strings.TrimSpace(tok); tok {
		case "":
		case "paper":
			for _, b := range rapwam.PaperBenchmarks() {
				names = append(names, b.Name)
			}
		case "large":
			for _, b := range rapwam.LargeBenchmarks() {
				names = append(names, b.Name)
			}
		case "all":
			names = append(names, rapwam.BenchmarkNames()...)
		default:
			names = append(names, tok)
		}
	}
	seen := make(map[string]bool)
	var out []rapwam.Benchmark
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		b, ok := rapwam.BenchmarkByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		out = append(out, b)
	}
	return out, nil
}

// parsePEs parses a comma-separated PE-count list.
func parsePEs(list string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 || n > rapwam.MaxPEs {
			return nil, fmt.Errorf("bad PE count %q (need 1..%d)", tok, rapwam.MaxPEs)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// cell is one (benchmark, PEs, sequential) generation target.
type cell struct {
	b   rapwam.Benchmark
	pes int
	seq bool
}

func cmdGenerate(args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	var (
		dir     = fs.String("tracedir", "", "trace store directory (required)")
		benches = fs.String("bench", "paper", "benchmarks: comma-separated names, or paper|large|all")
		pesList = fs.String("pes", "1,2,4,8", "comma-separated PE counts")
		mode    = fs.String("mode", "auto", "auto (parallel + 1-PE sequential baseline) | par | seq")
		par     = cliflag.Par(fs)
		shards  = cliflag.Shards(fs)
		execSh  = cliflag.ExecShards(fs)
		verbose = fs.Bool("v", false, "report each generated cell on stderr")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the generation to this file")
		memProf = fs.String("memprofile", "", "write a heap profile (after generation) to this file")
	)
	fs.Parse(args)
	if *dir == "" || fs.NArg() != 0 {
		usage()
	}
	parN, err := cliflag.Resolve("par", *par)
	if err != nil {
		fatal(err)
	}
	shardsN, err := cliflag.Resolve("shards", *shards)
	if err != nil {
		fatal(err)
	}
	execN, err := cliflag.Resolve("exec-shards", *execSh)
	if err != nil {
		fatal(err)
	}
	stopProfiles = startProfiles(*cpuProf, *memProf)
	defer stopProfiles()
	bs, err := parseBenches(*benches)
	if err != nil {
		fatal(err)
	}
	pes, err := parsePEs(*pesList)
	if err != nil {
		fatal(err)
	}

	var cells []cell
	type cellID struct {
		name string
		pes  int
		seq  bool
	}
	seen := make(map[cellID]bool)
	add := func(c cell) {
		id := cellID{c.b.Name, c.pes, c.seq}
		if !seen[id] {
			seen[id] = true
			cells = append(cells, c)
		}
	}
	for _, b := range bs {
		for _, p := range pes {
			switch *mode {
			case "auto":
				// The experiment drivers' convention: parallel traces at
				// every PE count, plus the 1-PE sequential WAM baseline
				// every stats driver compares against — even when 1 is
				// not in -pes, so a warmed store really is warm.
				add(cell{b, p, false})
				add(cell{b, 1, true})
			case "par":
				add(cell{b, p, false})
			case "seq":
				add(cell{b, p, true})
			default:
				fatal(fmt.Errorf("bad -mode %q", *mode))
			}
		}
	}

	store, err := rapwam.SetTraceDir(*dir)
	if err != nil {
		fatal(err)
	}
	rapwam.SetParallelism(parN)
	rapwam.SetShards(shardsN)
	rapwam.SetExecShards(execN)
	if *verbose {
		rapwam.SetProgress(func(msg string) {
			fmt.Fprintf(os.Stderr, "tracegen: %s\n", msg)
		})
	}

	// Ctrl-C / SIGTERM cancel generation: in-flight engine runs abort,
	// their partial temp files are removed, and completed cells stay.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	before := store.Stats()
	err = rapwam.GenerateTraces(ctx, cells2targets(cells))
	if err != nil {
		if errors.Is(err, context.Canceled) {
			after := store.Stats()
			stopProfiles()
			fmt.Fprintf(os.Stderr, "tracegen: interrupted: %d of %d cells generated before the signal; completed cells stay valid, rerun to finish\n",
				after.Puts-before.Puts, len(cells))
			os.Exit(130)
		}
		fatal(err)
	}
	after := store.Stats()
	fmt.Printf("store %s: %d cells requested, %d generated, %d already present (%d emulator runs)\n",
		*dir, len(cells), after.Puts-before.Puts,
		len(cells)-int(after.Puts-before.Puts), rapwam.EngineRuns())
}

// cells2targets converts the CLI's cell list to the API's target type.
func cells2targets(cells []cell) []rapwam.TraceTarget {
	out := make([]rapwam.TraceTarget, len(cells))
	for i, c := range cells {
		out[i] = rapwam.TraceTarget{Benchmark: c.b, PEs: c.pes, Sequential: c.seq}
	}
	return out
}

// storeEntries lists a store directory via the public API.
func storeEntries(dir string) (*rapwam.TraceStore, []rapwam.TraceStoreEntry) {
	s, err := rapwam.OpenTraceStore(dir)
	if err != nil {
		fatal(err)
	}
	entries, err := s.List()
	if err != nil {
		fatal(err)
	}
	return s, entries
}

func cmdLs(args []string) {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("tracedir", "", "trace store directory (required)")
	fs.Parse(args)
	if *dir == "" || fs.NArg() != 0 {
		usage()
	}
	_, entries := storeEntries(*dir)
	printEntries(entries, false)
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dir := fs.String("tracedir", "", "trace store directory")
	fs.Parse(args)
	if *dir != "" {
		_, entries := storeEntries(*dir)
		printEntries(entries, true)
		return
	}
	if fs.NArg() == 0 {
		usage()
	}
	var entries []rapwam.TraceStoreEntry
	for _, path := range fs.Args() {
		meta, size, err := rapwam.ReadTraceFileMeta(path)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		entries = append(entries, rapwam.TraceStoreEntry{Path: path, Meta: meta, Bytes: size})
	}
	printEntries(entries, true)
}

// printEntries renders one line per trace. Deep inspection decodes the
// whole file so footer counts and per-PE totals are authoritative.
func printEntries(entries []rapwam.TraceStoreEntry, deep bool) {
	if len(entries) == 0 {
		fmt.Println("(no traces)")
		return
	}
	fmt.Printf("%-28s %4s %4s %-8s %12s %10s %9s\n",
		"benchmark", "PEs", "mode", "emulator", "refs", "bytes", "bytes/ref")
	for _, e := range entries {
		m := e.Meta
		if deep {
			full, err := rapwam.ReadTraceFileFull(e.Path)
			if err != nil {
				fmt.Printf("%-28s  ERROR: %v\n", e.Path, err)
				continue
			}
			m = full
		}
		mode := "par"
		if m.Sequential {
			mode = "seq"
		}
		bpr := 0.0
		if m.Refs > 0 {
			bpr = float64(e.Bytes) / float64(m.Refs)
		}
		fmt.Printf("%-28s %4d %4s %-8s %12d %10d %9.2f\n",
			m.Benchmark, m.PEs, mode, m.EmulatorVersion, m.Refs, e.Bytes, bpr)
		if deep && len(m.PerPE) > 1 {
			fmt.Printf("%-28s      per-PE refs: %v\n", "", m.PerPE)
		}
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("tracedir", "", "trace store directory")
	repair := fs.Bool("repair", false, "scrub mode: quarantine corrupt objects and regenerate them (requires -tracedir)")
	fs.Parse(args)
	if *repair {
		if *dir == "" || fs.NArg() != 0 {
			usage()
		}
		cmdRepair(*dir)
		return
	}
	var errs []error
	var checked int
	if *dir != "" {
		s, err := rapwam.OpenTraceStore(*dir)
		if err != nil {
			fatal(err)
		}
		entries, err := s.List()
		if err != nil {
			fatal(err)
		}
		checked = len(entries)
		errs = s.Verify()
	} else {
		if fs.NArg() == 0 {
			usage()
		}
		for _, path := range fs.Args() {
			checked++
			if err := rapwam.VerifyTraceFile(path); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", path, err))
			}
		}
	}
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "tracegen: corrupt:", err)
	}
	if len(errs) > 0 {
		fmt.Printf("%d traces checked, %d corrupt\n", checked, len(errs))
		os.Exit(1)
	}
	fmt.Printf("%d traces checked, all clean\n", checked)
}

// cmdRepair is verify -repair: a full scrub (every object decoded and
// checked against its content address; failures moved to quarantine/)
// followed by regeneration of the quarantined cells that belong to
// this build's benchmarks and emulator version. Foreign cells stay
// quarantined for inspection.
func cmdRepair(dir string) {
	store, err := rapwam.SetTraceDir(dir)
	if err != nil {
		fatal(err)
	}
	rep := store.Scrub()
	for _, err := range rep.Errors {
		fmt.Fprintln(os.Stderr, "tracegen: scrub:", err)
	}
	for _, name := range rep.Quarantined {
		fmt.Fprintf(os.Stderr, "tracegen: quarantined %s\n", name)
	}
	var targets []rapwam.TraceTarget
	var skipped int
	for _, k := range rep.Recoverable {
		b, ok := rapwam.BenchmarkByName(k.Benchmark)
		if !ok || k.EmulatorVersion != rapwam.EmulatorVersion() {
			skipped++
			fmt.Fprintf(os.Stderr, "tracegen: cannot regenerate %v (unknown benchmark or foreign emulator version)\n", k)
			continue
		}
		targets = append(targets, rapwam.TraceTarget{Benchmark: b, PEs: k.PEs, Sequential: k.Sequential})
	}
	if len(targets) > 0 {
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		if err := rapwam.GenerateTraces(ctx, targets); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%d traces scrubbed, %d quarantined, %d regenerated, %d unrecoverable\n",
		rep.Checked, len(rep.Quarantined), len(targets), skipped)
	// Corruption that was quarantined AND regenerated is a successful
	// repair, not a failure. Exit nonzero only for what repair could
	// not fix: unrecoverable cells, or scrub errors beyond the
	// quarantined objects themselves (e.g. transient backend faults).
	if skipped > 0 || len(rep.Errors) > len(rep.Quarantined) {
		os.Exit(1)
	}
}

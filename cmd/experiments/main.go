// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all          # everything (takes a minute or two)
//	experiments -exp table1
//	experiments -exp fig2 [-maxpes 40]
//	experiments -exp table2 [-pes 8]
//	experiments -exp table3
//	experiments -exp fig4
//	experiments -exp mlips [-cache 256] [-target 2]
//	experiments -exp bus [-pes 8] [-cache 256]
//
// Grid experiments (table3, fig4, mlips, bus, ablations) run on a
// bounded worker pool over memoized traces, simulating all cache
// configurations per trace concurrently in a single pass; -par bounds
// the pool, -shards adds intra-cell parallelism (set-sharded replay
// and parallel trace encoding, bit-identical results) within the same
// budget, and -progress reports per-cell completion on stderr.
//
// -tracedir DIR attaches a persistent trace store: every emulator run
// is performed at most once per emulator version, traces stream to
// disk in the compact codec and replay from disk chunk by chunk. A
// second -exp all over the same directory performs zero emulator runs
// (the run summary on stderr reports the count). Warm the store ahead
// of time with cmd/tracegen.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"

	"repro/internal/cliflag"
	"repro/internal/profflag"
)

// validatePEs enforces the PE-count bounds at the flag boundary, so a
// bad -pes/-maxpes fails with one line instead of a deep engine error.
func validatePEs(flagName string, n int) {
	if n < 1 || n > rapwam.MaxPEs {
		fmt.Fprintf(os.Stderr, "experiments: -%s %d: PE count must be in [1, %d]\n", flagName, n, rapwam.MaxPEs)
		os.Exit(2)
	}
}

// resolveWorkers validates a worker-count flag, exiting with one line
// on a negative value.
func resolveWorkers(name string, n int) int {
	v, err := cliflag.Resolve(name, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	return v
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|fig2|table2|table3|fig4|mlips|bus|ablations|all")
		pes      = flag.Int("pes", 8, "PE count for table2/bus")
		maxPEs   = flag.Int("maxpes", 16, "largest PE count for fig2")
		cache    = flag.Int("cache", 256, "cache size (words) for mlips/bus")
		target   = flag.Float64("target", 2, "MLIPS target")
		par      = cliflag.Par(flag.CommandLine)
		shards   = cliflag.Shards(flag.CommandLine)
		execSh   = cliflag.ExecShards(flag.CommandLine)
		traceDir = flag.String("tracedir", "", "persistent trace store directory (consulted before any emulator run)")
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()
	validatePEs("pes", *pes)
	validatePEs("maxpes", *maxPEs)
	parN := resolveWorkers("par", *par)
	shardsN := resolveWorkers("shards", *shards)
	execN := resolveWorkers("exec-shards", *execSh)

	// Ctrl-C / SIGTERM cancel the experiment context: in-flight grid
	// cells (including the emulator's instruction loop) abort promptly,
	// partial store writes are cleaned up, and the deferred summary
	// still prints.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stop := profflag.Start(*cpuProf, *memProf, func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	})
	defer stop()

	rapwam.SetParallelism(parN)
	rapwam.SetShards(shardsN)
	rapwam.SetExecShards(execN)
	var store *rapwam.TraceStore
	if *traceDir != "" {
		s, err := rapwam.SetTraceDir(*traceDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		store = s
	}
	if *progress {
		rapwam.SetProgress(func(msg string) {
			fmt.Fprintf(os.Stderr, "experiments: %s\n", msg)
		})
		fmt.Fprintf(os.Stderr, "experiments: grid parallelism %d, intra-cell shards %d\n",
			rapwam.Parallelism(), rapwam.Shards())
	}
	if store != nil {
		defer func() {
			st := store.Stats()
			fmt.Fprintf(os.Stderr, "experiments: trace store %s: %d hits, %d misses, %d traces written, %d emulator runs\n",
				*traceDir, st.Hits, st.Misses, st.Puts, rapwam.EngineRuns())
		}()
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "experiments: interrupted during %s; completed experiments were printed, the trace store holds only complete cells\n", name)
				stop()
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Print(rapwam.Table1())
		return nil
	})

	run("fig2", func() error {
		counts := []int{1, 2, 4, 8}
		for n := 12; n <= *maxPEs; n += 4 {
			counts = append(counts, n)
		}
		f, err := rapwam.RunFigure2(ctx, counts)
		if err != nil {
			return err
		}
		fmt.Print(f.String())
		return nil
	})

	run("table2", func() error {
		t2, err := rapwam.RunTable2(ctx, *pes)
		if err != nil {
			return err
		}
		fmt.Print(t2.String())
		return nil
	})

	run("table3", func() error {
		t3, err := rapwam.RunTable3(ctx)
		if err != nil {
			return err
		}
		fmt.Print(t3.String())
		return nil
	})

	run("fig4", func() error {
		f, err := rapwam.RunFigure4(ctx, []int{1, 2, 4, 8}, []int{64, 128, 256, 512, 1024, 2048, 4096, 8192})
		if err != nil {
			return err
		}
		fmt.Print(f.String())
		return nil
	})

	run("mlips", func() error {
		m, err := rapwam.RunMLIPS(ctx, *cache, *target)
		if err != nil {
			return err
		}
		fmt.Print(m.String())
		return nil
	})

	run("bus", func() error {
		bs, err := rapwam.RunBusStudy(ctx, *pes, *cache)
		if err != nil {
			return err
		}
		fmt.Print(bs.String())
		des, err := rapwam.RunBusDES(ctx, "qsort", *pes, *cache, 4)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(des.String())
		return nil
	})

	run("ablations", func() error {
		g, err := rapwam.RunGranularitySweep(ctx, []int{0, 1, 2, 3, 4, 6})
		if err != nil {
			return err
		}
		fmt.Print(g.String())
		fmt.Println()
		l, err := rapwam.RunLineSizeSweep(ctx, "qsort", 4, 1024, []int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		fmt.Print(l.String())
		fmt.Println()
		for _, b := range []string{"deriv", "qsort", "matrix"} {
			ls, err := rapwam.RunLockShare(ctx, b, *pes)
			if err != nil {
				return err
			}
			fmt.Print(ls.String())
		}
		fmt.Println()
		a, err := rapwam.RunAssocSweep(ctx, "qsort", 4, 1024, []int{1, 2, 4, 8, 0})
		if err != nil {
			return err
		}
		fmt.Print(a.String())
		return nil
	})
}

// Command rapwamd is the experiment results daemon: a long-running
// HTTP/JSON service exposing every table and figure of the paper over
// the experiments grid runner, the persistent trace store and a
// content-addressed result cache.
//
// Usage:
//
//	rapwamd -results results [-tracedir traces] [-addr :8080] [-par N] [-shards K] [-v]
//
// Endpoints (see docs/API.md for parameters and cache-key semantics):
//
//	GET /v1/healthz
//	GET /v1/stats
//	GET /v1/experiments
//	GET /v1/experiments/{table1,fig2,table2,table3,fig4,mlips,bus,ablations}
//	GET /v1/traces
//	GET /v1/traces/{benchmark}?pes=N&mode=par|seq
//
// Every experiment accepts ?format=json|csv|text. Each distinct
// (experiment, parameters) cell is computed at most once per emulator
// version: concurrent identical requests share a single grid run, and
// later requests — including after a restart over the same -results
// directory — are served from the cache byte-identically with zero
// emulator runs.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the cancellation
// reaches in-flight grid computations (and the emulator's instruction
// loop) end to end, so draining is prompt even mid-sweep and neither
// store is left with permanent temp droppings.
//
// Example session:
//
//	rapwamd -results results -tracedir traces &
//	curl localhost:8080/v1/experiments/fig4          # cold: computes once
//	curl localhost:8080/v1/experiments/fig4          # warm: disk/memory hit
//	curl 'localhost:8080/v1/experiments/table2?pes=4&format=csv'
//	curl localhost:8080/v1/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"

	"repro/internal/cliflag"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		resultDir = flag.String("results", "results", "result cache directory (created if needed)")
		traceDir  = flag.String("tracedir", "", "persistent trace store directory (recommended: cold computations reuse and warm stored traces)")
		par       = cliflag.Par(flag.CommandLine)
		shards    = cliflag.Shards(flag.CommandLine)
		drain     = flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
		verbose   = flag.Bool("v", false, "log requests and computations on stderr")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: rapwamd [-addr :8080] [-results DIR] [-tracedir DIR] [-par N] [-shards K] [-v]")
		os.Exit(2)
	}
	parN := resolveWorkers("par", *par)
	shardsN := resolveWorkers("shards", *shards)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := rapwam.ServeConfig{
		Addr:         *addr,
		ResultDir:    *resultDir,
		TraceDir:     *traceDir,
		Parallelism:  parN,
		Shards:       shardsN,
		DrainTimeout: *drain,
	}
	if *verbose {
		cfg.Log = func(msg string) { fmt.Fprintf(os.Stderr, "rapwamd: %s\n", msg) }
		rapwam.SetProgress(func(msg string) { fmt.Fprintf(os.Stderr, "rapwamd: grid: %s\n", msg) })
	}

	fmt.Fprintf(os.Stderr, "rapwamd: serving on %s (results %s, traces %s, emulator %s)\n",
		*addr, *resultDir, orNone(*traceDir), rapwam.EmulatorVersion())
	if err := rapwam.Serve(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rapwamd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rapwamd: shut down cleanly")
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

// resolveWorkers validates a worker-count flag, exiting with one line
// on a negative value.
func resolveWorkers(name string, n int) int {
	v, err := cliflag.Resolve(name, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapwamd:", err)
		os.Exit(2)
	}
	return v
}

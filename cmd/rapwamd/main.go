// Command rapwamd is the experiment results daemon: a long-running
// HTTP/JSON service exposing every table and figure of the paper over
// the experiments grid runner, the persistent trace store and a
// content-addressed result cache.
//
// Usage:
//
//	rapwamd -results results [-tracedir traces] [-addr :8080] [-par N] [-shards K]
//	        [-max-computes N] [-max-queue N] [-compute-timeout D]
//	        [-scrub D] [-sweep-age D] [-chaos SPEC] [-v]
//	        [-peers URL,URL,... -self URL]
//
// Endpoints (see docs/API.md for parameters and cache-key semantics):
//
//	GET /v1/healthz
//	GET /v1/stats
//	GET /v1/experiments
//	GET /v1/experiments/{table1,fig2,table2,table3,fig4,mlips,bus,ablations}
//	GET /v1/traces
//	GET /v1/traces/{benchmark}?pes=N&mode=par|seq
//
// Every experiment accepts ?format=json|csv|text. Each distinct
// (experiment, parameters) cell is computed at most once per emulator
// version: concurrent identical requests share a single grid run, and
// later requests — including after a restart over the same -results
// directory — are served from the cache byte-identically with zero
// emulator runs.
//
// Overload and failure behavior: -max-computes bounds concurrent cold
// computations (cache hits are never throttled) with a bounded queue
// beyond it — overflow is shed with 429 + Retry-After; -compute-timeout
// caps a single computation's wall clock (504 on expiry); corrupt
// cache or trace objects are quarantined on read and transparently
// recomputed ("corruption costs latency, never correctness"); -scrub
// runs that verification proactively in the background; and -chaos
// wraps both stores in a deterministic fault injector for testing,
// e.g. -chaos seed=7,readerr=0.1,writeerr=0.05,bitflip=0.05.
//
// Clustering: -peers lists every member's base URL (this node's
// included) and -self names this node's own entry. Members then form a
// peer-fetch tier — each daemon serves its local objects to the others
// under /v1/blobs/, local cache misses fetch from peers and write
// through locally — and route each cold computation to its
// deterministic owner (rendezvous hashing), so a fleet of N replicas
// runs every experiment cell exactly once cluster-wide. A dead peer
// degrades to local compute (X-Degraded: peer-proxy) and rejoins warm.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the cancellation
// reaches in-flight grid computations (and the emulator's instruction
// loop) end to end, so draining is prompt even mid-sweep and neither
// store is left with permanent temp droppings.
//
// Example session:
//
//	rapwamd -results results -tracedir traces &
//	curl localhost:8080/v1/experiments/fig4          # cold: computes once
//	curl localhost:8080/v1/experiments/fig4          # warm: disk/memory hit
//	curl 'localhost:8080/v1/experiments/table2?pes=4&format=csv'
//	curl localhost:8080/v1/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"

	"repro/internal/cliflag"
	"repro/internal/storage"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		resultDir = flag.String("results", "results", "result cache directory (created if needed)")
		traceDir  = flag.String("tracedir", "", "persistent trace store directory (recommended: cold computations reuse and warm stored traces)")
		par       = cliflag.Par(flag.CommandLine)
		shards    = cliflag.Shards(flag.CommandLine)
		execSh    = cliflag.ExecShards(flag.CommandLine)
		drain     = flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
		computes  = flag.Int("max-computes", 0, "max concurrent experiment computations (0 = unlimited; cache hits are never throttled)")
		queue     = flag.Int("max-queue", 0, "max cold requests queued for a compute slot before shedding with 429 (0 = 4×max-computes)")
		budget    = flag.Duration("compute-timeout", 0, "per-computation wall-clock budget, 504 on expiry (0 = none)")
		scrub     = flag.Duration("scrub", 0, "background scrub period: verify both stores, quarantine corruption, sweep temps (0 = off)")
		sweepAge  = flag.Duration("sweep-age", time.Hour, "age past which stale temp files and quarantined objects are swept")
		chaos     = flag.String("chaos", "", "fault-injection spec wrapping both stores, e.g. seed=7,readerr=0.1,bitflip=0.05 (testing only)")
		peers     = flag.String("peers", "", "comma-separated base URLs of every cluster member, this node included (peer-fetch tier + cross-node single-flight)")
		self      = flag.String("self", "", "this node's own base URL, matching its entry in -peers (required with -peers)")
		verbose   = flag.Bool("v", false, "log requests and computations on stderr")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: rapwamd [-addr :8080] [-results DIR] [-tracedir DIR] [-par N] [-shards K] [-exec-shards K] [-max-computes N] [-max-queue N] [-compute-timeout D] [-scrub D] [-sweep-age D] [-chaos SPEC] [-peers URLS -self URL] [-v]")
		os.Exit(2)
	}
	if *computes < 0 || *queue < 0 {
		fmt.Fprintln(os.Stderr, "rapwamd: -max-computes and -max-queue must be >= 0")
		os.Exit(2)
	}
	// Validate the chaos spec up front so a typo'd knob is a startup
	// error naming the flag, not a daemon that launched without the
	// faults the operator asked for.
	if *chaos != "" {
		if _, err := storage.ParseFaults(*chaos); err != nil {
			fmt.Fprintf(os.Stderr, "rapwamd: -chaos: %v\n", err)
			os.Exit(2)
		}
	}
	peerList, err := parsePeers(*peers, *self)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapwamd:", err)
		os.Exit(2)
	}
	parN := resolveWorkers("par", *par)
	shardsN := resolveWorkers("shards", *shards)
	execN := resolveWorkers("exec-shards", *execSh)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := rapwam.ServeConfig{
		Addr:           *addr,
		ResultDir:      *resultDir,
		TraceDir:       *traceDir,
		Parallelism:    parN,
		Shards:         shardsN,
		ExecShards:     execN,
		MaxComputes:    *computes,
		MaxQueue:       *queue,
		ComputeTimeout: *budget,
		StaleTempAge:   *sweepAge,
		ScrubInterval:  *scrub,
		Chaos:          *chaos,
		Peers:          peerList,
		SelfURL:        *self,
		DrainTimeout:   *drain,
	}
	if *chaos != "" {
		fmt.Fprintf(os.Stderr, "rapwamd: CHAOS MODE: injecting storage faults (%s)\n", *chaos)
	}
	if *verbose {
		cfg.Log = func(msg string) { fmt.Fprintf(os.Stderr, "rapwamd: %s\n", msg) }
		rapwam.SetProgress(func(msg string) { fmt.Fprintf(os.Stderr, "rapwamd: grid: %s\n", msg) })
	}

	if len(peerList) > 0 {
		fmt.Fprintf(os.Stderr, "rapwamd: cluster of %d (self %s)\n", len(peerList), *self)
	}
	fmt.Fprintf(os.Stderr, "rapwamd: serving on %s (results %s, traces %s, emulator %s)\n",
		*addr, *resultDir, orNone(*traceDir), rapwam.EmulatorVersion())
	if err := rapwam.Serve(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rapwamd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rapwamd: shut down cleanly")
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

// parsePeers validates the -peers/-self pair: every entry must be an
// http(s) URL with a host, and -self must appear in the list. Errors
// name the flag so a misconfigured fleet fails loudly at startup.
func parsePeers(peers, self string) ([]string, error) {
	if strings.TrimSpace(peers) == "" {
		if self != "" {
			return nil, fmt.Errorf("-self set without -peers")
		}
		return nil, nil
	}
	if self == "" {
		return nil, fmt.Errorf("-peers requires -self naming this node's own URL")
	}
	var list []string
	selfListed := false
	for _, raw := range strings.Split(peers, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("-peers entry %q: want http(s)://host[:port]", raw)
		}
		list = append(list, raw)
		if strings.TrimRight(raw, "/") == strings.TrimRight(self, "/") {
			selfListed = true
		}
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	if !selfListed {
		return nil, fmt.Errorf("-self %q is not listed in -peers", self)
	}
	return list, nil
}

// resolveWorkers validates a worker-count flag, exiting with one line
// on a negative value.
func resolveWorkers(name string, n int) int {
	v, err := cliflag.Resolve(name, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapwamd:", err)
		os.Exit(2)
	}
	return v
}

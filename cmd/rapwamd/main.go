// Command rapwamd is the experiment results daemon: a long-running
// HTTP/JSON service exposing every table and figure of the paper over
// the experiments grid runner, the persistent trace store and a
// content-addressed result cache.
//
// Usage:
//
//	rapwamd -results results [-tracedir traces] [-addr :8080] [-par N] [-shards K]
//	        [-max-computes N] [-max-queue N] [-compute-timeout D]
//	        [-scrub D] [-sweep-age D] [-chaos SPEC] [-v]
//
// Endpoints (see docs/API.md for parameters and cache-key semantics):
//
//	GET /v1/healthz
//	GET /v1/stats
//	GET /v1/experiments
//	GET /v1/experiments/{table1,fig2,table2,table3,fig4,mlips,bus,ablations}
//	GET /v1/traces
//	GET /v1/traces/{benchmark}?pes=N&mode=par|seq
//
// Every experiment accepts ?format=json|csv|text. Each distinct
// (experiment, parameters) cell is computed at most once per emulator
// version: concurrent identical requests share a single grid run, and
// later requests — including after a restart over the same -results
// directory — are served from the cache byte-identically with zero
// emulator runs.
//
// Overload and failure behavior: -max-computes bounds concurrent cold
// computations (cache hits are never throttled) with a bounded queue
// beyond it — overflow is shed with 429 + Retry-After; -compute-timeout
// caps a single computation's wall clock (504 on expiry); corrupt
// cache or trace objects are quarantined on read and transparently
// recomputed ("corruption costs latency, never correctness"); -scrub
// runs that verification proactively in the background; and -chaos
// wraps both stores in a deterministic fault injector for testing,
// e.g. -chaos seed=7,readerr=0.1,writeerr=0.05,bitflip=0.05.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the cancellation
// reaches in-flight grid computations (and the emulator's instruction
// loop) end to end, so draining is prompt even mid-sweep and neither
// store is left with permanent temp droppings.
//
// Example session:
//
//	rapwamd -results results -tracedir traces &
//	curl localhost:8080/v1/experiments/fig4          # cold: computes once
//	curl localhost:8080/v1/experiments/fig4          # warm: disk/memory hit
//	curl 'localhost:8080/v1/experiments/table2?pes=4&format=csv'
//	curl localhost:8080/v1/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"

	"repro/internal/cliflag"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		resultDir = flag.String("results", "results", "result cache directory (created if needed)")
		traceDir  = flag.String("tracedir", "", "persistent trace store directory (recommended: cold computations reuse and warm stored traces)")
		par       = cliflag.Par(flag.CommandLine)
		shards    = cliflag.Shards(flag.CommandLine)
		drain     = flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
		computes  = flag.Int("max-computes", 0, "max concurrent experiment computations (0 = unlimited; cache hits are never throttled)")
		queue     = flag.Int("max-queue", 0, "max cold requests queued for a compute slot before shedding with 429 (0 = 4×max-computes)")
		budget    = flag.Duration("compute-timeout", 0, "per-computation wall-clock budget, 504 on expiry (0 = none)")
		scrub     = flag.Duration("scrub", 0, "background scrub period: verify both stores, quarantine corruption, sweep temps (0 = off)")
		sweepAge  = flag.Duration("sweep-age", time.Hour, "age past which stale temp files and quarantined objects are swept")
		chaos     = flag.String("chaos", "", "fault-injection spec wrapping both stores, e.g. seed=7,readerr=0.1,bitflip=0.05 (testing only)")
		verbose   = flag.Bool("v", false, "log requests and computations on stderr")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: rapwamd [-addr :8080] [-results DIR] [-tracedir DIR] [-par N] [-shards K] [-max-computes N] [-max-queue N] [-compute-timeout D] [-scrub D] [-sweep-age D] [-chaos SPEC] [-v]")
		os.Exit(2)
	}
	if *computes < 0 || *queue < 0 {
		fmt.Fprintln(os.Stderr, "rapwamd: -max-computes and -max-queue must be >= 0")
		os.Exit(2)
	}
	parN := resolveWorkers("par", *par)
	shardsN := resolveWorkers("shards", *shards)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := rapwam.ServeConfig{
		Addr:           *addr,
		ResultDir:      *resultDir,
		TraceDir:       *traceDir,
		Parallelism:    parN,
		Shards:         shardsN,
		MaxComputes:    *computes,
		MaxQueue:       *queue,
		ComputeTimeout: *budget,
		StaleTempAge:   *sweepAge,
		ScrubInterval:  *scrub,
		Chaos:          *chaos,
		DrainTimeout:   *drain,
	}
	if *chaos != "" {
		fmt.Fprintf(os.Stderr, "rapwamd: CHAOS MODE: injecting storage faults (%s)\n", *chaos)
	}
	if *verbose {
		cfg.Log = func(msg string) { fmt.Fprintf(os.Stderr, "rapwamd: %s\n", msg) }
		rapwam.SetProgress(func(msg string) { fmt.Fprintf(os.Stderr, "rapwamd: grid: %s\n", msg) })
	}

	fmt.Fprintf(os.Stderr, "rapwamd: serving on %s (results %s, traces %s, emulator %s)\n",
		*addr, *resultDir, orNone(*traceDir), rapwam.EmulatorVersion())
	if err := rapwam.Serve(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rapwamd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rapwamd: shut down cleanly")
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

// resolveWorkers validates a worker-count flag, exiting with one line
// on a negative value.
func resolveWorkers(name string, n int) int {
	v, err := cliflag.Resolve(name, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapwamd:", err)
		os.Exit(2)
	}
	return v
}

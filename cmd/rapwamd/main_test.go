package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParsePeers(t *testing.T) {
	for _, tc := range []struct {
		name    string
		peers   string
		self    string
		want    []string
		wantErr string // substring the error must contain; "" = success
	}{
		{"unset", "", "", nil, ""},
		{"two-members", "http://a:1,http://b:1", "http://a:1",
			[]string{"http://a:1", "http://b:1"}, ""},
		{"whitespace-and-empties", " http://a:1 , ,http://b:1 ", "http://a:1",
			[]string{"http://a:1", "http://b:1"}, ""},
		{"trailing-slash-self", "http://a:1/,http://b:1", "http://a:1",
			[]string{"http://a:1/", "http://b:1"}, ""},
		{"https", "https://a:1,https://b:1", "https://b:1",
			[]string{"https://a:1", "https://b:1"}, ""},
		{"self-without-peers", "", "http://a:1", nil, "-self set without -peers"},
		{"peers-without-self", "http://a:1,http://b:1", "", nil, "-peers requires -self"},
		{"self-not-listed", "http://a:1,http://b:1", "http://c:1", nil, "not listed in -peers"},
		{"no-scheme", "a:1,http://b:1", "http://b:1", nil, "want http(s)"},
		{"bad-scheme", "ftp://a:1,http://b:1", "http://b:1", nil, "want http(s)"},
		{"no-host", "http://,http://b:1", "http://b:1", nil, "want http(s)"},
		{"only-commas", ",,,", "http://a:1", nil, "-peers is empty"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parsePeers(tc.peers, tc.self)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parsePeers(%q, %q) error %v, want mention of %q", tc.peers, tc.self, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parsePeers(%q, %q): %v", tc.peers, tc.self, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("parsePeers(%q, %q) = %v, want %v", tc.peers, tc.self, got, tc.want)
			}
		})
	}
}

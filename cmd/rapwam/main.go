// Command rapwam runs an &-Prolog program on the RAP-WAM parallel
// abstract machine and reports the answer plus instrumentation.
//
// Usage:
//
//	rapwam -q "goal(X)" [-p PEs] [-seq] [-trace out.rwt] [-stats] file.pl
//	rapwam -bench deriv [-p PEs] [-seq]
//
// The program file contains Prolog clauses with optional CGE
// annotations: (conds | g1 & g2) or plain g1 & g2.
//
// -trace writes the memory-reference trace: a path ending in .rwt2
// selects the compact chunked codec (delta/varint encoded,
// CRC-protected — see docs/TRACE_FORMAT.md); any other path writes
// the legacy fixed-record format. cmd/cachesim reads both.
//
// -cpuprofile and -memprofile write pprof profiles of the run, for
// working on the emulator hot path:
//
//	rapwam -cpuprofile cpu.out -bench qsort -p 4
//	go tool pprof cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"

	"repro/internal/cliflag"
	"repro/internal/profflag"
	"repro/internal/trace"
)

func main() {
	var (
		query     = flag.String("q", "", "query goal (required unless -bench)")
		pes       = flag.Int("p", 1, "number of processing elements")
		seq       = flag.Bool("seq", false, "compile CGEs sequentially (WAM baseline)")
		traceOut  = flag.String("trace", "", "write the memory-reference trace to this file")
		stats     = flag.Bool("stats", false, "print instrumentation statistics")
		listing   = flag.Bool("listing", false, "print the compiled code and exit")
		benchName = flag.String("bench", "", "run a built-in benchmark (deriv, tak, qsort, matrix, nrev, queens, primes, zebra)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
		execSh    = cliflag.ExecShards(flag.CommandLine)
	)
	flag.Parse()
	execN, err := cliflag.Resolve("exec-shards", *execSh)
	if err != nil {
		fatal(err)
	}
	rapwam.SetExecShards(execN)
	stopProfiles = startProfiles(*cpuProf, *memProf)
	defer stopProfiles()

	if *benchName != "" {
		runBench(*benchName, *pes, *seq, *stats, *traceOut)
		return
	}

	if flag.NArg() != 1 || *query == "" {
		fmt.Fprintln(os.Stderr, "usage: rapwam -q GOAL [flags] file.pl  |  rapwam -bench NAME [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := rapwam.CompileWithOptions(string(src), *query, rapwam.CompileOptions{Sequential: *seq})
	if err != nil {
		fatal(err)
	}
	if *listing {
		fmt.Print(prog.Listing())
		return
	}
	res, err := prog.Run(rapwam.RunConfig{PEs: *pes, CaptureTrace: *traceOut != "", ExecShards: execN})
	if err != nil {
		fatal(err)
	}
	report(res, *stats)
	if *traceOut != "" {
		writeTrace(res.Trace, *traceOut, rapwam.TraceMeta{
			PEs: *pes, Sequential: *seq,
			EmulatorVersion: rapwam.EmulatorVersion(),
		})
	}
	if !res.Success {
		stopProfiles()
		os.Exit(1)
	}
}

func runBench(name string, pes int, seq, stats bool, traceOut string) {
	ctx := context.Background()
	b, ok := rapwam.BenchmarkByName(name)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", name))
	}
	if traceOut != "" {
		tr, err := rapwam.TraceBenchmark(ctx, b, pes, seq)
		if err != nil {
			fatal(err)
		}
		writeTrace(tr, traceOut, rapwam.TraceMeta{
			Benchmark: b.Name, PEs: pes, Sequential: seq,
			EmulatorVersion: rapwam.EmulatorVersion(),
		})
		fmt.Printf("%s: %d references traced\n", name, tr.Len())
		return
	}
	res, err := rapwam.RunBenchmark(ctx, b, pes, seq)
	if err != nil {
		fatal(err)
	}
	report(res, stats)
}

func report(res *rapwam.Result, stats bool) {
	if res.Output != "" {
		fmt.Print(res.Output)
		if res.Output[len(res.Output)-1] != '\n' {
			fmt.Println()
		}
	}
	if !res.Success {
		fmt.Println("no")
		return
	}
	if len(res.Bindings) == 0 {
		fmt.Println("yes")
	} else {
		names := make([]string, 0, len(res.Bindings))
		for n := range res.Bindings {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%s = %s\n", n, res.Bindings[n])
		}
	}
	if stats {
		s := res.Stats
		fmt.Printf("cycles:        %d\n", s.Cycles)
		fmt.Printf("instructions:  %d\n", s.TotalInstructions())
		fmt.Printf("inferences:    %d\n", s.Inferences)
		fmt.Printf("references:    %d (work)\n", s.TotalWorkRefs())
		fmt.Printf("parcalls:      %d (goals in //: %d, stolen: %d)\n",
			s.Parcalls, s.GoalsParallel, s.GoalsStolen)
		fmt.Printf("storage (words): heap=%d local=%d control=%d trail=%d\n",
			s.MaxHeap, s.MaxLocal, s.MaxControl, s.MaxTrail)
		byArea := res.Refs.ByArea()
		fmt.Print("refs by area: ")
		for a := trace.AreaHeap; a <= trace.AreaMsg; a++ {
			if n := byArea[a]; n > 0 {
				fmt.Printf(" %s=%d", a, n)
			}
		}
		fmt.Println()
	}
}

// writeTrace serializes the trace: .rwt2 paths get the compact chunked
// codec, everything else the legacy fixed-record format.
func writeTrace(tr *rapwam.Trace, path string, meta rapwam.TraceMeta) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".rwt2") {
		err = tr.WriteCompact(f, meta)
	} else {
		_, err = tr.WriteTo(f)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "rapwam:", err)
	os.Exit(1)
}

// stopProfiles is installed before any work, so an error exit still
// flushes a valid CPU profile (see internal/profflag).
var stopProfiles = func() {}

func startProfiles(cpuPath, memPath string) func() {
	return profflag.Start(cpuPath, memPath, fatal)
}

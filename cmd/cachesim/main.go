// Command cachesim replays a RAP-WAM memory-reference trace through a
// coherent cache configuration and reports traffic and miss statistics
// (the second stage of the paper's Figure 1 pipeline).
//
// Usage:
//
//	cachesim -size 512 -line 4 -pes 8 -protocol broadcast trace.rwt
//	cachesim -sweep -pes 8 trace.rwt     # paper-style size sweep
//	cachesim -tracedir traces -bench qsort -pes 8 -sweep
//
// The trace argument may be either binary format (legacy "RWT1" or
// compact "RWT2"; the magic is sniffed). Alternatively -tracedir DIR
// with -bench NAME pulls the trace from a persistent trace store,
// generating and storing it on first use (-seqtrace selects the
// sequential WAM baseline cell).
//
// -sweep walks the trace once (not once per configuration), feeding
// every protocol × size simulator concurrently through the streaming
// fan-out pipeline; -par bounds the simulators per pass. -shards adds
// set-sharded replay workers inside each simulator (requires -assoc
// set associativity; fully associative configurations clamp to one
// shard) with bit-identical statistics at any shard count.
//
// -cpuprofile and -memprofile write pprof profiles of the replay, so a
// hot-path regression in the simulator kernel can be diagnosed straight
// from the shipped binary:
//
//	cachesim -cpuprofile cpu.out -sweep -pes 8 trace.rwt
//	go tool pprof cpu.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"

	"repro/internal/cliflag"
	"repro/internal/profflag"
)

var protocols = map[string]rapwam.Protocol{
	"write-through": rapwam.WriteThrough,
	"broadcast":     rapwam.WriteInBroadcast,
	"update":        rapwam.WriteThroughBroadcast,
	"hybrid":        rapwam.Hybrid,
	"copyback":      rapwam.Copyback,
}

func main() {
	var (
		size     = flag.Int("size", 512, "cache size in words (per PE)")
		line     = flag.Int("line", 4, "line size in words")
		pes      = flag.Int("pes", 1, "number of PEs (caches)")
		protoStr = flag.String("protocol", "broadcast", "write-through | broadcast | update | hybrid | copyback")
		alloc    = flag.String("allocate", "paper", "write-allocate policy: paper | yes | no")
		assoc    = flag.Int("assoc", 0, "set associativity (ways); 0 = fully associative (the paper's model)")
		sweep    = flag.Bool("sweep", false, "sweep cache sizes 64..8192 over all protocols")
		par      = flag.Int("par", 0, "max cache simulators per trace pass in -sweep (0 = all in one pass)")
		shards   = cliflag.Shards(flag.CommandLine)
		traceDir = flag.String("tracedir", "", "persistent trace store directory (use with -bench instead of a trace file)")
		benchSrc = flag.String("bench", "", "benchmark whose trace to pull from -tracedir (generated and stored on first use)")
		seqTrace = flag.Bool("seqtrace", false, "with -bench: use the sequential WAM baseline trace")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after replay) to this file")
	)
	flag.Parse()
	if *pes < 1 || *pes > rapwam.MaxPEs {
		fmt.Fprintf(os.Stderr, "cachesim: -pes %d: PE count must be in [1, %d]\n", *pes, rapwam.MaxPEs)
		os.Exit(2)
	}
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "cachesim: -par %d: pass width cannot be negative (0 = all configs in one pass)\n", *par)
		os.Exit(2)
	}
	shardsN, err := cliflag.Resolve("shards", *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the command context, aborting an in-flight
	// store-backed trace generation cleanly (the partial temp file is
	// removed).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	tr, err := loadTrace(ctx, *traceDir, *benchSrc, *pes, *seqTrace)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "cachesim: interrupted while generating the trace; the store holds only complete cells")
			os.Exit(130)
		}
		fatal(err)
	}
	fmt.Printf("trace: %d references\n", tr.Len())

	proto, ok := protocols[*protoStr]
	if !ok && !*sweep {
		fatal(fmt.Errorf("unknown protocol %q", *protoStr))
	}
	wa := rapwam.PaperWriteAllocate(proto, *size)
	switch *alloc {
	case "yes":
		wa = true
	case "no":
		wa = false
	case "paper":
	default:
		fatal(fmt.Errorf("bad -allocate %q", *alloc))
	}

	// Profiling starts only after all flag validation, and fatal()
	// invokes the stop hook, so cpu.out is never left truncated.
	stopProfiles = startProfiles(*cpuProf, *memProf)
	defer stopProfiles()

	if *sweep {
		runSweep(tr, *pes, *line, *assoc, *par, shardsN)
		stopProfiles()
		return
	}

	cfg := rapwam.CacheConfig{
		PEs: *pes, SizeWords: *size, LineWords: *line,
		Protocol: proto, WriteAllocate: wa, Assoc: *assoc,
	}
	st, err := rapwam.SimulateCacheShards(tr, cfg, shardsN)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("protocol:       %v (write-allocate: %v)\n", proto, wa)
	fmt.Printf("replay shards:  %d requested, %d effective\n",
		shardsN, rapwam.EffectiveCacheShards(cfg, shardsN))
	fmt.Printf("traffic ratio:  %.4f\n", st.TrafficRatio())
	fmt.Printf("miss ratio:     %.4f\n", st.MissRatio())
	fmt.Printf("bus words:      %d (fills %d, write-backs %d, write-throughs %d, updates %d)\n",
		st.BusWords, st.LineFills, st.WriteBacks, st.WriteThroughs, st.Updates)
	fmt.Printf("invalidations:  %d\n", st.Invalidations)
	stopProfiles()
}

// loadTrace resolves the trace source: a file argument (either binary
// format, sniffed), or a (store, benchmark) cell generated on first
// use.
func loadTrace(ctx context.Context, traceDir, benchName string, pes int, sequential bool) (*rapwam.Trace, error) {
	switch {
	case traceDir != "" && benchName == "":
		return nil, fmt.Errorf("-tracedir needs -bench to name the trace cell (a file argument bypasses the store)")
	case benchName != "":
		if traceDir == "" || flag.NArg() != 0 {
			usageExit()
		}
		if _, err := rapwam.SetTraceDir(traceDir); err != nil {
			return nil, err
		}
		b, ok := rapwam.BenchmarkByName(benchName)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", benchName)
		}
		return rapwam.TraceBenchmark(ctx, b, pes, sequential)
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rapwam.ReadTrace(f)
	default:
		usageExit()
		return nil, nil
	}
}

func usageExit() {
	fmt.Fprintln(os.Stderr, "usage: cachesim [flags] trace.rwt  |  cachesim -tracedir DIR -bench NAME [flags]")
	flag.PrintDefaults()
	os.Exit(2)
}

// stopProfiles is set once profiling starts; fatal() runs it so an
// error exit still flushes a valid CPU profile.
var stopProfiles = func() {}

func startProfiles(cpuPath, memPath string) func() {
	return profflag.Start(cpuPath, memPath, fatal)
}

// runSweep simulates the whole protocol × size grid with the streaming
// fan-out pipeline: the trace is walked once per pass, feeding up to
// par concurrent cache simulators (all of them in a single pass by
// default), instead of once per configuration. shards adds set-sharded
// replay workers inside each simulator (effective only for
// set-associative configurations; results are bit-identical either
// way).
func runSweep(tr *rapwam.Trace, pes, line, assoc, par, shards int) {
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	order := []string{"broadcast", "hybrid", "write-through"}
	var cfgs []rapwam.CacheConfig
	effective := 1
	for _, name := range order {
		proto := protocols[name]
		for _, s := range sizes {
			cfg := rapwam.CacheConfig{
				PEs: pes, SizeWords: s, LineWords: line,
				Protocol:      proto,
				WriteAllocate: rapwam.PaperWriteAllocate(proto, s),
				Assoc:         assoc,
			}
			if e := rapwam.EffectiveCacheShards(cfg, shards); e > effective {
				effective = e
			}
			cfgs = append(cfgs, cfg)
		}
	}
	if par <= 0 || par > len(cfgs) {
		par = len(cfgs)
	}
	passes := (len(cfgs) + par - 1) / par
	stats := make([]rapwam.CacheStats, 0, len(cfgs))
	for lo := 0; lo < len(cfgs); lo += par {
		hi := lo + par
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		if passes > 1 {
			fmt.Fprintf(os.Stderr, "cachesim: pass %d/%d: %d configs, one trace walk, %d/%d replay shards\n",
				lo/par+1, passes, hi-lo, effective, shards)
		}
		st, err := tr.ReplayAllShards(cfgs[lo:hi], shards)
		if err != nil {
			fatal(err)
		}
		stats = append(stats, st...)
	}
	fmt.Printf("%-14s", "protocol")
	for _, s := range sizes {
		fmt.Printf(" %7dw", s)
	}
	fmt.Println()
	for i, name := range order {
		fmt.Printf("%-14s", name)
		for j := range sizes {
			fmt.Printf(" %8.4f", stats[i*len(sizes)+j].TrafficRatio())
		}
		fmt.Println()
	}
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "cachesim:", err)
	os.Exit(1)
}

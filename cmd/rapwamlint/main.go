// Command rapwamlint runs the repo-invariant static analyzers
// (internal/lint) over the given packages and exits nonzero on any
// finding. It is wired into `make lint` and CI; see
// docs/ARCHITECTURE.md "Enforced invariants" for what each analyzer
// guards and which PR introduced the invariant.
//
// Usage:
//
//	rapwamlint [-only a,b] [-list] [-write-fingerprint] [packages]
//
// Findings are suppressed one at a time with a recorded reason:
//
//	//rapwam:allow <analyzer> <reason>
//
// on the offending line or the line above. Malformed annotations are
// findings themselves.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rapwamlint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	writeFP := fs.Bool("write-fingerprint", false,
		"recompute and write "+lint.FingerprintPath+" (after a deliberate emission change + EmulatorVersion bump), then exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: rapwamlint [flags] [packages]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "rapwamlint: -only %s: unknown analyzer (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, moduleRoot, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapwamlint: %v\n", err)
		return 2
	}

	if *writeFP {
		path, err := lint.WriteFingerprint(pkgs, moduleRoot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapwamlint: %v\n", err)
			return 2
		}
		fmt.Printf("rapwamlint: wrote %s\n", path)
		return 0
	}

	diags := lint.Run(pkgs, moduleRoot, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rapwamlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

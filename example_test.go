package rapwam_test

import (
	"context"
	"fmt"
	"log"
	"os"

	rapwam "repro"
)

// ExampleProgram_Run compiles a tiny AND-parallel program and runs it
// on 4 processing elements.
func ExampleProgram_Run() {
	prog, err := rapwam.Compile(`
		fib(0, 0).
		fib(1, 1).
		fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,
			(fib(N1, F1) & fib(N2, F2)),
			F is F1 + F2.
	`, "fib(10, F)")
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(rapwam.RunConfig{PEs: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("F =", res.Bindings["F"])
	fmt.Println("parallel goals >", res.Stats.GoalsParallel > 0)
	// Output:
	// F = 55
	// parallel goals > true
}

// ExampleTrace_ReplayAll traces one benchmark run and replays the
// trace through several cache configurations in a single concurrent
// pass — the trace is walked once, not once per configuration, and
// the statistics are bit-identical to simulating each configuration
// alone.
func ExampleTrace_ReplayAll() {
	bm, ok := rapwam.BenchmarkByName("qsort-60") // a small sized variant
	if !ok {
		log.Fatal("unknown benchmark")
	}
	tr, err := rapwam.TraceBenchmark(context.Background(), bm, 2, false)
	if err != nil {
		log.Fatal(err)
	}

	sizes := []int{128, 1024, 8192}
	cfgs := make([]rapwam.CacheConfig, len(sizes))
	for i, size := range sizes {
		cfgs[i] = rapwam.CacheConfig{
			PEs: 2, SizeWords: size, LineWords: 4,
			Protocol:      rapwam.WriteInBroadcast,
			WriteAllocate: rapwam.PaperWriteAllocate(rapwam.WriteInBroadcast, size),
		}
	}
	stats, err := tr.ReplayAll(cfgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("configurations simulated:", len(stats))
	// Bigger caches capture more traffic: the paper's Figure 4 shape.
	fmt.Println("traffic falls with size:",
		stats[0].TrafficRatio() > stats[1].TrafficRatio() &&
			stats[1].TrafficRatio() > stats[2].TrafficRatio())
	// Output:
	// configurations simulated: 3
	// traffic falls with size: true
}

// ExampleOpenTraceStore shows the persistent trace store: the first
// request for a cell runs the emulator once, streaming the trace to
// disk; every later request — here a replay and a second trace fetch —
// is served from the store without any emulator run.
func ExampleOpenTraceStore() {
	dir, err := os.MkdirTemp("", "traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := rapwam.OpenTraceStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	rapwam.SetTraceStore(store)
	defer rapwam.SetTraceStore(nil)

	bm, _ := rapwam.BenchmarkByName("nrev-60")
	rapwam.ResetEngineRuns()

	// First fetch: generated through the store (one emulator run).
	tr1, err := rapwam.TraceBenchmark(context.Background(), bm, 2, false)
	if err != nil {
		log.Fatal(err)
	}
	// Second fetch: decoded from disk, no emulator run.
	tr2, err := rapwam.TraceBenchmark(context.Background(), bm, 2, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same trace:", tr1.Len() == tr2.Len())
	fmt.Println("emulator runs:", rapwam.EngineRuns())

	key := rapwam.TraceStoreKey(bm.Name, 2, false)
	fmt.Println("stored cell:", key.Benchmark, "at", key.PEs, "PEs")
	// Output:
	// same trace: true
	// emulator runs: 1
	// stored cell: nrev-60 at 2 PEs
}

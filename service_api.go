package rapwam

import (
	"context"
	"net"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/storage"
	"repro/internal/tracestore"
)

// This file re-exports the experiment results service: a long-running
// HTTP/JSON daemon (cmd/rapwamd is its CLI) that serves every table
// and figure of the paper from a content-addressed result cache over
// the experiments grid and the persistent trace store. Each distinct
// (experiment, parameters) cell is computed at most once per emulator
// version: concurrent identical requests share one grid run
// (single-flight), and every later request — in this daemon or a
// restarted one over the same cache directory — is a disk or memory
// hit with a byte-identical body and zero emulator runs.

// ServeConfig parameterizes the results service.
type ServeConfig struct {
	// Addr is the listen address (default ":8080"). Ignored when
	// Listener is set.
	Addr string
	// Listener, when non-nil, serves on an existing listener (tests
	// bind ":0" and pass it here).
	Listener net.Listener
	// ResultDir roots the content-addressed result cache (required).
	ResultDir string
	// TraceDir optionally attaches a persistent trace store so cold
	// computations reuse — and warm — stored traces.
	TraceDir string
	// Parallelism bounds the experiments grid worker pool (0 keeps the
	// current setting).
	Parallelism int
	// Shards sets intra-cell parallelism — set-shard replay workers
	// per cache configuration and trace-generation encode workers —
	// within the grid's shared worker budget (0 keeps the current
	// setting, negative selects GOMAXPROCS). Results are bit-identical
	// at any setting; see SetShards.
	Shards int
	// ExecShards sets sharded emulation — host goroutines speculating
	// independent PEs' cycles inside each engine run — within the same
	// shared grid budget (0 keeps the current setting, negative
	// selects GOMAXPROCS, 1 is the serial dispatcher). Traces and
	// results are bit-identical at any setting; see SetExecShards.
	ExecShards int
	// MaxComputes caps concurrent experiment computations; 0 means
	// unlimited. Cache hits and joins of an in-flight identical
	// computation are never throttled — only the request that would
	// START a computation takes a slot.
	MaxComputes int
	// MaxQueue caps cold requests waiting for a compute slot; beyond
	// it requests are shed with 429 + Retry-After instead of queueing
	// without bound. 0 defaults to 4×MaxComputes; ignored when
	// MaxComputes is 0.
	MaxQueue int
	// ComputeTimeout bounds each computation's wall-clock time; expiry
	// maps to 504. 0 disables the per-compute deadline.
	ComputeTimeout time.Duration
	// StaleTempAge is the age past which temp-file droppings and aged
	// quarantined objects are swept (at open and by the scrubber);
	// 0 selects the default, one hour.
	StaleTempAge time.Duration
	// ScrubInterval, when positive, runs a background scrub at that
	// period under Serve: full verification of the result cache and
	// trace store, quarantining whatever fails, plus a temp sweep.
	ScrubInterval time.Duration
	// Chaos, when non-empty, wraps both stores in the deterministic
	// fault injector — a spec like "seed=7,readerr=0.1,bitflip=0.05"
	// (see cmd/rapwamd -chaos). Strictly for fault-tolerance testing:
	// the service must keep returning correct answers under it.
	Chaos string
	// Peers lists every cluster member's base URL (http://host:port),
	// this node's own included. With two or more distinct members the
	// result cache (and trace store, when attached) become
	// cluster-backed: local misses fetch from peers' blob APIs before
	// computing, and cold computes route to the cell's rendezvous
	// owner so a fleet runs each cell exactly once cluster-wide. See
	// cmd/rapwamd -peers / -self.
	Peers []string
	// SelfURL is this node's own base URL, matching its entry in
	// Peers. Required when Peers is set.
	SelfURL string
	// DrainTimeout bounds graceful shutdown (default 5s). Shutdown is
	// normally much faster: cancelling the serve context also cancels
	// every in-flight request's computation.
	DrainTimeout time.Duration
	// Log, when non-nil, receives one line per notable server event.
	Log func(msg string)
}

// Service is an experiment results server ready to serve HTTP.
type Service struct {
	s *service.Server
}

// NewService opens the result cache (and trace store, when configured)
// and builds the service. Use Handler to mount it, or Serve to run a
// complete daemon. The experiments grid underneath is process-global,
// so build one live service per process (sequential construction over
// the same directories — the restart pattern — is fine).
func NewService(cfg ServeConfig) (*Service, error) {
	scfg := service.Config{
		ResultDir:      cfg.ResultDir,
		TraceDir:       cfg.TraceDir,
		Parallelism:    cfg.Parallelism,
		Shards:         cfg.Shards,
		ExecShards:     cfg.ExecShards,
		MaxComputes:    cfg.MaxComputes,
		MaxQueue:       cfg.MaxQueue,
		ComputeTimeout: cfg.ComputeTimeout,
		StaleTempAge:   cfg.StaleTempAge,
		ScrubInterval:  cfg.ScrubInterval,
		Peers:          cfg.Peers,
		SelfURL:        cfg.SelfURL,
		Log:            cfg.Log,
	}
	if cfg.Chaos != "" {
		faults, err := storage.ParseFaults(cfg.Chaos)
		if err != nil {
			return nil, err
		}
		tempAge := cfg.StaleTempAge
		if tempAge <= 0 {
			tempAge = tracestore.StaleTempAge
		}
		rb, err := storage.NewDir(cfg.ResultDir, tempAge)
		if err != nil {
			return nil, err
		}
		scfg.ResultBackend = storage.NewFault(rb, faults)
		if cfg.TraceDir != "" {
			tb, err := storage.NewDir(cfg.TraceDir, tempAge)
			if err != nil {
				return nil, err
			}
			scfg.TraceBackend = storage.NewFault(tb, faults)
		}
	}
	s, err := service.New(scfg)
	if err != nil {
		return nil, err
	}
	return &Service{s: s}, nil
}

// Handler returns the /v1 API handler (healthz, stats, experiments,
// traces — see docs/API.md).
func (s *Service) Handler() http.Handler { return s.s.Handler() }

// Computes reports how many experiment computations (result-cache
// fills) the service has performed; warm-cache traffic leaves it
// unchanged.
func (s *Service) Computes() int64 { return s.s.Computes() }

// ResultCacheStats returns the service's result cache counters.
func (s *Service) ResultCacheStats() ResultCacheStats { return s.s.ResultCache().Stats() }

// Sheds reports how many requests were refused at admission (HTTP 429)
// because the compute limit and queue were both full.
func (s *Service) Sheds() int64 { return s.s.Sheds() }

// Scrub verifies every object in the result cache and trace store —
// full decode, CRC and content-address checks — quarantining whatever
// fails and sweeping stale temp files, then returns what it found.
// Serve runs this automatically when ScrubInterval is set.
func (s *Service) Scrub() ScrubSummary { return s.s.Scrub() }

// ScrubSummary re-exports one scrub pass's findings.
type ScrubSummary = service.ScrubSummary

// Serve runs the results service until ctx is cancelled, then shuts
// down gracefully: the cancellation reaches every in-flight request's
// grid computation (and the emulator's instruction loop) end to end,
// so draining is prompt even mid-sweep. A clean ctx-initiated
// shutdown returns nil.
func Serve(ctx context.Context, cfg ServeConfig) error {
	s, err := NewService(cfg)
	if err != nil {
		return err
	}
	addr := cfg.Addr
	if addr == "" {
		addr = ":8080"
	}
	return service.Serve(ctx, addr, cfg.Listener, s.s, cfg.DrainTimeout)
}

// ResultCache re-exports the content-addressed experiment result
// cache: rendered results keyed by (experiment, canonical parameters,
// emulator version, codec version), written with the same atomic
// temp+rename discipline as the trace store.
type ResultCache = service.ResultCache

// ResultCacheKey re-exports the result cache key.
type ResultCacheKey = service.CacheKey

// ResultCacheStats re-exports the result cache counters.
type ResultCacheStats = service.CacheStats

// OpenResultCache creates (if needed) and opens a result cache
// directory, sweeping stale temp files left by a killed writer.
func OpenResultCache(dir string) (*ResultCache, error) {
	return service.OpenResultCache(dir)
}

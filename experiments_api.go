package rapwam

import (
	"context"

	"repro/internal/busmodel"
	"repro/internal/experiments"
	"repro/internal/tracestore"
)

// This file re-exports the experiment drivers that regenerate the
// paper's tables and figures. Each returns structured data with a
// String() rendering.
//
// The drivers that sweep parameter grids (Figure 4, Table 3, MLIPS,
// the bus study and the cache ablations) run on a shared grid runner:
// engine traces are memoized per (benchmark, PEs, sequential), every
// cache configuration consuming one trace is simulated concurrently in
// a single pass over it, and independent grid cells execute on a
// bounded worker pool (see SetParallelism).

// SetParallelism bounds how many experiment grid cells (engine runs
// and trace replays) execute concurrently. n <= 0 restores the
// default, runtime.GOMAXPROCS(0). Results are identical at any
// parallelism level; only wall-clock time changes.
func SetParallelism(n int) { experiments.SetParallelism(n) }

// Parallelism returns the current experiment worker-pool width.
func Parallelism() int { return experiments.Parallelism() }

// SetShards configures intra-cell parallelism: how many set-shard
// workers replay each cache configuration (fully associative
// configurations still run sequentially — see EffectiveCacheShards)
// and how many goroutines encode RWT2 chunks during cold trace
// generation. n <= 0 selects runtime.GOMAXPROCS(0). Results and
// stored trace bytes are bit-identical at any setting. The grid
// budget is shared: with parallelism B and shards K at most
// max(1, B/K) cells run at once.
func SetShards(n int) { experiments.SetShards(n) }

// Shards returns the current intra-cell parallelism width (default 1).
func Shards() int { return experiments.Shards() }

// SetExecShards configures sharded emulation: how many host goroutines
// each engine run uses to speculate independent PEs' cycles in
// parallel, with a deterministic merge back into the canonical
// reference order. n <= 0 selects runtime.GOMAXPROCS(0); 1 restores
// the serial dispatcher. Traces, results and stored bytes are
// bit-identical at any setting, so warm trace stores stay valid
// whichever mode wrote them. The experiment grid's worker budget is
// shared with SetShards: at most max(1, B/max(shards, execShards))
// cells run at once.
func SetExecShards(n int) { experiments.SetExecShards(n) }

// ExecShards returns the current emulator execution-shard width
// (default 1, the serial dispatcher).
func ExecShards() int { return experiments.ExecShards() }

// SetProgress installs a callback receiving one short line per
// completed experiment grid cell (nil disables progress reporting).
// The callback may be invoked from multiple goroutines concurrently.
func SetProgress(f func(msg string)) { experiments.SetProgress(f) }

// ResetTraceCache drops the memoized benchmark traces the experiment
// drivers share (a few MB per distinct benchmark × PE-count entry).
func ResetTraceCache() { experiments.ResetTraceCache() }

// SetTraceStore attaches (nil: detaches) a persistent trace store.
// With a store attached, every (benchmark, PEs, sequential) emulator
// run is performed at most once per emulator version: the trace
// streams into the store's compact codec, the run's statistics go into
// a sidecar, and every later experiment — in this process or the next
// — replays from disk, chunk by chunk, without materializing the
// trace. Results are bit-identical to the in-memory path.
func SetTraceStore(s *TraceStore) { experiments.SetStore(s) }

// SetTraceDir opens (creating if needed) the trace store rooted at dir
// and attaches it; an empty dir detaches the store. It is the
// one-liner behind the CLIs' -tracedir flag.
func SetTraceDir(dir string) (*TraceStore, error) {
	if dir == "" {
		experiments.SetStore(nil)
		return nil, nil
	}
	s, err := tracestore.Open(dir)
	if err != nil {
		return nil, err
	}
	experiments.SetStore(s)
	return s, nil
}

// TraceTarget re-exports one trace-generation cell for GenerateTraces.
type TraceTarget = experiments.TraceTarget

// GenerateTraces generates every missing target cell into the attached
// trace store, independent cells concurrently on the bounded worker
// pool (SetParallelism). cmd/tracegen's generate subcommand is a thin
// wrapper around it.
func GenerateTraces(ctx context.Context, targets []TraceTarget) error {
	return experiments.GenerateTraces(ctx, targets)
}

// EngineRuns returns the number of emulator executions performed so
// far — the observable that verifies a warm trace store eliminates
// regeneration (a full experiment sweep over a warm store reports 0).
func EngineRuns() int64 { return experiments.EngineRuns() }

// ResetEngineRuns zeroes the emulator-execution counter.
func ResetEngineRuns() { experiments.ResetEngineRuns() }

// Table1 renders the storage-object classification (paper Table 1).
func Table1() string { return experiments.Table1() }

// Figure2 re-exports the deriv overhead sweep result type.
type Figure2 = experiments.Figure2

// RunFigure2 sweeps deriv work/overhead over the given PE counts
// (paper Figure 2 plots 1 to 40).
func RunFigure2(ctx context.Context, peCounts []int) (*Figure2, error) {
	return experiments.RunFigure2(ctx, peCounts)
}

// Table2 re-exports the benchmark-statistics result type.
type Table2 = experiments.Table2

// RunTable2 gathers benchmark statistics at the given PE count (the
// paper uses 8).
func RunTable2(ctx context.Context, pes int) (*Table2, error) {
	return experiments.RunTable2(ctx, pes)
}

// Table3 re-exports the locality-fit result type.
type Table3 = experiments.Table3

// RunTable3 computes the small-vs-large benchmark locality fit at the
// paper's 512 and 1024 word cache sizes.
func RunTable3(ctx context.Context) (*Table3, error) { return experiments.RunTable3(ctx) }

// Figure4 re-exports the coherency-traffic sweep result type.
type Figure4 = experiments.Figure4

// RunFigure4 sweeps traffic ratio over cache sizes, protocols and PE
// counts (paper Figure 4).
func RunFigure4(ctx context.Context, peCounts, sizes []int) (*Figure4, error) {
	return experiments.RunFigure4(ctx, peCounts, sizes)
}

// MLIPS re-exports the §3.3 feasibility calculation result type.
type MLIPS = experiments.MLIPS

// RunMLIPS re-derives the paper's 2 MLIPS back-of-the-envelope
// calculation from measured statistics.
func RunMLIPS(ctx context.Context, cacheWords int, targetMLIPS float64) (*MLIPS, error) {
	return experiments.RunMLIPS(ctx, cacheWords, targetMLIPS)
}

// BusStudy re-exports the bus-contention study result type.
type BusStudy = experiments.BusStudy

// RunBusStudy tabulates shared-memory efficiency against bus bandwidth
// for the given configuration.
func RunBusStudy(ctx context.Context, pes, cacheWords int) (*BusStudy, error) {
	return experiments.RunBusStudy(ctx, pes, cacheWords)
}

// BusParams re-exports the analytic bus model parameters.
type BusParams = busmodel.Params

// BusResult re-exports the analytic bus model result.
type BusResult = busmodel.Result

// BusAnalytic evaluates the M/M/1 bus contention approximation.
func BusAnalytic(p BusParams) (BusResult, error) { return busmodel.Analytic(p) }

// BusMaxPEs returns the largest PE count keeping efficiency at or above
// target for the given load.
func BusMaxPEs(p BusParams, target float64) (int, error) {
	return busmodel.MaxPEs(p, target)
}

// GranularitySweep re-exports the CGE granularity ablation result type.
type GranularitySweep = experiments.GranularitySweep

// RunGranularitySweep varies deriv's parallelism depth budget,
// quantifying the parallelism-vs-overhead tradeoff of CGE annotation
// granularity.
func RunGranularitySweep(ctx context.Context, depths []int) (*GranularitySweep, error) {
	return experiments.RunGranularitySweep(ctx, depths)
}

// LineSizeSweep re-exports the cache line-size ablation result type.
type LineSizeSweep = experiments.LineSizeSweep

// RunLineSizeSweep replays a benchmark trace across cache line sizes
// (the paper fixes 4-word lines; this shows where that sits).
func RunLineSizeSweep(ctx context.Context, benchName string, pes, sizeWords int, lines []int) (*LineSizeSweep, error) {
	return experiments.RunLineSizeSweep(ctx, benchName, pes, sizeWords, lines)
}

// LockShare re-exports the synchronization-traffic measurement type.
type LockShare = experiments.LockShare

// RunLockShare measures the fraction of references to locked objects
// (goal stack, parcall counters, messages).
func RunLockShare(ctx context.Context, benchName string, pes int) (*LockShare, error) {
	return experiments.RunLockShare(ctx, benchName, pes)
}

// BusDES re-exports the discrete-event bus validation type.
type BusDES = experiments.BusDES

// RunBusDES replays real bus transactions through the discrete-event
// bus simulator and cross-checks the analytic M/M/1 model.
func RunBusDES(ctx context.Context, benchName string, pes, cacheWords int, busWordsPerCycle float64) (*BusDES, error) {
	return experiments.RunBusDES(ctx, benchName, pes, cacheWords, busWordsPerCycle)
}

// AssocSweep re-exports the associativity ablation result type.
type AssocSweep = experiments.AssocSweep

// RunAssocSweep compares the paper's fully associative cache model with
// set-associative caches of the same capacity (0 ways = fully
// associative).
func RunAssocSweep(ctx context.Context, benchName string, pes, sizeWords int, ways []int) (*AssocSweep, error) {
	return experiments.RunAssocSweep(ctx, benchName, pes, sizeWords, ways)
}

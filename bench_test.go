package rapwam

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper. Each regenerates its experiment end to end (emulation +
// trace-driven cache simulation) and reports the headline metric through
// b.ReportMetric, so `go test -bench . -benchmem` reproduces the whole
// evaluation section.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/trace"
)

// BenchmarkTable1Classify exercises the Table 1 object classification on
// a live trace (the classification is a hot path of the tracer).
func BenchmarkTable1Classify(b *testing.B) {
	bm, _ := BenchmarkByName("tak")
	for i := 0; i < b.N; i++ {
		tr, err := TraceBenchmark(context.Background(), bm, 2, false)
		if err != nil {
			b.Fatal(err)
		}
		_ = tr.Len()
	}
	b.ReportMetric(0, "ns/op") // dominated by emulation; see refs metric
}

// BenchmarkFig2DerivOverheads regenerates Figure 2: deriv work as % of
// WAM work across processor counts.
func BenchmarkFig2DerivOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := RunFigure2(context.Background(), []int{1, 2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		last := f.Points[len(f.Points)-1]
		b.ReportMetric(last.WorkPct, "work%WAM@16PE")
		b.ReportMetric(last.Speedup, "speedup@16PE")
	}
}

// BenchmarkTable2Stats regenerates Table 2: benchmark statistics at 8
// processors.
func BenchmarkTable2Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2, err := RunTable2(context.Background(), 8)
		if err != nil {
			b.Fatal(err)
		}
		var raw, wam int64
		for _, r := range t2.Rows {
			raw += r.RefsRAPWAM
			wam += r.RefsWAM
		}
		b.ReportMetric(float64(raw)/float64(wam), "RAPWAM/WAM-refs")
	}
}

// BenchmarkTable3Fit regenerates Table 3: the locality fit of the small
// benchmarks against the large sequential suite.
func BenchmarkTable3Fit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t3, err := RunTable3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t3.Etr[0], "Etr@512w")
		b.ReportMetric(t3.MeanAbsZ[0], "mean|z|@512w")
	}
}

// BenchmarkFig4Traffic regenerates Figure 4: mean traffic ratio of the
// three coherency schemes across cache sizes and PE counts.
func BenchmarkFig4Traffic(b *testing.B) {
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	for i := 0; i < b.N; i++ {
		f, err := RunFigure4(context.Background(), []int{1, 2, 4, 8}, sizes)
		if err != nil {
			b.Fatal(err)
		}
		bc := f.Ratio(WriteInBroadcast, 8)
		b.ReportMetric(bc[2], "broadcast@8PE/256w")
		b.ReportMetric(bc[len(bc)-1], "broadcast@8PE/8192w")
	}
}

// BenchmarkMLIPSCalculation regenerates the §3.3 feasibility numbers.
func BenchmarkMLIPSCalculation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := RunMLIPS(context.Background(), 256, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.BusBandwidthMBs, "MB/s@2MLIPS")
		b.ReportMetric(m.CaptureRatio, "capture")
	}
}

// BenchmarkBusContention regenerates the §3.3 bus efficiency estimate.
func BenchmarkBusContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bs, err := RunBusStudy(context.Background(), 8, 256)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bs.Efficiency[len(bs.Efficiency)-1], "eff@fastbus")
	}
}

// BenchmarkEmulatorThroughput measures raw emulation speed (WAM
// instructions per second of host time) on the sequential qsort.
func BenchmarkEmulatorThroughput(b *testing.B) {
	bm, _ := BenchmarkByName("qsort")
	var instrs int64
	for i := 0; i < b.N; i++ {
		res, err := RunBenchmark(context.Background(), bm, 1, true)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Stats.TotalInstructions()
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "wam-instrs/s")
}

// BenchmarkCacheSimThroughput measures trace replay speed through the
// write-in broadcast cache.
func BenchmarkCacheSimThroughput(b *testing.B) {
	bm, _ := BenchmarkByName("qsort")
	tr, err := TraceBenchmark(context.Background(), bm, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var refs int64
	for i := 0; i < b.N; i++ {
		st, err := SimulateCache(tr, CacheConfig{
			PEs: 4, SizeWords: 1024, LineWords: 4,
			Protocol: WriteInBroadcast, WriteAllocate: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		refs += st.Refs
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/s")
}

// replayBenchConfigs is the configuration set for the replay-pipeline
// benchmarks: two protocols at three sizes (6 configs, > the 4 the
// pipeline acceptance floor asks for).
func replayBenchConfigs(pes int) []CacheConfig {
	var cfgs []CacheConfig
	for _, proto := range []Protocol{WriteInBroadcast, Hybrid} {
		for _, size := range []int{256, 1024, 4096} {
			cfgs = append(cfgs, CacheConfig{
				PEs: pes, SizeWords: size, LineWords: 4,
				Protocol:      proto,
				WriteAllocate: PaperWriteAllocate(proto, size),
			})
		}
	}
	return cfgs
}

// BenchmarkReplaySequential replays one trace through each cache
// configuration in turn — one full trace walk per configuration (the
// pre-pipeline formulation).
func BenchmarkReplaySequential(b *testing.B) {
	bm, _ := BenchmarkByName("qsort")
	tr, err := TraceBenchmark(context.Background(), bm, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	cfgs := replayBenchConfigs(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := SimulateCache(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(tr.Len()*len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "simrefs/s")
}

// BenchmarkReplayFanOut replays the same trace through the same
// configurations with the streaming fan-out pipeline — a single trace
// walk feeding all simulators concurrently.
func BenchmarkReplayFanOut(b *testing.B) {
	bm, _ := BenchmarkByName("qsort")
	tr, err := TraceBenchmark(context.Background(), bm, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	cfgs := replayBenchConfigs(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ReplayAll(cfgs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()*len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "simrefs/s")
}

// BenchmarkReplaySteadyState measures the pure kernel: one warm
// simulator per configuration reused across iterations, so simulator
// construction is excluded and the -benchmem columns show the
// steady-state replay cost (0 allocs/op with the flat kernel).
func BenchmarkReplaySteadyState(b *testing.B) {
	bm, _ := BenchmarkByName("qsort")
	tr, err := TraceBenchmark(context.Background(), bm, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	cfgs := replayBenchConfigs(4)
	sims := make([]*CacheSim, len(cfgs))
	for i, cfg := range cfgs {
		if sims[i], err = NewCacheSim(cfg); err != nil {
			b.Fatal(err)
		}
		tr.Replay(sims[i]) // warm: caches and directory reach steady state
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sim := range sims {
			tr.Replay(sim)
		}
	}
	b.ReportMetric(float64(tr.Len()*len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "simrefs/s")
}

// BenchmarkPerBenchmarkParallel runs each paper benchmark at 8 PEs
// (the paper's Table 2 configuration), reporting simulated speedup.
func BenchmarkPerBenchmarkParallel(b *testing.B) {
	for _, bm := range PaperBenchmarks() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq, err := RunBenchmark(context.Background(), bm, 1, true)
				if err != nil {
					b.Fatal(err)
				}
				par, err := RunBenchmark(context.Background(), bm, 8, false)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(seq.Stats.Cycles)/float64(par.Stats.Cycles), "speedup@8PE")
			}
		})
	}
}

// BenchmarkAblationRuntimeChecks compares deriv with and without
// run-time CGE groundness checks (the cost compile-time analysis
// removes; DESIGN.md ablation).
func BenchmarkAblationRuntimeChecks(b *testing.B) {
	unchecked, _ := BenchmarkByName("deriv")
	checked, _ := BenchmarkByName("deriv-checked")
	if checked.Name == "" {
		b.Skip("checked variant unavailable")
	}
	for i := 0; i < b.N; i++ {
		u, err := RunBenchmark(context.Background(), unchecked, 8, false)
		if err != nil {
			b.Fatal(err)
		}
		c, err := RunBenchmark(context.Background(), checked, 8, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(c.Refs.Total())/float64(u.Refs.Total()), "checked/unchecked-refs")
	}
}

// BenchmarkAblationIndexing quantifies first-argument indexing: deriv
// compiled normally vs the same program forced through try/retry/trust
// chains would need a compiler switch; instead we measure the
// choice-point traffic share, the quantity indexing minimizes.
func BenchmarkAblationIndexing(b *testing.B) {
	bm, _ := BenchmarkByName("deriv")
	for i := 0; i < b.N; i++ {
		res, err := RunBenchmark(context.Background(), bm, 1, true)
		if err != nil {
			b.Fatal(err)
		}
		byArea := res.Refs.ByArea()
		var ctl, total int64
		for a, n := range byArea {
			total += n
			if trace.Area(a) == trace.AreaControl {
				ctl = n
			}
		}
		b.ReportMetric(float64(ctl)/float64(total), "control-share")
	}
}

var sinkString string

// BenchmarkRenderReports measures the report formatting paths.
func BenchmarkRenderReports(b *testing.B) {
	t2, err := RunTable2(context.Background(), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkString = t2.String() + Table1() + fmt.Sprint(i)
	}
}

// BenchmarkTraceEncode measures compact-codec encode throughput
// (refs/s) on a real parallel trace — the write-side cost of the
// persistent trace store.
func BenchmarkTraceEncode(b *testing.B) {
	bm, _ := BenchmarkByName("qsort")
	tr, err := TraceBenchmark(context.Background(), bm, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.WriteCompact(&buf, TraceMeta{Benchmark: "qsort", PEs: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
	b.ReportMetric(float64(buf.Len())/float64(tr.Len()), "bytes/ref")
}

// BenchmarkTraceDecode measures compact-codec streaming decode
// throughput (refs/s) — the read-side cost every store-served replay
// pays before the cache kernels see a reference. Recorded into
// BENCH_cache.json by scripts/bench_cache.sh.
func BenchmarkTraceDecode(b *testing.B) {
	bm, _ := BenchmarkByName("qsort")
	tr, err := TraceBenchmark(context.Background(), bm, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	var enc bytes.Buffer
	if err := tr.WriteCompact(&enc, TraceMeta{Benchmark: "qsort", PEs: 4}); err != nil {
		b.Fatal(err)
	}
	data := enc.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := trace.ReadStream(bytes.NewReader(data), trace.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if n != int64(tr.Len()) {
			b.Fatalf("decoded %d refs, want %d", n, tr.Len())
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

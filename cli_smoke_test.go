package rapwam

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// CLI smoke tests: build every command once and drive the binaries the
// way an operator's shell would, pinning down the flag-validation
// contract — bad input exits non-zero with one line NAMING the flag,
// never a deep stack trace — and that -h actually documents the flags.

var cliBins struct {
	once sync.Once
	dir  string
	err  error
}

// buildCLIs compiles ./cmd/... once per test run into a shared temp
// directory and returns it.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliBins.once.Do(func() {
		dir, err := os.MkdirTemp("", "rapwam-cli-*")
		if err != nil {
			cliBins.err = err
			return
		}
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
		if out, err := cmd.CombinedOutput(); err != nil {
			cliBins.err = fmt.Errorf("building CLIs: %v\n%s", err, out)
			return
		}
		cliBins.dir = dir
	})
	if cliBins.err != nil {
		t.Fatal(cliBins.err)
	}
	return cliBins.dir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if cliBins.dir != "" {
		os.RemoveAll(cliBins.dir)
	}
	os.Exit(code)
}

// runCLI executes one built binary and returns its exit code and
// combined output.
func runCLI(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), bin), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if ok := asExitError(err, &ee); !ok {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return ee.ExitCode(), string(out)
}

func asExitError(err error, ee **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*ee = e
	}
	return ok
}

func TestCLIBadFlagsExitNonZeroNamingTheFlag(t *testing.T) {
	tmp := t.TempDir()
	for _, tc := range []struct {
		name     string
		bin      string
		args     []string
		wantCode int
		mention  string
	}{
		{"experiments-pes-out-of-range", "experiments",
			[]string{"-exp", "table2", "-pes", "99"}, 2, "-pes"},
		{"experiments-negative-par", "experiments",
			[]string{"-exp", "table1", "-par", "-3"}, 2, "par"},
		{"cachesim-pes-out-of-range", "cachesim",
			[]string{"-pes", "0"}, 2, "-pes"},
		{"cachesim-pes-not-a-number", "cachesim",
			[]string{"-pes", "abc"}, 2, "-pes"},
		{"tracegen-negative-shards", "tracegen",
			[]string{"generate", "-tracedir", tmp, "-shards", "-2"}, 1, "shards"},
		{"tracegen-negative-exec-shards", "tracegen",
			[]string{"generate", "-tracedir", tmp, "-exec-shards", "-2"}, 1, "exec-shards"},
		{"experiments-negative-exec-shards", "experiments",
			[]string{"-exp", "table1", "-exec-shards", "-3"}, 2, "exec-shards"},
		{"rapwam-negative-exec-shards", "rapwam",
			[]string{"-bench", "deriv", "-exec-shards", "-1"}, 1, "exec-shards"},
		{"tracegen-no-subcommand", "tracegen",
			nil, 2, "usage"},
		{"rapwamd-malformed-chaos", "rapwamd",
			[]string{"-chaos", "bogus"}, 2, "-chaos"},
		{"rapwamd-negative-max-computes", "rapwamd",
			[]string{"-max-computes", "-1"}, 2, "-max-computes"},
		{"rapwamd-peers-without-self", "rapwamd",
			[]string{"-peers", "http://a:1,http://b:1"}, 2, "-self"},
		{"rapwamd-self-without-peers", "rapwamd",
			[]string{"-self", "http://a:1"}, 2, "-peers"},
		{"rapwamd-malformed-peer-url", "rapwamd",
			[]string{"-peers", "http://a:1,nonsense", "-self", "http://a:1"}, 2, "-peers"},
		{"rapwam-no-goal", "rapwam",
			nil, 2, "usage"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runCLI(t, tc.bin, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("%s %v: exit %d, want %d\n%s", tc.bin, tc.args, code, tc.wantCode, out)
			}
			if !strings.Contains(out, tc.mention) {
				t.Fatalf("%s %v: output does not mention %q:\n%s", tc.bin, tc.args, tc.mention, out)
			}
		})
	}
}

func TestCLIHelpDocumentsFlags(t *testing.T) {
	for _, tc := range []struct {
		bin      string
		args     []string
		mentions []string
	}{
		{"rapwam", []string{"-h"}, []string{"-bench", "-trace", "-cpuprofile", "-exec-shards"}},
		{"rapwamd", []string{"-h"}, []string{"-peers", "-self", "-chaos", "-max-computes", "-exec-shards"}},
		{"tracegen", []string{"-h"}, []string{"generate", "verify"}},
		{"cachesim", []string{"-h"}, []string{"-sweep", "-pes", "-tracedir"}},
		{"experiments", []string{"-h"}, []string{"-exp", "-pes", "-shards", "-exec-shards"}},
	} {
		t.Run(tc.bin, func(t *testing.T) {
			code, out := runCLI(t, tc.bin, tc.args...)
			if code != 0 && code != 2 {
				t.Fatalf("%s -h: exit %d\n%s", tc.bin, code, out)
			}
			for _, want := range tc.mentions {
				if !strings.Contains(out, want) {
					t.Fatalf("%s -h output does not document %q:\n%s", tc.bin, want, out)
				}
			}
		})
	}
}

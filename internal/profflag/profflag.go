// Package profflag is the shared implementation behind the CLIs'
// -cpuprofile/-memprofile flags (cmd/rapwam, cmd/tracegen,
// cmd/cachesim, cmd/experiments): start CPU profiling up front, write
// the heap profile at shutdown, and stay safe on error paths.
package profflag

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns
// an idempotent stop function that ends the CPU profile and writes the
// heap profile (when memPath is non-empty). Setup or teardown errors
// are reported through fail, the caller's fatal handler; fail may
// itself call the returned stop function — the idempotence guard flips
// before any work, so re-entry is a no-op rather than a loop. Empty
// paths make the corresponding half a no-op.
func Start(cpuPath, memPath string, fail func(error)) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fail(err)
			}
			runtime.GC() // report live steady-state heap, not transients
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
			f.Close()
		}
	}
}

package profflag

import (
	"os"
	"path/filepath"
	"testing"
)

// failCollector records errors the way the CLIs' fatal handlers would,
// without exiting the test process.
func failCollector(t *testing.T) (func(error), *[]error) {
	t.Helper()
	var errs []error
	return func(err error) {
		t.Logf("profflag fail: %v", err)
		errs = append(errs, err)
	}, &errs
}

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fail, errs := failCollector(t)

	stop := Start(cpu, mem, fail)
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()

	if len(*errs) != 0 {
		t.Fatalf("profiling reported errors: %v", *errs)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStopIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	mem := filepath.Join(dir, "mem.pprof")
	fail, errs := failCollector(t)

	stop := Start("", mem, fail)
	stop()
	st1, err := os.Stat(mem)
	if err != nil {
		t.Fatalf("heap profile not written: %v", err)
	}
	// Second and third stops must be no-ops: no error, no rewrite.
	stop()
	stop()
	st2, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(*errs) != 0 {
		t.Fatalf("repeated stop reported errors: %v", *errs)
	}
	if !st1.ModTime().Equal(st2.ModTime()) || st1.Size() != st2.Size() {
		t.Fatal("repeated stop rewrote the heap profile")
	}
}

func TestEmptyPathsAreNoOps(t *testing.T) {
	fail, errs := failCollector(t)
	stop := Start("", "", fail)
	stop()
	stop()
	if len(*errs) != 0 {
		t.Fatalf("no-op profiling reported errors: %v", *errs)
	}
}

// TestFailOnUnwritablePath: an uncreatable profile path goes through
// the caller's fail handler (which, like the CLIs' fatal handlers,
// does not return — modeled here with panic/recover), and a stop that
// failed stays a no-op on re-entry instead of failing again.
func TestFailOnUnwritablePath(t *testing.T) {
	var got []error
	fail := func(err error) { got = append(got, err); panic(err) }

	func() {
		defer func() { recover() }()
		Start(filepath.Join(t.TempDir(), "no", "such", "cpu.pprof"), "", fail)
	}()
	if len(got) == 0 {
		t.Fatal("uncreatable CPU profile path reported no error")
	}

	got = nil
	stop := Start("", filepath.Join(t.TempDir(), "no", "such", "mem.pprof"), fail)
	func() {
		defer func() { recover() }()
		stop()
	}()
	if len(got) != 1 {
		t.Fatalf("unwritable heap profile reported %d errors, want 1", len(got))
	}
	// The idempotence guard flipped before the failing write, so a
	// fatal handler's deferred re-entry is a no-op, not a loop.
	stop()
	if len(got) != 1 {
		t.Fatal("re-entering a failed stop reported the error again")
	}
}

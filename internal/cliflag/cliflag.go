// Package cliflag holds the worker-count flags shared by the command
// line tools, so -par and -shards mean the same thing — same help
// text, same validation, same 0 = GOMAXPROCS convention — in every
// command that has them (cmd/experiments, cmd/tracegen, cmd/rapwamd,
// cmd/cachesim).
package cliflag

import (
	"flag"
	"fmt"
	"runtime"
)

// ParHelp and ShardsHelp are the single help strings for the two
// worker-count flags.
const (
	ParHelp = "grid worker budget: concurrent experiment cells — engine runs and trace replays (0 = GOMAXPROCS)"
	// ShardsHelp documents -shards. The default of 1 (not GOMAXPROCS)
	// is deliberate: the paper's fully associative configurations
	// cannot shard, and a GOMAXPROCS default would shrink the grid
	// pool (the budget is shared) with nothing gained inside cells.
	ShardsHelp = "intra-cell parallelism: set-shard replay workers per cache configuration and trace-encode workers per generation (0 = GOMAXPROCS)"
	// ExecShardsHelp documents -exec-shards. Like -shards the default
	// is 1: sharded emulation only pays off for multi-PE parallel
	// cells, and grid tools share their worker budget with it.
	ExecShardsHelp = "emulator execution shards: host goroutines speculating independent PEs' cycles inside one engine run, trace-identical to the serial dispatcher (0 = GOMAXPROCS, 1 = serial)"
)

// Par registers the -par flag on fs.
func Par(fs *flag.FlagSet) *int { return fs.Int("par", 0, ParHelp) }

// Shards registers the -shards flag on fs.
func Shards(fs *flag.FlagSet) *int { return fs.Int("shards", 1, ShardsHelp) }

// ExecShards registers the -exec-shards flag on fs.
func ExecShards(fs *flag.FlagSet) *int { return fs.Int("exec-shards", 1, ExecShardsHelp) }

// Resolve validates a worker-count flag value: negative values are
// rejected, 0 resolves to runtime.GOMAXPROCS(0), positive values pass
// through. name appears in the error ("par", "shards").
func Resolve(name string, n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("-%s %d: worker count cannot be negative (0 = GOMAXPROCS)", name, n)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}

package cliflag

import (
	"flag"
	"runtime"
	"strings"
	"testing"
)

func TestResolve(t *testing.T) {
	if _, err := Resolve("par", -1); err == nil {
		t.Fatal("Resolve(-1): want error, got nil")
	} else if !strings.Contains(err.Error(), "-par -1") {
		t.Fatalf("Resolve(-1): error %q does not name the flag and value", err)
	}
	if n, err := Resolve("shards", 0); err != nil || n != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, %v; want GOMAXPROCS=%d", n, err, runtime.GOMAXPROCS(0))
	}
	if n, err := Resolve("par", 7); err != nil || n != 7 {
		t.Fatalf("Resolve(7) = %d, %v; want 7", n, err)
	}
}

// TestRegistration pins the shared flag names, defaults and help text:
// every command registering through this package presents identical
// -par and -shards flags.
func TestRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	par := Par(fs)
	shards := Shards(fs)
	if *par != 0 {
		t.Errorf("-par default = %d, want 0 (GOMAXPROCS)", *par)
	}
	if *shards != 1 {
		t.Errorf("-shards default = %d, want 1 (sequential)", *shards)
	}
	if f := fs.Lookup("par"); f == nil || f.Usage != ParHelp {
		t.Errorf("-par help text not the shared ParHelp")
	}
	if f := fs.Lookup("shards"); f == nil || f.Usage != ShardsHelp {
		t.Errorf("-shards help text not the shared ShardsHelp")
	}
	if err := fs.Parse([]string{"-par", "3", "-shards", "2"}); err != nil {
		t.Fatal(err)
	}
	if *par != 3 || *shards != 2 {
		t.Fatalf("parsed (par, shards) = (%d, %d), want (3, 2)", *par, *shards)
	}
}

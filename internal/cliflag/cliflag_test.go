package cliflag

import (
	"flag"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

func TestResolve(t *testing.T) {
	if _, err := Resolve("par", -1); err == nil {
		t.Fatal("Resolve(-1): want error, got nil")
	} else if !strings.Contains(err.Error(), "-par -1") {
		t.Fatalf("Resolve(-1): error %q does not name the flag and value", err)
	}
	if n, err := Resolve("shards", 0); err != nil || n != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, %v; want GOMAXPROCS=%d", n, err, runtime.GOMAXPROCS(0))
	}
	if n, err := Resolve("par", 7); err != nil || n != 7 {
		t.Fatalf("Resolve(7) = %d, %v; want 7", n, err)
	}
}

// TestRegistration pins the shared flag names, defaults and help text:
// every command registering through this package presents identical
// -par and -shards flags.
func TestRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	par := Par(fs)
	shards := Shards(fs)
	if *par != 0 {
		t.Errorf("-par default = %d, want 0 (GOMAXPROCS)", *par)
	}
	if *shards != 1 {
		t.Errorf("-shards default = %d, want 1 (sequential)", *shards)
	}
	if f := fs.Lookup("par"); f == nil || f.Usage != ParHelp {
		t.Errorf("-par help text not the shared ParHelp")
	}
	if f := fs.Lookup("shards"); f == nil || f.Usage != ShardsHelp {
		t.Errorf("-shards help text not the shared ShardsHelp")
	}
	if err := fs.Parse([]string{"-par", "3", "-shards", "2"}); err != nil {
		t.Fatal(err)
	}
	if *par != 3 || *shards != 2 {
		t.Fatalf("parsed (par, shards) = (%d, %d), want (3, 2)", *par, *shards)
	}
}

// TestResolveErrorPaths pins the rejection surface for every flag name
// that routes through Resolve: any negative count fails, the error
// names the exact flag and value the user typed (so the message is
// actionable from any of the four commands), the zero value comes back
// with the error, and the 0 = GOMAXPROCS convention is restated.
func TestResolveErrorPaths(t *testing.T) {
	for _, name := range []string{"par", "shards", "exec-shards"} {
		for _, n := range []int{-1, -7, -1 << 30} {
			got, err := Resolve(name, n)
			if err == nil {
				t.Errorf("Resolve(%q, %d): want error, got %d", name, n, got)
				continue
			}
			if got != 0 {
				t.Errorf("Resolve(%q, %d) = %d with error, want 0", name, n, got)
			}
			if want := fmt.Sprintf("-%s %d", name, n); !strings.Contains(err.Error(), want) {
				t.Errorf("Resolve(%q, %d) error %q does not contain %q", name, n, err, want)
			}
			if !strings.Contains(err.Error(), "GOMAXPROCS") {
				t.Errorf("Resolve(%q, %d) error %q does not restate the 0 = GOMAXPROCS convention", name, n, err)
			}
		}
	}
}

// TestExecShardsRegistration pins -exec-shards like TestRegistration
// pins -par and -shards: serial default, shared help text.
func TestExecShardsRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	es := ExecShards(fs)
	if *es != 1 {
		t.Errorf("-exec-shards default = %d, want 1 (serial dispatcher)", *es)
	}
	if f := fs.Lookup("exec-shards"); f == nil || f.Usage != ExecShardsHelp {
		t.Errorf("-exec-shards help text not the shared ExecShardsHelp")
	}
	if err := fs.Parse([]string{"-exec-shards", "4"}); err != nil {
		t.Fatal(err)
	}
	if *es != 4 {
		t.Fatalf("parsed -exec-shards = %d, want 4", *es)
	}
}

package tracestore

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/trace"
)

// sinkFunc adapts a function to trace.Sink.
type sinkFunc func(trace.Ref)

func (f sinkFunc) Add(r trace.Ref) { f(r) }

// fillCell writes the canonical synthetic trace + sidecar into s.
func fillCell(t *testing.T, s *Store, k Key) []trace.Ref {
	t.Helper()
	refs := synthRefs(30000, k.PEs)
	if err := s.Put(k, func(sink trace.Sink) error {
		for _, r := range refs {
			sink.Add(r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSidecar(k, map[string]int{"refs": len(refs)}); err != nil {
		t.Fatal(err)
	}
	return refs
}

// loadRefs fully decodes the stored cell.
func loadRefs(t *testing.T, s *Store, k Key) []trace.Ref {
	t.Helper()
	buf, _, err := s.Load(k)
	if err != nil {
		t.Fatal(err)
	}
	var out []trace.Ref
	buf.Replay(sinkFunc(func(r trace.Ref) { out = append(out, r) }))
	return out
}

// TestCorruptionMatrix flips one byte at several structurally distinct
// offsets of a stored trace — header, early chunk, mid chunk, footer —
// and requires the same outcome every time: the read fails with a
// *CorruptError that also reads as a miss, the damaged object moves to
// quarantine/ (counted), and regenerating the cell restores reads
// bit-identically. Corruption costs latency, never correctness.
func TestCorruptionMatrix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	want := fillCell(t, s, k)
	pristine, err := os.ReadFile(s.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	size := len(pristine)
	offsets := map[string]int{
		"header":      5,
		"early-chunk": 120,
		"mid-chunk":   size / 2,
		"late-chunk":  size - size/8,
		"footer":      size - 4,
	}
	for name, off := range offsets {
		t.Run(name, func(t *testing.T) {
			// Restore the pristine object, then damage one byte.
			if err := os.WriteFile(s.Path(k), pristine, 0o644); err != nil {
				t.Fatal(err)
			}
			damaged := append([]byte(nil), pristine...)
			damaged[off] ^= 0x40
			if err := os.WriteFile(s.Path(k), damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			s.ResetStats()

			_, _, err := s.Load(k)
			if err == nil {
				t.Fatalf("flipping byte %d read back cleanly", off)
			}
			if !IsCorrupt(err) {
				t.Fatalf("flipping byte %d: not a CorruptError: %v", off, err)
			}
			if !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("corrupt read must double as a miss for heal loops: %v", err)
			}
			if _, err := os.Stat(s.Path(k)); !os.IsNotExist(err) {
				t.Fatal("damaged object still in place (not quarantined)")
			}
			qdir := filepath.Join(dir, "quarantine")
			entries, _ := os.ReadDir(qdir)
			if len(entries) == 0 {
				t.Fatal("quarantine directory is empty")
			}
			if got := s.Stats().Quarantines; got != 1 {
				t.Fatalf("Quarantines = %d, want 1", got)
			}

			// Heal: regenerate and read back bit-identically.
			fillCell(t, s, k)
			got := loadRefs(t, s, k)
			if len(got) != len(want) {
				t.Fatalf("healed cell has %d refs, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("healed ref %d differs: %+v vs %+v", i, got[i], want[i])
				}
			}
			os.RemoveAll(qdir)
		})
	}
}

func TestTruncatedTraceQuarantines(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	fillCell(t, s, k)
	pristine, err := os.ReadFile(s.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	// The torn-write crash model: only a prefix hit the disk.
	if err := os.WriteFile(s.Path(k), pristine[:len(pristine)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replay(k, trace.Discard); !IsCorrupt(err) {
		t.Fatalf("torn trace replay: %v", err)
	}
	if s.Has(k) {
		t.Fatal("quarantined cell still reports Has")
	}
}

func TestCorruptSidecarQuarantines(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	fillCell(t, s, k)
	side := filepath.Join(s.Dir(), k.stem()+".json")
	if err := os.WriteFile(side, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var v map[string]int
	ok, err := s.LoadSidecar(k, &v)
	if ok || err != nil {
		t.Fatalf("corrupt sidecar must read as an absent sidecar: ok=%v err=%v", ok, err)
	}
	if got := s.Stats().Quarantines; got != 1 {
		t.Fatalf("Quarantines = %d, want 1", got)
	}
	// The trace itself is untouched.
	if !s.Has(k) {
		t.Fatal("sidecar quarantine took the trace with it")
	}
}

// TestSidecarSilentFlipQuarantines pins the sidecar checksum: a bit
// flip that turns one digit into another still parses as JSON, so
// without the envelope checksum it would read back as wrong-but-
// plausible statistics.
func TestSidecarSilentFlipQuarantines(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	fillCell(t, s, k)
	side := filepath.Join(s.Dir(), k.stem()+".json")
	data, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the low bit of the last payload digit: "...8}}" → "...9}}",
	// still perfectly valid JSON.
	i := bytes.LastIndexFunc(data, func(r rune) bool { return r >= '0' && r <= '9' })
	if i < 0 {
		t.Fatalf("no digit in sidecar %q", data)
	}
	data[i] ^= 0x01
	if !json.Valid(data) {
		t.Fatalf("flipped sidecar no longer parses, test needs a better offset: %q", data)
	}
	if err := os.WriteFile(side, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var v map[string]int
	ok, err := s.LoadSidecar(k, &v)
	if ok || err != nil {
		t.Fatalf("silently flipped sidecar must read as absent: ok=%v err=%v", ok, err)
	}
	if got := s.Stats().Quarantines; got != 1 {
		t.Fatalf("Quarantines = %d, want 1", got)
	}
}

func TestTransientReadDoesNotQuarantine(t *testing.T) {
	mem := storage.NewMem()
	s := NewOn(mem)
	k := testKey()
	fillCell(t, s, k)

	// Same objects behind a 100%-failing read path: every Load errors,
	// but transiently — the healthy object must stay in place.
	flaky := NewOn(storage.NewFault(mem, storage.Faults{ReadErr: 1, Seed: 9}))
	for i := 0; i < 10; i++ {
		_, _, err := flaky.Load(k)
		if err == nil {
			t.Fatal("ReadErr=1 load succeeded")
		}
		if IsCorrupt(err) {
			t.Fatalf("transient read error classified as corruption: %v", err)
		}
		if !storage.AsBackendError(err) {
			t.Fatalf("transient read error must classify as backend-side: %v", err)
		}
	}
	if got := flaky.Stats().Quarantines; got != 0 {
		t.Fatalf("flaky reads quarantined %d healthy objects", got)
	}
	if !s.Has(k) {
		t.Fatal("object vanished")
	}
}

func TestScrubQuarantinesAndReportsRecoverable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testKey()
	fillCell(t, s, good)
	bad := Key{Benchmark: "synth2", PEs: 2, Sequential: true, EmulatorVersion: "emuT"}
	fillCell(t, s, bad)

	// Damage one trace mid-file.
	data, err := os.ReadFile(s.Path(bad))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(s.Path(bad), data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := s.Scrub()
	if rep.Checked < 2 {
		t.Fatalf("scrub checked %d objects, want >= 2", rep.Checked)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("scrub quarantined %v, want exactly the damaged trace", rep.Quarantined)
	}
	foundBad := false
	for _, k := range rep.Recoverable {
		if k == bad {
			foundBad = true
		}
		if k == good {
			t.Fatal("scrub reported the intact cell as recoverable")
		}
	}
	if !foundBad {
		t.Fatalf("scrub Recoverable = %v, want to include %v", rep.Recoverable, bad)
	}
	if !s.Has(good) || s.Has(bad) {
		t.Fatal("scrub kept the wrong cells")
	}

	// Regenerate the quarantined cell: the report's key is all a caller
	// needs (tracegen verify -repair drives exactly this loop).
	refs := fillCell(t, s, bad)
	if got := loadRefs(t, s, bad); len(got) != len(refs) {
		t.Fatalf("repaired cell has %d refs, want %d", len(got), len(refs))
	}
	if rep := s.Scrub(); len(rep.Quarantined) != 0 {
		t.Fatalf("second scrub found new damage: %v", rep.Quarantined)
	}
}

// TestReplayDamageByteIdentity is the byte-level identity check under
// generic damage: for a spread of single-byte corruptions the replayed
// reference stream after healing matches the original exactly.
func TestReplayDamageByteIdentity(t *testing.T) {
	mem := storage.NewMem()
	s := NewOn(mem)
	k := testKey()
	want := fillCell(t, s, k)

	var goldenSink bytes.Buffer
	_, err := s.Replay(k, sinkFunc(func(r trace.Ref) {
		goldenSink.WriteByte(byte(r.PE))
		goldenSink.WriteByte(byte(r.Op))
	}))
	if err != nil {
		t.Fatal(err)
	}

	rc, err := mem.Get(k.name())
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}

	for off := 1; off < len(pristine); off = off*3 + 7 {
		damaged := append([]byte(nil), pristine...)
		damaged[off] ^= 0x10
		if err := mem.Put(k.name(), func(w io.Writer) error {
			_, err := w.Write(damaged)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Replay(k, trace.Discard); err == nil {
			// A flip that the decoder cannot distinguish from valid data
			// would be a codec bug (everything is CRC-covered).
			t.Fatalf("offset %d: damaged trace replayed cleanly", off)
		}
		// Heal and compare byte-for-byte.
		got := fillCell(t, s, k)
		if len(got) != len(want) {
			t.Fatalf("offset %d: healed %d refs, want %d", off, len(got), len(want))
		}
		var sink bytes.Buffer
		if _, err := s.Replay(k, sinkFunc(func(r trace.Ref) {
			sink.WriteByte(byte(r.PE))
			sink.WriteByte(byte(r.Op))
		})); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sink.Bytes(), goldenSink.Bytes()) {
			t.Fatalf("offset %d: healed replay differs from golden stream", off)
		}
	}
}

package tracestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func testKey() Key {
	return Key{Benchmark: "synth", PEs: 4, Sequential: false, EmulatorVersion: "emuT"}
}

// synthRefs builds a small deterministic trace.
func synthRefs(n, pes int) []trace.Ref {
	refs := make([]trace.Ref, n)
	addr := uint32(0x1000)
	for i := range refs {
		pe := uint8(i / 7 % pes)
		addr += uint32(i%5) - 2
		op := trace.OpRead
		if i%3 == 0 {
			op = trace.OpWrite
		}
		refs[i] = trace.Ref{Addr: addr + uint32(pe)<<16, PE: pe, Op: op,
			Obj: trace.ObjType(1 + i%(trace.NumObjTypes-1))}
	}
	return refs
}

func TestStorePutReplayRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	refs := synthRefs(30000, k.PEs)
	if s.Has(k) {
		t.Fatal("empty store reports Has")
	}
	if err := s.Put(k, func(sink trace.Sink) error {
		for _, r := range refs {
			sink.Add(r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !s.Has(k) {
		t.Fatal("store misses just-written key")
	}

	var got trace.Buffer
	meta, err := s.Replay(k, &got)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Refs != int64(len(refs)) || meta.Benchmark != k.Benchmark {
		t.Fatalf("meta = %+v", meta)
	}
	if len(got.Refs) != len(refs) {
		t.Fatalf("replayed %d refs, want %d", len(got.Refs), len(refs))
	}
	for i := range refs {
		if got.Refs[i] != refs[i] {
			t.Fatalf("ref %d mismatch", i)
		}
	}

	buf, _, err := s.Load(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf.Refs) != len(refs) {
		t.Fatalf("Load got %d refs", len(buf.Refs))
	}

	st := s.Stats()
	if st.Puts != 1 || st.Hits < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreMissIsNotExist(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.Replay(testKey(), trace.Discard); !os.IsNotExist(err) {
		t.Fatalf("miss error = %v, want not-exist", err)
	}
}

func TestStorePutErrorLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	k := testKey()
	genErr := os.ErrDeadlineExceeded
	if err := s.Put(k, func(sink trace.Sink) error {
		sink.Add(trace.Ref{Addr: 1, PE: 0, Obj: trace.ObjHeap})
		return genErr
	}); err != genErr {
		t.Fatalf("Put returned %v, want the generator's error", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed Put left %d files behind", len(entries))
	}
}

func TestStoreRejectsKeyMismatch(t *testing.T) {
	s, _ := Open(t.TempDir())
	k := testKey()
	if err := s.Put(k, func(sink trace.Sink) error {
		sink.Add(trace.Ref{Addr: 1, PE: 0, Obj: trace.ObjHeap})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Copy the file under a different key's name: the header check must
	// catch the forgery.
	other := k
	other.Benchmark = "other"
	data, err := os.ReadFile(s.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(other), data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replay(other, trace.Discard); err == nil {
		t.Fatal("header/key mismatch accepted")
	} else if !strings.Contains(err.Error(), "carries header") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStoreSidecar(t *testing.T) {
	s, _ := Open(t.TempDir())
	k := testKey()
	type payload struct {
		Cycles int64
		Name   string
	}
	if ok, err := s.LoadSidecar(k, &payload{}); err != nil || ok {
		t.Fatalf("empty sidecar: ok=%v err=%v", ok, err)
	}
	want := payload{Cycles: 12345, Name: "x"}
	if err := s.PutSidecar(k, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	ok, err := s.LoadSidecar(k, &got)
	if err != nil || !ok {
		t.Fatalf("LoadSidecar: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("sidecar = %+v, want %+v", got, want)
	}
}

func TestStoreListAndVerify(t *testing.T) {
	s, _ := Open(t.TempDir())
	keys := []Key{
		{Benchmark: "a", PEs: 1, Sequential: true, EmulatorVersion: "e"},
		{Benchmark: "b", PEs: 2, Sequential: false, EmulatorVersion: "e"},
	}
	for i, k := range keys {
		refs := synthRefs(1000*(i+1), k.PEs)
		if err := s.Put(k, func(sink trace.Sink) error {
			for _, r := range refs {
				sink.Add(r)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("List found %d entries, want 2", len(entries))
	}
	if errs := s.Verify(); len(errs) != 0 {
		t.Fatalf("Verify on clean store: %v", errs)
	}

	// Corrupt one payload byte near the end of the larger file; Verify
	// must name exactly that file.
	path := s.Path(keys[1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-40] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	errs := s.Verify()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), filepath.Base(path)) {
		t.Fatalf("Verify after corruption: %v", errs)
	}
}

func TestKeyHashDistinguishesCells(t *testing.T) {
	base := testKey()
	variants := []Key{
		{Benchmark: "synth2", PEs: 4, Sequential: false, EmulatorVersion: "emuT"},
		{Benchmark: "synth", PEs: 8, Sequential: false, EmulatorVersion: "emuT"},
		{Benchmark: "synth", PEs: 4, Sequential: true, EmulatorVersion: "emuT"},
		{Benchmark: "synth", PEs: 4, Sequential: false, EmulatorVersion: "emuU"},
	}
	seen := map[string]bool{base.stem(): true}
	for _, v := range variants {
		if seen[v.stem()] {
			t.Fatalf("key %v collides", v)
		}
		seen[v.stem()] = true
	}
}

func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte("partial"), 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}
	stale1 := write("put-abc" + TraceExt + ".tmp")
	stale2 := write("put-def.json.tmp")
	fresh := write("put-live" + TraceExt + ".tmp")
	keep := write("unrelated.rwt2")
	old := time.Now().Add(-2 * StaleTempAge)
	for _, p := range []string{stale1, stale2} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{stale1, stale2} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stale temp %s survived Open", p)
		}
	}
	// A young temp may belong to a live writer in another process, and
	// non-temp files are never the sweep's business.
	for _, p := range []string{fresh, keep} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s should have survived Open: %v", p, err)
		}
	}
}

// TestInterruptedWriteLeavesNoDroppings is the regression test for the
// killed-writer scenario end to end: a Put whose generator dies part
// way through must leave the store with no *.tmp files and no partial
// trace, and a later Put of the same cell must succeed cleanly.
func TestInterruptedWriteLeavesNoDroppings(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	boom := errors.New("writer interrupted")
	err = s.Put(k, func(sink trace.Sink) error {
		for _, r := range synthRefs(1000, k.PEs) {
			sink.Add(r)
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Put: err = %v, want the generator's error", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("interrupted Put left %s behind", e.Name())
	}
	if s.Has(k) {
		t.Fatal("interrupted Put registered the cell")
	}
	if err := s.Put(k, func(sink trace.Sink) error {
		for _, r := range synthRefs(1000, k.PEs) {
			sink.Add(r)
		}
		return nil
	}); err != nil {
		t.Fatalf("retry Put after interruption: %v", err)
	}
	if _, err := s.Replay(k, trace.Discard); err != nil {
		t.Fatalf("replay after retry: %v", err)
	}
}

func TestContentHashStable(t *testing.T) {
	// The key hash is the on-disk address of every stored trace; it
	// must never drift, or warm stores silently go cold. This pins the
	// scheme: 12 hex digits of SHA-256 over NUL-joined parts.
	k := Key{Benchmark: "qsort", PEs: 8, Sequential: false, EmulatorVersion: "emuT"}
	want := ContentHash("qsort", "8", "false", "emuT", fmt.Sprintf("v%d", trace.CodecVersion))
	if got := k.hash(); got != want {
		t.Fatalf("Key.hash = %s, want ContentHash form %s", got, want)
	}
	if len(want) != 12 {
		t.Fatalf("hash length %d, want 12 hex digits", len(want))
	}
	if ContentHash("a", "bc") == ContentHash("ab", "c") {
		t.Fatal("NUL joining failed: concatenation collision")
	}
}

func TestPutPanicLeavesNoDroppings(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A machine-error panic escaping the generator (e.g. an overflow in
	// the emulator) unwinds through Put; the temp file must still be
	// cleaned up.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		s.Put(testKey(), func(sink trace.Sink) error { panic("machine error") })
	}()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("panicking Put left %s behind", e.Name())
	}
}

package tracestore

import (
	"fmt"
	"io"
	"io/fs"
	"testing"

	"repro/internal/storage"
)

// vanishBackend makes Get on one object report a miss while List and
// Stat still see it: the window where a concurrent sweep, delete or
// quarantine removes an object between a scrub's listing and its read.
type vanishBackend struct {
	storage.Backend
	gone string
}

func (b *vanishBackend) Get(name string) (io.ReadCloser, error) {
	if name == b.gone {
		return nil, fmt.Errorf("vanished between list and read: %w", fs.ErrNotExist)
	}
	return b.Backend.Get(name)
}

// TestScrubVanishedObjectNotQuarantined is the regression test for a
// bug rapwamlint's errortaxonomy analyzer surfaced: verifyObject used
// to return the raw fs.ErrNotExist for an object that disappeared
// between List and Get, which Scrub's transient gate does not match —
// so Scrub would try to quarantine an object that no longer exists
// and report phantom corruption. A vanished object is a transient
// condition: reported, never quarantined.
func TestScrubVanishedObjectNotQuarantined(t *testing.T) {
	mem := storage.NewMem()
	healthy := NewOn(mem)
	k := testKey()
	fillCell(t, healthy, k)

	s := NewOn(&vanishBackend{Backend: mem, gone: k.name()})
	rep := s.Scrub()
	if len(rep.Quarantined) != 0 {
		t.Fatalf("scrub quarantined %v for an object that merely vanished mid-scrub", rep.Quarantined)
	}
	if len(rep.Errors) == 0 {
		t.Fatal("scrub swallowed the vanished object entirely: want a reported transient error")
	}
	transient := false
	for _, err := range rep.Errors {
		if storage.IsTransient(err) {
			transient = true
		}
	}
	if !transient {
		t.Fatalf("scrub errors %v: none classified transient", rep.Errors)
	}
	if !healthy.Has(k) {
		t.Fatal("the underlying object was removed by the scrub")
	}
	if rep := healthy.Scrub(); len(rep.Quarantined) != 0 || len(rep.Errors) != 0 {
		t.Fatalf("follow-up scrub over the healthy backend: quarantined %v, errors %v", rep.Quarantined, rep.Errors)
	}
}

// Package tracestore is the persistent, content-addressed trace store:
// the paper's "trace file" stage made durable. The RAP-WAM emulator is
// by far the most expensive stage of the Figure 1 pipeline, and a trace
// is a pure function of (benchmark, PEs, sequential, emulator version) —
// so each such cell is generated once, written to disk in the compact
// chunked codec (internal/trace, docs/TRACE_FORMAT.md), and replayed
// from disk by every later experiment. Replay is streaming: chunks are
// decoded straight into trace.BatchSink consumers, so a trace larger
// than RAM still feeds a full grid of cache simulators.
//
// # Layout
//
// A store is a flat directory. Each cell owns two files:
//
//	<bench>-p<PEs>-<seq|par>-<emuver>-<key hash>.rwt2   compact trace
//	<same stem>.json                                    run sidecar
//
// The name's human-readable prefix is advisory; the 12-hex-digit
// SHA-256 prefix of the canonical key string is what addresses the
// cell, and every read re-verifies the decoded header against the key.
// The sidecar carries the run's engine statistics (JSON), so experiment
// drivers that need only core.Stats never re-run the emulator either.
//
// # Concurrency
//
// Writes go through a temp file in the store directory followed by an
// atomic rename, so concurrent writers (including separate processes
// sharing a store directory) race benignly: one complete file wins.
// Readers only ever observe complete files. In-process single-flight
// deduplication is the caller's job (the experiments grid runner keys
// generation on the cell).
package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Key identifies one trace cell: the exact run that would regenerate
// the trace.
type Key struct {
	// Benchmark is the benchmark name (bench.ByName resolvable).
	Benchmark string
	// PEs is the processing-element count of the run.
	PEs int
	// Sequential selects the CGE-free WAM baseline compilation.
	Sequential bool
	// EmulatorVersion pins the engine build (core.EmulatorVersion);
	// traces from other versions are distinct cells.
	EmulatorVersion string
}

// String renders the key in the canonical, hashed form.
func (k Key) String() string {
	mode := "par"
	if k.Sequential {
		mode = "seq"
	}
	return fmt.Sprintf("%s@%dPE/%s/%s", k.Benchmark, k.PEs, mode, k.EmulatorVersion)
}

// ContentHash returns the canonical 12-hex-digit content address of a
// key: the SHA-256 prefix of the NUL-joined parts. It is the shared
// addressing scheme of every content-addressed store in the repo (the
// trace store here, the experiment result cache in internal/service) —
// NUL never occurs in a component, so distinct part lists can never
// collide by concatenation.
func ContentHash(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x00")))
	return hex.EncodeToString(h[:6])
}

// hash returns the 12-hex-digit content address of the key.
func (k Key) hash() string {
	return ContentHash(k.Benchmark, fmt.Sprint(k.PEs), fmt.Sprint(k.Sequential),
		k.EmulatorVersion, fmt.Sprintf("v%d", trace.CodecVersion))
}

// stem is the key's file name without extension.
func (k Key) stem() string {
	mode := "par"
	if k.Sequential {
		mode = "seq"
	}
	name := sanitize(k.Benchmark)
	return fmt.Sprintf("%s-p%d-%s-%s-%s", name, k.PEs, mode, sanitize(k.EmulatorVersion), k.hash())
}

// sanitize keeps file names portable.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// TraceExt is the file extension of stored compact traces.
const TraceExt = ".rwt2"

// Stats are the store's hit/miss counters since process start (or the
// last ResetStats). Misses count Has/Replay/Load lookups that found no
// file; Puts counts completed writes.
type Stats struct {
	Hits, Misses, Puts int64
}

// Store is a trace store rooted at one directory.
type Store struct {
	dir    string
	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
}

// StaleTempAge is how old a temp file must be before Open sweeps it.
// Writers hold their temp file only for the duration of one atomic
// temp+rename write (seconds); anything hours old is a stranded
// dropping from a killed writer, not a write in progress.
const StaleTempAge = time.Hour

// Open creates (if needed) and opens a store directory, sweeping any
// stale *.tmp files a killed writer left behind (the atomic
// temp+rename scheme cleans up after errors, but not after SIGKILL or
// a power cut mid-write). Temps younger than StaleTempAge are left
// alone — they may belong to a live writer in another process.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	SweepStaleTemps(dir, StaleTempAge)
	return &Store{dir: dir}, nil
}

// SweepStaleTemps removes *.tmp files in dir whose modification time
// is more than olderThan ago, returning how many were removed. It is
// shared by every store using the temp+rename write scheme (the trace
// store and the service result cache); sweep failures are deliberately
// non-fatal — a stranded temp wastes disk but corrupts nothing.
func SweepStaleTemps(dir string, olderThan time.Duration) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-olderThan)
	removed := 0
	for _, e := range entries {
		if !e.Type().IsRegular() || !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(dir, e.Name())) == nil {
			removed++
		}
	}
	return removed
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file a key's trace is (or would be) stored at.
func (s *Store) Path(k Key) string {
	return filepath.Join(s.dir, k.stem()+TraceExt)
}

// sidecarPath returns the key's run-sidecar file.
func (s *Store) sidecarPath(k Key) string {
	return filepath.Join(s.dir, k.stem()+".json")
}

// Has reports whether the store holds a trace for k. It counts toward
// the hit/miss statistics.
func (s *Store) Has(k Key) bool {
	_, err := os.Stat(s.Path(k))
	if err == nil {
		s.hits.Add(1)
		return true
	}
	s.misses.Add(1)
	return false
}

// Stats returns the hit/miss/put counters.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Puts: s.puts.Load()}
}

// ResetStats zeroes the counters.
func (s *Store) ResetStats() {
	s.hits.Store(0)
	s.misses.Store(0)
	s.puts.Store(0)
}

// verifyMeta checks a decoded header against the key it was looked up
// under, so a hand-edited or mis-copied store file cannot silently
// stand in for a different cell.
func verifyMeta(k Key, m trace.Meta) error {
	if m.Benchmark != k.Benchmark || m.PEs != k.PEs ||
		m.Sequential != k.Sequential || m.EmulatorVersion != k.EmulatorVersion {
		return fmt.Errorf("tracestore: file for %v carries header %s@%dPE (seq=%t) %s",
			k, m.Benchmark, m.PEs, m.Sequential, m.EmulatorVersion)
	}
	return nil
}

// Replay streams the stored trace for k into sink — chunk-at-a-time
// decode feeding BatchSink consumers directly, never materializing the
// trace — and returns its metadata (with footer-verified counts).
// A missing cell returns an error satisfying errors.Is(err, fs.ErrNotExist).
func (s *Store) Replay(k Key, sink trace.Sink) (trace.Meta, error) {
	f, err := os.Open(s.Path(k))
	if err != nil {
		s.misses.Add(1)
		return trace.Meta{}, err
	}
	defer f.Close()
	s.hits.Add(1)
	cr, err := trace.NewChunkReader(f)
	if err != nil {
		return trace.Meta{}, fmt.Errorf("tracestore: %s: %w", s.Path(k), err)
	}
	if err := verifyMeta(k, cr.Meta()); err != nil {
		return cr.Meta(), err
	}
	if _, err := cr.Replay(sink); err != nil {
		return cr.Meta(), fmt.Errorf("tracestore: %s: %w", s.Path(k), err)
	}
	return cr.Meta(), nil
}

// Meta decodes only the header of the stored trace for k, verifying it
// against the key, and returns it with the file size — the cheap
// metadata lookup behind the service's /v1/traces endpoint. A missing
// cell counts as a miss.
func (s *Store) Meta(k Key) (trace.Meta, int64, error) {
	meta, size, err := readHeader(s.Path(k))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
		}
		return trace.Meta{}, 0, err
	}
	if err := verifyMeta(k, meta); err != nil {
		return meta, size, err
	}
	s.hits.Add(1)
	return meta, size, nil
}

// Load fully decodes the stored trace for k into a Buffer (for callers
// that want the in-memory form; prefer Replay for streaming).
func (s *Store) Load(k Key) (*trace.Buffer, trace.Meta, error) {
	f, err := os.Open(s.Path(k))
	if err != nil {
		s.misses.Add(1)
		return nil, trace.Meta{}, err
	}
	defer f.Close()
	s.hits.Add(1)
	buf, meta, err := trace.ReadCompact(f)
	if err != nil {
		return nil, meta, fmt.Errorf("tracestore: %s: %w", s.Path(k), err)
	}
	if err := verifyMeta(k, meta); err != nil {
		return nil, meta, err
	}
	return buf, meta, nil
}

// Put generates and stores the trace for k: gen receives a Sink (the
// compact encoder over a temp file) and must emit the full reference
// stream; on success the temp file is atomically renamed into place.
// Any error (from gen or the encoder) leaves the store unchanged.
func (s *Store) Put(k Key, gen func(trace.Sink) error) (retErr error) {
	return s.PutWorkers(k, 1, gen)
}

// PutWorkers is Put with a parallel encoder: workers > 1 stages the
// stream through trace.ParallelChunkWriter, which encodes RWT2 chunks
// on that many goroutines (plus a dedicated in-order writer goroutine,
// overlapping generation with encode and I/O) while producing bytes
// identical to the sequential encoder — same content address, same
// golden hashes. workers <= 1 keeps the fully synchronous encoder.
func (s *Store) PutWorkers(k Key, workers int, gen func(trace.Sink) error) (retErr error) {
	tmp, err := os.CreateTemp(s.dir, "put-*"+TraceExt+".tmp")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	committed := false
	defer func() {
		// Clean the temp file up on error AND on panic (a machine
		// error escaping gen must not strand a dropping).
		if !committed {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	meta := trace.Meta{
		Benchmark:       k.Benchmark,
		PEs:             k.PEs,
		Sequential:      k.Sequential,
		EmulatorVersion: k.EmulatorVersion,
	}
	// Both writer kinds behind one closure pair; the parallel writer
	// must be Closed even when gen fails, or its pipeline goroutines
	// leak.
	var sink trace.Sink
	var closeWriter func() error
	if workers > 1 {
		cw, err := trace.NewParallelChunkWriter(tmp, meta, workers)
		if err != nil {
			return err
		}
		sink, closeWriter = cw, cw.Close
	} else {
		cw, err := trace.NewChunkWriter(tmp, meta)
		if err != nil {
			return err
		}
		sink, closeWriter = cw, cw.Close
	}
	if err := gen(sink); err != nil {
		closeWriter()
		return err
	}
	if err := closeWriter(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(k)); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	committed = true
	s.puts.Add(1)
	return nil
}

// PutSidecar stores v as the key's JSON run sidecar (atomically, like
// Put). The experiments grid stores the generating run's engine
// statistics here so stats-only drivers skip the emulator too.
func (s *Store) PutSidecar(k Key, v any) (retErr error) {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("tracestore: sidecar: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.json.tmp")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.sidecarPath(k)); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	committed = true
	return nil
}

// LoadSidecar unmarshals the key's JSON run sidecar into v, reporting
// ok=false (without error) when no sidecar exists.
func (s *Store) LoadSidecar(k Key, v any) (ok bool, err error) {
	data, err := os.ReadFile(s.sidecarPath(k))
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("tracestore: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("tracestore: sidecar %s: %w", s.sidecarPath(k), err)
	}
	return true, nil
}

// Entry describes one stored trace found by List.
type Entry struct {
	// Path is the trace file path.
	Path string
	// Meta is the decoded header (counts are header-declared; run
	// Verify for footer-checked totals).
	Meta trace.Meta
	// Bytes is the file size.
	Bytes int64
}

// List scans the store directory and returns every readable trace,
// sorted by file name. Files whose header does not parse are skipped
// (Verify reports them).
func (s *Store) List() ([]Entry, error) {
	names, err := s.traceFiles()
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		meta, size, err := readHeader(path)
		if err != nil {
			continue
		}
		out = append(out, Entry{Path: path, Meta: meta, Bytes: size})
	}
	return out, nil
}

// Verify fully decodes every trace in the store, checking header and
// chunk CRCs and footer totals, and returns one error per corrupt file
// (nil if the whole store is clean).
func (s *Store) Verify() []error {
	names, err := s.traceFiles()
	if err != nil {
		return []error{err}
	}
	var errs []error
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		if err := verifyFile(path); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
		}
	}
	return errs
}

// traceFiles returns the sorted .rwt2 file names in the store.
func (s *Store) traceFiles() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.Type().IsRegular() || !strings.HasSuffix(e.Name(), TraceExt) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// readHeader opens path and decodes only the compact header.
func readHeader(path string) (trace.Meta, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Meta{}, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return trace.Meta{}, 0, err
	}
	cr, err := trace.NewChunkReader(f)
	if err != nil {
		return trace.Meta{}, info.Size(), err
	}
	return cr.Meta(), info.Size(), nil
}

// verifyFile fully decodes one trace file.
func verifyFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cr, err := trace.NewChunkReader(f)
	if err != nil {
		return err
	}
	_, err = cr.Replay(trace.Discard)
	return err
}

// ReadFileMeta decodes the header of a compact trace file outside any
// store (for CLI inspection of bare .rwt2 files).
func ReadFileMeta(path string) (trace.Meta, int64, error) { return readHeader(path) }

// ReadFileFull fully decodes a compact trace file and returns its
// metadata with footer-verified totals (Refs, PerPE).
func ReadFileFull(path string) (trace.Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Meta{}, err
	}
	defer f.Close()
	cr, err := trace.NewChunkReader(f)
	if err != nil {
		return trace.Meta{}, err
	}
	if _, err := cr.Replay(trace.Discard); err != nil {
		return cr.Meta(), err
	}
	return cr.Meta(), nil
}

// VerifyFile fully decodes a compact trace file outside any store.
func VerifyFile(path string) error { return verifyFile(path) }

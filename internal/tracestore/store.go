// Package tracestore is the persistent, content-addressed trace store:
// the paper's "trace file" stage made durable. The RAP-WAM emulator is
// by far the most expensive stage of the Figure 1 pipeline, and a trace
// is a pure function of (benchmark, PEs, sequential, emulator version) —
// so each such cell is generated once, written in the compact chunked
// codec (internal/trace, docs/TRACE_FORMAT.md), and replayed by every
// later experiment. Replay is streaming: chunks are decoded straight
// into trace.BatchSink consumers, so a trace larger than RAM still
// feeds a full grid of cache simulators.
//
// # Layout
//
// A store is one storage.Backend namespace (a local directory in
// production — storage.Dir — or storage.Mem in tests). Each cell owns
// two objects:
//
//	<bench>-p<PEs>-<seq|par>-<emuver>-<key hash>.rwt2   compact trace
//	<same stem>.json                                    run sidecar
//
// The name's human-readable prefix is advisory; the 12-hex-digit
// SHA-256 prefix of the canonical key string is what addresses the
// cell, and every read re-verifies the decoded header against the key.
// The sidecar carries the run's engine statistics (JSON), so experiment
// drivers that need only core.Stats never re-run the emulator either.
//
// # Self-healing
//
// Because a trace is a pure function of its key, a corrupt object is
// never fatal: any read-path verification failure — bad magic, CRC
// mismatch, truncation, header/key mismatch, unparseable sidecar —
// moves the object to the backend's quarantine/ namespace, bumps the
// Quarantines counter, and surfaces a *CorruptError that also matches
// errors.Is(err, fs.ErrNotExist), so every caller already handling
// misses regenerates transparently. Corruption costs one regeneration,
// never correctness. Transient backend errors (storage.IsTransient)
// are NOT corruption and never quarantine — a flaky read must not
// evict a healthy object.
//
// # Concurrency
//
// Writes are atomic through the backend (temp file + rename on disk),
// so concurrent writers — including separate processes sharing a store
// directory — race benignly: one complete object wins. Readers only
// ever observe complete objects. In-process single-flight deduplication
// is the caller's job (internal/bench.EnsureStored keys generation on
// the cell).
package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/trace"
)

// Key identifies one trace cell: the exact run that would regenerate
// the trace.
type Key struct {
	// Benchmark is the benchmark name (bench.ByName resolvable).
	Benchmark string
	// PEs is the processing-element count of the run.
	PEs int
	// Sequential selects the CGE-free WAM baseline compilation.
	Sequential bool
	// EmulatorVersion pins the engine build (core.EmulatorVersion);
	// traces from other versions are distinct cells.
	EmulatorVersion string
}

// String renders the key in the canonical, hashed form.
func (k Key) String() string {
	mode := "par"
	if k.Sequential {
		mode = "seq"
	}
	return fmt.Sprintf("%s@%dPE/%s/%s", k.Benchmark, k.PEs, mode, k.EmulatorVersion)
}

// ContentHash returns the canonical 12-hex-digit content address of a
// key: the SHA-256 prefix of the NUL-joined parts. It is the shared
// addressing scheme of every content-addressed store in the repo (the
// trace store here, the experiment result cache in internal/service) —
// NUL never occurs in a component, so distinct part lists can never
// collide by concatenation.
func ContentHash(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x00")))
	return hex.EncodeToString(h[:6])
}

// hash returns the 12-hex-digit content address of the key.
func (k Key) hash() string {
	return ContentHash(k.Benchmark, fmt.Sprint(k.PEs), fmt.Sprint(k.Sequential),
		k.EmulatorVersion, fmt.Sprintf("v%d", trace.CodecVersion))
}

// stem is the key's object name without extension.
func (k Key) stem() string {
	mode := "par"
	if k.Sequential {
		mode = "seq"
	}
	name := sanitize(k.Benchmark)
	return fmt.Sprintf("%s-p%d-%s-%s-%s", name, k.PEs, mode, sanitize(k.EmulatorVersion), k.hash())
}

// sanitize keeps object names portable.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// TraceExt is the extension of stored compact traces.
const TraceExt = ".rwt2"

// Stats are the store's counters since process start (or the last
// ResetStats). Misses count Has/Replay/Load lookups that found no
// object; Puts counts completed writes; Quarantines counts corrupt
// objects moved aside by the self-healing read paths and Scrub.
type Stats struct {
	Hits, Misses, Puts int64
	Quarantines        int64
}

// Store is a trace store over one storage backend.
type Store struct {
	b   storage.Backend
	dir string // filesystem root when directory-backed, "" otherwise

	hits        atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	quarantines atomic.Int64
}

// StaleTempAge is the default age past which Open sweeps temp-file
// droppings (and aged quarantined objects). Writers hold their temp
// file only for the duration of one atomic temp+rename write
// (seconds); anything hours old is a stranded dropping from a killed
// writer, not a write in progress.
const StaleTempAge = time.Hour

// Open creates (if needed) and opens a store directory with the
// default sweep age. See OpenDir.
func Open(dir string) (*Store, error) { return OpenDir(dir, StaleTempAge) }

// OpenDir creates (if needed) and opens a directory-backed store,
// sweeping stale *.tmp files a killed writer left behind and aged
// quarantined objects (the atomic temp+rename scheme cleans up after
// errors, but not after SIGKILL or a power cut mid-write). Temps
// younger than tempAge are left alone — they may belong to a live
// writer in another process; tempAge <= 0 disables the opening sweep.
func OpenDir(dir string, tempAge time.Duration) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracestore: empty directory")
	}
	d, err := storage.NewDir(dir, tempAge)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	return &Store{b: d, dir: dir}, nil
}

// NewOn opens a store over an arbitrary backend (in-memory stores for
// tests, fault-injection wrappers for chaos runs, networked backends
// later).
func NewOn(b storage.Backend) *Store {
	s := &Store{b: b}
	if d, ok := b.(*storage.Dir); ok {
		s.dir = d.Root()
	}
	return s
}

// SweepStaleTemps removes *.tmp files in dir whose modification time
// is more than olderThan ago, returning how many were removed. It is
// shared by every store using the temp+rename write scheme; sweep
// failures are deliberately non-fatal — a stranded temp wastes disk
// but corrupts nothing. (Backend-hosted stores sweep through
// Store.Sweep; this remains for bare directories.)
func SweepStaleTemps(dir string, olderThan time.Duration) int {
	d, err := storage.NewDir(dir, 0)
	if err != nil {
		return 0
	}
	return d.Sweep(olderThan)
}

// Backend returns the store's storage backend.
func (s *Store) Backend() storage.Backend { return s.b }

// Dir returns the store's root directory ("" when the backend is not a
// local directory).
func (s *Store) Dir() string { return s.dir }

// name returns the trace object name for a key.
func (k Key) name() string { return k.stem() + TraceExt }

// sidecarName returns the run-sidecar object name for a key.
func (k Key) sidecarName() string { return k.stem() + ".json" }

// Path returns the file a key's trace is (or would be) stored at for
// directory-backed stores; for other backends it returns the object
// name.
func (s *Store) Path(k Key) string {
	if s.dir == "" {
		return k.name()
	}
	return filepath.Join(s.dir, k.name())
}

// Has reports whether the store holds a trace for k. It counts toward
// the hit/miss statistics. Backend errors read as absent: the caller's
// next step (regenerate) is also the right response to a broken probe.
func (s *Store) Has(k Key) bool {
	_, err := s.b.Stat(k.name())
	if err == nil {
		s.hits.Add(1)
		return true
	}
	s.misses.Add(1)
	return false
}

// Stats returns the hit/miss/put/quarantine counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Quarantines: s.quarantines.Load(),
	}
}

// ResetStats zeroes the counters.
func (s *Store) ResetStats() {
	s.hits.Store(0)
	s.misses.Store(0)
	s.puts.Store(0)
	s.quarantines.Store(0)
}

// Sweep removes stale temp droppings and aged quarantined objects.
func (s *Store) Sweep(olderThan time.Duration) int { return s.b.Sweep(olderThan) }

// CorruptError reports a stored object that failed read-path
// verification and was quarantined. It matches
// errors.Is(err, fs.ErrNotExist): after quarantine the cell IS absent,
// so every caller that handles misses by regenerating heals corruption
// with the same code path.
type CorruptError struct {
	// Key is the cell the object was looked up under.
	Key Key
	// Name is the object name, now under quarantine/ (unless the
	// quarantine move itself failed; the object then stays in place
	// and the next read retries the move).
	Name string
	// Err is the verification failure.
	Err error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("tracestore: %s corrupt (quarantined): %v", e.Name, e.Err)
}

// Unwrap exposes both the verification failure and fs.ErrNotExist (a
// quarantined cell is a miss).
func (e *CorruptError) Unwrap() []error { return []error{e.Err, fs.ErrNotExist} }

// IsCorrupt reports whether err is a quarantined-corruption error from
// this store (or the result cache, which uses the same type via
// AsCorrupt-style matching).
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// quarantine moves a failed object into the backend's quarantine/
// namespace, counting it. If the move fails (the backend may itself be
// faulty) it falls back to deleting the object — a corrupt object that
// kept its name would mask the regenerated cell forever, which is the
// one outcome self-healing cannot allow. Both failing is fine: the
// object stays, the next read fails verification again and retries.
func (s *Store) quarantine(name string) {
	if err := s.b.Rename(name, storage.QuarantinePrefix+name); err != nil {
		if s.b.Delete(name) != nil {
			return
		}
	}
	s.quarantines.Add(1)
}

// readFail classifies a read-path failure on the object for k:
// transient backend errors pass through (retry, don't quarantine);
// anything else is corruption — quarantine and report a *CorruptError
// that reads as a miss.
func (s *Store) readFail(k Key, name string, err error) error {
	if storage.IsTransient(err) || storage.AsBackendError(err) {
		return fmt.Errorf("tracestore: %s: %w", name, err)
	}
	s.quarantine(name)
	return &CorruptError{Key: k, Name: name, Err: err}
}

// Replay streams the stored trace for k into sink — chunk-at-a-time
// decode feeding BatchSink consumers directly, never materializing the
// trace — and returns its metadata (with footer-verified counts).
// A missing cell returns an error satisfying errors.Is(err,
// fs.ErrNotExist); so does a corrupt (now quarantined) one. NOTE: a
// mid-stream failure may already have fed sink a partial prefix —
// retrying callers must recreate their consumer state.
func (s *Store) Replay(k Key, sink trace.Sink) (trace.Meta, error) {
	name := k.name()
	rc, err := s.b.Get(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.misses.Add(1)
			return trace.Meta{}, err
		}
		return trace.Meta{}, fmt.Errorf("tracestore: %s: %w", name, err)
	}
	defer rc.Close()
	s.hits.Add(1)
	cr, err := trace.NewChunkReader(rc)
	if err != nil {
		return trace.Meta{}, s.readFail(k, name, err)
	}
	if err := verifyMeta(k, cr.Meta()); err != nil {
		return cr.Meta(), s.readFail(k, name, err)
	}
	if _, err := cr.Replay(sink); err != nil {
		return cr.Meta(), s.readFail(k, name, err)
	}
	return cr.Meta(), nil
}

// Meta decodes only the header of the stored trace for k, verifying it
// against the key, and returns it with the object size — the cheap
// metadata lookup behind the service's /v1/traces endpoint. A missing
// cell counts as a miss; a corrupt header quarantines the object.
func (s *Store) Meta(k Key) (trace.Meta, int64, error) {
	name := k.name()
	info, err := s.b.Stat(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.misses.Add(1)
		}
		return trace.Meta{}, 0, err
	}
	rc, err := s.b.Get(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.misses.Add(1)
			return trace.Meta{}, 0, err
		}
		return trace.Meta{}, 0, fmt.Errorf("tracestore: %s: %w", name, err)
	}
	defer rc.Close()
	cr, err := trace.NewChunkReader(rc)
	if err != nil {
		return trace.Meta{}, info.Size, s.readFail(k, name, err)
	}
	if err := verifyMeta(k, cr.Meta()); err != nil {
		return cr.Meta(), info.Size, s.readFail(k, name, err)
	}
	s.hits.Add(1)
	return cr.Meta(), info.Size, nil
}

// Load fully decodes the stored trace for k into a Buffer (for callers
// that want the in-memory form; prefer Replay for streaming).
func (s *Store) Load(k Key) (*trace.Buffer, trace.Meta, error) {
	name := k.name()
	rc, err := s.b.Get(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.misses.Add(1)
			return nil, trace.Meta{}, err
		}
		return nil, trace.Meta{}, fmt.Errorf("tracestore: %s: %w", name, err)
	}
	defer rc.Close()
	s.hits.Add(1)
	buf, meta, err := trace.ReadCompact(rc)
	if err != nil {
		return nil, meta, s.readFail(k, name, err)
	}
	if err := verifyMeta(k, meta); err != nil {
		return nil, meta, s.readFail(k, name, err)
	}
	return buf, meta, nil
}

// verifyMeta checks a decoded header against the key it was looked up
// under, so a hand-edited or mis-copied store object cannot silently
// stand in for a different cell.
func verifyMeta(k Key, m trace.Meta) error {
	if m.Benchmark != k.Benchmark || m.PEs != k.PEs ||
		m.Sequential != k.Sequential || m.EmulatorVersion != k.EmulatorVersion {
		return fmt.Errorf("tracestore: file for %v carries header %s@%dPE (seq=%t) %s",
			k, m.Benchmark, m.PEs, m.Sequential, m.EmulatorVersion)
	}
	return nil
}

// Put generates and stores the trace for k: gen receives a Sink (the
// compact encoder over the backend's atomic writer) and must emit the
// full reference stream. Any error (from gen or the encoder) leaves
// the store unchanged.
func (s *Store) Put(k Key, gen func(trace.Sink) error) error {
	return s.PutWorkers(k, 1, gen)
}

// PutWorkers is Put with a parallel encoder: workers > 1 stages the
// stream through trace.ParallelChunkWriter, which encodes RWT2 chunks
// on that many goroutines (plus a dedicated in-order writer goroutine,
// overlapping generation with encode and I/O) while producing bytes
// identical to the sequential encoder — same content address, same
// golden hashes. workers <= 1 keeps the fully synchronous encoder.
func (s *Store) PutWorkers(k Key, workers int, gen func(trace.Sink) error) error {
	meta := trace.Meta{
		Benchmark:       k.Benchmark,
		PEs:             k.PEs,
		Sequential:      k.Sequential,
		EmulatorVersion: k.EmulatorVersion,
	}
	err := s.b.Put(k.name(), func(w io.Writer) error {
		// Both writer kinds behind one closure pair; the parallel
		// writer must be Closed even when gen fails, or its pipeline
		// goroutines leak.
		var sink trace.Sink
		var closeWriter func() error
		if workers > 1 {
			cw, err := trace.NewParallelChunkWriter(w, meta, workers)
			if err != nil {
				return err
			}
			sink, closeWriter = cw, cw.Close
		} else {
			cw, err := trace.NewChunkWriter(w, meta)
			if err != nil {
				return err
			}
			sink, closeWriter = cw, cw.Close
		}
		if err := gen(sink); err != nil {
			closeWriter()
			return err
		}
		return closeWriter()
	})
	if err != nil {
		return err
	}
	s.puts.Add(1)
	return nil
}

// sidecarEnvelope wraps the sidecar payload with a checksum. Unlike the
// CRC-chunked trace codec, bare JSON has no integrity whatsoever: a
// single flipped bit can turn one digit into another and still parse,
// reading back as wrong-but-plausible statistics. The checksum turns
// that silent corruption into a quarantine-and-regenerate.
type sidecarEnvelope struct {
	SHA  string          `json:"sha256"`
	Data json.RawMessage `json:"data"`
}

// sidecarSHA is the sidecarEnvelope checksum of a raw payload.
func sidecarSHA(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// PutSidecar stores v as the key's JSON run sidecar (atomically, like
// Put). The experiments grid stores the generating run's engine
// statistics here so stats-only drivers skip the emulator too.
func (s *Store) PutSidecar(k Key, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("tracestore: sidecar: %w", err)
	}
	data, err := json.Marshal(sidecarEnvelope{SHA: sidecarSHA(raw), Data: raw})
	if err != nil {
		return fmt.Errorf("tracestore: sidecar: %w", err)
	}
	err = s.b.Put(k.sidecarName(), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	return nil
}

// LoadSidecar unmarshals the key's JSON run sidecar into v, reporting
// ok=false (without error) when no sidecar exists — and likewise when
// the sidecar is corrupt: the bad object is quarantined and the caller
// regenerates, the same self-healing contract as trace reads. Only
// transient backend failures surface as errors.
func (s *Store) LoadSidecar(k Key, v any) (ok bool, err error) {
	name := k.sidecarName()
	rc, err := s.b.Get(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("tracestore: %s: %w", name, err)
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		if storage.IsTransient(err) || storage.AsBackendError(err) {
			return false, fmt.Errorf("tracestore: %s: %w", name, err)
		}
		s.quarantine(name)
		return false, nil
	}
	if err := verifySidecar(data, v); err != nil {
		s.quarantine(name)
		return false, nil
	}
	return true, nil
}

// verifySidecar checks a raw sidecar object's envelope and checksum,
// unmarshalling the payload into v (which may be nil to verify only).
func verifySidecar(data []byte, v any) error {
	var env sidecarEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return err
	}
	if env.SHA != sidecarSHA(env.Data) {
		return errors.New("sidecar payload checksum mismatch")
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(env.Data, v)
}

// Entry describes one stored trace found by List.
type Entry struct {
	// Path is the trace file path (object name on non-directory
	// backends).
	Path string
	// Meta is the decoded header (counts are header-declared; run
	// Verify for footer-checked totals).
	Meta trace.Meta
	// Bytes is the object size.
	Bytes int64
}

// List scans the store and returns every readable trace, sorted by
// name. Objects whose header does not parse are skipped (Verify and
// Scrub report them).
func (s *Store) List() ([]Entry, error) {
	names, err := s.traceNames()
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, name := range names {
		meta, size, err := s.readObjectHeader(name)
		if err != nil {
			continue
		}
		path := name
		if s.dir != "" {
			path = filepath.Join(s.dir, name)
		}
		out = append(out, Entry{Path: path, Meta: meta, Bytes: size})
	}
	return out, nil
}

// Verify fully decodes every trace in the store, checking header and
// chunk CRCs and footer totals, and returns one error per corrupt
// object (nil if the whole store is clean). Verify is strictly
// read-only — it never quarantines; Scrub is the repairing variant.
func (s *Store) Verify() []error {
	names, err := s.traceNames()
	if err != nil {
		return []error{err}
	}
	var errs []error
	for _, name := range names {
		if err := s.verifyObject(name); err != nil {
			path := name
			if s.dir != "" {
				path = filepath.Join(s.dir, name)
			}
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
		}
	}
	return errs
}

// ScrubReport summarizes one Scrub pass.
type ScrubReport struct {
	// Checked counts objects examined (traces and sidecars).
	Checked int
	// Quarantined lists object names moved to quarantine/.
	Quarantined []string
	// Recoverable lists the keys of quarantined traces whose headers
	// were still readable — the cells a repair pass can regenerate.
	Recoverable []Key
	// Errors holds one diagnostic per quarantined or unreadable object.
	Errors []error
}

// Scrub is the repairing scan behind `tracegen verify -repair` and the
// daemon's background scrubber: it fully decodes every trace (header,
// chunk CRCs, footer totals, header-vs-name key check) and validates
// every sidecar's JSON, quarantining whatever fails and reporting
// which cells are regenerable. A clean store returns an empty report.
func (s *Store) Scrub() ScrubReport {
	var rep ScrubReport
	names, err := s.traceNames()
	if err != nil {
		rep.Errors = append(rep.Errors, err)
		return rep
	}
	for _, name := range names {
		rep.Checked++
		verr := s.verifyObject(name)
		var k Key
		haveKey := false
		if meta, _, err := s.readObjectHeader(name); err == nil {
			k = Key{Benchmark: meta.Benchmark, PEs: meta.PEs,
				Sequential: meta.Sequential, EmulatorVersion: meta.EmulatorVersion}
			haveKey = true
			if verr == nil && k.name() != name {
				verr = fmt.Errorf("object name %s does not match header key %v (want %s)", name, k, k.name())
			}
		}
		if verr == nil {
			continue
		}
		if storage.IsTransient(verr) || storage.AsBackendError(verr) {
			// A flaky read is not corruption; report it and move on.
			rep.Errors = append(rep.Errors, fmt.Errorf("%s: %w", name, verr))
			continue
		}
		s.quarantine(name)
		rep.Quarantined = append(rep.Quarantined, name)
		rep.Errors = append(rep.Errors, fmt.Errorf("%s: %w", name, verr))
		if haveKey && k.name() == name {
			rep.Recoverable = append(rep.Recoverable, k)
		}
	}
	sidecars, err := s.b.List("")
	if err != nil {
		rep.Errors = append(rep.Errors, fmt.Errorf("tracestore: %w", err))
		return rep
	}
	for _, name := range sidecars {
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		rep.Checked++
		rc, err := s.b.Get(name)
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("%s: %w", name, err))
			continue
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("%s: %w", name, err))
			continue
		}
		if err := verifySidecar(data, nil); err != nil {
			s.quarantine(name)
			rep.Quarantined = append(rep.Quarantined, name)
			rep.Errors = append(rep.Errors, fmt.Errorf("%s: invalid sidecar: %w", name, err))
		}
	}
	return rep
}

// traceNames returns the sorted trace object names in the store.
func (s *Store) traceNames() ([]string, error) {
	names, err := s.b.List("")
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil // a never-written namespace is an empty store
		}
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	var out []string
	for _, name := range names {
		if strings.HasSuffix(name, TraceExt) {
			out = append(out, name)
		}
	}
	return out, nil
}

// readObjectHeader decodes only the compact header of one object.
// Misses pass through raw so errors.Is(err, fs.ErrNotExist) keeps
// working; backend failures gain store context.
func (s *Store) readObjectHeader(name string) (trace.Meta, int64, error) {
	info, err := s.b.Stat(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return trace.Meta{}, 0, err
		}
		return trace.Meta{}, 0, fmt.Errorf("tracestore: header %s: %w", name, err)
	}
	rc, err := s.b.Get(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return trace.Meta{}, info.Size, err
		}
		return trace.Meta{}, info.Size, fmt.Errorf("tracestore: header %s: %w", name, err)
	}
	defer rc.Close()
	cr, err := trace.NewChunkReader(rc)
	if err != nil {
		return trace.Meta{}, info.Size, err
	}
	return cr.Meta(), info.Size, nil
}

// verifyObject fully decodes one stored trace. An object that
// vanished between listing and reading (a concurrent sweep, delete or
// quarantine) is a transient condition, not corruption: without the
// classification, Scrub's transient gate would miss the raw
// fs.ErrNotExist and try to quarantine an object that no longer
// exists.
func (s *Store) verifyObject(name string) error {
	rc, err := s.b.Get(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return storage.Transient(err)
		}
		return err
	}
	defer rc.Close()
	cr, err := trace.NewChunkReader(rc)
	if err != nil {
		return err
	}
	_, err = cr.Replay(trace.Discard)
	return err
}

// ReadFileMeta decodes the header of a compact trace file outside any
// store (for CLI inspection of bare .rwt2 files).
func ReadFileMeta(path string) (trace.Meta, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Meta{}, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return trace.Meta{}, 0, err
	}
	cr, err := trace.NewChunkReader(f)
	if err != nil {
		return trace.Meta{}, info.Size(), err
	}
	return cr.Meta(), info.Size(), nil
}

// ReadFileFull fully decodes a compact trace file and returns its
// metadata with footer-verified totals (Refs, PerPE).
func ReadFileFull(path string) (trace.Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Meta{}, err
	}
	defer f.Close()
	cr, err := trace.NewChunkReader(f)
	if err != nil {
		return trace.Meta{}, err
	}
	if _, err := cr.Replay(trace.Discard); err != nil {
		return cr.Meta(), err
	}
	return cr.Meta(), nil
}

// VerifyFile fully decodes a compact trace file outside any store.
func VerifyFile(path string) error {
	_, err := ReadFileFull(path)
	return err
}

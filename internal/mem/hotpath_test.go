package mem

// Tests for the staged reference path, the O(1) classification table
// and the slab pool — the memory-side half of the emulator hot-path
// rework. The invariants here are what the golden trace-parity suite
// (internal/bench) relies on: staging preserves emission order
// exactly, classification is bit-equal to the arithmetic definition,
// and a released slab really is all-zero before it is handed to the
// next engine.

import (
	"testing"

	"repro/internal/trace"
)

// refLayout is a small layout exercised by the hot-path tests.
var refLayout = Layout{Workers: 3, Heap: 512, Local: 256, Control: 256, Trail: 128, PDL: 64, Goal: 64, Msg: 64}

// TestStagingPreservesOrder drives an interleaved read/write pattern
// across PEs and areas and checks the sink sees exactly the emission
// order, including across flush boundaries.
func TestStagingPreservesOrder(t *testing.T) {
	buf := trace.NewBuffer(0)
	m := NewMemory(refLayout, buf)
	var want []trace.Ref
	rng := uint64(12345)
	n := stageRefs*2 + 1234 // cross several flush boundaries
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		pe := int(rng>>33) % refLayout.Workers
		heap := m.Region(pe, trace.AreaHeap)
		addr := heap.Base + int(rng>>40)%heap.Size()
		if rng&1 == 0 {
			m.Write(pe, addr, MakeInt(int64(i)), trace.ObjHeap)
			want = append(want, trace.Ref{Addr: uint32(addr), PE: uint8(pe), Op: trace.OpWrite, Obj: trace.ObjHeap})
		} else {
			m.Read(pe, addr, trace.ObjEnvPVar)
			want = append(want, trace.Ref{Addr: uint32(addr), PE: uint8(pe), Op: trace.OpRead, Obj: trace.ObjEnvPVar})
		}
	}
	m.Flush()
	if buf.Len() != len(want) {
		t.Fatalf("sink saw %d refs, want %d", buf.Len(), len(want))
	}
	for i, r := range buf.Refs {
		if r != want[i] {
			t.Fatalf("ref %d = %v, want %v", i, r, want[i])
		}
	}
	if got := m.Counter().Total(); got != int64(len(want)) {
		t.Errorf("counter total = %d, want %d", got, len(want))
	}
}

// TestCounterMatchesPerRefTally cross-checks the flat flush tally
// against a reference trace.Counter fed one reference at a time.
func TestCounterMatchesPerRefTally(t *testing.T) {
	buf := trace.NewBuffer(0)
	m := NewMemory(refLayout, buf)
	objs := []trace.ObjType{trace.ObjHeap, trace.ObjEnvPVar, trace.ObjTrail, trace.ObjGoalFrame, trace.ObjMessage}
	rng := uint64(99)
	for i := 0; i < 3*stageRefs/2; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		pe := int(rng>>33) % refLayout.Workers
		heap := m.Region(pe, trace.AreaHeap)
		addr := heap.Base + int(rng>>40)%heap.Size()
		obj := objs[int(rng>>20)%len(objs)]
		if rng&1 == 0 {
			m.Write(pe, addr, MakeInt(1), obj)
		} else {
			m.Read(pe, addr, obj)
		}
	}
	m.Flush()
	var want trace.Counter
	for _, r := range buf.Refs {
		want.Add(r)
	}
	got := m.Counter()
	if *got != want {
		t.Errorf("materialized counter differs from per-ref reference:\n got %+v\nwant %+v", *got, want)
	}
}

// TestClassifyMatchesArithmetic scans every address of a layout and
// compares the table-based Classify against the arithmetic definition
// (div/mod over the span plus a linear area scan).
func TestClassifyMatchesArithmetic(t *testing.T) {
	m := NewMemory(refLayout, nil)
	span := m.Layout().SpanWords()
	sizes := []struct {
		area trace.Area
		size int
	}{
		{trace.AreaHeap, m.Layout().Heap},
		{trace.AreaLocal, m.Layout().Local},
		{trace.AreaControl, m.Layout().Control},
		{trace.AreaTrail, m.Layout().Trail},
		{trace.AreaPDL, m.Layout().PDL},
		{trace.AreaGoal, m.Layout().Goal},
		{trace.AreaMsg, m.Layout().Msg},
	}
	for addr := 0; addr < m.Size(); addr++ {
		wantPE := addr / span
		off := addr % span
		wantArea := trace.AreaNone
		for _, s := range sizes {
			if off < s.size {
				wantArea = s.area
				break
			}
			off -= s.size
		}
		gotPE, gotArea := m.Classify(addr)
		if gotPE != wantPE || gotArea != wantArea {
			t.Fatalf("Classify(%d) = (%d,%v), want (%d,%v)", addr, gotPE, gotArea, wantPE, wantArea)
		}
	}
	if pe, a := m.Classify(-1); pe != -1 || a != trace.AreaNone {
		t.Errorf("Classify(-1) = (%d,%v)", pe, a)
	}
	if pe, a := m.Classify(m.Size()); pe != -1 || a != trace.AreaNone {
		t.Errorf("Classify(size) = (%d,%v)", pe, a)
	}
}

// TestReleaseRestoresZeroSlab dirties memory through every write path
// (traced writes, Pokes, cross-PE writes), releases, and verifies the
// recycled slab is indistinguishable from a fresh allocation: the next
// NewMemory of the same size must hand out all-zero words.
func TestReleaseRestoresZeroSlab(t *testing.T) {
	m := NewMemory(refLayout, nil)
	rng := uint64(7)
	for i := 0; i < 4*stageRefs+99; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		pe := int(rng>>33) % refLayout.Workers
		area := []trace.Area{trace.AreaHeap, trace.AreaLocal, trace.AreaTrail, trace.AreaMsg}[int(rng>>40)%4]
		reg := m.Region(pe, area)
		addr := reg.Base + int(rng>>45)%reg.Size()
		m.Write((pe+1)%refLayout.Workers, addr, MakeInt(-1), trace.ObjHeap) // cross-PE attribution
	}
	m.Poke(m.Size()-1, MakeInt(42)) // untraced writes must be tracked too
	m.Release()

	m2 := NewMemory(refLayout, nil)
	for addr := 0; addr < m2.Size(); addr++ {
		if w := m2.Peek(addr); w != 0 {
			t.Fatalf("recycled slab not zero at %d: %v", addr, w)
		}
	}
	m2.Release()
}

// TestReleaseIsTerminal checks a released Memory cannot silently keep
// operating on the recycled slab.
func TestReleaseIsTerminal(t *testing.T) {
	m := NewMemory(refLayout, nil)
	m.Release()
	m.Release() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("Write after Release did not panic")
		}
	}()
	m.Write(0, 0, MakeInt(1), trace.ObjHeap)
}

// TestNewMemoryRejectsTooManyWorkers pins the trace.MaxPEs bound.
func TestNewMemoryRejectsTooManyWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMemory with 65 workers did not panic")
		}
	}()
	NewMemory(Layout{Workers: trace.MaxPEs + 1, Heap: 64, Local: 64, Control: 64, Trail: 64, PDL: 64, Goal: 64, Msg: 64}, nil)
}

// BenchmarkMemoryRefPath measures the steady-state traced reference
// path — staging append, counter fold, batch hand-off to a BatchSink —
// and pins it at zero allocations per operation.
func BenchmarkMemoryRefPath(b *testing.B) {
	m := NewMemory(refLayout, trace.Discard)
	heap := m.Region(0, trace.AreaHeap)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := heap.Base + i%heap.Size()
		m.Write(0, addr, MakeInt(int64(i)), trace.ObjHeap)
		m.Read(0, addr, trace.ObjHeap)
	}
	b.StopTimer()
	m.Flush()
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "refs/s")
}

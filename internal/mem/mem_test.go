package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestWordTagsRoundTrip(t *testing.T) {
	cases := []struct {
		w    Word
		tag  Tag
		addr int
	}{
		{MakeRef(1234), TagRef, 1234},
		{MakeStr(99), TagStr, 99},
		{MakeLis(7), TagLis, 7},
	}
	for _, c := range cases {
		if c.w.Tag() != c.tag {
			t.Errorf("%v: tag = %v, want %v", c.w, c.w.Tag(), c.tag)
		}
		if c.w.Addr() != c.addr {
			t.Errorf("%v: addr = %d, want %d", c.w, c.w.Addr(), c.addr)
		}
	}
	if w := MakeCon(42); w.Tag() != TagCon || w.Index() != 42 {
		t.Errorf("MakeCon: %v", w)
	}
	if w := MakeFun(17); w.Tag() != TagFun || w.Index() != 17 {
		t.Errorf("MakeFun: %v", w)
	}
}

func TestIntWordsPreserveSign(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1000000, -1000000, MaxInt, MinInt} {
		w := MakeInt(v)
		if w.Tag() != TagInt {
			t.Errorf("MakeInt(%d): tag %v", v, w.Tag())
		}
		if got := w.Int(); got != v {
			t.Errorf("MakeInt(%d).Int() = %d", v, got)
		}
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		if v > MaxInt || v < MinInt {
			v %= MaxInt
		}
		return MakeInt(v).Int() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutRegionsDisjointAndAligned(t *testing.T) {
	l := Layout{Workers: 3, Heap: 1000, Local: 500, Control: 300, Trail: 100, PDL: 50, Goal: 60, Msg: 10}
	m := NewMemory(l, nil)
	areas := []trace.Area{
		trace.AreaHeap, trace.AreaLocal, trace.AreaControl,
		trace.AreaTrail, trace.AreaPDL, trace.AreaGoal, trace.AreaMsg,
	}
	seen := map[int]bool{}
	for pe := 0; pe < 3; pe++ {
		for _, a := range areas {
			r := m.Region(pe, a)
			if r.Base%Align != 0 {
				t.Errorf("pe %d %v: base %d not aligned", pe, a, r.Base)
			}
			if r.Size() <= 0 {
				t.Errorf("pe %d %v: empty region", pe, a)
			}
			for addr := r.Base; addr < r.Limit; addr++ {
				if seen[addr] {
					t.Fatalf("address %d in two regions", addr)
				}
				seen[addr] = true
			}
		}
	}
	if len(seen) != m.Size() {
		t.Errorf("regions cover %d words, address space is %d", len(seen), m.Size())
	}
}

func TestClassifyInvertsRegion(t *testing.T) {
	m := NewMemory(Layout{Workers: 4, Heap: 256, Local: 128, Control: 128, Trail: 64, PDL: 64, Goal: 64, Msg: 64}, nil)
	areas := []trace.Area{
		trace.AreaHeap, trace.AreaLocal, trace.AreaControl,
		trace.AreaTrail, trace.AreaPDL, trace.AreaGoal, trace.AreaMsg,
	}
	for pe := 0; pe < 4; pe++ {
		for _, a := range areas {
			r := m.Region(pe, a)
			for _, addr := range []int{r.Base, r.Base + r.Size()/2, r.Limit - 1} {
				gotPE, gotArea := m.Classify(addr)
				if gotPE != pe || gotArea != a {
					t.Errorf("Classify(%d) = (%d,%v), want (%d,%v)", addr, gotPE, gotArea, pe, a)
				}
			}
		}
	}
	if pe, a := m.Classify(-1); pe != -1 || a != trace.AreaNone {
		t.Errorf("Classify(-1) = (%d,%v)", pe, a)
	}
	if pe, a := m.Classify(m.Size()); pe != -1 || a != trace.AreaNone {
		t.Errorf("Classify(size) = (%d,%v)", pe, a)
	}
}

func TestReadWriteEmitRefs(t *testing.T) {
	buf := trace.NewBuffer(16)
	m := NewMemory(Layout{Workers: 2, Heap: 128, Local: 64, Control: 64, Trail: 64, PDL: 64, Goal: 64, Msg: 64}, buf)
	heap := m.Region(1, trace.AreaHeap)
	m.Write(1, heap.Base, MakeInt(5), trace.ObjHeap)
	got := m.Read(0, heap.Base, trace.ObjHeap) // cross-PE read attributed to reader
	if got.Int() != 5 {
		t.Errorf("read back %v", got)
	}
	m.Flush() // references are staged until flushed
	if buf.Len() != 2 {
		t.Fatalf("emitted %d refs, want 2", buf.Len())
	}
	w, r := buf.Refs[0], buf.Refs[1]
	if w.Op != trace.OpWrite || w.PE != 1 || int(w.Addr) != heap.Base {
		t.Errorf("write ref = %v", w)
	}
	if r.Op != trace.OpRead || r.PE != 0 {
		t.Errorf("read ref = %v", r)
	}
	if m.Counter().Total() != 2 {
		t.Errorf("counter total = %d", m.Counter().Total())
	}
}

func TestPeekPokeAreUntraced(t *testing.T) {
	m := NewMemory(Layout{Workers: 1, Heap: 64, Local: 64, Control: 64, Trail: 64, PDL: 64, Goal: 64, Msg: 64}, nil)
	m.Poke(3, MakeInt(9))
	if m.Peek(3).Int() != 9 {
		t.Error("peek/poke failed")
	}
	if m.Counter().Total() != 0 {
		t.Error("peek/poke emitted references")
	}
}

func TestDefaultLayoutSane(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 40} {
		l := DefaultLayout(workers)
		if l.Workers != workers {
			t.Errorf("workers = %d", l.Workers)
		}
		if l.TotalWords() <= 0 || l.TotalWords() != l.SpanWords()*workers {
			t.Errorf("inconsistent total for %d workers", workers)
		}
	}
}

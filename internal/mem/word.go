// Package mem implements the RAP-WAM storage model: a tagged-word term
// representation and a single flat shared address space partitioned into
// per-worker Stack Sets (Heap, Local Stack, Control Stack, Trail, PDL,
// Goal Stack and Message Buffer). Every access goes through an
// instrumented Memory which emits trace references.
//
// All simulated storage lives in one preallocated []Word arena, so the
// measured memory behaviour is entirely determined by the abstract
// machine and never by the Go runtime or garbage collector.
package mem

import "fmt"

// Word is one tagged machine word. The low 3 bits hold the tag and the
// remaining 61 bits hold the value (an address, a symbol index or a
// signed small integer).
type Word uint64

// Tag identifies the kind of value a Word holds.
type Tag uint8

const (
	// TagRef is a variable reference; an unbound variable is a TagRef
	// word pointing at itself.
	TagRef Tag = iota
	// TagStr points at a functor cell followed by the arguments.
	TagStr
	// TagLis points at a cons cell (two consecutive words: head, tail).
	TagLis
	// TagCon is an atomic constant; the value is an atom-table index.
	TagCon
	// TagInt is a small signed integer stored in the value bits.
	TagInt
	// TagFun is a functor cell; the value is a functor-table index
	// (which determines both name and arity).
	TagFun
)

var tagNames = [...]string{"ref", "str", "lis", "con", "int", "fun"}

// String returns the lowercase tag name.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

const tagBits = 3

// MaxInt and MinInt bound the representable small integers.
const (
	MaxInt = int64(1)<<60 - 1
	MinInt = -(int64(1) << 60)
)

// MakeRef builds a reference word pointing at word address addr.
func MakeRef(addr int) Word { return Word(uint64(addr)<<tagBits) | Word(TagRef) }

// MakeStr builds a structure word pointing at the functor cell at addr.
func MakeStr(addr int) Word { return Word(uint64(addr)<<tagBits) | Word(TagStr) }

// MakeLis builds a list word pointing at the cons cell at addr.
func MakeLis(addr int) Word { return Word(uint64(addr)<<tagBits) | Word(TagLis) }

// MakeCon builds a constant word for atom-table index idx.
func MakeCon(idx int) Word { return Word(uint64(idx)<<tagBits) | Word(TagCon) }

// MakeInt builds an integer word. The value must fit in 61 bits; the
// engine's arithmetic builtins range-check before constructing.
func MakeInt(v int64) Word { return Word(uint64(v)<<tagBits) | Word(TagInt) }

// MakeFun builds a functor cell for functor-table index idx.
func MakeFun(idx int) Word { return Word(uint64(idx)<<tagBits) | Word(TagFun) }

// Tag extracts the word's tag.
func (w Word) Tag() Tag { return Tag(w & (1<<tagBits - 1)) }

// Addr extracts the address value of a ref, str or lis word.
func (w Word) Addr() int { return int(w >> tagBits) }

// Index extracts the symbol-table index of a con or fun word.
func (w Word) Index() int { return int(w >> tagBits) }

// Int extracts the signed integer value of an int word.
func (w Word) Int() int64 { return int64(w) >> tagBits }

// IsRef reports whether the word is a variable reference.
func (w Word) IsRef() bool { return w.Tag() == TagRef }

// IsAtomic reports whether the word is a constant or integer.
func (w Word) IsAtomic() bool { t := w.Tag(); return t == TagCon || t == TagInt }

// String formats the word for debugging, e.g. "ref@42", "int(7)".
func (w Word) String() string {
	switch w.Tag() {
	case TagRef:
		return fmt.Sprintf("ref@%d", w.Addr())
	case TagStr:
		return fmt.Sprintf("str@%d", w.Addr())
	case TagLis:
		return fmt.Sprintf("lis@%d", w.Addr())
	case TagCon:
		return fmt.Sprintf("con(%d)", w.Index())
	case TagInt:
		return fmt.Sprintf("int(%d)", w.Int())
	case TagFun:
		return fmt.Sprintf("fun(%d)", w.Index())
	}
	return fmt.Sprintf("word(%#x)", uint64(w))
}

package mem

import (
	"fmt"

	"repro/internal/trace"
)

// Layout describes the per-worker Stack Set sizes in words. All regions
// of worker i are laid out consecutively starting at i*SpanWords():
// Heap, Local, Control, Trail, PDL, Goal, Msg. Region sizes are rounded
// up to Align words so that no cache line ever spans two regions.
type Layout struct {
	Workers int // number of workers (PEs)
	Heap    int // heap words per worker
	Local   int // local stack (environments, parcall frames)
	Control int // control stack (choice points, markers)
	Trail   int // trail entries
	PDL     int // unification push-down list
	Goal    int // goal stack
	Msg     int // message buffer
}

// Align is the region alignment in words; it is a multiple of every cache
// line size the simulators use, so lines never straddle areas with
// different locality classes across workers.
const Align = 64

func alignUp(n int) int { return (n + Align - 1) &^ (Align - 1) }

// DefaultLayout returns a layout comfortably sized for the paper's
// benchmarks: roughly half a megaword per worker.
func DefaultLayout(workers int) Layout {
	return Layout{
		Workers: workers,
		Heap:    1 << 19, // 512K words
		Local:   1 << 17,
		Control: 1 << 17,
		Trail:   1 << 16,
		PDL:     1 << 12,
		Goal:    1 << 12,
		Msg:     1 << 8,
	}
}

// normalized returns a copy with every region size aligned.
func (l Layout) normalized() Layout {
	l.Heap = alignUp(l.Heap)
	l.Local = alignUp(l.Local)
	l.Control = alignUp(l.Control)
	l.Trail = alignUp(l.Trail)
	l.PDL = alignUp(l.PDL)
	l.Goal = alignUp(l.Goal)
	l.Msg = alignUp(l.Msg)
	return l
}

// SpanWords returns the number of words occupied by one worker's regions.
func (l Layout) SpanWords() int {
	n := l.normalized()
	return n.Heap + n.Local + n.Control + n.Trail + n.PDL + n.Goal + n.Msg
}

// TotalWords returns the size of the whole shared address space.
func (l Layout) TotalWords() int { return l.SpanWords() * l.Workers }

// Region describes one storage area instance of one worker.
type Region struct {
	PE    int
	Area  trace.Area
	Base  int // first word address
	Limit int // one past the last word address
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr int) bool { return addr >= r.Base && addr < r.Limit }

// Size returns the region size in words.
func (r Region) Size() int { return r.Limit - r.Base }

// Memory is the instrumented flat shared address space. All engine
// accesses go through Read/Write (traced) or Peek/Poke (untraced
// host-side inspection, used only for extracting final answers and
// debugging — never on the measured path).
type Memory struct {
	words  []Word
	layout Layout
	// region offsets within a worker span, indexed by area
	areaOff  [trace.NumAreas]int
	areaSize [trace.NumAreas]int
	span     int
	sink     trace.Sink
	counter  *trace.Counter
}

// NewMemory allocates the address space for the given layout. The counter
// is always attached (cheap array increments); sink may be trace.Discard.
func NewMemory(l Layout, sink trace.Sink) *Memory {
	if l.Workers <= 0 {
		panic("mem: layout needs at least one worker")
	}
	n := l.normalized()
	m := &Memory{
		words:   make([]Word, n.TotalWords()),
		layout:  n,
		span:    n.SpanWords(),
		sink:    sink,
		counter: &trace.Counter{},
	}
	if m.sink == nil {
		m.sink = trace.Discard
	}
	off := 0
	for _, ar := range []struct {
		area trace.Area
		size int
	}{
		{trace.AreaHeap, n.Heap},
		{trace.AreaLocal, n.Local},
		{trace.AreaControl, n.Control},
		{trace.AreaTrail, n.Trail},
		{trace.AreaPDL, n.PDL},
		{trace.AreaGoal, n.Goal},
		{trace.AreaMsg, n.Msg},
	} {
		m.areaOff[ar.area] = off
		m.areaSize[ar.area] = ar.size
		off += ar.size
	}
	return m
}

// Layout returns the (normalized) layout in use.
func (m *Memory) Layout() Layout { return m.layout }

// Counter returns the always-on reference counter.
func (m *Memory) Counter() *trace.Counter { return m.counter }

// SetSink replaces the trace sink (e.g. to start/stop full tracing).
func (m *Memory) SetSink(s trace.Sink) {
	if s == nil {
		s = trace.Discard
	}
	m.sink = s
}

// Region returns the region of the given worker and area.
func (m *Memory) Region(pe int, area trace.Area) Region {
	if pe < 0 || pe >= m.layout.Workers {
		panic(fmt.Sprintf("mem: pe %d out of range", pe))
	}
	base := pe*m.span + m.areaOff[area]
	return Region{PE: pe, Area: area, Base: base, Limit: base + m.areaSize[area]}
}

// Classify maps an address to its owning worker and area.
func (m *Memory) Classify(addr int) (pe int, area trace.Area) {
	if addr < 0 || addr >= len(m.words) {
		return -1, trace.AreaNone
	}
	pe = addr / m.span
	off := addr % m.span
	for a := trace.AreaHeap; a <= trace.AreaMsg; a++ {
		if off < m.areaOff[a]+m.areaSize[a] {
			return pe, a
		}
	}
	return pe, trace.AreaNone
}

// Read returns the word at addr, emitting a read reference attributed to
// the accessing PE with the given object classification.
func (m *Memory) Read(pe int, addr int, obj trace.ObjType) Word {
	r := trace.Ref{Addr: uint32(addr), PE: uint8(pe), Op: trace.OpRead, Obj: obj}
	m.counter.Add(r)
	m.sink.Add(r)
	return m.words[addr]
}

// Write stores w at addr, emitting a write reference.
func (m *Memory) Write(pe int, addr int, w Word, obj trace.ObjType) {
	r := trace.Ref{Addr: uint32(addr), PE: uint8(pe), Op: trace.OpWrite, Obj: obj}
	m.counter.Add(r)
	m.sink.Add(r)
	m.words[addr] = w
}

// Peek reads addr without instrumentation. Host-side use only (answer
// extraction, tests, debuggers).
func (m *Memory) Peek(addr int) Word { return m.words[addr] }

// Poke writes addr without instrumentation. Host-side use only.
func (m *Memory) Poke(addr int, w Word) { m.words[addr] = w }

// Size returns the total address-space size in words.
func (m *Memory) Size() int { return len(m.words) }

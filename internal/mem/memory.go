package mem

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Layout describes the per-worker Stack Set sizes in words. All regions
// of worker i are laid out consecutively starting at i*SpanWords():
// Heap, Local, Control, Trail, PDL, Goal, Msg. Region sizes are rounded
// up to Align words so that no cache line ever spans two regions.
type Layout struct {
	Workers int // number of workers (PEs)
	Heap    int // heap words per worker
	Local   int // local stack (environments, parcall frames)
	Control int // control stack (choice points, markers)
	Trail   int // trail entries
	PDL     int // unification push-down list
	Goal    int // goal stack
	Msg     int // message buffer
}

// Align is the region alignment in words; it is a multiple of every cache
// line size the simulators use, so lines never straddle areas with
// different locality classes across workers.
const Align = 64

func alignUp(n int) int { return (n + Align - 1) &^ (Align - 1) }

// DefaultLayout returns a layout comfortably sized for the paper's
// benchmarks: roughly half a megaword per worker.
func DefaultLayout(workers int) Layout {
	return Layout{
		Workers: workers,
		Heap:    1 << 19, // 512K words
		Local:   1 << 17,
		Control: 1 << 17,
		Trail:   1 << 16,
		PDL:     1 << 12,
		Goal:    1 << 12,
		Msg:     1 << 8,
	}
}

// normalized returns a copy with every region size aligned.
func (l Layout) normalized() Layout {
	l.Heap = alignUp(l.Heap)
	l.Local = alignUp(l.Local)
	l.Control = alignUp(l.Control)
	l.Trail = alignUp(l.Trail)
	l.PDL = alignUp(l.PDL)
	l.Goal = alignUp(l.Goal)
	l.Msg = alignUp(l.Msg)
	return l
}

// SpanWords returns the number of words occupied by one worker's regions.
func (l Layout) SpanWords() int {
	n := l.normalized()
	return n.Heap + n.Local + n.Control + n.Trail + n.PDL + n.Goal + n.Msg
}

// TotalWords returns the size of the whole shared address space.
func (l Layout) TotalWords() int { return l.SpanWords() * l.Workers }

// Region describes one storage area instance of one worker.
type Region struct {
	PE    int
	Area  trace.Area
	Base  int // first word address
	Limit int // one past the last word address
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr int) bool { return addr >= r.Base && addr < r.Limit }

// Size returns the region size in words.
func (r Region) Size() int { return r.Limit - r.Base }

// stageRefs is the staging-buffer capacity in references — a multiple
// of the compact codec's chunk size, so a flush into a ChunkWriter
// encodes whole chunks straight from the staging slice with no
// intermediate copy. The size (512 KiB of references) is tuned so the
// flush pipeline (fold + encode) amortizes its cache warm-up across
// several chunks without evicting the emulator's working set; both
// smaller (8K) and larger (128K) measurably lose on the qsort@4PE
// cold-generation benchmark.
const stageRefs = 65536

// alignShift is log2(Align); every Align-word block lies entirely
// inside one (worker, area) region, which is what makes the
// block-granular classification table exact.
const alignShift = 6

// dirtyShift is log2 of the dirty-tracking block size in words (4096
// words = one 32 KiB zeroing unit). Coarser than classification blocks
// on purpose: the bitmap stays tiny and Release zeroes long runs.
const dirtyShift = 12

// Memory is the instrumented flat shared address space. All engine
// accesses go through Read/Write (traced) or Peek/Poke (untraced
// host-side inspection, used only for extracting final answers and
// debugging — never on the measured path).
//
// # The staged reference path
//
// Read and Write do not call the sink per reference: they append the
// reference to a flat staging buffer — a bounds-checked slice append,
// no allocation, no interface dispatch — which Flush drains as one
// batch into the sink (trace.BatchSink when implemented) while folding
// the counter tallies into the same flat loop. The engine is a
// single-goroutine deterministic simulation, so one staging buffer per
// address space preserves the interleaved emission order exactly;
// per-worker buffers would reorder the stream and break the trace
// store's byte-identity contract. Flush runs automatically when the
// buffer fills; anything that hands the stream downstream (end of run,
// SetSink, Release) flushes first.
type Memory struct {
	// stage is the pending-reference staging buffer (a fixed-size
	// array; nStage is the fill level). A fixed array plus index
	// stores one reference and one integer per Read/Write — an append
	// would also write the slice header back every call — and lets the
	// compiler drop the store's bounds check. It is first in the
	// struct because Read/Write touch it on every reference.
	stage  *[stageRefs]Ref
	nStage int
	words  []Word
	// tally folds the Flush loop's two counter updates into one:
	// entry (obj<<1|op)<<6|pe counts references of that object type,
	// operation and PE. Counter() unfolds it into the public
	// trace.Counter shape on demand.
	tally   []int64
	counter *trace.Counter
	sink    trace.Sink
	batch   trace.BatchSink // non-nil when sink implements BatchSink

	// shards routes references into per-PE staging buffers while the
	// sharded execution mode runs an epoch (core.Config.ExecShards):
	// each speculating worker appends to its own ShardStage from its
	// own goroutine, and the engine later merges the per-PE batches
	// into the shared staging buffer in canonical (cycle, PE) order via
	// StageMerged. Outside epochs shards is nil, so the normal path
	// pays one predictable not-taken branch per reference. shardsBuf
	// retains the backing slice between epochs.
	shards    []*ShardStage
	shardsBuf []*ShardStage

	// classTab maps addr>>alignShift to pe<<3|area. It is shared,
	// read-only, and cached per layout (engines of the same shape are
	// constructed constantly during parallel trace generation).
	classTab []uint16

	// dirty marks dirtyShift-sized blocks that received at least one
	// word since the slab was (re)zeroed; Release zeroes exactly these,
	// making engine teardown O(touched memory) instead of O(address
	// space). Write-marking is folded into Flush's batch loop; Poke
	// marks directly.
	dirty []uint64

	layout Layout
	// region offsets within a worker span, indexed by area
	areaOff  [trace.NumAreas]int
	areaSize [trace.NumAreas]int
	span     int
	released bool
}

// Ref is re-exported locally to keep the hot-path append monomorphic.
type Ref = trace.Ref

// classTabs caches the classification table per (normalized) layout.
var classTabs sync.Map // Layout -> []uint16

// slabPools recycles zeroed word slabs by total size. Release returns a
// slab fully re-zeroed, so NewMemory can hand it out again without the
// O(address space) clear that otherwise dominates engine construction
// for short benchmark runs.
var slabPools sync.Map // int -> *sync.Pool

func getSlab(n int) []Word {
	if p, ok := slabPools.Load(n); ok {
		if s := p.(*sync.Pool).Get(); s != nil {
			return s.([]Word)
		}
	}
	return make([]Word, n)
}

func putSlab(words []Word) {
	p, ok := slabPools.Load(len(words))
	if !ok {
		p, _ = slabPools.LoadOrStore(len(words), &sync.Pool{})
	}
	p.(*sync.Pool).Put(words)
}

// NewMemory allocates the address space for the given layout, reusing a
// recycled slab from a previous Release when one is available. The
// counter is always attached (cheap array increments); sink may be
// trace.Discard. Layouts are limited to trace.MaxPEs workers — the
// counter, the trace tooling and the cache simulators all size their
// per-PE state to that bound.
func NewMemory(l Layout, sink trace.Sink) *Memory {
	if l.Workers <= 0 {
		panic("mem: layout needs at least one worker")
	}
	if l.Workers > trace.MaxPEs {
		panic(fmt.Sprintf("mem: layout has %d workers, limit %d", l.Workers, trace.MaxPEs))
	}
	n := l.normalized()
	total := n.TotalWords()
	m := &Memory{
		stage:   new([stageRefs]Ref),
		words:   getSlab(total),
		tally:   make([]int64, trace.NumObjTypes*2*trace.MaxPEs),
		layout:  n,
		span:    n.SpanWords(),
		sink:    sink,
		counter: &trace.Counter{},
		dirty:   make([]uint64, (total>>dirtyShift+63)/64+1),
	}
	if m.sink == nil {
		m.sink = trace.Discard
	}
	m.batch, _ = m.sink.(trace.BatchSink)
	off := 0
	for _, ar := range []struct {
		area trace.Area
		size int
	}{
		{trace.AreaHeap, n.Heap},
		{trace.AreaLocal, n.Local},
		{trace.AreaControl, n.Control},
		{trace.AreaTrail, n.Trail},
		{trace.AreaPDL, n.PDL},
		{trace.AreaGoal, n.Goal},
		{trace.AreaMsg, n.Msg},
	} {
		m.areaOff[ar.area] = off
		m.areaSize[ar.area] = ar.size
		off += ar.size
	}
	m.classTab = classTabFor(n, m.areaOff, m.areaSize)
	return m
}

// classTabFor returns the layout's shared block-classification table,
// building it on first use: entry addr>>alignShift holds pe<<3|area.
func classTabFor(l Layout, areaOff, areaSize [trace.NumAreas]int) []uint16 {
	if tab, ok := classTabs.Load(l); ok {
		return tab.([]uint16)
	}
	span := l.SpanWords()
	tab := make([]uint16, l.TotalWords()>>alignShift)
	for pe := 0; pe < l.Workers; pe++ {
		base := pe * span
		for a := trace.AreaHeap; a <= trace.AreaMsg; a++ {
			entry := uint16(pe)<<3 | uint16(a)
			lo := (base + areaOff[a]) >> alignShift
			hi := (base + areaOff[a] + areaSize[a]) >> alignShift
			for b := lo; b < hi; b++ {
				tab[b] = entry
			}
		}
	}
	actual, _ := classTabs.LoadOrStore(l, tab)
	return actual.([]uint16)
}

// Layout returns the (normalized) layout in use.
func (m *Memory) Layout() Layout { return m.layout }

// Counter returns the always-on reference counter, materialized from
// the flat flush tally. Totals include staged references only after a
// Flush (the engine flushes before it reports results).
func (m *Memory) Counter() *trace.Counter {
	c := m.counter
	*c = trace.Counter{}
	for idx, n := range m.tally {
		if n == 0 {
			continue
		}
		pe := idx & (trace.MaxPEs - 1)
		op := idx >> 6 & 1
		obj := idx >> 7
		c.ByObj[obj][op] += n
		c.ByPE[pe] += n
	}
	return c
}

// SetSink replaces the trace sink (e.g. to start/stop full tracing),
// flushing staged references to the previous sink first.
func (m *Memory) SetSink(s trace.Sink) {
	m.Flush()
	if s == nil {
		s = trace.Discard
	}
	m.sink = s
	m.batch, _ = s.(trace.BatchSink)
}

// Region returns the region of the given worker and area.
func (m *Memory) Region(pe int, area trace.Area) Region {
	if pe < 0 || pe >= m.layout.Workers {
		panic(fmt.Sprintf("mem: pe %d out of range", pe))
	}
	base := pe*m.span + m.areaOff[area]
	return Region{PE: pe, Area: area, Base: base, Limit: base + m.areaSize[area]}
}

// Classify maps an address to its owning worker and area in O(1): one
// load from the layout's block-classification table. Regions are
// Align-aligned, so every Align-word block belongs to exactly one
// (worker, area) pair.
//
//rapwam:hotpath
func (m *Memory) Classify(addr int) (pe int, area trace.Area) {
	if uint(addr) >= uint(len(m.words)) {
		return -1, trace.AreaNone
	}
	e := m.classTab[addr>>alignShift]
	return int(e >> 3), trace.Area(e & 7)
}

// Read returns the word at addr, emitting a read reference attributed
// to the accessing PE with the given object classification. pe must be
// a valid worker index (< Layout.Workers).
//
//rapwam:hotpath
func (m *Memory) Read(pe int, addr int, obj trace.ObjType) Word {
	if m.shards != nil {
		if s := m.shards[pe]; s != nil {
			//rapwam:allow hotpath shard staging buffers are reused across epochs, so append amortizes to an indexed store
			s.Refs = append(s.Refs, Ref{Addr: uint32(addr), PE: uint8(pe), Op: trace.OpRead, Obj: obj})
			// Atomic load: another shard may be writing this word
			// concurrently (a cross-shard conflict). The engine detects
			// the overlap afterwards and discards the epoch, but the
			// racing access itself must stay untorn and race-clean.
			return Word(atomic.LoadUint64((*uint64)(&m.words[addr])))
		}
	}
	n := uint(m.nStage)
	if n >= stageRefs {
		m.Flush()
		n = 0
	}
	m.stage[n] = Ref{Addr: uint32(addr), PE: uint8(pe), Op: trace.OpRead, Obj: obj}
	m.nStage = int(n) + 1
	return m.words[addr]
}

// Write stores w at addr, emitting a write reference. pe must be a
// valid worker index (< Layout.Workers).
//
//rapwam:hotpath
func (m *Memory) Write(pe int, addr int, w Word, obj trace.ObjType) {
	if m.shards != nil {
		if s := m.shards[pe]; s != nil {
			//rapwam:allow hotpath shard staging buffers are reused across epochs, so append amortizes to an indexed store
			s.Refs = append(s.Refs, Ref{Addr: uint32(addr), PE: uint8(pe), Op: trace.OpWrite, Obj: obj})
			// The atomic swap both publishes the write race-cleanly and
			// captures exactly the word it displaced: even when several
			// shards race on one address, the captured Old values chain
			// (each one is some other write's New, except the pre-epoch
			// word), which is what lets a conflicted epoch's rollback
			// recover the base value of a multi-writer word.
			old := Word(atomic.SwapUint64((*uint64)(&m.words[addr]), uint64(w)))
			//rapwam:allow hotpath the undo log is a reused per-epoch buffer; append amortizes to an indexed store
			s.Undo = append(s.Undo, UndoEntry{Addr: uint32(addr), Old: old, New: w})
			return
		}
	}
	n := uint(m.nStage)
	if n >= stageRefs {
		m.Flush()
		n = 0
	}
	m.stage[n] = Ref{Addr: uint32(addr), PE: uint8(pe), Op: trace.OpWrite, Obj: obj}
	m.nStage = int(n) + 1
	m.words[addr] = w
}

// Flush drains the staging buffer: counter tallies and dirty-block
// marks are folded into one flat pass, then the batch is handed to the
// sink (one AddBatch call when the sink supports batches) and the
// buffer is reset for reuse. Flush is idempotent and cheap when the
// buffer is empty.
func (m *Memory) Flush() {
	refs := m.stage[:m.nStage]
	if len(refs) == 0 {
		return
	}
	tally := m.tally
	dirty := m.dirty
	for _, r := range refs {
		// One read-modify-write tallies (obj, op, PE) at once; the
		// public counter shape is unfolded lazily in Counter().
		tally[(uint(r.Obj)<<1|uint(r.Op))<<6|uint(r.PE)&(trace.MaxPEs-1)]++
		// Branchless dirty mark: reads OR in a zero bit (OpRead is 0),
		// writes set their block's bit — no data-dependent branch on
		// the op, which alternates too unpredictably to forecast.
		block := uint(r.Addr) >> dirtyShift
		dirty[block>>6] |= uint64(r.Op) << (block & 63)
	}
	if m.batch != nil {
		m.batch.AddBatch(refs)
	} else {
		for _, r := range refs {
			m.sink.Add(r)
		}
	}
	m.nStage = 0
}

// ShardStage is a per-PE reference staging buffer for the sharded
// execution mode. While a shard is installed with SetShard, that PE's
// Read/Write references append here (a growable slice owned by one
// speculating goroutine) instead of the shared staging buffer; the
// engine merges completed cycles back into the canonical stream with
// StageMerged and discards abandoned speculation with MarkDirtyRefs.
//
// Undo is the value log of every speculated Write (address, the word
// it displaced and the word it stored, in write order). Speculation is
// rolled back by applying the log backward — a complete restore of the
// epoch's memory effects, sound even where a trail unwind is not (pop-
// and-repush sequences overwrite stack words no trail entry covers).
// The Old/New pair also makes a cross-shard write conflict recoverable:
// the displaced values of all writes to one address chain through each
// other, so the pre-epoch word is the one Old no conflicting write
// produced (see core's discarded-epoch rollback).
type ShardStage struct {
	Refs []Ref
	Undo []UndoEntry
}

// UndoEntry records one speculated write: the word it displaced (via
// atomic swap, so Old is exact even under a write/write race) and the
// word it stored.
type UndoEntry struct {
	Addr uint32
	Old  Word
	New  Word
}

// SetShard installs a per-PE staging buffer (nil detaches that PE).
// Must not be called while speculating goroutines are running.
func (m *Memory) SetShard(pe int, s *ShardStage) {
	if m.shardsBuf == nil {
		m.shardsBuf = make([]*ShardStage, m.layout.Workers)
	}
	m.shardsBuf[pe] = s
	m.shards = m.shardsBuf
}

// ClearShards detaches every per-PE staging buffer, restoring the
// single-branch normal reference path.
func (m *Memory) ClearShards() {
	if m.shardsBuf != nil {
		clear(m.shardsBuf)
	}
	m.shards = nil
}

// StageMerged appends already-ordered references to the shared staging
// buffer, flushing at the usual capacity boundaries. Because RWT2
// encoding is independent of AddBatch granularity, the resulting byte
// stream is identical to the same references arriving one Read/Write
// at a time — this is how the sharded execution mode re-serializes
// per-PE speculation into the canonical trace.
func (m *Memory) StageMerged(refs []Ref) {
	for len(refs) > 0 {
		n := copy(m.stage[m.nStage:], refs)
		m.nStage += n
		refs = refs[n:]
		if m.nStage == stageRefs {
			m.Flush()
		}
	}
}

// UndoWrites rolls back every write the shard speculated, newest
// first, restoring the exact pre-speculation words, and resets the
// log. The touched blocks stay dirty-marked (via Poke) so Release
// still re-zeroes them.
func (m *Memory) UndoWrites(s *ShardStage) {
	for i := len(s.Undo) - 1; i >= 0; i-- {
		u := s.Undo[i]
		m.Poke(int(u.Addr), u.Old)
	}
	s.Undo = s.Undo[:0]
}

// MarkDirtyRefs folds only the dirty-block marks of references that
// will never reach the sink or the counter (discarded speculation):
// the written words must still be re-zeroed by Release, but the tally
// and the trace may not see the references.
func (m *Memory) MarkDirtyRefs(refs []Ref) {
	dirty := m.dirty
	for _, r := range refs {
		block := uint(r.Addr) >> dirtyShift
		dirty[block>>6] |= uint64(r.Op) << (block & 63)
	}
}

// Peek reads addr without instrumentation. Host-side use only (answer
// extraction, tests, debuggers).
func (m *Memory) Peek(addr int) Word { return m.words[addr] }

// Poke writes addr without instrumentation. Host-side use only.
func (m *Memory) Poke(addr int, w Word) {
	block := uint(addr) >> dirtyShift
	m.dirty[block>>6] |= 1 << (block & 63)
	m.words[addr] = w
}

// Size returns the total address-space size in words.
func (m *Memory) Size() int { return len(m.words) }

// Release flushes the staging buffer, re-zeroes every dirty block and
// returns the slab to the shared pool for the next NewMemory of the
// same total size. Only touched blocks are cleared — O(touched words)
// — restoring the all-zero invariant recycled slabs rely on
// (TestReleaseRestoresZeroSlab scans for violations). The Memory must
// not be used after Release.
func (m *Memory) Release() {
	if m.released {
		return
	}
	m.Flush()
	m.released = true
	words := m.words
	m.words = nil // poison: any later access panics rather than corrupting the pool
	for wi, dbits := range m.dirty {
		for dbits != 0 {
			block := wi<<6 + bits.TrailingZeros64(dbits)
			dbits &= dbits - 1
			lo := block << dirtyShift
			if lo >= len(words) {
				continue
			}
			hi := lo + 1<<dirtyShift
			if hi > len(words) {
				hi = len(words)
			}
			clear(words[lo:hi])
		}
		m.dirty[wi] = 0
	}
	putSlab(words)
}

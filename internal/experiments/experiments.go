// Package experiments regenerates every table and figure of the
// paper's evaluation:
//
//	Table 1  — storage-object characteristics (architecture constants)
//	Figure 2 — RAP-WAM work/overhead vs number of PEs for deriv
//	Table 2  — benchmark statistics at 8 PEs
//	Table 3  — fit of small benchmarks to the large-benchmark locality
//	Figure 4 — traffic ratio of the coherency schemes vs cache size
//	§3.3     — traffic capture, the 2 MLIPS feasibility calculation and
//	           the bus-contention estimate
//
// Each driver returns structured data plus a String rendering, so both
// the CLI and the test/bench suites can consume them.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/busmodel"
	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Table1 renders the storage-object classification (paper Table 1).
func Table1() string {
	t := stats.NewTable("Table 1: Characteristics of RAP-WAM Storage Objects",
		"frame type", "area", "WAM?", "lock", "locality")
	for _, o := range trace.ObjTypes() {
		wam, lock, loc := "no", "no", "Local"
		if o.WAM() {
			wam = "yes"
		}
		if o.Locked() {
			lock = "yes"
		}
		if o.Global() {
			loc = "Global"
		}
		t.AddRow(o.String(), o.Area().String(), wam, lock, loc)
	}
	return t.String()
}

// Fig2Point is one processor count of the Figure 2 sweep.
type Fig2Point struct {
	PEs int
	// WorkPct is total RAP-WAM work references as % of WAM references.
	WorkPct float64
	// Speedup is WAM cycles / RAP-WAM cycles.
	Speedup float64
	// WaitPct / IdlePct are cycles spent waiting/idle as % of total
	// machine cycles (PEs × elapsed).
	WaitPct, IdlePct float64
	// GoalsParallel is the number of goals run through the parallel
	// machinery.
	GoalsParallel int64
}

// Figure2 reproduces the deriv overhead study: work references of
// RAP-WAM (as a percentage of sequential WAM work) against the number
// of processors.
type Figure2 struct {
	Benchmark string
	WAMRefs   int64
	Points    []Fig2Point
}

// RunFigure2 sweeps deriv over the given PE counts (the paper plots 1
// to 40). Per-cell statistics come through the grid's memo layer, so
// with a warm trace store the sweep runs no emulation at all.
func RunFigure2(ctx context.Context, peCounts []int) (*Figure2, error) {
	b := bench.Deriv()
	seq, _, err := runStats(ctx, b, 1, true)
	if err != nil {
		return nil, err
	}
	wamRefs := seq.TotalWorkRefs()
	wamCycles := seq.Cycles
	out := &Figure2{Benchmark: b.Name, WAMRefs: wamRefs}
	for _, pes := range peCounts {
		st, _, err := runStats(ctx, b, pes, false)
		if err != nil {
			return nil, err
		}
		var waits, idles int64
		for i := range st.WaitCycles {
			waits += st.WaitCycles[i]
			idles += st.IdleCycles[i]
		}
		machineCycles := st.Cycles * int64(pes)
		out.Points = append(out.Points, Fig2Point{
			PEs:           pes,
			WorkPct:       100 * float64(st.TotalWorkRefs()) / float64(wamRefs),
			Speedup:       float64(wamCycles) / float64(st.Cycles),
			WaitPct:       100 * float64(waits) / float64(machineCycles),
			IdlePct:       100 * float64(idles) / float64(machineCycles),
			GoalsParallel: st.GoalsParallel,
		})
	}
	return out, nil
}

// String renders the sweep.
func (f *Figure2) String() string {
	t := stats.NewTable(
		fmt.Sprintf("Figure 2: RAP-WAM overheads for %q (WAM work = %d refs = 100%%)", f.Benchmark, f.WAMRefs),
		"#PEs", "work %WAM", "speedup", "wait%", "idle%", "goals//")
	for _, p := range f.Points {
		t.AddRow(p.PEs, p.WorkPct, p.Speedup, p.WaitPct, p.IdlePct, p.GoalsParallel)
	}
	return t.String()
}

// Table2Row is one benchmark's statistics (paper Table 2).
type Table2Row struct {
	Name          string
	Instructions  int64 // RAP-WAM instructions at P PEs
	RefsRAPWAM    int64
	RefsWAM       int64
	GoalsParallel int64
	GoalsStolen   int64
}

// Table2 is the benchmark statistics table.
type Table2 struct {
	PEs  int
	Rows []Table2Row
}

// RunTable2 gathers the paper's Table 2 at the given PE count (8 in the
// paper), serving per-cell statistics from the grid's memo layer.
func RunTable2(ctx context.Context, pes int) (*Table2, error) {
	out := &Table2{PEs: pes}
	for _, b := range bench.Paper() {
		seq, _, err := runStats(ctx, b, 1, true)
		if err != nil {
			return nil, err
		}
		par, _, err := runStats(ctx, b, pes, false)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table2Row{
			Name:          b.Name,
			Instructions:  par.TotalInstructions(),
			RefsRAPWAM:    par.TotalWorkRefs(),
			RefsWAM:       seq.TotalWorkRefs(),
			GoalsParallel: par.GoalsParallel,
			GoalsStolen:   par.GoalsStolen,
		})
	}
	return out, nil
}

// String renders the table.
func (t2 *Table2) String() string {
	t := stats.NewTable(
		fmt.Sprintf("Table 2: Statistics for the Benchmarks Used (%d processors)", t2.PEs),
		"parameter", "deriv", "tak", "qsort", "matrix")
	get := func(f func(Table2Row) any) []any {
		out := []any{""}
		for _, r := range t2.Rows {
			out = append(out, f(r))
		}
		return out
	}
	rows := []struct {
		label string
		f     func(Table2Row) any
	}{
		{"Instructions executed", func(r Table2Row) any { return r.Instructions }},
		{"References (RAP-WAM)", func(r Table2Row) any { return r.RefsRAPWAM }},
		{"References (WAM)", func(r Table2Row) any { return r.RefsWAM }},
		{"Goals actually in //", func(r Table2Row) any { return r.GoalsParallel }},
		{"  of which stolen", func(r Table2Row) any { return r.GoalsStolen }},
	}
	for _, row := range rows {
		cells := get(row.f)
		cells[0] = row.label
		t.AddRow(cells...)
	}
	return t.String()
}

// Table3 reproduces the locality-fit study: traffic ratios of the
// large sequential benchmarks define the reference mean and standard
// deviation; the small benchmarks' z-scores measure how typically they
// exercise the sequential storage model.
type Table3 struct {
	CacheSizes []int
	// Etr and Sigma per cache size (large-benchmark statistics).
	Etr, Sigma []float64
	// Z[sizeIdx][benchIdx] are the small benchmarks' z-scores.
	Z [][]float64
	// MeanAbsZ per cache size (the paper reports the mean fit).
	MeanAbsZ []float64
	Small    []string
	Large    []string
}

// RunTable3 computes the fit at the paper's 512 and 1024 word cache
// sizes (sequential runs, copyback cache, 4-word lines). All benchmarks
// run as independent grid cells; each benchmark's trace is walked once,
// with both cache sizes simulated concurrently in that single pass.
func RunTable3(ctx context.Context) (*Table3, error) {
	sizes := []int{512, 1024}
	out := &Table3{CacheSizes: sizes}

	larges := bench.Large()
	smalls := []bench.Benchmark{bench.Deriv(), bench.Tak(), bench.Qsort()}
	for _, b := range larges {
		out.Large = append(out.Large, b.Name)
	}
	for _, b := range smalls {
		out.Small = append(out.Small, b.Name)
	}
	cfgs := make([]cache.Config, len(sizes))
	for i, size := range sizes {
		cfgs[i] = cache.Config{
			PEs: 1, SizeWords: size, LineWords: 4,
			Protocol:      cache.Copyback,
			WriteAllocate: cache.PaperWriteAllocate(cache.Copyback, size),
		}
	}
	all := append(append([]bench.Benchmark(nil), larges...), smalls...)
	ratios := make([][]float64, len(all)) // [benchIdx][sizeIdx]
	err := runGrid(ctx, len(all), func(i int) error {
		st, err := simulateAll(ctx, all[i], 1, true, cfgs)
		if err != nil {
			return err
		}
		ratios[i] = make([]float64, len(st))
		for j, s := range st {
			ratios[i][j] = s.TrafficRatio()
		}
		progress("table3: %s: %d sizes in one pass", all[i].Name, len(st))
		return nil
	})
	if err != nil {
		return nil, err
	}

	for i := range sizes {
		var largeRatios []float64
		for benchIdx := range larges {
			largeRatios = append(largeRatios, ratios[benchIdx][i])
		}
		out.Etr = append(out.Etr, stats.Mean(largeRatios))
		out.Sigma = append(out.Sigma, stats.StdDev(largeRatios))
	}
	out.Z = make([][]float64, len(sizes))
	for smallIdx := range smalls {
		for i := range sizes {
			r := ratios[len(larges)+smallIdx][i]
			out.Z[i] = append(out.Z[i], stats.ZScore(r, out.Etr[i], out.Sigma[i]))
		}
	}
	for i := range sizes {
		var abs []float64
		for _, z := range out.Z[i] {
			if z < 0 {
				z = -z
			}
			abs = append(abs, z)
		}
		out.MeanAbsZ = append(out.MeanAbsZ, stats.Mean(abs))
	}
	return out, nil
}

// String renders the fit table.
func (t3 *Table3) String() string {
	headers := append([]string{"cache (words)", "Etr", "sigma"}, t3.Small...)
	headers = append(headers, "mean |z|")
	t := stats.NewTable(
		fmt.Sprintf("Table 3: Fit of Small Benchmarks to Large Benchmarks (large set: %s)",
			strings.Join(t3.Large, ", ")),
		headers...)
	for i, size := range t3.CacheSizes {
		cells := []any{size, t3.Etr[i], t3.Sigma[i]}
		for _, z := range t3.Z[i] {
			cells = append(cells, z)
		}
		cells = append(cells, t3.MeanAbsZ[i])
		t.AddRow(cells...)
	}
	return t.String()
}

// Fig4Series is one protocol's traffic-ratio curve for one PE count.
type Fig4Series struct {
	Protocol cache.Protocol
	PEs      int
	// Ratio[i] corresponds to Figure4.CacheSizes[i]: the mean traffic
	// ratio over the four benchmarks.
	Ratio []float64
}

// Figure4 is the coherency-scheme traffic comparison.
type Figure4 struct {
	CacheSizes []int
	PECounts   []int
	Protocols  []cache.Protocol
	Series     []Fig4Series
	// PerBench[protocol][pes][size][bench] retains the unaveraged data.
	Benchmarks []string
}

// RunFigure4 sweeps cache size × protocol × PE count, averaging the
// traffic ratio over the four paper benchmarks, with the paper's
// write-allocate policy selections.
//
// The sweep runs on the experiment grid: each benchmark is traced once
// per PE count (memoized), every protocol × size configuration for that
// trace is simulated concurrently in a single pass over it, and the
// independent (PE count, benchmark) cells execute on the bounded worker
// pool. The numbers are identical to the sequential formulation — only
// the wall clock changes.
func RunFigure4(ctx context.Context, peCounts, sizes []int) (*Figure4, error) {
	protocols := []cache.Protocol{cache.WriteInBroadcast, cache.Hybrid, cache.WriteThrough}
	out := &Figure4{CacheSizes: sizes, PECounts: peCounts, Protocols: protocols}

	benches := bench.Paper()
	for _, b := range benches {
		out.Benchmarks = append(out.Benchmarks, b.Name)
	}
	// One grid cell per (PE count, benchmark): trace once, simulate all
	// protocol × size configurations against it in one pass. Cells write
	// only their own cellStats slot.
	cfgs := func(pes int) []cache.Config {
		cs := make([]cache.Config, 0, len(protocols)*len(sizes))
		for _, proto := range protocols {
			for _, size := range sizes {
				cs = append(cs, cache.Config{
					PEs: pes, SizeWords: size, LineWords: 4,
					Protocol:      proto,
					WriteAllocate: cache.PaperWriteAllocate(proto, size),
				})
			}
		}
		return cs
	}
	cellStats := make([][][]cache.Stats, len(peCounts)) // [pesIdx][benchIdx][cfgIdx]
	for i := range cellStats {
		cellStats[i] = make([][]cache.Stats, len(benches))
	}
	err := runGrid(ctx, len(peCounts)*len(benches), func(i int) error {
		pesIdx, benchIdx := i/len(benches), i%len(benches)
		pes := peCounts[pesIdx]
		st, err := simulateAll(ctx, benches[benchIdx], pes, pes == 1, cfgs(pes))
		if err != nil {
			return err
		}
		cellStats[pesIdx][benchIdx] = st
		progress("fig4: %s @ %d PEs: %d configs in one pass",
			benches[benchIdx].Name, pes, len(st))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pesIdx, pes := range peCounts {
		for protoIdx, proto := range protocols {
			s := Fig4Series{Protocol: proto, PEs: pes}
			for sizeIdx := range sizes {
				var ratios []float64
				for benchIdx := range benches {
					st := cellStats[pesIdx][benchIdx][protoIdx*len(sizes)+sizeIdx]
					ratios = append(ratios, st.TrafficRatio())
				}
				s.Ratio = append(s.Ratio, stats.Mean(ratios))
			}
			out.Series = append(out.Series, s)
		}
	}
	return out, nil
}

// Ratio returns the series for a protocol and PE count (nil if absent).
func (f *Figure4) Ratio(p cache.Protocol, pes int) []float64 {
	for _, s := range f.Series {
		if s.Protocol == p && s.PEs == pes {
			return s.Ratio
		}
	}
	return nil
}

// String renders one block per protocol, sizes as columns.
func (f *Figure4) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: Traffic of Coherency Schemes (mean traffic ratio over ")
	b.WriteString(strings.Join(f.Benchmarks, ", "))
	b.WriteString(")\n\n")
	for _, proto := range f.Protocols {
		headers := []string{"#PEs"}
		for _, s := range f.CacheSizes {
			headers = append(headers, fmt.Sprintf("%dw", s))
		}
		t := stats.NewTable(proto.String(), headers...)
		for _, pes := range f.PECounts {
			cells := []any{pes}
			for _, r := range f.Ratio(proto, pes) {
				cells = append(cells, r)
			}
			t.AddRow(cells...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// MLIPS is the back-of-the-envelope feasibility calculation of §3.3,
// re-derived from measured statistics rather than the paper's round
// numbers.
type MLIPS struct {
	// InstrPerLI is measured instructions per inference (the paper
	// assumes 15 for large programs).
	InstrPerLI float64
	// RefsPerInstr is measured data references per instruction (the
	// paper assumes 3).
	RefsPerInstr float64
	// WordsPerLI = InstrPerLI × RefsPerInstr (paper: 45).
	WordsPerLI float64
	// BytesPerLI at 4-byte words (paper: 180).
	BytesPerLI float64
	// TargetMLIPS is the performance target (paper: 2).
	TargetMLIPS float64
	// RawBandwidthMBs is the memory bandwidth needed with no caches
	// (paper: 360 MB/s).
	RawBandwidthMBs float64
	// CaptureRatio is the fraction of traffic absorbed by the caches
	// (paper: 0.7 for ≥128-word write-in broadcast caches at 8 PEs).
	CaptureRatio float64
	// BusBandwidthMBs is the bus bandwidth actually required
	// (paper: 108 MB/s).
	BusBandwidthMBs float64
}

// RunMLIPS measures instructions/inference and references/instruction
// over the benchmark suite, takes the 8-PE write-in broadcast capture
// ratio at the given cache size, and prices the paper's 2 MLIPS target.
func RunMLIPS(ctx context.Context, cacheWords int, targetMLIPS float64) (*MLIPS, error) {
	// Sequential instruction/reference statistics: one grid cell per
	// benchmark, summed after the pool drains.
	seqBenches := append(bench.Paper(), bench.Large()...)
	type seqStat struct{ instrs, refs, calls int64 }
	seqStats := make([]seqStat, len(seqBenches))
	err := runGrid(ctx, len(seqBenches), func(i int) error {
		st, _, err := runStats(ctx, seqBenches[i], 1, true)
		if err != nil {
			return err
		}
		seqStats[i] = seqStat{
			instrs: st.TotalInstructions(),
			refs:   st.TotalWorkRefs(),
			calls:  st.Inferences,
		}
		progress("mlips: measured %s", seqBenches[i].Name)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var instrs, refs, calls int64
	for _, s := range seqStats {
		instrs += s.instrs
		refs += s.refs
		calls += s.calls
	}
	m := &MLIPS{TargetMLIPS: targetMLIPS}
	m.InstrPerLI = float64(instrs) / float64(calls)
	m.RefsPerInstr = float64(refs) / float64(instrs)
	m.WordsPerLI = m.InstrPerLI * m.RefsPerInstr
	m.BytesPerLI = 4 * m.WordsPerLI
	m.RawBandwidthMBs = targetMLIPS * m.BytesPerLI

	// Capture ratio: mean over the paper benchmarks at 8 PEs with
	// write-in broadcast caches (memoized traces, grid cells).
	ratios, err := protocolRatios(ctx, bench.Paper(), 8, cacheWords, "mlips")
	if err != nil {
		return nil, err
	}
	traffic := stats.Mean(ratios)
	m.CaptureRatio = 1 - traffic
	m.BusBandwidthMBs = m.RawBandwidthMBs * traffic
	return m, nil
}

// String renders the calculation.
func (m *MLIPS) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Back-of-the-envelope MLIPS feasibility (paper section 3.3)\n")
	fmt.Fprintf(&b, "  instructions / inference : %6.1f   (paper assumes 15)\n", m.InstrPerLI)
	fmt.Fprintf(&b, "  references / instruction : %6.2f   (paper assumes 3)\n", m.RefsPerInstr)
	fmt.Fprintf(&b, "  words / inference        : %6.1f   (paper: 45)\n", m.WordsPerLI)
	fmt.Fprintf(&b, "  bytes / inference        : %6.1f   (paper: 180)\n", m.BytesPerLI)
	fmt.Fprintf(&b, "  target                   : %6.2f MLIPS\n", m.TargetMLIPS)
	fmt.Fprintf(&b, "  raw bandwidth needed     : %6.1f MB/s (paper: 360)\n", m.RawBandwidthMBs)
	fmt.Fprintf(&b, "  cache capture ratio      : %6.2f   (paper: 0.70)\n", m.CaptureRatio)
	fmt.Fprintf(&b, "  bus bandwidth needed     : %6.1f MB/s (paper: 108)\n", m.BusBandwidthMBs)
	return b.String()
}

// BusStudy tabulates shared-memory efficiency against bus bandwidth
// using the analytic M/M/1 model, fed with the 8-PE traffic ratio.
type BusStudy struct {
	PEs          int
	TrafficRatio float64
	Bandwidths   []float64 // bus words per processor cycle
	Efficiency   []float64
	Utilization  []float64
}

// RunBusStudy evaluates efficiency for a range of bus speeds. The
// per-benchmark traffic ratios come from memoized traces simulated on
// the experiment grid.
func RunBusStudy(ctx context.Context, pes, cacheWords int) (*BusStudy, error) {
	ratios, err := protocolRatios(ctx, bench.Paper(), pes, cacheWords, "bus")
	if err != nil {
		return nil, err
	}
	out := &BusStudy{PEs: pes, TrafficRatio: stats.Mean(ratios)}
	for _, bw := range []float64{0.5, 1, 2, 4, 8, 16} {
		r, err := busmodel.Analytic(busmodel.Params{
			PEs:              pes,
			RefsPerCycle:     1,
			TrafficRatio:     out.TrafficRatio,
			BusWordsPerCycle: bw,
		})
		if err != nil {
			return nil, err
		}
		out.Bandwidths = append(out.Bandwidths, bw)
		eff := r.Efficiency
		if r.Saturated {
			eff = 0
		}
		out.Efficiency = append(out.Efficiency, eff)
		out.Utilization = append(out.Utilization, r.Utilization)
	}
	return out, nil
}

// String renders the study.
func (bs *BusStudy) String() string {
	t := stats.NewTable(
		fmt.Sprintf("Bus contention (M/M/1): %d PEs, traffic ratio %.3f", bs.PEs, bs.TrafficRatio),
		"bus words/cycle", "utilization", "efficiency")
	for i := range bs.Bandwidths {
		t.AddRow(bs.Bandwidths[i], bs.Utilization[i], bs.Efficiency[i])
	}
	return t.String()
}

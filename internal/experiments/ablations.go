package experiments

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/busmodel"
	"repro/internal/cache"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
)

// This file holds the ablation studies DESIGN.md calls out: design
// choices of the RAP-WAM/simulation stack varied one at a time.

// GranularityPoint is one depth setting of the granularity sweep.
type GranularityPoint struct {
	Depth         int
	GoalsParallel int64
	RefsOverhead  float64 // parallel refs / sequential refs - 1
	Speedup8      float64 // cycles(1 PE seq) / cycles(8 PEs)
}

// GranularitySweep varies deriv's parallelism depth budget: depth 0 is
// sequential; each level doubles available parallelism but also
// parallelism-management overhead. This quantifies the granularity
// control implicit in the paper's benchmark annotations.
type GranularitySweep struct {
	Points []GranularityPoint
}

// RunGranularitySweep measures deriv at the given depths, serving
// per-cell statistics from the grid's memo layer.
func RunGranularitySweep(ctx context.Context, depths []int) (*GranularitySweep, error) {
	base, _, err := runStats(ctx, bench.DerivDepth(0), 1, true)
	if err != nil {
		return nil, err
	}
	baseRefs := float64(base.TotalWorkRefs())
	baseCycles := float64(base.Cycles)
	out := &GranularitySweep{}
	for _, d := range depths {
		st, _, err := runStats(ctx, bench.DerivDepth(d), 8, false)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, GranularityPoint{
			Depth:         d,
			GoalsParallel: st.GoalsParallel,
			RefsOverhead:  float64(st.TotalWorkRefs())/baseRefs - 1,
			Speedup8:      baseCycles / float64(st.Cycles),
		})
	}
	return out, nil
}

// String renders the sweep.
func (g *GranularitySweep) String() string {
	t := stats.NewTable("Ablation: CGE granularity depth (deriv, 8 PEs)",
		"depth", "goals//", "refs overhead", "speedup")
	for _, p := range g.Points {
		t.AddRow(p.Depth, p.GoalsParallel, fmt.Sprintf("%.1f%%", 100*p.RefsOverhead), p.Speedup8)
	}
	return t.String()
}

// LineSizeSweep varies the cache line size at a fixed capacity — the
// paper fixes four-word lines; this shows where that sits.
type LineSizeSweep struct {
	SizeWords int
	LineWords []int
	Ratio     []float64
	MissRatio []float64
	Benchmark string
	PEs       int
}

// RunLineSizeSweep replays one benchmark trace across line sizes; all
// line sizes are simulated concurrently in a single pass over the
// memoized trace.
func RunLineSizeSweep(ctx context.Context, benchName string, pes, sizeWords int, lines []int) (*LineSizeSweep, error) {
	b, ok := bench.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	cfgs := make([]cache.Config, len(lines))
	for i, lw := range lines {
		cfgs[i] = cache.Config{
			PEs: pes, SizeWords: sizeWords, LineWords: lw,
			Protocol:      cache.WriteInBroadcast,
			WriteAllocate: cache.PaperWriteAllocate(cache.WriteInBroadcast, sizeWords),
		}
	}
	sts, err := simulateAll(ctx, b, pes, pes == 1, cfgs)
	if err != nil {
		return nil, err
	}
	out := &LineSizeSweep{SizeWords: sizeWords, Benchmark: benchName, PEs: pes}
	for i, lw := range lines {
		out.LineWords = append(out.LineWords, lw)
		out.Ratio = append(out.Ratio, sts[i].TrafficRatio())
		out.MissRatio = append(out.MissRatio, sts[i].MissRatio())
	}
	return out, nil
}

// String renders the sweep.
func (l *LineSizeSweep) String() string {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: line size (%s, %d PEs, %d-word caches, write-in broadcast)",
			l.Benchmark, l.PEs, l.SizeWords),
		"line (words)", "traffic ratio", "miss ratio")
	for i := range l.LineWords {
		t.AddRow(l.LineWords[i], l.Ratio[i], l.MissRatio[i])
	}
	return t.String()
}

// LockShare reports the fraction of references spent on locked objects
// (goal stack, parcall counters, messages) — the synchronization cost
// Table 1's lock column identifies.
type LockShare struct {
	Benchmark string
	PEs       int
	Locked    int64
	Total     int64
}

// RunLockShare measures one benchmark; the Table 1 reference counter
// comes from the grid's memo layer (the run sidecar, with a store).
func RunLockShare(ctx context.Context, benchName string, pes int) (*LockShare, error) {
	b, ok := bench.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	_, refs, err := runStats(ctx, b, pes, false)
	if err != nil {
		return nil, err
	}
	out := &LockShare{Benchmark: benchName, PEs: pes}
	for obj, ops := range refs.ByObj {
		n := ops[0] + ops[1]
		out.Total += n
		if trace.ObjType(obj).Locked() {
			out.Locked += n
		}
	}
	return out, nil
}

// Share returns the locked fraction.
func (l *LockShare) Share() float64 {
	if l.Total == 0 {
		return 0
	}
	return float64(l.Locked) / float64(l.Total)
}

// String renders the measurement.
func (l *LockShare) String() string {
	return fmt.Sprintf("Lock traffic share (%s, %d PEs): %.2f%% (%d of %d references)\n",
		l.Benchmark, l.PEs, 100*l.Share(), l.Locked, l.Total)
}

// BusDES runs the discrete-event bus simulation on real transaction
// streams from the cache simulator (the paper defers this to Tick's
// queueing model; the analytic M/M/1 is cross-checked here against an
// actual event-by-event replay).
type BusDES struct {
	Benchmark        string
	PEs              int
	BusWordsPerCycle float64
	DES              busmodel.Result
	Analytic         busmodel.Result
}

// RunBusDES replays one benchmark's bus transactions through the DES
// bus and the analytic model.
func RunBusDES(ctx context.Context, benchName string, pes, cacheWords int, busWordsPerCycle float64) (*BusDES, error) {
	b, ok := bench.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	// The DES needs the bus-transaction event stream in global order, so
	// this one replay stays sequential (a single OnBus observer); with a
	// store attached it streams from the stored trace. A mid-replay
	// failure leaves sim and events partially fed, so every heal attempt
	// recreates both before replaying again; a store that keeps failing
	// degrades to a direct in-memory trace (marking the context
	// degraded) — bit-identical events either way.
	var (
		events []busmodel.Event
		sim    *cache.Sim
	)
	fresh := func() {
		events = nil
		sim = cache.New(cache.Config{
			PEs: pes, SizeWords: cacheWords, LineWords: 4,
			Protocol:      cache.WriteInBroadcast,
			WriteAllocate: cache.PaperWriteAllocate(cache.WriteInBroadcast, cacheWords),
		})
		sim.OnBus = func(pe, words int, refIndex int64) {
			// The reference index divided by the PE count approximates
			// the per-PE clock of the interleaved machine.
			events = append(events, busmodel.Event{
				PE: pe, Time: float64(refIndex) / float64(pes), Words: words,
			})
		}
	}
	var replayErr error
	for attempt := 0; attempt < storeHealAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fresh()
		if replayErr = replayCell(ctx, b, pes, pes == 1, sim); replayErr == nil {
			break
		}
		if !storeHealable(replayErr) {
			return nil, replayErr
		}
	}
	if replayErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		storage.MarkDegraded(ctx, "trace-store")
		progress("bus DES for %s @ %d PEs degrading to direct run: %v", benchName, pes, replayErr)
		buf, err := cachedTrace(ctx, b, pes, pes == 1, true)
		if err != nil {
			return nil, err
		}
		fresh()
		buf.ReplayAll(sim)
	}

	des, _, err := busmodel.Simulate(events, pes, busWordsPerCycle)
	if err != nil {
		return nil, err
	}
	ana, err := busmodel.Analytic(busmodel.Params{
		PEs: pes, RefsPerCycle: 1,
		TrafficRatio:     sim.Stats().TrafficRatio(),
		BusWordsPerCycle: busWordsPerCycle,
	})
	if err != nil {
		return nil, err
	}
	return &BusDES{
		Benchmark: benchName, PEs: pes, BusWordsPerCycle: busWordsPerCycle,
		DES: des, Analytic: ana,
	}, nil
}

// String renders the comparison.
func (b *BusDES) String() string {
	return fmt.Sprintf(
		"Bus DES vs analytic (%s, %d PEs, %.1f words/cycle):\n"+
			"  DES:      utilization %.3f, mean wait %.2f cycles, efficiency %.3f\n"+
			"  analytic: utilization %.3f, mean wait %.2f cycles, efficiency %.3f\n",
		b.Benchmark, b.PEs, b.BusWordsPerCycle,
		b.DES.Utilization, b.DES.MeanWaitCycles, b.DES.Efficiency,
		b.Analytic.Utilization, b.Analytic.MeanWaitCycles, b.Analytic.Efficiency)
}

// AssocSweep compares the paper's fully associative cache model with
// hardware-realizable set-associative caches of the same capacity.
type AssocSweep struct {
	Benchmark string
	PEs       int
	SizeWords int
	Ways      []int // 0 = fully associative
	Ratio     []float64
}

// RunAssocSweep replays one benchmark trace across associativities; all
// ways are simulated concurrently in a single pass over the memoized
// trace.
func RunAssocSweep(ctx context.Context, benchName string, pes, sizeWords int, ways []int) (*AssocSweep, error) {
	b, ok := bench.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	cfgs := make([]cache.Config, len(ways))
	for i, w := range ways {
		cfgs[i] = cache.Config{
			PEs: pes, SizeWords: sizeWords, LineWords: 4,
			Protocol:      cache.WriteInBroadcast,
			WriteAllocate: cache.PaperWriteAllocate(cache.WriteInBroadcast, sizeWords),
			Assoc:         w,
		}
	}
	sts, err := simulateAll(ctx, b, pes, pes == 1, cfgs)
	if err != nil {
		return nil, err
	}
	out := &AssocSweep{Benchmark: benchName, PEs: pes, SizeWords: sizeWords}
	for i, w := range ways {
		out.Ways = append(out.Ways, w)
		out.Ratio = append(out.Ratio, sts[i].TrafficRatio())
	}
	return out, nil
}

// String renders the sweep.
func (a *AssocSweep) String() string {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: associativity (%s, %d PEs, %d-word caches)",
			a.Benchmark, a.PEs, a.SizeWords),
		"ways", "traffic ratio")
	for i, w := range a.Ways {
		label := fmt.Sprintf("%d", w)
		if w == 0 {
			label = "full (paper)"
		}
		t.AddRow(label, a.Ratio[i])
	}
	return t.String()
}

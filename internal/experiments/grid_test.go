package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
)

// TestFanOutReplayBitIdenticalToSequential is the pipeline determinism
// guarantee: simulating many cache configurations concurrently in one
// trace pass must produce exactly the statistics of replaying the trace
// once per configuration, for every protocol, on more than one
// benchmark.
func TestFanOutReplayBitIdenticalToSequential(t *testing.T) {
	cases := []struct {
		bench     string
		pes       int
		protocols []cache.Protocol
	}{
		// Sequential single-PE trace: every protocol, including
		// copyback (which is only coherent at 1 PE).
		{"deriv", 1, cache.Protocols()},
		// Parallel 4-PE trace: the four coherent protocols.
		{"qsort", 4, []cache.Protocol{
			cache.WriteThrough, cache.WriteInBroadcast,
			cache.WriteThroughBroadcast, cache.Hybrid,
		}},
	}
	for _, tc := range cases {
		b, _ := benchByName(t, tc.bench)
		buf, err := cachedTrace(context.Background(), b, tc.pes, tc.pes == 1, false)
		if err != nil {
			t.Fatal(err)
		}
		var cfgs []cache.Config
		for _, proto := range tc.protocols {
			for _, size := range []int{128, 1024} {
				cfgs = append(cfgs, cache.Config{
					PEs: tc.pes, SizeWords: size, LineWords: 4,
					Protocol:      proto,
					WriteAllocate: cache.PaperWriteAllocate(proto, size),
				})
			}
		}
		concurrent, err := cache.SimulateAll(buf, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range cfgs {
			sim := cache.New(cfg)
			buf.Replay(sim)
			if sequential := sim.Stats(); concurrent[i] != sequential {
				t.Errorf("%s @ %d PEs, %v/%dw: concurrent %+v != sequential %+v",
					tc.bench, tc.pes, cfg.Protocol, cfg.SizeWords,
					concurrent[i], sequential)
			}
		}
	}
}

func TestRunGridRunsAllCellsBounded(t *testing.T) {
	SetParallelism(3)
	defer SetParallelism(0)
	var inFlight, peak, done atomic.Int64
	err := runGrid(context.Background(), 50, func(i int) error {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		done.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.Load() != 50 {
		t.Fatalf("ran %d cells, want 50", done.Load())
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds worker bound 3", p)
	}
}

func TestRunGridPropagatesError(t *testing.T) {
	want := errors.New("cell failed")
	var ran atomic.Int64
	err := runGrid(context.Background(), 10, func(i int) error {
		ran.Add(1)
		if i == 4 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	// At least the cells up to the failing one ran; later cells may be
	// skipped once the error is recorded.
	if ran.Load() < 5 {
		t.Fatalf("ran %d cells, want >= 5", ran.Load())
	}
}

func TestCachedTraceMemoizes(t *testing.T) {
	b, _ := benchByName(t, "deriv")
	first, err := cachedTrace(context.Background(), b, 1, true, false)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cachedTrace(context.Background(), b, 1, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("same (benchmark, PEs, sequential) key re-traced")
	}
	other, err := cachedTrace(context.Background(), b, 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if other == first {
		t.Error("distinct keys shared a trace")
	}
	ResetTraceCache()
	fresh, err := cachedTrace(context.Background(), b, 1, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == first {
		t.Error("ResetTraceCache kept the old entry")
	}
	if fresh.Len() != first.Len() {
		t.Errorf("re-traced length %d != original %d (engine not deterministic?)", fresh.Len(), first.Len())
	}
}

// TestGridParallelismInvariance re-runs a full driver at parallelism 1
// and N and requires identical output — the grid must never change the
// numbers, only the wall clock.
func TestGridParallelismInvariance(t *testing.T) {
	sizes := []int{128, 512}
	SetParallelism(1)
	defer SetParallelism(0)
	seq, err := RunFigure4(context.Background(), []int{1, 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(8)
	par, err := RunFigure4(context.Background(), []int{1, 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("parallel grid changed results:\n--- par=1:\n%s\n--- par=8:\n%s", seq, par)
	}
	for i := range seq.Series {
		for j := range seq.Series[i].Ratio {
			if seq.Series[i].Ratio[j] != par.Series[i].Ratio[j] {
				t.Errorf("series %d ratio %d: %v != %v",
					i, j, seq.Series[i].Ratio[j], par.Series[i].Ratio[j])
			}
		}
	}
}

func TestSimulateAllRejectsBadConfig(t *testing.T) {
	b, _ := benchByName(t, "deriv")
	_, err := simulateAll(context.Background(), b, 1, true, []cache.Config{
		{PEs: 0, SizeWords: 128, LineWords: 4},
	})
	if err == nil {
		t.Fatal("invalid config not rejected")
	}
}

func BenchmarkGridFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunFigure4(context.Background(), []int{1, 4}, []int{64, 256, 1024}); err != nil {
			b.Fatal(err)
		}
	}
}

package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/tracestore"
)

func TestRunGridReturnsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	err := runGrid(ctx, 10, func(i int) error {
		calls.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runGrid with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("cancelled-before-start grid still ran %d cells", calls.Load())
	}
}

func TestRunGridStopsAtCellBoundary(t *testing.T) {
	SetParallelism(2)
	defer SetParallelism(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	err := runGrid(ctx, 1000, func(i int) error {
		if calls.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cells already in flight complete; everything else is skipped.
	if n := calls.Load(); n > 10 {
		t.Fatalf("grid ran %d cells after cancellation — should stop at the next cell boundary", n)
	}
}

func TestDriverCancellationDoesNotPoisonMemo(t *testing.T) {
	// Use a sized variant so this test owns its memo cells.
	name := "qsort-150"
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLineSizeSweep(ctx, name, 2, 256, []int{2, 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep: err = %v, want context.Canceled", err)
	}
	// The cancelled cell must not be memoized as failed: the same
	// driver with a live context succeeds.
	l, err := RunLineSizeSweep(context.Background(), name, 2, 256, []int{2, 4})
	if err != nil {
		t.Fatalf("sweep after cancelled attempt: %v", err)
	}
	if len(l.Ratio) != 2 {
		t.Fatalf("got %d ratios, want 2", len(l.Ratio))
	}
}

func TestCachedTraceEvictsCancelledEntry(t *testing.T) {
	b, _ := bench.ByName("deriv-12")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cachedTrace(ctx, b, 2, false, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("cachedTrace with cancelled ctx: err = %v, want context.Canceled", err)
	}
	buf, err := cachedTrace(context.Background(), b, 2, false, false)
	if err != nil {
		t.Fatalf("cachedTrace after cancelled attempt: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("retried trace is empty")
	}
}

func TestGenerateTracesCancellation(t *testing.T) {
	store, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(store)
	defer SetStore(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	targets := []TraceTarget{{Benchmark: bench.Qsort(), PEs: 2}}
	if err := GenerateTraces(ctx, targets); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateTraces with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if err := GenerateTraces(context.Background(), targets); err != nil {
		t.Fatalf("GenerateTraces retry: %v", err)
	}
}

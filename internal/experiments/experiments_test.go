package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cache"
)

func TestTable1RendersAllRows(t *testing.T) {
	out := Table1()
	for _, want := range []string{"envt/control", "heap", "parcall/counts", "goalframe", "message", "Global", "Local"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2ShapeMatchesPaper(t *testing.T) {
	f, err := RunFigure2(context.Background(), []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 4 {
		t.Fatalf("points = %d", len(f.Points))
	}
	// Work at 1 PE must be close to WAM work (paper: within a few %).
	if f.Points[0].WorkPct > 125 {
		t.Errorf("1-PE work = %.1f%% of WAM; paper shows near 100%%", f.Points[0].WorkPct)
	}
	// Work grows only modestly with PEs (paper: ~15% up to 40 PEs).
	last := f.Points[len(f.Points)-1]
	if last.WorkPct > 140 {
		t.Errorf("8-PE work = %.1f%% of WAM; overhead too high", last.WorkPct)
	}
	// Speedup must increase with PEs.
	for i := 1; i < len(f.Points); i++ {
		if f.Points[i].Speedup <= f.Points[i-1].Speedup*0.95 {
			t.Errorf("speedup not increasing: %v then %v",
				f.Points[i-1].Speedup, f.Points[i].Speedup)
		}
	}
	if f.Points[3].Speedup < 2 {
		t.Errorf("8-PE speedup = %.2f, want >= 2", f.Points[3].Speedup)
	}
	if !strings.Contains(f.String(), "Figure 2") {
		t.Error("String() lacks title")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	t2, err := RunTable2(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4 {
		t.Fatalf("rows = %d", len(t2.Rows))
	}
	for _, r := range t2.Rows {
		// RAP-WAM does at least as many references as the WAM, but not
		// wildly more (paper: within ~6%; allow 25% headroom).
		if r.RefsRAPWAM < r.RefsWAM {
			t.Errorf("%s: RAP-WAM refs %d < WAM refs %d", r.Name, r.RefsRAPWAM, r.RefsWAM)
		}
		if float64(r.RefsRAPWAM) > 1.25*float64(r.RefsWAM) {
			t.Errorf("%s: RAP-WAM/WAM = %.2f, paper shows low overhead",
				r.Name, float64(r.RefsRAPWAM)/float64(r.RefsWAM))
		}
		if r.GoalsParallel == 0 {
			t.Errorf("%s: no parallel goals", r.Name)
		}
	}
	// Instruction counts in the paper's order-of-magnitude range.
	for i, want := range []int64{33520, 75254, 237884, 95349} {
		got := t2.Rows[i].Instructions
		if got < want/3 || got > want*3 {
			t.Errorf("%s: %d instructions, paper has %d (want same magnitude)",
				t2.Rows[i].Name, got, want)
		}
	}
}

func TestTable3FitIsGood(t *testing.T) {
	t3, err := RunTable3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Etr) != 2 || len(t3.Z) != 2 {
		t.Fatalf("unexpected shape: %+v", t3)
	}
	// Larger caches capture more traffic.
	if t3.Etr[1] >= t3.Etr[0] {
		t.Errorf("Etr(1024) = %.4f >= Etr(512) = %.4f", t3.Etr[1], t3.Etr[0])
	}
	// The paper's z-scores are within ~±2; ours should be same order.
	for i := range t3.Z {
		for j, z := range t3.Z[i] {
			if z > 4 || z < -4 {
				t.Errorf("z[%d][%s] = %.2f, fit should be within a few sigma",
					t3.CacheSizes[i], t3.Small[j], z)
			}
		}
	}
}

func TestFigure4OrderingMatchesPaper(t *testing.T) {
	sizes := []int{64, 256, 1024}
	f, err := RunFigure4(context.Background(), []int{1, 4}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range []int{1, 4} {
		wt := f.Ratio(cache.WriteThrough, pes)
		hy := f.Ratio(cache.Hybrid, pes)
		bc := f.Ratio(cache.WriteInBroadcast, pes)
		if wt == nil || hy == nil || bc == nil {
			t.Fatalf("missing series at %d PEs", pes)
		}
		for i := range sizes {
			// Paper Figure 4 ordering: broadcast <= hybrid <= write-through
			// (hybrid "between broadcast and conventional write-through").
			if bc[i] > hy[i]*1.02 {
				t.Errorf("%d PEs %dw: broadcast %.3f > hybrid %.3f",
					pes, sizes[i], bc[i], hy[i])
			}
			if hy[i] > wt[i]*1.02 {
				t.Errorf("%d PEs %dw: hybrid %.3f > write-through %.3f",
					pes, sizes[i], hy[i], wt[i])
			}
		}
		// Traffic decreases with cache size for the copyback-style caches.
		for i := 1; i < len(sizes); i++ {
			if bc[i] > bc[i-1]*1.05 {
				t.Errorf("%d PEs: broadcast traffic rises with size: %v", pes, bc)
			}
		}
	}
}

func TestFigure4BroadcastCapturesMostTraffic(t *testing.T) {
	// Paper §3.3: 8 PEs with write-in broadcast caches capture over 70%
	// of the traffic (ratio < 0.3). The paper reaches this from 128
	// words; with our (larger, synthesized) benchmark inputs the
	// threshold lands one size up, at 256 words — see EXPERIMENTS.md.
	f, err := RunFigure4(context.Background(), []int{8}, []int{256, 512})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range f.Ratio(cache.WriteInBroadcast, 8) {
		if r >= 0.3 {
			t.Errorf("broadcast ratio at %dw = %.3f, paper reports < 0.3", f.CacheSizes[i], r)
		}
	}
}

func TestMLIPSNumbersInPaperRange(t *testing.T) {
	m, err := RunMLIPS(context.Background(), 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.InstrPerLI < 5 || m.InstrPerLI > 40 {
		t.Errorf("instr/LI = %.1f, paper assumes ~15", m.InstrPerLI)
	}
	if m.RefsPerInstr < 0.5 || m.RefsPerInstr > 6 {
		t.Errorf("refs/instr = %.2f, paper assumes ~3", m.RefsPerInstr)
	}
	if m.CaptureRatio < 0.6 {
		t.Errorf("capture ratio = %.2f, paper reports ~0.7", m.CaptureRatio)
	}
	if m.BusBandwidthMBs >= m.RawBandwidthMBs {
		t.Error("caches did not reduce required bandwidth")
	}
	if !strings.Contains(m.String(), "MLIPS") {
		t.Error("String() lacks label")
	}
}

func TestBusStudyEfficiencyRisesWithBandwidth(t *testing.T) {
	bs, err := RunBusStudy(context.Background(), 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(bs.Efficiency); i++ {
		if bs.Efficiency[i] < bs.Efficiency[i-1] {
			t.Errorf("efficiency fell with more bandwidth: %v", bs.Efficiency)
		}
	}
	last := bs.Efficiency[len(bs.Efficiency)-1]
	if last < 0.9 {
		t.Errorf("efficiency with a fast bus = %.2f, paper argues it can be high", last)
	}
}

func TestUpdateBroadcastCloseToWriteIn(t *testing.T) {
	// Paper §3.2: "The write-through broadcast cache statistics ... are
	// almost identical to those of the write-in broadcast cache, an
	// indication that communication traffic in RAP-WAM is low."
	b, _ := benchByName(t, "qsort")
	buf, err := cachedTrace(context.Background(), b, 8, false, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{256, 1024} {
		wi := cacheRatio(buf, cache.Config{
			PEs: 8, SizeWords: size, LineWords: 4,
			Protocol:      cache.WriteInBroadcast,
			WriteAllocate: cache.PaperWriteAllocate(cache.WriteInBroadcast, size),
		})
		up := cacheRatio(buf, cache.Config{
			PEs: 8, SizeWords: size, LineWords: 4,
			Protocol:      cache.WriteThroughBroadcast,
			WriteAllocate: cache.PaperWriteAllocate(cache.WriteThroughBroadcast, size),
		})
		diff := up - wi
		if diff < 0 {
			diff = -diff
		}
		// "Almost identical": within a few hundredths of traffic ratio.
		if diff > 0.05 {
			t.Errorf("%dw: write-in %.4f vs update %.4f differ by %.3f", size, wi, up, diff)
		}
	}
}

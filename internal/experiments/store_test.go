package experiments

import (
	"context"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// withStore attaches a fresh store rooted in a test temp dir and
// restores the store-less state afterwards.
func withStore(t *testing.T) *tracestore.Store {
	t.Helper()
	s, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	ResetTraceCache()
	t.Cleanup(func() {
		SetStore(nil)
		ResetTraceCache()
	})
	return s
}

// testConfigs is a small protocol × size grid.
func testConfigs(pes int) []cache.Config {
	var cfgs []cache.Config
	for _, proto := range []cache.Protocol{cache.WriteInBroadcast, cache.Hybrid, cache.WriteThrough} {
		for _, size := range []int{128, 1024} {
			cfgs = append(cfgs, cache.Config{
				PEs: pes, SizeWords: size, LineWords: 4,
				Protocol:      proto,
				WriteAllocate: cache.PaperWriteAllocate(proto, size),
			})
		}
	}
	return cfgs
}

// TestStoreStreamedReplayParity checks the acceptance criterion that
// streamed replay from disk produces bit-identical statistics —
// aggregate and per-PE — to in-memory replay, across protocols, for a
// parallel and a sequential workload.
func TestStoreStreamedReplayParity(t *testing.T) {
	cells := []struct {
		name string
		pes  int
		seq  bool
	}{
		{"qsort", 4, false},
		{"deriv", 1, true},
	}
	for _, cell := range cells {
		b, ok := bench.ByName(cell.name)
		if !ok {
			t.Fatalf("unknown benchmark %q", cell.name)
		}
		cfgs := testConfigs(cell.pes)

		// In-memory reference: buffer the trace, replay per config.
		buf, _, err := bench.Trace(context.Background(), b, cell.pes, cell.seq)
		if err != nil {
			t.Fatal(err)
		}
		wantSims := make([]*cache.Sim, len(cfgs))
		for i, cfg := range cfgs {
			wantSims[i] = cache.New(cfg)
			buf.Replay(wantSims[i])
		}

		// Store path: generate into the store, stream from disk through
		// the fan-out into all configs at once.
		s := func() *tracestore.Store {
			st, err := tracestore.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return st
		}()
		SetStore(s)
		ResetTraceCache()
		t.Cleanup(func() { SetStore(nil); ResetTraceCache() })

		gotSims := make([]*cache.Sim, len(cfgs))
		sinks := make([]trace.Sink, len(cfgs))
		for i, cfg := range cfgs {
			gotSims[i] = cache.New(cfg)
			sinks[i] = gotSims[i]
		}
		if err := replayCell(context.Background(), b, cell.pes, cell.seq, sinks...); err != nil {
			t.Fatal(err)
		}

		for i := range cfgs {
			if got, want := gotSims[i].Stats(), wantSims[i].Stats(); got != want {
				t.Errorf("%s@%d cfg %d: streamed stats %+v != in-memory %+v", cell.name, cell.pes, i, got, want)
			}
			if got, want := gotSims[i].PerPEBusWords(), wantSims[i].PerPEBusWords(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s@%d cfg %d: per-PE bus words %v != %v", cell.name, cell.pes, i, got, want)
			}
			if got, want := gotSims[i].PerPERefs(), wantSims[i].PerPERefs(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s@%d cfg %d: per-PE refs %v != %v", cell.name, cell.pes, i, got, want)
			}
		}
		SetStore(nil)
		ResetTraceCache()
	}
}

// TestWarmStoreRunsNoEmulation is the acceptance criterion for the
// store: once warm, a full mix of experiment drivers — trace-driven
// sweeps, stats-only drivers, counter-based and OnBus-based ablations —
// performs zero emulator runs, and every result is identical to the
// cold pass that generated the store.
func TestWarmStoreRunsNoEmulation(t *testing.T) {
	withStore(t)

	type results struct {
		fig2 *Figure2
		t2   *Table2
		fig4 *Figure4
		line *LineSizeSweep
		lock *LockShare
		des  *BusDES
	}
	runAll := func() (results, error) {
		var r results
		var err error
		if r.fig2, err = RunFigure2(context.Background(), []int{1, 2}); err != nil {
			return r, err
		}
		if r.t2, err = RunTable2(context.Background(), 2); err != nil {
			return r, err
		}
		if r.fig4, err = RunFigure4(context.Background(), []int{2}, []int{128, 1024}); err != nil {
			return r, err
		}
		if r.line, err = RunLineSizeSweep(context.Background(), "qsort", 2, 512, []int{2, 8}); err != nil {
			return r, err
		}
		if r.lock, err = RunLockShare(context.Background(), "qsort", 2); err != nil {
			return r, err
		}
		r.des, err = RunBusDES(context.Background(), "qsort", 2, 256, 4)
		return r, err
	}

	cold, err := runAll()
	if err != nil {
		t.Fatal(err)
	}
	if n := EngineRuns(); n == 0 {
		t.Fatal("cold pass reported zero engine runs")
	}

	ResetEngineRuns()
	warm, err := runAll()
	if err != nil {
		t.Fatal(err)
	}
	if n := EngineRuns(); n != 0 {
		t.Fatalf("warm store still performed %d emulator runs", n)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("warm results differ from cold results")
	}
}

// TestStoreVsMemoryDriverParity runs the same drivers with and without
// a store and requires identical outputs: the persistence layer must be
// invisible in the numbers.
func TestStoreVsMemoryDriverParity(t *testing.T) {
	run := func() (*Figure4, *Table2, *LockShare) {
		f4, err := RunFigure4(context.Background(), []int{2}, []int{256})
		if err != nil {
			t.Fatal(err)
		}
		t2, err := RunTable2(context.Background(), 2)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := RunLockShare(context.Background(), "matrix", 2)
		if err != nil {
			t.Fatal(err)
		}
		return f4, t2, ls
	}

	SetStore(nil)
	ResetTraceCache()
	memF4, memT2, memLS := run()

	withStore(t)
	stoF4, stoT2, stoLS := run()

	if !reflect.DeepEqual(memF4, stoF4) {
		t.Errorf("Figure4 differs: mem %+v store %+v", memF4, stoF4)
	}
	if !reflect.DeepEqual(memT2, stoT2) {
		t.Errorf("Table2 differs: mem %+v store %+v", memT2, stoT2)
	}
	if !reflect.DeepEqual(memLS, stoLS) {
		t.Errorf("LockShare differs: mem %+v store %+v", memLS, stoLS)
	}
}

// TestRunStatsRepairsMissingSidecar simulates a store whose trace
// survived but whose sidecar write was interrupted: the first stats
// query falls back to one emulator run and rewrites the sidecar, so
// later queries are served from the store again.
func TestRunStatsRepairsMissingSidecar(t *testing.T) {
	s := withStore(t)
	b, _ := bench.ByName("matrix")
	if _, err := bench.EnsureStored(context.Background(), b, 2, false); err != nil {
		t.Fatal(err)
	}
	k := bench.StoreKey("matrix", 2, false)
	sidecar := strings.TrimSuffix(s.Path(k), tracestore.TraceExt) + ".json"
	if err := os.Remove(sidecar); err != nil {
		t.Fatalf("removing sidecar: %v", err)
	}

	ResetEngineRuns()
	if _, _, err := runStats(context.Background(), b, 2, false); err != nil {
		t.Fatal(err)
	}
	if n := EngineRuns(); n != 1 {
		t.Fatalf("fallback performed %d engine runs, want 1", n)
	}
	ResetEngineRuns()
	if _, _, err := runStats(context.Background(), b, 2, false); err != nil {
		t.Fatal(err)
	}
	if n := EngineRuns(); n != 0 {
		t.Fatalf("sidecar not repaired: %d engine runs on second query", n)
	}
}

// TestParallelGenerationSingleFlight checks that concurrent grid cells
// needing the same trace generate it exactly once, while distinct cells
// generate in parallel on the pool.
func TestParallelGenerationSingleFlight(t *testing.T) {
	withStore(t)
	bench.ResetEngineRuns()

	// 4 distinct cells × 3 configs each, all cells touched twice.
	benches := []string{"qsort", "matrix"}
	pesList := []int{1, 2}
	var total int
	for range []int{0, 1} { // two sweeps over the same cells
		err := runGrid(context.Background(), len(benches)*len(pesList), func(i int) error {
			b, _ := bench.ByName(benches[i%len(benches)])
			pes := pesList[i/len(benches)]
			_, err := simulateAll(context.Background(), b, pes, pes == 1, testConfigs(pes)[:3])
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		total += len(benches) * len(pesList)
	}
	if n := bench.EngineRuns(); n != int64(len(benches)*len(pesList)) {
		t.Fatalf("%d cells over %d sweeps ran the emulator %d times, want once per cell (%d)",
			total, 2, n, len(benches)*len(pesList))
	}
}

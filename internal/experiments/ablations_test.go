package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestGranularitySweepTradeoff(t *testing.T) {
	g, err := RunGranularitySweep(context.Background(), []int{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Points) != 4 {
		t.Fatalf("points = %d", len(g.Points))
	}
	// Depth 0: no parallel goals, no overhead to speak of.
	if g.Points[0].GoalsParallel != 0 {
		t.Errorf("depth 0 spawned %d goals", g.Points[0].GoalsParallel)
	}
	// Goals and overhead grow monotonically with depth.
	for i := 1; i < len(g.Points); i++ {
		if g.Points[i].GoalsParallel < g.Points[i-1].GoalsParallel {
			t.Errorf("goals fell from depth %d to %d", g.Points[i-1].Depth, g.Points[i].Depth)
		}
	}
	// Some depth must beat depth 0's speedup.
	best := 0.0
	for _, p := range g.Points {
		if p.Speedup8 > best {
			best = p.Speedup8
		}
	}
	if best < 1.5 {
		t.Errorf("no depth produced speedup > 1.5 (best %.2f)", best)
	}
	if !strings.Contains(g.String(), "granularity") {
		t.Error("String() lacks title")
	}
}

func TestLineSizeSweep(t *testing.T) {
	l, err := RunLineSizeSweep(context.Background(), "qsort", 4, 1024, []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Miss ratio must fall as lines grow (spatial locality).
	for i := 1; i < len(l.LineWords); i++ {
		if l.MissRatio[i] > l.MissRatio[i-1]*1.05 {
			t.Errorf("miss ratio rose from line %d to %d: %v",
				l.LineWords[i-1], l.LineWords[i], l.MissRatio)
		}
	}
	// Traffic has a sweet spot: very large lines waste bandwidth. The
	// 4-word choice of the paper should not be the worst.
	worst := 0.0
	for _, r := range l.Ratio {
		if r > worst {
			worst = r
		}
	}
	fourIdx := -1
	for i, lw := range l.LineWords {
		if lw == 4 {
			fourIdx = i
		}
	}
	if fourIdx >= 0 && l.Ratio[fourIdx] >= worst && worst > 0 {
		t.Errorf("4-word lines are the worst configuration: %v", l.Ratio)
	}
}

func TestLockShareIsSmall(t *testing.T) {
	l, err := RunLockShare(context.Background(), "qsort", 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.Locked == 0 {
		t.Error("no locked references at 8 PEs")
	}
	// Synchronization must be a small share of total traffic (the
	// paper's low-overhead claim depends on it).
	if l.Share() > 0.10 {
		t.Errorf("lock share = %.1f%%, expected small", 100*l.Share())
	}
}

func TestBusDESMatchesAnalyticTrend(t *testing.T) {
	b, err := RunBusDES(context.Background(), "qsort", 4, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.DES.Efficiency <= 0 || b.DES.Efficiency > 1 {
		t.Errorf("DES efficiency = %v", b.DES.Efficiency)
	}
	// DES and analytic agree on the regime (both high or both low).
	if (b.DES.Efficiency > 0.8) != (b.Analytic.Efficiency > 0.8) {
		t.Errorf("DES %.3f vs analytic %.3f disagree on regime",
			b.DES.Efficiency, b.Analytic.Efficiency)
	}
	if !strings.Contains(b.String(), "Bus DES") {
		t.Error("String() lacks label")
	}
}

func TestAssocSweepConvergesToFull(t *testing.T) {
	a, err := RunAssocSweep(context.Background(), "qsort", 4, 1024, []int{1, 2, 4, 8, 0})
	if err != nil {
		t.Fatal(err)
	}
	full := a.Ratio[len(a.Ratio)-1]
	eightWay := a.Ratio[3]
	// 8-way must be close to the fully associative model (the paper's
	// idealization is not far from implementable hardware).
	if diff := eightWay - full; diff > 0.05 || diff < -0.05 {
		t.Errorf("8-way %.4f vs full %.4f differ by %.4f", eightWay, full, diff)
	}
	// Direct-mapped should be the worst or near it.
	if a.Ratio[0] < full {
		t.Errorf("direct-mapped %.4f beats fully associative %.4f", a.Ratio[0], full)
	}
}

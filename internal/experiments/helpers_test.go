package experiments

import (
	"testing"

	"repro/internal/bench"
)

func benchByName(t *testing.T, name string) (bench.Benchmark, bool) {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("benchmark %q missing", name)
	}
	return b, ok
}

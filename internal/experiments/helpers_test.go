package experiments

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/trace"
)

func benchByName(t *testing.T, name string) (bench.Benchmark, bool) {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("benchmark %q missing", name)
	}
	return b, ok
}

// cacheRatio replays a trace through one cache configuration — the
// sequential one-config-per-walk path the fan-out pipeline replaced,
// kept in tests as the reference formulation.
func cacheRatio(buf *trace.Buffer, cfg cache.Config) float64 {
	sim := cache.New(cfg)
	buf.Replay(sim)
	return sim.Stats().TrafficRatio()
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// This file is the experiment grid runner. Every driver that sweeps a
// parameter grid (Figure 4, Table 3, MLIPS, the bus study, the cache
// ablations) decomposes into the same three layers:
//
//  1. memoized cells — each distinct (benchmark, PEs, sequential)
//     engine run is executed once, no matter how many grid cells need
//     it. Without a trace store the trace is memoized in RAM
//     (cachedTrace); with one attached (SetStore / bench.SetTraceStore)
//     the run streams into the persistent store and later cells —
//     including cells in later processes — replay from disk, decoding
//     chunk by chunk so the trace never materializes in memory;
//  2. simulateAll — all cache configurations that consume one trace are
//     simulated concurrently in a single pass over it (trace.FanOut);
//  3. runGrid — independent grid cells (different traces) execute on a
//     bounded worker pool.
//
// The engine itself is a deterministic single-goroutine simulation and
// every cache.Sim is driven by exactly one consumer goroutine, so the
// results are bit-identical to the sequential formulation — whether the
// reference stream comes from the engine, a RAM buffer, or a stored
// compact trace.

// parallelism is the worker-pool width for independent grid cells.
var parallelism atomic.Int64

// SetParallelism bounds the number of grid cells (engine runs and
// trace replays) in flight at once. n <= 0 restores the default,
// runtime.GOMAXPROCS(0).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the current grid worker-pool width.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// intraShards is the configured intra-cell width (0 = unset, meaning
// 1: every cell fully sequential, the historical behavior).
var intraShards atomic.Int64

// SetShards configures intra-cell parallelism: how many set-shard
// workers replay a single cache configuration (cache.SimulateAllShards
// — fully associative configurations still clamp to 1), and how many
// goroutines encode RWT2 chunks during cold trace generation
// (bench.SetGenWorkers). n <= 0 selects GOMAXPROCS. Results are
// bit-identical at every setting.
//
// The grid's worker budget is shared, not multiplied: with parallelism
// B and shards K, runGrid runs at most max(1, B/K) cells at once, so
// B bounds total concurrency whether it is spent across cells (warm
// sweeps, many small configs) or inside one (a cold single-experiment
// request on an otherwise idle host).
func SetShards(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	intraShards.Store(int64(n))
	bench.SetGenWorkers(n)
}

// Shards returns the current intra-cell parallelism width (default 1).
func Shards() int {
	if n := int(intraShards.Load()); n > 0 {
		return n
	}
	return 1
}

// execShards is the configured emulator execution-shard width (0 =
// unset, meaning 1: the serial dispatcher).
var execShards atomic.Int64

// SetExecShards configures how many host goroutines the emulator uses
// inside one engine run to speculate independent PEs' cycles in
// parallel (bench.SetExecShards → core.Config.ExecShards). n <= 0
// selects GOMAXPROCS. The emitted traces — and therefore every result
// and stored byte — are identical at any setting.
//
// Like Shards, the width spends the shared grid budget: runGrid
// divides the cell pool by the larger of the two intra-cell widths, so
// SetParallelism(B) bounds total concurrency whether it is spent
// across cells or inside one.
func SetExecShards(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	execShards.Store(int64(n))
	bench.SetExecShards(n)
}

// ExecShards returns the current emulator execution-shard width
// (default 1).
func ExecShards() int {
	if n := int(execShards.Load()); n > 0 {
		return n
	}
	return 1
}

// progressFn gives the stored callback a fixed concrete type so
// atomic.Value accepts nil installs.
type progressFn func(msg string)

var onProgress atomic.Value // progressFn

// SetProgress installs a callback receiving a short line for every
// completed grid cell (e.g. "fig4: deriv @ 8 PEs: 24 configs
// simulated"); nil disables reporting. The callback may be invoked
// from multiple worker goroutines concurrently, and may be swapped
// while a grid run is in flight.
func SetProgress(f func(msg string)) {
	onProgress.Store(progressFn(f))
}

// progress reports one completed cell.
func progress(format string, args ...any) {
	if f, _ := onProgress.Load().(progressFn); f != nil {
		f(fmt.Sprintf(format, args...))
	}
}

// runGrid executes fn(0..n-1) on the bounded worker pool and returns
// the first error. After an error, cells not yet started are skipped;
// cells already in flight complete (engine runs inside them observe
// ctx themselves and abort mid-run). Cancelling ctx stops the pool at
// the next cell boundary and returns ctx.Err(). Cells must write only
// to their own result slots.
func runGrid(ctx context.Context, n int, fn func(i int) error) error {
	workers := Parallelism()
	// Intra-cell shards spend the same global budget: B workers ÷ K
	// shards per cell ≈ B goroutines doing real work either way. Cache
	// replay shards and emulator execution shards are phases of one
	// cell, never concurrent with each other, so the divisor is their
	// maximum, not their product.
	if k := max(Shards(), ExecShards()); k > 1 {
		workers /= k
		if workers < 1 {
			workers = 1
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		firstErr atomic.Pointer[error]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for firstErr.Load() == nil {
				if err := ctx.Err(); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
			}
		}()
	}
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// storeHealAttempts bounds how many times a grid path retries a
// store-backed cell that keeps failing (corrupt reads quarantine and
// regenerate; transient backend errors just retry) before degrading to
// a direct in-memory run.
const storeHealAttempts = 3

// storeHealable reports whether a store-path failure is worth
// retrying/degrading around: quarantined corruption (the retry
// regenerates the cell) or a backend-side storage failure (the
// degraded direct path bypasses it). Everything else — a failing
// benchmark, cancellation — propagates.
func storeHealable(err error) bool {
	return tracestore.IsCorrupt(err) || storage.AsBackendError(err)
}

// traceKey identifies one memoized engine run. direct marks buffers
// generated bypassing the store (the degraded path) — kept distinct so
// a recovered store never serves a slot filled during an outage and
// vice versa.
type traceKey struct {
	bench      string
	pes        int
	sequential bool
	direct     bool
}

// traceEntry is a once-filled memo slot.
type traceEntry struct {
	once sync.Once
	buf  *trace.Buffer
	err  error
}

// traces memoizes reference traces across drivers: `-exp all` shares
// e.g. the 8-PE paper-benchmark traces between Figure 4, MLIPS and the
// bus study. Traces are a few MB each; ResetTraceCache frees them.
var traces sync.Map // traceKey -> *traceEntry

// cachedTrace returns the memoized trace for (b, pes, sequential),
// running the engine on first use. Concurrent callers for the same key
// block until the single engine run completes (the generating caller's
// ctx governs that run). A cancelled generation is evicted from the
// memo rather than cached, so a later sweep with a live context
// regenerates the cell instead of replaying the stale context error.
// direct bypasses any attached store (bench.TraceDirect) — the
// degraded path when storage keeps failing.
func cachedTrace(ctx context.Context, b bench.Benchmark, pes int, sequential, direct bool) (*trace.Buffer, error) {
	key := traceKey{b.Name, pes, sequential, direct}
	v, _ := traces.LoadOrStore(key, &traceEntry{})
	e := v.(*traceEntry)
	e.once.Do(func() {
		if direct {
			e.buf, _, e.err = bench.TraceDirect(ctx, b, pes, sequential)
		} else {
			e.buf, _, e.err = bench.Trace(ctx, b, pes, sequential)
		}
		if e.err == nil {
			progress("traced %s @ %d PEs (%d refs)", b.Name, pes, e.buf.Len())
		}
	})
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		traces.CompareAndDelete(key, v)
	}
	return e.buf, e.err
}

// ResetTraceCache drops all memoized traces.
func ResetTraceCache() {
	traces.Range(func(k, _ any) bool {
		traces.Delete(k)
		return true
	})
}

// SetStore attaches (nil: detaches) the persistent trace store the
// grid consults before running the emulator; it forwards to
// bench.SetTraceStore so bench.Trace shares the same store.
func SetStore(s *tracestore.Store) { bench.SetTraceStore(s) }

// activeStore returns the attached persistent store (nil if none).
func activeStore() *tracestore.Store { return bench.TraceStore() }

// EngineRuns returns the number of emulator executions so far (see
// bench.EngineRuns) — with a warm store a full experiment sweep
// performs zero.
func EngineRuns() int64 { return bench.EngineRuns() }

// ResetEngineRuns zeroes the emulator-execution counter.
func ResetEngineRuns() { bench.ResetEngineRuns() }

// replayCell streams the cell's trace into the sinks in one pass.
// With a store attached the pass is a chunked streaming decode from
// disk (the trace is never materialized); otherwise it replays the
// RAM-memoized buffer. Either way every sink sees the exact emission
// order, so results are bit-identical across sources.
func replayCell(ctx context.Context, b bench.Benchmark, pes int, sequential bool, sinks ...trace.Sink) error {
	if s := activeStore(); s != nil {
		k, err := bench.EnsureStored(ctx, b, pes, sequential)
		if err != nil {
			return err
		}
		if len(sinks) == 1 {
			_, err := s.Replay(k, sinks[0])
			return err
		}
		f := trace.NewFanOut(trace.FanOutConfig{}, sinks...)
		_, err = s.Replay(k, f)
		f.Close()
		return err
	}
	buf, err := cachedTrace(ctx, b, pes, sequential, false)
	if err != nil {
		return err
	}
	buf.ReplayAll(sinks...)
	return nil
}

// runStats returns the engine statistics and Table 1 reference counter
// for one cell. With a store attached it is served from the cell's run
// sidecar (generating the cell on first need); otherwise it runs the
// emulator. Store failures heal: corrupt cells are quarantined by the
// read and regenerated on retry, transient backend errors retry, and a
// store that keeps failing is bypassed with a direct engine run
// (marking the context degraded) — the statistics are a pure function
// of the cell, so the answer is identical either way.
func runStats(ctx context.Context, b bench.Benchmark, pes int, sequential bool) (core.Stats, *trace.Counter, error) {
	if s := activeStore(); s != nil {
		var lastErr error
	heal:
		for attempt := 0; attempt < storeHealAttempts; attempt++ {
			if err := ctx.Err(); err != nil {
				return core.Stats{}, nil, err
			}
			k, err := bench.EnsureStored(ctx, b, pes, sequential)
			if err != nil {
				if storeHealable(err) {
					lastErr = err
					continue heal
				}
				return core.Stats{}, nil, err
			}
			var rec bench.RunRecord
			ok, err := s.LoadSidecar(k, &rec)
			if err != nil {
				if storeHealable(err) {
					lastErr = err
					continue heal
				}
				return core.Stats{}, nil, err
			}
			if ok {
				return rec.Stats, &rec.Refs, nil
			}
			// Trace present but sidecar absent (foreign store, or just
			// quarantined as corrupt): run directly and repair the
			// sidecar so the next query is served from the store again
			// (best effort: the stats themselves are good).
			res, err := bench.Run(ctx, b, bench.RunConfig{PEs: pes, Sequential: sequential})
			if err != nil {
				return core.Stats{}, nil, err
			}
			if err := s.PutSidecar(k, bench.RunRecord{Success: res.Success, Stats: res.Stats, Refs: *res.Refs}); err != nil {
				progress("sidecar repair for %v failed: %v", k, err)
			}
			return res.Stats, res.Refs, nil
		}
		if err := ctx.Err(); err != nil {
			return core.Stats{}, nil, err
		}
		storage.MarkDegraded(ctx, "trace-store")
		progress("stats for %s @ %d PEs degrading to direct run: %v", b.Name, pes, lastErr)
	}
	res, err := bench.Run(ctx, b, bench.RunConfig{PEs: pes, Sequential: sequential})
	if err != nil {
		return core.Stats{}, nil, err
	}
	return res.Stats, res.Refs, nil
}

// TraceTarget names one trace-generation cell for GenerateTraces.
type TraceTarget struct {
	// Benchmark is the workload to trace.
	Benchmark bench.Benchmark
	// PEs is the processing-element count.
	PEs int
	// Sequential selects the CGE-free WAM baseline compilation.
	Sequential bool
}

// GenerateTraces makes sure the attached store holds every target
// cell, generating missing ones concurrently on the grid's bounded
// worker pool (SetParallelism) — each generation streaming straight
// into the store's compact codec. Duplicate targets and targets
// already present cost nothing. Cancelling ctx aborts in-flight engine
// runs (partial writes are cleaned up; completed cells stay). It
// requires an attached store.
func GenerateTraces(ctx context.Context, targets []TraceTarget) error {
	if activeStore() == nil {
		return fmt.Errorf("experiments: GenerateTraces needs an attached trace store (SetStore)")
	}
	return runGrid(ctx, len(targets), func(i int) error {
		t := targets[i]
		k, err := bench.EnsureStored(ctx, t.Benchmark, t.PEs, t.Sequential)
		if err != nil {
			return fmt.Errorf("generating %v: %w", k, err)
		}
		progress("stored %v", k)
		return nil
	})
}

// simulateAll replays one memoized trace through all configurations in
// a single fan-out pass and returns per-configuration statistics. With
// a store attached the pass streams from disk. Each configuration is
// additionally set-sharded across Shards() workers when its geometry
// allows (bit-identical either way).
//
// Store failures heal here, not inside replayCell, because a mid-stream
// failure leaves the simulators partially fed: each retry calls
// SimulateAllStreamShards again so every attempt gets fresh simulator
// state. A corrupt stored trace quarantines on the failing read and the
// retry regenerates it; if the store keeps failing, the cell degrades
// to a direct in-memory run (marking the context degraded) — identical
// results, just without persistence.
func simulateAll(ctx context.Context, b bench.Benchmark, pes int, sequential bool, cfgs []cache.Config) ([]cache.Stats, error) {
	if activeStore() == nil {
		buf, err := cachedTrace(ctx, b, pes, sequential, false)
		if err != nil {
			return nil, err
		}
		return cache.SimulateAllShards(buf, cfgs, Shards())
	}
	var lastErr error
	for attempt := 0; attempt < storeHealAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st, err := cache.SimulateAllStreamShards(cfgs, Shards(), func(sinks []trace.Sink) error {
			return replayCell(ctx, b, pes, sequential, sinks...)
		})
		if err == nil {
			return st, nil
		}
		if !storeHealable(err) {
			return nil, err
		}
		lastErr = err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	storage.MarkDegraded(ctx, "trace-store")
	progress("simulating %s @ %d PEs degrading to direct run: %v", b.Name, pes, lastErr)
	buf, err := cachedTrace(ctx, b, pes, sequential, true)
	if err != nil {
		return nil, err
	}
	return cache.SimulateAllShards(buf, cfgs, Shards())
}

// protocolRatios computes each benchmark's write-in broadcast traffic
// ratio at the given PE count and cache size — the quantity both the
// MLIPS calculation and the bus study average — as one grid cell per
// benchmark over memoized traces.
func protocolRatios(ctx context.Context, benches []bench.Benchmark, pes, cacheWords int, tag string) ([]float64, error) {
	cfg := cache.Config{
		PEs: pes, SizeWords: cacheWords, LineWords: 4,
		Protocol:      cache.WriteInBroadcast,
		WriteAllocate: cache.PaperWriteAllocate(cache.WriteInBroadcast, cacheWords),
	}
	ratios := make([]float64, len(benches))
	err := runGrid(ctx, len(benches), func(i int) error {
		st, err := simulateAll(ctx, benches[i], pes, pes == 1, []cache.Config{cfg})
		if err != nil {
			return err
		}
		ratios[i] = st[0].TrafficRatio()
		progress("%s: %s @ %d PEs: traffic %.3f", tag, benches[i].Name, pes, ratios[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ratios, nil
}

package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// Property tests: the engine checked against Go-computed ground truth
// on randomized inputs.

func intsToList(xs []int) string {
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func TestAppendMatchesGoProperty(t *testing.T) {
	prog := `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
	`
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]int, rng.Intn(20))
		b := make([]int, rng.Intn(20))
		for i := range a {
			a[i] = rng.Intn(100) - 50
		}
		for i := range b {
			b[i] = rng.Intn(100) - 50
		}
		res := runQuery(t, prog, fmt.Sprintf("app(%s, %s, X)", intsToList(a), intsToList(b)), 1, true)
		want := intsToList(append(append([]int{}, a...), b...))
		return res.Success && res.Bindings["X"] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQsortMatchesGoProperty(t *testing.T) {
	prog := `
		qsort([], R, R).
		qsort([X|L], R, R0) :-
			part(L, X, L1, L2),
			(qsort(L1, R, [X|R1]) & qsort(L2, R1, R0)).
		part([], _, [], []).
		part([E|R], C, [E|L1], L2) :- E < C, !, part(R, C, L1, L2).
		part([E|R], C, L1, [E|L2]) :- part(R, C, L1, L2).
	`
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]int, 1+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		pes := 1 + rng.Intn(6)
		res := runQuery(t, prog, fmt.Sprintf("qsort(%s, S, [])", intsToList(xs)), pes, false)
		sorted := append([]int{}, xs...)
		sort.Ints(sorted)
		return res.Success && res.Bindings["S"] == intsToList(sorted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestArithmeticMatchesGoProperty(t *testing.T) {
	// Random expression trees over +,-,* evaluated by the engine and Go.
	type node struct {
		text string
		val  int64
	}
	var gen func(rng *rand.Rand, depth int) node
	gen = func(rng *rand.Rand, depth int) node {
		if depth <= 0 || rng.Intn(3) == 0 {
			v := int64(rng.Intn(20) - 10)
			if v < 0 {
				return node{fmt.Sprintf("(0 - %d)", -v), v}
			}
			return node{fmt.Sprintf("%d", v), v}
		}
		l := gen(rng, depth-1)
		r := gen(rng, depth-1)
		switch rng.Intn(3) {
		case 0:
			return node{fmt.Sprintf("(%s + %s)", l.text, r.text), l.val + r.val}
		case 1:
			return node{fmt.Sprintf("(%s - %s)", l.text, r.text), l.val - r.val}
		default:
			return node{fmt.Sprintf("(%s * %s)", l.text, r.text), l.val * r.val}
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := gen(rng, 4)
		res := runQuery(t, "calc(R, R).", fmt.Sprintf("X is %s, calc(X, R)", n.text), 1, true)
		return res.Success && res.Bindings["R"] == fmt.Sprintf("%d", n.val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParallelDeterminismProperty(t *testing.T) {
	// Any PE count: two runs of the same program produce identical
	// cycles and references (the engine is a deterministic simulation).
	f := func(seed int64) bool {
		pes := 1 + int(uint64(seed)%7)
		a := runQuery(t, fibProg, "fib(11, F)", pes, false)
		b := runQuery(t, fibProg, "fib(11, F)", pes, false)
		return a.Stats.Cycles == b.Stats.Cycles &&
			a.Refs.Total() == b.Refs.Total() &&
			a.Bindings["F"] == b.Bindings["F"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBacktrackingRestoresBindingsProperty(t *testing.T) {
	// A clause that binds deeply then fails must leave no residue: the
	// second clause sees the variable unbound.
	prog := `
		build(0, leaf).
		build(N, t(S, S)) :- N > 0, M is N - 1, build(M, S).
		try(X, N) :- build(N, X), fail.
		try(unbound_after, _).
	`
	f := func(n uint8) bool {
		depth := int(n % 12)
		res := runQuery(t, prog, fmt.Sprintf("try(X, %d)", depth), 1, true)
		return res.Success && res.Bindings["X"] == "unbound_after"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// --- failure injection across PEs ---

func TestKillPathsWithSlowSiblings(t *testing.T) {
	// One arm fails quickly while siblings grind: the parcall must fail
	// promptly, surviving workers unwind, and the fallback clause runs.
	prog := `
		slow(0).
		slow(N) :- N > 0, M is N - 1, slow(M).
		bad(_) :- fail.
		race(X) :- slow(X) & bad(X) & slow(X).
		race(-1).
	`
	for _, pes := range []int{1, 2, 3, 4, 8} {
		res := runQuery(t, prog, "race(R)", pes, false)
		wantBinding(t, res, "R", "-1")
	}
}

func TestKillPathsWithNestedParallelism(t *testing.T) {
	// The failing arm sits under two levels of parcalls; kills must
	// propagate through the nested frames.
	prog := `
		ok(1).
		bad :- fail.
		inner(X) :- ok(X) & failing.
		failing :- ok(_) & bad.
		outer(X) :- inner(X) & ok(_).
		outer(99).
	`
	for _, pes := range []int{1, 2, 4, 8} {
		res := runQuery(t, prog, "outer(R)", pes, false)
		wantBinding(t, res, "R", "99")
	}
}

func TestFailureAfterParcallBacktracksIntoIt(t *testing.T) {
	// A goal after the CGE fails; backtracking re-enters the clause's
	// earlier alternatives (outside the parcall).
	prog := `
		p(1). p(2).
		q(_).
		pick(X) :- p(X), (q(X) & q(X)), X > 1.
	`
	for _, pes := range []int{1, 2, 4} {
		res := runQuery(t, prog, "pick(X)", pes, false)
		wantBinding(t, res, "X", "2")
	}
}

func TestSequentialFallbackInsideParallelGoal(t *testing.T) {
	// A stolen goal whose body contains a conditional CGE that falls
	// back to sequential execution (condition fails at run time).
	prog := `
		p(1). q(2).
		sub(A, B, V) :- (ground(V) | p(A) & q(B)).
		top(A, B, C, D, V) :- sub(A, B, V) & sub(C, D, V).
	`
	res := runQuery(t, prog, "top(A, B, C, D, _)", 4, false)
	wantBinding(t, res, "A", "1")
	wantBinding(t, res, "D", "2")
}

func TestStorageRecoveredAcrossManyParcalls(t *testing.T) {
	// Thousands of sequential parcalls must run in bounded local and
	// control stack space (sections recovered at completion).
	prog := `
		p(1). q(2).
		loop(0).
		loop(N) :- N > 0, (p(_) & q(_)), M is N - 1, loop(M).
	`
	res := runQuery(t, prog, "loop(3000)", 2, false)
	if !res.Success {
		t.Fatal("loop failed")
	}
	if res.Stats.MaxLocal > 4000 {
		t.Errorf("local high water %d words for 3000 parcalls; sections leak", res.Stats.MaxLocal)
	}
	if res.Stats.MaxControl > 4000 {
		t.Errorf("control high water %d words; markers leak", res.Stats.MaxControl)
	}
}

func TestManyWorkersManyGoals(t *testing.T) {
	// Stress: wide fan-out across the maximum tested worker count.
	prog := `
		w(0).
		w(N) :- N > 0, M is N - 1, w(M).
		fan(0).
		fan(N) :- N > 0, M is N - 1, (w(50) & fan(M)).
	`
	res := runQuery(t, prog, "fan(200)", 16, false)
	if !res.Success {
		t.Fatal("fan failed")
	}
	busy := 0
	for _, r := range res.Stats.WorkRefs {
		if r > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Errorf("only %d of 16 workers participated", busy)
	}
}

package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// step fetches and executes one instruction — one function, one call
// per instruction: fetch, count and dispatch share a frame with the
// opcode switch, and the instruction is read through a pointer so the
// dispatcher moves one word, not the whole 24-byte Instr (cases load
// only the fields they use). Instructions advance pc themselves (most
// by one). Machine errors panic as machineError and are annotated
// with cycle/pc context by Engine.Run's single recover — not by a
// per-instruction defer, which would tax every instruction.
func (w *worker) step() {
	if w.pc < 0 {
		if w.eng.debug {
			fmt.Printf("c%d pe%d sentinel %d state=%v pf=%d gm=%d b=%d\n", w.eng.cycle, w.pe, w.pc, w.state, w.pf, w.gm, w.b)
		}
		w.controlSentinel(w.pc)
		return
	}
	ins := &w.code[w.pc]
	if w.eng.debug {
		fmt.Printf("c%d pe%d pc%d %v | e=%d b=%d pf=%d gm=%d lt=%d ct=%d\n", w.eng.cycle, w.pe, w.pc, *ins, w.e, w.b, w.pf, w.gm, w.localTop, w.ctlTop)
	}
	w.instrs++
	switch ins.Op {

	// --- control ---

	case isa.OpAllocate:
		n := int(ins.N)
		w.checkLocal(envHdr + n)
		at := w.localTop
		w.write(at+envCE, mem.MakeRef(encAddr(w.e)), trace.ObjEnvControl)
		w.write(at+envCP, mem.MakeInt(int64(w.cp)), trace.ObjEnvControl)
		w.write(at+envSize, mem.MakeInt(int64(n)), trace.ObjEnvControl)
		w.e = at
		w.localTop = at + envHdr + n
		if w.localTop > w.localHigh {
			w.localHigh = w.localTop
		}
		w.pc++

	case isa.OpDeallocate:
		size := int(w.read(w.e+envSize, trace.ObjEnvControl).Int())
		w.cp = int32(w.read(w.e+envCP, trace.ObjEnvControl).Int())
		prev := decAddr(w.read(w.e+envCE, trace.ObjEnvControl))
		// Storage recovery: pop the environment when it is topmost and
		// unprotected (no younger choice point, no parcall frame above).
		if w.e+envHdr+size == w.localTop &&
			(w.b == none || w.cpSavedLocal(w.b) <= w.e) &&
			(w.pf == none || w.pf < w.e) {
			w.localTop = w.e
		}
		w.e = prev
		w.pc++

	case isa.OpCall:
		w.inferences++
		w.cp = w.pc + 1
		w.b0 = w.b
		w.pc = ins.N

	case isa.OpExecute:
		w.inferences++
		w.b0 = w.b
		w.pc = ins.N

	case isa.OpProceed:
		w.pc = w.cp

	case isa.OpJump:
		w.pc = ins.N

	case isa.OpStop:
		w.eng.halt(true, w.e)

	case isa.OpFail:
		w.fail()

	// --- choice points ---

	case isa.OpTry:
		arity := int(ins.R1)
		w.checkCtl(cpHdr + arity)
		at := w.ctlTop
		w.write(at+cpPrevB, mem.MakeRef(encAddr(w.b)), trace.ObjChoicePoint)
		w.write(at+cpAltP, mem.MakeInt(int64(w.pc+1)), trace.ObjChoicePoint)
		w.write(at+cpSavedE, mem.MakeRef(encAddr(w.e)), trace.ObjChoicePoint)
		w.write(at+cpSavedCP, mem.MakeInt(int64(w.cp)), trace.ObjChoicePoint)
		w.write(at+cpSavedH, mem.MakeRef(encAddr(w.h)), trace.ObjChoicePoint)
		w.write(at+cpSavedTR, mem.MakeInt(int64(w.tr)), trace.ObjChoicePoint)
		w.write(at+cpSavedPF, mem.MakeRef(encAddr(w.pf)), trace.ObjChoicePoint)
		w.write(at+cpSavedB0, mem.MakeRef(encAddr(w.b0)), trace.ObjChoicePoint)
		w.write(at+cpSavedLo, mem.MakeRef(encAddr(w.localTop)), trace.ObjChoicePoint)
		w.write(at+cpArity, mem.MakeInt(int64(arity)), trace.ObjChoicePoint)
		for i := 0; i < arity; i++ {
			w.write(at+cpHdr+i, w.regs[i], trace.ObjChoicePoint)
		}
		w.ctlTop = at + cpHdr + arity
		if w.ctlTop > w.ctlHigh {
			w.ctlHigh = w.ctlTop
		}
		w.b = at
		w.hb = w.h
		w.pc = ins.N

	case isa.OpRetry:
		w.write(w.b+cpAltP, mem.MakeInt(int64(w.pc+1)), trace.ObjChoicePoint)
		w.pc = ins.N

	case isa.OpTrust:
		prev := decAddr(w.read(w.b+cpPrevB, trace.ObjChoicePoint))
		w.ctlTop = w.b
		w.b = prev
		if w.b != none {
			w.hb = decAddr(w.read(w.b+cpSavedH, trace.ObjChoicePoint))
		} else {
			w.hb = w.hbFloor
		}
		w.pc = ins.N

	case isa.OpSwitchOnTerm:
		tbl := w.eng.code.Switches[ins.N]
		d := w.deref(w.regs[0])
		var target int32
		switch d.Tag() {
		case mem.TagRef:
			target = tbl.Var
		case mem.TagCon, mem.TagInt:
			target = tbl.Con
		case mem.TagLis:
			target = tbl.Lis
		case mem.TagStr:
			target = tbl.Str
		default:
			target = -1
		}
		if target < 0 {
			w.fail()
			return
		}
		w.pc = target

	case isa.OpSwitchOnConstant:
		tbl := w.eng.code.Switches[ins.N]
		d := w.deref(w.regs[0])
		if target, ok := tbl.Cases[d]; ok {
			w.pc = target
			return
		}
		if tbl.Default >= 0 {
			w.pc = tbl.Default
			return
		}
		w.fail()

	case isa.OpSwitchOnStructure:
		tbl := w.eng.code.Switches[ins.N]
		d := w.deref(w.regs[0])
		f := w.read(d.Addr(), trace.ObjHeap)
		if target, ok := tbl.Cases[mem.Word(f.Index())]; ok {
			w.pc = target
			return
		}
		if tbl.Default >= 0 {
			w.pc = tbl.Default
			return
		}
		w.fail()

	// --- cut ---

	case isa.OpNeckCut:
		if w.b != w.b0 {
			w.b = w.b0
			w.resetHBAfterCut()
			w.recoverCtlAfterCut()
		}
		w.pc++

	case isa.OpGetLevel:
		w.write(w.yaddr(int(ins.R1)), mem.MakeRef(encAddr(w.b0)), trace.ObjEnvPVar)
		w.pc++

	case isa.OpCutY:
		level := decAddr(w.read(w.yaddr(int(ins.R1)), trace.ObjEnvPVar))
		if w.b != level {
			w.b = level
			w.resetHBAfterCut()
			w.recoverCtlAfterCut()
		}
		w.pc++

	// --- get ---

	case isa.OpGetVariableX:
		w.regs[ins.R1] = w.regs[ins.R2]
		w.pc++

	case isa.OpGetVariableY:
		w.write(w.yaddr(int(ins.R1)), w.regs[ins.R2], trace.ObjEnvPVar)
		w.pc++

	case isa.OpGetValueX:
		if !w.unify(w.regs[ins.R1], w.regs[ins.R2]) {
			w.fail()
			return
		}
		w.pc++

	case isa.OpGetValueY:
		if !w.unify(mem.MakeRef(w.yaddr(int(ins.R1))), w.regs[ins.R2]) {
			w.fail()
			return
		}
		w.pc++

	case isa.OpGetConstant:
		if !w.unifyConstant(w.regs[ins.R2], ins.W) {
			w.fail()
			return
		}
		w.pc++

	case isa.OpGetNil:
		if !w.unifyConstant(w.regs[ins.R2], mem.MakeCon(isa.NilAtom)) {
			w.fail()
			return
		}
		w.pc++

	case isa.OpGetStructure:
		d := w.deref(w.regs[ins.R2])
		switch d.Tag() {
		case mem.TagRef:
			w.checkHeap()
			w.write(w.h, mem.MakeFun(int(ins.N)), trace.ObjHeap)
			w.bind(d.Addr(), mem.MakeStr(w.h))
			w.h++
			w.mode = modeWrite
		case mem.TagStr:
			f := w.read(d.Addr(), trace.ObjHeap)
			if f.Index() != int(ins.N) {
				w.fail()
				return
			}
			w.s = d.Addr() + 1
			w.mode = modeRead
		default:
			w.fail()
			return
		}
		w.pc++

	case isa.OpGetList:
		d := w.deref(w.regs[ins.R2])
		switch d.Tag() {
		case mem.TagRef:
			w.bind(d.Addr(), mem.MakeLis(w.h))
			w.mode = modeWrite
		case mem.TagLis:
			w.s = d.Addr()
			w.mode = modeRead
		default:
			w.fail()
			return
		}
		w.pc++

	// --- put ---

	case isa.OpPutVariableX:
		w.checkHeap()
		w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
		w.regs[ins.R1] = mem.MakeRef(w.h)
		w.regs[ins.R2] = mem.MakeRef(w.h)
		w.h++
		w.pc++

	case isa.OpPutVariableY:
		addr := w.yaddr(int(ins.R1))
		w.write(addr, mem.MakeRef(addr), trace.ObjEnvPVar)
		w.regs[ins.R2] = mem.MakeRef(addr)
		w.pc++

	case isa.OpPutValueX:
		w.regs[ins.R2] = w.regs[ins.R1]
		w.pc++

	case isa.OpPutValueY:
		w.regs[ins.R2] = w.read(w.yaddr(int(ins.R1)), trace.ObjEnvPVar)
		w.pc++

	case isa.OpPutUnsafeValue:
		d := w.deref(mem.MakeRef(w.yaddr(int(ins.R1))))
		if d.Tag() == mem.TagRef && w.local.Contains(d.Addr()) {
			// Globalize: the environment is about to be discarded.
			w.checkHeap()
			w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
			w.bind(d.Addr(), mem.MakeRef(w.h))
			w.regs[ins.R2] = mem.MakeRef(w.h)
			w.h++
		} else {
			w.regs[ins.R2] = d
		}
		w.pc++

	case isa.OpPutConstant:
		w.regs[ins.R2] = ins.W
		w.pc++

	case isa.OpPutNil:
		w.regs[ins.R2] = mem.MakeCon(isa.NilAtom)
		w.pc++

	case isa.OpPutStructure:
		w.checkHeap()
		w.write(w.h, mem.MakeFun(int(ins.N)), trace.ObjHeap)
		w.regs[ins.R2] = mem.MakeStr(w.h)
		w.h++
		w.mode = modeWrite
		w.pc++

	case isa.OpPutList:
		w.regs[ins.R2] = mem.MakeLis(w.h)
		w.mode = modeWrite
		w.pc++

	// --- unify ---

	case isa.OpUnifyVariableX:
		if w.mode == modeRead {
			w.regs[ins.R1] = w.read(w.s, trace.ObjHeap)
			w.s++
		} else {
			w.checkHeap()
			w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
			w.regs[ins.R1] = mem.MakeRef(w.h)
			w.h++
		}
		w.pc++

	case isa.OpUnifyVariableY:
		if w.mode == modeRead {
			v := w.read(w.s, trace.ObjHeap)
			w.write(w.yaddr(int(ins.R1)), v, trace.ObjEnvPVar)
			w.s++
		} else {
			w.checkHeap()
			w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
			w.write(w.yaddr(int(ins.R1)), mem.MakeRef(w.h), trace.ObjEnvPVar)
			w.h++
		}
		w.pc++

	case isa.OpUnifyValueX:
		if w.mode == modeRead {
			if !w.unify(w.regs[ins.R1], mem.MakeRef(w.s)) {
				w.fail()
				return
			}
			w.s++
		} else {
			w.checkHeap()
			w.write(w.h, w.regs[ins.R1], trace.ObjHeap)
			w.h++
		}
		w.pc++

	case isa.OpUnifyValueY:
		if w.mode == modeRead {
			if !w.unify(mem.MakeRef(w.yaddr(int(ins.R1))), mem.MakeRef(w.s)) {
				w.fail()
				return
			}
			w.s++
		} else {
			w.checkHeap()
			v := w.read(w.yaddr(int(ins.R1)), trace.ObjEnvPVar)
			w.write(w.h, v, trace.ObjHeap)
			w.h++
		}
		w.pc++

	case isa.OpUnifyLocalValueX:
		if w.mode == modeRead {
			if !w.unify(w.regs[ins.R1], mem.MakeRef(w.s)) {
				w.fail()
				return
			}
			w.s++
		} else {
			w.regs[ins.R1] = w.pushLocalValue(w.deref(w.regs[ins.R1]))
		}
		w.pc++

	case isa.OpUnifyLocalValueY:
		if w.mode == modeRead {
			if !w.unify(mem.MakeRef(w.yaddr(int(ins.R1))), mem.MakeRef(w.s)) {
				w.fail()
				return
			}
			w.s++
		} else {
			w.pushLocalValue(w.deref(mem.MakeRef(w.yaddr(int(ins.R1)))))
		}
		w.pc++

	case isa.OpUnifyConstant:
		if w.mode == modeRead {
			if !w.unifyConstant(mem.MakeRef(w.s), ins.W) {
				w.fail()
				return
			}
			w.s++
		} else {
			w.checkHeap()
			w.write(w.h, ins.W, trace.ObjHeap)
			w.h++
		}
		w.pc++

	case isa.OpUnifyNil:
		nilW := mem.MakeCon(isa.NilAtom)
		if w.mode == modeRead {
			if !w.unifyConstant(mem.MakeRef(w.s), nilW) {
				w.fail()
				return
			}
			w.s++
		} else {
			w.checkHeap()
			w.write(w.h, nilW, trace.ObjHeap)
			w.h++
		}
		w.pc++

	case isa.OpUnifyVoid:
		n := int(ins.N)
		if w.mode == modeRead {
			w.s += n
		} else {
			for i := 0; i < n; i++ {
				w.checkHeap()
				w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
				w.h++
			}
		}
		w.pc++

	// --- arithmetic ---

	case isa.OpArith:
		if !w.arith(ins) {
			w.fail()
			return
		}
		w.pc++

	case isa.OpCompare:
		a := w.regs[ins.R1].Int()
		b := w.regs[ins.R2].Int()
		var ok bool
		switch isa.CompareOp(ins.N) {
		case isa.CmpLT:
			ok = a < b
		case isa.CmpGT:
			ok = a > b
		case isa.CmpLE:
			ok = a <= b
		case isa.CmpGE:
			ok = a >= b
		case isa.CmpEQ:
			ok = a == b
		case isa.CmpNE:
			ok = a != b
		}
		if !ok {
			w.fail()
			return
		}
		w.pc++

	// --- builtins ---

	case isa.OpBuiltin:
		ok, jumped := w.builtin(isa.Builtin(ins.N), int(ins.R1))
		if !ok {
			w.fail()
			return
		}
		if !jumped {
			w.pc++
		}

	// --- AND-parallel ---

	case isa.OpCheckGround:
		if !w.groundCheck(w.regs[ins.R1]) {
			w.checkFails++
			w.pc = ins.N
			return
		}
		w.pc++

	case isa.OpCheckIndep:
		if !w.indepCheck(w.regs[ins.R1], w.regs[ins.R2]) {
			w.checkFails++
			w.pc = ins.N
			return
		}
		w.pc++

	case isa.OpPFrame:
		w.allocPFrame(int(ins.R1), ins.N)
		w.pc++

	case isa.OpPushGoal:
		w.pushGoal(w.pf, int(ins.R2), ins.N, int(ins.R1))
		w.pc++

	case isa.OpPCallLocal:
		w.pcallLocal(ins.N, int(ins.R2))

	default:
		w.machinePanic(fmt.Sprintf("pe%d: unimplemented opcode %v", w.pe, ins.Op))
	}
}

// yaddr returns the address of permanent variable n in the current
// environment.
func (w *worker) yaddr(n int) int {
	if w.e == none {
		w.machinePanic(fmt.Sprintf("pe%d: Y%d access with no environment", w.pe, n))
	}
	return w.e + envHdr + n
}

// resetHBAfterCut refreshes HB after B moved backwards.
func (w *worker) resetHBAfterCut() {
	if w.b != none {
		w.hb = decAddr(w.read(w.b+cpSavedH, trace.ObjChoicePoint))
	} else {
		w.hb = w.hbFloor
	}
}

// recoverCtlAfterCut reclaims the control stack above the new B: the
// choice points a cut discards are dead (the WAM's tight control-stack
// recovery, which the paper's storage-efficiency claims rely on).
func (w *worker) recoverCtlAfterCut() {
	top := w.ctl.Base
	if w.gm != none && w.gm+mkSize > top {
		top = w.gm + mkSize
	}
	if w.b != none {
		arity := int(w.read(w.b+cpArity, trace.ObjChoicePoint).Int())
		if end := w.b + cpHdr + arity; end > top {
			top = end
		}
	}
	if top < w.ctlTop {
		w.ctlTop = top
	}
}

// pushLocalValue implements unify_local_value's write mode: push the
// dereferenced value, globalizing a stack-resident unbound variable.
func (w *worker) pushLocalValue(d mem.Word) mem.Word {
	w.checkHeap()
	if d.Tag() == mem.TagRef {
		addr := d.Addr()
		if _, area := w.mem.Classify(addr); area == trace.AreaLocal || area == trace.AreaGoal {
			// Globalize onto this worker's heap.
			w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
			w.bind(addr, mem.MakeRef(w.h))
			nw := mem.MakeRef(w.h)
			w.h++
			return nw
		}
	}
	w.write(w.h, d, trace.ObjHeap)
	w.h++
	return d
}

// fail performs backtracking: restore from the youngest choice point, or
// report goal/query failure when none exists.
func (w *worker) fail() {
	if w.b == none {
		// Failing out of the whole goal (or query) is an observable
		// scheduler action; speculation must stop one step short and
		// let the serial dispatcher take it. Backtracking to a choice
		// point below stays pure and speculates fine.
		if w.spec {
			panic(errSpecUnsafe)
		}
		if w.gm != none {
			w.parGoalFail()
			return
		}
		// Query failure.
		w.eng.halt(false, none)
		return
	}
	b := w.b
	arity := int(w.read(b+cpArity, trace.ObjChoicePoint).Int())
	for i := 0; i < arity; i++ {
		w.regs[i] = w.read(b+cpHdr+i, trace.ObjChoicePoint)
	}
	w.unwindTrail(int(w.read(b+cpSavedTR, trace.ObjChoicePoint).Int()))
	w.h = decAddr(w.read(b+cpSavedH, trace.ObjChoicePoint))
	w.hb = w.h
	w.e = decAddr(w.read(b+cpSavedE, trace.ObjChoicePoint))
	w.cp = int32(w.read(b+cpSavedCP, trace.ObjChoicePoint).Int())
	w.pf = decAddr(w.read(b+cpSavedPF, trace.ObjChoicePoint))
	w.b0 = decAddr(w.read(b+cpSavedB0, trace.ObjChoicePoint))
	w.localTop = decAddr(w.read(b+cpSavedLo, trace.ObjChoicePoint))
	w.ctlTop = b + cpHdr + arity
	w.pc = int32(w.read(b+cpAltP, trace.ObjChoicePoint).Int())
}

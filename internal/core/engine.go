// Package core implements the RAP-WAM parallel abstract machine — the
// paper's primary contribution. A machine is a collection of workers
// (each a full WAM with its own Stack Set: heap, local and control
// stacks, trail, PDL, goal stack and message buffer) cooperating on one
// program through a single flat shared memory.
//
// Execution is a deterministic instruction-interleaved simulation: on
// every cycle each worker executes one instruction (or one scheduler
// action) in PE order. This reproduces the paper's software-emulation
// methodology (its measurements also came from an instrumented emulator,
// not hardware) while making every run bit-reproducible. The default
// dispatcher elides provably inert steps of that schedule — sole-runner
// quanta, skipped no-op polls — and is observationally identical to the
// reference round-robin (Config.ReferenceDispatch, TestDispatcherParity,
// and the golden trace digests in internal/bench all pin this).
//
// Instrumentation notes:
//   - Every data reference goes through mem.Memory and is classified
//     with the paper's Table 1 object types.
//   - Lock acquisition/release around goal-stack, parcall-counter and
//     message operations are modelled as explicit reads/writes of the
//     lock word, so locked objects cost what they cost in the paper.
//   - Busy-waiting (a parent polling its parcall frame's completion
//     counter, an idle worker between steal attempts) generates no
//     memory references: a spinning PE hits its own cache and adds no
//     bus traffic. Steal probes, however, read the victim's goal-stack
//     top word and are traced.
package core

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// PEs is the number of workers (processing elements), at most
	// trace.MaxPEs.
	PEs int
	// Layout overrides the per-worker memory layout; zero value uses
	// mem.DefaultLayout sized to PEs.
	Layout mem.Layout
	// Sink receives the memory-reference trace (nil = discard).
	Sink trace.Sink
	// MaxCycles aborts runaway executions (0 = default 2e9).
	MaxCycles int64
	// Cancel, when non-nil, aborts the run once the channel is closed
	// (pass ctx.Done()): Run returns context.Canceled within
	// cancelMask+1 cycles. A nil channel costs one predictable branch
	// per cycle; the trace emitted before the abort is a prefix of the
	// uncancelled trace.
	Cancel <-chan struct{}
	// StealInterval is the number of idle cycles between steal probes
	// (default 4).
	StealInterval int
	// ExecShards sets the host-goroutine budget for the sharded
	// execution mode: when > 1 (and PEs > 1, and ReferenceDispatch is
	// off), stretches where several simulated PEs run straight-line
	// code are executed speculatively in parallel — one goroutine per
	// host shard, each driving a subset of the runnable PEs — and the
	// per-PE reference batches are merged back in the reference
	// round-robin's canonical (cycle, PE) order, so the emitted trace
	// and statistics are byte- and value-identical to runMulti's (the
	// golden digests pin this at several shard counts with no
	// EmulatorVersion bump). Soundness rests on the machine's own
	// independence model: goals of a parallel conjunction never share
	// unbound variables (what CGE conditions guarantee), hence
	// concurrently speculating PEs touch disjoint words. Programs
	// violating that model must use ExecShards <= 1 (the default) or
	// ReferenceDispatch. 0 or 1 disables sharded execution.
	ExecShards int
	// ReferenceDispatch forces the plain one-instruction-per-tick
	// round-robin scheduler with every poll and steal sweep executed
	// for real (no quantum dispatch, no inert-poll elision). The
	// optimized dispatcher is trace- and stats-identical to it by
	// construction; this knob exists so parity tests can prove that
	// against the genuinely unoptimized baseline (and as a debugging
	// fallback).
	ReferenceDispatch bool
}

// WorkerState describes what a worker is doing on a given cycle.
type WorkerState uint8

const (
	// StateRun is productive execution ("work" in the paper's Figure 2).
	StateRun WorkerState = iota
	// StateWait is a parent spinning on a parcall completion counter.
	StateWait
	// StateIdle is a worker with no goal to execute.
	StateIdle
	// StateHalt means the engine stopped this worker.
	StateHalt
)

var stateNames = [...]string{"run", "wait", "idle", "halt"}

// String returns the state name.
func (s WorkerState) String() string { return stateNames[s] }

// Stats aggregates the run's instrumentation, the data behind the
// paper's Table 2 and Figure 2.
type Stats struct {
	// Cycles is the total simulation length.
	Cycles int64
	// Instructions executed per worker (scheduler actions excluded).
	Instructions []int64
	// WorkRefs / WaitCycles / IdleCycles per worker.
	WorkRefs   []int64
	RunCycles  []int64
	WaitCycles []int64
	IdleCycles []int64
	// Inferences counts procedure invocations (call/execute and
	// parallel goal starts) — the "logical inference" unit of the
	// paper's MLIPS arithmetic.
	Inferences int64
	// Parcalls is the number of parcall frames allocated.
	Parcalls int64
	// GoalsParallel is the number of goals scheduled through the
	// parallel mechanism (all slots of all parcall frames) — the
	// paper's Table 2 "Goals actually in //".
	GoalsParallel int64
	// GoalsStolen is the subset executed by a worker other than the
	// frame owner.
	GoalsStolen int64
	// StealProbes counts steal attempts (hits + misses).
	StealProbes int64
	// Kills counts kill messages delivered.
	Kills int64
	// CheckGroundFail / CheckIndepFail count CGE condition failures
	// (goals that fell back to sequential execution).
	CheckFails int64
	// MaxHeap / MaxLocal / MaxControl / MaxTrail are high-water marks
	// (words) across workers, for storage-efficiency reporting.
	MaxHeap, MaxLocal, MaxControl, MaxTrail int
}

// TotalInstructions sums instruction counts over workers.
func (s Stats) TotalInstructions() int64 {
	var n int64
	for _, v := range s.Instructions {
		n += v
	}
	return n
}

// TotalWorkRefs sums work references over workers.
func (s Stats) TotalWorkRefs() int64 {
	var n int64
	for _, v := range s.WorkRefs {
		n += v
	}
	return n
}

// Result is the outcome of a run.
type Result struct {
	// Success reports whether the query succeeded.
	Success bool
	// Bindings maps query variable names to rendered terms.
	Bindings map[string]string
	// Output is everything written by write/1 and nl/0.
	Output string
	// Stats is the instrumentation summary.
	Stats Stats
	// Refs is the memory reference counter (by object type).
	Refs *trace.Counter
}

// Engine executes a compiled program on P workers.
type Engine struct {
	cfg     Config
	code    *isa.Code
	mem     *mem.Memory
	workers []*worker
	cycle   int64
	halted  bool
	success bool
	answerE int // query environment address at OpStop
	out     bytes.Buffer

	// nRun counts workers in StateRun, maintained by worker.setState;
	// the quantum dispatcher's eligibility check starts with it.
	nRun int
	// schedSeq increments on every action another worker could observe
	// at its next scheduler step: a goal pushed to or popped from a
	// goal stack, a parcall frame's pending/status words written, a
	// message (kill flag) sent. Two uses, both exactness-preserving:
	// the quantum dispatcher breaks its straight-line loop when the
	// sequence moves (so every worker observes the event on the cycle
	// the reference scheduler would deliver it), and inert waiters and
	// idle workers skip their no-op polls/steal probes while the
	// sequence is unchanged since the poll that proved them inert.
	schedSeq uint64
	// elide enables the inert-poll/idle-sweep elision in tick; it is
	// off under ReferenceDispatch so the reference scheduler stays the
	// plain per-tick baseline the optimizations are verified against.
	elide bool

	parcalls      int64
	goalsParallel int64
	goalsStolen   int64
	stealProbes   int64
	kills         int64

	// Sharded execution state (Config.ExecShards > 1; see sharded.go).
	// execShards is the effective host-worker budget (0 = mode off);
	// shards holds one reusable speculation context per PE; epochHold
	// forces serial cycles after an epoch that made no parallel
	// progress or was discarded on a cross-shard conflict; specMark is
	// the per-word mark array of the commit-time footprint check; and
	// scratch absorbs the discarded emissions of snapshot replays.
	execShards     int
	shards         []shardCtx
	parts          []*shardCtx
	epochHold      int
	conflictStreak int
	specMark       []uint8
	scratch        mem.ShardStage

	// debug enables a per-cycle execution trace on stdout (tests only).
	debug bool
}

// New builds an engine for the given code. PEs beyond trace.MaxPEs are
// rejected: the reference counter, the codec tooling and the cache
// simulators all size per-PE state to that bound (and would otherwise
// silently drop the excess PEs' counts).
func New(code *isa.Code, cfg Config) (*Engine, error) {
	if cfg.PEs <= 0 {
		return nil, fmt.Errorf("core: PEs = %d, need >= 1", cfg.PEs)
	}
	if cfg.PEs > trace.MaxPEs {
		return nil, fmt.Errorf("core: PEs = %d exceeds the %d-PE limit", cfg.PEs, trace.MaxPEs)
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 2e9
	}
	if cfg.StealInterval <= 0 {
		cfg.StealInterval = 4
	}
	layout := cfg.Layout
	if layout.Workers == 0 {
		layout = mem.DefaultLayout(cfg.PEs)
	}
	layout.Workers = cfg.PEs
	m := mem.NewMemory(layout, cfg.Sink)
	e := &Engine{cfg: cfg, code: code, mem: m, elide: !cfg.ReferenceDispatch}
	for pe := 0; pe < cfg.PEs; pe++ {
		e.workers = append(e.workers, newWorker(e, pe))
	}
	// Sharded execution needs several PEs to overlap and is pointless
	// (and undefined) under the reference scheduler.
	if cfg.ExecShards > 1 && cfg.PEs > 1 && !cfg.ReferenceDispatch {
		e.execShards = cfg.ExecShards
		if e.execShards > cfg.PEs {
			e.execShards = cfg.PEs
		}
		e.shards = make([]shardCtx, cfg.PEs)
	}
	return e, nil
}

// Memory exposes the engine's shared memory (tests, answer extraction).
func (e *Engine) Memory() *mem.Memory { return e.mem }

// Close releases the engine's memory slab to the shared pool (see
// mem.Memory.Release). Callers that construct engines in bulk — trace
// generation above all — avoid re-zeroing a whole address space per
// run this way. The engine must not be used after Close; calling Close
// more than once is harmless.
func (e *Engine) Close() { e.mem.Release() }

// Run executes the query to the first solution (or failure).
func (e *Engine) Run() (*Result, error) {
	w0 := e.workers[0]
	w0.pc = e.code.QueryEntry
	w0.cp = cpQueryDone
	w0.setState(StateRun)

	// Machine errors (overflows, bad code addresses) surface as panics
	// carrying execution context. The recover lives here — once per
	// run — instead of in a per-instruction defer on the hot path.
	defer func() {
		if r := recover(); r != nil {
			if me, ok := r.(machineError); ok {
				panic(fmt.Errorf("cycle %d pc %d: %s", e.cycle, me.pc, me.msg))
			}
			panic(r)
		}
	}()

	var err error
	switch {
	case e.cfg.ReferenceDispatch:
		err = e.runReference()
	case e.cfg.PEs == 1:
		err = e.runSingle()
	case e.execShards > 1:
		err = e.runSharded()
	default:
		err = e.runMulti()
	}
	e.mem.Flush() // deliver staged references before anyone reads results
	if err != nil {
		return nil, err
	}

	res := &Result{
		Success: e.success,
		Output:  e.out.String(),
		Refs:    e.mem.Counter(),
	}
	res.Stats = e.stats()
	if e.success {
		res.Bindings = e.extractAnswers()
	}
	return res, nil
}

// errRunaway formats the MaxCycles abort.
func (e *Engine) errRunaway() error {
	return fmt.Errorf("core: exceeded %d cycles (livelock or runaway program)", e.cfg.MaxCycles)
}

// cancelMask throttles cancellation polls: the Cancel channel is
// checked once every cancelMask+1 cycles, so the per-cycle cost in the
// straight-line dispatch loops is one predictable nil-check branch.
const cancelMask = 1<<12 - 1

// canceled polls the Cancel channel without blocking.
func canceled(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// runReference is the one-instruction-per-tick round-robin scheduler:
// on every cycle each worker advances one step in PE order. It is the
// semantic definition of the machine's interleaving; the quantum
// dispatchers below are optimizations proven trace- and
// stats-identical to it (TestDispatcherParity, TestGoldenTraceParity).
func (e *Engine) runReference() error {
	stop := e.cfg.Cancel
	for !e.halted {
		if e.cycle >= e.cfg.MaxCycles {
			return e.errRunaway()
		}
		if stop != nil && e.cycle&cancelMask == 0 && canceled(stop) {
			return context.Canceled
		}
		e.cycle++
		for _, w := range e.workers {
			if e.halted {
				break
			}
			w.tick()
		}
	}
	return nil
}

// runSingle drives a 1-PE machine. With no other workers there is
// nothing to interleave with: while the worker keeps running,
// instructions execute in a straight-line loop with no per-tick
// scheduler dispatch (the quantum is unbounded — it ends only when the
// worker changes state or the engine halts). Kill flags cannot be set
// at 1 PE (messages only ever target other workers), so the tick-level
// kill check is dead and skipped.
func (e *Engine) runSingle() (err error) {
	w := e.workers[0]
	maxC := e.cfg.MaxCycles
	stop := e.cfg.Cancel
	cyc, runCyc := e.cycle, w.runCycles
	defer func() {
		e.cycle = cyc
		w.runCycles = runCyc
	}()
	for !e.halted {
		if cyc >= maxC {
			return e.errRunaway()
		}
		if stop != nil && cyc&cancelMask == 0 && canceled(stop) {
			return context.Canceled
		}
		if w.state == StateRun {
			cyc++
			runCyc++
			w.step()
		} else {
			cyc++
			e.cycle = cyc // scheduler actions see the true cycle
			w.tick()      // never touches runCycles from a non-run state
		}
	}
	return nil
}

// runMulti drives a multi-PE machine. Cycles where more than one
// worker can act run through the reference round-robin (their
// reference interleaving is the trace, so there is nothing to elide);
// but whenever exactly one worker is runnable and every other worker
// is provably inert — waiting or idle, no kill flags, every goal stack
// empty — the dispatcher enters a quantum: a straight-line inner loop
// over the runner's instruction stream, with the inert workers'
// per-cycle bookkeeping (wait/idle cycle counts, steal-probe counts
// and timers) reconstructed in closed form afterwards. The quantum
// breaks the moment the runner does anything another worker could
// observe — pushes a goal, sends a message, changes state, halts — and
// the cycle in progress is completed exactly as the reference
// scheduler would have.
func (e *Engine) runMulti() error {
	maxC := e.cfg.MaxCycles
	stop := e.cfg.Cancel
	for !e.halted {
		if e.cycle >= maxC {
			return e.errRunaway()
		}
		if stop != nil && e.cycle&cancelMask == 0 && canceled(stop) {
			return context.Canceled
		}
		e.cycle++
		for _, w := range e.workers {
			if e.halted {
				break
			}
			// The common ticks are dispatched inline — a running worker
			// with no kill pending goes straight to step, and inert
			// waiters/idlers advance only their counters; everything
			// else takes the full tick switch.
			switch {
			case w.state == StateRun && !w.killFlag:
				w.runCycles++
				w.step()
			case w.state == StateWait && !w.killFlag && w.inertWait && w.waitSeq == e.schedSeq:
				w.waitCycles++
			default:
				w.tick()
			}
		}
		if e.halted {
			break
		}
		if e.nRun == 1 {
			if r := e.soleRunner(); r != nil {
				if err := e.runQuantum(r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// soleRunner reports whether the machine is in a single-runner inert
// state: exactly one worker in StateRun, everyone else StateWait or
// StateIdle with no kill flag pending, and every goal stack empty (so
// idle steal probes and wait-state goal checks are no-ops). Only then
// can the runner execute a quantum without another worker's tick
// observing anything.
func (e *Engine) soleRunner() *worker {
	var runner *worker
	for _, w := range e.workers {
		switch w.state {
		case StateRun:
			if runner != nil {
				return nil
			}
			runner = w
		case StateWait:
			// Inert only while the awaited frame is still running with
			// goals outstanding; otherwise the next poll acts (wakes or
			// fails the parcall).
			if int(e.mem.Peek(w.pf+pfStatus).Int()) != pfRunning ||
				e.mem.Peek(w.pf+pfPending).Int() <= 0 {
				return nil
			}
		case StateIdle:
			// inert while every goal stack is empty (checked below)
		default: // StateHalt only co-occurs with e.halted
			return nil
		}
		if w.killFlag {
			return nil
		}
	}
	if runner == nil {
		return nil
	}
	for _, w := range e.workers {
		if int(e.mem.Peek(w.goalR.Base+gsTop).Int()) > gsBase {
			return nil
		}
	}
	return runner
}

// runQuantum executes the straight-line inner loop for a sole runner r
// and then settles the books so the run is indistinguishable from the
// reference scheduler's. On entry cycle N has fully completed; the
// loop executes r's slice of cycles N+1..M, where cycle M is the first
// with an observable event (or never, if the engine halts first).
// Within cycle M the reference order is: workers before r tick (still
// no-ops — the event hasn't happened yet), r ticks (the event), workers
// after r tick and may observe it — so those workers get a real tick
// here, while every elided no-op tick is accounted in closed form.
func (e *Engine) runQuantum(r *worker) (err error) {
	seq0 := e.schedSeq
	start := e.cycle // cycle N: already completed by the caller
	maxC := e.cfg.MaxCycles
	// The loop counters live in locals (registers) and are written back
	// on every exit — including a machine-error panic, so the error
	// context and the stats stay exact.
	cyc, runCyc := e.cycle, r.runCycles
	defer func() {
		e.cycle = cyc
		r.runCycles = runCyc
	}()
	stop := e.cfg.Cancel
	for {
		if cyc >= maxC {
			// Settle the cycles run so far before aborting, so stats
			// are exact even on the error path.
			e.settleQuantum(r, start, cyc, false)
			return e.errRunaway()
		}
		if stop != nil && cyc&cancelMask == 0 && canceled(stop) {
			e.settleQuantum(r, start, cyc, false)
			return context.Canceled
		}
		cyc++
		runCyc++
		r.step()
		if e.halted {
			// halt() stops every worker mid-cycle; the reference
			// scheduler skips the remaining ticks of the cycle too.
			e.settleQuantum(r, start, cyc, false)
			return nil
		}
		if e.schedSeq != seq0 || r.state != StateRun {
			e.cycle = cyc // settle's tail ticks run at the true cycle
			e.settleQuantum(r, start, cyc, true)
			return nil
		}
	}
}

// settleQuantum reconstructs the elided no-op ticks of the inert
// workers for a quantum that ran cycles start+1..end. Workers before
// the runner are accounted through cycle end; workers after it are
// accounted through cycle end-1 and, when tickTail is set (an
// observable event ended the quantum), ticked for real for cycle end
// so they observe the event exactly as the reference scheduler
// interleaves it.
func (e *Engine) settleQuantum(r *worker, start, end int64, tickTail bool) {
	if end == start {
		return
	}
	for _, w := range e.workers {
		if w == r {
			continue
		}
		if w.pe < r.pe {
			w.accountInert(end - start)
		} else {
			w.accountInert(end - start - 1)
			if tickTail && !e.halted {
				w.tick()
			}
		}
	}
}

func (e *Engine) stats() Stats {
	s := Stats{
		Cycles:        e.cycle,
		Parcalls:      e.parcalls,
		GoalsParallel: e.goalsParallel,
		GoalsStolen:   e.goalsStolen,
		StealProbes:   e.stealProbes,
		Kills:         e.kills,
	}
	c := e.mem.Counter() // complete: Run flushes before building stats
	for _, w := range e.workers {
		s.Inferences += w.inferences
		s.CheckFails += w.checkFails
		s.Instructions = append(s.Instructions, w.instrs)
		s.WorkRefs = append(s.WorkRefs, c.ByPE[w.pe])
		s.RunCycles = append(s.RunCycles, w.runCycles)
		s.WaitCycles = append(s.WaitCycles, w.waitCycles)
		s.IdleCycles = append(s.IdleCycles, w.idleCycles)
		if hw := w.h - w.heap.Base; hw > s.MaxHeap {
			s.MaxHeap = hw
		}
		if hw := w.localHigh - w.local.Base; hw > s.MaxLocal {
			s.MaxLocal = hw
		}
		if hw := w.ctlHigh - w.ctl.Base; hw > s.MaxControl {
			s.MaxControl = hw
		}
		if w.trHigh > s.MaxTrail {
			s.MaxTrail = w.trHigh
		}
	}
	return s
}

// halt stops the machine: e.halted is the single stop signal every
// dispatch loop checks before ticking a worker, so no worker advances
// after it is set. Worker states are deliberately left as they were —
// the quantum dispatcher's settlement accounts each inert worker's
// elided cycles by its state, and flipping everyone to StateHalt here
// would erase what they were doing when the machine stopped.
func (e *Engine) halt(success bool, answerE int) {
	e.halted = true
	e.success = success
	e.answerE = answerE
}

// extractAnswers renders the query variables' bindings (untraced; this
// is host-side answer reporting, not machine work).
func (e *Engine) extractAnswers() map[string]string {
	out := make(map[string]string, len(e.code.QueryVars))
	for i, name := range e.code.QueryVars {
		addr := e.answerE + envHdr + i
		out[name] = e.renderTerm(e.mem.Peek(addr), 0)
	}
	return out
}

// renderTerm formats a term by following bindings with untraced peeks.
func (e *Engine) renderTerm(w mem.Word, depth int) string {
	const maxDepth = 200
	if depth > maxDepth {
		return "..."
	}
	w = e.peekDeref(w)
	switch w.Tag() {
	case mem.TagRef:
		return fmt.Sprintf("_G%d", w.Addr())
	case mem.TagInt:
		return fmt.Sprintf("%d", w.Int())
	case mem.TagCon:
		return e.code.Syms.AtomName(w.Index())
	case mem.TagLis:
		var b bytes.Buffer
		b.WriteByte('[')
		b.WriteString(e.renderTerm(e.mem.Peek(w.Addr()), depth+1))
		t := e.peekDeref(e.mem.Peek(w.Addr() + 1))
		for {
			if t.Tag() == mem.TagCon && t.Index() == isa.NilAtom {
				break
			}
			if t.Tag() != mem.TagLis {
				b.WriteByte('|')
				b.WriteString(e.renderTerm(t, depth+1))
				break
			}
			b.WriteByte(',')
			b.WriteString(e.renderTerm(e.mem.Peek(t.Addr()), depth+1))
			t = e.peekDeref(e.mem.Peek(t.Addr() + 1))
		}
		b.WriteByte(']')
		return b.String()
	case mem.TagStr:
		f := e.code.Syms.FunctorAt(e.mem.Peek(w.Addr()).Index())
		var b bytes.Buffer
		b.WriteString(f.Name)
		b.WriteByte('(')
		for i := 0; i < f.Arity; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e.renderTerm(e.mem.Peek(w.Addr()+1+i), depth+1))
		}
		b.WriteByte(')')
		return b.String()
	case mem.TagFun:
		return e.code.Syms.FunctorAt(w.Index()).String()
	}
	return w.String()
}

// peekDeref follows reference chains without instrumentation.
func (e *Engine) peekDeref(w mem.Word) mem.Word {
	for w.Tag() == mem.TagRef {
		next := e.mem.Peek(w.Addr())
		if next == w {
			return w
		}
		w = next
	}
	return w
}

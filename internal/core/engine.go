// Package core implements the RAP-WAM parallel abstract machine — the
// paper's primary contribution. A machine is a collection of workers
// (each a full WAM with its own Stack Set: heap, local and control
// stacks, trail, PDL, goal stack and message buffer) cooperating on one
// program through a single flat shared memory.
//
// Execution is a deterministic instruction-interleaved simulation: on
// every cycle each worker executes one instruction (or one scheduler
// action) in PE order. This reproduces the paper's software-emulation
// methodology (its measurements also came from an instrumented emulator,
// not hardware) while making every run bit-reproducible.
//
// Instrumentation notes:
//   - Every data reference goes through mem.Memory and is classified
//     with the paper's Table 1 object types.
//   - Lock acquisition/release around goal-stack, parcall-counter and
//     message operations are modelled as explicit reads/writes of the
//     lock word, so locked objects cost what they cost in the paper.
//   - Busy-waiting (a parent polling its parcall frame's completion
//     counter, an idle worker between steal attempts) generates no
//     memory references: a spinning PE hits its own cache and adds no
//     bus traffic. Steal probes, however, read the victim's goal-stack
//     top word and are traced.
package core

import (
	"bytes"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// PEs is the number of workers (processing elements).
	PEs int
	// Layout overrides the per-worker memory layout; zero value uses
	// mem.DefaultLayout sized to PEs.
	Layout mem.Layout
	// Sink receives the memory-reference trace (nil = discard).
	Sink trace.Sink
	// MaxCycles aborts runaway executions (0 = default 2e9).
	MaxCycles int64
	// StealInterval is the number of idle cycles between steal probes
	// (default 4).
	StealInterval int
}

// WorkerState describes what a worker is doing on a given cycle.
type WorkerState uint8

const (
	// StateRun is productive execution ("work" in the paper's Figure 2).
	StateRun WorkerState = iota
	// StateWait is a parent spinning on a parcall completion counter.
	StateWait
	// StateIdle is a worker with no goal to execute.
	StateIdle
	// StateHalt means the engine stopped this worker.
	StateHalt
)

var stateNames = [...]string{"run", "wait", "idle", "halt"}

// String returns the state name.
func (s WorkerState) String() string { return stateNames[s] }

// Stats aggregates the run's instrumentation, the data behind the
// paper's Table 2 and Figure 2.
type Stats struct {
	// Cycles is the total simulation length.
	Cycles int64
	// Instructions executed per worker (scheduler actions excluded).
	Instructions []int64
	// WorkRefs / WaitCycles / IdleCycles per worker.
	WorkRefs   []int64
	RunCycles  []int64
	WaitCycles []int64
	IdleCycles []int64
	// Inferences counts procedure invocations (call/execute and
	// parallel goal starts) — the "logical inference" unit of the
	// paper's MLIPS arithmetic.
	Inferences int64
	// Parcalls is the number of parcall frames allocated.
	Parcalls int64
	// GoalsParallel is the number of goals scheduled through the
	// parallel mechanism (all slots of all parcall frames) — the
	// paper's Table 2 "Goals actually in //".
	GoalsParallel int64
	// GoalsStolen is the subset executed by a worker other than the
	// frame owner.
	GoalsStolen int64
	// StealProbes counts steal attempts (hits + misses).
	StealProbes int64
	// Kills counts kill messages delivered.
	Kills int64
	// CheckGroundFail / CheckIndepFail count CGE condition failures
	// (goals that fell back to sequential execution).
	CheckFails int64
	// MaxHeap / MaxLocal / MaxControl / MaxTrail are high-water marks
	// (words) across workers, for storage-efficiency reporting.
	MaxHeap, MaxLocal, MaxControl, MaxTrail int
}

// TotalInstructions sums instruction counts over workers.
func (s Stats) TotalInstructions() int64 {
	var n int64
	for _, v := range s.Instructions {
		n += v
	}
	return n
}

// TotalWorkRefs sums work references over workers.
func (s Stats) TotalWorkRefs() int64 {
	var n int64
	for _, v := range s.WorkRefs {
		n += v
	}
	return n
}

// Result is the outcome of a run.
type Result struct {
	// Success reports whether the query succeeded.
	Success bool
	// Bindings maps query variable names to rendered terms.
	Bindings map[string]string
	// Output is everything written by write/1 and nl/0.
	Output string
	// Stats is the instrumentation summary.
	Stats Stats
	// Refs is the memory reference counter (by object type).
	Refs *trace.Counter
}

// Engine executes a compiled program on P workers.
type Engine struct {
	cfg     Config
	code    *isa.Code
	mem     *mem.Memory
	workers []*worker
	cycle   int64
	halted  bool
	success bool
	answerE int // query environment address at OpStop
	out     bytes.Buffer

	parcalls      int64
	goalsParallel int64
	goalsStolen   int64
	stealProbes   int64
	kills         int64
	checkFails    int64

	// debug enables a per-cycle execution trace on stdout (tests only).
	debug bool
}

// New builds an engine for the given code.
func New(code *isa.Code, cfg Config) (*Engine, error) {
	if cfg.PEs <= 0 {
		return nil, fmt.Errorf("core: PEs = %d, need >= 1", cfg.PEs)
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 2e9
	}
	if cfg.StealInterval <= 0 {
		cfg.StealInterval = 4
	}
	layout := cfg.Layout
	if layout.Workers == 0 {
		layout = mem.DefaultLayout(cfg.PEs)
	}
	layout.Workers = cfg.PEs
	m := mem.NewMemory(layout, cfg.Sink)
	e := &Engine{cfg: cfg, code: code, mem: m}
	for pe := 0; pe < cfg.PEs; pe++ {
		e.workers = append(e.workers, newWorker(e, pe))
	}
	return e, nil
}

// Memory exposes the engine's shared memory (tests, answer extraction).
func (e *Engine) Memory() *mem.Memory { return e.mem }

// Run executes the query to the first solution (or failure).
func (e *Engine) Run() (*Result, error) {
	w0 := e.workers[0]
	w0.pc = e.code.QueryEntry
	w0.cp = cpQueryDone
	w0.state = StateRun

	for !e.halted {
		if e.cycle >= e.cfg.MaxCycles {
			return nil, fmt.Errorf("core: exceeded %d cycles (livelock or runaway program)", e.cfg.MaxCycles)
		}
		e.cycle++
		for _, w := range e.workers {
			if e.halted {
				break
			}
			w.tick()
		}
	}

	res := &Result{
		Success: e.success,
		Output:  e.out.String(),
		Refs:    e.mem.Counter(),
	}
	res.Stats = e.stats()
	if e.success {
		res.Bindings = e.extractAnswers()
	}
	return res, nil
}

func (e *Engine) stats() Stats {
	s := Stats{
		Cycles:        e.cycle,
		Parcalls:      e.parcalls,
		GoalsParallel: e.goalsParallel,
		GoalsStolen:   e.goalsStolen,
		StealProbes:   e.stealProbes,
		Kills:         e.kills,
		CheckFails:    e.checkFails,
	}
	for _, w := range e.workers {
		s.Inferences += w.inferences
		s.Instructions = append(s.Instructions, w.instrs)
		s.WorkRefs = append(s.WorkRefs, w.workRefs)
		s.RunCycles = append(s.RunCycles, w.runCycles)
		s.WaitCycles = append(s.WaitCycles, w.waitCycles)
		s.IdleCycles = append(s.IdleCycles, w.idleCycles)
		if hw := w.h - w.heap.Base; hw > s.MaxHeap {
			s.MaxHeap = hw
		}
		if hw := w.localHigh - w.local.Base; hw > s.MaxLocal {
			s.MaxLocal = hw
		}
		if hw := w.ctlHigh - w.ctl.Base; hw > s.MaxControl {
			s.MaxControl = hw
		}
		if w.trHigh > s.MaxTrail {
			s.MaxTrail = w.trHigh
		}
	}
	return s
}

// halt stops every worker.
func (e *Engine) halt(success bool, answerE int) {
	e.halted = true
	e.success = success
	e.answerE = answerE
	for _, w := range e.workers {
		w.state = StateHalt
	}
}

// extractAnswers renders the query variables' bindings (untraced; this
// is host-side answer reporting, not machine work).
func (e *Engine) extractAnswers() map[string]string {
	out := make(map[string]string, len(e.code.QueryVars))
	for i, name := range e.code.QueryVars {
		addr := e.answerE + envHdr + i
		out[name] = e.renderTerm(e.mem.Peek(addr), 0)
	}
	return out
}

// renderTerm formats a term by following bindings with untraced peeks.
func (e *Engine) renderTerm(w mem.Word, depth int) string {
	const maxDepth = 200
	if depth > maxDepth {
		return "..."
	}
	w = e.peekDeref(w)
	switch w.Tag() {
	case mem.TagRef:
		return fmt.Sprintf("_G%d", w.Addr())
	case mem.TagInt:
		return fmt.Sprintf("%d", w.Int())
	case mem.TagCon:
		return e.code.Syms.AtomName(w.Index())
	case mem.TagLis:
		var b bytes.Buffer
		b.WriteByte('[')
		b.WriteString(e.renderTerm(e.mem.Peek(w.Addr()), depth+1))
		t := e.peekDeref(e.mem.Peek(w.Addr() + 1))
		for {
			if t.Tag() == mem.TagCon && t.Index() == isa.NilAtom {
				break
			}
			if t.Tag() != mem.TagLis {
				b.WriteByte('|')
				b.WriteString(e.renderTerm(t, depth+1))
				break
			}
			b.WriteByte(',')
			b.WriteString(e.renderTerm(e.mem.Peek(t.Addr()), depth+1))
			t = e.peekDeref(e.mem.Peek(t.Addr() + 1))
		}
		b.WriteByte(']')
		return b.String()
	case mem.TagStr:
		f := e.code.Syms.FunctorAt(e.mem.Peek(w.Addr()).Index())
		var b bytes.Buffer
		b.WriteString(f.Name)
		b.WriteByte('(')
		for i := 0; i < f.Arity; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e.renderTerm(e.mem.Peek(w.Addr()+1+i), depth+1))
		}
		b.WriteByte(')')
		return b.String()
	case mem.TagFun:
		return e.code.Syms.FunctorAt(w.Index()).String()
	}
	return w.String()
}

// peekDeref follows reference chains without instrumentation.
func (e *Engine) peekDeref(w mem.Word) mem.Word {
	for w.Tag() == mem.TagRef {
		next := e.mem.Peek(w.Addr())
		if next == w {
			return w
		}
		w = next
	}
	return w
}

package core

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/mem"
)

// runQuery compiles and runs a program+query, failing the test on
// compile or machine errors.
func runQuery(t *testing.T, program, query string, pes int, sequential bool) *Result {
	t.Helper()
	code, err := compile.Compile(program, query, compile.Options{Sequential: sequential})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	layout := mem.Layout{
		Workers: pes,
		Heap:    1 << 16, Local: 1 << 14, Control: 1 << 14,
		Trail: 1 << 13, PDL: 1 << 10, Goal: 1 << 10, Msg: 1 << 8,
	}
	eng, err := New(code, Config{PEs: pes, Layout: layout, MaxCycles: 50_000_000})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func wantBinding(t *testing.T, res *Result, name, want string) {
	t.Helper()
	if !res.Success {
		t.Fatalf("query failed, want %s = %s", name, want)
	}
	if got := res.Bindings[name]; got != want {
		t.Errorf("%s = %s, want %s", name, got, want)
	}
}

func TestFacts(t *testing.T) {
	res := runQuery(t, "likes(mary, wine). likes(john, beer).", "likes(mary, X)", 1, true)
	wantBinding(t, res, "X", "wine")
}

func TestFactFailure(t *testing.T) {
	res := runQuery(t, "likes(mary, wine).", "likes(bob, X)", 1, true)
	if res.Success {
		t.Error("query should fail")
	}
}

func TestBacktrackingThroughFacts(t *testing.T) {
	// First clause fails against the test goal; backtracking finds the
	// second.
	res := runQuery(t, `
		p(1). p(2). p(3).
		q(2).
		r(X) :- p(X), q(X).
	`, "r(X)", 1, true)
	wantBinding(t, res, "X", "2")
}

func TestUnificationStructures(t *testing.T) {
	res := runQuery(t, "eq(X, X).", "eq(f(g(1), h(A)), f(B, h(2)))", 1, true)
	wantBinding(t, res, "A", "2")
	wantBinding(t, res, "B", "g(1)")
}

func TestAppend(t *testing.T) {
	prog := `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
	`
	res := runQuery(t, prog, "app([1,2,3], [4,5], X)", 1, true)
	wantBinding(t, res, "X", "[1,2,3,4,5]")
}

func TestAppendSplit(t *testing.T) {
	// Backtracking through append: find a split of [1,2].
	prog := `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
		first_split(X, Y) :- app(X, Y, [1,2]), X = [_|_].
	`
	res := runQuery(t, prog, "first_split(A, B)", 1, true)
	wantBinding(t, res, "A", "[1]")
	wantBinding(t, res, "B", "[2]")
}

func TestNaiveReverse(t *testing.T) {
	prog := `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
		nrev([], []).
		nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
	`
	res := runQuery(t, prog, "nrev([1,2,3,4,5], X)", 1, true)
	wantBinding(t, res, "X", "[5,4,3,2,1]")
}

func TestArithmetic(t *testing.T) {
	res := runQuery(t, "calc(X, Y) :- Y is X * 3 + (10 - 4) // 2.", "calc(5, R)", 1, true)
	wantBinding(t, res, "R", "18")
}

func TestArithmeticComparisons(t *testing.T) {
	prog := `
		max(X, Y, X) :- X >= Y.
		max(X, Y, Y) :- X < Y.
	`
	res := runQuery(t, prog, "max(3, 7, M)", 1, true)
	wantBinding(t, res, "M", "7")
	res = runQuery(t, prog, "max(9, 2, M)", 1, true)
	wantBinding(t, res, "M", "9")
}

func TestNegativeNumbers(t *testing.T) {
	res := runQuery(t, "neg(X, Y) :- Y is -X + 1.", "neg(5, R)", 1, true)
	wantBinding(t, res, "R", "-4")
}

func TestModAndRem(t *testing.T) {
	res := runQuery(t, "m(A, B) :- A is 7 mod 3, B is -7 rem 3.", "m(A, B)", 1, true)
	wantBinding(t, res, "A", "1")
	wantBinding(t, res, "B", "-1")
}

func TestCut(t *testing.T) {
	prog := `
		f(X, zero) :- X =< 0, !.
		f(_, pos).
	`
	res := runQuery(t, prog, "f(-3, R)", 1, true)
	wantBinding(t, res, "R", "zero")
	res = runQuery(t, prog, "f(3, R)", 1, true)
	wantBinding(t, res, "R", "pos")
}

func TestCutPrunesAlternatives(t *testing.T) {
	prog := `
		p(1). p(2).
		q(X) :- p(X), !, X > 1.
	`
	// Cut commits to p(1); X > 1 then fails and there is no retry.
	res := runQuery(t, prog, "q(_)", 1, true)
	if res.Success {
		t.Error("cut should prevent finding p(2)")
	}
}

func TestFailDrivenFailure(t *testing.T) {
	res := runQuery(t, "p(1).", "p(X), fail", 1, true)
	if res.Success {
		t.Error("fail/0 should fail the query")
	}
}

func TestTypeTests(t *testing.T) {
	res := runQuery(t, "t(X) :- atom(a), integer(3), nonvar(f(X)), var(X), atomic(7).", "t(_)", 1, true)
	if !res.Success {
		t.Error("type test conjunction should succeed")
	}
}

func TestStructuralEquality(t *testing.T) {
	res := runQuery(t, "s :- f(1, g(2)) == f(1, g(2)), f(1) \\== f(2).", "s", 1, true)
	if !res.Success {
		t.Error("==/2 test failed")
	}
}

func TestExplicitUnifyBuiltin(t *testing.T) {
	res := runQuery(t, "u(X, Y) :- X = f(Y), Y = 3.", "u(A, B)", 1, true)
	wantBinding(t, res, "A", "f(3)")
	wantBinding(t, res, "B", "3")
}

func TestWriteOutput(t *testing.T) {
	res := runQuery(t, "hello :- write(hello), nl, write([1,2,3]).", "hello", 1, true)
	if res.Output != "hello\n[1,2,3]" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestDeepRecursion(t *testing.T) {
	prog := `
		count(0) :- !.
		count(N) :- N > 0, M is N - 1, count(M).
	`
	res := runQuery(t, prog, "count(10000)", 1, true)
	if !res.Success {
		t.Error("deep recursion failed")
	}
}

func TestLastCallOptimizationRecoversStack(t *testing.T) {
	// With LCO a deterministic loop must run in constant local stack.
	prog := `
		loop(0).
		loop(N) :- N > 0, M is N - 1, loop(M).
	`
	res := runQuery(t, prog, "loop(5000)", 1, true)
	if !res.Success {
		t.Fatal("loop failed")
	}
	if res.Stats.MaxLocal > 2000 {
		t.Errorf("local stack high water = %d words; LCO should keep it small", res.Stats.MaxLocal)
	}
}

func TestGroundAndIndepBuiltins(t *testing.T) {
	res := runQuery(t, "g :- ground(f(1,2)), indep(X, Y), X = 1, Y = 2.", "g", 1, true)
	if !res.Success {
		t.Error("ground/indep goals failed")
	}
	res = runQuery(t, "g(X) :- ground(f(X)).", "g(_)", 1, true)
	if res.Success {
		t.Error("ground/1 should fail on nonground")
	}
	res = runQuery(t, "i(X) :- indep(f(X), g(X)).", "i(_)", 1, true)
	if res.Success {
		t.Error("indep/2 should fail on shared variable")
	}
}

// --- parallel execution ---

const fibProg = `
	fib(0, 0).
	fib(1, 1).
	fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,
		(fib(N1, F1) & fib(N2, F2)),
		F is F1 + F2.
`

func TestParallelFib(t *testing.T) {
	for _, pes := range []int{1, 2, 4, 8} {
		res := runQuery(t, fibProg, "fib(14, F)", pes, false)
		wantBinding(t, res, "F", "377")
		if pes > 1 && res.Stats.GoalsParallel == 0 {
			t.Errorf("%d PEs: no parallel goals scheduled", pes)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := runQuery(t, fibProg, "fib(12, F)", 1, true)
	for _, pes := range []int{1, 2, 3, 4, 7, 8} {
		par := runQuery(t, fibProg, "fib(12, F)", pes, false)
		if par.Bindings["F"] != seq.Bindings["F"] {
			t.Errorf("%d PEs: F = %s, want %s", pes, par.Bindings["F"], seq.Bindings["F"])
		}
	}
}

func TestParallelSpeedsUp(t *testing.T) {
	seq := runQuery(t, fibProg, "fib(15, F)", 1, false)
	par := runQuery(t, fibProg, "fib(15, F)", 8, false)
	if par.Stats.Cycles >= seq.Stats.Cycles {
		t.Errorf("8 PEs used %d cycles, 1 PE used %d; expected speedup",
			par.Stats.Cycles, seq.Stats.Cycles)
	}
}

func TestCGEConditionsFallBackToSequential(t *testing.T) {
	// X is unbound, so indep(X, X) fails and the goals run sequentially.
	prog := `
		p(1). q(2).
		both(A, B, X) :- (indep(X, X) | p(A) & q(B)).
	`
	res := runQuery(t, prog, "both(A, B, _)", 2, false)
	wantBinding(t, res, "A", "1")
	wantBinding(t, res, "B", "2")
	if res.Stats.Parcalls != 0 {
		t.Errorf("parcalls = %d, want 0 (condition fails)", res.Stats.Parcalls)
	}
}

func TestCGEConditionsHoldRunsParallel(t *testing.T) {
	prog := `
		p(1). q(2).
		both(A, B) :- (ground(7), indep(A, B) | p(A) & q(B)).
	`
	res := runQuery(t, prog, "both(A, B)", 2, false)
	wantBinding(t, res, "A", "1")
	wantBinding(t, res, "B", "2")
	if res.Stats.Parcalls != 1 {
		t.Errorf("parcalls = %d, want 1", res.Stats.Parcalls)
	}
}

func TestParallelGoalSharingGroundStructure(t *testing.T) {
	prog := `
		len([], 0).
		len([_|T], N) :- len(T, M), N is M + 1.
		two(L, A, B) :- (ground(L) | len(L, A) & len(L, B)).
	`
	res := runQuery(t, prog, "two([a,b,c], A, B)", 4, false)
	wantBinding(t, res, "A", "3")
	wantBinding(t, res, "B", "3")
}

func TestParallelFailureInsideArm(t *testing.T) {
	// The second arm always fails; the parcall must fail and the query
	// fall through to the fallback clause.
	prog := `
		ok(1).
		bad(_) :- fail.
		try(X) :- ok(X) & bad(X).
		try(99).
	`
	for _, pes := range []int{1, 2, 4} {
		res := runQuery(t, prog, "try(R)", pes, false)
		wantBinding(t, res, "R", "99")
	}
}

func TestParallelFailureBothArms(t *testing.T) {
	prog := `
		bad(_) :- fail.
		try :- bad(1) & bad(2).
	`
	for _, pes := range []int{1, 2} {
		res := runQuery(t, prog, "try", pes, false)
		if res.Success {
			t.Errorf("%d PEs: parcall with failing arms should fail", pes)
		}
	}
}

func TestNestedParallelism(t *testing.T) {
	prog := `
		leaf(1).
		tree(0, 1).
		tree(D, N) :- D > 0, D1 is D - 1,
			(tree(D1, A) & tree(D1, B)),
			N is A + B.
	`
	for _, pes := range []int{1, 3, 8} {
		res := runQuery(t, prog, "tree(6, N)", pes, false)
		wantBinding(t, res, "N", "64")
	}
}

func TestThreeWayParallelConjunction(t *testing.T) {
	prog := `
		p(1). q(2). r(3).
		all(A, B, C) :- p(A) & q(B) & r(C).
	`
	res := runQuery(t, prog, "all(A, B, C)", 4, false)
	wantBinding(t, res, "A", "1")
	wantBinding(t, res, "B", "2")
	wantBinding(t, res, "C", "3")
	if res.Stats.GoalsParallel != 3 {
		t.Errorf("parallel goals = %d, want 3", res.Stats.GoalsParallel)
	}
}

func TestQsortDifferenceListsParallel(t *testing.T) {
	prog := `
		qsort([], R, R).
		qsort([X|L], R, R0) :-
			partition(L, X, L1, L2),
			(qsort(L1, R, [X|R1]) & qsort(L2, R1, R0)).
		partition([], _, [], []).
		partition([E|R], C, [E|L1], L2) :- E < C, !, partition(R, C, L1, L2).
		partition([E|R], C, L1, [E|L2]) :- partition(R, C, L1, L2).
	`
	for _, pes := range []int{1, 2, 4, 8} {
		res := runQuery(t, prog, "qsort([27,74,17,33,94,18,46,83,65,2,31,53,64,99,68,11], S, [])", pes, false)
		wantBinding(t, res, "S", "[2,11,17,18,27,31,33,46,53,64,65,68,74,83,94,99]")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := runQuery(t, fibProg, "fib(12, F)", 4, false)
	b := runQuery(t, fibProg, "fib(12, F)", 4, false)
	if a.Stats.Cycles != b.Stats.Cycles || a.Refs.Total() != b.Refs.Total() {
		t.Errorf("nondeterministic: cycles %d/%d refs %d/%d",
			a.Stats.Cycles, b.Stats.Cycles, a.Refs.Total(), b.Refs.Total())
	}
}

func TestWorkRefsCloseToSequential(t *testing.T) {
	// Figure 2's claim — RAP-WAM work close to WAM work — holds for
	// benchmarks with real per-goal work (deriv; asserted in the bench
	// suite). fib is a deliberate worst case: its body is two
	// arithmetic instructions, so parcall management dominates. Here we
	// only bound the overhead for that extreme.
	seq := runQuery(t, fibProg, "fib(13, F)", 1, true)
	par := runQuery(t, fibProg, "fib(13, F)", 1, false)
	seqRefs := float64(seq.Stats.TotalWorkRefs())
	parRefs := float64(par.Stats.TotalWorkRefs())
	if parRefs < seqRefs {
		t.Fatalf("parallel work %v below sequential %v", parRefs, seqRefs)
	}
	if parRefs/seqRefs > 6 {
		t.Errorf("RAP-WAM/WAM work ratio = %.2f even for zero-granularity goals", parRefs/seqRefs)
	}
}

func TestStolenGoalsOnMultiplePEs(t *testing.T) {
	res := runQuery(t, fibProg, "fib(15, F)", 8, false)
	if res.Stats.GoalsStolen == 0 {
		t.Error("8 PEs ran fib(15) without stealing any goal")
	}
	busy := 0
	for _, r := range res.Stats.WorkRefs {
		if r > 0 {
			busy++
		}
	}
	if busy < 4 {
		t.Errorf("only %d PEs did work", busy)
	}
}

// --- structure inspection and meta-call builtins ---

func TestFunctorDecomposition(t *testing.T) {
	res := runQuery(t, "d(T, F, N) :- functor(T, F, N).", "d(foo(a,b,c), F, N)", 1, true)
	wantBinding(t, res, "F", "foo")
	wantBinding(t, res, "N", "3")
	res = runQuery(t, "d(T, F, N) :- functor(T, F, N).", "d(hello, F, N)", 1, true)
	wantBinding(t, res, "F", "hello")
	wantBinding(t, res, "N", "0")
	res = runQuery(t, "d(T, F, N) :- functor(T, F, N).", "d([a,b], F, N)", 1, true)
	wantBinding(t, res, "N", "2")
}

func TestFunctorConstruction(t *testing.T) {
	res := runQuery(t, "c(T) :- functor(T, foo, 2).", "c(T)", 1, true)
	if !res.Success {
		t.Fatal("construction failed")
	}
	if got := res.Bindings["T"]; len(got) < 6 || got[:4] != "foo(" {
		t.Errorf("T = %s", got)
	}
	res = runQuery(t, "c(T) :- functor(T, 42, 0).", "c(T)", 1, true)
	wantBinding(t, res, "T", "42")
}

func TestArg(t *testing.T) {
	res := runQuery(t, "a(X, Y) :- arg(2, f(1, 2, 3), X), arg(1, [a,b], Y).", "a(X, Y)", 1, true)
	wantBinding(t, res, "X", "2")
	wantBinding(t, res, "Y", "a")
	res = runQuery(t, "a(X) :- arg(9, f(1), X).", "a(_)", 1, true)
	if res.Success {
		t.Error("out-of-range arg should fail")
	}
}

func TestUnivBothDirections(t *testing.T) {
	res := runQuery(t, "u(L) :- f(1, g(2)) =.. L.", "u(L)", 1, true)
	wantBinding(t, res, "L", "[f,1,g(2)]")
	res = runQuery(t, "u(T) :- T =.. [point, 3, 4].", "u(T)", 1, true)
	wantBinding(t, res, "T", "point(3,4)")
	res = runQuery(t, "u(T) :- T =.. [hello].", "u(T)", 1, true)
	wantBinding(t, res, "T", "hello")
}

func TestMetaCall(t *testing.T) {
	prog := `
		p(1). q(2).
		do(G) :- call(G).
		both(X, Y) :- do(p(X)), do(q(Y)).
	`
	res := runQuery(t, prog, "both(X, Y)", 1, true)
	wantBinding(t, res, "X", "1")
	wantBinding(t, res, "Y", "2")
}

func TestMetaCallAtomGoal(t *testing.T) {
	res := runQuery(t, "yes. go :- call(yes).", "go", 1, true)
	if !res.Success {
		t.Error("call(atom) failed")
	}
}

func TestMetaCallBacktracksIntoGoal(t *testing.T) {
	prog := `
		p(1). p(2). p(3).
		pick(X) :- call(p(X)), X > 2.
	`
	res := runQuery(t, prog, "pick(X)", 1, true)
	wantBinding(t, res, "X", "3")
}

func TestMetaCallFailures(t *testing.T) {
	res := runQuery(t, "go(G) :- call(G).", "go(_)", 1, true)
	if res.Success {
		t.Error("call(unbound) should fail")
	}
	res = runQuery(t, "go :- call(77). ", "go", 1, true)
	if res.Success {
		t.Error("call(integer) should fail")
	}
}

func TestLength(t *testing.T) {
	res := runQuery(t, "l(N) :- length([a,b,c,d], N).", "l(N)", 1, true)
	wantBinding(t, res, "N", "4")
	res = runQuery(t, "l(L) :- length(L, 3).", "l(L)", 1, true)
	if !res.Success {
		t.Fatal("length construction failed")
	}
	if got := res.Bindings["L"]; len(got) < 5 {
		t.Errorf("L = %s", got)
	}
	res = runQuery(t, "l :- length([a,b], 3).", "l", 1, true)
	if res.Success {
		t.Error("wrong length should fail")
	}
}

// --- additional semantic coverage ---

func TestIndexingDispatchAllTagClasses(t *testing.T) {
	prog := `
		kind(a, atom_a). kind(b, atom_b).
		kind(7, int_7). kind(42, int_42).
		kind([], nil). kind([_|_], cons).
		kind(f(_), str_f). kind(g(_, _), str_g).
		kind(X, var_clause) :- integer(X), X > 100.
	`
	cases := map[string]string{
		"kind(a, K)":      "atom_a",
		"kind(b, K)":      "atom_b",
		"kind(7, K)":      "int_7",
		"kind(42, K)":     "int_42",
		"kind([], K)":     "nil",
		"kind([1,2], K)":  "cons",
		"kind(f(0), K)":   "str_f",
		"kind(g(1,2), K)": "str_g",
		"kind(999, K)":    "var_clause",
	}
	for q, want := range cases {
		res := runQuery(t, prog, q, 1, true)
		wantBinding(t, res, "K", want)
	}
	// Unknown constant and unknown functor must fail fast.
	for _, q := range []string{"kind(zzz, _)", "kind(h(1), _)"} {
		if res := runQuery(t, prog, q, 1, true); res.Success {
			t.Errorf("%s should fail", q)
		}
	}
}

func TestIndexingWithUnboundFirstArgTriesAllClauses(t *testing.T) {
	prog := `
		v(a). v(7). v([]). v([x]). v(f(1)).
		pick(X, Y) :- v(X), X == Y.
	`
	for _, want := range []string{"a", "7", "[]", "[x]", "f(1)"} {
		res := runQuery(t, prog, "pick(X, "+want+")", 1, true)
		wantBinding(t, res, "X", want)
	}
}

func TestUnsafeVariableGlobalization(t *testing.T) {
	// Y first occurs in the body and is passed to the last call under
	// LCO: put_unsafe_value must globalize it so the reference survives
	// the deallocated environment.
	prog := `
		mk(X) :- helper(_, X).
		helper(_, out(Y)) :- pass(Y).
		pass(v).
	`
	res := runQuery(t, prog, "mk(R)", 1, true)
	wantBinding(t, res, "R", "out(v)")
}

func TestCutInsideParallelArmIsLocal(t *testing.T) {
	// A cut inside a parallel goal's code prunes only that goal's
	// choice points, not the parent's.
	prog := `
		c(1) :- !.
		c(2).
		par(X, Y) :- c(X) & c(Y).
		par(9, 9).
	`
	for _, pes := range []int{1, 2, 4} {
		res := runQuery(t, prog, "par(A, B)", pes, false)
		wantBinding(t, res, "A", "1")
		wantBinding(t, res, "B", "1")
	}
}

func TestFourArmCGE(t *testing.T) {
	prog := `
		w(1). x(2). y(3). z(4).
		all(A, B, C, D) :- w(A) & x(B) & y(C) & z(D).
	`
	for _, pes := range []int{1, 3, 5, 8} {
		res := runQuery(t, prog, "all(A, B, C, D)", pes, false)
		wantBinding(t, res, "A", "1")
		wantBinding(t, res, "B", "2")
		wantBinding(t, res, "C", "3")
		wantBinding(t, res, "D", "4")
		if res.Stats.GoalsParallel != 4 {
			t.Errorf("%d PEs: goals// = %d, want 4", pes, res.Stats.GoalsParallel)
		}
	}
}

func TestTwoSequentialCGEsInOneClause(t *testing.T) {
	prog := `
		p(1). q(2). r(3). s(4).
		two(A, B, C, D) :- (p(A) & q(B)), (r(C) & s(D)).
	`
	res := runQuery(t, prog, "two(A, B, C, D)", 4, false)
	wantBinding(t, res, "A", "1")
	wantBinding(t, res, "D", "4")
	if res.Stats.Parcalls != 2 {
		t.Errorf("parcalls = %d, want 2", res.Stats.Parcalls)
	}
}

func TestHeapTermsSurviveGoalCompletion(t *testing.T) {
	// Results built on a thief's heap must remain valid after the
	// thief's local/control sections are recovered.
	prog := `
		build(0, leaf).
		build(N, node(L, R)) :- N > 0, M is N - 1, (build(M, L) & build(M, R)).
		check(leaf, 1).
		check(node(L, R), N) :- check(L, A), check(R, B), N is A + B.
		go(N) :- build(4, T), check(T, N).
	`
	for _, pes := range []int{1, 2, 4, 8} {
		res := runQuery(t, prog, "go(N)", pes, false)
		wantBinding(t, res, "N", "16")
	}
}

func TestOutputInterleavingIsDeterministic(t *testing.T) {
	prog := `
		say(X) :- write(X), nl.
		go :- say(a) & say(b).
	`
	a := runQuery(t, prog, "go", 2, false)
	b := runQuery(t, prog, "go", 2, false)
	if a.Output != b.Output {
		t.Errorf("nondeterministic output: %q vs %q", a.Output, b.Output)
	}
}

func TestArithmeticOverflowFails(t *testing.T) {
	res := runQuery(t, "big(X) :- X is 1152921504606846975 * 1152921504606846975.", "big(_)", 1, true)
	if res.Success {
		t.Error("overflowing multiplication should fail, not wrap")
	}
}

func TestDivisionByZeroFails(t *testing.T) {
	res := runQuery(t, "d(X) :- X is 1 // 0.", "d(_)", 1, true)
	if res.Success {
		t.Error("division by zero should fail")
	}
	res = runQuery(t, "m(X) :- X is 1 mod 0.", "m(_)", 1, true)
	if res.Success {
		t.Error("mod by zero should fail")
	}
}

func TestEnvironmentTrimmingAcrossCalls(t *testing.T) {
	// Deep conjunctions with permanent variables at every step.
	prog := `
		inc(X, Y) :- Y is X + 1.
		chain(A, F) :- inc(A, B), inc(B, C), inc(C, D), inc(D, E), inc(E, F).
	`
	res := runQuery(t, prog, "chain(0, F)", 1, true)
	wantBinding(t, res, "F", "5")
}

func TestPartialListUnification(t *testing.T) {
	prog := `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
	`
	// Unify against a partial list: X = [1|Rest].
	res := runQuery(t, prog, "app([1], Y, X), X = [_|R], Y = [2,3], R == [2,3]", 1, true)
	if !res.Success {
		t.Error("partial list unification failed")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	code, err := compile.Compile("loop :- loop.", "loop", compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(code, Config{PEs: 1, MaxCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Error("infinite loop not aborted")
	}
}

func TestHeapOverflowReported(t *testing.T) {
	code, err := compile.Compile(`
		grow(L) :- grow([x|L]).
	`, "grow([])", compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	layout := mem.Layout{Workers: 1, Heap: 256, Local: 1 << 12, Control: 1 << 10,
		Trail: 1 << 9, PDL: 1 << 8, Goal: 1 << 8, Msg: 1 << 6}
	eng, err := New(code, Config{PEs: 1, Layout: layout, MaxCycles: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("heap overflow not reported")
		}
	}()
	_, _ = eng.Run()
}

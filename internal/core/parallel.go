package core

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// This file implements the RAP-WAM parallel machinery: parcall frames,
// markers (stack sections), the on-demand scheduler with goal stealing,
// and backward execution across parallel goals (inside failure kills
// siblings and fails outside, per the paper's semantics; completed
// parallel goals are treated as determinate — see DESIGN.md).

// allocPFrame implements OpPFrame.
func (w *worker) allocPFrame(ngoals int, cont int32) {
	size := pfSize(ngoals)
	w.checkLocal(size)
	at := w.localTop
	w.write(at+pfPrevPF, mem.MakeRef(encAddr(w.pf)), trace.ObjParcallLocal)
	w.write(at+pfCE, mem.MakeRef(encAddr(w.e)), trace.ObjParcallLocal)
	w.write(at+pfContP, mem.MakeInt(int64(cont)), trace.ObjParcallLocal)
	w.write(at+pfNGoals, mem.MakeInt(int64(ngoals)), trace.ObjParcallGlobal)
	w.write(at+pfLock, mem.MakeInt(0), trace.ObjParcallCount)
	w.write(at+pfPending, mem.MakeInt(int64(ngoals)), trace.ObjParcallCount)
	w.write(at+pfStatus, mem.MakeInt(pfRunning), trace.ObjParcallGlobal)
	w.write(at+pfOwner, mem.MakeInt(int64(w.pe)), trace.ObjParcallGlobal)
	w.write(at+pfParentB, mem.MakeRef(encAddr(w.b)), trace.ObjParcallGlobal)
	w.write(at+pfParentH, mem.MakeRef(encAddr(w.h)), trace.ObjParcallGlobal)
	w.write(at+pfParentTR, mem.MakeInt(int64(w.tr)), trace.ObjParcallGlobal)
	w.write(at+pfParentCt, mem.MakeRef(encAddr(w.ctlTop)), trace.ObjParcallGlobal)
	for g := 0; g < ngoals; g++ {
		s := at + pfHdr + g*pfSlotLen
		w.write(s+slotOffState, mem.MakeInt(slotPending), trace.ObjParcallGlobal)
		w.write(s+slotOffPE, mem.MakeInt(-1), trace.ObjParcallGlobal)
		w.write(s+slotOffStartTR, mem.MakeInt(0), trace.ObjParcallGlobal)
		w.write(s+slotOffEndTR, mem.MakeInt(0), trace.ObjParcallGlobal)
	}
	w.localTop = at + size
	if w.localTop > w.localHigh {
		w.localHigh = w.localTop
	}
	w.pf = at
	w.noteSchedEvent() // new frame: pending/status now live
	w.eng.parcalls++
	w.eng.goalsParallel += int64(ngoals)
}

// encAddr maps the none sentinel (-1) through word encoding; MakeRef of
// a negative value would corrupt the tag, so none is stored as the
// maximum address + 1 pattern via MakeInt(-1) semantics. We simply store
// addr+1 so that 0 means none.
func encAddr(addr int) int { return addr + 1 }

func decAddr(w mem.Word) int { return w.Addr() - 1 }

// pushMarker opens a stack section for a parallel goal and returns the
// marker address.
func (w *worker) pushMarker(pfAddr, slot int) int {
	w.checkCtl(mkSize)
	at := w.ctlTop
	w.write(at+mkPrevGM, mem.MakeRef(encAddr(w.gm)), trace.ObjMarker)
	w.write(at+mkPF, mem.MakeRef(encAddr(pfAddr)), trace.ObjMarker)
	w.write(at+mkSlot, mem.MakeInt(int64(slot)), trace.ObjMarker)
	w.write(at+mkSavedB, mem.MakeRef(encAddr(w.b)), trace.ObjMarker)
	w.write(at+mkSavedB0, mem.MakeRef(encAddr(w.b0)), trace.ObjMarker)
	w.write(at+mkSavedE, mem.MakeRef(encAddr(w.e)), trace.ObjMarker)
	w.write(at+mkSavedH, mem.MakeRef(encAddr(w.h)), trace.ObjMarker)
	w.write(at+mkSavedTR, mem.MakeInt(int64(w.tr)), trace.ObjMarker)
	w.write(at+mkSavedCP, mem.MakeInt(int64(w.cp)), trace.ObjMarker)
	w.write(at+mkSavedPF, mem.MakeRef(encAddr(w.pf)), trace.ObjMarker)
	w.write(at+mkSavedLo, mem.MakeRef(encAddr(w.localTop)), trace.ObjMarker)
	w.write(at+mkSavedHB, mem.MakeRef(encAddr(w.hb)), trace.ObjMarker)
	w.ctlTop = at + mkSize
	if w.ctlTop > w.ctlHigh {
		w.ctlHigh = w.ctlTop
	}
	w.gm = at
	return at
}

// setSlot updates a goal slot's state and executor.
func (w *worker) setSlot(pfAddr, slot, state, pe int) {
	s := pfAddr + pfHdr + (slot-1)*pfSlotLen
	w.write(s+slotOffState, mem.MakeInt(int64(state)), trace.ObjParcallGlobal)
	w.write(s+slotOffPE, mem.MakeInt(int64(pe)), trace.ObjParcallGlobal)
}

// setSlotTR records the goal's trail segment bounds on its executor.
func (w *worker) setSlotTR(pfAddr, slot, off, tr int) {
	s := pfAddr + pfHdr + (slot-1)*pfSlotLen
	w.write(s+off, mem.MakeInt(int64(tr)), trace.ObjParcallGlobal)
}

// pcallLocal implements OpPCallLocal: the frame owner executes the first
// parallel goal itself.
func (w *worker) pcallLocal(entry int32, slot int) {
	w.inferences++
	w.pushMarker(w.pf, slot)
	w.setSlot(w.pf, slot, slotExec, w.pe)
	w.setSlotTR(w.pf, slot, slotOffStartTR, w.tr)
	w.b = none
	w.b0 = none
	w.hb = w.h
	w.hbFloor = w.h
	w.cp = cpParReturn
	w.pc = entry
}

// startGoal begins executing a goal frame obtained from a goal stack.
func (w *worker) startGoal(pfAddr, slot int, entry int32, args []mem.Word) {
	w.inferences++
	w.pushMarker(pfAddr, slot)
	w.setSlot(pfAddr, slot, slotExec, w.pe)
	w.setSlotTR(pfAddr, slot, slotOffStartTR, w.tr)
	copy(w.regs[:], args)
	owner := int(w.read(pfAddr+pfOwner, trace.ObjParcallGlobal).Int())
	if owner != w.pe {
		w.eng.goalsStolen++
	}
	w.pf = pfAddr // nested parcall frames link below this frame
	w.e = none
	w.b = none
	w.b0 = none
	w.hb = w.h
	w.hbFloor = w.h
	w.cp = cpParReturn
	w.pc = entry
	w.setState(StateRun)
}

// completeGoal finishes the current parallel goal (success or failure),
// updating the parcall frame under its lock and returning the worker to
// its scheduler.
func (w *worker) completeGoal(success bool) {
	m := w.gm
	pfAddr := decAddr(w.read(m+mkPF, trace.ObjMarker))
	slot := int(w.read(m+mkSlot, trace.ObjMarker).Int())

	state := slotDone
	if !success {
		state = slotFailed
	}
	w.setSlot(pfAddr, slot, state, w.pe)
	w.setSlotTR(pfAddr, slot, slotOffEndTR, w.tr)
	if !success {
		w.write(pfAddr+pfStatus, mem.MakeInt(pfFailed), trace.ObjParcallGlobal)
	}

	// Decrement the pending counter under the frame lock.
	w.lockAcquire(pfAddr+pfLock, trace.ObjParcallCount)
	pending := w.read(pfAddr+pfPending, trace.ObjParcallCount).Int()
	w.write(pfAddr+pfPending, mem.MakeInt(pending-1), trace.ObjParcallCount)
	w.lockRelease(pfAddr+pfLock, trace.ObjParcallCount)
	w.noteSchedEvent() // the frame's owner observes pending/status

	// Restore the worker's pre-goal context. The heap section is
	// preserved (it holds the goal's results); the local and control
	// sections are recovered: this model treats completed parallel
	// goals as determinate (their alternatives are discarded — see
	// DESIGN.md), so their environments, choice points and the marker
	// itself are dead on completion. This is the storage recovery the
	// markers exist to provide.
	w.b = decAddr(w.read(m+mkSavedB, trace.ObjMarker))
	w.b0 = decAddr(w.read(m+mkSavedB0, trace.ObjMarker))
	w.e = decAddr(w.read(m+mkSavedE, trace.ObjMarker))
	w.cp = int32(w.read(m+mkSavedCP, trace.ObjMarker).Int())
	w.pf = decAddr(w.read(m+mkSavedPF, trace.ObjMarker))
	w.hb = decAddr(w.read(m+mkSavedHB, trace.ObjMarker))
	w.gm = decAddr(w.read(m+mkPrevGM, trace.ObjMarker))
	if success {
		w.localTop = decAddr(w.read(m+mkSavedLo, trace.ObjMarker))
		w.ctlTop = m
	}
	w.hbFloor = w.goalFloorHB()
	w.failedGoal = !success

	w.schedule()
}

// goalFloorHB recomputes the HB floor after leaving a section.
func (w *worker) goalFloorHB() int {
	if w.gm == none {
		return none
	}
	return decAddr(w.mem.Peek(w.gm + mkSavedH)) // host-side cache of own marker
}

// popLiveGoal pops goals, silently discarding any whose parcall frame is
// no longer running (its pending count is decremented so the failing
// owner can quiesce). Returns the first live goal, if any.
func (w *worker) popLiveGoal(victim *worker) (pfAddr, slot int, entry int32, args []mem.Word, ok bool) {
	for {
		pfAddr, slot, entry, args, ok = w.popGoal(victim)
		if !ok {
			return
		}
		if int(w.mem.Peek(pfAddr+pfStatus).Int()) == pfRunning {
			return
		}
		w.lockAcquire(pfAddr+pfLock, trace.ObjParcallCount)
		pending := w.read(pfAddr+pfPending, trace.ObjParcallCount).Int()
		w.write(pfAddr+pfPending, mem.MakeInt(pending-1), trace.ObjParcallCount)
		w.lockRelease(pfAddr+pfLock, trace.ObjParcallCount)
		w.noteSchedEvent() // the failing owner observes the drained count
	}
}

// schedule looks for the next thing to do after finishing a goal.
func (w *worker) schedule() {
	if w.pf != none && w.frameOwner(w.pf) == w.pe {
		// Own parcall outstanding: continue past it as soon as it
		// completes (pollFrame also drains the goal stack while the
		// frame is pending). Continuation priority bounds the number
		// of live frames.
		w.setState(StateWait)
		w.pollFrame()
		return
	}
	// No frame of our own: drain leftover work, then go idle.
	if int(w.mem.Peek(w.goalR.Base+gsTop).Int()) > gsBase {
		if pfAddr, slot, entry, args, ok := w.popLiveGoal(w); ok {
			w.startGoal(pfAddr, slot, entry, args)
			return
		}
	}
	w.setState(StateIdle)
	w.idleClock = 0
}

// frameOwner reads a frame's owner (host-side: polled every cycle; the
// first inspection was already traced when the frame was created or the
// goal picked up).
func (w *worker) frameOwner(pfAddr int) int {
	return int(w.mem.Peek(pfAddr + pfOwner).Int())
}

// pollFrame is executed on wait cycles: the parent of an outstanding
// parcall watches for completion or failure. Spinning reads hit the
// local cache and are not traced; the state-transition reads are.
func (w *worker) pollFrame() {
	w.inertWait = false
	pfAddr := w.pf
	status := int(w.mem.Peek(pfAddr + pfStatus).Int())
	pending := w.mem.Peek(pfAddr + pfPending).Int()
	if status == pfFailed {
		w.parcallFail(pfAddr)
		return
	}
	if pending > 0 {
		// Still waiting; but goals of this frame may remain unstolen
		// on our own goal stack — run them. The emptiness check is a
		// spin on the worker's own cached top word (untraced, like
		// other busy-waiting); only a real pop pays reference costs.
		if int(w.mem.Peek(w.goalR.Base+gsTop).Int()) > gsBase {
			if pfA, slot, entry, args, ok := w.popLiveGoal(w); ok {
				w.startGoal(pfA, slot, entry, args)
			}
		} else {
			// Nothing to run and nothing changed: until the next
			// scheduler event this poll's outcome is fixed.
			w.inertWait = true
			w.waitSeq = w.eng.schedSeq
		}
		return
	}
	// All goals done: continue at the stored continuation.
	w.read(pfAddr+pfPending, trace.ObjParcallCount) // traced wake-up read
	w.e = decAddr(w.read(pfAddr+pfCE, trace.ObjParcallLocal))
	cont := int32(w.read(pfAddr+pfContP, trace.ObjParcallLocal).Int())
	prev := decAddr(w.read(pfAddr+pfPrevPF, trace.ObjParcallLocal))
	ngoals := int(w.read(pfAddr+pfNGoals, trace.ObjParcallGlobal).Int())
	// Reclaim the frame when it is on top of the local stack and no
	// choice point protects it (the determinate-parcall storage
	// recovery of the model; alternatives inside completed parallel
	// goals are discarded — see DESIGN.md).
	if pfAddr+pfSize(ngoals) == w.localTop && (w.b == none || w.cpSavedLocal(w.b) <= pfAddr) {
		w.localTop = pfAddr
	}
	w.pf = prev
	w.pc = cont
	w.setState(StateRun)
}

// cpSavedLocal reads a choice point's saved local top (host-side).
func (w *worker) cpSavedLocal(b int) int {
	return decAddr(w.mem.Peek(b + cpSavedLo))
}

// parcallFail handles a failed parcall from the owner's side: kill the
// goals still executing, wait for quiescence, recover storage, fail.
func (w *worker) parcallFail(pfAddr int) {
	w.noteSchedEvent() // frame teardown: status/pending/goal stacks move
	ngoals := int(w.mem.Peek(pfAddr + pfNGoals).Int())
	// Discard this frame's un-started goals sitting on our stack
	// (the frame is marked failed, so popLiveGoal drops them and
	// decrements the pending count; live goals of an outer frame stay
	// untouched — they were pushed below and are never reached here).
	if pfA, slot, entry, args, ok := w.popLiveGoal(w); ok {
		// A live goal surfaced (from an outer, still-running frame):
		// put it back by re-pushing and stop purging.
		saved := make([]mem.Word, len(args))
		copy(saved, args)
		regs := w.regs
		copy(w.regs[:], saved)
		w.pushGoal(pfA, slot, entry, len(saved))
		w.regs = regs
	}
	// Kill executing goals on other PEs.
	quiesced := true
	for g := 1; g <= ngoals; g++ {
		s := pfAddr + pfHdr + (g-1)*pfSlotLen
		st := int(w.mem.Peek(s).Int())
		pe := int(w.mem.Peek(s + 1).Int())
		if st == slotExec && pe != w.pe {
			quiesced = false
			if !w.eng.workers[pe].killFlag {
				w.sendMessage(pe, msgKill, pfAddr)
			}
		}
	}
	pending := w.mem.Peek(pfAddr + pfPending).Int()
	if !quiesced || pending > 0 {
		w.setState(StateWait)
		return // poll again next cycle
	}
	// All quiet. First undo the bindings made by goals that COMPLETED
	// on other workers: their trail segments (recorded in the slots)
	// are walked by this worker directly — segment unwinds are sound
	// because a cell can only be rebound after being unbound, and
	// younger trail entries always unwind first. (Bindings made under
	// nested parcalls of a completed goal on third workers are beyond
	// the slot bookkeeping and may persist — see DESIGN.md; all
	// measured benchmarks are determinate.)
	for g := 1; g <= ngoals; g++ {
		s := pfAddr + pfHdr + (g-1)*pfSlotLen
		st := int(w.mem.Peek(s + slotOffState).Int())
		pe := int(w.mem.Peek(s + slotOffPE).Int())
		if st != slotDone || pe == w.pe || pe < 0 {
			continue
		}
		start := int(w.read(s+slotOffStartTR, trace.ObjParcallGlobal).Int())
		end := int(w.read(s+slotOffEndTR, trace.ObjParcallGlobal).Int())
		w.unwindRemoteSegment(pe, start, end)
	}
	// Mark dead, restore the pre-parcall machine state and recover
	// storage, then fail outside the parcall.
	w.write(pfAddr+pfStatus, mem.MakeInt(pfDead), trace.ObjParcallGlobal)
	parentTR := int(w.read(pfAddr+pfParentTR, trace.ObjParcallGlobal).Int())
	parentH := decAddr(w.read(pfAddr+pfParentH, trace.ObjParcallGlobal))
	parentB := decAddr(w.read(pfAddr+pfParentB, trace.ObjParcallGlobal))
	parentCt := decAddr(w.read(pfAddr+pfParentCt, trace.ObjParcallGlobal))
	w.e = decAddr(w.read(pfAddr+pfCE, trace.ObjParcallLocal))
	prev := decAddr(w.read(pfAddr+pfPrevPF, trace.ObjParcallLocal))
	w.unwindTrail(parentTR)
	w.h = parentH
	w.b = parentB
	w.ctlTop = parentCt
	w.localTop = pfAddr
	w.pf = prev
	if w.b != none {
		w.hb = decAddr(w.read(w.b+cpSavedH, trace.ObjChoicePoint))
	} else {
		w.hb = w.hbFloor
	}
	w.setState(StateRun)
	w.fail()
}

// unwindRemoteSegment resets the bindings recorded in another worker's
// trail segment [start, end). The entries are left in place: a later
// unwind walking past them resets already-unbound cells, which is
// harmless.
func (w *worker) unwindRemoteSegment(pe, start, end int) {
	victim := w.eng.workers[pe]
	for i := end - 1; i >= start; i-- {
		entry := w.read(victim.trailR.Base+i, trace.ObjTrail)
		addr := entry.Addr()
		w.write(addr, mem.MakeRef(addr), w.dataObj(addr))
	}
}

// trySteal probes other workers' goal stacks round-robin for work.
func (w *worker) trySteal() {
	n := w.eng.cfg.PEs
	if n == 1 {
		return
	}
	allEmpty := true
	for attempts := 0; attempts < n-1; attempts++ {
		victim := w.eng.workers[w.stealNext]
		// Advance round-robin, skipping self; stealNext stays in
		// [0, n), so the wrap is a compare instead of a divide (this
		// runs every StealInterval cycles on every idle worker).
		if w.stealNext++; w.stealNext == n {
			w.stealNext = 0
		}
		if w.stealNext == w.pe {
			if w.stealNext++; w.stealNext == n {
				w.stealNext = 0
			}
		}
		if victim.pe == w.pe {
			continue
		}
		w.eng.stealProbes++
		// Probe: an idle worker spins on a cached copy of the victim's
		// top-of-stack word; like other busy-waiting this is untraced
		// (the paper separates work references from idle time). Only a
		// successful steal pays the locked-pop reference cost.
		top := int(w.mem.Peek(victim.goalR.Base + gsTop).Int())
		if top <= gsBase {
			continue
		}
		allEmpty = false
		if pfAddr, slot, entry, args, ok := w.popLiveGoal(victim); ok {
			w.startGoal(pfAddr, slot, entry, args)
			return
		}
	}
	if allEmpty {
		// Until a push happens, every future sweep is the same no-op:
		// tick advances only the probe counters while this holds.
		w.idleInert = true
		w.idleSeq = w.eng.schedSeq
	}
}

// handleKill abandons the worker's current parallel goal: every stack
// section in its marker chain is unwound (bindings undone, heap and
// stacks recovered) and nested parcall frames it owns are killed
// transitively.
func (w *worker) handleKill() {
	w.noteSchedEvent() // unwinding wipes this worker's stack and counters
	w.killFlag = false
	// Consume the kill message (traced reads of the message buffer).
	base := w.msgR.Base
	w.lockAcquire(base+mbLock, trace.ObjMessage)
	count := int(w.read(base+mbCount, trace.ObjMessage).Int())
	if count > 0 {
		w.read(base+mbBase+(count-1)*msgLen, trace.ObjMessage)
		w.write(base+mbCount, mem.MakeInt(int64(count-1)), trace.ObjMessage)
	}
	w.lockRelease(base+mbLock, trace.ObjMessage)

	// Unwind the whole marker chain (the entire current goal and any
	// nested sections).
	bottom := none
	for m := w.gm; m != none; {
		bottom = m
		// Kill children of frames created inside this section. The
		// chain from the current PF leads through nested frames down
		// to the goal's own frame (marker.pf), which is not ours to
		// kill — its owner coordinates via parcallFail.
		savedPF := decAddr(w.mem.Peek(m + mkSavedPF))
		goalPF := decAddr(w.mem.Peek(m + mkPF))
		for f := w.pf; f != none && f != savedPF && f != goalPF; {
			w.killFrameChildren(f)
			f = decAddr(w.mem.Peek(f + pfPrevPF))
		}
		w.pf = savedPF
		w.unwindTrail(int(w.read(m+mkSavedTR, trace.ObjMarker).Int()))
		w.h = decAddr(w.read(m+mkSavedH, trace.ObjMarker))
		w.localTop = decAddr(w.read(m+mkSavedLo, trace.ObjMarker))
		w.gm = decAddr(w.read(m+mkPrevGM, trace.ObjMarker))
		m = w.gm
	}
	// Drop anything we queued.
	w.lockAcquire(w.goalR.Base+gsLock, trace.ObjGoalFrame)
	w.write(w.goalR.Base+gsTop, mem.MakeInt(gsBase), trace.ObjGoalFrame)
	w.lockRelease(w.goalR.Base+gsLock, trace.ObjGoalFrame)

	if bottom != none {
		// Tell the killed goal's frame that this slot is gone.
		pfAddr := decAddr(w.read(bottom+mkPF, trace.ObjMarker))
		slot := int(w.read(bottom+mkSlot, trace.ObjMarker).Int())
		w.setSlot(pfAddr, slot, slotKilled, w.pe)
		w.setSlotTR(pfAddr, slot, slotOffEndTR, w.tr)
		w.lockAcquire(pfAddr+pfLock, trace.ObjParcallCount)
		pending := w.read(pfAddr+pfPending, trace.ObjParcallCount).Int()
		w.write(pfAddr+pfPending, mem.MakeInt(pending-1), trace.ObjParcallCount)
		w.lockRelease(pfAddr+pfLock, trace.ObjParcallCount)
		w.ctlTop = bottom
	}
	w.b = none
	w.b0 = none
	w.e = none
	w.hb = none
	w.hbFloor = none
	// If this worker owns an outstanding frame (it was killed while
	// executing one of its own parcall's goals), it must go back to
	// coordinating that frame rather than idling.
	w.schedule()
}

// killFrameChildren marks a dying frame dead and kills its executing
// goals on other PEs.
func (w *worker) killFrameChildren(pfAddr int) {
	w.noteSchedEvent() // nested frame dies: its waiters must re-poll
	w.write(pfAddr+pfStatus, mem.MakeInt(pfDead), trace.ObjParcallGlobal)
	ngoals := int(w.mem.Peek(pfAddr + pfNGoals).Int())
	for g := 1; g <= ngoals; g++ {
		s := pfAddr + pfHdr + (g-1)*pfSlotLen
		st := int(w.mem.Peek(s).Int())
		pe := int(w.mem.Peek(s + 1).Int())
		if st == slotExec && pe != w.pe {
			w.sendMessage(pe, msgKill, pfAddr)
		}
	}
}

// parGoalFail is invoked when backtracking exhausts a parallel goal's
// section (no choice point inside it): the goal fails, which fails the
// whole parcall.
func (w *worker) parGoalFail() {
	m := w.gm
	// Kill descendants: nested parcall frames created inside this
	// section die with it (their remote goals receive kill messages).
	// The goal's own frame (marker.pf) is excluded — the failure is
	// reported to it through completeGoal.
	savedPF := decAddr(w.mem.Peek(m + mkSavedPF))
	goalPF := decAddr(w.mem.Peek(m + mkPF))
	for f := w.pf; f != none && f != savedPF && f != goalPF; {
		w.killFrameChildren(f)
		f = decAddr(w.mem.Peek(f + pfPrevPF))
	}
	// Unwind this section's bindings and storage before reporting.
	w.unwindTrail(int(w.read(m+mkSavedTR, trace.ObjMarker).Int()))
	w.h = decAddr(w.read(m+mkSavedH, trace.ObjMarker))
	w.localTop = decAddr(w.read(m+mkSavedLo, trace.ObjMarker))
	// The marker's words are read by completeGoal before any new
	// section could reuse them, so the control stack can be cut now.
	w.ctlTop = m
	w.completeGoal(false)
}

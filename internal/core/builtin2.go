package core

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// This file implements the structure-inspection and meta-call builtins:
// functor/3, arg/3, =../2 (univ), length/2 and call/1.

// metaCall implements call/1: dereference the goal term in A0 and
// transfer control to its procedure, loading arguments from the
// structure. The continuation is the instruction after the builtin.
// Returns false (failure) for unbound goals, non-callable terms or
// undefined procedures.
func (w *worker) metaCall() bool {
	d := w.deref(w.regs[0])
	var fidx int
	switch d.Tag() {
	case mem.TagCon:
		name := w.eng.code.Syms.AtomName(d.Index())
		var ok bool
		fidx, ok = w.lookupFun(name, 0)
		if !ok {
			return false
		}
	case mem.TagStr:
		f := w.read(d.Addr(), trace.ObjHeap)
		fidx = f.Index()
		arity := w.eng.code.Syms.FunctorAt(fidx).Arity
		for i := 0; i < arity; i++ {
			w.regs[i] = w.read(d.Addr()+1+i, trace.ObjHeap)
		}
	case mem.TagLis:
		// A cons cell is './2'.
		var ok bool
		fidx, ok = w.lookupFun(".", 2)
		if !ok {
			return false
		}
		w.regs[0] = w.read(d.Addr(), trace.ObjHeap)
		w.regs[1] = w.read(d.Addr()+1, trace.ObjHeap)
	default:
		return false
	}
	entry, ok := w.eng.code.Procs[fidx]
	if !ok {
		return false
	}
	w.inferences++
	w.cp = w.pc + 1
	w.b0 = w.b
	w.pc = entry
	return true
}

// lookupFun finds an existing functor index without interning new ones
// (the symbol table is fixed after compilation).
func (w *worker) lookupFun(name string, arity int) (int, bool) {
	for i, f := range w.eng.code.Syms.Functors {
		if f.Arity == arity && f.Name == name {
			return i, true
		}
	}
	return 0, false
}

// biFunctor implements functor/3.
func (w *worker) biFunctor() bool {
	d := w.deref(w.regs[0])
	switch d.Tag() {
	case mem.TagCon, mem.TagInt:
		// functor(atomic, atomic, 0)
		return w.unify(w.regs[1], d) && w.unify(w.regs[2], mem.MakeInt(0))
	case mem.TagLis:
		dotAtom := w.eng.code.Syms.Atom(".")
		return w.unify(w.regs[1], mem.MakeCon(dotAtom)) &&
			w.unify(w.regs[2], mem.MakeInt(2))
	case mem.TagStr:
		f := w.eng.code.Syms.FunctorAt(w.read(d.Addr(), trace.ObjHeap).Index())
		nameAtom := w.eng.code.Syms.Atom(f.Name)
		return w.unify(w.regs[1], mem.MakeCon(nameAtom)) &&
			w.unify(w.regs[2], mem.MakeInt(int64(f.Arity)))
	case mem.TagRef:
		// Construction: functor(T, Name, Arity) with Name/Arity bound.
		name := w.deref(w.regs[1])
		arity := w.deref(w.regs[2])
		if arity.Tag() != mem.TagInt {
			return false
		}
		n := arity.Int()
		if n == 0 {
			if name.Tag() != mem.TagCon && name.Tag() != mem.TagInt {
				return false
			}
			return w.unify(w.regs[0], name)
		}
		if name.Tag() != mem.TagCon || n < 0 || n > 255 {
			return false
		}
		atomName := w.eng.code.Syms.AtomName(name.Index())
		if atomName == "." && n == 2 {
			// Fresh cons cell.
			addr := w.h
			w.checkHeap()
			w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
			w.h++
			w.checkHeap()
			w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
			w.h++
			return w.unify(w.regs[0], mem.MakeLis(addr))
		}
		fidx := w.eng.code.Syms.Fun(atomName, int(n))
		addr := w.h
		w.checkHeap()
		w.write(w.h, mem.MakeFun(fidx), trace.ObjHeap)
		w.h++
		for i := int64(0); i < n; i++ {
			w.checkHeap()
			w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
			w.h++
		}
		return w.unify(w.regs[0], mem.MakeStr(addr))
	}
	return false
}

// biArg implements arg/3: arg(N, Term, Arg).
func (w *worker) biArg() bool {
	n := w.deref(w.regs[0])
	t := w.deref(w.regs[1])
	if n.Tag() != mem.TagInt {
		return false
	}
	idx := n.Int()
	switch t.Tag() {
	case mem.TagStr:
		arity := int64(w.eng.code.Syms.FunctorAt(w.read(t.Addr(), trace.ObjHeap).Index()).Arity)
		if idx < 1 || idx > arity {
			return false
		}
		return w.unify(w.regs[2], w.read(t.Addr()+int(idx), trace.ObjHeap))
	case mem.TagLis:
		if idx < 1 || idx > 2 {
			return false
		}
		return w.unify(w.regs[2], w.read(t.Addr()+int(idx)-1, trace.ObjHeap))
	}
	return false
}

// biUniv implements =../2: Term =.. [Name|Args].
func (w *worker) biUniv() bool {
	d := w.deref(w.regs[0])
	switch d.Tag() {
	case mem.TagCon, mem.TagInt:
		return w.unify(w.regs[1], w.consList([]mem.Word{d}))
	case mem.TagLis:
		dot := mem.MakeCon(w.eng.code.Syms.Atom("."))
		head := w.read(d.Addr(), trace.ObjHeap)
		tail := w.read(d.Addr()+1, trace.ObjHeap)
		return w.unify(w.regs[1], w.consList([]mem.Word{dot, head, tail}))
	case mem.TagStr:
		f := w.eng.code.Syms.FunctorAt(w.read(d.Addr(), trace.ObjHeap).Index())
		items := make([]mem.Word, 0, f.Arity+1)
		items = append(items, mem.MakeCon(w.eng.code.Syms.Atom(f.Name)))
		for i := 1; i <= f.Arity; i++ {
			items = append(items, w.read(d.Addr()+i, trace.ObjHeap))
		}
		return w.unify(w.regs[1], w.consList(items))
	case mem.TagRef:
		// Construction: walk the list in A1.
		var items []mem.Word
		l := w.deref(w.regs[1])
		for l.Tag() == mem.TagLis {
			items = append(items, w.read(l.Addr(), trace.ObjHeap))
			l = w.deref(w.read(l.Addr()+1, trace.ObjHeap))
			if len(items) > 256 {
				return false
			}
		}
		if !(l.Tag() == mem.TagCon && l.Index() == isa.NilAtom) || len(items) == 0 {
			return false
		}
		name := w.deref(items[0])
		if len(items) == 1 {
			if name.Tag() != mem.TagCon && name.Tag() != mem.TagInt {
				return false
			}
			return w.unify(w.regs[0], name)
		}
		if name.Tag() != mem.TagCon {
			return false
		}
		atomName := w.eng.code.Syms.AtomName(name.Index())
		if atomName == "." && len(items) == 3 {
			addr := w.h
			w.checkHeap()
			w.write(w.h, items[1], trace.ObjHeap)
			w.h++
			w.checkHeap()
			w.write(w.h, items[2], trace.ObjHeap)
			w.h++
			return w.unify(w.regs[0], mem.MakeLis(addr))
		}
		fidx := w.eng.code.Syms.Fun(atomName, len(items)-1)
		addr := w.h
		w.checkHeap()
		w.write(w.h, mem.MakeFun(fidx), trace.ObjHeap)
		w.h++
		for _, it := range items[1:] {
			w.checkHeap()
			w.write(w.h, it, trace.ObjHeap)
			w.h++
		}
		return w.unify(w.regs[0], mem.MakeStr(addr))
	}
	return false
}

// consList builds a proper list of the given words on the heap.
func (w *worker) consList(items []mem.Word) mem.Word {
	out := mem.MakeCon(isa.NilAtom)
	for i := len(items) - 1; i >= 0; i-- {
		addr := w.h
		w.checkHeap()
		w.write(w.h, items[i], trace.ObjHeap)
		w.h++
		w.checkHeap()
		w.write(w.h, out, trace.ObjHeap)
		w.h++
		out = mem.MakeLis(addr)
	}
	return out
}

// biLength implements length/2 in both directions (bounded when
// building a fresh list from a length).
func (w *worker) biLength() bool {
	l := w.deref(w.regs[0])
	if l.Tag() == mem.TagLis || (l.Tag() == mem.TagCon && l.Index() == isa.NilAtom) {
		n := int64(0)
		for l.Tag() == mem.TagLis {
			n++
			if n > 1<<20 {
				return false
			}
			l = w.deref(w.read(l.Addr()+1, trace.ObjHeap))
		}
		if !(l.Tag() == mem.TagCon && l.Index() == isa.NilAtom) {
			return false // partial list with unbound tail and unbound N unsupported
		}
		return w.unify(w.regs[1], mem.MakeInt(n))
	}
	if l.Tag() == mem.TagRef {
		n := w.deref(w.regs[1])
		if n.Tag() != mem.TagInt || n.Int() < 0 || n.Int() > 1<<20 {
			return false
		}
		items := make([]mem.Word, n.Int())
		for i := range items {
			w.checkHeap()
			w.write(w.h, mem.MakeRef(w.h), trace.ObjHeap)
			items[i] = mem.MakeRef(w.h)
			w.h++
		}
		return w.unify(w.regs[0], w.consList(items))
	}
	return false
}

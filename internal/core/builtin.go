package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// arith executes an OpArith instruction; false means arithmetic failure
// (type error or division by zero), which backtracks like any failure.
func (w *worker) arith(ins *isa.Instr) bool {
	op := isa.ArithOp(ins.N)
	if op == isa.ArithDeref {
		d := w.deref(w.regs[ins.R2])
		if d.Tag() != mem.TagInt {
			return false
		}
		w.regs[ins.R1] = d
		return true
	}
	a := w.regs[ins.R2]
	if a.Tag() != mem.TagInt {
		return false
	}
	av := a.Int()
	if op == isa.ArithNeg {
		w.regs[ins.R1] = mem.MakeInt(-av)
		return true
	}
	b := w.regs[ins.R3]
	if b.Tag() != mem.TagInt {
		return false
	}
	bv := b.Int()
	var r int64
	switch op {
	case isa.ArithAdd:
		r = av + bv
	case isa.ArithSub:
		r = av - bv
	case isa.ArithMul:
		r = av * bv
	case isa.ArithIDiv, isa.ArithDiv:
		if bv == 0 {
			return false
		}
		r = av / bv
	case isa.ArithMod:
		if bv == 0 {
			return false
		}
		r = av % bv
		if (r < 0 && bv > 0) || (r > 0 && bv < 0) {
			r += bv
		}
	case isa.ArithRem:
		if bv == 0 {
			return false
		}
		r = av % bv
	default:
		return false
	}
	if r > mem.MaxInt || r < mem.MinInt {
		return false
	}
	w.regs[ins.R1] = mem.MakeInt(r)
	return true
}

// builtin executes an OpBuiltin instruction with args in A0..arity-1.
// The jumped result reports that the builtin transferred control
// (meta-call); the caller must not advance pc in that case.
func (w *worker) builtin(b isa.Builtin, arity int) (ok, jumped bool) {
	switch b {
	case isa.BiCall:
		return w.metaCall(), true
	case isa.BiUnify:
		return w.unify(w.regs[0], w.regs[1]), false
	case isa.BiStructEq:
		return w.structEqual(w.regs[0], w.regs[1]), false
	case isa.BiStructNe:
		return !w.structEqual(w.regs[0], w.regs[1]), false
	case isa.BiVar:
		return w.deref(w.regs[0]).Tag() == mem.TagRef, false
	case isa.BiNonvar:
		return w.deref(w.regs[0]).Tag() != mem.TagRef, false
	case isa.BiAtom:
		return w.deref(w.regs[0]).Tag() == mem.TagCon, false
	case isa.BiInteger:
		return w.deref(w.regs[0]).Tag() == mem.TagInt, false
	case isa.BiAtomic:
		t := w.deref(w.regs[0]).Tag()
		return t == mem.TagCon || t == mem.TagInt, false
	case isa.BiGround:
		return w.groundCheck(w.regs[0]), false
	case isa.BiIndep:
		return w.indepCheck(w.regs[0], w.regs[1]), false
	case isa.BiTrue:
		return true, false
	case isa.BiFail:
		return false, false
	case isa.BiWrite:
		w.writeTerm(w.regs[0], 0)
		return true, false
	case isa.BiNl:
		w.eng.out.WriteByte('\n')
		return true, false
	case isa.BiIs:
		v, good := w.evalTerm(w.regs[1], 0)
		if !good {
			return false, false
		}
		return w.unify(w.regs[0], mem.MakeInt(v)), false
	case isa.BiFunctor:
		return w.biFunctor(), false
	case isa.BiArg:
		return w.biArg(), false
	case isa.BiUniv:
		return w.biUniv(), false
	case isa.BiLength:
		return w.biLength(), false
	}
	w.machinePanic(fmt.Sprintf("pe%d: unimplemented builtin %v/%d", w.pe, b, arity))
	panic("unreachable")
}

// structEqual is ==/2: structural identity without binding. Reads are
// traced (the comparison really walks both terms).
func (w *worker) structEqual(a, b mem.Word) bool {
	d1 := w.deref(a)
	d2 := w.deref(b)
	if d1 == d2 {
		return true
	}
	if d1.Tag() != d2.Tag() {
		return false
	}
	switch d1.Tag() {
	case mem.TagRef, mem.TagInt, mem.TagCon:
		return d1 == d2
	case mem.TagLis:
		return w.structEqual(w.read(d1.Addr(), trace.ObjHeap), w.read(d2.Addr(), trace.ObjHeap)) &&
			w.structEqual(w.read(d1.Addr()+1, trace.ObjHeap), w.read(d2.Addr()+1, trace.ObjHeap))
	case mem.TagStr:
		f1 := w.read(d1.Addr(), trace.ObjHeap)
		f2 := w.read(d2.Addr(), trace.ObjHeap)
		if f1 != f2 {
			return false
		}
		arity := w.eng.code.Syms.FunctorAt(f1.Index()).Arity
		for i := 1; i <= arity; i++ {
			if !w.structEqual(w.read(d1.Addr()+i, trace.ObjHeap), w.read(d2.Addr()+i, trace.ObjHeap)) {
				return false
			}
		}
		return true
	}
	return false
}

// evalTerm evaluates a heap-resident arithmetic expression (the BiIs
// slow path, for expressions the compiler did not inline).
func (w *worker) evalTerm(v mem.Word, depth int) (int64, bool) {
	if depth > 100 {
		return 0, false
	}
	d := w.deref(v)
	switch d.Tag() {
	case mem.TagInt:
		return d.Int(), true
	case mem.TagStr:
		f := w.eng.code.Syms.FunctorAt(w.read(d.Addr(), trace.ObjHeap).Index())
		if f.Arity == 1 && (f.Name == "-" || f.Name == "+") {
			a, ok := w.evalTerm(w.read(d.Addr()+1, trace.ObjHeap), depth+1)
			if !ok {
				return 0, false
			}
			if f.Name == "-" {
				return -a, true
			}
			return a, true
		}
		if f.Arity != 2 {
			return 0, false
		}
		a, ok := w.evalTerm(w.read(d.Addr()+1, trace.ObjHeap), depth+1)
		if !ok {
			return 0, false
		}
		b, ok := w.evalTerm(w.read(d.Addr()+2, trace.ObjHeap), depth+1)
		if !ok {
			return 0, false
		}
		switch f.Name {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "//", "/":
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case "mod":
			if b == 0 {
				return 0, false
			}
			m := a % b
			if (m < 0 && b > 0) || (m > 0 && b < 0) {
				m += b
			}
			return m, true
		case "rem":
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}
	}
	return 0, false
}

// writeTerm renders a term to the engine output with traced reads (the
// machine really walks the term to print it).
func (w *worker) writeTerm(v mem.Word, depth int) {
	if depth > 200 {
		w.eng.out.WriteString("...")
		return
	}
	d := w.deref(v)
	switch d.Tag() {
	case mem.TagRef:
		fmt.Fprintf(&w.eng.out, "_G%d", d.Addr())
	case mem.TagInt:
		fmt.Fprintf(&w.eng.out, "%d", d.Int())
	case mem.TagCon:
		w.eng.out.WriteString(w.eng.code.Syms.AtomName(d.Index()))
	case mem.TagLis:
		w.eng.out.WriteByte('[')
		w.writeTerm(w.read(d.Addr(), trace.ObjHeap), depth+1)
		t := w.deref(w.read(d.Addr()+1, trace.ObjHeap))
		for {
			if t.Tag() == mem.TagCon && t.Index() == isa.NilAtom {
				break
			}
			if t.Tag() != mem.TagLis {
				w.eng.out.WriteByte('|')
				w.writeTerm(t, depth+1)
				break
			}
			w.eng.out.WriteByte(',')
			w.writeTerm(w.read(t.Addr(), trace.ObjHeap), depth+1)
			t = w.deref(w.read(t.Addr()+1, trace.ObjHeap))
		}
		w.eng.out.WriteByte(']')
	case mem.TagStr:
		f := w.eng.code.Syms.FunctorAt(w.read(d.Addr(), trace.ObjHeap).Index())
		w.eng.out.WriteString(f.Name)
		w.eng.out.WriteByte('(')
		for i := 1; i <= f.Arity; i++ {
			if i > 1 {
				w.eng.out.WriteByte(',')
			}
			w.writeTerm(w.read(d.Addr()+i, trace.ObjHeap), depth+1)
		}
		w.eng.out.WriteByte(')')
	}
}

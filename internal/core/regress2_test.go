package core

import "testing"

func TestMixedArityClauseDbFails(t *testing.T) {
	// The exact program that previously reported a spurious success:
	// clause/1 and clause/2 coexist; rev's base case is (wrongly) a
	// clause/1 fact, so solve(rev(...)) must fail.
	prog := `
		clause(app([], L, L), true).
		clause(app([H|T], L, [H|R]), app(T, L, R)).
		clause(rev([], [])).
		clause(rev([H|T], R), (rev(T, RT), app(RT, [H], R))).
		clause(member(X, [X|_]), true).
		clause(member(X, [_|T]), member(X, T)).
		clause(C) :- clause2(C).
		clause2(_) :- fail.
		solve(true) :- !.
		solve((A, B)) :- !, solve(A), solve(B).
		solve(G) :- clause(G, B), solve(B).
	`
	res := runQuery(t, prog, "solve(rev([1,2,3,4,5], R))", 1, true)
	if res.Success {
		t.Errorf("query should fail, got success with R=%q", res.Bindings["R"])
	}
}

package core

// Frame layouts (word offsets). All machine frames live in the flat
// shared memory; addresses are stored as ref-tagged words and scalars
// (code labels, counts, trail indexes) as int-tagged words.

// Environment frame (Local stack):
//
//	[0] CE      continuation environment (ref, -1 encoded as int)
//	[1] CP      continuation code address (int)
//	[2] SIZE    number of permanent variables (int)
//	[3..]       Y0..Yn-1
//
// CE/CP/SIZE are the paper's "Envts./control" class (local); the Y slots
// are "Envts./P. Vars." (global: parallel goals dereference into them).
const (
	envCE   = 0
	envCP   = 1
	envSize = 2
	envHdr  = 3
)

// Choice point frame (Control stack):
//
//	[0] prevB       previous choice point (addr or -1)
//	[1] altP        alternative clause code address
//	[2] savedE      environment at creation
//	[3] savedCP     continuation at creation
//	[4] savedH      heap top at creation
//	[5] savedTR     trail index at creation
//	[6] savedPF     parcall frame at creation
//	[7] savedB0     cut barrier at creation
//	[8] savedLocal  local-stack top at creation (for storage recovery)
//	[9] arity       number of saved argument registers
//	[10..]          A0..Ak-1
const (
	cpPrevB   = 0
	cpAltP    = 1
	cpSavedE  = 2
	cpSavedCP = 3
	cpSavedH  = 4
	cpSavedTR = 5
	cpSavedPF = 6
	cpSavedB0 = 7
	cpSavedLo = 8
	cpArity   = 9
	cpHdr     = 10
)

// Marker frame (Control stack). A marker opens a Stack Section: the
// horizontal cut through a worker's stack set corresponding to the
// execution of one parallel goal (paper §1). It records everything
// needed to recover the section's storage on failure or kill, and to
// resume the worker's previous activity on completion.
//
//	[0]  prevGM     previous goal marker (addr or -1)
//	[1]  pf         parcall frame this goal belongs to
//	[2]  slot       goal slot index (1-based)
//	[3]  savedB     B at goal start
//	[4]  savedB0    B0 at goal start
//	[5]  savedE     E at goal start
//	[6]  savedH     H at goal start (section heap base)
//	[7]  savedTR    trail index at goal start
//	[8]  savedCP    CP at goal start
//	[9]  savedPF    PF at goal start
//	[10] savedLocal local-stack top at goal start
//	[11] savedHB    HB at goal start
const (
	mkPrevGM  = 0
	mkPF      = 1
	mkSlot    = 2
	mkSavedB  = 3
	mkSavedB0 = 4
	mkSavedE  = 5
	mkSavedH  = 6
	mkSavedTR = 7
	mkSavedCP = 8
	mkSavedPF = 9
	mkSavedLo = 10
	mkSavedHB = 11
	mkSize    = 12
)

// Parcall frame (Local stack):
//
//	[0]  prevPF     previous parcall frame (addr or -1)
//	[1]  CE         environment at frame creation
//	[2]  contP      continuation code address (after the CGE)
//	[3]  ngoals     number of parallel goals
//	[4]  lock       completion-counter lock word
//	[5]  pending    goals not yet completed (under lock)
//	[6]  status     0 = running, 1 = failed, 2 = dead
//	[7]  owner      PE that created the frame
//	[8]  parentB    B at frame creation (restored on parcall failure)
//	[9]  parentH    H at frame creation
//	[10] parentTR   trail index at frame creation
//	[11] parentCtl  control-stack top at frame creation
//	[12..] slots    per goal: {state, pe, startTR, endTR} — state 0
//	                pending, 1 executing, 2 done, 3 failed, 4 killed;
//	                startTR/endTR delimit the goal's segment on its
//	                executor's trail (used to undo a completed remote
//	                goal's bindings when the parcall later fails)
//
// Classification per paper Table 1: prevPF/CE/contP are Parcall/Local;
// ngoals/status/owner/parent*/slots are Parcall/Global; lock+pending are
// Parcall/Counts (locked).
const (
	pfPrevPF   = 0
	pfCE       = 1
	pfContP    = 2
	pfNGoals   = 3
	pfLock     = 4
	pfPending  = 5
	pfStatus   = 6
	pfOwner    = 7
	pfParentB  = 8
	pfParentH  = 9
	pfParentTR = 10
	pfParentCt = 11
	pfHdr      = 12
	pfSlotLen  = 4

	slotOffState   = 0
	slotOffPE      = 1
	slotOffStartTR = 2
	slotOffEndTR   = 3
)

// Goal slot states.
const (
	slotPending = 0
	slotExec    = 1
	slotDone    = 2
	slotFailed  = 3
	slotKilled  = 4
)

// Parcall frame status values.
const (
	pfRunning = 0
	pfFailed  = 1
	pfDead    = 2
)

func pfSize(ngoals int) int { return pfHdr + ngoals*pfSlotLen }

// Goal stack layout (per worker):
//
//	[0] lock
//	[1] top (word offset of next free word, relative to area base)
//	[2..] goal frames
//
// Goal frame:
//
//	[0] pf      parcall frame address
//	[1] slot    goal slot index
//	[2] entryP  procedure entry label
//	[3] arity
//	[4..] args  argument registers A0..Ak-1
const (
	gsLock  = 0
	gsTop   = 1
	gsBase  = 2
	gfPF    = 0
	gfSlot  = 1
	gfEntry = 2
	gfArity = 3
	gfHdr   = 4
)

// Message buffer layout (per worker):
//
//	[0] lock
//	[1] count
//	[2..] messages, 2 words each: {type, arg}
const (
	mbLock  = 0
	mbCount = 1
	mbBase  = 2
	msgLen  = 2
)

// Message types.
const (
	// msgKill asks the receiving worker to abandon and unwind its
	// current parallel goal (and everything nested inside it).
	msgKill = 1
	// msgUnwind asks the receiver to recover the storage of a
	// completed section (best-effort; see core package docs).
	msgUnwind = 2
)

// Sentinel code addresses used in CP.
const (
	// cpParReturn marks the return point of a parallel goal: proceed
	// lands in the worker's goal-completion handler.
	cpParReturn = -2
	// cpQueryDone marks the bottom of the query's continuation chain.
	cpQueryDone = -3
	// none is the nil address.
	none = -1
)

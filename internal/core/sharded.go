package core

// Sharded multi-PE execution (Config.ExecShards > 1): the emulation
// loop's answer to the multi-PE scaling inversion. runMulti interleaves
// every simulated PE on one goroutine, so adding PEs makes generation
// slower; but between observable scheduler events the PEs' instruction
// streams are mostly independent — in RWT2 the per-PE reference streams
// are already encoded independently, and only the events that bump
// Engine.schedSeq (goal pushes/pops, parcall pending/status writes,
// messages, halts) need a canonical total order.
//
// The mode exploits that in epochs. When every worker is provably
// quiescent-or-running (the same inertness conditions the quantum
// dispatcher uses, generalized past one runner), each running PE
// speculates ahead on a host goroutine: pure straight-line steps only,
// stopping before anything observable — a statically risky opcode
// (OpStop, OpPFrame, OpPushGoal, write/1, nl/0), a control sentinel
// (goal completion), or a dynamic guard (failing out of a goal). The
// per-PE references land in private mem.ShardStage buffers with
// per-cycle boundaries, and every speculated memory write is value-
// logged (mem.UndoEntry) so the epoch is exactly reversible.
//
// After the join the epoch is validated before anything commits. The
// AND-parallel independence conditions (CGE ground/indep checks) make
// cross-PE overlap rare, but not impossible inside one epoch: a stolen
// goal legitimately binds its result variable in the parent's
// environment, and if the parent's own goal touches that cell in the
// same epoch, the phase's real-time interleaving is not the canonical
// cycle order. So commit is gated on a footprint check: every address
// one shard wrote, held against every address any other shard touched
// (the write logs give the write sets, the reference buffers the
// touched sets, and a flat per-word mark array makes the scan one pass
// over each). If the footprints are disjoint, the interleaving was
// immaterial and the epoch's prefix is canonical by construction; on
// any overlap the whole epoch is discarded — every write rolled back to
// its pre-epoch word (the atomic-swap undo log recovers even a multi-
// writer word's base value), every register file restored from the
// epoch-base snapshot — and the machine re-runs the span serially,
// which is always canonical.
//
// A validated epoch commits the prefix every runner completed — cycles
// base+1..M, M the minimum stop cycle — merging the per-PE buffers into
// the shared staging buffer in the reference round-robin's canonical
// (cycle, PE) order, and settles inert workers' elided bookkeeping in
// closed form, exactly as runQuantum settles a sole-runner quantum.
// Speculation beyond M is rolled back (undo log + snapshot replay up to
// M), not kept: a runner left "ahead" of the serial loop could race
// with the serial steps other workers take while its pre-executed
// cycles drain — a cross-shard conflict the epoch-local footprint check
// cannot see — so no shard outlives its epoch. The trace is therefore
// byte-identical to runMulti's: same references, same order, same
// flush-independence, which the golden digest suite pins at several
// shard counts with no EmulatorVersion bump.
//
// Speculation can also abort mid-step (a dynamic guard panic, a machine
// fault on a conflict-poisoned path): the context is marked needsReplay
// — its completed cycles stay valid, the partial step's references are
// discarded (dirty-marked so Release still re-zeroes the written
// words), and the registers are rebuilt by undo-log rollback plus
// snapshot replay. The replay re-executes pure steps on restored base
// memory, so it repeats the speculation's own committed cycles exactly.

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/mem"
)

// errSpecUnsafe is the panic value of the dynamic speculation guards
// (fail/noteSchedEvent/setState reached under worker.spec); specRun's
// recover turns any panic into a rollback, so the value only documents
// the site.
type specUnsafe struct{}

var errSpecUnsafe = specUnsafe{}

// epochCycles bounds one epoch's speculation depth. Longer epochs
// amortize the per-epoch costs (snapshot, goroutine fan-out, merge)
// over more parallel work; shorter ones bound the work a conflict
// discard or an abort replay throws away. 64K cycles ≈ one
// staging-buffer's worth of references per PE.
const epochCycles = 1 << 16

// epochIdleHold is the serial-cycle pause after an epoch that made no
// parallel progress (every runner stopped on its very next step);
// conflictHold is the much longer pause after a discarded epoch —
// conflicts cluster (a parent and a stolen goal sharing a result
// variable stay in conflict for the goal's whole span), so retrying
// immediately would discard epoch after epoch.
const (
	epochIdleHold = 64
	conflictHold  = 4096
)

// riskyOps marks opcodes whose execution can perform an observable
// scheduler action or touch engine-shared state: OpStop halts,
// OpPFrame/OpPushGoal create observable work, and OpBuiltin covers
// write/1 and nl/0's shared output buffer (specRun screens the builtin
// number so every other builtin still speculates). Everything else is
// pure per-PE execution: it reads and writes only through mem.Memory
// and this worker's registers.
var riskyOps [256]bool

func init() {
	riskyOps[isa.OpStop] = true
	riskyOps[isa.OpPFrame] = true
	riskyOps[isa.OpPushGoal] = true
	riskyOps[isa.OpBuiltin] = true
}

// shardCtx is one PE's speculation context, reused across epochs. A
// shard lives only inside runEpoch: by the time an epoch returns, every
// shard is either committed-and-repaired or rolled back.
type shardCtx struct {
	w    *worker
	snap worker // full register/state snapshot at the epoch base cycle

	// stage holds the speculated references and the write undo log;
	// cycEnd[i] is the reference-buffer length after completing cycle
	// base+1+i, so the refs of cycle c are stage.Refs[bound(c-1):bound(c)].
	stage  mem.ShardStage
	cycEnd []int32

	base int64 // last cycle completed before the epoch
	pos  int64 // last speculated cycle that completed
	// needsReplay marks registers invalid (the speculation aborted
	// mid-step); the completed cycles and their references stay valid.
	needsReplay bool
}

// bound returns the stage offset at the end of cycle c.
func (sc *shardCtx) bound(c int64) int {
	if c <= sc.base {
		return 0
	}
	return int(sc.cycEnd[c-sc.base-1])
}

// runSharded drives a multi-PE machine with speculative parallel
// epochs. Outside epochs it is cycle-for-cycle the runMulti dispatcher
// (including sole-runner quanta); epochs replace spans of it wholesale
// and leave the machine exactly where the serial dispatcher would.
func (e *Engine) runSharded() error {
	maxC := e.cfg.MaxCycles
	stop := e.cfg.Cancel
	// Epoch commits advance e.cycle in jumps, so the round-robin's
	// "cycle is a multiple of cancelMask+1" poll condition could be
	// skipped indefinitely; poll on a threshold instead.
	nextPoll := e.cycle
	for !e.halted {
		if e.cycle >= maxC {
			return e.errRunaway()
		}
		if stop != nil && e.cycle >= nextPoll {
			nextPoll = e.cycle + cancelMask + 1
			if canceled(stop) {
				return context.Canceled
			}
		}
		if e.nRun >= 2 && e.epochHold == 0 && e.epochEligible() {
			e.runEpoch()
			continue
		}
		if e.epochHold > 0 {
			e.epochHold--
		}
		e.cycle++
		for _, w := range e.workers {
			if e.halted {
				break
			}
			switch {
			case w.state == StateRun && !w.killFlag:
				w.runCycles++
				w.step()
			case w.state == StateWait && !w.killFlag && w.inertWait && w.waitSeq == e.schedSeq:
				w.waitCycles++
			default:
				w.tick()
			}
		}
		if e.halted {
			break
		}
		if e.nRun == 1 {
			if r := e.soleRunner(); r != nil {
				if err := e.runQuantum(r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// epochEligible reports whether every worker is in a state the epoch
// can account for without per-cycle ticks: runners just run (they are
// the epoch), waiters must be provably inert (frame running, goals
// outstanding, own goal stack empty — the sole-runner conditions per
// waiter), and idle workers need every goal stack empty (their steal
// sweeps stay no-ops). Pending kill flags are delivered serially
// first.
func (e *Engine) epochEligible() bool {
	anyIdle := false
	for _, w := range e.workers {
		if w.killFlag {
			return false
		}
		switch w.state {
		case StateRun:
		case StateWait:
			if int(e.mem.Peek(w.pf+pfStatus).Int()) != pfRunning ||
				e.mem.Peek(w.pf+pfPending).Int() <= 0 ||
				int(e.mem.Peek(w.goalR.Base+gsTop).Int()) > gsBase {
				return false
			}
		case StateIdle:
			anyIdle = true
		default: // StateHalt only co-occurs with e.halted
			return false
		}
	}
	if anyIdle {
		for _, w := range e.workers {
			if int(e.mem.Peek(w.goalR.Base+gsTop).Int()) > gsBase {
				return false
			}
		}
	}
	return true
}

// runEpoch speculates every runnable PE forward in parallel, validates
// the epoch's footprints, and commits the canonical prefix (or rolls
// the whole epoch back on a cross-shard conflict). On entry cycle
// e.cycle has fully completed; on return every shard is quiescent and
// the machine state is exactly the serial dispatcher's at e.cycle.
func (e *Engine) runEpoch() {
	base := e.cycle
	limit := base + epochCycles
	if limit > e.cfg.MaxCycles {
		limit = e.cfg.MaxCycles
	}
	parts := e.parts[:0]
	for _, w := range e.workers {
		if w.state != StateRun {
			continue
		}
		sc := &e.shards[w.pe]
		sc.w = w
		sc.snap = *w
		sc.base, sc.pos = base, base
		sc.needsReplay = false
		e.mem.SetShard(w.pe, &sc.stage)
		parts = append(parts, sc)
	}
	e.parts = parts

	// Phase 1: each host shard drives a strided subset of the runners.
	// A shared stop watermark bounds the min-prefix waste: runners stop
	// at wildly different cycles (one hits a parcall frame immediately
	// while another has a 64K-cycle straight-line span), and everything
	// past the earliest stop is discarded at commit — so once any runner
	// stops, the rest quit speculating at its watermark instead of
	// running to the epoch limit. The watermark's real-time propagation
	// affects wall-clock only: every published value is itself bounded
	// below by the minimum deterministic stop cycle, so the commit
	// prefix M — the min over stop positions — is exactly that minimum
	// in every run, and the committed trace cannot see the timing.
	var specStop atomic.Int64
	specStop.Store(limit)
	g := e.execShards
	if g > len(parts) {
		g = len(parts)
	}
	if g <= 1 {
		for _, sc := range parts {
			e.specRun(sc, &specStop)
		}
	} else {
		var wg sync.WaitGroup
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := i; j < len(parts); j += g {
					e.specRun(parts[j], &specStop)
				}
			}(i)
		}
		wg.Wait()
	}
	e.mem.ClearShards()

	// Phase 2: validate. Any cross-shard footprint overlap means the
	// real-time interleaving may not match the canonical cycle order
	// anywhere in the epoch (a racing read poisons every later cycle of
	// its shard), so the epoch commits all-or-nothing. Consecutive
	// discards escalate the serial hold exponentially: a conflicting
	// phase (a parent and a stolen goal around one result variable)
	// conflicts for its whole span, and retrying inside it throws a
	// full epoch's speculation away every time.
	if len(parts) > 1 && e.epochConflicts(parts) {
		e.discardEpoch(parts)
		e.epochHold = conflictHold << min(e.conflictStreak, 4)
		e.conflictStreak++
		return
	}
	e.conflictStreak = 0

	// Phase 3: commit the prefix every runner completed, in canonical
	// (cycle, PE-ascending) order; settle the inert workers' elided
	// bookkeeping in closed form (valid because pure steps bump no
	// scheduler sequence: nothing observable happened in the span).
	// Speculation beyond M is rolled back, not released: a shard left
	// running ahead of the serial loop could conflict with the serial
	// steps other workers take in the meantime, and no epoch-local
	// check can see that.
	m := limit
	for _, sc := range parts {
		if sc.pos < m {
			m = sc.pos
		}
	}
	if m > base {
		for c := base + 1; c <= m; c++ {
			for _, sc := range parts {
				e.mem.StageMerged(sc.stage.Refs[sc.bound(c-1):sc.bound(c)])
			}
		}
		for _, w := range e.workers {
			if w.state != StateRun {
				w.accountInert(m - base)
			}
		}
		e.cycle = m
	}
	for _, sc := range parts {
		if sc.pos > m || sc.needsReplay {
			e.replayShard(sc, m)
		} else {
			e.truncateShard(sc, m)
		}
		sc.stage.Refs = sc.stage.Refs[:0]
		sc.stage.Undo = sc.stage.Undo[:0]
		sc.cycEnd = sc.cycEnd[:0]
	}
	if m == base {
		// Every runner stopped on its very next step (a risky opcode or
		// a goal-completion sentinel): run serially for a while before
		// paying the epoch setup again.
		e.epochHold = epochIdleHold
	}
}

// epochConflicts reports whether any shard's write set intersects
// another shard's touched set. It marks every written word in a flat
// per-word array (lazily sized to the address space), scans every
// reference against the marks, then unmarks — O(refs) per epoch with
// no allocation after the first. Same-shard overlap is fine (a PE may
// rewrite and re-read its own words freely); only cross-shard overlap
// invalidates the epoch.
//
//rapwam:hotpath
func (e *Engine) epochConflicts(parts []*shardCtx) bool {
	if e.specMark == nil {
		e.specMark = make([]uint8, e.mem.Size())
	}
	mark := e.specMark
	conflict := false
	for _, sc := range parts {
		tag := uint8(sc.w.pe) + 1
		for _, u := range sc.stage.Undo {
			if t := mark[u.Addr]; t != 0 && t != tag {
				conflict = true // write/write overlap
			}
			mark[u.Addr] = tag
		}
	}
	if !conflict {
	scan:
		for _, sc := range parts {
			tag := uint8(sc.w.pe) + 1
			for _, r := range sc.stage.Refs {
				if t := mark[r.Addr]; t != 0 && t != tag {
					conflict = true // read or write of another shard's write
					break scan
				}
			}
		}
	}
	for _, sc := range parts {
		for _, u := range sc.stage.Undo {
			mark[u.Addr] = 0
		}
	}
	return conflict
}

// discardEpoch rolls a conflicted epoch back completely: every
// speculated write is restored to its pre-epoch word and every
// register file to the epoch-base snapshot, so the serial loop resumes
// at cycle base as if the epoch never ran (the discarded references
// are dirty-marked for Release, which is the only trace they leave).
//
// Restoring a word that several shards wrote takes care: the shards'
// undo logs interleave in an unknown real-time order, so no per-shard
// backward replay recovers the base value. But each log entry's Old was
// captured by the publishing atomic swap, so across all writes to one
// address the displaced values chain — every Old is some conflicting
// write's New, except the pre-epoch word (and the final write's New
// survives only in memory). The base value is therefore the multiset
// difference Olds − News; when the difference is empty the final write
// restored the base value by itself.
func (e *Engine) discardEpoch(parts []*shardCtx) {
	writerOf := make(map[uint32]uint8)
	var multi map[uint32]bool
	for _, sc := range parts {
		tag := uint8(sc.w.pe) + 1
		for _, u := range sc.stage.Undo {
			if t, ok := writerOf[u.Addr]; ok && t != tag {
				if multi == nil {
					multi = make(map[uint32]bool)
				}
				multi[u.Addr] = true
			}
			writerOf[u.Addr] = tag
		}
	}
	for _, sc := range parts {
		for i := len(sc.stage.Undo) - 1; i >= 0; i-- {
			u := sc.stage.Undo[i]
			if multi[u.Addr] {
				continue // resolved below from the displaced-value chain
			}
			e.mem.Poke(int(u.Addr), u.Old)
		}
	}
	for addr := range multi {
		counts := make(map[mem.Word]int)
		for _, sc := range parts {
			for _, u := range sc.stage.Undo {
				if u.Addr == addr {
					counts[u.Old]++
					counts[u.New]--
				}
			}
		}
		for w, n := range counts {
			if n > 0 {
				e.mem.Poke(int(addr), w)
				break
			}
		}
	}
	for _, sc := range parts {
		*sc.w = sc.snap
		e.mem.MarkDirtyRefs(sc.stage.Refs)
		sc.stage.Refs = sc.stage.Refs[:0]
		sc.stage.Undo = sc.stage.Undo[:0]
		sc.cycEnd = sc.cycEnd[:0]
		sc.needsReplay = false
	}
}

// specRun speculates one PE's pure straight-line cycles up to the
// shared stop watermark, recording per-cycle reference boundaries.
// Runs on a shard goroutine: it touches only this worker's state,
// memory words (through the race-clean shard paths — overlap with
// another shard is legal here and caught by the commit-time footprint
// check) and its own ShardStage. On exit it lowers the watermark to
// its own stop position, so sibling runners stop overshooting the
// commit prefix.
func (e *Engine) specRun(sc *shardCtx, stop *atomic.Int64) {
	w := sc.w
	w.spec = true
	defer func() {
		w.spec = false
		w.runCycles += sc.pos - sc.base
		if r := recover(); r != nil {
			// Completed cycles stay valid; the interrupted step's
			// partial effects are discarded and the registers rebuilt
			// by snapshot replay. Aborts are expected: dynamic guards
			// (failing out of a goal), and machine faults on paths
			// poisoned by a cross-shard conflict the commit check is
			// about to discard anyway.
			sc.needsReplay = true
		}
		for {
			cur := stop.Load()
			if sc.pos >= cur || stop.CompareAndSwap(cur, sc.pos) {
				break
			}
		}
	}()
	code := w.code
	for sc.pos < stop.Load() {
		pc := w.pc
		if pc < 0 {
			break // control sentinel: goal completion or query return
		}
		ins := &code[pc]
		if riskyOps[ins.Op] {
			if ins.Op != isa.OpBuiltin {
				break
			}
			if bi := isa.Builtin(ins.N); bi == isa.BiWrite || bi == isa.BiNl {
				break
			}
		}
		w.step()
		sc.pos++
		sc.cycEnd = append(sc.cycEnd, int32(len(sc.stage.Refs)))
	}
}

// truncateShard discards speculated references beyond cycle k. They
// never reach the trace or the counters, but their writes touched
// memory, so the dirty bitmap must still cover them for Release.
func (e *Engine) truncateShard(sc *shardCtx, k int64) {
	lo := sc.bound(k)
	if lo < len(sc.stage.Refs) {
		e.mem.MarkDirtyRefs(sc.stage.Refs[lo:])
		sc.stage.Refs = sc.stage.Refs[:lo]
	}
	sc.cycEnd = sc.cycEnd[:k-sc.base]
}

// replayShard rebuilds the worker's exact state at the end of cycle k
// from the epoch-base snapshot: apply the shard's whole undo log
// backward (restoring every speculated word to its pre-epoch value — a
// complete memory rollback, sound even where a trail unwind is not:
// discarded cycles can pop and re-push stack storage, overwriting
// live-at-k choice points or environments that no trail entry covers),
// restore the snapshot registers, then re-execute the pure prefix
// base+1..k with emissions routed to a scratch buffer and dropped —
// the canonical copies of those references are already in the
// canonical stream, and the re-executed writes restore the canonical
// memory at k. Deterministic: the epoch was conflict-free (a
// conflicted epoch is discarded whole, never replayed), so on restored
// base memory the replay repeats the speculation's own steps exactly.
// Kills cannot intervene: they are sent serially, and every shard is
// repaired before runEpoch returns, so the snapshot's kill flag is
// still current.
func (e *Engine) replayShard(sc *shardCtx, k int64) {
	w := sc.w
	e.mem.UndoWrites(&sc.stage)
	*w = sc.snap
	e.truncateShard(sc, k)
	if k > sc.base {
		e.mem.SetShard(w.pe, &e.scratch)
		for c := sc.base; c < k; c++ {
			w.step()
		}
		e.mem.ClearShards()
		e.scratch.Refs = e.scratch.Refs[:0]
		e.scratch.Undo = e.scratch.Undo[:0]
		w.runCycles += k - sc.base
	}
	sc.pos = k
	sc.needsReplay = false
}

package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// worker is one RAP-WAM abstract machine: a full register set plus its
// regions of the shared address space (its Stack Set).
type worker struct {
	eng *Engine
	pe  int

	// Regions.
	heap, local, ctl, trailR, pdlR, goalR, msgR mem.Region

	// Machine registers (host-side; register-file accesses are not
	// memory references, as in the WAM).
	regs [isa.NumRegs]mem.Word
	pc   int32 // code pointer
	cp   int32 // continuation code pointer (or sentinel)
	e    int   // current environment (addr or none)
	b    int   // youngest choice point (addr or none)
	b0   int   // cut barrier
	h    int   // heap top (next free)
	hb   int   // heap backtrack point
	s    int   // structure pointer (read mode)
	mode uint8 // read/write unification mode
	tr   int   // trail index (entries, not addr)
	pf   int   // current parcall frame (addr or none)
	gm   int   // current goal marker (addr or none)

	localTop int // next free local-stack word
	ctlTop   int // next free control-stack word
	hbFloor  int // HB floor for the current goal section

	// High-water marks for storage reporting.
	localHigh, ctlHigh, trHigh int

	state      WorkerState
	killFlag   bool
	instrs     int64
	inferences int64
	workRefs   int64
	runCycles  int64
	waitCycles int64
	idleCycles int64
	idleClock  int  // cycles since last steal probe
	stealNext  int  // next victim PE to probe
	failedGoal bool // last goal completion was a failure
}

const (
	modeRead  = 0
	modeWrite = 1
)

func newWorker(e *Engine, pe int) *worker {
	w := &worker{
		eng:    e,
		pe:     pe,
		heap:   e.mem.Region(pe, trace.AreaHeap),
		local:  e.mem.Region(pe, trace.AreaLocal),
		ctl:    e.mem.Region(pe, trace.AreaControl),
		trailR: e.mem.Region(pe, trace.AreaTrail),
		pdlR:   e.mem.Region(pe, trace.AreaPDL),
		goalR:  e.mem.Region(pe, trace.AreaGoal),
		msgR:   e.mem.Region(pe, trace.AreaMsg),
		state:  StateIdle,
		e:      none, b: none, b0: none, pf: none, gm: none,
		hbFloor:   none,
		hb:        none,
		stealNext: (pe + 1) % e.cfg.PEs,
	}
	w.h = w.heap.Base
	w.localTop = w.local.Base
	w.ctlTop = w.ctl.Base
	w.localHigh = w.localTop
	w.ctlHigh = w.ctlTop
	// Initialize goal stack header (untraced machine bring-up).
	e.mem.Poke(w.goalR.Base+gsLock, 0)
	e.mem.Poke(w.goalR.Base+gsTop, mem.MakeInt(gsBase))
	e.mem.Poke(w.msgR.Base+mbLock, 0)
	e.mem.Poke(w.msgR.Base+mbCount, mem.MakeInt(0))
	return w
}

// --- instrumented memory access ---

func (w *worker) read(addr int, obj trace.ObjType) mem.Word {
	w.workRefs++
	return w.eng.mem.Read(w.pe, addr, obj)
}

func (w *worker) write(addr int, v mem.Word, obj trace.ObjType) {
	w.workRefs++
	w.eng.mem.Write(w.pe, addr, v, obj)
}

// dataObj classifies an address for value reads performed during
// dereferencing and unification: heap cells, environment variables (own
// or remote) or goal-frame words.
func (w *worker) dataObj(addr int) trace.ObjType {
	_, area := w.eng.mem.Classify(addr)
	switch area {
	case trace.AreaHeap:
		return trace.ObjHeap
	case trace.AreaLocal:
		return trace.ObjEnvPVar
	case trace.AreaGoal:
		return trace.ObjGoalFrame
	case trace.AreaControl:
		return trace.ObjChoicePoint
	case trace.AreaMsg:
		return trace.ObjMessage
	}
	return trace.ObjHeap
}

// --- overflow checks (simulation-level resource errors) ---

func (w *worker) checkHeap() {
	if w.h >= w.heap.Limit {
		panic(machineError{fmt.Sprintf("pe%d: heap overflow", w.pe)})
	}
}

func (w *worker) checkLocal(n int) {
	if w.localTop+n > w.local.Limit {
		panic(machineError{fmt.Sprintf("pe%d: local stack overflow", w.pe)})
	}
}

func (w *worker) checkCtl(n int) {
	if w.ctlTop+n > w.ctl.Limit {
		panic(machineError{fmt.Sprintf("pe%d: control stack overflow", w.pe)})
	}
}

type machineError struct{ msg string }

func (e machineError) Error() string { return e.msg }

// --- trail ---

func (w *worker) trailAddr(i int) int { return w.trailR.Base + i }

// pushTrail records a binding address for backtracking.
func (w *worker) pushTrail(addr int) {
	if w.trailAddr(w.tr) >= w.trailR.Limit {
		panic(machineError{fmt.Sprintf("pe%d: trail overflow", w.pe)})
	}
	w.write(w.trailAddr(w.tr), mem.MakeRef(addr), trace.ObjTrail)
	w.tr++
	if w.tr > w.trHigh {
		w.trHigh = w.tr
	}
}

// unwindTrail resets bindings down to trail index target.
func (w *worker) unwindTrail(target int) {
	for w.tr > target {
		w.tr--
		entry := w.read(w.trailAddr(w.tr), trace.ObjTrail)
		addr := entry.Addr()
		w.write(addr, mem.MakeRef(addr), w.dataObj(addr))
	}
}

// --- cycle execution ---

// tick advances this worker by one simulation step.
func (w *worker) tick() {
	switch w.state {
	case StateHalt:
		return
	case StateRun:
		if w.killFlag && w.gm != none {
			w.handleKill()
			return
		}
		w.runCycles++
		w.step()
	case StateWait:
		if w.killFlag && w.gm != none {
			w.handleKill()
			return
		}
		w.waitCycles++
		w.pollFrame()
	case StateIdle:
		w.killFlag = false // nothing to kill
		w.idleCycles++
		w.idleClock++
		if w.idleClock >= w.eng.cfg.StealInterval {
			w.idleClock = 0
			w.trySteal()
		}
	}
}

// step executes one instruction, converting machine errors into engine
// aborts with context.
func (w *worker) step() {
	defer func() {
		if r := recover(); r != nil {
			if me, ok := r.(machineError); ok {
				panic(fmt.Errorf("cycle %d pc %d: %s", w.eng.cycle, w.pc, me.msg))
			}
			panic(r)
		}
	}()
	if w.pc < 0 {
		if w.eng.debug {
			fmt.Printf("c%d pe%d sentinel %d state=%v pf=%d gm=%d b=%d\n", w.eng.cycle, w.pe, w.pc, w.state, w.pf, w.gm, w.b)
		}
		w.controlSentinel(w.pc)
		return
	}
	ins := w.eng.code.Instrs[w.pc]
	if w.eng.debug {
		fmt.Printf("c%d pe%d pc%d %v | e=%d b=%d pf=%d gm=%d lt=%d ct=%d\n", w.eng.cycle, w.pe, w.pc, ins, w.e, w.b, w.pf, w.gm, w.localTop, w.ctlTop)
	}
	w.instrs++
	w.execute(ins)
}

// controlSentinel handles CP sentinels reached via proceed/execute.
func (w *worker) controlSentinel(pc int32) {
	switch pc {
	case cpQueryDone:
		// The query's last call proceeded without OpStop — treat as
		// success without bindings (defensive; OpStop is the normal
		// path).
		w.eng.halt(true, w.e)
	case cpParReturn:
		w.completeGoal(true)
	default:
		panic(machineError{fmt.Sprintf("pe%d: bad code address %d", w.pe, pc)})
	}
}

// --- goal stack operations (locked; Table 1 "Goal Frames") ---

// lockAcquire models a test-and-set acquisition: one read and one write
// of the lock word. In the deterministic interleaving each step is
// atomic, so acquisition always succeeds; the cost remains.
func (w *worker) lockAcquire(addr int, obj trace.ObjType) {
	w.read(addr, obj)
	w.write(addr, mem.MakeInt(1), obj)
}

func (w *worker) lockRelease(addr int, obj trace.ObjType) {
	w.write(addr, mem.MakeInt(0), obj)
}

// pushGoal pushes a goal frame onto this worker's goal stack.
func (w *worker) pushGoal(pfAddr int, slot int, entry int32, arity int) {
	base := w.goalR.Base
	w.lockAcquire(base+gsLock, trace.ObjGoalFrame)
	top := int(w.read(base+gsTop, trace.ObjGoalFrame).Int())
	frameLen := gfHdr + arity + 1 // +1 for the back-pointer word
	if base+top+frameLen > w.goalR.Limit {
		panic(machineError{fmt.Sprintf("pe%d: goal stack overflow", w.pe)})
	}
	at := base + top
	w.write(at+gfPF, mem.MakeRef(pfAddr), trace.ObjGoalFrame)
	w.write(at+gfSlot, mem.MakeInt(int64(slot)), trace.ObjGoalFrame)
	w.write(at+gfEntry, mem.MakeInt(int64(entry)), trace.ObjGoalFrame)
	w.write(at+gfArity, mem.MakeInt(int64(arity)), trace.ObjGoalFrame)
	for i := 0; i < arity; i++ {
		w.write(at+gfHdr+i, w.regs[i], trace.ObjGoalFrame)
	}
	// Back-pointer: the word just below the new top holds this frame's
	// start offset, making pops O(1) with variable-length frames.
	w.write(at+gfHdr+arity, mem.MakeInt(int64(top)), trace.ObjGoalFrame)
	w.write(base+gsTop, mem.MakeInt(int64(top+frameLen)), trace.ObjGoalFrame)
	w.lockRelease(base+gsLock, trace.ObjGoalFrame)
}

// popGoal pops the youngest goal frame from the stack of victim (which
// may be this worker). It returns ok=false if the stack was empty.
func (w *worker) popGoal(victim *worker) (pfAddr, slot int, entry int32, args []mem.Word, ok bool) {
	base := victim.goalR.Base
	w.lockAcquire(base+gsLock, trace.ObjGoalFrame)
	top := int(w.read(base+gsTop, trace.ObjGoalFrame).Int())
	if top <= gsBase {
		w.lockRelease(base+gsLock, trace.ObjGoalFrame)
		return 0, 0, 0, nil, false
	}
	// Frames are variable length; walk from the base to find the last
	// frame's offset. To keep the pop O(1) (as a real implementation
	// would, with frames linked), each frame's length is derivable from
	// its arity word; we store a back-pointer instead: the word just
	// below top is the frame start offset.
	at := base + int(w.read(base+top-1, trace.ObjGoalFrame).Int())
	pfAddr = w.read(at+gfPF, trace.ObjGoalFrame).Addr()
	slot = int(w.read(at+gfSlot, trace.ObjGoalFrame).Int())
	entry = int32(w.read(at+gfEntry, trace.ObjGoalFrame).Int())
	arity := int(w.read(at+gfArity, trace.ObjGoalFrame).Int())
	args = make([]mem.Word, arity)
	for i := 0; i < arity; i++ {
		args[i] = w.read(at+gfHdr+i, trace.ObjGoalFrame)
	}
	w.write(base+gsTop, mem.MakeInt(int64(at-base)), trace.ObjGoalFrame)
	w.lockRelease(base+gsLock, trace.ObjGoalFrame)
	return pfAddr, slot, entry, args, true
}

// --- messages ---

// sendMessage appends a message to the target worker's buffer and (for
// kills) raises its host-side kill flag.
func (w *worker) sendMessage(target int, mtype int, arg int) {
	tw := w.eng.workers[target]
	base := tw.msgR.Base
	w.lockAcquire(base+mbLock, trace.ObjMessage)
	count := int(w.read(base+mbCount, trace.ObjMessage).Int())
	at := base + mbBase + count*msgLen
	if at+msgLen <= tw.msgR.Limit {
		w.write(at, mem.MakeInt(int64(mtype)), trace.ObjMessage)
		w.write(at+1, mem.MakeInt(int64(arg)), trace.ObjMessage)
		w.write(base+mbCount, mem.MakeInt(int64(count+1)), trace.ObjMessage)
	}
	w.lockRelease(base+mbLock, trace.ObjMessage)
	if mtype == msgKill {
		tw.killFlag = true
		w.eng.kills++
	}
}

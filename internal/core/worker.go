package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// worker is one RAP-WAM abstract machine: a full register set plus its
// regions of the shared address space (its Stack Set).
type worker struct {
	eng *Engine
	// mem and code shadow eng.mem and eng.code.Instrs: one load
	// instead of two on the per-reference and per-instruction paths.
	mem  *mem.Memory
	code []isa.Instr
	pe   int

	// Regions.
	heap, local, ctl, trailR, pdlR, goalR, msgR mem.Region

	// Machine registers (host-side; register-file accesses are not
	// memory references, as in the WAM).
	regs [isa.NumRegs]mem.Word
	pc   int32 // code pointer
	cp   int32 // continuation code pointer (or sentinel)
	e    int   // current environment (addr or none)
	b    int   // youngest choice point (addr or none)
	b0   int   // cut barrier
	h    int   // heap top (next free)
	hb   int   // heap backtrack point
	s    int   // structure pointer (read mode)
	mode uint8 // read/write unification mode
	tr   int   // trail index (entries, not addr)
	pf   int   // current parcall frame (addr or none)
	gm   int   // current goal marker (addr or none)

	localTop int // next free local-stack word
	ctlTop   int // next free control-stack word
	hbFloor  int // HB floor for the current goal section

	// High-water marks for storage reporting.
	localHigh, ctlHigh, trHigh int

	state      WorkerState
	killFlag   bool
	instrs     int64
	inferences int64
	checkFails int64
	runCycles  int64
	waitCycles int64
	idleCycles int64
	idleClock  int  // cycles since last steal probe
	stealNext  int  // next victim PE to probe
	failedGoal bool // last goal completion was a failure

	// Inert-poll elision state (see Engine.schedSeq). inertWait is set
	// by a full pollFrame that proved this waiter has nothing to do
	// (frame running, goals pending, own stack empty); while the
	// scheduler sequence equals waitSeq, subsequent polls are provably
	// identical and are skipped. idleInert/idleSeq are the analogue for
	// an idle worker whose last steal sweep found every goal stack
	// empty: while the sequence holds, further sweeps cannot hit and
	// only the probe counters advance.
	inertWait bool
	waitSeq   uint64
	idleInert bool
	idleSeq   uint64

	// spec is set while this worker executes speculatively on a shard
	// goroutine (Engine.runEpoch). Speculation may only take pure
	// straight-line steps; the risky-opcode screen in specRun keeps it
	// on that path statically, and the guards in fail, noteSchedEvent
	// and setState abort it dynamically (panic(errSpecUnsafe)) should
	// an impure step slip through, rolling the worker back to its last
	// completed cycle for exact serial re-execution.
	spec bool
}

const (
	modeRead  = 0
	modeWrite = 1
)

func newWorker(e *Engine, pe int) *worker {
	w := &worker{
		eng:    e,
		mem:    e.mem,
		code:   e.code.Instrs,
		pe:     pe,
		heap:   e.mem.Region(pe, trace.AreaHeap),
		local:  e.mem.Region(pe, trace.AreaLocal),
		ctl:    e.mem.Region(pe, trace.AreaControl),
		trailR: e.mem.Region(pe, trace.AreaTrail),
		pdlR:   e.mem.Region(pe, trace.AreaPDL),
		goalR:  e.mem.Region(pe, trace.AreaGoal),
		msgR:   e.mem.Region(pe, trace.AreaMsg),
		state:  StateIdle,
		e:      none, b: none, b0: none, pf: none, gm: none,
		hbFloor:   none,
		hb:        none,
		stealNext: (pe + 1) % e.cfg.PEs,
	}
	w.h = w.heap.Base
	w.localTop = w.local.Base
	w.ctlTop = w.ctl.Base
	w.localHigh = w.localTop
	w.ctlHigh = w.ctlTop
	// Initialize goal stack header (untraced machine bring-up).
	e.mem.Poke(w.goalR.Base+gsLock, 0)
	e.mem.Poke(w.goalR.Base+gsTop, mem.MakeInt(gsBase))
	e.mem.Poke(w.msgR.Base+mbLock, 0)
	e.mem.Poke(w.msgR.Base+mbCount, mem.MakeInt(0))
	return w
}

// --- instrumented memory access ---

// read and write are thin forwarders; the per-worker reference counts
// (Stats.WorkRefs) come from the memory counter's ByPE table, which
// tallies exactly the same references, so nothing is counted here.

func (w *worker) read(addr int, obj trace.ObjType) mem.Word {
	return w.mem.Read(w.pe, addr, obj)
}

func (w *worker) write(addr int, v mem.Word, obj trace.ObjType) {
	w.mem.Write(w.pe, addr, v, obj)
}

// dataObjByArea maps a storage area to the object classification of a
// value reference into it (dereferencing, unification, trail unwinds):
// heap cells, environment variables (own or remote), goal-frame words,
// and so on. Trail/PDL/unclassified fall back to heap, matching the
// historical switch — a table load instead of a branch ladder, since
// dataObj sits on the deref hot path.
var dataObjByArea = [trace.NumAreas]trace.ObjType{
	trace.AreaNone:    trace.ObjHeap,
	trace.AreaHeap:    trace.ObjHeap,
	trace.AreaLocal:   trace.ObjEnvPVar,
	trace.AreaControl: trace.ObjChoicePoint,
	trace.AreaTrail:   trace.ObjHeap,
	trace.AreaPDL:     trace.ObjHeap,
	trace.AreaGoal:    trace.ObjGoalFrame,
	trace.AreaMsg:     trace.ObjMessage,
}

// dataObj classifies an address for value reads performed during
// dereferencing and unification. The overwhelmingly common case — a
// reference into the worker's own heap — is two compares; everything
// else is a Classify table lookup plus the area map above.
func (w *worker) dataObj(addr int) trace.ObjType {
	if addr >= w.heap.Base && addr < w.heap.Limit {
		return trace.ObjHeap
	}
	_, area := w.mem.Classify(addr)
	return dataObjByArea[area]
}

// --- overflow checks (simulation-level resource errors) ---

func (w *worker) checkHeap() {
	if w.h >= w.heap.Limit {
		w.machinePanic(fmt.Sprintf("pe%d: heap overflow", w.pe))
	}
}

func (w *worker) checkLocal(n int) {
	if w.localTop+n > w.local.Limit {
		w.machinePanic(fmt.Sprintf("pe%d: local stack overflow", w.pe))
	}
}

func (w *worker) checkCtl(n int) {
	if w.ctlTop+n > w.ctl.Limit {
		w.machinePanic(fmt.Sprintf("pe%d: control stack overflow", w.pe))
	}
}

// machineError carries the faulting worker's code pointer so the
// once-per-Run recover can report context without the dispatcher
// tracking a "current worker" on every tick.
type machineError struct {
	msg string
	pc  int32
}

func (e machineError) Error() string { return e.msg }

// machinePanic aborts the run with a machine error at this worker's
// current instruction.
func (w *worker) machinePanic(msg string) {
	panic(machineError{msg: msg, pc: w.pc})
}

// --- trail ---

func (w *worker) trailAddr(i int) int { return w.trailR.Base + i }

// pushTrail records a binding address for backtracking.
func (w *worker) pushTrail(addr int) {
	if w.trailAddr(w.tr) >= w.trailR.Limit {
		w.machinePanic(fmt.Sprintf("pe%d: trail overflow", w.pe))
	}
	w.write(w.trailAddr(w.tr), mem.MakeRef(addr), trace.ObjTrail)
	w.tr++
	if w.tr > w.trHigh {
		w.trHigh = w.tr
	}
}

// unwindTrail resets bindings down to trail index target.
func (w *worker) unwindTrail(target int) {
	for w.tr > target {
		w.tr--
		entry := w.read(w.trailAddr(w.tr), trace.ObjTrail)
		addr := entry.Addr()
		w.write(addr, mem.MakeRef(addr), w.dataObj(addr))
	}
}

// --- cycle execution ---

// tick advances this worker by one simulation step.
func (w *worker) tick() {
	switch w.state {
	case StateHalt:
		return
	case StateRun:
		if w.killFlag && w.gm != none {
			w.handleKill()
			return
		}
		w.runCycles++
		w.step()
	case StateWait:
		if w.killFlag && w.gm != none {
			w.handleKill()
			return
		}
		w.waitCycles++
		if w.inertWait && w.waitSeq == w.eng.schedSeq && w.eng.elide {
			return // provably identical to the poll that proved inertness
		}
		w.pollFrame()
	case StateIdle:
		w.killFlag = false // nothing to kill
		w.idleCycles++
		w.idleClock++
		if w.idleClock >= w.eng.cfg.StealInterval {
			w.idleClock = 0
			if w.idleInert && w.idleSeq == w.eng.schedSeq && w.eng.elide {
				// Every goal stack was empty at the last sweep and no
				// push/pop has happened since: the sweep would find
				// nothing again, so only the probe count advances
				// (stealNext wraps around over a full empty sweep).
				w.eng.stealProbes += int64(w.eng.cfg.PEs - 1)
				return
			}
			w.trySteal()
		}
	}
}

// noteSchedEvent records an action observable by other workers'
// scheduler steps (goal stack push/pop, parcall pending/status write,
// message send). Every such site must call this — the quantum
// dispatcher and the inert-poll elision both rely on the sequence to
// know when a skipped poll could have changed outcome.
func (w *worker) noteSchedEvent() {
	if w.spec {
		panic(errSpecUnsafe)
	}
	w.eng.schedSeq++
}

// setState transitions the worker's scheduler state, maintaining the
// engine's count of running workers (the quantum dispatcher's cheap
// eligibility pre-check). Every state change goes through here.
func (w *worker) setState(s WorkerState) {
	if w.spec {
		panic(errSpecUnsafe)
	}
	if w.state == StateRun {
		w.eng.nRun--
	}
	if s == StateRun {
		w.eng.nRun++
	}
	w.state = s
}

// accountInert credits this worker with k elided no-op cycles of a
// sole-runner quantum (see Engine.runQuantum). The closed forms
// reproduce exactly what k consecutive ticks would have recorded given
// that nothing observable happened: a waiter accrues wait cycles; an
// idle worker accrues idle cycles plus the steal probes its clock
// would have fired — each empty probe round visits all PEs-1 victims
// and leaves stealNext where it started, so only the counters move.
func (w *worker) accountInert(k int64) {
	if k <= 0 {
		return
	}
	switch w.state {
	case StateWait:
		w.waitCycles += k
	case StateIdle:
		w.idleCycles += k
		si := int64(w.eng.cfg.StealInterval)
		fires := (int64(w.idleClock) + k) / si
		w.idleClock = int((int64(w.idleClock) + k) % si)
		if fires > 0 {
			w.eng.stealProbes += fires * int64(w.eng.cfg.PEs-1)
		}
	}
}

// controlSentinel handles CP sentinels reached via proceed/execute.
func (w *worker) controlSentinel(pc int32) {
	switch pc {
	case cpQueryDone:
		// The query's last call proceeded without OpStop — treat as
		// success without bindings (defensive; OpStop is the normal
		// path).
		w.eng.halt(true, w.e)
	case cpParReturn:
		w.completeGoal(true)
	default:
		w.machinePanic(fmt.Sprintf("pe%d: bad code address %d", w.pe, pc))
	}
}

// --- goal stack operations (locked; Table 1 "Goal Frames") ---

// lockAcquire models a test-and-set acquisition: one read and one write
// of the lock word. In the deterministic interleaving each step is
// atomic, so acquisition always succeeds; the cost remains.
func (w *worker) lockAcquire(addr int, obj trace.ObjType) {
	w.read(addr, obj)
	w.write(addr, mem.MakeInt(1), obj)
}

func (w *worker) lockRelease(addr int, obj trace.ObjType) {
	w.write(addr, mem.MakeInt(0), obj)
}

// pushGoal pushes a goal frame onto this worker's goal stack.
func (w *worker) pushGoal(pfAddr int, slot int, entry int32, arity int) {
	base := w.goalR.Base
	w.lockAcquire(base+gsLock, trace.ObjGoalFrame)
	top := int(w.read(base+gsTop, trace.ObjGoalFrame).Int())
	frameLen := gfHdr + arity + 1 // +1 for the back-pointer word
	if base+top+frameLen > w.goalR.Limit {
		w.machinePanic(fmt.Sprintf("pe%d: goal stack overflow", w.pe))
	}
	at := base + top
	w.write(at+gfPF, mem.MakeRef(pfAddr), trace.ObjGoalFrame)
	w.write(at+gfSlot, mem.MakeInt(int64(slot)), trace.ObjGoalFrame)
	w.write(at+gfEntry, mem.MakeInt(int64(entry)), trace.ObjGoalFrame)
	w.write(at+gfArity, mem.MakeInt(int64(arity)), trace.ObjGoalFrame)
	for i := 0; i < arity; i++ {
		w.write(at+gfHdr+i, w.regs[i], trace.ObjGoalFrame)
	}
	// Back-pointer: the word just below the new top holds this frame's
	// start offset, making pops O(1) with variable-length frames.
	w.write(at+gfHdr+arity, mem.MakeInt(int64(top)), trace.ObjGoalFrame)
	w.write(base+gsTop, mem.MakeInt(int64(top+frameLen)), trace.ObjGoalFrame)
	w.lockRelease(base+gsLock, trace.ObjGoalFrame)
	w.noteSchedEvent() // idle workers' steal probes can now hit
}

// popGoal pops the youngest goal frame from the stack of victim (which
// may be this worker). It returns ok=false if the stack was empty.
func (w *worker) popGoal(victim *worker) (pfAddr, slot int, entry int32, args []mem.Word, ok bool) {
	base := victim.goalR.Base
	w.lockAcquire(base+gsLock, trace.ObjGoalFrame)
	top := int(w.read(base+gsTop, trace.ObjGoalFrame).Int())
	if top <= gsBase {
		w.lockRelease(base+gsLock, trace.ObjGoalFrame)
		return 0, 0, 0, nil, false
	}
	// Frames are variable length; walk from the base to find the last
	// frame's offset. To keep the pop O(1) (as a real implementation
	// would, with frames linked), each frame's length is derivable from
	// its arity word; we store a back-pointer instead: the word just
	// below top is the frame start offset.
	at := base + int(w.read(base+top-1, trace.ObjGoalFrame).Int())
	pfAddr = w.read(at+gfPF, trace.ObjGoalFrame).Addr()
	slot = int(w.read(at+gfSlot, trace.ObjGoalFrame).Int())
	entry = int32(w.read(at+gfEntry, trace.ObjGoalFrame).Int())
	arity := int(w.read(at+gfArity, trace.ObjGoalFrame).Int())
	args = make([]mem.Word, arity)
	for i := 0; i < arity; i++ {
		args[i] = w.read(at+gfHdr+i, trace.ObjGoalFrame)
	}
	w.write(base+gsTop, mem.MakeInt(int64(at-base)), trace.ObjGoalFrame)
	w.lockRelease(base+gsLock, trace.ObjGoalFrame)
	w.noteSchedEvent() // the victim's stack shrank
	return pfAddr, slot, entry, args, true
}

// --- messages ---

// sendMessage appends a message to the target worker's buffer and (for
// kills) raises its host-side kill flag.
func (w *worker) sendMessage(target int, mtype int, arg int) {
	tw := w.eng.workers[target]
	base := tw.msgR.Base
	w.lockAcquire(base+mbLock, trace.ObjMessage)
	count := int(w.read(base+mbCount, trace.ObjMessage).Int())
	at := base + mbBase + count*msgLen
	if at+msgLen <= tw.msgR.Limit {
		w.write(at, mem.MakeInt(int64(mtype)), trace.ObjMessage)
		w.write(at+1, mem.MakeInt(int64(arg)), trace.ObjMessage)
		w.write(base+mbCount, mem.MakeInt(int64(count+1)), trace.ObjMessage)
	}
	w.lockRelease(base+mbLock, trace.ObjMessage)
	if mtype == msgKill {
		tw.killFlag = true
		w.eng.kills++
	}
	w.noteSchedEvent() // the target observes the message/kill flag
}

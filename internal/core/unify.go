package core

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// bindObjByArea maps the bound cell's storage area to its write
// classification: heap cells, environment variables or goal-frame
// words; anything else (unreachable in practice for a bind target)
// keeps the historical heap fallback.
var bindObjByArea = [trace.NumAreas]trace.ObjType{
	trace.AreaNone:    trace.ObjHeap,
	trace.AreaHeap:    trace.ObjHeap,
	trace.AreaLocal:   trace.ObjEnvPVar,
	trace.AreaControl: trace.ObjHeap,
	trace.AreaTrail:   trace.ObjHeap,
	trace.AreaPDL:     trace.ObjHeap,
	trace.AreaGoal:    trace.ObjGoalFrame,
	trace.AreaMsg:     trace.ObjHeap,
}

// deref follows the reference chain of w, generating one traced read per
// hop, and returns either an unbound ref (self-reference) or a value.
func (w *worker) deref(v mem.Word) mem.Word {
	for v.Tag() == mem.TagRef {
		cell := w.read(v.Addr(), w.dataObj(v.Addr()))
		if cell == v {
			return v // unbound
		}
		v = cell
	}
	return v
}

// bind stores value into the unbound cell at addr, trailing the binding
// when it must be undone on backtracking:
//   - heap cells older than HB (a choice point exists above them),
//   - any cell while inside a parallel goal or under a choice point
//     (conservative for split local stacks; harmless extra entries),
//   - any cell belonging to another worker (its unwinding is
//     coordinated through markers and messages).
func (w *worker) bind(addr int, value mem.Word) {
	// Fast path: binding a cell on the worker's own heap (the usual
	// case by far) — two compares replace the classification lookup.
	if addr >= w.heap.Base && addr < w.heap.Limit {
		w.write(addr, value, trace.ObjHeap)
		if w.hb != none && addr < w.hb {
			w.pushTrail(addr)
		}
		return
	}

	ownerPE, area := w.mem.Classify(addr)
	w.write(addr, value, bindObjByArea[area])

	trail := false
	if ownerPE != w.pe {
		trail = true
	} else {
		switch area {
		case trace.AreaHeap:
			trail = w.hb != none && addr < w.hb
		default:
			trail = w.b != none || w.gm != none
		}
	}
	if trail {
		w.pushTrail(addr)
	}
}

// bindOrder binds one unbound variable to another, choosing direction so
// that references never dangle:
//   - a local-stack (environment) variable binds to a heap variable,
//   - within one area, the younger (higher address) binds to the older,
//   - across workers, the executing worker's own cell binds to the
//     remote one when possible (its own section is recovered with the
//     goal), falling back to address order.
func (w *worker) bindOrder(a, b mem.Word) {
	aAddr, bAddr := a.Addr(), b.Addr()
	aPE, aArea := w.mem.Classify(aAddr)
	bPE, bArea := w.mem.Classify(bAddr)

	switch {
	case aPE != bPE:
		if aPE == w.pe {
			w.bind(aAddr, b)
		} else if bPE == w.pe {
			w.bind(bAddr, a)
		} else if aAddr > bAddr {
			w.bind(aAddr, b)
		} else {
			w.bind(bAddr, a)
		}
	case aArea == trace.AreaLocal && bArea == trace.AreaHeap:
		w.bind(aAddr, b)
	case aArea == trace.AreaHeap && bArea == trace.AreaLocal:
		w.bind(bAddr, a)
	case aAddr > bAddr:
		w.bind(aAddr, b)
	default:
		w.bind(bAddr, a)
	}
}

// pdl addresses
func (w *worker) pdlAddr(i int) int { return w.pdlR.Base + i }

// unify performs general unification using the worker's PDL; push-down
// list traffic is traced like every other area (the paper's Table 1
// counts PDL entries).
func (w *worker) unify(a, b mem.Word) bool {
	pdl := 0
	push := func(x, y mem.Word) {
		if w.pdlAddr(pdl+2) > w.pdlR.Limit {
			w.machinePanic("pdl overflow")
		}
		w.write(w.pdlAddr(pdl), x, trace.ObjPDL)
		w.write(w.pdlAddr(pdl+1), y, trace.ObjPDL)
		pdl += 2
	}
	push(a, b)
	for pdl > 0 {
		pdl -= 2
		x := w.read(w.pdlAddr(pdl), trace.ObjPDL)
		y := w.read(w.pdlAddr(pdl+1), trace.ObjPDL)
		d1 := w.deref(x)
		d2 := w.deref(y)
		if d1 == d2 {
			continue
		}
		if d1.Tag() == mem.TagRef {
			if d2.Tag() == mem.TagRef {
				w.bindOrder(d1, d2)
			} else {
				w.bind(d1.Addr(), d2)
			}
			continue
		}
		if d2.Tag() == mem.TagRef {
			w.bind(d2.Addr(), d1)
			continue
		}
		switch {
		case d1.Tag() == mem.TagInt && d2.Tag() == mem.TagInt,
			d1.Tag() == mem.TagCon && d2.Tag() == mem.TagCon:
			if d1 != d2 {
				return false
			}
		case d1.Tag() == mem.TagLis && d2.Tag() == mem.TagLis:
			push(mem.MakeRef(d1.Addr()+1), mem.MakeRef(d2.Addr()+1))
			push(mem.MakeRef(d1.Addr()), mem.MakeRef(d2.Addr()))
		case d1.Tag() == mem.TagStr && d2.Tag() == mem.TagStr:
			f1 := w.read(d1.Addr(), trace.ObjHeap)
			f2 := w.read(d2.Addr(), trace.ObjHeap)
			if f1 != f2 {
				return false
			}
			arity := w.eng.code.Syms.FunctorAt(f1.Index()).Arity
			for i := arity; i >= 1; i-- {
				push(mem.MakeRef(d1.Addr()+i), mem.MakeRef(d2.Addr()+i))
			}
		default:
			return false
		}
	}
	return true
}

// unifyConstant unifies a register value with an atomic constant: the
// common fast path of get_constant/unify_constant.
func (w *worker) unifyConstant(v, c mem.Word) bool {
	d := w.deref(v)
	if d.Tag() == mem.TagRef {
		w.bind(d.Addr(), c)
		return true
	}
	return d == c
}

// groundCheck walks a term checking for unbound variables. The walk
// reads memory through the normal traced path: run-time independence
// checks are part of RAP-WAM's overhead and the paper measures them.
func (w *worker) groundCheck(v mem.Word) bool {
	var stack []mem.Word
	stack = append(stack, v)
	for len(stack) > 0 {
		t := w.deref(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		switch t.Tag() {
		case mem.TagRef:
			return false
		case mem.TagLis:
			stack = append(stack, w.read(t.Addr(), trace.ObjHeap), w.read(t.Addr()+1, trace.ObjHeap))
		case mem.TagStr:
			f := w.read(t.Addr(), trace.ObjHeap)
			arity := w.eng.code.Syms.FunctorAt(f.Index()).Arity
			for i := 1; i <= arity; i++ {
				stack = append(stack, w.read(t.Addr()+i, trace.ObjHeap))
			}
		}
	}
	return true
}

// collectVars appends the addresses of the unbound variables in v.
func (w *worker) collectVars(v mem.Word, into map[int]bool) {
	var stack []mem.Word
	stack = append(stack, v)
	for len(stack) > 0 {
		t := w.deref(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		switch t.Tag() {
		case mem.TagRef:
			into[t.Addr()] = true
		case mem.TagLis:
			stack = append(stack, w.read(t.Addr(), trace.ObjHeap), w.read(t.Addr()+1, trace.ObjHeap))
		case mem.TagStr:
			f := w.read(t.Addr(), trace.ObjHeap)
			arity := w.eng.code.Syms.FunctorAt(f.Index()).Arity
			for i := 1; i <= arity; i++ {
				stack = append(stack, w.read(t.Addr()+i, trace.ObjHeap))
			}
		}
	}
}

// indepCheck reports whether two terms share no unbound variable — the
// run-time strict-independence test of the CGE.
func (w *worker) indepCheck(a, b mem.Word) bool {
	seen := map[int]bool{}
	w.collectVars(a, seen)
	if len(seen) == 0 {
		return true
	}
	shared := false
	other := map[int]bool{}
	w.collectVars(b, other)
	for addr := range other {
		if seen[addr] {
			shared = true
			break
		}
	}
	return !shared
}

package core

// Sharded-execution parity: per-PE speculative epochs (Config.ExecShards
// > 1) must be observationally identical to the reference
// one-instruction-per-tick round-robin — same references in the same
// order, same statistics, same answers — at every shard count, for every
// program shape the dispatcher suite covers. The failure cases matter
// most here: they exercise kill delivery into speculated cycles and the
// snapshot-replay rollback.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/compile"
	"repro/internal/mem"
	"repro/internal/trace"
)

// runDispatchShards executes one dispatch case with the sharded
// dispatcher at the given host-shard count.
func runDispatchShards(t *testing.T, program, query string, pes, shards int) (*trace.Buffer, *Result) {
	t.Helper()
	code, err := compile.Compile(program, query, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	layout := mem.Layout{
		Workers: pes,
		Heap:    1 << 16, Local: 1 << 14, Control: 1 << 14,
		Trail: 1 << 13, PDL: 1 << 10, Goal: 1 << 10, Msg: 1 << 8,
	}
	buf := trace.NewBuffer(1 << 16)
	eng, err := New(code, Config{
		PEs: pes, Layout: layout, MaxCycles: 50_000_000,
		Sink: buf, ExecShards: shards,
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	eng.Close()
	return buf, res
}

func shardCounts() []int {
	counts := []int{2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	// Oversubscribed: more host shards than PEs exist (clamped in New).
	counts = append(counts, 16)
	return counts
}

func TestShardedParity(t *testing.T) {
	for _, tc := range dispatchCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, pes := range []int{1, 2, 4, 8} {
				refTrace, refRes := runDispatch(t, tc.program, tc.query, pes, true)
				for _, shards := range shardCounts() {
					shTrace, shRes := runDispatchShards(t, tc.program, tc.query, pes, shards)

					if len(shTrace.Refs) != len(refTrace.Refs) {
						t.Fatalf("%d PEs, %d shards: sharded emitted %d refs, reference %d",
							pes, shards, len(shTrace.Refs), len(refTrace.Refs))
					}
					for i := range refTrace.Refs {
						if shTrace.Refs[i] != refTrace.Refs[i] {
							t.Fatalf("%d PEs, %d shards: ref %d differs: sharded %v, reference %v",
								pes, shards, i, shTrace.Refs[i], refTrace.Refs[i])
						}
					}
					if shRes.Success != refRes.Success {
						t.Errorf("%d PEs, %d shards: success %v vs %v",
							pes, shards, shRes.Success, refRes.Success)
					}
					if !reflect.DeepEqual(shRes.Bindings, refRes.Bindings) {
						t.Errorf("%d PEs, %d shards: bindings %v vs %v",
							pes, shards, shRes.Bindings, refRes.Bindings)
					}
					if !reflect.DeepEqual(shRes.Stats, refRes.Stats) {
						t.Errorf("%d PEs, %d shards: stats differ:\nsharded   %+v\nreference %+v",
							pes, shards, shRes.Stats, refRes.Stats)
					}
					if *shRes.Refs != *refRes.Refs {
						t.Errorf("%d PEs, %d shards: counters differ", pes, shards)
					}
				}
			}
		})
	}
}

// cancelSink cancels the engine once n references have been emitted:
// a deterministic point in the canonical reference stream, independent
// of wall-clock. The engine polls the channel on its own goroutine, so
// the cut lands at a deterministic cycle for a given shard count.
type cancelSink struct {
	trace.Buffer
	after int
	once  sync.Once
	stop  chan struct{}
}

func newCancelSink(after int) *cancelSink {
	return &cancelSink{after: after, stop: make(chan struct{})}
}

func (c *cancelSink) check() {
	if c.Len() >= c.after {
		c.once.Do(func() { close(c.stop) })
	}
}

func (c *cancelSink) Add(r trace.Ref)           { c.Buffer.Add(r); c.check() }
func (c *cancelSink) AddBatch(refs []trace.Ref) { c.Buffer.AddBatch(refs); c.check() }

// TestShardedCancelPrefix pins the cancellation contract in sharded
// mode: a mid-run cancel — fired while speculated cycles are in flight
// — must surface context.Canceled, emit a prefix of the canonical
// stream (speculation beyond the cut is rolled back, never traced),
// and be deterministic run-to-run at a fixed shard count.
func TestShardedCancelPrefix(t *testing.T) {
	// The par-tree shape, deep enough that the run spans several staging
	// flushes: the sink observes the canonical count only at flush
	// boundaries, and detection costs up to cancelMask+1 further cycles.
	tc := struct{ program, query string }{dispatchCases[1].program, "tree(11, N)"}
	const pes = 8
	full, _ := runDispatch(t, tc.program, tc.query, pes, true)
	if len(full.Refs) < 250_000 {
		t.Fatalf("case too small for a mid-run cancel: %d refs", len(full.Refs))
	}
	cut := len(full.Refs) / 3

	for _, shards := range []int{1, 2} {
		var prev int = -1
		for run := 0; run < 2; run++ {
			code, err := compile.Compile(tc.program, tc.query, compile.Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			layout := mem.Layout{
				Workers: pes,
				Heap:    1 << 16, Local: 1 << 14, Control: 1 << 14,
				Trail: 1 << 13, PDL: 1 << 10, Goal: 1 << 10, Msg: 1 << 8,
			}
			sink := newCancelSink(cut)
			eng, err := New(code, Config{
				PEs: pes, Layout: layout, MaxCycles: 50_000_000,
				Sink: sink, ExecShards: shards, Cancel: sink.stop,
			})
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			_, err = eng.Run()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%d shards: Run returned %v, want context.Canceled", shards, err)
			}
			eng.Close()

			got := sink.Buffer.Refs
			if len(got) < cut || len(got) >= len(full.Refs) {
				t.Fatalf("%d shards: canceled run emitted %d refs (cut %d, full %d)",
					shards, len(got), cut, len(full.Refs))
			}
			for i := range got {
				if got[i] != full.Refs[i] {
					t.Fatalf("%d shards: ref %d diverges from the canonical stream", shards, i)
				}
			}
			if prev >= 0 && len(got) != prev {
				t.Fatalf("%d shards: canceled length varies run-to-run: %d vs %d",
					shards, len(got), prev)
			}
			prev = len(got)
		}
	}
}

package core

// EmulatorVersion identifies the trace-relevant behaviour of the
// engine + compiler + benchmark-input stack. A stored trace is valid
// exactly as long as re-running the same (benchmark, PEs, sequential)
// cell would reproduce it bit-for-bit, so this string participates in
// the trace store's content key (internal/tracestore): bump it whenever
// a change to the compiler, the engine's scheduling or memory layout,
// or the benchmark inputs alters the emitted reference stream, and
// every stale store entry is automatically ignored.
const EmulatorVersion = "emu1"

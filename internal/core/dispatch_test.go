package core

// Dispatcher parity: the quantum dispatcher (straight-line inner loops
// for a sole runner, inert-poll elision for waiters and idlers) must be
// observationally identical to the reference one-instruction-per-tick
// round-robin — same trace, same statistics, same answers — for every
// program shape: sequential, parallel with stealing, parallel failure
// (kill messages, remote trail unwinding), CGE fallback and nesting.
// internal/bench's golden suite pins the same property against
// pre-optimization digests; this test localizes a violation to the
// dispatcher when it appears.

import (
	"reflect"
	"testing"

	"repro/internal/compile"
	"repro/internal/mem"
	"repro/internal/trace"
)

// dispatchCases are the program shapes the two dispatchers must agree
// on; the failure cases drive the kill/unwind machinery where the
// quantum bookkeeping is most delicate.
var dispatchCases = []struct {
	name    string
	program string
	query   string
}{
	{"seq-nrev", `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
		nrev([], []).
		nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
	`, "nrev([1,2,3,4,5,6,7,8,9,10,11,12], R)"},
	{"par-tree", `
		tree(0, 1).
		tree(D, N) :- D > 0, D1 is D - 1,
			(tree(D1, A) & tree(D1, B)),
			N is A + B.
	`, "tree(7, N)"},
	{"par-fail-arm", `
		ok(1).
		bad(_) :- slow(40), fail.
		slow(0).
		slow(N) :- N > 0, M is N - 1, slow(M).
		try(X) :- ok(X) & bad(X).
		try(99).
	`, "try(R)"},
	{"par-fail-both", `
		bad(N) :- slow(N), fail.
		slow(0).
		slow(N) :- N > 0, M is N - 1, slow(M).
		top(R) :- bad(60) & bad(5).
		top(7).
	`, "top(R)"},
	{"par-nested-fail", `
		leaf(0).
		deep(0, 1).
		deep(D, N) :- D > 0, D1 is D - 1,
			(deep(D1, A) & deep(D1, B)), N is A + B.
		poison(N) :- deep(3, N), fail.
		run(R) :- poison(_) & deep(4, R).
		run(-1).
	`, "run(R)"},
	{"cge-fallback", `
		len([], 0).
		len([_|T], N) :- len(T, M), N is M + 1.
		two(L, A, B) :- (ground(L) | len(L, A) & len(L, B)).
	`, "two([a,b,c,d,e], A, B)"},
}

// runDispatch executes one case under the given dispatcher, returning
// the captured trace and result.
func runDispatch(t *testing.T, program, query string, pes int, reference bool) (*trace.Buffer, *Result) {
	t.Helper()
	code, err := compile.Compile(program, query, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	layout := mem.Layout{
		Workers: pes,
		Heap:    1 << 16, Local: 1 << 14, Control: 1 << 14,
		Trail: 1 << 13, PDL: 1 << 10, Goal: 1 << 10, Msg: 1 << 8,
	}
	buf := trace.NewBuffer(1 << 16)
	eng, err := New(code, Config{
		PEs: pes, Layout: layout, MaxCycles: 50_000_000,
		Sink: buf, ReferenceDispatch: reference,
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	eng.Close()
	return buf, res
}

func TestDispatcherParity(t *testing.T) {
	for _, tc := range dispatchCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, pes := range []int{1, 2, 4, 8} {
				refTrace, refRes := runDispatch(t, tc.program, tc.query, pes, true)
				quantTrace, quantRes := runDispatch(t, tc.program, tc.query, pes, false)

				if len(quantTrace.Refs) != len(refTrace.Refs) {
					t.Fatalf("%d PEs: quantum emitted %d refs, reference %d",
						pes, len(quantTrace.Refs), len(refTrace.Refs))
				}
				for i := range refTrace.Refs {
					if quantTrace.Refs[i] != refTrace.Refs[i] {
						t.Fatalf("%d PEs: ref %d differs: quantum %v, reference %v",
							pes, i, quantTrace.Refs[i], refTrace.Refs[i])
					}
				}
				if quantRes.Success != refRes.Success {
					t.Errorf("%d PEs: success %v vs %v", pes, quantRes.Success, refRes.Success)
				}
				if !reflect.DeepEqual(quantRes.Bindings, refRes.Bindings) {
					t.Errorf("%d PEs: bindings %v vs %v", pes, quantRes.Bindings, refRes.Bindings)
				}
				if !reflect.DeepEqual(quantRes.Stats, refRes.Stats) {
					t.Errorf("%d PEs: stats differ:\nquantum   %+v\nreference %+v",
						pes, quantRes.Stats, refRes.Stats)
				}
				if *quantRes.Refs != *refRes.Refs {
					t.Errorf("%d PEs: counters differ", pes)
				}
			}
		})
	}
}

// TestEngineRejectsTooManyPEs pins the trace.MaxPEs construction limit:
// beyond it the per-PE reference counter (and the cache simulators'
// snoop directory) would silently drop PEs.
func TestEngineRejectsTooManyPEs(t *testing.T) {
	code, err := compile.Compile("a(1).", "a(X)", compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(code, Config{PEs: trace.MaxPEs + 1}); err == nil {
		t.Fatalf("New with %d PEs succeeded, want error", trace.MaxPEs+1)
	}
	if _, err := New(code, Config{PEs: trace.MaxPEs,
		Layout: mem.Layout{Workers: trace.MaxPEs, Heap: 1 << 10, Local: 1 << 10,
			Control: 1 << 10, Trail: 1 << 9, PDL: 1 << 8, Goal: 1 << 8, Msg: 1 << 6}}); err != nil {
		t.Fatalf("New at the %d-PE limit failed: %v", trace.MaxPEs, err)
	}
}

package core

import "testing"

func TestFailingMetaInterpreterFails(t *testing.T) {
	// Regression: rev/2 has no base case in the object program, so the
	// query must FAIL (an earlier engine state reported success).
	prog := `
		clause(app([], L, L), true).
		clause(app([H|T], L, [H|R]), app(T, L, R)).
		clause(rev([H|T], R), (rev(T, RT), app(RT, [H], R))).
		solve(true) :- !.
		solve((A, B)) :- !, solve(A), solve(B).
		solve(G) :- clause(G, B), solve(B).
	`
	res := runQuery(t, prog, "solve(rev([1,2], R))", 1, true)
	if res.Success {
		t.Errorf("query should fail, got success with R=%q", res.Bindings["R"])
	}
}

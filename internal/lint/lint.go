// Package lint implements rapwamlint, the repo-invariant static
// analyzers behind `make lint` (cmd/rapwamlint). The invariants it
// enforces are the ones the compiler cannot see and the golden test
// suites only catch after the fact:
//
//   - determinism — trace-affecting packages must not consult wall
//     clocks, PRNGs, map iteration order or racy selects (PRs 1/4/6/9:
//     traces are byte-identical across shard counts and restarts);
//   - errortaxonomy — every storage read path classifies errors
//     through the Transient/Degrade/Corrupt taxonomy before returning
//     (PR 7: corruption heals instead of serving plausible 200s);
//   - hotpath — functions marked //rapwam:hotpath stay free of defer,
//     fmt, closures, appends and dynamic dispatch (PR 2/4: the kernels
//     are allocation-free by construction);
//   - ctxfirst — context.Context is the first parameter of exported
//     functions, never manufactured below cmd/, and cancellation is
//     polled live (PR 5: cancellation threaded end to end);
//   - versionbump — the byte layout of trace emission is fingerprinted;
//     changing it without bumping core.EmulatorVersion is a finding
//     (PR 3: stored traces are keyed by emulator version).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer with a Run func over a type-checked Pass — but is built
// on the standard library only, so linting works in hermetic builds
// with an empty module cache (the loader consumes compiler export data
// via `go list -export`; see Load).
//
// Findings are suppressed, one at a time and with a recorded reason,
// by an annotation on the offending line or the line above:
//
//	//rapwam:allow <analyzer> <reason>
//
// Malformed or unknown-analyzer annotations are themselves findings
// (the annotation analyzer): an escape hatch that cannot be audited is
// a hole, not a hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Exactly one of Run and
// RunRepo is set: Run checks one package at a time; RunRepo sees every
// loaded package at once (versionbump compares a whole-repo
// fingerprint).
type Analyzer struct {
	// Name is the analyzer's identifier, used by -only and in
	// //rapwam:allow annotations.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports findings in one package.
	Run func(*Pass)
	// RunRepo reports findings across all loaded packages.
	RunRepo func(*RepoPass)
}

// Pass hands one loaded package to an Analyzer.Run and collects its
// findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RepoPass hands the full package set to an Analyzer.RunRepo.
type RepoPass struct {
	Analyzer *Analyzer
	// Pkgs holds every loaded package, in dependency order.
	Pkgs []*Package
	// ModuleRoot is the analyzed module's root directory (where the
	// checked-in emission fingerprint lives).
	ModuleRoot string
	diags      *[]Diagnostic
}

// Reportf records a finding at pos (resolved through fset).
func (p *RepoPass) Reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation and the fix.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzers returns the full suite in stable order, annotation checker
// included.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Annotation,
		Determinism,
		ErrorTaxonomy,
		HotPath,
		CtxFirst,
		VersionBump,
	}
}

// ByName resolves one analyzer from Analyzers (nil if unknown).
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the given analyzers over the loaded packages and
// returns the surviving findings sorted by position: every diagnostic
// covered by a well-formed //rapwam:allow annotation for its analyzer
// on its own line or the line above is suppressed. Annotation
// validity itself is the Annotation analyzer's job and is never
// suppressed by this filter.
func Run(pkgs []*Package, moduleRoot string, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		switch {
		case a.Run != nil:
			for _, pkg := range pkgs {
				a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
			}
		case a.RunRepo != nil:
			a.RunRepo(&RepoPass{Analyzer: a, Pkgs: pkgs, ModuleRoot: moduleRoot, diags: &diags})
		}
	}
	allowed := collectAllows(pkgs)
	out := diags[:0]
	for _, d := range diags {
		if d.Analyzer != Annotation.Name && allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// --- shared scoping helpers ---

// pathInScope reports whether an import path falls under one of the
// scope suffixes ("internal/core", ...). Matching by suffix rather
// than full path keeps the analyzers testable against fixture modules
// whose paths end the same way.
func pathInScope(path string, scopes []string) bool {
	for _, s := range scopes {
		if path == s || strings.HasSuffix(path, "/"+s) || strings.Contains(path, "/"+s+"/") {
			return true
		}
	}
	return false
}

// funcDecls yields every function declaration with a body in the
// package, paired with its file.
func funcDecls(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}

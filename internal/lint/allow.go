package lint

import (
	"go/ast"
	"strings"
)

// AllowPrefix is the escape-hatch annotation: a finding is suppressed
// by "//rapwam:allow <analyzer> <reason>" on the offending line or the
// line directly above it. The reason is mandatory — the annotation is
// a recorded decision, not a mute button.
const AllowPrefix = "//rapwam:allow"

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// parsedAllow is one syntactically valid annotation.
type parsedAllow struct {
	analyzer string
	reason   string
	comment  *ast.Comment
}

// parseAllow splits an annotation comment. ok is false when the text
// is not an allow annotation at all; a present-but-malformed
// annotation returns ok true with problem set.
func parseAllow(text string) (a parsedAllow, problem string, ok bool) {
	if !strings.HasPrefix(text, AllowPrefix) {
		return a, "", false
	}
	rest := text[len(AllowPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //rapwam:allowdeterminism — not the annotation.
		return a, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return a, "missing analyzer name and reason", true
	}
	a.analyzer = fields[0]
	if len(fields) < 2 {
		return a, "missing reason (want //rapwam:allow <analyzer> <reason>)", true
	}
	a.reason = strings.Join(fields[1:], " ")
	return a, "", true
}

// collectAllows gathers every valid suppression in the package set,
// keyed so a diagnostic on the annotation's line or the line below is
// covered. Malformed annotations are deliberately absent — they never
// suppress anything (the Annotation analyzer reports them instead).
func collectAllows(pkgs []*Package) map[allowKey]bool {
	allowed := make(map[allowKey]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					a, problem, ok := parseAllow(c.Text)
					if !ok || problem != "" || ByName(a.analyzer) == nil {
						continue
					}
					line := pkg.Fset.Position(c.Pos()).Line
					file := pkg.Fset.Position(c.Pos()).Filename
					allowed[allowKey{file, line, a.analyzer}] = true
					allowed[allowKey{file, line + 1, a.analyzer}] = true
				}
			}
		}
	}
	return allowed
}

// Annotation validates //rapwam:allow annotations themselves: a
// malformed annotation (missing analyzer or reason) or one naming an
// unknown analyzer is reported, never silently honored — and never
// suppressible, so a typo cannot hide both itself and the finding it
// meant to allow.
var Annotation = &Analyzer{
	Name: "annotation",
	Doc:  "//rapwam:allow annotations must name a known analyzer and carry a reason",
}

// The Run hook is attached in init: its body consults the analyzer
// registry, which mentions Annotation itself, and a direct literal
// would be an initialization cycle.
func init() { Annotation.Run = runAnnotation }

func runAnnotation(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, problem, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				if problem != "" {
					pass.Reportf(c.Pos(), "malformed %s annotation: %s", AllowPrefix, problem)
					continue
				}
				if ByName(a.analyzer) == nil {
					pass.Reportf(c.Pos(), "%s names unknown analyzer %q (known: %s)",
						AllowPrefix, a.analyzer, strings.Join(analyzerNames(), ", "))
				}
			}
		}
	}
}

func analyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

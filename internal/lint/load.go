package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package, the unit an
// Analyzer runs over. Only packages of the module under analysis are
// loaded in full; dependencies (including the standard library) are
// consumed as compiler export data, which keeps a whole-repo lint run
// in the low seconds.
type Package struct {
	// Path is the package's import path as reported by the go tool.
	Path string
	// Name is the package name ("main" for commands).
	Name string
	// Dir is the package's directory on disk.
	Dir string
	// Fset is the file set shared by every loaded package.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	ForTest    string
	Module     *struct{ Dir string }
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matched by patterns
// (relative to dir, "" = current directory), plus enough export data
// for their whole dependency closure, and returns the matched
// non-standard packages in dependency order together with the module
// root directory.
//
// The loader is deliberately hermetic: it uses only the go tool and
// the standard library's importer, so linting works in offline builds
// with an empty module cache.
func Load(dir string, patterns ...string) ([]*Package, string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,Standard,ForTest,Module,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, "", fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var local []listedPackage
	moduleRoot := ""
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, "", fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, "", fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.ForTest != "" {
			continue
		}
		if p.Module != nil && moduleRoot == "" {
			moduleRoot = p.Module.Dir
		}
		local = append(local, p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range local {
		if len(lp.CgoFiles) > 0 {
			// Cgo packages cannot be type-checked from pure Go source;
			// none exist in this repo, so skipping is the honest gate.
			continue
		}
		var files []*ast.File
		for _, gf := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, "", fmt.Errorf("parsing %s: %v", gf, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, "", fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  lp.ImportPath,
			Name:  lp.Name,
			Dir:   lp.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	if moduleRoot == "" && len(pkgs) > 0 {
		moduleRoot = pkgs[0].Dir
	}
	return pkgs, moduleRoot, nil
}

// Package linttest runs rapwamlint analyzers over fixture modules and
// checks their findings against expectations written in the fixture
// source itself, in the style of x/tools' analysistest:
//
//	sink.Add(k, v) // want `Add call inside map iteration`
//
// A `// want` comment holds one or more quoted regular expressions;
// each must match the message of a distinct diagnostic reported by the
// analyzers under test on that line. Diagnostics with no matching
// expectation, and expectations with no matching diagnostic, both fail
// the test.
//
// Each fixture is a self-contained Go module (its own go.mod) under
// the calling test's testdata directory, so the go tool ignores it
// when building the real repo and the loader sees exactly the import
// paths the fixture declares — including paths whose suffixes place
// packages inside analyzer scopes (fix/internal/core is
// determinism-scoped like repro/internal/core is).
package linttest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the quoted expectation strings from a want comment:
// double-quoted or backquoted Go string literals.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one unmet `// want` pattern.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the fixture module rooted at dir (relative to the test's
// working directory), runs the given analyzers, and matches the
// surviving diagnostics against the fixture's `// want` comments. The
// diagnostics are returned for any extra assertions.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("linttest: resolving %s: %v", dir, err)
	}
	pkgs, root, err := lint.Load(abs, "./...")
	if err != nil {
		t.Fatalf("linttest: loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("linttest: fixture %s matched no packages", dir)
	}
	diags := lint.Run(pkgs, root, analyzers)

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, pkg, c)...)
				}
			}
		}
	}

	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}

// parseWants extracts the expectations of one comment, if it is a want
// comment.
func parseWants(t *testing.T, pkg *lint.Package, c *ast.Comment) []*expectation {
	t.Helper()
	const marker = "// want "
	text, ok := strings.CutPrefix(c.Text, marker[:len(marker)-1])
	if !ok {
		return nil
	}
	p := pkg.Fset.Position(c.Pos())
	var wants []*expectation
	for _, quoted := range wantRe.FindAllString(text, -1) {
		s, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s:%d: bad want string %s: %v", p.Filename, p.Line, quoted, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, s, err)
		}
		wants = append(wants, &expectation{file: p.Filename, line: p.Line, re: re})
	}
	if len(wants) == 0 {
		t.Fatalf("%s:%d: want comment with no quoted patterns", p.Filename, p.Line)
	}
	return wants
}

// consume marks the first unmet expectation matching d, reporting
// whether one existed.
func consume(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.met = true
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// CtxFirst enforces context discipline below the command layer:
//
//   - an exported function or method taking a context.Context takes it
//     as the first parameter (after the receiver);
//   - context.Background() / context.TODO() do not appear outside
//     package main — a library that manufactures a root context
//     detaches itself from the caller's cancellation, which PR 5
//     threaded end to end;
//   - a loop polling for cancellation consults ctx.Err() or a Done/
//     Cancel channel, not a bool captured before the loop (the stale-
//     flag bug: the 4096-cycle poll pattern keeps running forever if
//     the flag was read once).
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context comes first, is never manufactured below cmd/, and cancellation polls are live",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	info := pass.Pkg.Info
	isMain := pass.Pkg.Name == "main"
	funcDecls(pass.Pkg, func(f *ast.File, fd *ast.FuncDecl) {
		checkCtxParamFirst(pass, info, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isMain {
					if obj := calleeObject(info, n); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
						if obj.Name() == "Background" || obj.Name() == "TODO" {
							pass.Reportf(n.Pos(), "context.%s below cmd/: a library must inherit its caller's context, not manufacture a root one (cancellation stops here otherwise)", obj.Name())
						}
					}
				}
			case *ast.ForStmt:
				checkStaleCancelFlag(pass, info, fd, n)
			}
			return true
		})
	})
}

// checkCtxParamFirst flags exported functions whose context.Context
// parameter is not the first.
func checkCtxParamFirst(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	obj := info.Defs[fd.Name]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i := 1; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) && !isContextType(params.At(0).Type()) {
			pass.Reportf(fd.Name.Pos(), "exported %s takes context.Context as parameter %d: context comes first, so call sites read uniformly and ctx is never optional", fd.Name.Name, i+1)
			return
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// staleFlagName matches local bool variables that look like captured
// cancellation state.
var staleFlagName = regexp.MustCompile(`(?i)^(done|cancell?ed|stop|stopped|aborted)$`)

// checkStaleCancelFlag flags `for !done { ... }`-style loops in
// functions that have a live context: the loop condition reads a bool
// that nothing in the loop can change, where ctx.Err() (or the Cancel
// channel) would observe cancellation mid-loop.
func checkStaleCancelFlag(pass *Pass, info *types.Info, fd *ast.FuncDecl, loop *ast.ForStmt) {
	if loop.Cond == nil || !funcHasContext(info, fd) {
		return
	}
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !staleFlagName.MatchString(id.Name) {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil || obj.Pos() >= loop.Pos() {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		if basic, ok := v.Type().Underlying().(*types.Basic); !ok || basic.Kind() != types.Bool {
			return true
		}
		if assignedWithin(info, loop.Body, obj) {
			return true // the loop refreshes the flag: a live poll
		}
		pass.Reportf(id.Pos(), "loop condition reads bool %q captured before the loop: cancellation checked once is cancellation ignored; poll ctx.Err() (or the Cancel channel) inside the loop", id.Name)
		return false
	})
}

// funcHasContext reports whether fd has a context.Context parameter.
func funcHasContext(info *types.Info, fd *ast.FuncDecl) bool {
	obj := info.Defs[fd.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// assignedWithin reports whether obj is assigned anywhere inside body.
func assignedWithin(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

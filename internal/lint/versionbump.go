package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// FingerprintPath is the checked-in fingerprint of the trace-emission-
// relevant type shapes, relative to the module root. Regenerate with
// `go run ./cmd/rapwamlint -write-fingerprint`.
const FingerprintPath = "internal/lint/emission.fp"

// VersionBump guards the trace store's keying invariant: a stored
// trace is valid exactly as long as re-running its cell reproduces it
// byte for byte, and the store trusts core.EmulatorVersion to say so.
// The analyzer fingerprints every shape that feeds the emitted bytes —
// the Ref struct layout, the Area/ObjType enumerations and Table 1
// rows, the codec's version and chunk geometry, the mem alignment —
// and compares against the checked-in fingerprint: an edit that moves
// the fingerprint without bumping EmulatorVersion would silently serve
// stale stored traces as current, so it is a finding at the edit site.
var VersionBump = &Analyzer{
	Name:    "versionbump",
	Doc:     "changes to trace-emission shapes require a core.EmulatorVersion bump (fingerprint-checked)",
	RunRepo: runVersionBump,
}

func runVersionBump(pass *RepoPass) {
	fp, ok := ComputeFingerprint(pass.Pkgs)
	if !ok {
		return // trace/core not part of this run; nothing to compare
	}
	path := filepath.Join(pass.ModuleRoot, filepath.FromSlash(FingerprintPath))
	raw, err := os.ReadFile(path)
	if err != nil {
		pass.Reportf(fp.Fset, fp.VersionPos,
			"no checked-in emission fingerprint at %s: run `go run ./cmd/rapwamlint -write-fingerprint` and commit it", FingerprintPath)
		return
	}
	recVersion, recSHA, recBody := parseFingerprintFile(string(raw))
	switch {
	case recSHA == fp.SHA && recVersion == fp.EmulatorVersion:
		// Clean: shapes and version both match the recorded pair.
	case recSHA != fp.SHA && recVersion == fp.EmulatorVersion:
		pass.Reportf(fp.Fset, fp.VersionPos,
			"trace-emission shapes changed (%s) but core.EmulatorVersion is still %q: stored traces keyed by it would replay with the wrong byte layout — bump EmulatorVersion, then refresh the fingerprint (`go run ./cmd/rapwamlint -write-fingerprint`)",
			firstShapeDiff(recBody, fp.Render), fp.EmulatorVersion)
	default:
		// Version bumped (or the file predates it): shapes may or may
		// not have moved, but the recorded pair is stale either way.
		pass.Reportf(fp.Fset, fp.VersionPos,
			"emission fingerprint at %s records version %q but core.EmulatorVersion is %q: refresh it (`go run ./cmd/rapwamlint -write-fingerprint`) so the next layout change is caught",
			FingerprintPath, recVersion, fp.EmulatorVersion)
	}
}

// Fingerprint is the computed emission-shape fingerprint.
type Fingerprint struct {
	// EmulatorVersion is the current core.EmulatorVersion value.
	EmulatorVersion string
	// Render is the canonical human-readable shape dump the hash
	// covers.
	Render string
	// SHA is the hex sha256 of Render.
	SHA string
	// Fset/VersionPos anchor diagnostics at the EmulatorVersion const.
	Fset       *token.FileSet
	VersionPos token.Pos
}

// ComputeFingerprint renders the emission-relevant shapes from the
// loaded packages. ok is false when the trace or core package is not
// in the set (subset runs skip the check rather than guessing).
func ComputeFingerprint(pkgs []*Package) (Fingerprint, bool) {
	var tracePkg, corePkg, memPkg *Package
	for _, p := range pkgs {
		switch {
		case pathInScope(p.Path, []string{"internal/trace"}) && tracePkg == nil:
			tracePkg = p
		case pathInScope(p.Path, []string{"internal/core"}) && corePkg == nil:
			corePkg = p
		case pathInScope(p.Path, []string{"internal/mem"}) && memPkg == nil:
			memPkg = p
		}
	}
	if tracePkg == nil || corePkg == nil {
		return Fingerprint{}, false
	}
	var fp Fingerprint
	fp.Fset = corePkg.Fset

	var b strings.Builder
	b.WriteString("emission fingerprint v1\n")

	emuObj := corePkg.Types.Scope().Lookup("EmulatorVersion")
	if c, ok := emuObj.(*types.Const); ok {
		fp.EmulatorVersion = constant.StringVal(c.Val())
		fp.VersionPos = c.Pos()
	}
	fmt.Fprintf(&b, "core.EmulatorVersion: %q\n", fp.EmulatorVersion)

	for _, name := range []string{"CodecVersion", "MaxPEs", "NumAreas", "NumObjTypes", "codecChunkRefs", "maxChunkRefs"} {
		fmt.Fprintf(&b, "trace.%s: %s\n", name, constValue(tracePkg, name))
	}
	if memPkg != nil {
		fmt.Fprintf(&b, "mem.Align: %s\n", constValue(memPkg, "Align"))
	}
	b.WriteString(structShape(tracePkg, "Ref"))
	b.WriteString(enumShape(tracePkg, "Op"))
	b.WriteString(enumShape(tracePkg, "Area"))
	b.WriteString(enumShape(tracePkg, "ObjType"))
	b.WriteString(tableStrings(tracePkg, "areaNames"))
	b.WriteString(tableStrings(tracePkg, "objTable"))

	fp.Render = b.String()
	sum := sha256.Sum256([]byte(fp.Render))
	fp.SHA = hex.EncodeToString(sum[:])
	if fp.VersionPos == token.NoPos && len(corePkg.Files) > 0 {
		fp.VersionPos = corePkg.Files[0].Pos()
	}
	return fp, true
}

// constValue renders a package-scope constant's value ("missing" when
// absent — absence must move the fingerprint too).
func constValue(pkg *Package, name string) string {
	if c, ok := pkg.Types.Scope().Lookup(name).(*types.Const); ok {
		return c.Val().ExactString()
	}
	return "missing"
}

// structShape renders a struct's exact field layout (names and types
// in order, blanks included — padding is part of the byte layout).
func structShape(pkg *Package, name string) string {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return fmt.Sprintf("struct %s.%s: missing\n", pkg.Types.Name(), name)
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return fmt.Sprintf("struct %s.%s: not a struct\n", pkg.Types.Name(), name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s.%s:\n", pkg.Types.Name(), name)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fmt.Fprintf(&b, "  %s %s\n", f.Name(), types.TypeString(f.Type(), func(p *types.Package) string { return p.Name() }))
	}
	return b.String()
}

// enumShape renders the declared enumerators of a named constant type
// in source order: inserting, removing or reordering one renumbers the
// values the codec writes.
func enumShape(pkg *Package, typeName string) string {
	typeObj := pkg.Types.Scope().Lookup(typeName)
	if typeObj == nil {
		return fmt.Sprintf("enum %s.%s: missing\n", pkg.Types.Name(), typeName)
	}
	type enumerator struct {
		name string
		pos  token.Pos
	}
	var es []enumerator
	scope := pkg.Types.Scope()
	for _, n := range scope.Names() {
		if c, ok := scope.Lookup(n).(*types.Const); ok && c.Type() == typeObj.Type() {
			es = append(es, enumerator{n, c.Pos()})
		}
	}
	for i := 1; i < len(es); i++ { // insertion sort by source position
		for j := i; j > 0 && es[j-1].pos > es[j].pos; j-- {
			es[j-1], es[j] = es[j], es[j-1]
		}
	}
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.name
	}
	return fmt.Sprintf("enum %s.%s: %s\n", pkg.Types.Name(), typeName, strings.Join(names, " "))
}

// tableStrings renders, in order, every string literal inside a
// package-level composite-literal variable (areaNames, objTable): the
// names travel into RWT2 headers and must match byte for byte.
func tableStrings(pkg *Package, varName string) string {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != varName || i >= len(vs.Values) {
						continue
					}
					var lits []string
					ast.Inspect(vs.Values[i], func(n ast.Node) bool {
						if bl, ok := n.(*ast.BasicLit); ok && bl.Kind == token.STRING {
							lits = append(lits, bl.Value)
						}
						return true
					})
					return fmt.Sprintf("table %s.%s: %s\n", pkg.Types.Name(), varName, strings.Join(lits, " "))
				}
			}
		}
	}
	return fmt.Sprintf("table %s.%s: missing\n", pkg.Types.Name(), varName)
}

// FingerprintFile renders the checked-in file contents for fp.
func FingerprintFile(fp Fingerprint) string {
	var b strings.Builder
	b.WriteString("# rapwamlint emission fingerprint — regenerate with: go run ./cmd/rapwamlint -write-fingerprint\n")
	b.WriteString("# A diff in the shapes below means the byte layout of trace emission changed,\n")
	b.WriteString("# which requires a core.EmulatorVersion bump (stored traces are keyed by it).\n")
	fmt.Fprintf(&b, "version: %s\n", fp.EmulatorVersion)
	fmt.Fprintf(&b, "sha256: %s\n", fp.SHA)
	b.WriteString("---\n")
	b.WriteString(fp.Render)
	return b.String()
}

// WriteFingerprint computes and writes the fingerprint file under
// moduleRoot, returning its path.
func WriteFingerprint(pkgs []*Package, moduleRoot string) (string, error) {
	fp, ok := ComputeFingerprint(pkgs)
	if !ok {
		return "", fmt.Errorf("lint: trace and core packages not loaded; run over ./... from the module root")
	}
	path := filepath.Join(moduleRoot, filepath.FromSlash(FingerprintPath))
	if err := os.WriteFile(path, []byte(FingerprintFile(fp)), 0o666); err != nil {
		return "", err
	}
	return path, nil
}

// parseFingerprintFile extracts the recorded version, sha and shape
// body from a checked-in fingerprint file.
func parseFingerprintFile(s string) (version, sha, body string) {
	head, tail, found := strings.Cut(s, "---\n")
	if found {
		body = tail
	}
	for _, line := range strings.Split(head, "\n") {
		if v, ok := strings.CutPrefix(line, "version: "); ok {
			version = strings.TrimSpace(v)
		}
		if v, ok := strings.CutPrefix(line, "sha256: "); ok {
			sha = strings.TrimSpace(v)
		}
	}
	return version, sha, body
}

// firstShapeDiff names the first line that differs between the
// recorded and current shape dumps, for actionable diagnostics.
func firstShapeDiff(recorded, current string) string {
	rec := strings.Split(recorded, "\n")
	cur := strings.Split(current, "\n")
	for i := 0; i < len(rec) || i < len(cur); i++ {
		var r, c string
		if i < len(rec) {
			r = rec[i]
		}
		if i < len(cur) {
			c = cur[i]
		}
		if r != c {
			if c == "" {
				return fmt.Sprintf("recorded line %d removed: %q", i+1, r)
			}
			return fmt.Sprintf("first changed line: %q (was %q)", strings.TrimSpace(c), strings.TrimSpace(r))
		}
	}
	return "shape dump identical but hash moved"
}

package lint

import "testing"

// TestParseAllow pins the annotation grammar: the escape hatch accepts
// exactly "//rapwam:allow <analyzer> <reason>", reports what it cannot
// accept, and ignores comments that merely share the prefix.
func TestParseAllow(t *testing.T) {
	tests := []struct {
		text     string
		ok       bool
		problem  string
		analyzer string
		reason   string
	}{
		{"// an ordinary comment", false, "", "", ""},
		{"//rapwam:hotpath", false, "", "", ""},
		{"//rapwam:allowdeterminism smushed", false, "", "", ""},
		{"//rapwam:allow", true, "missing analyzer name and reason", "", ""},
		{"//rapwam:allow   ", true, "missing analyzer name and reason", "", ""},
		{"//rapwam:allow determinism", true, "missing reason (want //rapwam:allow <analyzer> <reason>)", "", ""},
		{"//rapwam:allow determinism the profiler stamp never reaches a trace", true, "", "determinism", "the profiler stamp never reaches a trace"},
		{"//rapwam:allow hotpath\treused buffer", true, "", "hotpath", "reused buffer"},
	}
	for _, tt := range tests {
		a, problem, ok := parseAllow(tt.text)
		if ok != tt.ok || problem != tt.problem {
			t.Errorf("parseAllow(%q) = problem %q, ok %v; want %q, %v", tt.text, problem, ok, tt.problem, tt.ok)
			continue
		}
		if !ok || problem != "" {
			continue
		}
		if a.analyzer != tt.analyzer || a.reason != tt.reason {
			t.Errorf("parseAllow(%q) = (%q, %q), want (%q, %q)", tt.text, a.analyzer, a.reason, tt.analyzer, tt.reason)
		}
	}
}

// TestByName covers the registry both ways: every registered analyzer
// resolves to itself, and an unknown name resolves to nil (which is
// what makes a misspelled //rapwam:allow inert).
func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
	}
	if got := ByName("determinizm"); got != nil {
		t.Errorf("ByName(determinizm) = %v, want nil", got)
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathMarker tags a function as an allocation-free kernel: the mem
// reference path, the cache batch kernels, the RWT2 encode/decode
// loops and the sharded commit/undo paths. The marker is a contract —
// the analyzer enforces what the benchmarks' AllocsPerRun==0
// regressions only measure.
const HotPathMarker = "//rapwam:hotpath"

// HotPath checks functions marked //rapwam:hotpath for constructs that
// allocate, dispatch dynamically or defeat inlining on the per-
// reference path: defer, fmt.* calls, closures, appends and interface
// method calls.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //rapwam:hotpath stay free of defer, fmt, closures, appends and dynamic dispatch",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	info := pass.Pkg.Info
	funcDecls(pass.Pkg, func(f *ast.File, fd *ast.FuncDecl) {
		if !hasHotPathMarker(fd) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				pass.Reportf(n.Pos(), "defer in //rapwam:hotpath function %s: a deferred call costs a frame record per invocation; restructure with explicit calls", fd.Name.Name)
			case *ast.FuncLit:
				pass.Reportf(n.Pos(), "closure in //rapwam:hotpath function %s: captured variables escape to the heap; hoist the function or pass state explicitly", fd.Name.Name)
				return false // the literal's body is not the hot path
			case *ast.CallExpr:
				checkHotPathCall(pass, info, fd, n)
			}
			return true
		})
	})
}

func checkHotPathCall(pass *Pass, info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			pass.Reportf(call.Pos(), "append in //rapwam:hotpath function %s: growth reallocates on the per-reference path; use a preallocated fixed buffer with an index", fd.Name.Name)
			return
		}
	}
	obj := calleeObject(info, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in //rapwam:hotpath function %s: fmt allocates and reflects; format off the hot path", obj.Name(), fd.Name.Name)
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv()) {
				pass.Reportf(call.Pos(), "interface method call %s.%s in //rapwam:hotpath function %s: dynamic dispatch defeats inlining and may allocate; devirtualize (type-switch to concrete kernels) off the hot path", typeShortName(s.Recv()), sel.Sel.Name, fd.Name.Name)
			}
		}
	}
}

// hasHotPathMarker reports whether the declaration's doc comment
// carries the //rapwam:hotpath marker.
func hasHotPathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == HotPathMarker || strings.HasPrefix(text, HotPathMarker+" ") {
			return true
		}
	}
	return false
}

func typeShortName(t types.Type) string {
	s := types.TypeString(t, func(p *types.Package) string { return p.Name() })
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

package lint

import (
	"go/ast"
	"go/types"
)

// ErrorTaxonomy enforces the PR-7 failure taxonomy on storage
// consumers: a function that reads through a storage.Backend (or the
// stores built on one) and can return an error must classify what it
// saw — transient (retry), backend failure (degrade) or neither
// (corruption, quarantine) — before handing the error up. Concretely:
//
//   - os.IsNotExist is flagged everywhere: wrapped backend errors only
//     match through errors.Is(err, fs.ErrNotExist);
//   - a Backend method call whose error result is discarded (blank
//     identifier or bare expression statement) is flagged;
//   - a function that calls fallible Backend methods and returns error
//     without any classification call (storage.IsTransient,
//     storage.AsBackendError, storage.Transient, errors.Is, errors.As)
//     — directly or via a same-package helper — is flagged.
var ErrorTaxonomy = &Analyzer{
	Name: "errortaxonomy",
	Doc:  "storage read paths classify errors (Transient/Degrade/Corrupt) before returning them",
	Run:  runErrorTaxonomy,
}

// fallibleBackendMethods are the Backend methods whose error result
// feeds the taxonomy. Sweep and Name are infallible by contract.
var fallibleBackendMethods = map[string]bool{
	"Put": true, "Get": true, "Stat": true, "List": true, "Delete": true, "Rename": true,
}

// backendReadMethods are the methods whose errors the Transient/
// Degrade/Corrupt classification must gate before they propagate: the
// read paths, where an unclassified error is the difference between
// healing corruption and serving it. Write-path errors arrive already
// wrapped (*storage.Error) and degrade at the caller.
var backendReadMethods = map[string]bool{
	"Get": true, "Stat": true, "List": true,
}

func runErrorTaxonomy(pass *Pass) {
	info := pass.Pkg.Info

	// classifies[fn] — the function's body contains a classification
	// call. Seeded directly, then closed over same-package calls so a
	// helper like wrapOp counts for its callers.
	classifies := make(map[types.Object]bool)
	calls := make(map[types.Object][]types.Object) // caller -> callees (same package)
	var fns []types.Object

	funcDecls(pass.Pkg, func(f *ast.File, fd *ast.FuncDecl) {
		obj := info.Defs[fd.Name]
		if obj == nil {
			return
		}
		fns = append(fns, obj)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isClassifierCall(info, call) {
				classifies[obj] = true
			}
			if callee := calleeObject(info, call); callee != nil && callee.Pkg() == pass.Pkg.Types {
				calls[obj] = append(calls[obj], callee)
			}
			return true
		})
	})
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if classifies[fn] {
				continue
			}
			for _, callee := range calls[fn] {
				if classifies[callee] {
					classifies[fn] = true
					changed = true
					break
				}
			}
		}
	}

	funcDecls(pass.Pkg, func(f *ast.File, fd *ast.FuncDecl) {
		obj := info.Defs[fd.Name]
		readsBackend := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isOsIsNotExist(info, n) {
					pass.Reportf(n.Pos(), "os.IsNotExist does not unwrap errors: backend misses travel wrapped, use errors.Is(err, fs.ErrNotExist)")
				}
				if isBackendCall(info, n, backendReadMethods) {
					readsBackend = true
				}
			case *ast.AssignStmt:
				checkDroppedBackendError(pass, info, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && isBackendCall(info, call, fallibleBackendMethods) {
					pass.Reportf(call.Pos(), "storage backend call's error is discarded: classify it (storage.IsTransient / storage.AsBackendError / errors.Is(err, fs.ErrNotExist)) or handle the failure")
				}
			}
			return true
		})
		if !readsBackend || !returnsError(info, fd) {
			return
		}
		if obj != nil && classifies[obj] {
			return
		}
		if isBackendImplMethod(pass, fd) {
			// A Backend wrapping other Backends (Tiered, Retry, Fault)
			// is the storage layer itself: its contract is to surface
			// errors for consumers above the interface to classify.
			return
		}
		pass.Reportf(fd.Name.Pos(), "%s reads through a storage.Backend and returns error without classifying it: route backend errors through storage.IsTransient / storage.AsBackendError / errors.Is(err, fs.ErrNotExist) so transient faults retry, backend faults degrade and corruption quarantines", fd.Name.Name)
	})
}

// isOsIsNotExist matches calls to os.IsNotExist.
func isOsIsNotExist(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "IsNotExist"
}

// isBackendCall reports whether call invokes one of the named methods
// through the storage Backend interface (an interface named Backend
// declared in a package whose path ends in internal/storage).
func isBackendCall(info *types.Info, call *ast.CallExpr, methods map[string]bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !methods[sel.Sel.Name] {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Backend" && obj.Pkg() != nil &&
		pathInScope(obj.Pkg().Path(), []string{"internal/storage"})
}

// isClassifierCall matches the taxonomy's classification calls:
// errors.Is / errors.As, and IsTransient / AsBackendError / Transient
// from the storage package.
func isClassifierCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "errors" && (obj.Name() == "Is" || obj.Name() == "As"):
		return true
	case pathInScope(obj.Pkg().Path(), []string{"internal/storage"}):
		switch obj.Name() {
		case "IsTransient", "AsBackendError", "Transient":
			return true
		}
	}
	return false
}

// isBackendImplMethod reports whether fd is a Backend interface method
// on a type that itself implements storage.Backend.
func isBackendImplMethod(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || !fallibleBackendMethods[fd.Name.Name] {
		return false
	}
	iface := backendInterface(pass.Pkg)
	if iface == nil {
		return false
	}
	obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	return recv != nil && types.Implements(recv.Type(), iface)
}

// backendInterface resolves the storage Backend interface visible to
// the package (its own scope or a direct import).
func backendInterface(pkg *Package) *types.Interface {
	look := func(p *types.Package) *types.Interface {
		if !pathInScope(p.Path(), []string{"internal/storage"}) {
			return nil
		}
		obj, ok := p.Scope().Lookup("Backend").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if i := look(pkg.Types); i != nil {
		return i
	}
	for _, imp := range pkg.Types.Imports() {
		if i := look(imp); i != nil {
			return i
		}
	}
	return nil
}

// checkDroppedBackendError flags assignments that blank out a backend
// call's error result: `data, _ := b.Get(name)`.
func checkDroppedBackendError(pass *Pass, info *types.Info, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isBackendCall(info, call, fallibleBackendMethods) {
		return
	}
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(as.Pos(), "storage backend call's error is dropped into _: classify it (storage.IsTransient / storage.AsBackendError / errors.Is(err, fs.ErrNotExist)) or handle the failure")
	}
}

// returnsError reports whether fd's signature includes an error result.
func returnsError(info *types.Info, fd *ast.FuncDecl) bool {
	obj := info.Defs[fd.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestDeterminismFixture checks every determinism rule against the
// fixture's want-comments: clock reads, PRNG imports, order-dependent
// map iteration and racy selects are findings; the collect-then-sort
// idiom, single-comm-case polls, out-of-scope packages and annotated
// lines are not.
func TestDeterminismFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "determinism"), lint.Determinism)
}

// TestDeterminismFailsOnTimeNow is the acceptance check in its
// narrowest form: a fixture package whose import path ends in
// internal/core and whose body calls time.Now() must fail the lint
// run.
func TestDeterminismFailsOnTimeNow(t *testing.T) {
	pkgs, root := loadFixture(t, "determinism")
	diags := lint.Run(pkgs, root, []*lint.Analyzer{lint.Determinism})
	for _, d := range diags {
		if strings.Contains(d.Message, "time.Now") {
			return
		}
	}
	t.Fatalf("no time.Now finding in a determinism-scoped fixture; got %d diagnostics", len(diags))
}

func TestErrorTaxonomyFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "errortaxonomy"), lint.ErrorTaxonomy)
}

func TestHotPathFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "hotpath"), lint.HotPath)
}

func TestCtxFirstFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "ctxfirst"), lint.CtxFirst)
}

// TestAnnotationFixture asserts directly (want-comments on annotation
// lines would themselves be parsed as annotation text): malformed and
// unknown-analyzer annotations are reported, and none of them
// suppresses the determinism finding sitting next to it — only the
// one well-formed annotation does.
func TestAnnotationFixture(t *testing.T) {
	pkgs, root := loadFixture(t, "annotation")
	diags := lint.Run(pkgs, root, lint.Analyzers())

	var annot, det []lint.Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "annotation":
			annot = append(annot, d)
		case "determinism":
			det = append(det, d)
		}
	}
	wantAnnot := []string{
		"missing analyzer name and reason",
		"missing reason",
		`unknown analyzer "determinizm"`,
	}
	if len(annot) != len(wantAnnot) {
		t.Fatalf("annotation findings = %d, want %d: %v", len(annot), len(wantAnnot), annot)
	}
	for i, want := range wantAnnot {
		if !strings.Contains(annot[i].Message, want) {
			t.Errorf("annotation finding %d = %q, want substring %q", i, annot[i].Message, want)
		}
	}
	// Three bad annotations suppress nothing; the one good annotation
	// suppresses its clock read: 4 time.Now calls, 3 findings.
	if len(det) != 3 {
		t.Fatalf("determinism findings = %d, want 3 (malformed annotations must not suppress): %v", len(det), det)
	}
}

// TestVersionBump drives the fingerprint three-state logic against the
// versionbump fixture: a missing file, a matching file, a shape drift
// without a version bump, and a stale recorded version.
func TestVersionBump(t *testing.T) {
	pkgs, _ := loadFixture(t, "versionbump")
	fp, ok := lint.ComputeFingerprint(pkgs)
	if !ok {
		t.Fatal("fixture's trace/core packages not recognized")
	}
	if fp.EmulatorVersion != "fix1" {
		t.Fatalf("EmulatorVersion = %q, want fix1", fp.EmulatorVersion)
	}

	run := func(t *testing.T, contents string) []lint.Diagnostic {
		t.Helper()
		root := t.TempDir()
		if contents != "" {
			path := filepath.Join(root, filepath.FromSlash(lint.FingerprintPath))
			if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(contents), 0o666); err != nil {
				t.Fatal(err)
			}
		}
		return lint.Run(pkgs, root, []*lint.Analyzer{lint.VersionBump})
	}

	t.Run("missing file", func(t *testing.T) {
		diags := run(t, "")
		if len(diags) != 1 || !strings.Contains(diags[0].Message, "no checked-in emission fingerprint") {
			t.Fatalf("diags = %v, want one missing-fingerprint finding", diags)
		}
	})
	t.Run("clean", func(t *testing.T) {
		if diags := run(t, lint.FingerprintFile(fp)); len(diags) != 0 {
			t.Fatalf("diags = %v, want none", diags)
		}
	})
	t.Run("shapes drift without bump", func(t *testing.T) {
		tampered := strings.Replace(lint.FingerprintFile(fp), fp.SHA, strings.Repeat("0", 64), 1)
		diags := run(t, tampered)
		if len(diags) != 1 || !strings.Contains(diags[0].Message, "core.EmulatorVersion is still") {
			t.Fatalf("diags = %v, want one shapes-changed finding", diags)
		}
	})
	t.Run("stale recorded version", func(t *testing.T) {
		stale := strings.Replace(lint.FingerprintFile(fp), "version: fix1", "version: fix0", 1)
		diags := run(t, stale)
		if len(diags) != 1 || !strings.Contains(diags[0].Message, `records version "fix0"`) {
			t.Fatalf("diags = %v, want one stale-fingerprint finding", diags)
		}
	})
}

// TestRepoIsClean dogfoods the whole suite over the real repository:
// the invariants hold, every escape hatch carries a reason, and the
// checked-in emission fingerprint matches the current shapes. A
// failure here is the same failure `make lint` and CI report.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo lint run in -short mode")
	}
	pkgs, root, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags := lint.Run(pkgs, root, lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// loadFixture loads one fixture module under testdata.
func loadFixture(t *testing.T, name string) ([]*lint.Package, string) {
	t.Helper()
	pkgs, root, err := lint.Load(filepath.Join("testdata", name), "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkgs, root
}

// Package hot exercises the //rapwam:hotpath contract: marked
// functions must stay free of defer, fmt, closures, appends and
// dynamic dispatch; unmarked functions may use all of them.
package hot

import "fmt"

// Sink consumes values through an interface: calling it from a marked
// function is dynamic dispatch on the hot path.
type Sink interface{ Add(int) }

var calls int

func note() { calls++ }

// SumDefer pays a defer frame per invocation: flagged.
//
//rapwam:hotpath
func SumDefer(xs []int) (n int) {
	defer note() // want `defer in //rapwam:hotpath function SumDefer`
	for _, x := range xs {
		n += x
	}
	return n
}

// SumClosure captures through a closure: flagged.
//
//rapwam:hotpath
func SumClosure(xs []int) int {
	add := func(a, b int) int { return a + b } // want `closure in //rapwam:hotpath function SumClosure`
	n := 0
	for _, x := range xs {
		n = add(n, x)
	}
	return n
}

// Collect grows a slice on the per-reference path: flagged.
//
//rapwam:hotpath
func Collect(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append in //rapwam:hotpath function Collect`
	}
	return out
}

// Dump formats on the hot path: flagged.
//
//rapwam:hotpath
func Dump(xs []int) {
	for _, x := range xs {
		fmt.Println(x) // want `fmt\.Println in //rapwam:hotpath function Dump`
	}
}

// Drain dispatches through an interface per element: flagged.
//
//rapwam:hotpath
func Drain(xs []int, s Sink) {
	for _, x := range xs {
		s.Add(x) // want `interface method call .*Sink\.Add in //rapwam:hotpath function Drain`
	}
}

// Fill is the sanctioned shape: indexed stores into a preallocated
// buffer, concrete calls only. No findings.
//
//rapwam:hotpath
func Fill(buf []int, xs []int) int {
	n := 0
	for _, x := range xs {
		if n == len(buf) {
			break
		}
		buf[n] = x
		n++
	}
	return n
}

// Reuse appends into a reused scratch buffer: the allow annotation
// records why the amortized growth is acceptable.
//
//rapwam:hotpath
func Reuse(buf []int, xs []int) []int {
	for _, x := range xs {
		//rapwam:allow hotpath buf is a reused scratch buffer, so append amortizes to an indexed store
		buf = append(buf, x)
	}
	return buf
}

// SumFree is unmarked: the same constructs pass without comment.
func SumFree(xs []int) (n int) {
	defer note()
	for _, x := range xs {
		n += x
	}
	return n
}

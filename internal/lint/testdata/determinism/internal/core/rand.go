package core

import "math/rand" // want `import of math/rand in a trace-affecting package`

// Draw consumes the flagged import.
func Draw() int { return rand.Int() }

// Package core is a determinism-scoped fixture: its import path ends
// in internal/core, so every rule of the determinism analyzer applies
// here exactly as it does in the real emulator core.
package core

import (
	"sort"
	"time"
)

// Sink is a concrete ordered consumer; Add inside a map range is an
// order-dependent emission.
type Sink struct{ rows []string }

// Add appends one row.
func (s *Sink) Add(k string, v int) { s.rows = append(s.rows, k) }

// Stamp reads the wall clock on the emission path: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in a trace-affecting package`
}

// Elapsed measures with time.Since: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in a trace-affecting package`
}

// RunStamp carries the one sanctioned clock read: the allow annotation
// suppresses the finding and records why.
func RunStamp() int64 {
	//rapwam:allow determinism run stamp is diagnostic metadata only, it never reaches a trace byte
	return time.Now().UnixNano()
}

// EmitCounts emits rows in map order: flagged.
func EmitCounts(m map[string]int, sink *Sink) {
	for k, v := range m {
		sink.Add(k, v) // want `Add call inside map iteration emits in map order`
	}
}

// Stream sends keys in map order: flagged.
func Stream(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// Keys accumulates in map order and never sorts: flagged.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside map iteration`
	}
	return keys
}

// SortedKeys is the sanctioned collect-then-sort idiom: the later sort
// erases the iteration order, so no finding.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Wait races two ready-biased cases: flagged.
func Wait(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Poll is the deterministic single-comm-case poll idiom: no finding.
func Poll(cancel chan struct{}) bool {
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

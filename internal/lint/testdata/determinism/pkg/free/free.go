// Package free sits outside the determinism scope: the same clock
// read that is a finding in internal/core passes without comment here.
package free

import "time"

// Stamp reads the wall clock, legitimately.
func Stamp() int64 { return time.Now().UnixNano() }

// Command tool shows that package main may manufacture root contexts:
// the command layer is exactly where they belong.
package main

import (
	"context"

	"fix/lib"
)

func main() {
	ctx := context.Background()
	_ = lib.Get(ctx, "x")
}

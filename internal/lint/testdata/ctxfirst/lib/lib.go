// Package lib exercises context discipline below the command layer.
package lib

import "context"

// Fetch takes ctx second: flagged.
func Fetch(name string, ctx context.Context) error { // want `exported Fetch takes context\.Context as parameter 2`
	return ctx.Err()
}

// Get takes ctx first: passes.
func Get(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// helper is unexported: parameter order is its own business.
func helper(name string, ctx context.Context) error {
	_ = name
	return ctx.Err()
}

// Detach manufactures a root context in a library: flagged.
func Detach() context.Context {
	return context.Background() // want `context\.Background below cmd/`
}

// Todo postpones the decision, which is the same detachment: flagged.
func Todo() context.Context {
	return context.TODO() // want `context\.TODO below cmd/`
}

// Root is the sanctioned detached context, with the reason recorded.
func Root() context.Context {
	//rapwam:allow ctxfirst fixture mirrors a shutdown drain that must outlive the context that triggered it
	return context.Background()
}

// WaitStale polls a bool captured before the loop: cancellation
// checked once is cancellation ignored. Flagged.
func WaitStale(ctx context.Context, work []int) int {
	done := ctx.Err() != nil
	n := 0
	for !done { // want `loop condition reads bool "done" captured before the loop`
		if n >= len(work) {
			return n
		}
		n += work[n%len(work)]
	}
	return n
}

// WaitLive refreshes the flag from ctx.Err() inside the loop: passes.
func WaitLive(ctx context.Context, work []int) int {
	done := false
	n := 0
	for !done {
		if n >= len(work) {
			return n
		}
		n += work[n%len(work)]
		done = ctx.Err() != nil
	}
	return n
}

var _ = helper

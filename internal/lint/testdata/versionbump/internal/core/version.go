// Package core carries the emulator version the emission fingerprint
// guards, mirroring the production core package's role.
package core

// EmulatorVersion keys stored traces: any change to the emitted byte
// layout must bump it.
const EmulatorVersion = "fix1"

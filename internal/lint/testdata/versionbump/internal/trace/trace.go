// Package trace is a minimal stand-in for the emission shapes the
// versionbump analyzer fingerprints: the codec constants, the Ref
// layout, the enumerations and the name tables.
package trace

// Codec geometry.
const (
	CodecVersion   = 1
	MaxPEs         = 4
	NumAreas       = 2
	NumObjTypes    = 2
	codecChunkRefs = 8
	maxChunkRefs   = 64
)

// Op distinguishes reads from writes.
type Op uint8

// Op values.
const (
	OpRead Op = iota
	OpWrite
)

// Area classifies addresses.
type Area uint8

// Area values.
const (
	AreaNone Area = iota
	AreaHeap
)

// ObjType classifies referenced objects.
type ObjType uint8

// ObjType values.
const (
	ObjNone ObjType = iota
	ObjHeap
)

// Ref is one emitted memory reference.
type Ref struct {
	Addr uint32
	PE   uint8
	Op   Op
	Obj  ObjType
}

var areaNames = [NumAreas]string{"none", "heap"}

var objTable = [NumObjTypes]string{"none", "heap"}

// Names keeps the tables referenced.
func Names(a Area, o ObjType) (string, string) {
	return areaNames[a], objTable[o]
}

var _ = codecChunkRefs
var _ = maxChunkRefs

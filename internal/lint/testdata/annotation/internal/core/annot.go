// Package core holds //rapwam:allow annotations in every state of
// repair, deliberately inside the determinism scope: a malformed
// annotation must be reported AND must fail to suppress the clock-read
// finding next to it. The test asserts on the findings directly —
// want-comments on these lines would themselves be annotation text.
package core

import "time"

// BadBare sits above a bare annotation: reported as malformed, and the
// time.Now finding below it survives.
func BadBare() int64 {
	//rapwam:allow
	return time.Now().UnixNano()
}

// BadNoReason names an analyzer but gives no reason: reported, finding
// survives.
func BadNoReason() int64 {
	//rapwam:allow determinism
	return time.Now().UnixNano()
}

// BadUnknown names an analyzer that does not exist: reported, finding
// survives.
func BadUnknown() int64 {
	//rapwam:allow determinizm the name is misspelled on purpose
	return time.Now().UnixNano()
}

// Good carries a well-formed annotation: nothing reported, finding
// suppressed.
func Good() int64 {
	//rapwam:allow determinism the fixture's one sanctioned clock read
	return time.Now().UnixNano()
}

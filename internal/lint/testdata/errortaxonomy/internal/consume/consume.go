// Package consume exercises the storage-consumer rules: code above
// the Backend interface must classify what it reads.
package consume

import (
	"errors"
	"io"
	"io/fs"
	"os"

	"fix/internal/storage"
)

// Sizes classifies misses with errors.Is before propagating: passes.
func Sizes(b storage.Backend, names []string) (int64, error) {
	var total int64
	for _, n := range names {
		sz, err := b.Stat(n)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return 0, err
		}
		total += sz
	}
	return total, nil
}

// First reads through the backend and returns the raw error: flagged.
func First(b storage.Backend) ([]string, error) { // want `First reads through a storage\.Backend and returns error without classifying it`
	names, err := b.List("")
	if err != nil {
		return nil, err
	}
	return names, nil
}

// Misses counts with the unwrapping-blind helper: flagged.
func Misses(b storage.Backend, names []string) int {
	n := 0
	for _, name := range names {
		if _, err := b.Stat(name); os.IsNotExist(err) { // want `os\.IsNotExist does not unwrap errors`
			n++
		}
	}
	return n
}

// Evict discards Delete's error entirely: flagged.
func Evict(b storage.Backend, name string) {
	b.Delete(name) // want `storage backend call's error is discarded`
}

// Peek blanks Get's error: flagged.
func Peek(b storage.Backend, name string) bool {
	rc, _ := b.Get(name) // want `storage backend call's error is dropped into _`
	if rc != nil {
		rc.Close()
		return true
	}
	return false
}

// classify routes an error through the taxonomy for its callers.
func classify(err error) error {
	if storage.IsTransient(err) {
		return err
	}
	return storage.Transient(err)
}

// Names reads and hands the error to a classifying helper: the
// same-package fixpoint credits the helper, so no finding.
func Names(b storage.Backend, prefix string) ([]string, error) {
	names, err := b.List(prefix)
	if err != nil {
		return nil, classify(err)
	}
	return names, nil
}

// Probe reads without classifying but carries a recorded allow: the
// annotation suppresses the finding.
//
//rapwam:allow errortaxonomy fixture probe mirrors the production healthz contract of reporting raw first failures
func Probe(b storage.Backend) error {
	_, err := b.List("")
	return err
}

// Fault wraps a Backend and implements the interface itself: the
// wrapper is below the taxonomy line (its contract is to surface raw
// errors for consumers to classify), so its methods pass.
type Fault struct{ B storage.Backend }

// Put implements storage.Backend.
func (f *Fault) Put(name string, write func(w io.Writer) error) error { return f.B.Put(name, write) }

// Get implements storage.Backend.
func (f *Fault) Get(name string) (io.ReadCloser, error) { return f.B.Get(name) }

// Stat implements storage.Backend.
func (f *Fault) Stat(name string) (int64, error) { return f.B.Stat(name) }

// List implements storage.Backend.
func (f *Fault) List(prefix string) ([]string, error) { return f.B.List(prefix) }

// Delete implements storage.Backend.
func (f *Fault) Delete(name string) error { return f.B.Delete(name) }

// Rename implements storage.Backend.
func (f *Fault) Rename(old, new string) error { return f.B.Rename(old, new) }

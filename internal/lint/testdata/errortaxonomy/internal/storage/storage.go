// Package storage is a stand-in for the production backend taxonomy:
// the analyzer matches the Backend interface and the classifier
// functions by this package's import-path suffix, so the fixture
// exercises exactly the production matching rules.
package storage

import (
	"errors"
	"io"
)

// Backend mirrors the production interface shape.
type Backend interface {
	Put(name string, write func(w io.Writer) error) error
	Get(name string) (io.ReadCloser, error)
	Stat(name string) (int64, error)
	List(prefix string) ([]string, error)
	Delete(name string) error
	Rename(old, new string) error
}

// Error is the stand-in wrapped backend failure.
type Error struct{ Err error }

func (e *Error) Error() string { return e.Err.Error() }

// IsTransient reports whether err is retryable.
func IsTransient(err error) bool {
	var e *Error
	return errors.As(err, &e)
}

// AsBackendError extracts the backend failure, if any.
func AsBackendError(err error) (*Error, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// Transient marks err retryable.
func Transient(err error) error { return &Error{Err: err} }

# rapwamlint emission fingerprint — regenerate with: go run ./cmd/rapwamlint -write-fingerprint
# A diff in the shapes below means the byte layout of trace emission changed,
# which requires a core.EmulatorVersion bump (stored traces are keyed by it).
version: emu1
sha256: 50058540fd3dddeb7ff8b68be489fef54b75fa3a624b994b23b7d33320bed4fc
---
emission fingerprint v1
core.EmulatorVersion: "emu1"
trace.CodecVersion: 1
trace.MaxPEs: 64
trace.NumAreas: 8
trace.NumObjTypes: 13
trace.codecChunkRefs: 8192
trace.maxChunkRefs: 1048576
mem.Align: 64
struct trace.Ref:
  Addr uint32
  PE uint8
  Op trace.Op
  Obj trace.ObjType
  _ uint8
enum trace.Op: OpRead OpWrite
enum trace.Area: AreaNone AreaHeap AreaLocal AreaControl AreaTrail AreaPDL AreaGoal AreaMsg
enum trace.ObjType: ObjNone ObjEnvControl ObjEnvPVar ObjChoicePoint ObjHeap ObjTrail ObjPDL ObjParcallLocal ObjParcallGlobal ObjParcallCount ObjMarker ObjGoalFrame ObjMessage
table trace.areaNames: "none" "heap" "local" "control" "trail" "pdl" "goal" "msg"
table trace.objTable: "none" "envt/control" "envt/pvars" "choicepoint" "heap" "trail" "pdl" "parcall/local" "parcall/global" "parcall/counts" "marker" "goalframe" "message"

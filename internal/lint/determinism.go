package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// determinismScope lists the path suffixes of the trace-affecting
// packages: everything between the emulator's first emitted reference
// and the bytes of an RWT2 file or a replayed statistic. A wall-clock
// read, a PRNG draw or a map-iteration-ordered emission in any of them
// can change stored-trace bytes or replayed stats between two runs of
// the same cell, which the golden parity suites treat as corruption.
var determinismScope = []string{
	"internal/core",
	"internal/mem",
	"internal/trace",
	"internal/cache",
	"internal/experiments",
	"internal/bench",
}

// Determinism flags nondeterminism sources in trace-affecting
// packages: time.Now/time.Since, math/rand, map iteration whose body
// has order-dependent effects (emits, appends or sends), and select
// statements with several ready-biased communication cases.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "trace-affecting packages must not consult clocks, PRNGs, map order or racy selects",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !pathInScope(pass.Pkg.Path, determinismScope) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a trace-affecting package: seeded or not, PRNG draws make replay order-sensitive; derive pseudo-random inputs from a counted hash instead", path)
			}
		}
	}
	funcDecls(pass.Pkg, func(f *ast.File, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if obj := calleeObject(info, n); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
					if obj.Name() == "Now" || obj.Name() == "Since" {
						pass.Reportf(n.Pos(), "time.%s in a trace-affecting package: wall-clock reads differ across runs and shard counts; thread timing through the caller or drop it", obj.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, fd, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	})
}

// calleeObject resolves the called function's object, for both
// pkg.Func and expr.Method call forms.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// emitMethodNames are method names whose call inside a map-range body
// marks the iteration as order-dependent: each call appends to some
// ordered stream (a sink, a writer, a table) in map order.
var emitMethodNames = map[string]bool{
	"Add": true, "AddBatch": true, "AddRow": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Emit": true, "Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// checkMapRange flags `for ... range m` over a map when the loop body
// has order-dependent effects: it sends on a channel, calls an
// emitting method, or appends to a slice declared outside the loop
// that is never subsequently sorted. The collect-then-sort idiom
// (append keys, sort.Strings, iterate sorted) passes — sorting erases
// the iteration order.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := pass.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: delivery order follows map order, which differs across runs; collect and sort keys first")
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && emitMethodNames[sel.Sel.Name] {
				pass.Reportf(n.Pos(), "%s call inside map iteration emits in map order, which differs across runs; collect and sort keys first", sel.Sel.Name)
			}
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, fd, rng, n)
		}
		return true
	})
}

// checkMapRangeAppend flags `outer = append(outer, ...)` in a map-range
// body unless outer is later passed to a sort call in the same
// function.
func checkMapRangeAppend(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != nil && info.Uses[id].Pkg() != nil {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		target, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.ObjectOf(target)
		if obj == nil || obj.Pos() >= rng.Pos() {
			continue // declared inside the loop: order is loop-local
		}
		if sortedLater(pass, fd, obj, rng) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %q inside map iteration accumulates in map order, which differs across runs; sort it afterwards or collect and sort keys first", target.Name)
	}
}

// sortedLater reports whether obj is passed to a recognized sorting
// call after the range statement within fd.
func sortedLater(pass *Pass, fd *ast.FuncDecl, obj types.Object, rng *ast.RangeStmt) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		sorts := false
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			// Any call into sort or slices counts (sort.Strings,
			// sort.Slice, slices.SortFunc, ...): those packages exist to
			// impose order.
			if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
				if pkg, ok := info.Uses[base].(*types.PkgName); ok {
					p := pkg.Imported().Path()
					sorts = p == "sort" || p == "slices"
				}
			}
		case *ast.Ident:
			// A local helper counts when its name says so (sortRows...).
			sorts = strings.HasPrefix(strings.ToLower(fun.Name), "sort")
		}
		if !sorts {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkSelect flags selects with two or more communication cases:
// when several cases are ready, the runtime picks uniformly at random,
// so any trace-affecting effect ordered by the select is
// nondeterministic. A single comm case (with or without default) is
// the deterministic poll idiom and passes.
func checkSelect(pass *Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Pos(), "select with %d communication cases: the runtime breaks ties randomly, so downstream effects are order-nondeterministic; split the cases or impose an explicit priority", comm)
	}
}

package bench

// Golden parity for parallel generation: encoding a benchmark cell's
// reference stream through trace.ParallelChunkWriter must reproduce
// the exact golden SHA-256 of the sequential encoder — with no
// EmulatorVersion bump — at every worker count. This is the
// acceptance gate for the parallel quantum-generation path: the
// pipeline may move encode and I/O off the engine's goroutine, but
// the bytes (and so the content addresses of stored traces) must not
// move at all.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// parallelFingerprint is traceFingerprint through the parallel encoder.
func parallelFingerprint(t *testing.T, name string, pes int, sequential bool, workers int) goldenCell {
	t.Helper()
	b, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	var enc bytes.Buffer
	cw, err := trace.NewParallelChunkWriter(&enc, trace.Meta{
		Benchmark:       name,
		PEs:             pes,
		Sequential:      sequential,
		EmulatorVersion: core.EmulatorVersion,
	}, workers)
	if err != nil {
		t.Fatalf("%s: NewParallelChunkWriter: %v", goldenKey(name, pes, sequential), err)
	}
	if _, err := Run(context.Background(), b, RunConfig{PEs: pes, Sequential: sequential, Sink: cw}); err != nil {
		cw.Close()
		t.Fatalf("%s: run: %v", goldenKey(name, pes, sequential), err)
	}
	if err := cw.Close(); err != nil {
		t.Fatalf("%s: close: %v", goldenKey(name, pes, sequential), err)
	}
	m := cw.Meta()
	sum := sha256.Sum256(enc.Bytes())
	return goldenCell{
		SHA256: hex.EncodeToString(sum[:]),
		Refs:   m.Refs,
		PerPE:  m.PerPE,
	}
}

func TestGoldenTraceParityParallelGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("engine runs; skipped in -short")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (generate with -update on the sequential suite): %v", goldenPath, err)
	}
	var goldens map[string]goldenCell
	if err := json.Unmarshal(data, &goldens); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	// deriv and qsort at 1 and 8 PEs bound the runtime; the sequential
	// suite covers the full Names() grid and the codec byte-parity
	// tests (internal/trace) cover the encoder exhaustively.
	for _, name := range []string{"deriv", "qsort"} {
		for _, pes := range []int{1, 8} {
			for _, seq := range []bool{pes == 1, false} {
				key := goldenKey(name, pes, seq)
				want, ok := goldens[key]
				if !ok {
					t.Errorf("%s: missing golden", key)
					continue
				}
				for _, workers := range []int{1, 4} {
					got := parallelFingerprint(t, name, pes, seq, workers)
					if got.SHA256 != want.SHA256 {
						t.Errorf("%s workers=%d: trace bytes changed:\n got sha256 %s\nwant sha256 %s",
							key, workers, got.SHA256, want.SHA256)
					}
					if got.Refs != want.Refs {
						t.Errorf("%s workers=%d: refs = %d, want %d", key, workers, got.Refs, want.Refs)
					}
				}
			}
		}
	}
}

// TestEnsureStoredParallelWorkersBytes checks the full storage path:
// a store filled with SetGenWorkers(4) holds byte-identical files (and
// equal sidecars) to one filled synchronously.
func TestEnsureStoredParallelWorkersBytes(t *testing.T) {
	b, ok := ByName("deriv")
	if !ok {
		t.Fatal("deriv benchmark missing")
	}
	defer SetTraceStore(nil)
	defer SetGenWorkers(1)

	fill := func(dir string, workers int) ([]byte, RunRecord) {
		t.Helper()
		s, err := tracestore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		SetGenWorkers(workers)
		SetTraceStore(s)
		k, err := EnsureStored(context.Background(), b, 4, false)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := os.ReadFile(s.Path(k))
		if err != nil {
			t.Fatal(err)
		}
		var rec RunRecord
		if ok, err := s.LoadSidecar(k, &rec); err != nil || !ok {
			t.Fatalf("workers=%d: sidecar: ok=%v err=%v", workers, ok, err)
		}
		return data, rec
	}

	seqBytes, seqRec := fill(filepath.Join(t.TempDir(), "seq"), 1)
	parBytes, parRec := fill(filepath.Join(t.TempDir(), "par"), 4)
	if !bytes.Equal(parBytes, seqBytes) {
		t.Errorf("stored trace bytes differ: %d vs %d bytes", len(parBytes), len(seqBytes))
	}
	seqJSON, _ := json.Marshal(seqRec)
	parJSON, _ := json.Marshal(parRec)
	if !bytes.Equal(parJSON, seqJSON) {
		t.Errorf("sidecars differ:\n par %s\n seq %s", parJSON, seqJSON)
	}
}

// Package bench provides the paper's benchmark programs in &-Prolog
// (Prolog + CGE annotations) together with deterministic input
// generators and runners:
//
//   - deriv:  symbolic differentiation of a large arithmetic expression
//   - tak:    Takeuchi's function with three-way AND-parallelism
//   - qsort:  quicksort with difference lists, parallel recursion
//   - matrix: naive matrix multiplication, parallel over rows
//
// and the "large sequential benchmark" reference set standing in for
// Tick's large Prolog programs in the Table 3 locality-fit study:
//
//   - nrev:   naive reverse of a long list
//   - queens: N-queens first solution (deep backtracking)
//   - primes: sieve of Eratosthenes
//   - zebra:  the five-houses constraint puzzle (heavy backtracking)
//
// The exact 1988 inputs were not published; generators are sized so
// that instruction and reference counts land in the same range as the
// paper's Table 2 (tens of thousands of instructions, ~1e5-5e5
// references at 8 PEs).
package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Benchmark is a runnable Prolog workload.
type Benchmark struct {
	// Name identifies the benchmark ("deriv", "tak", ...).
	Name string
	// Source is the &-Prolog program text.
	Source string
	// Query is the goal to run (without "?-").
	Query string
	// Check validates the result (nil-able).
	Check func(*core.Result) error
	// Parallel reports whether the program contains CGEs.
	Parallel bool
}

// lcg is a small deterministic generator so benchmark inputs are
// reproducible without math/rand (and stable across Go versions).
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 33
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// Paper returns the four benchmarks of the paper's Table 2, with inputs
// sized to approximate its scale.
func Paper() []Benchmark {
	return []Benchmark{Deriv(), Tak(), Qsort(), Matrix()}
}

// Large returns the sequential locality-reference suite (Table 3's
// "large benchmarks").
func Large() []Benchmark {
	return []Benchmark{NRev(), Queens(), Primes(), Zebra()}
}

// Names returns the name of every fixed benchmark the CLIs can run:
// the paper suite, the large sequential suite, and the checked-CGE
// ablation variant. Parameterized variants resolve through ByName in
// addition to these — "deriv-d<N>" (parallelism depth 0..16) and the
// sized large/paper variants "deriv-<nodes>", "qsort-<len>",
// "matrix-<n>", "nrev-<len>", "queens-<n>" and "primes-<limit>".
func Names() []string {
	var out []string
	for _, b := range append(Paper(), Large()...) {
		out = append(out, b.Name)
	}
	return append(out, DerivChecked().Name)
}

// ByName finds a benchmark by name: every fixed benchmark in Names()
// plus the parameterized variants ("deriv-checked", "deriv-d<N>",
// "nrev-<len>", "queens-<n>", "primes-<limit>", "qsort-<len>",
// "matrix-<n>", "deriv-<nodes>"). The returned Benchmark's Name equals
// the requested name, so parameterized variants key distinctly in the
// trace store.
func ByName(name string) (Benchmark, bool) {
	for _, b := range append(Paper(), Large()...) {
		if b.Name == name {
			return b, true
		}
	}
	if name == "deriv-checked" {
		return DerivChecked(), true
	}
	base, arg, ok := splitSizedName(name)
	if !ok {
		return Benchmark{}, false
	}
	if base == "deriv" && len(arg) > 1 && arg[0] == 'd' {
		if depth, ok := parseSize(arg[1:], 0, 16); ok {
			return DerivDepth(depth), true
		}
		return Benchmark{}, false
	}
	n, numOK := parseSize(arg, 1, 1<<20)
	if !numOK {
		return Benchmark{}, false
	}
	switch base {
	case "deriv":
		if n <= 512 {
			return DerivSized(n), true
		}
	case "qsort":
		if n <= 20000 {
			return QsortSized(n), true
		}
	case "matrix":
		if n <= 32 {
			return MatrixSized(n), true
		}
	case "nrev":
		if n <= 5000 {
			return NRevSized(n), true
		}
	case "queens":
		if n >= 4 && n <= 12 {
			return QueensSized(n), true
		}
	case "primes":
		if n >= 2 && n <= 100000 {
			return PrimesSized(n), true
		}
	}
	return Benchmark{}, false
}

// splitSizedName splits "nrev-220" into ("nrev", "220"). The parameter
// is everything after the last dash.
func splitSizedName(name string) (base, arg string, ok bool) {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

// parseSize parses a strictly numeric benchmark parameter within
// [lo, hi]. Unlike Sscanf it rejects trailing garbage, so "nrev-50x"
// does not silently resolve as nrev-50.
func parseSize(s string, lo, hi int) (int, bool) {
	n, err := strconv.Atoi(s)
	if err != nil || n < lo || n > hi || (len(s) > 1 && s[0] == '0') {
		return 0, false
	}
	return n, true
}

// RunConfig parameterizes a benchmark run.
type RunConfig struct {
	// PEs is the number of workers.
	PEs int
	// Sequential compiles CGEs away (the WAM baseline).
	Sequential bool
	// Sink receives the full memory trace (nil to skip tracing).
	Sink trace.Sink
	// Layout overrides worker memory sizes (zero = default).
	Layout mem.Layout
	// ExecShards overrides the engine's sharded-execution host-worker
	// count for this run (0 = use the package default set by
	// SetExecShards; 1 = force the serial dispatcher).
	ExecShards int
}

// Run compiles and executes the benchmark. Every Run is one emulator
// execution and counts toward EngineRuns. Cancelling ctx aborts the
// engine mid-run (within a few thousand simulated cycles) and returns
// ctx.Err().
func Run(ctx context.Context, b Benchmark, cfg RunConfig) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	engineRuns.Add(1)
	code, err := compile.Compile(b.Source, b.Query, compile.Options{Sequential: cfg.Sequential})
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	shards := cfg.ExecShards
	if shards == 0 {
		shards = ExecShards()
	}
	eng, err := core.New(code, core.Config{
		PEs:        cfg.PEs,
		Layout:     cfg.Layout,
		Sink:       cfg.Sink,
		Cancel:     ctx.Done(),
		ExecShards: shards,
	})
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	res, err := eng.Run()
	if err != nil {
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	// The result is self-contained (bindings are rendered strings), so
	// the engine's memory slab can go back to the pool: the next run of
	// the same shape skips the O(address space) zeroing.
	eng.Close()
	if b.Check != nil {
		if err := b.Check(res); err != nil {
			return nil, fmt.Errorf("bench %s: wrong answer: %w", b.Name, err)
		}
	}
	return res, nil
}

func expectSuccess(res *core.Result) error {
	if !res.Success {
		return fmt.Errorf("query failed")
	}
	return nil
}

func expectBinding(name, want string) func(*core.Result) error {
	return func(res *core.Result) error {
		if !res.Success {
			return fmt.Errorf("query failed")
		}
		if got := res.Bindings[name]; got != want {
			return fmt.Errorf("%s = %.60s..., want %.60s...", name, got, want)
		}
		return nil
	}
}

// --- deriv ---

// derivSource parallelizes the top levels of the expression tree only
// (granularity control: pd/4 carries a depth budget and falls back to
// the sequential d/3 below it). The input is ground, so the paper's
// compile-time analysis would remove all run-time independence checks;
// the CGEs are therefore unconditional. derivCheckedSource keeps the
// checks for the ablation study.
const derivSource = `
% Driver: differentiate the same expression N times, as the classical
% deriv benchmarks do to reach measurable run lengths. The expression is
% re-derived (and the result rebuilt) on every iteration.
dloop(0, _).
dloop(N, E) :- N > 0, pd(E, x, _, 2), M is N - 1, dloop(M, E).

% Parallel top levels (depth-bounded AND-parallelism).
pd(U+V, X, DU+DV, N) :- N > 0, !, M is N - 1,
	(pd(U, X, DU, M) & pd(V, X, DV, M)).
pd(U-V, X, DU-DV, N) :- N > 0, !, M is N - 1,
	(pd(U, X, DU, M) & pd(V, X, DV, M)).
pd(U*V, X, DU*V+U*DV, N) :- N > 0, !, M is N - 1,
	(pd(U, X, DU, M) & pd(V, X, DV, M)).
pd(U/V, X, (DU*V-U*DV)/(V*V), N) :- N > 0, !, M is N - 1,
	(pd(U, X, DU, M) & pd(V, X, DV, M)).
pd(E, X, D, _) :- d(E, X, D).

% Sequential symbolic differentiation.
d(U+V, X, DU+DV) :- d(U, X, DU), d(V, X, DV).
d(U-V, X, DU-DV) :- d(U, X, DU), d(V, X, DV).
d(U*V, X, DU*V+U*DV) :- d(U, X, DU), d(V, X, DV).
d(U/V, X, (DU*V-U*DV)/(V*V)) :- d(U, X, DU), d(V, X, DV).
d(-U, X, -DU) :- d(U, X, DU).
d(exp(U), X, exp(U)*DU) :- d(U, X, DU).
d(log(U), X, DU/U) :- d(U, X, DU).
d(X, X, 1) :- !.
d(C, _, 0) :- atomic(C).
`

// derivCheckedSource is the run-time-checked variant: every CGE guards
// with ground/1, as written by a programmer without global analysis.
// Used by the check-overhead ablation.
const derivCheckedSource = `
dloop(0, _).
dloop(N, E) :- N > 0, pd(E, x, _, 2), M is N - 1, dloop(M, E).
pd(U+V, X, DU+DV, N) :- N > 0, !, M is N - 1,
	(ground(U+V) | pd(U, X, DU, M) & pd(V, X, DV, M)).
pd(U-V, X, DU-DV, N) :- N > 0, !, M is N - 1,
	(ground(U-V) | pd(U, X, DU, M) & pd(V, X, DV, M)).
pd(U*V, X, DU*V+U*DV, N) :- N > 0, !, M is N - 1,
	(ground(U*V) | pd(U, X, DU, M) & pd(V, X, DV, M)).
pd(U/V, X, (DU*V-U*DV)/(V*V), N) :- N > 0, !, M is N - 1,
	(ground(U*V) | pd(U, X, DU, M) & pd(V, X, DV, M)).
pd(E, X, D, _) :- d(E, X, D).
d(U+V, X, DU+DV) :- d(U, X, DU), d(V, X, DV).
d(U-V, X, DU-DV) :- d(U, X, DU), d(V, X, DV).
d(U*V, X, DU*V+U*DV) :- d(U, X, DU), d(V, X, DV).
d(U/V, X, (DU*V-U*DV)/(V*V)) :- d(U, X, DU), d(V, X, DV).
d(-U, X, -DU) :- d(U, X, DU).
d(exp(U), X, exp(U)*DU) :- d(U, X, DU).
d(log(U), X, DU/U) :- d(U, X, DU).
d(X, X, 1) :- !.
d(C, _, 0) :- atomic(C).
`

// derivExpr builds a deterministic arithmetic expression with the given
// number of binary nodes.
func derivExpr(binaryNodes int) string {
	rng := &lcg{s: 88172645463325252}
	var build func(n int) string
	build = func(n int) string {
		if n <= 0 {
			if rng.intn(3) == 0 {
				return fmt.Sprintf("%d", 1+rng.intn(9))
			}
			return "x"
		}
		// occasionally wrap in a unary node
		if rng.intn(6) == 0 {
			switch rng.intn(3) {
			case 0:
				return "exp(" + build(n-1) + ")"
			case 1:
				return "log(" + build(n-1) + ")"
			default:
				return "- (" + build(n-1) + ")"
			}
		}
		left := (n - 1) / 2
		right := n - 1 - left
		op := []string{"+", "-", "*", "/"}[rng.intn(4)]
		return "(" + build(left) + " " + op + " " + build(right) + ")"
	}
	return build(binaryNodes)
}

// Deriv returns the deriv benchmark, sized so the sequential run
// executes ~35k instructions (paper Table 2: 33520).
func Deriv() Benchmark {
	return Benchmark{
		Name:     "deriv",
		Source:   derivSource,
		Query:    fmt.Sprintf("D = done, dloop(40, %s)", derivExpr(24)),
		Check:    expectSuccess,
		Parallel: true,
	}
}

// DerivSized returns deriv with a custom expression size — the
// "deriv-<nodes>" variant (Figure 2's processor sweep uses the
// standard size; examples use smaller ones).
func DerivSized(binaryNodes int) Benchmark {
	b := Deriv()
	b.Name = fmt.Sprintf("deriv-%d", binaryNodes)
	b.Query = fmt.Sprintf("pd(%s, x, D, 2)", derivExpr(binaryNodes))
	return b
}

// DerivDepth returns deriv with a custom parallelism depth budget (the
// granularity-control ablation: depth 0 is fully sequential, each
// additional level doubles the available parallelism).
func DerivDepth(depth int) Benchmark {
	b := Deriv()
	b.Name = fmt.Sprintf("deriv-d%d", depth)
	b.Query = fmt.Sprintf("D = done, dloop(40, %s)", derivExpr(24))
	b.Source = strings.Replace(derivSource,
		"dloop(N, E) :- N > 0, pd(E, x, _, 2), M is N - 1, dloop(M, E).",
		fmt.Sprintf("dloop(N, E) :- N > 0, pd(E, x, _, %d), M is N - 1, dloop(M, E).", depth), 1)
	return b
}

// DerivChecked returns deriv with run-time ground/1 checks on every
// CGE — the ablation for the cost of run-time independence checking.
func DerivChecked() Benchmark {
	b := Deriv()
	b.Name = "deriv-checked"
	b.Source = derivCheckedSource
	return b
}

// --- tak ---

const takSource = `
% Takeuchi's function with three-way AND-parallel recursion at the top
% levels (ptak/5 carries a depth budget). Arguments are ground integers,
% so the calls are independent and the CGE needs no run-time checks.
ptak(X, Y, Z, A, _) :- X =< Y, !, A = Z.
ptak(X, Y, Z, A, N) :- N > 0, !, M is N - 1,
	X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
	(ptak(X1, Y, Z, A1, M) & ptak(Y1, Z, X, A2, M) & ptak(Z1, X, Y, A3, M)),
	ptak(A1, A2, A3, A, M).
ptak(X, Y, Z, A, _) :- tak(X, Y, Z, A).

tak(X, Y, Z, A) :- X =< Y, !, A = Z.
tak(X, Y, Z, A) :-
	X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
	tak(X1, Y, Z, A1), tak(Y1, Z, X, A2), tak(Z1, X, Y, A3),
	tak(A1, A2, A3, A).
`

// takValue computes tak in Go for answer checking.
func takValue(x, y, z int) int {
	if x <= y {
		return z
	}
	return takValue(takValue(x-1, y, z), takValue(y-1, z, x), takValue(z-1, x, y))
}

// Tak returns the tak benchmark, sized so the sequential run executes
// ~73k instructions (paper Table 2: 75254).
func Tak() Benchmark {
	const x, y, z = 13, 8, 4
	return Benchmark{
		Name:     "tak",
		Source:   takSource,
		Query:    fmt.Sprintf("ptak(%d, %d, %d, A, 4)", x, y, z),
		Check:    expectBinding("A", fmt.Sprintf("%d", takValue(x, y, z))),
		Parallel: true,
	}
}

// --- qsort ---

const qsortSource = `
% Quicksort with difference lists (the paper's formulation). The two
% recursive calls construct disjoint parts of the result; they are run
% in AND-parallel unconditionally, as in the paper (this is the classic
% non-strict-independence example: R1 is shared but only consumed by
% one side and constructed by the other).
qsort(L, S) :- pqs(L, S, [], 6).
pqs(L, R, R0, 0) :- !, qs(L, R, R0).
pqs([], R, R, _).
pqs([X|L], R, R0, N) :-
	part(L, X, L1, L2), M is N - 1,
	(pqs(L1, R, [X|R1], M) & pqs(L2, R1, R0, M)).
qs([], R, R).
qs([X|L], R, R0) :-
	part(L, X, L1, L2),
	qs(L1, R, [X|R1]), qs(L2, R1, R0).
part([], _, [], []).
part([E|R], C, [E|L1], L2) :- E < C, !, part(R, C, L1, L2).
part([E|R], C, L1, [E|L2]) :- part(R, C, L1, L2).
`

func qsortInput(n int) []int {
	rng := &lcg{s: 424242}
	out := make([]int, n)
	for i := range out {
		out[i] = rng.intn(10 * n)
	}
	return out
}

func intsToProlog(xs []int) string {
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Qsort returns the qsort benchmark.
func Qsort() Benchmark {
	b := QsortSized(700) // ~237k instructions (paper Table 2: 237884)
	b.Name = "qsort"
	return b
}

// QsortSized returns qsort over a custom input length — the
// "qsort-<len>" variant.
func QsortSized(n int) Benchmark {
	in := qsortInput(n)
	sorted := append([]int(nil), in...)
	sort.Ints(sorted)
	return Benchmark{
		Name:     fmt.Sprintf("qsort-%d", n),
		Source:   qsortSource,
		Query:    fmt.Sprintf("qsort(%s, S)", intsToProlog(in)),
		Check:    expectBinding("S", intsToProlog(sorted)),
		Parallel: true,
	}
}

// --- matrix ---

const matrixSource = `
% Naive matrix multiplication, parallel over result rows (the paper's
% coarse-granularity benchmark). The second matrix is supplied
% transposed so every element is a vector dot product.
mmult([], _, []).
mmult([R|Rs], C, [X|Xs]) :- (mrow(R, C, X) & mmult(Rs, C, Xs)).
mrow(_, [], []).
mrow(R, [C|Cs], [E|Es]) :- vmul(R, C, E), mrow(R, Cs, Es).
vmul([], [], 0).
vmul([A|As], [B|Bs], S) :- vmul(As, Bs, S1), S is S1 + A*B.
`

func matrixInput(n int) ([][]int, [][]int) {
	rng := &lcg{s: 1234567}
	a := make([][]int, n)
	b := make([][]int, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int, n)
		b[i] = make([]int, n)
		for j := 0; j < n; j++ {
			a[i][j] = rng.intn(10)
			b[i][j] = rng.intn(10)
		}
	}
	return a, b
}

func matToProlog(m [][]int) string {
	rows := make([]string, len(m))
	for i, r := range m {
		rows[i] = intsToProlog(r)
	}
	return "[" + strings.Join(rows, ",") + "]"
}

// Matrix returns the matrix multiplication benchmark (12x12 as in the
// paper: 12 row-parcalls = 24 goals in parallel; ~48k instructions vs
// the paper's 95349 — same order, and the same refs/instruction ratio
// of ~1.0).
func Matrix() Benchmark {
	b := MatrixSized(12)
	b.Name = "matrix"
	return b
}

// MatrixSized returns n×n matrix multiplication — the "matrix-<n>"
// variant.
func MatrixSized(n int) Benchmark {
	a, b := matrixInput(n)
	// transpose b
	bt := make([][]int, n)
	for i := range bt {
		bt[i] = make([]int, n)
		for j := range bt[i] {
			bt[i][j] = b[j][i]
		}
	}
	// expected product
	prod := make([][]int, n)
	for i := range prod {
		prod[i] = make([]int, n)
		for j := 0; j < n; j++ {
			s := 0
			for k := 0; k < n; k++ {
				s += a[i][k] * b[k][j]
			}
			prod[i][j] = s
		}
	}
	return Benchmark{
		Name:     fmt.Sprintf("matrix-%d", n),
		Source:   matrixSource,
		Query:    fmt.Sprintf("mmult(%s, %s, P)", matToProlog(a), matToProlog(bt)),
		Check:    expectBinding("P", matToProlog(prod)),
		Parallel: true,
	}
}

// --- large sequential reference suite ---

const nrevSource = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
`

// NRev returns naive reverse of a 220-element list (~24k logical
// inferences, a classic WAM locality workload).
func NRev() Benchmark {
	b := NRevSized(220)
	b.Name = "nrev"
	return b
}

// NRevSized returns naive reverse of an n-element list — the
// "nrev-<len>" variant.
func NRevSized(n int) Benchmark {
	in := make([]int, n)
	rev := make([]int, n)
	for i := 0; i < n; i++ {
		in[i] = i
		rev[n-1-i] = i
	}
	return Benchmark{
		Name:   fmt.Sprintf("nrev-%d", n),
		Source: nrevSource,
		Query:  fmt.Sprintf("nrev(%s, R)", intsToProlog(in)),
		Check:  expectBinding("R", intsToProlog(rev)),
	}
}

const queensSource = `
% N-queens, first solution, classic generate and test with heavy
% backtracking (choice-point and trail exercise).
queens(N, Qs) :- range(1, N, Ns), queens3(Ns, [], Qs).
queens3([], Qs, Qs).
queens3(UnplacedQs, SafeQs, Qs) :-
	sel(UnplacedQs, UnplacedQs1, Q),
	not_attack(SafeQs, Q, 1),
	queens3(UnplacedQs1, [Q|SafeQs], Qs).
not_attack([], _, _).
not_attack([Y|Ys], Q, N) :-
	Q =\= Y + N, Q =\= Y - N,
	N1 is N + 1,
	not_attack(Ys, Q, N1).
sel([X|Xs], Xs, X).
sel([Y|Ys], [Y|Zs], X) :- sel(Ys, Zs, X).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
`

// Queens returns 8-queens (first solution).
func Queens() Benchmark {
	b := QueensSized(8)
	b.Name = "queens"
	return b
}

// QueensSized returns n-queens, first solution — the "queens-<n>"
// variant.
func QueensSized(n int) Benchmark {
	return Benchmark{
		Name:   fmt.Sprintf("queens-%d", n),
		Source: queensSource,
		Query:  fmt.Sprintf("queens(%d, Qs)", n),
		Check:  expectSuccess,
	}
}

const primesSource = `
% Sieve of Eratosthenes over a generated integer list.
primes(N, Ps) :- range2(2, N, Ns), sift(Ns, Ps).
sift([], []).
sift([P|Ns], [P|Ps]) :- filter(Ns, P, Left), sift(Left, Ps).
filter([], _, []).
filter([X|Xs], P, Out) :- M is X mod P, keep(M, X, Xs, P, Out).
keep(0, _, Xs, P, Out) :- filter(Xs, P, Out).
keep(M, X, Xs, P, [X|Out]) :- M > 0, filter(Xs, P, Out).
range2(N, N, [N]) :- !.
range2(M, N, [M|Ns]) :- M < N, M1 is M + 1, range2(M1, N, Ns).
`

// Primes sieves up to 1000.
func Primes() Benchmark {
	b := PrimesSized(1000)
	b.Name = "primes"
	return b
}

// PrimesSized sieves up to n — the "primes-<limit>" variant. The
// expected prime list is recomputed in Go, so the check is exact at
// any size.
func PrimesSized(n int) Benchmark {
	composite := make([]bool, n+1)
	var primes []int
	for p := 2; p <= n; p++ {
		if composite[p] {
			continue
		}
		primes = append(primes, p)
		for q := p * p; q <= n; q += p {
			composite[q] = true
		}
	}
	return Benchmark{
		Name:   fmt.Sprintf("primes-%d", n),
		Source: primesSource,
		Query:  fmt.Sprintf("primes(%d, Ps)", n),
		Check:  expectBinding("Ps", intsToProlog(primes)),
	}
}

const zebraSource = `
% The five-houses ("zebra") puzzle: pure unification and member/select
% backtracking over a constraint network.
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
next_to(A, B, [A,B|_]).
next_to(A, B, [B,A|_]).
next_to(A, B, [_|T]) :- next_to(A, B, T).
right_of(A, B, [B,A|_]).
right_of(A, B, [_|T]) :- right_of(A, B, T).
first(X, [X|_]).
middle(X, [_,_,X,_,_]).

zebra(Owner) :-
	Houses = [h(_,_,_,_,_), h(_,_,_,_,_), h(_,_,_,_,_), h(_,_,_,_,_), h(_,_,_,_,_)],
	member(h(england, red, _, _, _), Houses),
	member(h(spain, _, dog, _, _), Houses),
	member(h(_, green, _, coffee, _), Houses),
	member(h(ukraine, _, _, tea, _), Houses),
	right_of(h(_, green, _, _, _), h(_, ivory, _, _, _), Houses),
	member(h(_, _, snails, _, oldgold), Houses),
	member(h(_, yellow, _, _, kools), Houses),
	middle(h(_, _, _, milk, _), Houses),
	first(h(norway, _, _, _, _), Houses),
	next_to(h(_, _, _, _, chesterfield), h(_, _, fox, _, _), Houses),
	next_to(h(_, _, _, _, kools), h(_, _, horse, _, _), Houses),
	member(h(_, _, _, juice, luckystrike), Houses),
	member(h(japan, _, _, _, parliament), Houses),
	next_to(h(norway, _, _, _, _), h(_, blue, _, _, _), Houses),
	member(h(Owner, _, zebra, _, _), Houses).
`

// Zebra returns the five-houses puzzle.
func Zebra() Benchmark {
	return Benchmark{
		Name:   "zebra",
		Source: zebraSource,
		Query:  "zebra(Owner)",
		Check:  expectBinding("Owner", "japan"),
	}
}

package bench

import (
	"context"
	"testing"
)

// TestByNameCoversAllRunnable enumerates every benchmark name the CLIs
// (cmd/rapwam -bench, cmd/cachesim -bench, cmd/tracegen) accept and
// checks that ByName resolves each to a benchmark carrying exactly that
// name — so a stored trace keyed by name always round-trips back to
// the same workload.
func TestByNameCoversAllRunnable(t *testing.T) {
	names := Names()
	// Parameterized variants of every suite (the Large suite's sized
	// variants were silently unresolvable before ByName learned them).
	names = append(names,
		"deriv-d0", "deriv-d4", "deriv-d16",
		"deriv-8", "deriv-512",
		"qsort-10", "qsort-20000",
		"matrix-2", "matrix-32",
		"nrev-1", "nrev-50", "nrev-5000",
		"queens-4", "queens-6", "queens-12",
		"primes-2", "primes-100", "primes-100000",
	)
	seen := make(map[string]bool)
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate name %q", name)
		}
		seen[name] = true
		b, ok := ByName(name)
		if !ok {
			t.Errorf("ByName(%q) does not resolve", name)
			continue
		}
		if b.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, b.Name)
		}
		if b.Source == "" || b.Query == "" {
			t.Errorf("ByName(%q) returned an empty benchmark", name)
		}
	}
}

// TestNamesComplete pins Names to the full fixed suite.
func TestNamesComplete(t *testing.T) {
	want := []string{"deriv", "tak", "qsort", "matrix", "nrev", "queens", "primes", "zebra", "deriv-checked"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestByNameRejectsMalformed checks the strict parsing: names that the
// old Sscanf-based lookup would have mis-resolved must not resolve.
func TestByNameRejectsMalformed(t *testing.T) {
	for _, name := range []string{
		"deriv-d3x", "deriv-d-1", "deriv-d17", "deriv-dd3",
		"nrev-", "nrev-0", "nrev-50x", "nrev-05", "nrev--5", "nrev-5001",
		"queens-3", "queens-13", "primes-1", "qsort-0", "matrix-33",
		"unknown", "qsort2", "-5", "deriv-",
	} {
		if b, ok := ByName(name); ok {
			t.Errorf("ByName(%q) resolved to %q, want rejection", name, b.Name)
		}
	}
}

// TestSizedVariantsRun executes one small instance of each sized
// variant end to end (answer checks included), so the parameterized
// path is exercised, not just parsed.
func TestSizedVariantsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"nrev-30", "queens-5", "primes-50", "qsort-40", "matrix-3", "deriv-4", "deriv-d1"} {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) does not resolve", name)
		}
		if _, err := Run(context.Background(), b, RunConfig{PEs: 2}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

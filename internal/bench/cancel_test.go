package bench

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracestore"
)

// cancelAfter is a trace sink that cancels a context once it has seen
// n references — a deterministic way to interrupt the engine mid-run
// (the engine polls the context every few thousand cycles).
type cancelAfter struct {
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfter) Add(trace.Ref) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

func TestRunHonorsPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := EngineRuns()
	if _, err := Run(ctx, Deriv(), RunConfig{PEs: 1, Sequential: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if got := EngineRuns(); got != before {
		t.Fatalf("cancelled-before-start Run still counted an engine run (%d -> %d)", before, got)
	}
}

func TestRunCancelsMidRun(t *testing.T) {
	for _, pes := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		sink := &cancelAfter{n: 5000, cancel: cancel}
		_, err := Run(ctx, Qsort(), RunConfig{PEs: pes, Sequential: pes == 1, Sink: sink})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PEs=%d: err = %v, want context.Canceled", pes, err)
		}
		// The abort must be prompt: the engine polls every ~4096 cycles,
		// so only a bounded sliver of the trace is emitted after the
		// cancellation point.
		if sink.seen > sink.n+64*4096 {
			t.Fatalf("PEs=%d: %d refs emitted after cancellation at %d — abort not prompt", pes, sink.seen-sink.n, sink.n)
		}
	}
}

func TestEnsureStoredCancellationNotMemoized(t *testing.T) {
	dir := t.TempDir()
	store, err := tracestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	SetTraceStore(store)
	defer SetTraceStore(nil)

	b := QsortSized(300) // distinct cell, cheap regeneration
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EnsureStored(ctx, b, 2, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("EnsureStored with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The cancelled flight must not poison the cell: a caller with a
	// live context regenerates it.
	if _, err := EnsureStored(context.Background(), b, 2, false); err != nil {
		t.Fatalf("EnsureStored after cancelled attempt: %v", err)
	}
	if !store.Has(StoreKey(b.Name, 2, false)) {
		t.Fatal("cell missing from store after successful retry")
	}
	// A cancelled generation must leave no temp droppings behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stranded temp file %s", filepath.Join(dir, e.Name()))
		}
	}
}

func TestEnsureStoredMidRunCancellationCleansUp(t *testing.T) {
	dir := t.TempDir()
	store, err := tracestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	SetTraceStore(store)
	defer SetTraceStore(nil)

	b := QsortSized(400)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// EnsureStored drives its own sink (the store's encoder), so the
	// cancellation comes from outside: cancel as soon as the engine
	// run has started (detected by the EngineRuns counter moving).
	before := EngineRuns()
	done := make(chan error, 1)
	go func() {
		_, err := EnsureStored(ctx, b, 4, false)
		done <- err
	}()
	for EngineRuns() == before {
		runtime.Gosched()
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		// The run may legitimately win the race and complete; only a
		// non-context error is a failure.
		if err != nil {
			t.Fatalf("EnsureStored: %v", err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stranded temp file after mid-run cancellation: %s", e.Name())
		}
	}
}

package bench

import (
	"context"
	"fmt"
	"testing"
)

func TestPaperBenchmarksSequential(t *testing.T) {
	for _, b := range Paper() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, err := Run(context.Background(), b, RunConfig{PEs: 1, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: instrs=%d refs=%d cycles=%d", b.Name,
				res.Stats.TotalInstructions(), res.Refs.Total(), res.Stats.Cycles)
		})
	}
}

func TestPaperBenchmarksParallel8(t *testing.T) {
	for _, b := range Paper() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, err := Run(context.Background(), b, RunConfig{PEs: 8})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.GoalsParallel == 0 {
				t.Error("no parallel goals")
			}
			t.Logf("%s: instrs=%d refs=%d cycles=%d goals//=%d stolen=%d",
				b.Name, res.Stats.TotalInstructions(), res.Refs.Total(),
				res.Stats.Cycles, res.Stats.GoalsParallel, res.Stats.GoalsStolen)
		})
	}
}

func TestLargeBenchmarks(t *testing.T) {
	for _, b := range Large() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, err := Run(context.Background(), b, RunConfig{PEs: 1, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: instrs=%d refs=%d", b.Name,
				res.Stats.TotalInstructions(), res.Refs.Total())
		})
	}
}

func TestParallelResultsMatchSequentialResults(t *testing.T) {
	for _, b := range Paper() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			seq, err := Run(context.Background(), b, RunConfig{PEs: 1, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Run(context.Background(), b, RunConfig{PEs: 4})
			if err != nil {
				t.Fatal(err)
			}
			for name, want := range seq.Bindings {
				if got := par.Bindings[name]; got != want {
					t.Errorf("%s: %s differs between parallel and sequential", b.Name, name)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"deriv", "tak", "qsort", "matrix", "nrev", "queens", "primes", "zebra"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) missing", name)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestDerivSpeedsUpWithPEs(t *testing.T) {
	b := Deriv()
	var prev int64
	for i, pes := range []int{1, 4} {
		res, err := Run(context.Background(), b, RunConfig{PEs: pes})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Stats.Cycles >= prev {
			t.Errorf("deriv with %d PEs: %d cycles, not faster than %d", pes, res.Stats.Cycles, prev)
		}
		prev = res.Stats.Cycles
	}
}

func TestTakValueIsClassic(t *testing.T) {
	if takValue(18, 12, 6) != 7 {
		t.Errorf("takValue(18,12,6) = %d, want 7", takValue(18, 12, 6))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	if Deriv().Query != Deriv().Query {
		t.Error("deriv query not deterministic")
	}
	if Qsort().Query != Qsort().Query {
		t.Error("qsort query not deterministic")
	}
	if Matrix().Query != Matrix().Query {
		t.Error("matrix query not deterministic")
	}
}

func ExampleRun() {
	res, err := Run(context.Background(), Tak(), RunConfig{PEs: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("A =", res.Bindings["A"])
	// Output: A = 8
}

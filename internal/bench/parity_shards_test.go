package bench

// Sharded-execution golden parity: the speculative per-PE dispatcher
// (core.Config.ExecShards > 1) promises byte-identical RWT2 traces at
// every shard count — same goldens, same content addresses, no
// EmulatorVersion bump. This test runs the full pinned grid (every
// benchmark in Names() at 1 and 8 PEs, sequential and parallel)
// through the sharded engine at several shard counts and holds the
// digests against the same golden file the serial dispatcher is pinned
// to. A sequential or 1-PE cell exercises the mode's fall-through (no
// epoch ever fires); the 8-PE parallel cells exercise the epoch
// machinery end to end.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/tracestore"
)

func execShardCounts() []int {
	counts := []int{2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

func TestGoldenTraceParityShards(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark grid; skipped in -short")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (generate with -update on the sequential suite): %v", goldenPath, err)
	}
	var goldens map[string]goldenCell
	if err := json.Unmarshal(data, &goldens); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	for _, shards := range execShardCounts() {
		for _, c := range parityCells() {
			c, shards := c, shards
			key := goldenKey(c.name, c.pes, c.seq)
			t.Run(fmt.Sprintf("%dsh/%s", shards, key), func(t *testing.T) {
				t.Parallel()
				want, ok := goldens[key]
				if !ok {
					t.Fatalf("no golden for %s (regenerate with -update)", key)
				}
				got := traceFingerprintShards(t, c.name, c.pes, c.seq, shards)
				if got.Refs != want.Refs {
					t.Errorf("refs = %d, golden %d", got.Refs, want.Refs)
				}
				for pe := 0; pe < len(want.PerPE) && pe < len(got.PerPE); pe++ {
					if got.PerPE[pe] != want.PerPE[pe] {
						t.Errorf("PE %d refs = %d, golden %d", pe, got.PerPE[pe], want.PerPE[pe])
					}
				}
				if got.SHA256 != want.SHA256 {
					t.Errorf("RWT2 digest = %s, golden %s: sharded execution changed the emitted trace at %d shards",
						got.SHA256, want.SHA256, shards)
				}
			})
		}
	}
}

// TestEnsureStoredShardsBytes pins the trace-store contract under
// sharded generation: a store cold-filled with SetExecShards(2) holds
// byte-identical files (and equal sidecars) to one filled with the
// serial dispatcher, so warm stores stay valid whichever mode wrote
// them.
func TestEnsureStoredShardsBytes(t *testing.T) {
	b, ok := ByName("qsort")
	if !ok {
		t.Fatal("qsort benchmark missing")
	}
	defer SetTraceStore(nil)
	defer SetExecShards(1)

	fill := func(shards int) ([]byte, RunRecord) {
		t.Helper()
		s, err := tracestore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		SetExecShards(shards)
		SetTraceStore(s)
		k, err := EnsureStored(context.Background(), b, 8, false)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		data, err := os.ReadFile(s.Path(k))
		if err != nil {
			t.Fatal(err)
		}
		var rec RunRecord
		if ok, err := s.LoadSidecar(k, &rec); err != nil || !ok {
			t.Fatalf("shards=%d: sidecar: ok=%v err=%v", shards, ok, err)
		}
		return data, rec
	}

	serialBytes, serialRec := fill(1)
	shardBytes, shardRec := fill(2)
	if !bytes.Equal(shardBytes, serialBytes) {
		t.Errorf("stored trace bytes differ: %d vs %d bytes", len(shardBytes), len(serialBytes))
	}
	serialJSON, _ := json.Marshal(serialRec)
	shardJSON, _ := json.Marshal(shardRec)
	if !bytes.Equal(shardJSON, serialJSON) {
		t.Errorf("sidecars differ:\n shard  %s\n serial %s", shardJSON, serialJSON)
	}
}

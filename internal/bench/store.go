package bench

// Persistent trace-store integration. When a store is attached
// (SetTraceStore), every benchmark cell — one (benchmark, PEs,
// sequential) engine run — is generated at most once per emulator
// version: the run streams its reference trace straight into the
// store's compact encoder (never buffering it) and records its engine
// statistics in a JSON sidecar, and later callers replay from disk.
// Trace and the experiments grid runner both consult the store before
// regenerating.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// engineRuns counts emulator executions (Run calls) since process
// start or the last ResetEngineRuns — the observable that verifies a
// warm trace store eliminates regeneration.
var engineRuns atomic.Int64

// EngineRuns returns the number of emulator executions performed so
// far (every Run call, including runs on behalf of Trace and the
// experiment drivers).
func EngineRuns() int64 { return engineRuns.Load() }

// ResetEngineRuns zeroes the emulator-execution counter.
func ResetEngineRuns() { engineRuns.Store(0) }

// traceStore is the attached persistent store (nil = disabled).
var traceStoreP atomic.Pointer[tracestore.Store]

// cellFlights single-flights concurrent generation of the same cell.
var cellFlights sync.Map // tracestore.Key -> *cellFlight

type cellFlight struct {
	once sync.Once
	err  error
}

// SetTraceStore attaches (or, with nil, detaches) the persistent trace
// store consulted by Trace and EnsureStored. Attaching a store resets
// the in-process generation dedup, so a store swapped mid-process is
// consulted afresh.
func SetTraceStore(s *tracestore.Store) {
	traceStoreP.Store(s)
	cellFlights.Range(func(k, _ any) bool {
		cellFlights.Delete(k)
		return true
	})
}

// TraceStore returns the attached persistent trace store (nil if none).
func TraceStore() *tracestore.Store { return traceStoreP.Load() }

// genWorkers is the configured trace-encode worker count for cold
// generation (0 = unset, meaning 1: the fully synchronous encoder).
var genWorkers atomic.Int64

// SetGenWorkers configures how many goroutines encode RWT2 chunks
// during cold trace generation (EnsureStored): n > 1 pipelines
// emulate→encode→write with n encode workers, n = 1 restores the
// synchronous encoder, and n <= 0 selects GOMAXPROCS. The stored bytes
// are identical at every setting (trace.ParallelChunkWriter), so the
// golden hashes and content addresses never move.
func SetGenWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	genWorkers.Store(int64(n))
}

// GenWorkers returns the configured generation encode worker count
// (default 1).
func GenWorkers() int {
	if n := int(genWorkers.Load()); n > 0 {
		return n
	}
	return 1
}

// StoreKey returns the trace-store key for a benchmark cell under the
// current emulator version.
func StoreKey(benchmark string, pes int, sequential bool) tracestore.Key {
	return tracestore.Key{
		Benchmark:       benchmark,
		PEs:             pes,
		Sequential:      sequential,
		EmulatorVersion: core.EmulatorVersion,
	}
}

// RunRecord is the store sidecar written alongside each generated
// trace: the generating run's outcome and instrumentation, so drivers
// that need only statistics (Figure 2, Table 2, MLIPS, lock share)
// skip the emulator exactly like trace consumers do.
type RunRecord struct {
	// Success reports whether the query succeeded (it always has for a
	// stored benchmark cell: generation validates the answer).
	Success bool
	// Stats is the engine instrumentation of the generating run.
	Stats core.Stats
	// Refs is the Table 1 reference counter of the generating run.
	Refs trace.Counter
}

// EnsureStored makes sure the attached store holds the trace and run
// sidecar for (b, pes, sequential), generating them with one engine run
// if absent. Generation is streaming (the trace never materializes in
// memory) and single-flighted: concurrent callers for the same cell
// block until the one generation completes — the generating caller's
// ctx governs the engine run, so every waiter on a cancelled flight
// observes the context error. It returns the cell's key. Calling
// EnsureStored with no store attached is an error.
func EnsureStored(ctx context.Context, b Benchmark, pes int, sequential bool) (tracestore.Key, error) {
	s := TraceStore()
	k := StoreKey(b.Name, pes, sequential)
	if s == nil {
		return k, errNoStore
	}
	v, _ := cellFlights.LoadOrStore(k, &cellFlight{})
	f := v.(*cellFlight)
	f.once.Do(func() {
		if s.Has(k) {
			return
		}
		var res *core.Result
		f.err = s.PutWorkers(k, GenWorkers(), func(sink trace.Sink) error {
			r, err := Run(ctx, b, RunConfig{PEs: pes, Sequential: sequential, Sink: sink})
			res = r
			return err
		})
		if f.err == nil {
			f.err = s.PutSidecar(k, RunRecord{Success: res.Success, Stats: res.Stats, Refs: *res.Refs})
		}
	})
	if f.err != nil {
		// A cancelled generation must not poison the flight memo: drop
		// the entry so the next caller (with a live context) retries.
		// Real failures stay — a missing benchmark or full disk will
		// fail again; callers see the original error either way.
		if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
			cellFlights.CompareAndDelete(k, v)
		}
		return k, f.err
	}
	return k, nil
}

// errNoStore reports EnsureStored use without an attached store.
var errNoStore = errors.New("bench: no trace store attached (SetTraceStore)")

package bench

// Persistent trace-store integration. When a store is attached
// (SetTraceStore), every benchmark cell — one (benchmark, PEs,
// sequential) engine run — is generated at most once per emulator
// version: the run streams its reference trace straight into the
// store's compact encoder (never buffering it) and records its engine
// statistics in a JSON sidecar, and later callers replay from disk.
// Trace and the experiments grid runner both consult the store before
// regenerating.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// engineRuns counts emulator executions (Run calls) since process
// start or the last ResetEngineRuns — the observable that verifies a
// warm trace store eliminates regeneration.
var engineRuns atomic.Int64

// EngineRuns returns the number of emulator executions performed so
// far (every Run call, including runs on behalf of Trace and the
// experiment drivers).
func EngineRuns() int64 { return engineRuns.Load() }

// ResetEngineRuns zeroes the emulator-execution counter.
func ResetEngineRuns() { engineRuns.Store(0) }

// traceStore is the attached persistent store (nil = disabled).
var traceStoreP atomic.Pointer[tracestore.Store]

// cellFlights single-flights concurrent generation of the same cell.
// Flights are removed on completion — success lives on in the store
// itself (the next caller's Has check hits), and failures are never
// memoized, so a quarantined or lost cell regenerates on the next
// call instead of replaying a stale error forever. The memo that made
// "stored" permanent in-process is gone on purpose: the store is the
// source of truth now, which is what lets self-healing reads work.
var cellFlights sync.Map // tracestore.Key -> *cellFlight

type cellFlight struct {
	done chan struct{}
	err  error
}

// SetTraceStore attaches (or, with nil, detaches) the persistent trace
// store consulted by Trace and EnsureStored.
func SetTraceStore(s *tracestore.Store) {
	traceStoreP.Store(s)
}

// TraceStore returns the attached persistent trace store (nil if none).
func TraceStore() *tracestore.Store { return traceStoreP.Load() }

// genWorkers is the configured trace-encode worker count for cold
// generation (0 = unset, meaning 1: the fully synchronous encoder).
var genWorkers atomic.Int64

// SetGenWorkers configures how many goroutines encode RWT2 chunks
// during cold trace generation (EnsureStored): n > 1 pipelines
// emulate→encode→write with n encode workers, n = 1 restores the
// synchronous encoder, and n <= 0 selects GOMAXPROCS. The stored bytes
// are identical at every setting (trace.ParallelChunkWriter), so the
// golden hashes and content addresses never move.
func SetGenWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	genWorkers.Store(int64(n))
}

// GenWorkers returns the configured generation encode worker count
// (default 1).
func GenWorkers() int {
	if n := int(genWorkers.Load()); n > 0 {
		return n
	}
	return 1
}

// execShards is the configured emulator sharded-execution host-worker
// count (0 = unset, meaning 1: the serial dispatcher).
var execShards atomic.Int64

// SetExecShards configures how many host goroutines the emulator uses
// to speculate independent PEs' cycles in parallel (core.Config
// ExecShards): n > 1 enables sharded execution for multi-PE parallel
// runs, n = 1 restores the serial dispatcher, and n <= 0 selects
// GOMAXPROCS. The emitted trace is byte-identical at every setting
// (the merge replays the canonical reference order), so the golden
// hashes and content addresses never move.
func SetExecShards(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	execShards.Store(int64(n))
}

// ExecShards returns the configured sharded-execution host-worker
// count (default 1).
func ExecShards() int {
	if n := int(execShards.Load()); n > 0 {
		return n
	}
	return 1
}

// StoreKey returns the trace-store key for a benchmark cell under the
// current emulator version.
func StoreKey(benchmark string, pes int, sequential bool) tracestore.Key {
	return tracestore.Key{
		Benchmark:       benchmark,
		PEs:             pes,
		Sequential:      sequential,
		EmulatorVersion: core.EmulatorVersion,
	}
}

// RunRecord is the store sidecar written alongside each generated
// trace: the generating run's outcome and instrumentation, so drivers
// that need only statistics (Figure 2, Table 2, MLIPS, lock share)
// skip the emulator exactly like trace consumers do.
type RunRecord struct {
	// Success reports whether the query succeeded (it always has for a
	// stored benchmark cell: generation validates the answer).
	Success bool
	// Stats is the engine instrumentation of the generating run.
	Stats core.Stats
	// Refs is the Table 1 reference counter of the generating run.
	Refs trace.Counter
}

// EnsureStored makes sure the attached store holds the trace and run
// sidecar for (b, pes, sequential), generating them with one engine run
// if absent. Generation is streaming (the trace never materializes in
// memory) and single-flighted: concurrent callers for the same cell
// block until the one generation completes — the generating caller's
// ctx governs the engine run, so every waiter on a cancelled flight
// observes the context error. It returns the cell's key. Calling
// EnsureStored with no store attached is an error.
//
// Failures are not memoized: the next call re-checks the store and
// regenerates, which is how a cell quarantined by a corrupt read comes
// back. Callers that keep looping on a persistently failing cell are
// expected to bound their own retries (the experiments grid does).
func EnsureStored(ctx context.Context, b Benchmark, pes int, sequential bool) (tracestore.Key, error) {
	s := TraceStore()
	k := StoreKey(b.Name, pes, sequential)
	if s == nil {
		return k, errNoStore
	}
	for {
		f := &cellFlight{done: make(chan struct{})}
		if v, loaded := cellFlights.LoadOrStore(k, f); loaded {
			// Someone else is generating this cell; wait them out,
			// then re-check the store (their failure is not ours to
			// inherit — a cancelled or faulted generation must not
			// poison callers with live contexts).
			other := v.(*cellFlight)
			//rapwam:allow determinism flight-wait select: both outcomes converge (re-check store / ctx.Err()), and nothing is emitted here
			select {
			case <-other.done:
				if other.err == nil {
					return k, nil
				}
				if ctx.Err() != nil {
					return k, ctx.Err()
				}
				// Their generation failed; loop and try ourselves.
				continue
			case <-ctx.Done():
				return k, ctx.Err()
			}
		}
		f.err = generateCell(ctx, s, k, b, pes, sequential)
		cellFlights.Delete(k)
		close(f.done)
		return k, f.err
	}
}

// generateCell performs one store-check + generation for a cell.
func generateCell(ctx context.Context, s *tracestore.Store, k tracestore.Key, b Benchmark, pes int, sequential bool) error {
	if s.Has(k) {
		return nil
	}
	var res *core.Result
	err := s.PutWorkers(k, GenWorkers(), func(sink trace.Sink) error {
		r, err := Run(ctx, b, RunConfig{PEs: pes, Sequential: sequential, Sink: sink})
		res = r
		return err
	})
	if err != nil {
		return err
	}
	return s.PutSidecar(k, RunRecord{Success: res.Success, Stats: res.Stats, Refs: *res.Refs})
}

// errNoStore reports EnsureStored use without an attached store.
var errNoStore = errors.New("bench: no trace store attached (SetTraceStore)")

// traceHealAttempts bounds how many times Trace retries a cell whose
// stored copy keeps failing before degrading to a direct run.
const traceHealAttempts = 3

// TraceDirect generates the benchmark's full memory-reference trace
// with one emulator run, bypassing any attached store — the degraded
// path when storage is unavailable, and the only path when no store is
// attached.
func TraceDirect(ctx context.Context, b Benchmark, pes int, sequential bool) (*trace.Buffer, *core.Result, error) {
	buf := trace.NewBuffer(1 << 20)
	res, err := Run(ctx, b, RunConfig{PEs: pes, Sequential: sequential, Sink: buf})
	if err != nil {
		return nil, nil, err
	}
	return buf, res, nil
}

// Trace returns the benchmark's full memory-reference trace, running
// the emulator to generate it. With a persistent store attached
// (SetTraceStore) the store is consulted first: a hit decodes the
// stored trace instead of re-running the emulator (and returns a nil
// run result, since no run happened), and a miss generates through the
// store so the next caller hits.
//
// Store failures self-heal: a corrupt stored trace is quarantined by
// the read (tracestore.CorruptError reads as a miss), so the retry
// regenerates it; transient backend errors retry too; and if the store
// keeps failing, Trace degrades to a direct in-memory run (marking the
// context's degraded flag) — storage trouble costs latency, never an
// answer. Callers that want to stream references instead of buffering
// them pass their own Sink via RunConfig; callers that should never
// materialize the trace replay it from the store
// (tracestore.Store.Replay) instead.
func Trace(ctx context.Context, b Benchmark, pes int, sequential bool) (*trace.Buffer, *core.Result, error) {
	s := TraceStore()
	if s == nil {
		return TraceDirect(ctx, b, pes, sequential)
	}
	var lastErr error
	for attempt := 0; attempt < traceHealAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if _, lastErr = EnsureStored(ctx, b, pes, sequential); lastErr != nil {
			if storage.AsBackendError(lastErr) {
				continue // transient or backend-side: retry, then degrade
			}
			return nil, nil, lastErr
		}
		buf, _, err := s.Load(StoreKey(b.Name, pes, sequential))
		if err == nil {
			return buf, nil, nil
		}
		lastErr = err
		// Corrupt loads quarantined the object (a miss now) and
		// transient errors deserve another try; anything else falls
		// through to the degraded path below.
		if !tracestore.IsCorrupt(err) && !storage.AsBackendError(err) && !errors.Is(err, context.Canceled) {
			break
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// The store would not yield this cell; compute without it rather
	// than fail the caller. The flag makes the bypass visible
	// (X-Degraded at the serving layer).
	storage.MarkDegraded(ctx, "trace-store")
	return TraceDirect(ctx, b, pes, sequential)
}

package bench

// Emulator benchmarks: how fast cold trace generation runs, in
// references/second and MLIPS (million logical inferences per second,
// the paper's speed unit). BenchmarkEngineRun measures the bare
// emulator (references discarded after counting); BenchmarkTraceGeneration
// measures the full cold-generation path the trace store pays on a
// miss: emulate + compact-codec encode. Compilation happens once per
// cell outside the timed loop (tracegen compiles once per cell too).
// scripts/bench_engine.sh records both into BENCH_engine.json next to
// the cache-replay numbers.

import (
	"io"
	"strconv"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// engineBenchCells is the benchmarked grid: the paper's two most
// reference-dense workloads across the PE counts the store generates.
var engineBenchCells = []struct {
	bench string
	pes   int
}{
	{"deriv", 1},
	{"deriv", 4},
	{"deriv", 8},
	{"qsort", 1},
	{"qsort", 4},
	{"qsort", 8},
}

// compileCell compiles one benchmark outside the timed loop.
func compileCell(b *testing.B, name string) *isa.Code {
	b.Helper()
	bm, ok := ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %q", name)
	}
	code, err := compile.Compile(bm.Source, bm.Query, compile.Options{})
	if err != nil {
		b.Fatalf("compile %s: %v", name, err)
	}
	return code
}

// runEngine executes one emulator run of the pre-compiled cell and
// accumulates (refs, inferences).
func runEngine(b *testing.B, code *isa.Code, pes int, sink trace.Sink, refs, inf *int64) {
	b.Helper()
	runEngineShards(b, code, pes, 1, sink, refs, inf)
}

// runEngineShards is runEngine under the sharded dispatcher.
func runEngineShards(b *testing.B, code *isa.Code, pes, shards int, sink trace.Sink, refs, inf *int64) {
	b.Helper()
	eng, err := core.New(code, core.Config{PEs: pes, Sink: sink, ExecShards: shards})
	if err != nil {
		b.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		b.Fatal(err)
	}
	eng.Close()
	if !res.Success {
		b.Fatal("query failed")
	}
	*refs += res.Refs.Total()
	*inf += res.Stats.Inferences
}

// reportEngineMetrics converts accumulated counts into the benchmark's
// derived metrics.
func reportEngineMetrics(b *testing.B, refs, inferences int64) {
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(refs)/sec, "refs/s")
		b.ReportMetric(float64(inferences)/sec/1e6, "MLIPS")
	}
}

// BenchmarkEngineRun measures the bare emulator: every reference is
// counted (the always-on Counter) but discarded, so this is the upper
// bound of trace generation speed.
func BenchmarkEngineRun(b *testing.B) {
	for _, cell := range engineBenchCells {
		cell := cell
		b.Run(nameCell(cell.bench, cell.pes), func(b *testing.B) {
			code := compileCell(b, cell.bench)
			var refs, inf int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runEngine(b, code, cell.pes, trace.Discard, &refs, &inf)
			}
			reportEngineMetrics(b, refs, inf)
		})
	}
}

// BenchmarkEngineRunShards measures the sharded dispatcher
// (core.Config.ExecShards) on the multi-PE cells it targets: 1 shard
// is the serial dispatcher baseline, higher counts speculate
// independent PEs' cycles on host goroutines and merge deterministically
// (the trace is byte-identical, so this isolates wall-clock alone).
// On a single-core host the >1 counts measure the mode's overhead
// (snapshotting, footprint validation, merge); on multi-core hosts
// they measure its scaling.
func BenchmarkEngineRunShards(b *testing.B) {
	for _, bench := range []string{"deriv", "qsort"} {
		for _, shards := range []int{1, 2, 4} {
			bench, shards := bench, shards
			b.Run(nameCell(bench, 8)+"-s"+strconv.Itoa(shards), func(b *testing.B) {
				code := compileCell(b, bench)
				var refs, inf int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runEngineShards(b, code, 8, shards, trace.Discard, &refs, &inf)
				}
				reportEngineMetrics(b, refs, inf)
			})
		}
	}
}

// BenchmarkTraceGeneration measures the cold trace-store path: emulate
// and stream the reference trace through the compact codec (the exact
// work a store miss pays, minus the file write).
func BenchmarkTraceGeneration(b *testing.B) {
	for _, cell := range engineBenchCells {
		cell := cell
		b.Run(nameCell(cell.bench, cell.pes), func(b *testing.B) {
			code := compileCell(b, cell.bench)
			var refs, inf int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cw, err := trace.NewChunkWriter(io.Discard, trace.Meta{
					Benchmark:       cell.bench,
					PEs:             cell.pes,
					EmulatorVersion: core.EmulatorVersion,
				})
				if err != nil {
					b.Fatal(err)
				}
				runEngine(b, code, cell.pes, cw, &refs, &inf)
				if err := cw.Close(); err != nil {
					b.Fatal(err)
				}
			}
			reportEngineMetrics(b, refs, inf)
		})
	}
}

// BenchmarkTraceGenerationWorkers measures the pipelined generation
// path (emulate on one goroutine, chunk encoding on workers) that
// EnsureStored uses when generation workers are configured. workers=1
// is pure emulate/encode overlap; higher counts add parallel chunk
// encoders. Output bytes are identical at every worker count, so this
// isolates the wall-clock effect alone. scripts/bench_replay.sh
// records it into BENCH_replay.json.
func BenchmarkTraceGenerationWorkers(b *testing.B) {
	cells := []struct {
		bench string
		pes   int
	}{
		{"deriv", 8},
		{"qsort", 8},
	}
	for _, cell := range cells {
		for _, workers := range []int{1, 2, 4} {
			cell, workers := cell, workers
			b.Run(nameCell(cell.bench, cell.pes)+"-w"+strconv.Itoa(workers), func(b *testing.B) {
				code := compileCell(b, cell.bench)
				var refs, inf int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cw, err := trace.NewParallelChunkWriter(io.Discard, trace.Meta{
						Benchmark:       cell.bench,
						PEs:             cell.pes,
						EmulatorVersion: core.EmulatorVersion,
					}, workers)
					if err != nil {
						b.Fatal(err)
					}
					runEngine(b, code, cell.pes, cw, &refs, &inf)
					if err := cw.Close(); err != nil {
						b.Fatal(err)
					}
				}
				reportEngineMetrics(b, refs, inf)
			})
		}
	}
}

// nameCell formats a sub-benchmark name ("qsort-4pe").
func nameCell(bench string, pes int) string {
	return bench + "-" + strconv.Itoa(pes) + "pe"
}

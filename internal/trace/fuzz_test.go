package trace

import (
	"bytes"
	"testing"
)

// fuzzCountSink tallies delivered refs and records any PE outside the
// header's declared range.
type fuzzCountSink struct {
	pes   int
	n     int64
	badPE bool
}

func (s *fuzzCountSink) Add(r Ref) {
	s.n++
	if int(r.PE) >= s.pes {
		s.badPE = true
	}
}

// FuzzChunkReader feeds arbitrary bytes to the compact-trace decoder.
// The decoder's contract under hostile input is: never panic, never
// loop forever, and either reject the stream with an error or deliver
// a stream that is internally consistent — every delivered PE within
// the header's range and the footer totals matching what was actually
// delivered. The seeds cover the accept path (a valid trace) and the
// structured-reject paths (truncation, a flipped payload byte, a bare
// magic, an empty stream).
func FuzzChunkReader(f *testing.F) {
	meta := Meta{Benchmark: "fuzz", PEs: 3, EmulatorVersion: "emuF"}
	refs := make([]Ref, 500)
	for i := range refs {
		refs[i] = Ref{
			Addr: uint32(i*37) & 0x0fffffff,
			PE:   uint8(i % meta.PEs),
			Op:   Op(i & 1),
			Obj:  ObjType(i % int(NumObjTypes)),
		}
	}
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, meta)
	if err != nil {
		f.Fatal(err)
	}
	cw.AddBatch(refs)
	if err := cw.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("RWT2"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cr, err := NewChunkReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: the only requirement is no panic
		}
		declaredPEs := cr.Meta().PEs
		sink := &fuzzCountSink{pes: declaredPEs}
		total, err := cr.Replay(sink)
		if err != nil {
			return // rejected mid-stream: likewise
		}
		if sink.badPE {
			t.Fatalf("accepted stream delivered a ref with PE >= declared %d", declaredPEs)
		}
		if total != sink.n {
			t.Fatalf("Replay returned %d refs but delivered %d", total, sink.n)
		}
		if got := cr.Meta().Refs; got != total {
			t.Fatalf("accepted stream's meta says %d refs, delivered %d", got, total)
		}
	})
}

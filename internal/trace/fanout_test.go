package trace

import (
	"sync/atomic"
	"testing"
)

// synthRefs builds a deterministic pseudo-random reference stream.
func synthRefs(n int) []Ref {
	refs := make([]Ref, n)
	s := uint64(0x9e3779b97f4a7c15)
	for i := range refs {
		s = s*6364136223846793005 + 1442695040888963407
		refs[i] = Ref{
			Addr: uint32(s>>23) & 0xffffff,
			PE:   uint8(s>>17) & 7,
			Op:   Op(s >> 13 & 1),
			Obj:  ObjType(1 + (s>>5)%uint64(NumObjTypes-1)),
		}
	}
	return refs
}

// recordSink records the stream it receives (single-goroutine, per the
// Sink contract).
type recordSink struct {
	refs []Ref
}

func (r *recordSink) Add(ref Ref) { r.refs = append(r.refs, ref) }

// batchRecordSink is a recordSink that also implements BatchSink.
type batchRecordSink struct {
	recordSink
	batches int
}

func (r *batchRecordSink) AddBatch(refs []Ref) {
	r.refs = append(r.refs, refs...)
	r.batches++
}

func sameRefs(t *testing.T, label string, got, want []Ref) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d refs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: ref %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestFanOutDeliversEveryRefInOrder(t *testing.T) {
	want := synthRefs(10_000)
	for _, chunk := range []int{1, 3, 1000, 0 /* default */} {
		plain := &recordSink{}
		batch := &batchRecordSink{}
		f := NewFanOut(FanOutConfig{ChunkRefs: chunk}, plain, batch)
		for _, r := range want {
			f.Add(r)
		}
		f.Close()
		sameRefs(t, "plain sink", plain.refs, want)
		sameRefs(t, "batch sink", batch.refs, want)
		if batch.batches == 0 {
			t.Error("BatchSink consumer was fed per-ref")
		}
	}
}

func TestFanOutAddBatchMixedWithAdd(t *testing.T) {
	want := synthRefs(5000)
	sink := &recordSink{}
	f := NewFanOut(FanOutConfig{ChunkRefs: 64}, sink)
	// Interleave singles and batches of every size class: smaller than a
	// chunk, exact multiple, and larger with a partial chunk pending.
	i := 0
	for _, n := range []int{1, 10, 64, 200, 1, 1000, 63} {
		f.AddBatch(want[i : i+n])
		i += n
	}
	for ; i < len(want); i++ {
		f.Add(want[i])
	}
	f.Close()
	sameRefs(t, "mixed add", sink.refs, want)
}

func TestFanOutCloseIsIdempotentAndEmptyOK(t *testing.T) {
	sink := &recordSink{}
	f := NewFanOut(FanOutConfig{}, sink)
	f.Close()
	f.Close()
	if len(sink.refs) != 0 {
		t.Fatalf("empty fan-out delivered %d refs", len(sink.refs))
	}
	// No sinks at all is valid too.
	f2 := NewFanOut(FanOutConfig{})
	f2.Add(Ref{})
	f2.Close()
	// A FanOut is dead after Close: Add must fail fast.
	defer func() {
		if recover() == nil {
			t.Error("Add after Close did not panic")
		}
	}()
	f2.Add(Ref{})
}

func TestBufferReplayAllMatchesReplay(t *testing.T) {
	buf := &Buffer{Refs: synthRefs(33_333)}
	var seq recordSink
	buf.Replay(&seq)

	sinks := []*recordSink{{}, {}, {}, {}, {}}
	fan := make([]Sink, len(sinks))
	for i := range sinks {
		fan[i] = sinks[i]
	}
	buf.ReplayAll(fan...)
	for _, s := range sinks {
		sameRefs(t, "fan-out consumer", s.refs, seq.refs)
	}
}

// countSink does enough per-ref work that consumers genuinely overlap;
// run under -race this exercises the dispatcher's synchronization.
type countSink struct {
	n   atomic.Int64
	sum uint64
}

func (c *countSink) Add(r Ref) {
	c.sum += uint64(r.Addr)
	c.n.Add(1)
}

func TestFanOutConcurrentConsumersRace(t *testing.T) {
	refs := synthRefs(100_000)
	var want uint64
	for _, r := range refs {
		want += uint64(r.Addr)
	}
	sinks := make([]Sink, 8)
	counts := make([]*countSink, 8)
	for i := range sinks {
		counts[i] = &countSink{}
		sinks[i] = counts[i]
	}
	buf := &Buffer{Refs: refs}
	buf.ReplayAll(sinks...)
	for i, c := range counts {
		if got := c.n.Load(); got != int64(len(refs)) {
			t.Errorf("consumer %d saw %d refs, want %d", i, got, len(refs))
		}
		if c.sum != want {
			t.Errorf("consumer %d checksum %d, want %d", i, c.sum, want)
		}
	}
}

package trace

import "sync"

// BatchSink is an optional extension of Sink for consumers that can
// process whole batches of references at once. The engine's staging
// buffer and the fan-out dispatcher use it to amortize the
// per-reference interface call. The batch slice is only valid for the
// duration of the call and is read-only: implementations must not
// mutate it, and must copy anything they need after AddBatch returns
// (producers such as mem.Memory reuse the slice for the next batch).
type BatchSink interface {
	Sink
	AddBatch(refs []Ref)
}

// FanOutConfig tunes the concurrent dispatcher. The zero value selects
// sensible defaults.
type FanOutConfig struct {
	// ChunkRefs is the number of references per dispatch batch
	// (default 8192). Larger chunks amortize channel operations;
	// smaller ones reduce consumer latency.
	ChunkRefs int
	// Depth is the per-consumer channel buffer in chunks (default 4):
	// how far a fast producer may run ahead of the slowest consumer.
	Depth int
}

const (
	defaultChunkRefs = 8192
	defaultDepth     = 4
)

// FanOut is the concurrent fan-out dispatcher: it accepts a single
// ordered reference stream (it implements Sink and BatchSink) and
// delivers it to every consumer sink on a dedicated goroutine, in
// chunks, over a buffered channel per consumer.
//
// Ordering: every consumer receives every reference exactly once, in
// exactly the emission order — chunks are sent to each consumer channel
// in order and each consumer processes its chunks sequentially, so a
// deterministic consumer (e.g. a cache simulator) produces results
// bit-identical to a sequential replay.
//
// The producer side (Add, AddBatch, Close) is single-goroutine, like
// any other Sink. Consumers never see concurrent calls either: each
// sink is driven by exactly one goroutine. The chunks handed to
// consumers may be shared between them, so consumers must treat them
// as read-only.
//
// Close flushes the partial chunk, closes the channels and waits for
// all consumers to drain. A FanOut must be Closed before the consumer
// sinks' results are read; reading earlier is a data race.
type FanOut struct {
	chans     []chan []Ref
	wg        sync.WaitGroup
	chunk     []Ref
	chunkRefs int
	closed    bool
}

// NewFanOut starts one consumer goroutine per sink and returns the
// dispatcher. A FanOut with no sinks is valid and discards everything.
func NewFanOut(cfg FanOutConfig, sinks ...Sink) *FanOut {
	if cfg.ChunkRefs <= 0 {
		cfg.ChunkRefs = defaultChunkRefs
	}
	if cfg.Depth <= 0 {
		cfg.Depth = defaultDepth
	}
	f := &FanOut{
		chans:     make([]chan []Ref, len(sinks)),
		chunkRefs: cfg.ChunkRefs,
	}
	for i, s := range sinks {
		ch := make(chan []Ref, cfg.Depth)
		f.chans[i] = ch
		f.wg.Add(1)
		go consume(&f.wg, ch, s)
	}
	return f
}

// consume drains one consumer's chunk channel into its sink.
func consume(wg *sync.WaitGroup, ch <-chan []Ref, s Sink) {
	defer wg.Done()
	if bs, ok := s.(BatchSink); ok {
		for chunk := range ch {
			bs.AddBatch(chunk)
		}
		return
	}
	for chunk := range ch {
		for _, r := range chunk {
			s.Add(r)
		}
	}
}

// send dispatches one ready chunk to every consumer. The chunk is
// shared between consumers and must not be written after this point.
func (f *FanOut) send(chunk []Ref) {
	if len(chunk) == 0 {
		return
	}
	for _, ch := range f.chans {
		ch <- chunk
	}
}

// Add implements Sink: the reference is appended to the current chunk,
// which is dispatched when full. A FanOut is dead after Close; Add
// panics rather than silently dropping or deadlocking.
func (f *FanOut) Add(r Ref) {
	if f.closed {
		panic("trace: FanOut.Add after Close")
	}
	if f.chunk == nil {
		f.chunk = make([]Ref, 0, f.chunkRefs)
	}
	f.chunk = append(f.chunk, r)
	if len(f.chunk) == f.chunkRefs {
		f.send(f.chunk)
		f.chunk = nil
	}
}

// AddBatch implements BatchSink: the batch is copied into the
// dispatcher's own chunk buffers, so per the BatchSink contract the
// caller's slice is free for reuse the moment AddBatch returns. Like
// Add, AddBatch panics after Close.
func (f *FanOut) AddBatch(refs []Ref) {
	if f.closed {
		panic("trace: FanOut.AddBatch after Close")
	}
	for len(refs) > 0 {
		if f.chunk == nil {
			f.chunk = make([]Ref, 0, f.chunkRefs)
		}
		n := f.chunkRefs - len(f.chunk)
		if n > len(refs) {
			n = len(refs)
		}
		f.chunk = append(f.chunk, refs[:n]...)
		refs = refs[n:]
		if len(f.chunk) == f.chunkRefs {
			f.send(f.chunk)
			f.chunk = nil
		}
	}
}

// StableBatchSink is the capability interface for batch consumers
// that can ingest a batch without copying, provided the producer
// guarantees the slice is immutable and outlives the sink's processing
// (for a FanOut, until Close returns). Buffer.ReplayAll and
// ChunkReader.Replay qualify as producers (an in-memory buffer and
// freshly decoded chunks respectively) and prefer this path; a reused
// staging buffer does not qualify and must use AddBatch.
type StableBatchSink interface {
	BatchSink
	// AddBatchStable consumes the batch without copying; the caller
	// promises never to mutate the slice while the sink can still
	// read it.
	AddBatchStable(refs []Ref)
}

// AddBatchStable implements StableBatchSink: full chunks are
// dispatched to the consumers as sub-slices of refs without copying.
func (f *FanOut) AddBatchStable(refs []Ref) {
	if f.closed {
		panic("trace: FanOut.AddBatch after Close")
	}
	// Top up a partial chunk first so ordering is preserved.
	for len(refs) > 0 && len(f.chunk) > 0 {
		n := f.chunkRefs - len(f.chunk)
		if n > len(refs) {
			n = len(refs)
		}
		f.chunk = append(f.chunk, refs[:n]...)
		refs = refs[n:]
		if len(f.chunk) == f.chunkRefs {
			f.send(f.chunk)
			f.chunk = nil
		}
	}
	// Dispatch full chunks directly from the caller's slice.
	for len(refs) >= f.chunkRefs {
		f.send(refs[:f.chunkRefs:f.chunkRefs])
		refs = refs[f.chunkRefs:]
	}
	// Buffer the tail.
	if len(refs) > 0 {
		if f.chunk == nil {
			f.chunk = make([]Ref, 0, f.chunkRefs)
		}
		f.chunk = append(f.chunk, refs...)
	}
}

// Close flushes the partial chunk and blocks until every consumer has
// processed its entire stream. After Close returns the consumer sinks
// are quiescent and safe to read. Close is idempotent.
func (f *FanOut) Close() {
	if f.closed {
		return
	}
	f.closed = true
	f.send(f.chunk)
	f.chunk = nil
	for _, ch := range f.chans {
		close(ch)
	}
	f.wg.Wait()
}

// ReplayAll feeds the buffered trace to all sinks concurrently in a
// single pass, returning once every sink has consumed the full trace.
// The buffer is chunked by reference (no copying); sinks receive the
// references in buffer order, so deterministic sinks produce results
// identical to sequential Replay.
func (b *Buffer) ReplayAll(sinks ...Sink) {
	if len(sinks) == 1 {
		// A single consumer gains nothing from the goroutine hop;
		// Replay hands the whole buffer to a BatchSink in one call.
		b.Replay(sinks[0])
		return
	}
	f := NewFanOut(FanOutConfig{}, sinks...)
	f.AddBatchStable(b.Refs) // the buffer is immutable for the duration
	f.Close()
}

// Package trace defines the memory-reference trace model used throughout
// the reproduction: every read or write performed by a RAP-WAM worker is
// recorded as a Ref carrying the accessing PE, the address, a read/write
// flag and the storage-object classification of Table 1 of the paper
// ("Characteristics of RAP-WAM Storage Objects").
//
// The object classification is what the paper's hybrid cache protocol
// consumes: each object type maps to a storage area, a locality class
// (Local or Global) and whether accesses to it are performed under a lock.
//
// # The trace stream and the Sink contract
//
// A trace is an ordered stream of Refs. Producers (the engine, Buffer
// replay, ReadStream) deliver the stream to a Sink by calling Add once
// per reference, in emission order, from a single goroutine. A Sink
// implementation may therefore be entirely unsynchronized; it only has
// to tolerate one caller. Sinks that can consume whole batches more
// efficiently additionally implement BatchSink; batch slices are shared
// and read-only.
//
// Fan-out: Tee duplicates the stream to several sinks synchronously
// (every sink sees each reference before the next is emitted). FanOut
// is the concurrent counterpart — a chunked dispatcher that drives each
// sink on its own goroutine while preserving, per sink, the exact
// emission order, so deterministic consumers such as cache simulators
// produce results bit-identical to a sequential replay. With FanOut the
// stream must be terminated with Close, which flushes buffered chunks
// and blocks until every consumer has drained; consumer state may only
// be read after Close returns. Buffer.ReplayAll packages the common
// case: one buffered trace, many concurrent consumers, one pass.
//
// # On-disk forms
//
// Two binary formats exist, sniffed by magic at every read entry
// point (Buffer.ReadFrom, ReadStream): the legacy fixed 8-byte record
// format ("RWT1", file.go) and the compact chunked codec ("RWT2",
// codec.go — delta/varint encoded, CRC-protected, streaming in both
// directions; specified in docs/TRACE_FORMAT.md). ChunkWriter encodes
// a live stream without knowing its length; ChunkReader.Replay
// decodes chunk by chunk into any Sink, so traces larger than memory
// replay in constant space. The persistent trace store built on the
// compact codec lives in internal/tracestore.
package trace

import "fmt"

// Op distinguishes reads from writes.
type Op uint8

const (
	// OpRead is a data read.
	OpRead Op = iota
	// OpWrite is a data write.
	OpWrite
)

// String returns "R" or "W".
func (o Op) String() string {
	if o == OpRead {
		return "R"
	}
	return "W"
}

// Area identifies a RAP-WAM storage area. Each worker (abstract machine)
// owns one instance of every area; together they form its Stack Set.
type Area uint8

const (
	// AreaNone marks an unclassified address (never emitted by the engine).
	AreaNone Area = iota
	// AreaHeap is the global structure heap (terms).
	AreaHeap
	// AreaLocal is the local stack: environments and parcall frames.
	AreaLocal
	// AreaControl is the control stack: choice points and markers.
	// The paper notes the stack is split into Control and Local stacks
	// "for reasons of locality and locking".
	AreaControl
	// AreaTrail records conditional bindings for backtracking.
	AreaTrail
	// AreaPDL is the unification push-down list.
	AreaPDL
	// AreaGoal is the goal stack used for on-demand scheduling.
	AreaGoal
	// AreaMsg is the inter-worker message buffer.
	AreaMsg

	numAreas = int(AreaMsg) + 1
)

var areaNames = [...]string{
	AreaNone:    "none",
	AreaHeap:    "heap",
	AreaLocal:   "local",
	AreaControl: "control",
	AreaTrail:   "trail",
	AreaPDL:     "pdl",
	AreaGoal:    "goal",
	AreaMsg:     "msg",
}

// NumAreas is the number of distinct storage areas (including AreaNone).
const NumAreas = numAreas

// String returns the lowercase area name.
func (a Area) String() string {
	if int(a) < len(areaNames) {
		return areaNames[a]
	}
	return fmt.Sprintf("area(%d)", uint8(a))
}

// ObjType is a storage-object classification, one per row of Table 1 of
// the paper. It determines the storage area the object lives in, whether
// the object is Local (only its owning worker references it) or Global
// (other workers may reference it), and whether accesses are locked.
type ObjType uint8

const (
	// ObjNone marks an unclassified reference.
	ObjNone ObjType = iota
	// ObjEnvControl is an environment's control words (continuation
	// environment and continuation code pointer). Stack, local, no lock.
	ObjEnvControl
	// ObjEnvPVar is an environment's permanent variables. Stack, global
	// (parallel goals may dereference into the parent's environment).
	ObjEnvPVar
	// ObjChoicePoint is a choice point frame. Stack (control), local.
	ObjChoicePoint
	// ObjHeap is a heap cell. Heap, global.
	ObjHeap
	// ObjTrail is a trail entry. Trail, local.
	ObjTrail
	// ObjPDL is a unification push-down-list entry. PDL, local.
	ObjPDL
	// ObjParcallLocal is the local section of a parcall frame
	// (previous-frame link, continuation, saved environment). Local.
	ObjParcallLocal
	// ObjParcallGlobal is the global section of a parcall frame (goal
	// slot status words read and written by remote workers). Global.
	ObjParcallGlobal
	// ObjParcallCount is a parcall frame's completion/pending counter,
	// accessed under a lock by every worker executing one of its goals.
	ObjParcallCount
	// ObjMarker is a marker frame delimiting a stack section. Local.
	ObjMarker
	// ObjGoalFrame is a goal frame on the goal stack, pushed by the
	// spawning worker and popped (possibly by a remote worker) under the
	// goal-stack lock. Global, locked.
	ObjGoalFrame
	// ObjMessage is a message-buffer entry (kill/redo/unwind signals).
	// Global, locked.
	ObjMessage

	numObjTypes = int(ObjMessage) + 1
)

// NumObjTypes is the number of distinct object classifications
// (including ObjNone).
const NumObjTypes = numObjTypes

// objInfo is one row of Table 1.
type objInfo struct {
	name   string
	area   Area
	wam    bool // present in the sequential WAM?
	lock   bool // accessed under a lock?
	global bool // Global locality (shared) vs Local
}

var objTable = [...]objInfo{
	ObjNone:          {"none", AreaNone, false, false, false},
	ObjEnvControl:    {"envt/control", AreaLocal, true, false, false},
	ObjEnvPVar:       {"envt/pvars", AreaLocal, true, false, true},
	ObjChoicePoint:   {"choicepoint", AreaControl, true, false, false},
	ObjHeap:          {"heap", AreaHeap, true, false, true},
	ObjTrail:         {"trail", AreaTrail, true, false, false},
	ObjPDL:           {"pdl", AreaPDL, true, false, false},
	ObjParcallLocal:  {"parcall/local", AreaLocal, false, false, false},
	ObjParcallGlobal: {"parcall/global", AreaLocal, false, false, true},
	ObjParcallCount:  {"parcall/counts", AreaLocal, false, true, true},
	ObjMarker:        {"marker", AreaControl, false, false, false},
	ObjGoalFrame:     {"goalframe", AreaGoal, false, true, true},
	ObjMessage:       {"message", AreaMsg, false, true, true},
}

// String returns the Table 1 row name.
func (t ObjType) String() string {
	if int(t) < len(objTable) {
		return objTable[t].name
	}
	return fmt.Sprintf("obj(%d)", uint8(t))
}

// Area returns the storage area this object type lives in.
func (t ObjType) Area() Area { return objTable[t].area }

// WAM reports whether this object type exists in the sequential WAM
// (as opposed to being a RAP-WAM extension).
func (t ObjType) WAM() bool { return objTable[t].wam }

// Locked reports whether accesses to this object type occur under a lock.
func (t ObjType) Locked() bool { return objTable[t].lock }

// globalObjMask has bit t set when ObjType t is Global per Table 1; it
// mirrors objTable (TestGlobalMaskMatchesTable) so that Global — called
// per write on the hybrid cache simulator's hot path — compiles to a
// constant shift instead of a table load.
const globalObjMask uint64 = 1<<ObjEnvPVar | 1<<ObjHeap | 1<<ObjParcallGlobal |
	1<<ObjParcallCount | 1<<ObjGoalFrame | 1<<ObjMessage

// Global reports whether the object is potentially shared between workers
// (the paper's "Global" locality class). The hybrid cache protocol
// write-throughs Global writes and copies back Local ones.
func (t ObjType) Global() bool { return globalObjMask>>t&1 != 0 }

// ObjTypes returns all real object classifications (excluding ObjNone)
// in Table 1 order.
func ObjTypes() []ObjType {
	out := make([]ObjType, 0, numObjTypes-1)
	for t := ObjType(1); int(t) < numObjTypes; t++ {
		out = append(out, t)
	}
	return out
}

// Ref is a single memory reference: one word read or written by one PE.
// It is deliberately small (8 bytes) so that multi-hundred-thousand
// reference traces stay cheap to buffer and replay.
type Ref struct {
	// Addr is the word address in the flat shared address space.
	Addr uint32
	// PE is the identifier of the accessing processing element.
	PE uint8
	// Op is OpRead or OpWrite.
	Op Op
	// Obj is the storage-object classification of the referenced word.
	Obj ObjType
	_   uint8 // padding, keeps struct size stable at 8 bytes
}

// String formats the reference as e.g. "pe2 W 0x001234 heap".
func (r Ref) String() string {
	return fmt.Sprintf("pe%d %s 0x%06x %s", r.PE, r.Op, r.Addr, r.Obj)
}

// Sink consumes references as they are generated by the engine.
// Implementations include Buffer, Counter, cache simulators and file
// writers. Add must be safe for single-goroutine use only; the engine is
// a deterministic interleaved simulation and never emits concurrently,
// and the FanOut dispatcher likewise drives each sink from exactly one
// goroutine.
type Sink interface {
	Add(r Ref)
}

// The nil sink: discards everything.
type nullSink struct{}

func (nullSink) Add(Ref)        {}
func (nullSink) AddBatch([]Ref) {}

// Discard is a Sink that drops all references. It implements BatchSink,
// so batch producers (the engine's staging buffer, Buffer.Replay) pay
// nothing per reference when tracing is off.
var Discard Sink = nullSink{}

// Tee duplicates references to several sinks in order.
type Tee []Sink

// Add forwards r to every sink in the tee.
func (t Tee) Add(r Ref) {
	for _, s := range t {
		s.Add(r)
	}
}

// AddBatch forwards a batch to every sink in the tee (BatchSink),
// preserving per-sink order; sinks without batch support receive the
// references one at a time.
func (t Tee) AddBatch(refs []Ref) {
	for _, s := range t {
		if bs, ok := s.(BatchSink); ok {
			bs.AddBatch(refs)
		} else {
			for _, r := range refs {
				s.Add(r)
			}
		}
	}
}

// Buffer accumulates references in memory for later replay (the paper's
// trace-file stage: the emulator writes a trace which the cache
// simulators then consume repeatedly with different parameters).
type Buffer struct {
	Refs []Ref
}

// NewBuffer returns a Buffer with capacity for n references preallocated,
// so that tracing does not trigger repeated reallocation (and, per the
// reproduction notes, keeps Go GC activity away from the measured path).
func NewBuffer(n int) *Buffer {
	return &Buffer{Refs: make([]Ref, 0, n)}
}

// Add appends r.
func (b *Buffer) Add(r Ref) { b.Refs = append(b.Refs, r) }

// AddBatch appends a batch of references (BatchSink).
func (b *Buffer) AddBatch(refs []Ref) { b.Refs = append(b.Refs, refs...) }

// Len returns the number of buffered references.
func (b *Buffer) Len() int { return len(b.Refs) }

// Replay feeds every buffered reference to sink in order. A sink that
// implements BatchSink receives the whole buffer as one batch (the
// zero-copy fast path); per the BatchSink contract it must treat the
// slice as read-only.
func (b *Buffer) Replay(sink Sink) {
	if bs, ok := sink.(BatchSink); ok {
		bs.AddBatch(b.Refs)
		return
	}
	for _, r := range b.Refs {
		sink.Add(r)
	}
}

// MaxPEs is the largest PE count the reference-level tooling supports:
// Counter.ByPE is sized to it, the snoop directory packs holder sets
// into a 64-bit mask, and core.New and cache.Config.Validate both
// reject configurations beyond it.
const MaxPEs = 64

// Counter tallies references by object type and operation without
// storing them. It is the cheap always-on instrumentation the engine
// uses for Table 2 style statistics.
type Counter struct {
	// ByObj[obj][op] counts references per object type and operation.
	ByObj [NumObjTypes][2]int64
	// ByPE counts total references per PE (up to MaxPEs).
	ByPE [MaxPEs]int64
}

// Add tallies r.
func (c *Counter) Add(r Ref) {
	c.ByObj[r.Obj][r.Op]++
	if int(r.PE) < len(c.ByPE) {
		c.ByPE[r.PE]++
	}
}

// AddBatch tallies a batch (BatchSink): the flat loop the engine's
// staging buffer folds its counter update into at flush time.
func (c *Counter) AddBatch(refs []Ref) {
	for _, r := range refs {
		c.ByObj[r.Obj][r.Op]++
		if int(r.PE) < len(c.ByPE) {
			c.ByPE[r.PE]++
		}
	}
}

// Total returns the total number of references.
func (c *Counter) Total() int64 {
	var n int64
	for _, ops := range c.ByObj {
		n += ops[0] + ops[1]
	}
	return n
}

// Reads returns the total number of read references.
func (c *Counter) Reads() int64 {
	var n int64
	for _, ops := range c.ByObj {
		n += ops[0]
	}
	return n
}

// Writes returns the total number of write references.
func (c *Counter) Writes() int64 {
	var n int64
	for _, ops := range c.ByObj {
		n += ops[1]
	}
	return n
}

// ByArea aggregates counts per storage area. The result is indexed by
// Area (a fixed array, not a map), so iterating it — and therefore any
// stats output built from it — is deterministic across runs.
func (c *Counter) ByArea() [NumAreas]int64 {
	var out [NumAreas]int64
	for obj, ops := range c.ByObj {
		out[ObjType(obj).Area()] += ops[0] + ops[1]
	}
	return out
}

// GlobalShare returns the fraction of references classified Global.
func (c *Counter) GlobalShare() float64 {
	var global, total int64
	for obj, ops := range c.ByObj {
		n := ops[0] + ops[1]
		total += n
		if ObjType(obj).Global() {
			global += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(global) / float64(total)
}

package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestObjTableMatchesPaperTable1(t *testing.T) {
	// Table 1 of the paper: area, WAM?, lock, locality per object type.
	cases := []struct {
		obj    ObjType
		area   Area
		wam    bool
		lock   bool
		global bool
	}{
		{ObjEnvControl, AreaLocal, true, false, false},
		{ObjEnvPVar, AreaLocal, true, false, true},
		{ObjChoicePoint, AreaControl, true, false, false},
		{ObjHeap, AreaHeap, true, false, true},
		{ObjTrail, AreaTrail, true, false, false},
		{ObjPDL, AreaPDL, true, false, false},
		{ObjParcallLocal, AreaLocal, false, false, false},
		{ObjParcallGlobal, AreaLocal, false, false, true},
		{ObjParcallCount, AreaLocal, false, true, true},
		{ObjMarker, AreaControl, false, false, false},
		{ObjGoalFrame, AreaGoal, false, true, true},
		{ObjMessage, AreaMsg, false, true, true},
	}
	for _, c := range cases {
		if got := c.obj.Area(); got != c.area {
			t.Errorf("%v: area = %v, want %v", c.obj, got, c.area)
		}
		if got := c.obj.WAM(); got != c.wam {
			t.Errorf("%v: WAM = %v, want %v", c.obj, got, c.wam)
		}
		if got := c.obj.Locked(); got != c.lock {
			t.Errorf("%v: Locked = %v, want %v", c.obj, got, c.lock)
		}
		if got := c.obj.Global(); got != c.global {
			t.Errorf("%v: Global = %v, want %v", c.obj, got, c.global)
		}
	}
	if len(cases) != len(ObjTypes()) {
		t.Errorf("covered %d object types, table has %d", len(cases), len(ObjTypes()))
	}
}

func TestLockedImpliesGlobal(t *testing.T) {
	// Locked objects are by definition accessed by several workers.
	for _, o := range ObjTypes() {
		if o.Locked() && !o.Global() {
			t.Errorf("%v is locked but not global", o)
		}
	}
}

func TestWAMObjectsHaveNoLocks(t *testing.T) {
	// The sequential WAM needs no locks; only RAP-WAM extensions lock.
	for _, o := range ObjTypes() {
		if o.WAM() && o.Locked() {
			t.Errorf("%v is a WAM object but locked", o)
		}
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(Ref{Addr: 1, PE: 0, Op: OpRead, Obj: ObjHeap})
	c.Add(Ref{Addr: 2, PE: 1, Op: OpWrite, Obj: ObjHeap})
	c.Add(Ref{Addr: 3, PE: 1, Op: OpWrite, Obj: ObjTrail})
	if got := c.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
	if got := c.Reads(); got != 1 {
		t.Errorf("Reads = %d, want 1", got)
	}
	if got := c.Writes(); got != 2 {
		t.Errorf("Writes = %d, want 2", got)
	}
	if got := c.ByPE[1]; got != 2 {
		t.Errorf("ByPE[1] = %d, want 2", got)
	}
	byArea := c.ByArea()
	if byArea[AreaHeap] != 2 || byArea[AreaTrail] != 1 {
		t.Errorf("ByArea = %v", byArea)
	}
	want := 2.0 / 3.0
	if got := c.GlobalShare(); got != want {
		t.Errorf("GlobalShare = %v, want %v", got, want)
	}
}

func TestBufferReplayPreservesOrder(t *testing.T) {
	b := NewBuffer(4)
	in := []Ref{
		{Addr: 10, PE: 0, Op: OpRead, Obj: ObjHeap},
		{Addr: 11, PE: 1, Op: OpWrite, Obj: ObjTrail},
		{Addr: 12, PE: 2, Op: OpRead, Obj: ObjGoalFrame},
	}
	for _, r := range in {
		b.Add(r)
	}
	var out []Ref
	b.Replay(sinkFunc(func(r Ref) { out = append(out, r) }))
	if len(out) != len(in) {
		t.Fatalf("replayed %d refs, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("ref %d: got %v, want %v", i, out[i], in[i])
		}
	}
}

type sinkFunc func(Ref)

func (f sinkFunc) Add(r Ref) { f(r) }

func TestTeeFansOut(t *testing.T) {
	a, b := NewBuffer(1), NewBuffer(1)
	tee := Tee{a, b}
	tee.Add(Ref{Addr: 5, Obj: ObjHeap})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("tee delivered %d/%d refs, want 1/1", a.Len(), b.Len())
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuffer(1000)
	for i := 0; i < 1000; i++ {
		b.Add(Ref{
			Addr: rng.Uint32(),
			PE:   uint8(rng.Intn(8)),
			Op:   Op(rng.Intn(2)),
			Obj:  ObjType(1 + rng.Intn(NumObjTypes-1)),
		})
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var back Buffer
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if len(back.Refs) != len(b.Refs) {
		t.Fatalf("round trip: %d refs, want %d", len(back.Refs), len(b.Refs))
	}
	for i := range b.Refs {
		if back.Refs[i] != b.Refs[i] {
			t.Fatalf("ref %d: got %v, want %v", i, back.Refs[i], b.Refs[i])
		}
	}
}

func TestFileRejectsBadMagic(t *testing.T) {
	var back Buffer
	if _, err := back.ReadFrom(bytes.NewReader([]byte("XXXX\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Error("ReadFrom accepted bad magic")
	}
}

func TestRefRoundTripProperty(t *testing.T) {
	// Property: any single Ref survives a file round trip.
	f := func(addr uint32, pe uint8, op bool, obj uint8) bool {
		r := Ref{Addr: addr, PE: pe, Op: OpRead, Obj: ObjType(obj % uint8(NumObjTypes))}
		if op {
			r.Op = OpWrite
		}
		b := Buffer{Refs: []Ref{r}}
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			return false
		}
		var back Buffer
		if _, err := back.ReadFrom(&buf); err != nil {
			return false
		}
		return len(back.Refs) == 1 && back.Refs[0] == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAreaStrings(t *testing.T) {
	for a := AreaNone; a <= AreaMsg; a++ {
		if a.String() == "" {
			t.Errorf("area %d has empty name", a)
		}
	}
	if AreaHeap.String() != "heap" {
		t.Errorf("AreaHeap = %q", AreaHeap.String())
	}
}

func TestStreamWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Ref{
		{Addr: 1, PE: 0, Op: OpRead, Obj: ObjHeap},
		{Addr: 2, PE: 3, Op: OpWrite, Obj: ObjTrail},
		{Addr: 99, PE: 7, Op: OpRead, Obj: ObjGoalFrame},
	}
	for _, r := range want {
		sw.Add(r)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != 3 {
		t.Errorf("count = %d", sw.Count())
	}
	var got []Ref
	n, err := ReadStream(&buf, sinkFunc(func(r Ref) { got = append(got, r) }))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(got) != 3 {
		t.Fatalf("read %d refs", n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ref %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestReadStreamAcceptsBufferFiles(t *testing.T) {
	b := Buffer{Refs: []Ref{{Addr: 5, Obj: ObjHeap}, {Addr: 6, Obj: ObjPDL, Op: OpWrite}}}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var count int
	if _, err := ReadStream(&buf, sinkFunc(func(Ref) { count++ })); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("count = %d", count)
	}
}

func TestReadStreamDetectsTruncation(t *testing.T) {
	b := Buffer{Refs: []Ref{{Addr: 5, Obj: ObjHeap}, {Addr: 6, Obj: ObjPDL}}}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8] // drop one record
	if _, err := ReadStream(bytes.NewReader(trunc), Discard); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestGlobalMaskMatchesTable(t *testing.T) {
	for obj, info := range objTable {
		if got := ObjType(obj).Global(); got != info.global {
			t.Errorf("%v: Global() = %v, objTable says %v", ObjType(obj), got, info.global)
		}
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

// synthTrace builds a deterministic pseudo-trace with the statistical
// shape of a real RAP-WAM trace: runs of same-PE references with mostly
// small address deltas, occasional far jumps, all object types.
func synthTrace(n, pes int) []Ref {
	refs := make([]Ref, 0, n)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 24
	}
	addrs := make([]uint32, pes)
	for i := range addrs {
		addrs[i] = uint32(0x10000 * (i + 1))
	}
	pe := 0
	for len(refs) < n {
		if next()%13 == 0 {
			pe = int(next() % uint64(pes))
		}
		a := addrs[pe]
		switch next() % 8 {
		case 0:
			a -= uint32(next() % 7)
		case 1:
			a = uint32(next()) // far jump
		default:
			a += uint32(next() % 9)
		}
		addrs[pe] = a
		op := OpRead
		if next()%3 == 0 {
			op = OpWrite
		}
		refs = append(refs, Ref{
			Addr: a,
			PE:   uint8(pe),
			Op:   op,
			Obj:  ObjType(1 + next()%uint64(NumObjTypes-1)),
		})
	}
	return refs
}

func encodeCompact(t *testing.T, refs []Ref, meta Meta) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, meta)
	if err != nil {
		t.Fatalf("NewChunkWriter: %v", err)
	}
	cw.AddBatch(refs)
	if err := cw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestCompactRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, codecChunkRefs, codecChunkRefs + 1, 3*codecChunkRefs + 1234} {
		refs := synthTrace(n, 8)
		meta := Meta{Benchmark: "synth", PEs: 8, Sequential: false, EmulatorVersion: "test1"}
		enc := encodeCompact(t, refs, meta)

		cr, err := NewChunkReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("n=%d: NewChunkReader: %v", n, err)
		}
		got := &Buffer{}
		total, err := cr.Replay(got)
		if err != nil {
			t.Fatalf("n=%d: Replay: %v", n, err)
		}
		if total != int64(n) {
			t.Fatalf("n=%d: replayed %d refs", n, total)
		}
		if len(got.Refs) != n {
			t.Fatalf("n=%d: decoded %d refs", n, len(got.Refs))
		}
		for i := range refs {
			if got.Refs[i] != refs[i] {
				t.Fatalf("n=%d: ref %d: got %v want %v", n, i, got.Refs[i], refs[i])
			}
		}
		m := cr.Meta()
		if m.Benchmark != "synth" || m.PEs != 8 || m.Sequential || m.EmulatorVersion != "test1" {
			t.Fatalf("n=%d: meta mismatch: %+v", n, m)
		}
		if m.Refs != int64(n) {
			t.Fatalf("n=%d: meta.Refs = %d", n, m.Refs)
		}
		var perPE [8]int64
		for _, r := range refs {
			perPE[r.PE]++
		}
		for pe, want := range perPE {
			if m.PerPE[pe] != want {
				t.Fatalf("n=%d: PerPE[%d] = %d, want %d", n, pe, m.PerPE[pe], want)
			}
		}
	}
}

// TestCompactRoundTripSingleRefs checks the non-batch encode path and a
// non-batch decode sink.
func TestCompactRoundTripSingleRefs(t *testing.T) {
	refs := synthTrace(10000, 3)
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, Meta{Benchmark: "one", PEs: 3, EmulatorVersion: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		cw.Add(r)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cr, err := NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []Ref
	n, err := cr.Replay(addFunc(func(r Ref) { got = append(got, r) }))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(refs)) || len(got) != len(refs) {
		t.Fatalf("decoded %d/%d refs", n, len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d: got %v want %v", i, got[i], refs[i])
		}
	}
}

// addFunc adapts a function to Sink without implementing BatchSink.
type addFunc func(Ref)

func (f addFunc) Add(r Ref) { f(r) }

func TestCompactSniffing(t *testing.T) {
	refs := synthTrace(5000, 4)
	enc := encodeCompact(t, refs, Meta{Benchmark: "sniff", PEs: 4, EmulatorVersion: "t"})

	// Buffer.ReadFrom sniffs the compact magic.
	var b Buffer
	if _, err := b.ReadFrom(bytes.NewReader(enc)); err != nil {
		t.Fatalf("ReadFrom(compact): %v", err)
	}
	if len(b.Refs) != len(refs) {
		t.Fatalf("ReadFrom decoded %d refs, want %d", len(b.Refs), len(refs))
	}

	// ReadStream sniffs too.
	var c Counter
	n, err := ReadStream(bytes.NewReader(enc), &c)
	if err != nil {
		t.Fatalf("ReadStream(compact): %v", err)
	}
	if n != int64(len(refs)) || c.Total() != int64(len(refs)) {
		t.Fatalf("ReadStream delivered %d refs, counter %d", n, c.Total())
	}

	// The legacy format still round-trips through the same entry points.
	var legacy bytes.Buffer
	if _, err := (&Buffer{Refs: refs}).WriteTo(&legacy); err != nil {
		t.Fatal(err)
	}
	var lb Buffer
	if _, err := lb.ReadFrom(bytes.NewReader(legacy.Bytes())); err != nil {
		t.Fatalf("ReadFrom(legacy): %v", err)
	}
	if len(lb.Refs) != len(refs) {
		t.Fatalf("legacy decoded %d refs", len(lb.Refs))
	}
}

func TestCompactSize(t *testing.T) {
	refs := synthTrace(100000, 8)
	enc := encodeCompact(t, refs, Meta{Benchmark: "size", PEs: 8, EmulatorVersion: "t"})
	legacyBytes := 12 + 8*len(refs)
	if len(enc) >= legacyBytes {
		t.Fatalf("compact encoding %d bytes is not smaller than legacy %d", len(enc), legacyBytes)
	}
	t.Logf("compact: %.2f bytes/ref (legacy: 8)", float64(len(enc))/float64(len(refs)))
}

// TestCompactCorruption flips every byte of a small encoded trace in
// turn and requires the decoder to reject (or decode identically — CRCs
// do not cover framing varints' redundant encodings, but any accepted
// decode must be correct).
func TestCompactCorruption(t *testing.T) {
	refs := synthTrace(2000, 4)
	enc := encodeCompact(t, refs, Meta{Benchmark: "corrupt", PEs: 4, EmulatorVersion: "t"})
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5a
		cr, err := NewChunkReader(bytes.NewReader(mut))
		if err != nil {
			continue // rejected at header parse: good
		}
		got := &Buffer{}
		if _, err := cr.Replay(got); err != nil {
			continue // rejected during decode: good
		}
		// Accepted: must be byte-for-byte the original stream.
		if len(got.Refs) != len(refs) {
			t.Fatalf("flip at byte %d accepted with %d refs (want %d)", i, len(got.Refs), len(refs))
		}
		for j := range refs {
			if got.Refs[j] != refs[j] {
				t.Fatalf("flip at byte %d accepted with wrong ref %d", i, j)
			}
		}
	}
}

func TestCompactTruncation(t *testing.T) {
	refs := synthTrace(20000, 4)
	enc := encodeCompact(t, refs, Meta{Benchmark: "trunc", PEs: 4, EmulatorVersion: "t"})
	for _, cut := range []int{1, 3, 10, 100, len(enc) / 2, len(enc) - 1} {
		cr, err := NewChunkReader(bytes.NewReader(enc[:cut]))
		if err != nil {
			continue // truncated inside the header: good
		}
		if _, err := cr.Replay(&Buffer{}); err == nil {
			t.Fatalf("truncation at %d of %d bytes not detected", cut, len(enc))
		}
	}
}

func TestCompactRejectsWrongVersion(t *testing.T) {
	enc := encodeCompact(t, synthTrace(10, 2), Meta{PEs: 2, EmulatorVersion: "t"})
	enc[4] = CodecVersion + 1 // version byte follows the 4-byte magic
	if _, err := NewChunkReader(bytes.NewReader(enc)); err == nil {
		t.Fatal("future codec version accepted")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestChunkWriterRejectsOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, Meta{PEs: 2, EmulatorVersion: "t"})
	if err != nil {
		t.Fatal(err)
	}
	cw.Add(Ref{Addr: 1, PE: 5}) // PE outside the declared 2
	if err := cw.Close(); err == nil {
		t.Fatal("out-of-range PE not rejected")
	}
}

func TestReplayTwiceRejected(t *testing.T) {
	enc := encodeCompact(t, synthTrace(10, 2), Meta{PEs: 2, EmulatorVersion: "t"})
	cr, err := NewChunkReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Replay(Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Replay(Discard); err == nil {
		t.Fatal("second Replay accepted")
	}
}

package trace

// The compact chunked trace codec ("RWT2"), the persistent form of a
// reference stream. The full byte-level specification lives in
// docs/TRACE_FORMAT.md; in outline a compact trace is
//
//	header  — self-describing: magic, codec version, run parameters
//	          (benchmark, PEs, sequential, emulator version) and the
//	          Table 1 object-type name table, CRC-protected;
//	chunks  — up to 8192 references each, individually CRC-protected,
//	          each independently decodable: within a chunk a reference
//	          costs one tag byte (op, object type, same-PE flag), an
//	          optional PE byte on PE switches, and a zigzag varint
//	          delta of the address against the previous address *of the
//	          same PE* (per-PE delta state, reset per chunk);
//	footer  — total and per-PE reference counts, CRC-protected, written
//	          after the end-of-chunks marker so a streaming writer never
//	          needs to know the trace length up front.
//
// Emission order is preserved exactly: chunks concatenate to the
// original stream, so replaying a decoded trace is bit-identical to
// replaying the live engine's stream. Compared to the fixed 8-byte
// legacy records (file.go), RAP-WAM traces encode in roughly 2 bytes
// per reference because consecutive same-PE references are address-
// local (stack discipline) and PE switches come in runs.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// compactMagic opens a compact chunked trace file.
var compactMagic = [4]byte{'R', 'W', 'T', '2'}

// CodecVersion is the version byte written into compact trace headers.
// It changes only when the byte-level encoding changes incompatibly;
// readers reject other versions.
const CodecVersion = 1

// codec limits: chunk framing fields are validated against these before
// any allocation, so a corrupt or adversarial file cannot demand
// unbounded memory.
const (
	// codecChunkRefs is the number of references per chunk written by
	// ChunkWriter (readers accept any count up to maxChunkRefs).
	codecChunkRefs = 8192
	// maxChunkRefs bounds the per-chunk reference count accepted on
	// decode.
	maxChunkRefs = 1 << 20
	// maxHeaderString bounds header string fields on decode.
	maxHeaderString = 1 << 12
	// maxEncodedRefBytes is the worst-case encoding of one reference:
	// tag byte + PE byte + 5-byte varint address delta.
	maxEncodedRefBytes = 7
)

// Meta describes a compact trace: the run that produced it and, once
// fully written or read, its reference counts. It is the self-describing
// part of the on-disk header plus the footer totals.
type Meta struct {
	// Benchmark names the workload that produced the trace ("qsort",
	// or "" for a non-benchmark run).
	Benchmark string
	// PEs is the number of processing elements the run used.
	PEs int
	// Sequential reports whether CGEs were compiled away (the WAM
	// baseline run).
	Sequential bool
	// EmulatorVersion identifies the engine build that generated the
	// trace (core.EmulatorVersion at write time). Trace content is a
	// pure function of (benchmark, PEs, sequential, emulator version).
	EmulatorVersion string
	// Refs is the total reference count. Writers may leave it zero
	// (unknown, e.g. streaming); the decoder fills it from the footer.
	Refs int64
	// PerPE is the per-PE reference count table (one entry per PE),
	// filled from the footer on decode and accumulated on encode.
	PerPE []int64
	// ObjTypes is the Table 1 object-type name table the trace was
	// written against, making the classification self-describing. The
	// decoder rejects traces whose table does not match this build's.
	ObjTypes []string
}

// currentObjTypeNames returns this build's Table 1 name table, indexed
// by ObjType (including ObjNone).
func currentObjTypeNames() []string {
	names := make([]string, NumObjTypes)
	for t := 0; t < NumObjTypes; t++ {
		names[t] = ObjType(t).String()
	}
	return names
}

// appendUvarint appends v as an unsigned varint.
func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// zigzag maps a signed delta onto an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Tag byte layout (one per reference):
//
//	bit 0    — op (0 read, 1 write)
//	bits 1-5 — object type (0-31)
//	bit 6    — same PE as the previous reference in this chunk
//	bit 7    — reserved, must be zero
const (
	tagOpWrite = 1 << 0
	tagObjMask = 0x1f << 1
	tagSamePE  = 1 << 6
)

// ChunkWriter encodes a reference stream into the compact chunked
// format. It implements Sink and BatchSink, so it can be attached
// directly to a running engine (RunConfig.Sink), fed from a Buffer, or
// driven by the fan-out dispatcher. Like every Sink it is
// single-goroutine. The stream must be terminated with Close, which
// writes the end marker and the footer and flushes buffered bytes.
type ChunkWriter struct {
	w    *bufio.Writer
	out  io.Writer // the underlying writer, for header back-patching
	meta Meta
	// rawHdr is the header without its CRC; refsOff locates the fixed
	// 8-byte reference-count field inside it for Close's back-patch.
	rawHdr  []byte
	refsOff int
	chunk   []Ref
	enc     []byte
	perPE   []int64
	total   int64
	err     error
	closed  bool
}

// NewChunkWriter writes the compact header for meta and returns the
// writer. meta.Refs may be zero (unknown); the true counts go into the
// footer at Close. meta.ObjTypes and meta.PerPE are ignored — the
// writer always records this build's object table and its own counts.
func NewChunkWriter(w io.Writer, meta Meta) (*ChunkWriter, error) {
	if meta.PEs <= 0 {
		meta.PEs = 1
	}
	if meta.PEs > 256 {
		return nil, fmt.Errorf("trace: %d PEs exceed the codec's 256-PE limit", meta.PEs)
	}
	meta.ObjTypes = currentObjTypeNames()
	cw := &ChunkWriter{
		w:     bufio.NewWriterSize(w, 1<<16),
		out:   w,
		meta:  meta,
		chunk: make([]Ref, 0, codecChunkRefs),
		enc:   make([]byte, 0, codecChunkRefs*3),
		perPE: make([]int64, meta.PEs),
	}
	cw.rawHdr, cw.refsOff = compactHeader(meta)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(cw.rawHdr))
	if _, err := cw.w.Write(cw.rawHdr); err != nil {
		return nil, err
	}
	if _, err := cw.w.Write(crc[:]); err != nil {
		return nil, err
	}
	return cw, nil
}

// compactHeader builds the compact-format header for meta (without its
// trailing CRC) and returns it along with the offset of the fixed
// 8-byte reference-count field, which Close back-patches on a seekable
// writer once the streamed count is known. Shared by ChunkWriter and
// ParallelChunkWriter so the two emit byte-identical headers.
func compactHeader(meta Meta) (hdr []byte, refsOff int) {
	hdr = make([]byte, 0, 256)
	hdr = append(hdr, compactMagic[:]...)
	hdr = append(hdr, CodecVersion)
	var flags byte
	if meta.Sequential {
		flags |= 1
	}
	hdr = append(hdr, flags)
	hdr = appendUvarint(hdr, uint64(meta.PEs))
	refsOff = len(hdr)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(max(meta.Refs, 0)))
	hdr = appendString(hdr, meta.Benchmark)
	hdr = appendString(hdr, meta.EmulatorVersion)
	hdr = appendUvarint(hdr, uint64(len(meta.ObjTypes)))
	for _, name := range meta.ObjTypes {
		hdr = appendString(hdr, name)
	}
	return hdr, refsOff
}

// Meta returns the writer's metadata. Refs and PerPE reflect the
// references written so far (complete only after Close).
func (cw *ChunkWriter) Meta() Meta {
	m := cw.meta
	m.Refs = cw.total
	m.PerPE = append([]int64(nil), cw.perPE...)
	return m
}

// Add implements Sink.
func (cw *ChunkWriter) Add(r Ref) {
	if cw.err != nil {
		return
	}
	if cw.closed {
		cw.err = fmt.Errorf("trace: ChunkWriter.Add after Close")
		return
	}
	cw.chunk = append(cw.chunk, r)
	if len(cw.chunk) == codecChunkRefs {
		cw.flushChunk()
	}
}

// AddBatch implements BatchSink. Chunk-aligned prefixes of the batch
// are encoded straight from the caller's slice (the encode is
// synchronous, so nothing is retained past the call); only the
// sub-chunk tail is staged. A producer flushing a staging buffer of
// exactly codecChunkRefs references therefore encodes with no
// intermediate copy at all.
func (cw *ChunkWriter) AddBatch(refs []Ref) {
	for len(refs) > 0 {
		if cw.err != nil {
			return
		}
		if cw.closed {
			cw.err = fmt.Errorf("trace: ChunkWriter.AddBatch after Close")
			return
		}
		if len(cw.chunk) == 0 && len(refs) >= codecChunkRefs {
			cw.encodeChunk(refs[:codecChunkRefs])
			refs = refs[codecChunkRefs:]
			continue
		}
		n := codecChunkRefs - len(cw.chunk)
		if n > len(refs) {
			n = len(refs)
		}
		cw.chunk = append(cw.chunk, refs[:n]...)
		refs = refs[n:]
		if len(cw.chunk) == codecChunkRefs {
			cw.flushChunk()
		}
	}
}

// flushChunk encodes and writes the pending staged chunk.
func (cw *ChunkWriter) flushChunk() {
	if cw.err != nil || len(cw.chunk) == 0 {
		return
	}
	cw.encodeChunk(cw.chunk)
	cw.chunk = cw.chunk[:0]
}

// encodeChunk encodes one chunk's references (at most codecChunkRefs)
// and writes the framed result. The inner loop emits tag bytes and
// zigzag-varint address deltas by index into a worst-case-sized buffer
// — no per-reference function calls — which is the dominant cost of
// cold trace generation after the emulator itself.
func (cw *ChunkWriter) encodeChunk(refs []Ref) {
	if cap(cw.enc) < len(refs)*maxEncodedRefBytes {
		cw.enc = make([]byte, len(refs)*maxEncodedRefBytes)
	}
	var perPE [256]int64
	n, err := encodePayload(refs, cw.meta.PEs, cw.enc[:cap(cw.enc)], &perPE)
	if err != nil {
		cw.err = err
		return
	}
	for p := 0; p < cw.meta.PEs; p++ {
		cw.perPE[p] += perPE[p]
	}
	enc := cw.enc[:n]
	frame := chunkFrame(len(refs), enc)
	if _, err := cw.w.Write(frame); err != nil {
		cw.err = err
	} else if _, err := cw.w.Write(enc); err != nil {
		cw.err = err
	}
	cw.total += int64(len(refs))
}

// encodePayload encodes one chunk's references into buf, which must
// have room for len(refs)*maxEncodedRefBytes bytes, and returns the
// encoded length. Delta state (previous address per PE, previous PE)
// is chunk-local by design — every chunk decodes independently — which
// is exactly what makes chunks encodable in parallel: the bytes a
// chunk encodes to depend only on the chunk's own references.
// Per-reference counts are accumulated into perPE. Shared by
// ChunkWriter and ParallelChunkWriter.
func encodePayload(refs []Ref, pes int, buf []byte, perPE *[256]int64) (int, error) {
	i := 0
	// Per-PE state lives in stack-local tables indexed by the raw PE
	// byte: no slice bounds checks, no aliasing with the writer's heap
	// state, so the inner loop keeps its working set in registers and
	// L1. The two common shapes — same-PE single-byte delta and
	// PE-switch single-byte delta — each collapse into one merged
	// store (the buffer has maxEncodedRefBytes of slack per reference,
	// so the wide store never overruns).
	var prevAddr [256]uint32
	prevPE := -1
	for _, r := range refs {
		if int(r.PE) >= pes {
			return 0, fmt.Errorf("trace: reference PE %d outside the declared %d PEs", r.PE, pes)
		}
		if r.Obj >= 32 {
			return 0, fmt.Errorf("trace: object type %d does not fit the codec's 5-bit field", r.Obj)
		}
		tag := byte(r.Obj) << 1
		if r.Op == OpWrite {
			tag |= tagOpWrite
		}
		pe := r.PE
		u := zigzag(int64(r.Addr) - int64(prevAddr[pe]))
		prevAddr[pe] = r.Addr
		perPE[pe]++
		if int(pe) == prevPE {
			tag |= tagSamePE
			if u < 0x80 {
				// tag + 1-byte delta as one 16-bit store.
				binary.LittleEndian.PutUint16(buf[i:], uint16(tag)|uint16(u)<<8)
				i += 2
				continue
			}
			buf[i] = tag
			i++
		} else {
			prevPE = int(pe)
			if u < 0x80 {
				// tag + PE + 1-byte delta as one 32-bit store (the
				// fourth byte is slack, overwritten by the next ref).
				binary.LittleEndian.PutUint32(buf[i:], uint32(tag)|uint32(pe)<<8|uint32(u)<<16)
				i += 3
				continue
			}
			buf[i] = tag
			buf[i+1] = pe
			i += 2
		}
		for u >= 0x80 {
			buf[i] = byte(u) | 0x80
			i++
			u >>= 7
		}
		buf[i] = byte(u)
		i++
	}
	return i, nil
}

// chunkFrame builds the frame preceding one encoded chunk payload:
// reference count, payload length, payload CRC.
func chunkFrame(nrefs int, payload []byte) []byte {
	frame := make([]byte, 0, 2*binary.MaxVarintLen64+4)
	frame = appendUvarint(frame, uint64(nrefs))
	frame = appendUvarint(frame, uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	frame = append(frame, crc[:]...)
	return frame
}

// Close flushes the partial chunk, writes the end-of-chunks marker and
// the footer (total and per-PE counts, CRC-protected), and flushes the
// underlying writer. If the header declared a reference count, Close
// verifies it. Close is idempotent; it reports the first error from any
// earlier write.
func (cw *ChunkWriter) Close() error {
	if cw.closed {
		return cw.err
	}
	cw.flushChunk()
	cw.closed = true
	if cw.err != nil {
		return cw.err
	}
	if cw.meta.Refs > 0 && cw.meta.Refs != cw.total {
		cw.err = fmt.Errorf("trace: header declared %d refs, wrote %d", cw.meta.Refs, cw.total)
		return cw.err
	}
	if _, err := cw.w.Write(compactFooter(cw.total, cw.perPE)); err != nil {
		cw.err = err
		return cw.err
	}
	if cw.err = cw.w.Flush(); cw.err != nil {
		return cw.err
	}
	cw.err = patchHeaderCount(cw.out, cw.rawHdr, cw.refsOff, cw.meta.Refs, cw.total)
	return cw.err
}

// compactFooter builds the stream trailer: the end-of-chunks marker
// followed by the CRC-protected footer body (total and per-PE counts).
// Shared by ChunkWriter and ParallelChunkWriter.
func compactFooter(total int64, perPE []int64) []byte {
	footer := appendUvarint(nil, 0) // end-of-chunks marker
	body := appendUvarint(nil, uint64(total))
	body = appendUvarint(body, uint64(len(perPE)))
	for _, n := range perPE {
		body = appendUvarint(body, uint64(n))
	}
	footer = append(footer, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(footer, crc[:]...)
}

// patchHeaderCount back-fills the header's reference count (and its
// CRC) after a streamed write, when the underlying writer is seekable
// (a file). On a pure stream the header keeps count zero and readers
// rely on the footer instead. Shared by ChunkWriter and
// ParallelChunkWriter.
func patchHeaderCount(out io.Writer, rawHdr []byte, refsOff int, declared, total int64) error {
	if declared == total {
		return nil // header already carries the exact count
	}
	ws, ok := out.(io.WriteSeeker)
	if !ok {
		return nil
	}
	binary.LittleEndian.PutUint64(rawHdr[refsOff:], uint64(total))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(rawHdr))
	if _, err := ws.Seek(int64(refsOff), io.SeekStart); err != nil {
		return err
	}
	if _, err := ws.Write(rawHdr[refsOff : refsOff+8]); err != nil {
		return err
	}
	if _, err := ws.Seek(int64(len(rawHdr)), io.SeekStart); err != nil {
		return err
	}
	if _, err := ws.Write(crc[:]); err != nil {
		return err
	}
	_, err := ws.Seek(0, io.SeekEnd)
	return err
}

// byteCountReader wraps a bufio.Reader tracking consumed bytes for
// error positions.
type byteReader struct {
	br *bufio.Reader
	n  int64
}

func (b *byteReader) ReadByte() (byte, error) {
	c, err := b.br.ReadByte()
	if err == nil {
		b.n++
	}
	return c, err
}

func (b *byteReader) full(p []byte) error {
	n, err := io.ReadFull(b.br, p)
	b.n += int64(n)
	return err
}

func (b *byteReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(b)
}

func (b *byteReader) lengthString(what string) (string, error) {
	n, err := b.uvarint()
	if err != nil {
		return "", fmt.Errorf("trace: reading %s length: %w", what, err)
	}
	if n > maxHeaderString {
		return "", fmt.Errorf("trace: %s length %d exceeds limit", what, n)
	}
	buf := make([]byte, n)
	if err := b.full(buf); err != nil {
		return "", fmt.Errorf("trace: reading %s: %w", what, err)
	}
	return string(buf), nil
}

// ChunkReader decodes a compact chunked trace, verifying the header,
// every chunk CRC and the footer totals. Decoding is streaming: chunks
// are delivered to the sink one batch at a time, so a trace larger than
// memory replays in constant space.
type ChunkReader struct {
	r       *byteReader
	meta    Meta
	payload []byte
	done    bool
}

// NewChunkReader parses and verifies the compact header. The reader
// rejects traces with an unknown codec version or an object-type table
// that does not match this build's Table 1 (such a trace was produced
// by an incompatible emulator and would mis-classify every reference).
func NewChunkReader(r io.Reader) (*ChunkReader, error) {
	cr := &ChunkReader{r: &byteReader{br: bufio.NewReaderSize(r, 1<<16)}}
	// The header CRC covers the raw bytes; re-serialize while parsing.
	raw := make([]byte, 0, 256)
	var magic [4]byte
	if err := cr.r.full(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != compactMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a compact trace)", magic)
	}
	raw = append(raw, magic[:]...)
	var vf [2]byte
	if err := cr.r.full(vf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	raw = append(raw, vf[:]...)
	if vf[0] != CodecVersion {
		return nil, fmt.Errorf("trace: unsupported codec version %d (this build reads version %d)", vf[0], CodecVersion)
	}
	cr.meta.Sequential = vf[1]&1 != 0
	pes, err := cr.r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: reading PE count: %w", err)
	}
	if pes == 0 || pes > 256 {
		return nil, fmt.Errorf("trace: implausible PE count %d", pes)
	}
	cr.meta.PEs = int(pes)
	raw = appendUvarint(raw, pes)
	var refsField [8]byte
	if err := cr.r.full(refsField[:]); err != nil {
		return nil, fmt.Errorf("trace: reading ref count: %w", err)
	}
	cr.meta.Refs = int64(binary.LittleEndian.Uint64(refsField[:]))
	raw = append(raw, refsField[:]...)
	if cr.meta.Benchmark, err = cr.r.lengthString("benchmark name"); err != nil {
		return nil, err
	}
	raw = appendString(raw, cr.meta.Benchmark)
	if cr.meta.EmulatorVersion, err = cr.r.lengthString("emulator version"); err != nil {
		return nil, err
	}
	raw = appendString(raw, cr.meta.EmulatorVersion)
	nObj, err := cr.r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: reading object table size: %w", err)
	}
	if nObj > 32 {
		return nil, fmt.Errorf("trace: object table size %d exceeds the codec's 32-type limit", nObj)
	}
	raw = appendUvarint(raw, nObj)
	cr.meta.ObjTypes = make([]string, nObj)
	for i := range cr.meta.ObjTypes {
		if cr.meta.ObjTypes[i], err = cr.r.lengthString("object type name"); err != nil {
			return nil, err
		}
		raw = appendString(raw, cr.meta.ObjTypes[i])
	}
	var crc [4]byte
	if err := cr.r.full(crc[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header CRC: %w", err)
	}
	if got := crc32.ChecksumIEEE(raw); got != binary.LittleEndian.Uint32(crc[:]) {
		return nil, fmt.Errorf("trace: header CRC mismatch (corrupt file)")
	}
	want := currentObjTypeNames()
	if len(cr.meta.ObjTypes) != len(want) {
		return nil, fmt.Errorf("trace: object table has %d types, this build has %d (incompatible emulator)",
			len(cr.meta.ObjTypes), len(want))
	}
	for i, name := range cr.meta.ObjTypes {
		if name != want[i] {
			return nil, fmt.Errorf("trace: object type %d is %q in the trace but %q in this build (incompatible emulator)",
				i, name, want[i])
		}
	}
	return cr, nil
}

// Meta returns the trace metadata. Refs and PerPE are authoritative
// only after Replay has consumed the footer; before that Refs holds the
// header's declared count (possibly zero for streamed traces).
func (cr *ChunkReader) Meta() Meta { return cr.meta }

// Replay decodes every chunk into the sink and verifies the footer. The
// sink receives references in exact emission order; a BatchSink gets
// one freshly allocated batch per chunk (safe to hand to the fan-out
// dispatcher, which shares batches across consumers asynchronously).
// Replay returns the number of references delivered.
func (cr *ChunkReader) Replay(sink Sink) (int64, error) {
	if cr.done {
		return 0, fmt.Errorf("trace: ChunkReader.Replay called twice")
	}
	cr.done = true
	bs, isBatch := sink.(BatchSink)
	// Decoded chunks are freshly allocated and never touched again, so
	// a stable-batch consumer (e.g. the fan-out dispatcher) may retain
	// and share them without the defensive copy AddBatch would make.
	sbs, isStable := sink.(StableBatchSink)
	var total int64
	perPE := make([]int64, cr.meta.PEs)
	for {
		refCount, err := cr.r.uvarint()
		if err != nil {
			return total, fmt.Errorf("trace: reading chunk header at ref %d: %w", total, err)
		}
		if refCount == 0 {
			break // end-of-chunks marker; footer follows
		}
		if refCount > maxChunkRefs {
			return total, fmt.Errorf("trace: chunk declares %d refs (limit %d)", refCount, maxChunkRefs)
		}
		payloadLen, err := cr.r.uvarint()
		if err != nil {
			return total, fmt.Errorf("trace: reading chunk length at ref %d: %w", total, err)
		}
		if payloadLen < refCount || payloadLen > refCount*maxEncodedRefBytes {
			return total, fmt.Errorf("trace: chunk payload %d bytes implausible for %d refs", payloadLen, refCount)
		}
		var crc [4]byte
		if err := cr.r.full(crc[:]); err != nil {
			return total, fmt.Errorf("trace: reading chunk CRC at ref %d: %w", total, err)
		}
		if cap(cr.payload) < int(payloadLen) {
			cr.payload = make([]byte, payloadLen)
		}
		payload := cr.payload[:payloadLen]
		if err := cr.r.full(payload); err != nil {
			return total, fmt.Errorf("trace: reading chunk payload at ref %d: %w", total, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != binary.LittleEndian.Uint32(crc[:]) {
			return total, fmt.Errorf("trace: chunk CRC mismatch at ref %d (corrupt file)", total)
		}
		refs, err := decodeChunk(payload, int(refCount), cr.meta.PEs, perPE)
		if err != nil {
			return total, fmt.Errorf("trace: chunk at ref %d: %w", total, err)
		}
		total += int64(len(refs))
		if isStable {
			sbs.AddBatchStable(refs)
		} else if isBatch {
			bs.AddBatch(refs)
		} else {
			for _, r := range refs {
				sink.Add(r)
			}
		}
	}
	// Footer: totals, CRC-protected.
	body := make([]byte, 0, 64)
	footTotal, err := cr.r.uvarint()
	if err != nil {
		return total, fmt.Errorf("trace: reading footer: %w", err)
	}
	body = appendUvarint(body, footTotal)
	nPE, err := cr.r.uvarint()
	if err != nil {
		return total, fmt.Errorf("trace: reading footer PE table: %w", err)
	}
	if nPE != uint64(cr.meta.PEs) {
		return total, fmt.Errorf("trace: footer has %d PE entries, header declared %d", nPE, cr.meta.PEs)
	}
	body = appendUvarint(body, nPE)
	footPerPE := make([]int64, nPE)
	for i := range footPerPE {
		v, err := cr.r.uvarint()
		if err != nil {
			return total, fmt.Errorf("trace: reading footer PE table: %w", err)
		}
		footPerPE[i] = int64(v)
		body = appendUvarint(body, v)
	}
	var crc [4]byte
	if err := cr.r.full(crc[:]); err != nil {
		return total, fmt.Errorf("trace: reading footer CRC: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != binary.LittleEndian.Uint32(crc[:]) {
		return total, fmt.Errorf("trace: footer CRC mismatch (corrupt file)")
	}
	if int64(footTotal) != total {
		return total, fmt.Errorf("trace: footer declares %d refs, stream decoded %d (truncated or corrupt)", footTotal, total)
	}
	if cr.meta.Refs != 0 && cr.meta.Refs != total {
		return total, fmt.Errorf("trace: header declares %d refs, stream decoded %d", cr.meta.Refs, total)
	}
	for i, n := range footPerPE {
		if n != perPE[i] {
			return total, fmt.Errorf("trace: footer declares %d refs for PE %d, stream decoded %d", n, i, perPE[i])
		}
	}
	cr.meta.Refs = total
	cr.meta.PerPE = footPerPE
	return total, nil
}

// decodeChunk decodes one chunk payload into a freshly allocated batch,
// accumulating per-PE counts. The payload must contain exactly refCount
// references and no trailing bytes.
func decodeChunk(payload []byte, refCount, pes int, perPE []int64) ([]Ref, error) {
	refs := make([]Ref, refCount)
	var prevAddr [256]uint32
	prevPE := -1
	pos := 0
	for i := range refs {
		if pos >= len(payload) {
			return nil, fmt.Errorf("payload exhausted at ref %d of %d", i, refCount)
		}
		tag := payload[pos]
		pos++
		if tag&0x80 != 0 {
			return nil, fmt.Errorf("reserved tag bit set at ref %d", i)
		}
		pe := prevPE
		if tag&tagSamePE == 0 {
			if pos >= len(payload) {
				return nil, fmt.Errorf("payload exhausted reading PE at ref %d", i)
			}
			pe = int(payload[pos])
			pos++
			prevPE = pe
		}
		if pe < 0 || pe >= pes {
			return nil, fmt.Errorf("PE %d out of range at ref %d", pe, i)
		}
		delta, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("bad address varint at ref %d", i)
		}
		pos += n
		addr := int64(prevAddr[pe]) + unzigzag(delta)
		if addr < 0 || addr > int64(^uint32(0)) {
			return nil, fmt.Errorf("address %d out of range at ref %d", addr, i)
		}
		op := OpRead
		if tag&tagOpWrite != 0 {
			op = OpWrite
		}
		refs[i] = Ref{
			Addr: uint32(addr),
			PE:   uint8(pe),
			Op:   op,
			Obj:  ObjType(tag >> 1 & 0x1f),
		}
		prevAddr[pe] = uint32(addr)
		perPE[pe]++
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%d trailing bytes after %d refs", len(payload)-pos, refCount)
	}
	return refs, nil
}

// WriteCompact serializes the buffer in the compact chunked format.
// meta.Refs is filled in from the buffer, so the header carries the
// exact count.
func (b *Buffer) WriteCompact(w io.Writer, meta Meta) error {
	meta.Refs = int64(b.Len())
	cw, err := NewChunkWriter(w, meta)
	if err != nil {
		return err
	}
	cw.AddBatch(b.Refs)
	return cw.Close()
}

// ReadCompact fully decodes a compact chunked trace into a new Buffer.
// Use NewChunkReader + Replay to stream instead of materializing.
func ReadCompact(r io.Reader) (*Buffer, Meta, error) {
	cr, err := NewChunkReader(r)
	if err != nil {
		return nil, Meta{}, err
	}
	n := cr.Meta().Refs
	if n <= 0 || n > maxRefs {
		n = 0
	}
	buf := NewBuffer(int(n))
	if _, err := cr.Replay(buf); err != nil {
		return nil, cr.Meta(), err
	}
	return buf, cr.Meta(), nil
}

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Legacy binary trace format (little endian):
//
//	magic   [4]byte  "RWT1"
//	count   uint64   number of references
//	refs    count × {addr uint32, pe uint8, op uint8, obj uint8, pad uint8}
//
// This mirrors the paper's Figure 1 pipeline, where the emulator writes a
// memory-reference trace file that the coherent-cache simulators consume.
// The compact chunked successor format ("RWT2" — delta/varint encoded,
// CRC-protected, streaming) lives in codec.go and is specified in
// docs/TRACE_FORMAT.md; the readers here sniff the magic and accept
// either format.

var fileMagic = [4]byte{'R', 'W', 'T', '1'}

// maxRefs bounds declared reference counts on decode, rejecting
// implausible headers before allocating.
const maxRefs = 1 << 31

// WriteTo serializes the buffer to w in the binary trace format.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.Write(fileMagic[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(b.Refs)))
	n, err = bw.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	var rec [8]byte
	for _, r := range b.Refs {
		binary.LittleEndian.PutUint32(rec[0:4], r.Addr)
		rec[4] = r.PE
		rec[5] = uint8(r.Op)
		rec[6] = uint8(r.Obj)
		rec[7] = 0
		n, err = bw.Write(rec[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadFrom parses a binary trace stream written by WriteTo (or, sniffed
// by magic, a compact chunked trace written by WriteCompact or a
// ChunkWriter), replacing the buffer's contents.
func (b *Buffer) ReadFrom(r io.Reader) (int64, error) {
	// Sized so NewChunkReader reuses this reader instead of stacking a
	// second buffer on top for the compact path.
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(4); err == nil && [4]byte(magic) == compactMagic {
		cr, err := NewChunkReader(br)
		if err != nil {
			return 0, err
		}
		n := cr.Meta().Refs
		if n < 0 || n > maxRefs {
			n = 0
		}
		b.Refs = make([]Ref, 0, n)
		if _, err := cr.Replay(b); err != nil {
			return cr.r.n, err
		}
		return cr.r.n, nil
	}
	var read int64
	var magic [4]byte
	n, err := io.ReadFull(br, magic[:])
	read += int64(n)
	if err != nil {
		return read, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != fileMagic {
		return read, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [8]byte
	n, err = io.ReadFull(br, hdr[:])
	read += int64(n)
	if err != nil {
		return read, fmt.Errorf("trace: reading count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	if count > maxRefs {
		return read, fmt.Errorf("trace: implausible reference count %d", count)
	}
	b.Refs = make([]Ref, 0, count)
	var rec [8]byte
	for i := uint64(0); i < count; i++ {
		n, err = io.ReadFull(br, rec[:])
		read += int64(n)
		if err != nil {
			return read, fmt.Errorf("trace: reading ref %d: %w", i, err)
		}
		b.Refs = append(b.Refs, Ref{
			Addr: binary.LittleEndian.Uint32(rec[0:4]),
			PE:   rec[4],
			Op:   Op(rec[5]),
			Obj:  ObjType(rec[6]),
		})
	}
	return read, nil
}

// StreamWriter writes references to an io.Writer incrementally, without
// buffering the whole trace in memory — for very long runs whose traces
// exceed RAM. The header's count field is written as zero; ReadFrom
// cannot parse streamed files, use ReadStream instead.
type StreamWriter struct {
	w     *bufio.Writer
	count int64
	err   error
}

// NewStreamWriter writes the stream header and returns the sink.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	var hdr [8]byte // count unknown: zero marks a streamed trace
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &StreamWriter{w: bw}, nil
}

// Add implements Sink.
func (s *StreamWriter) Add(r Ref) {
	if s.err != nil {
		return
	}
	var rec [8]byte
	binary.LittleEndian.PutUint32(rec[0:4], r.Addr)
	rec[4] = r.PE
	rec[5] = uint8(r.Op)
	rec[6] = uint8(r.Obj)
	if _, err := s.w.Write(rec[:]); err != nil {
		s.err = err
		return
	}
	s.count++
}

// Count returns the number of references written.
func (s *StreamWriter) Count() int64 { return s.count }

// Close flushes the stream and reports any deferred write error.
func (s *StreamWriter) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// ReadStream parses a trace written by StreamWriter or WriteTo (or,
// sniffed by magic, a compact chunked trace), calling sink.Add — or
// AddBatch for a BatchSink reading a compact trace — for each reference
// without materializing the trace. It returns the number of references
// delivered.
func ReadStream(r io.Reader, sink Sink) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(4); err == nil && [4]byte(magic) == compactMagic {
		cr, err := NewChunkReader(br)
		if err != nil {
			return 0, err
		}
		return cr.Replay(sink)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != fileMagic {
		return 0, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: reading count: %w", err)
	}
	declared := binary.LittleEndian.Uint64(hdr[:])
	var n int64
	var rec [8]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("trace: reading ref %d: %w", n, err)
		}
		sink.Add(Ref{
			Addr: binary.LittleEndian.Uint32(rec[0:4]),
			PE:   rec[4],
			Op:   Op(rec[5]),
			Obj:  ObjType(rec[6]),
		})
		n++
	}
	if declared != 0 && int64(declared) != n {
		return n, fmt.Errorf("trace: header declares %d refs, stream has %d", declared, n)
	}
	return n, nil
}

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelChunkWriter encodes a reference stream into the compact
// chunked format with the encoding and I/O off the producer's
// goroutine — the bytes produced are identical to ChunkWriter's,
// guaranteed by construction:
//
//   - chunk boundaries depend only on arrival order (every chunk holds
//     exactly codecChunkRefs references except the final partial one),
//     and the producer side is single-goroutine, so the partition into
//     chunks matches the sequential writer's exactly;
//   - chunk payloads depend only on the chunk's own references (delta
//     state is chunk-local in the format — see encodePayload), so any
//     worker can encode any chunk;
//   - the writer goroutine reorders completed frames by sequence
//     number and writes them in order;
//   - the footer's totals are exact sums of per-worker counts
//     (commutative int64 additions), and header/frame/footer bytes
//     come from the same helpers the sequential writer uses.
//
// The golden SHA-256 byte-parity suite (internal/bench) pins this
// equivalence on real engine traces, so parallel generation needs no
// EmulatorVersion or CodecVersion bump.
//
// With workers = 1 the pipeline is pure emulate→encode overlap: the
// producer (the engine's staging-buffer flush) only copies references
// into chunk buffers, while encoding and writing proceed concurrently
// on the single worker and the writer goroutine. Higher worker counts
// add encode parallelism on top. Chunk buffers circulate through a
// fixed free list, so a fast producer is back-pressured rather than
// unbounded, and the steady state allocates only transient frame
// headers.
//
// Like every Sink the producer side (Add, AddBatch, Close) is
// single-goroutine. The stream must be terminated with Close, which
// drains the pipeline, writes the footer, flushes, and back-patches
// the header count on a seekable writer.
type ParallelChunkWriter struct {
	bw      *bufio.Writer
	out     io.Writer
	meta    Meta
	rawHdr  []byte
	refsOff int

	chunk []Ref      // staging buffer for the partial chunk
	free  chan []Ref // circulating chunk buffers (backpressure)
	jobs  chan encJob
	ress  chan encResult
	seq   int64
	total int64

	workerPE [][256]int64 // per-worker reference counts, merged at Close
	encWG    sync.WaitGroup
	wrWG     sync.WaitGroup
	payloads sync.Pool

	// failed is set by the writer goroutine on the first error so the
	// producer stops staging work; wErr holds the error itself, read
	// by Close after the writer goroutine exits.
	failed atomic.Bool
	wErr   error

	err    error
	closed bool
}

// encJob is one chunk handed to an encode worker. refs is owned by the
// job until the worker returns it to the free list.
type encJob struct {
	seq  int64
	refs []Ref
}

// encResult is one encoded chunk, reassembled in seq order by the
// writer goroutine. payload points into *buf, which returns to the
// payload pool after the write.
type encResult struct {
	seq     int64
	frame   []byte
	payload []byte
	buf     *[]byte
	err     error
}

// NewParallelChunkWriter writes the compact header for meta and starts
// the encode pipeline with the given number of encode workers
// (workers <= 0 selects GOMAXPROCS). Constraints on meta match
// NewChunkWriter.
func NewParallelChunkWriter(w io.Writer, meta Meta, workers int) (*ParallelChunkWriter, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if meta.PEs <= 0 {
		meta.PEs = 1
	}
	if meta.PEs > 256 {
		return nil, fmt.Errorf("trace: %d PEs exceed the codec's 256-PE limit", meta.PEs)
	}
	meta.ObjTypes = currentObjTypeNames()
	// Chunk buffers in flight: one staging with the producer, up to
	// nbuf-1 queued or being encoded. Sized so every worker can be busy
	// while the producer stages ahead, without unbounded memory.
	nbuf := 2*workers + 2
	cw := &ParallelChunkWriter{
		bw:       bufio.NewWriterSize(w, 1<<16),
		out:      w,
		meta:     meta,
		free:     make(chan []Ref, nbuf),
		jobs:     make(chan encJob, nbuf),
		ress:     make(chan encResult, nbuf),
		workerPE: make([][256]int64, workers),
	}
	cw.payloads.New = func() any {
		b := make([]byte, codecChunkRefs*maxEncodedRefBytes)
		return &b
	}
	for i := 0; i < nbuf; i++ {
		cw.free <- make([]Ref, 0, codecChunkRefs)
	}
	cw.rawHdr, cw.refsOff = compactHeader(meta)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(cw.rawHdr))
	if _, err := cw.bw.Write(cw.rawHdr); err != nil {
		return nil, err
	}
	if _, err := cw.bw.Write(crc[:]); err != nil {
		return nil, err
	}
	// The writer goroutine owns bw from here until Close's wrWG.Wait.
	cw.encWG.Add(workers)
	for i := 0; i < workers; i++ {
		go cw.runEncoder(i)
	}
	cw.wrWG.Add(1)
	go cw.runWriter()
	return cw, nil
}

// Meta returns the writer's metadata; Refs and PerPE are complete only
// after Close (before that the pipeline still owns in-flight counts).
func (cw *ParallelChunkWriter) Meta() Meta {
	m := cw.meta
	m.Refs = cw.total
	perPE := make([]int64, m.PEs)
	if cw.closed {
		for w := range cw.workerPE {
			for p := 0; p < m.PEs; p++ {
				perPE[p] += cw.workerPE[w][p]
			}
		}
	}
	m.PerPE = perPE
	return m
}

// Add implements Sink.
func (cw *ParallelChunkWriter) Add(r Ref) {
	if cw.err != nil {
		return
	}
	if cw.closed {
		cw.err = fmt.Errorf("trace: ParallelChunkWriter.Add after Close")
		return
	}
	if cw.chunk == nil {
		cw.chunk = <-cw.free
	}
	cw.chunk = append(cw.chunk, r)
	if len(cw.chunk) == codecChunkRefs {
		cw.dispatch()
	}
}

// AddBatch implements BatchSink: the batch is copied into circulating
// chunk buffers (ownership of the staged chunk transfers to an encode
// worker), so per the BatchSink contract the caller's slice is free
// for reuse the moment AddBatch returns.
func (cw *ParallelChunkWriter) AddBatch(refs []Ref) {
	for len(refs) > 0 {
		if cw.err != nil {
			return
		}
		if cw.closed {
			cw.err = fmt.Errorf("trace: ParallelChunkWriter.AddBatch after Close")
			return
		}
		if cw.chunk == nil {
			cw.chunk = <-cw.free
		}
		n := codecChunkRefs - len(cw.chunk)
		if n > len(refs) {
			n = len(refs)
		}
		cw.chunk = append(cw.chunk, refs[:n]...)
		refs = refs[n:]
		if len(cw.chunk) == codecChunkRefs {
			cw.dispatch()
		}
	}
}

// dispatch hands the staged chunk to the encode workers. After the
// first pipeline error the chunk is recycled instead: the stream is
// already lost, so feeding more work would only delay Close.
func (cw *ParallelChunkWriter) dispatch() {
	chunk := cw.chunk
	cw.chunk = nil
	if cw.failed.Load() {
		cw.free <- chunk[:0]
		return
	}
	cw.total += int64(len(chunk))
	cw.jobs <- encJob{seq: cw.seq, refs: chunk}
	cw.seq++
}

// runEncoder encodes jobs until the jobs channel closes, accumulating
// reference counts into its own workerPE slot.
func (cw *ParallelChunkWriter) runEncoder(id int) {
	defer cw.encWG.Done()
	for job := range cw.jobs {
		bp := cw.payloads.Get().(*[]byte)
		var perPE [256]int64
		n, err := encodePayload(job.refs, cw.meta.PEs, *bp, &perPE)
		res := encResult{seq: job.seq, err: err}
		if err == nil {
			for p := 0; p < cw.meta.PEs; p++ {
				cw.workerPE[id][p] += perPE[p]
			}
			res.payload = (*bp)[:n]
			res.buf = bp
			res.frame = chunkFrame(len(job.refs), res.payload)
		} else {
			cw.payloads.Put(bp)
		}
		cw.free <- job.refs[:0]
		cw.ress <- res
	}
}

// runWriter reassembles results in sequence order and writes them.
// All pipeline errors (encode and I/O) funnel through here, in
// deterministic stream order, so the first error reported is the same
// one the sequential writer would have hit.
func (cw *ParallelChunkWriter) runWriter() {
	defer cw.wrWG.Done()
	next := int64(0)
	pending := make(map[int64]encResult)
	for res := range cw.ress {
		pending[res.seq] = res
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			cw.writeResult(r)
		}
	}
}

// writeResult writes one in-order frame, or records the first error.
func (cw *ParallelChunkWriter) writeResult(r encResult) {
	if cw.wErr == nil {
		switch {
		case r.err != nil:
			cw.setWriteErr(r.err)
		default:
			if _, err := cw.bw.Write(r.frame); err != nil {
				cw.setWriteErr(err)
			} else if _, err := cw.bw.Write(r.payload); err != nil {
				cw.setWriteErr(err)
			}
		}
	}
	if r.buf != nil {
		cw.payloads.Put(r.buf)
	}
}

func (cw *ParallelChunkWriter) setWriteErr(err error) {
	cw.wErr = err
	cw.failed.Store(true)
}

// Close flushes the partial chunk, drains the pipeline, writes the
// end-of-chunks marker and footer, flushes, and back-patches the
// header count on a seekable writer — the same epilogue as
// ChunkWriter.Close, so the trailing bytes are identical. Close is
// idempotent and reports the first error from any pipeline stage.
func (cw *ParallelChunkWriter) Close() error {
	if cw.closed {
		return cw.err
	}
	if cw.chunk != nil && len(cw.chunk) > 0 {
		cw.dispatch()
	}
	cw.closed = true
	close(cw.jobs)
	cw.encWG.Wait()
	close(cw.ress)
	cw.wrWG.Wait()
	if cw.err == nil && cw.wErr != nil {
		cw.err = cw.wErr
	}
	if cw.err != nil {
		return cw.err
	}
	if cw.meta.Refs > 0 && cw.meta.Refs != cw.total {
		cw.err = fmt.Errorf("trace: header declared %d refs, wrote %d", cw.meta.Refs, cw.total)
		return cw.err
	}
	perPE := make([]int64, cw.meta.PEs)
	for w := range cw.workerPE {
		for p := 0; p < cw.meta.PEs; p++ {
			perPE[p] += cw.workerPE[w][p]
		}
	}
	if _, err := cw.bw.Write(compactFooter(cw.total, perPE)); err != nil {
		cw.err = err
		return cw.err
	}
	if cw.err = cw.bw.Flush(); cw.err != nil {
		return cw.err
	}
	cw.err = patchHeaderCount(cw.out, cw.rawHdr, cw.refsOff, cw.meta.Refs, cw.total)
	return cw.err
}

package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Byte-parity tests for the parallel encoder: for any stream shape and
// any worker count, ParallelChunkWriter must produce exactly the bytes
// ChunkWriter produces — same header, same frames in the same order,
// same footer, same header back-patch on a seekable writer.

// synthStream builds a deterministic pseudo-random reference stream
// that exercises the codec's shapes: same-PE runs, PE switches, short
// and long address deltas, reads and writes, varied object types.
func synthStream(n, pes int, seed int64) []Ref {
	rng := rand.New(rand.NewSource(seed))
	refs := make([]Ref, n)
	addr := make([]uint32, pes)
	pe := 0
	for i := range refs {
		if rng.Intn(8) == 0 {
			pe = rng.Intn(pes)
		}
		switch rng.Intn(4) {
		case 0:
			addr[pe] += uint32(rng.Intn(4))
		case 1:
			addr[pe] -= uint32(rng.Intn(64))
		default:
			addr[pe] += uint32(rng.Intn(1 << uint(rng.Intn(20))))
		}
		op := OpRead
		if rng.Intn(3) == 0 {
			op = OpWrite
		}
		refs[i] = Ref{
			Addr: addr[pe] & 0x0fffffff,
			PE:   uint8(pe),
			Op:   op,
			Obj:  ObjType(rng.Intn(int(NumObjTypes))),
		}
	}
	return refs
}

// seqBytes encodes refs with the sequential writer.
func seqBytes(t *testing.T, meta Meta, refs []Ref) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := NewChunkWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	cw.AddBatch(refs)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// parBytes encodes refs with the parallel writer, mixing delivery
// granularities to vary chunk staging paths.
func parBytes(t *testing.T, meta Meta, refs []Ref, workers int, batch int) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := NewParallelChunkWriter(&buf, meta, workers)
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case batch <= 0: // one reference at a time
		for _, r := range refs {
			cw.Add(r)
		}
	default:
		for len(refs) > 0 {
			n := batch
			if n > len(refs) {
				n = len(refs)
			}
			cw.AddBatch(refs[:n])
			refs = refs[n:]
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParallelChunkWriterByteParity(t *testing.T) {
	meta := Meta{Benchmark: "synth", PEs: 8, EmulatorVersion: "test"}
	sizes := []int{0, 1, 100, codecChunkRefs - 1, codecChunkRefs, codecChunkRefs + 1, 3*codecChunkRefs + 17}
	for _, n := range sizes {
		refs := synthStream(n, meta.PEs, int64(n)+1)
		want := seqBytes(t, meta, refs)
		for _, workers := range []int{1, 2, 4} {
			for _, batch := range []int{0, 1000, codecChunkRefs, 65536} {
				t.Run(fmt.Sprintf("n=%d/workers=%d/batch=%d", n, workers, batch), func(t *testing.T) {
					got := parBytes(t, meta, refs, workers, batch)
					if !bytes.Equal(got, want) {
						t.Fatalf("parallel bytes differ from sequential: got %d bytes, want %d", len(got), len(want))
					}
				})
			}
		}
	}
}

// TestParallelChunkWriterFilePatch checks the header back-patch path
// (seekable writer): the full file must match the sequential writer's.
func TestParallelChunkWriterFilePatch(t *testing.T) {
	meta := Meta{Benchmark: "synth", PEs: 4, EmulatorVersion: "test"}
	refs := synthStream(2*codecChunkRefs+123, meta.PEs, 7)

	write := func(name string, enc func(f *os.File) error) []byte {
		path := filepath.Join(t.TempDir(), name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	want := write("seq.rwt", func(f *os.File) error {
		cw, err := NewChunkWriter(f, meta)
		if err != nil {
			return err
		}
		cw.AddBatch(refs)
		return cw.Close()
	})
	got := write("par.rwt", func(f *os.File) error {
		cw, err := NewParallelChunkWriter(f, meta, 3)
		if err != nil {
			return err
		}
		cw.AddBatch(refs)
		return cw.Close()
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("file bytes differ: got %d bytes, want %d", len(got), len(want))
	}

	// And the decoder round-trips the parallel file.
	cr, err := NewChunkReader(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("opening parallel file: %v", err)
	}
	var decoded Buffer
	if _, err := cr.Replay(&decoded); err != nil {
		t.Fatalf("decoding parallel file: %v", err)
	}
	if int(cr.Meta().Refs) != len(refs) || len(decoded.Refs) != len(refs) {
		t.Fatalf("decoded %d refs (meta %d), want %d", len(decoded.Refs), cr.Meta().Refs, len(refs))
	}
	for i := range refs {
		if decoded.Refs[i] != refs[i] {
			t.Fatalf("ref %d: got %+v, want %+v", i, decoded.Refs[i], refs[i])
		}
	}
}

// TestParallelChunkWriterMeta checks totals and per-PE counts after
// Close match the sequential writer's metadata.
func TestParallelChunkWriterMeta(t *testing.T) {
	meta := Meta{Benchmark: "synth", PEs: 5, EmulatorVersion: "test"}
	refs := synthStream(codecChunkRefs+999, meta.PEs, 11)
	var sb, pb bytes.Buffer
	seq, err := NewChunkWriter(&sb, meta)
	if err != nil {
		t.Fatal(err)
	}
	seq.AddBatch(refs)
	if err := seq.Close(); err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelChunkWriter(&pb, meta, 4)
	if err != nil {
		t.Fatal(err)
	}
	par.AddBatch(refs)
	if err := par.Close(); err != nil {
		t.Fatal(err)
	}
	sm, pm := seq.Meta(), par.Meta()
	if pm.Refs != sm.Refs {
		t.Errorf("Refs: got %d, want %d", pm.Refs, sm.Refs)
	}
	for pe := range sm.PerPE {
		if pm.PerPE[pe] != sm.PerPE[pe] {
			t.Errorf("PerPE[%d]: got %d, want %d", pe, pm.PerPE[pe], sm.PerPE[pe])
		}
	}
}

// TestParallelChunkWriterErrors pins the validation errors to the
// sequential writer's messages and checks the pipeline shuts down
// cleanly after one.
func TestParallelChunkWriterErrors(t *testing.T) {
	meta := Meta{Benchmark: "synth", PEs: 2, EmulatorVersion: "test"}

	var buf bytes.Buffer
	cw, err := NewParallelChunkWriter(&buf, meta, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := synthStream(codecChunkRefs, meta.PEs, 3)
	bad[100].PE = 9 // outside declared PEs
	cw.AddBatch(bad)
	// Keep feeding after the poisoned chunk; the writer must not
	// deadlock or panic.
	cw.AddBatch(synthStream(3*codecChunkRefs, meta.PEs, 4))
	err = cw.Close()
	if err == nil || !strings.Contains(err.Error(), "outside the declared") {
		t.Fatalf("Close error = %v, want PE-range error", err)
	}
	if again := cw.Close(); again != err {
		t.Fatalf("second Close = %v, want the same error", again)
	}

	// Add after Close is an error, like the sequential writer.
	var buf2 bytes.Buffer
	cw2, err := NewParallelChunkWriter(&buf2, meta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw2.Close(); err != nil {
		t.Fatal(err)
	}
	cw2.Add(Ref{})
	if cw2.err == nil {
		t.Fatal("Add after Close did not record an error")
	}
}

// TestParallelChunkWriterDeclaredRefs checks the declared-count
// mismatch detection survives the pipeline.
func TestParallelChunkWriterDeclaredRefs(t *testing.T) {
	meta := Meta{Benchmark: "synth", PEs: 2, EmulatorVersion: "test", Refs: 10}
	var buf bytes.Buffer
	cw, err := NewParallelChunkWriter(&buf, meta, 2)
	if err != nil {
		t.Fatal(err)
	}
	cw.AddBatch(synthStream(11, meta.PEs, 5))
	if err := cw.Close(); err == nil || !strings.Contains(err.Error(), "declared") {
		t.Fatalf("Close error = %v, want declared-count mismatch", err)
	}
}

// Package busmodel estimates shared-bus contention for the two-level
// memory organization of the paper's Figure 3. Section 3.3 of the paper
// defers the "time penalty to access shared memory due to contention"
// to a queueing model (Tick's); this package implements both an
// analytic M/M/1 approximation and a deterministic discrete-event
// simulation of a single shared bus fed by per-PE miss streams.
package busmodel

import (
	"fmt"
	"math"
	"sort"
)

// Params describes the bus and the offered load.
type Params struct {
	// PEs is the number of processors.
	PEs int
	// RefsPerCycle is each PE's memory-reference rate while working
	// (references per processor cycle; ~1 for a reference-per-cycle
	// abstract machine).
	RefsPerCycle float64
	// TrafficRatio is the cache simulator's bus words per reference.
	TrafficRatio float64
	// BusWordsPerCycle is the bus bandwidth in words per processor
	// cycle (>1 models a wide or overlapped bus + interleaved memory).
	BusWordsPerCycle float64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.PEs <= 0 {
		return fmt.Errorf("busmodel: PEs = %d", p.PEs)
	}
	if p.RefsPerCycle <= 0 || p.TrafficRatio < 0 || p.BusWordsPerCycle <= 0 {
		return fmt.Errorf("busmodel: non-positive rate parameters")
	}
	return nil
}

// Result summarizes a contention estimate.
type Result struct {
	// Utilization is the fraction of bus capacity in use (ρ).
	Utilization float64
	// MeanWaitCycles is the average queueing delay per bus word.
	MeanWaitCycles float64
	// Efficiency is the fraction of peak PE throughput retained after
	// bus stalls (1 = no slowdown).
	Efficiency float64
	// Saturated reports offered load at or above bus capacity.
	Saturated bool
}

// Analytic evaluates an M/M/1 approximation: the bus is a single server
// with service rate BusWordsPerCycle, offered P·r·t words per cycle.
func Analytic(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	offered := float64(p.PEs) * p.RefsPerCycle * p.TrafficRatio
	rho := offered / p.BusWordsPerCycle
	if rho >= 1 {
		return Result{Utilization: rho, Saturated: true}, nil
	}
	service := 1 / p.BusWordsPerCycle
	wait := service * rho / (1 - rho) // M/M/1 queueing delay
	// A PE stalls `wait` cycles for each of its r·t bus words/cycle.
	stallPerCycle := p.RefsPerCycle * p.TrafficRatio * wait
	eff := 1 / (1 + stallPerCycle)
	return Result{Utilization: rho, MeanWaitCycles: wait, Efficiency: eff}, nil
}

// MaxPEs returns the largest PE count keeping analytic efficiency at or
// above target (0 < target < 1).
func MaxPEs(p Params, target float64) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("busmodel: target %v out of (0,1)", target)
	}
	best := 0
	for n := 1; n <= 4096; n++ {
		q := p
		q.PEs = n
		r, err := Analytic(q)
		if err != nil {
			return 0, err
		}
		if r.Saturated || r.Efficiency < target {
			break
		}
		best = n
	}
	if best == 0 {
		return 0, fmt.Errorf("busmodel: even 1 PE misses target %.2f", target)
	}
	return best, nil
}

// Event is one bus transaction for the discrete-event simulation.
type Event struct {
	// PE is the requesting processor.
	PE int
	// Time is the issue time in cycles (monotone per PE).
	Time float64
	// Words is the transaction length.
	Words int
}

// Simulate runs a FIFO single-server bus over the given transactions
// and returns per-PE stall totals plus the aggregate result. Events
// need not be globally sorted; they are ordered by issue time.
func Simulate(events []Event, pes int, busWordsPerCycle float64) (Result, []float64, error) {
	if pes <= 0 || busWordsPerCycle <= 0 {
		return Result{}, nil, fmt.Errorf("busmodel: bad simulate params")
	}
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })

	stall := make([]float64, pes)
	var busFree float64 // time the bus becomes free
	var busBusy float64 // accumulated service time
	var lastEnd float64
	var totalWait float64
	for _, ev := range evs {
		if ev.PE < 0 || ev.PE >= pes {
			return Result{}, nil, fmt.Errorf("busmodel: event PE %d out of range", ev.PE)
		}
		start := math.Max(ev.Time, busFree)
		service := float64(ev.Words) / busWordsPerCycle
		wait := start - ev.Time
		stall[ev.PE] += wait
		totalWait += wait
		busFree = start + service
		busBusy += service
		lastEnd = busFree
	}
	if len(evs) == 0 {
		return Result{Efficiency: 1}, stall, nil
	}
	util := busBusy / lastEnd
	mean := totalWait / float64(len(evs))
	// Efficiency: useful time over useful+stall, averaged over PEs.
	var eff float64
	for pe := 0; pe < pes; pe++ {
		eff += lastEnd / (lastEnd + stall[pe])
	}
	eff /= float64(pes)
	return Result{Utilization: util, MeanWaitCycles: mean, Efficiency: eff}, stall, nil
}

package busmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAnalyticZeroTrafficIsPerfect(t *testing.T) {
	r, err := Analytic(Params{PEs: 8, RefsPerCycle: 1, TrafficRatio: 0, BusWordsPerCycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Efficiency != 1 || r.Utilization != 0 {
		t.Errorf("got %+v, want perfect efficiency", r)
	}
}

func TestAnalyticSaturation(t *testing.T) {
	r, err := Analytic(Params{PEs: 8, RefsPerCycle: 1, TrafficRatio: 0.5, BusWordsPerCycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Saturated {
		t.Errorf("offered 4 words/cycle on a 1-word bus should saturate: %+v", r)
	}
}

func TestAnalyticMonotoneInBandwidth(t *testing.T) {
	var prev float64
	for i, bw := range []float64{1, 2, 4, 8, 16} {
		r, err := Analytic(Params{PEs: 8, RefsPerCycle: 1, TrafficRatio: 0.1, BusWordsPerCycle: bw})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && r.Efficiency < prev {
			t.Errorf("efficiency fell from %.3f to %.3f at bw=%v", prev, r.Efficiency, bw)
		}
		prev = r.Efficiency
	}
}

func TestAnalyticMonotoneInPEsProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := seed % 100
		if m < 0 {
			m = -m
		}
		traffic := 0.05 + float64(m)/1000
		var prev float64 = 2
		for _, pes := range []int{1, 2, 4, 8, 16} {
			r, err := Analytic(Params{PEs: pes, RefsPerCycle: 1, TrafficRatio: traffic, BusWordsPerCycle: 8})
			if err != nil {
				return false
			}
			eff := r.Efficiency
			if r.Saturated {
				eff = 0
			}
			if eff > prev {
				return false // more PEs cannot improve per-PE efficiency
			}
			prev = eff
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAnalyticRejectsBadParams(t *testing.T) {
	bad := []Params{
		{PEs: 0, RefsPerCycle: 1, TrafficRatio: 0.1, BusWordsPerCycle: 1},
		{PEs: 1, RefsPerCycle: 0, TrafficRatio: 0.1, BusWordsPerCycle: 1},
		{PEs: 1, RefsPerCycle: 1, TrafficRatio: -1, BusWordsPerCycle: 1},
		{PEs: 1, RefsPerCycle: 1, TrafficRatio: 0.1, BusWordsPerCycle: 0},
	}
	for i, p := range bad {
		if _, err := Analytic(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestMaxPEs(t *testing.T) {
	p := Params{PEs: 1, RefsPerCycle: 1, TrafficRatio: 0.1, BusWordsPerCycle: 4}
	n, err := MaxPEs(p, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("MaxPEs = %d", n)
	}
	// Verify the boundary: n meets the target, n+1 does not (or saturates).
	p.PEs = n
	r, _ := Analytic(p)
	if r.Efficiency < 0.9 {
		t.Errorf("MaxPEs=%d but efficiency %.3f < target", n, r.Efficiency)
	}
	p.PEs = n + 1
	r, _ = Analytic(p)
	if !r.Saturated && r.Efficiency >= 0.9 {
		t.Errorf("n+1=%d still meets target (eff %.3f)", n+1, r.Efficiency)
	}
}

func TestMaxPEsRejectsBadTarget(t *testing.T) {
	p := Params{PEs: 1, RefsPerCycle: 1, TrafficRatio: 0.1, BusWordsPerCycle: 4}
	for _, target := range []float64{0, 1, -0.5, 2} {
		if _, err := MaxPEs(p, target); err == nil {
			t.Errorf("target %v accepted", target)
		}
	}
}

func TestSimulateNoContention(t *testing.T) {
	// Well-spaced events: no waiting.
	events := []Event{
		{PE: 0, Time: 0, Words: 4},
		{PE: 1, Time: 100, Words: 4},
		{PE: 0, Time: 200, Words: 4},
	}
	r, stall, err := Simulate(events, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanWaitCycles != 0 {
		t.Errorf("mean wait = %v, want 0", r.MeanWaitCycles)
	}
	if stall[0] != 0 || stall[1] != 0 {
		t.Errorf("stalls = %v", stall)
	}
	if r.Efficiency != 1 {
		t.Errorf("efficiency = %v", r.Efficiency)
	}
}

func TestSimulateFullContention(t *testing.T) {
	// Two simultaneous 4-word transactions on a 1-word/cycle bus: the
	// second waits 4 cycles.
	events := []Event{
		{PE: 0, Time: 0, Words: 4},
		{PE: 1, Time: 0, Words: 4},
	}
	r, stall, err := Simulate(events, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stall[0] != 0 || stall[1] != 4 {
		t.Errorf("stalls = %v, want [0 4]", stall)
	}
	if math.Abs(r.Utilization-1.0) > 1e-9 {
		t.Errorf("utilization = %v, want 1", r.Utilization)
	}
}

func TestSimulateEmpty(t *testing.T) {
	r, _, err := Simulate(nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Efficiency != 1 {
		t.Errorf("empty simulation efficiency = %v", r.Efficiency)
	}
}

func TestSimulateRejectsBadEvents(t *testing.T) {
	if _, _, err := Simulate([]Event{{PE: 5, Time: 0, Words: 1}}, 2, 1); err == nil {
		t.Error("out-of-range PE accepted")
	}
	if _, _, err := Simulate(nil, 0, 1); err == nil {
		t.Error("zero PEs accepted")
	}
}

func TestSimulateAgreesWithAnalyticTrend(t *testing.T) {
	// Dense periodic load: higher bandwidth -> less waiting.
	mk := func() []Event {
		var evs []Event
		for i := 0; i < 500; i++ {
			evs = append(evs, Event{PE: i % 4, Time: float64(i), Words: 2})
		}
		return evs
	}
	slow, _, err := Simulate(mk(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := Simulate(mk(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MeanWaitCycles > slow.MeanWaitCycles {
		t.Errorf("faster bus waits more: %v vs %v", fast.MeanWaitCycles, slow.MeanWaitCycles)
	}
	if fast.Efficiency < slow.Efficiency {
		t.Errorf("faster bus less efficient: %v vs %v", fast.Efficiency, slow.Efficiency)
	}
}

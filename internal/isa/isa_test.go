package isa

import (
	"strings"
	"testing"
)

func TestOpcodeNamesComplete(t *testing.T) {
	for op := OpNop; int(op) < numOpcodes; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestSymTabInterning(t *testing.T) {
	st := NewSymTab()
	if st.Atom("[]") != NilAtom {
		t.Error("[] must intern at NilAtom")
	}
	a := st.Atom("foo")
	if st.Atom("foo") != a {
		t.Error("atom not interned")
	}
	if st.AtomName(a) != "foo" {
		t.Errorf("AtomName = %q", st.AtomName(a))
	}
	f := st.Fun("f", 2)
	if st.Fun("f", 2) != f {
		t.Error("functor not interned")
	}
	if st.Fun("f", 3) == f {
		t.Error("arity must distinguish functors")
	}
	got := st.FunctorAt(f)
	if got.Name != "f" || got.Arity != 2 {
		t.Errorf("FunctorAt = %v", got)
	}
	if got.String() != "f/2" {
		t.Errorf("String = %q", got.String())
	}
}

func TestSymTabOutOfRange(t *testing.T) {
	st := NewSymTab()
	if st.AtomName(99) == "" {
		t.Error("out-of-range atom name empty")
	}
	if st.FunctorAt(99).Name == "" {
		t.Error("out-of-range functor name empty")
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []Instr{
		{Op: OpCall, R1: 2, N: 10},
		{Op: OpArith, R1: 5, R2: 6, R3: 7, N: int32(ArithAdd)},
		{Op: OpCompare, R1: 1, R2: 2, N: int32(CmpLE)},
		{Op: OpBuiltin, R1: 2, N: int32(BiUnify)},
		{Op: OpGetConstant, R2: 1},
	}
	for _, ins := range cases {
		if ins.String() == "" {
			t.Errorf("empty rendering for %v", ins.Op)
		}
	}
}

func TestBuiltinAndOpNames(t *testing.T) {
	if BiUnify.String() != "=" || BiIs.String() != "is" {
		t.Error("builtin names wrong")
	}
	if ArithAdd.String() != "add" || ArithDeref.String() != "deref" {
		t.Error("arith names wrong")
	}
	if CmpLE.String() != "=<" || CmpNE.String() != "=\\=" {
		t.Error("compare names wrong")
	}
}

func TestCodeListing(t *testing.T) {
	c := &Code{Instrs: []Instr{{Op: OpProceed}, {Op: OpFail}}}
	l := c.Listing()
	if !strings.Contains(l, "proceed") || !strings.Contains(l, "fail") {
		t.Errorf("listing:\n%s", l)
	}
}

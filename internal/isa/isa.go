// Package isa defines the RAP-WAM instruction set: the classic WAM
// instructions (get/put/unify, control, choice, indexing, cut) plus the
// AND-parallel extensions that implement Conditional Graph Expressions
// (pframe / push_goal / pcall_local and the independence checks).
// The compiler (internal/compile) produces Code values and the engine
// (internal/core) executes them.
package isa

import (
	"fmt"

	"repro/internal/mem"
)

// Opcode enumerates the instruction set.
type Opcode uint8

const (
	// OpNop does nothing (never emitted; catches zero-value bugs).
	OpNop Opcode = iota

	// --- get instructions (head argument matching) ---

	// OpGetVariableX: Xn := Ai. R1=n, R2=i.
	OpGetVariableX
	// OpGetVariableY: Yn := Ai. R1=n, R2=i.
	OpGetVariableY
	// OpGetValueX: unify Xn with Ai. R1=n, R2=i.
	OpGetValueX
	// OpGetValueY: unify Yn with Ai. R1=n, R2=i.
	OpGetValueY
	// OpGetConstant: unify constant W with Ai. R2=i.
	OpGetConstant
	// OpGetNil: unify [] with Ai. R2=i.
	OpGetNil
	// OpGetStructure: unify structure F (functor index N) with Ai;
	// sets read/write mode. R2=i.
	OpGetStructure
	// OpGetList: unify a list cell with Ai; sets read/write mode. R2=i.
	OpGetList

	// --- put instructions (goal argument loading) ---

	// OpPutVariableX: new unbound heap cell; Xn := Ai := ref. R1=n, R2=i.
	OpPutVariableX
	// OpPutVariableY: initialize Yn unbound; Ai := ref to Yn. R1=n, R2=i.
	OpPutVariableY
	// OpPutValueX: Ai := Xn. R1=n, R2=i.
	OpPutValueX
	// OpPutValueY: Ai := Yn (dereferenced one level from the slot). R1=n, R2=i.
	OpPutValueY
	// OpPutUnsafeValue: Ai := deref(Yn), globalizing an unbound
	// environment-resident variable onto the heap. R1=n, R2=i.
	OpPutUnsafeValue
	// OpPutConstant: Ai := constant W. R2=i.
	OpPutConstant
	// OpPutNil: Ai := []. R2=i.
	OpPutNil
	// OpPutStructure: push functor cell (functor index N); Ai := str. R2=i.
	OpPutStructure
	// OpPutList: Ai := lis pointing at heap top. R2=i.
	OpPutList

	// --- unify instructions (structure arguments) ---

	// OpUnifyVariableX: read: Xn := next cell; write: push fresh cell
	// into Xn. R1=n.
	OpUnifyVariableX
	// OpUnifyVariableY: as above into Yn. R1=n.
	OpUnifyVariableY
	// OpUnifyValueX: read: unify; write: push Xn's value. R1=n.
	OpUnifyValueX
	// OpUnifyValueY: as above for Yn. R1=n.
	OpUnifyValueY
	// OpUnifyLocalValueX: like unify_value but globalizes a
	// stack-resident unbound variable before pushing. R1=n.
	OpUnifyLocalValueX
	// OpUnifyLocalValueY: as above for Yn. R1=n.
	OpUnifyLocalValueY
	// OpUnifyConstant: read: unify next cell with W; write: push W.
	OpUnifyConstant
	// OpUnifyNil: as OpUnifyConstant for [].
	OpUnifyNil
	// OpUnifyVoid: skip/push N fresh cells. N=count.
	OpUnifyVoid

	// --- control ---

	// OpAllocate: push environment with N permanent variables.
	OpAllocate
	// OpDeallocate: pop current environment.
	OpDeallocate
	// OpCall: call procedure at label N; R1 = arity (for debugging).
	OpCall
	// OpExecute: tail-call procedure at label N.
	OpExecute
	// OpProceed: return to continuation.
	OpProceed

	// --- choice and indexing ---

	// OpTryMeElse: push choice point; alternative at label N. R1=arity.
	OpTryMeElse
	// OpRetryMeElse: update alternative to label N.
	OpRetryMeElse
	// OpTrustMe: pop choice point (last alternative).
	OpTrustMe
	// OpTry: push choice point with alternative = next instruction;
	// jump to label N. R1=arity.
	OpTry
	// OpRetry: update alternative to next instruction; jump to N.
	OpRetry
	// OpTrust: pop choice point; jump to N.
	OpTrust
	// OpSwitchOnTerm: dispatch on dereferenced A1's tag. Uses the
	// switch table at index N: {var, con, lis, str} entry labels.
	OpSwitchOnTerm
	// OpSwitchOnConstant: dispatch on A1's constant value via hash
	// table at index N; fail on miss.
	OpSwitchOnConstant
	// OpSwitchOnStructure: dispatch on A1's functor via hash table at
	// index N; fail on miss.
	OpSwitchOnStructure

	// --- cut ---

	// OpNeckCut: B := B0 (cut as first body goal).
	OpNeckCut
	// OpGetLevel: Yn := B0. R1=n.
	OpGetLevel
	// OpCutY: B := saved level in Yn. R1=n.
	OpCutY

	// --- arithmetic (register-based, compiled from is/2 and
	//     comparisons; no heap allocation for expressions) ---

	// OpArith: X[R1] := X[R2] op X[R3] (or unary op on X[R2]).
	// N = ArithOp.
	OpArith
	// OpCompare: compare X[R1] and X[R2] under N = CompareOp; fail if
	// false.
	OpCompare

	// --- builtins and termination ---

	// OpBuiltin: invoke builtin N with R1 = arity, args in A1..Ar.
	OpBuiltin
	// OpFail: force backtracking.
	OpFail
	// OpStop: successful end of query (captures answer environment).
	OpStop
	// OpJump: unconditional jump to label N.
	OpJump

	// --- AND-parallel extensions ---

	// OpCheckGround: if X[R1] is not ground, jump to label N (the
	// sequential version of the CGE).
	OpCheckGround
	// OpCheckIndep: if X[R1] and X[R2] share an unbound variable, jump
	// to label N.
	OpCheckIndep
	// OpPFrame: allocate a parcall frame for R1 goals; continuation at
	// label N (code executed after all parallel goals succeed).
	OpPFrame
	// OpPushGoal: push a goal frame for procedure at label N with
	// R1 = arity (args A1..Ar) and R2 = goal slot index (1-based).
	OpPushGoal
	// OpPCallLocal: execute the first parallel goal (slot R2) locally:
	// push an input-goal marker, set the par-return continuation and
	// jump to label N. R1 = arity.
	OpPCallLocal

	numOpcodes = int(OpPCallLocal) + 1
)

var opNames = [...]string{
	OpNop:          "nop",
	OpGetVariableX: "get_variable_x", OpGetVariableY: "get_variable_y",
	OpGetValueX: "get_value_x", OpGetValueY: "get_value_y",
	OpGetConstant: "get_constant", OpGetNil: "get_nil",
	OpGetStructure: "get_structure", OpGetList: "get_list",
	OpPutVariableX: "put_variable_x", OpPutVariableY: "put_variable_y",
	OpPutValueX: "put_value_x", OpPutValueY: "put_value_y",
	OpPutUnsafeValue: "put_unsafe_value",
	OpPutConstant:    "put_constant", OpPutNil: "put_nil",
	OpPutStructure: "put_structure", OpPutList: "put_list",
	OpUnifyVariableX: "unify_variable_x", OpUnifyVariableY: "unify_variable_y",
	OpUnifyValueX: "unify_value_x", OpUnifyValueY: "unify_value_y",
	OpUnifyLocalValueX: "unify_local_value_x", OpUnifyLocalValueY: "unify_local_value_y",
	OpUnifyConstant: "unify_constant", OpUnifyNil: "unify_nil", OpUnifyVoid: "unify_void",
	OpAllocate: "allocate", OpDeallocate: "deallocate",
	OpCall: "call", OpExecute: "execute", OpProceed: "proceed",
	OpTryMeElse: "try_me_else", OpRetryMeElse: "retry_me_else", OpTrustMe: "trust_me",
	OpTry: "try", OpRetry: "retry", OpTrust: "trust",
	OpSwitchOnTerm: "switch_on_term", OpSwitchOnConstant: "switch_on_constant",
	OpSwitchOnStructure: "switch_on_structure",
	OpNeckCut:           "neck_cut", OpGetLevel: "get_level", OpCutY: "cut",
	OpArith: "arith", OpCompare: "compare",
	OpBuiltin: "builtin", OpFail: "fail", OpStop: "stop", OpJump: "jump",
	OpCheckGround: "check_ground", OpCheckIndep: "check_indep",
	OpPFrame: "pframe", OpPushGoal: "push_goal", OpPCallLocal: "pcall_local",
}

// String returns the assembler mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ArithOp enumerates arithmetic operations for OpArith.
type ArithOp int32

const (
	// ArithAdd is addition.
	ArithAdd ArithOp = iota
	// ArithSub is subtraction.
	ArithSub
	// ArithMul is multiplication.
	ArithMul
	// ArithIDiv is integer division (//).
	ArithIDiv
	// ArithDiv is division (/, integer in this implementation).
	ArithDiv
	// ArithMod is modulo.
	ArithMod
	// ArithRem is remainder.
	ArithRem
	// ArithNeg is unary negation.
	ArithNeg
	// ArithDeref evaluates a register to an integer (deref + type
	// check), used to load variables in expressions.
	ArithDeref
)

var arithNames = [...]string{"add", "sub", "mul", "idiv", "div", "mod", "rem", "neg", "deref"}

// String returns the operation name.
func (a ArithOp) String() string {
	if int(a) < len(arithNames) {
		return arithNames[a]
	}
	return fmt.Sprintf("arith(%d)", int32(a))
}

// CompareOp enumerates arithmetic comparison operations for OpCompare.
type CompareOp int32

const (
	// CmpLT is <.
	CmpLT CompareOp = iota
	// CmpGT is >.
	CmpGT
	// CmpLE is =<.
	CmpLE
	// CmpGE is >=.
	CmpGE
	// CmpEQ is =:=.
	CmpEQ
	// CmpNE is =\=.
	CmpNE
)

var cmpNames = [...]string{"<", ">", "=<", ">=", "=:=", "=\\="}

// String returns the Prolog operator.
func (c CompareOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", int32(c))
}

// Builtin enumerates builtin predicates invoked via OpBuiltin.
type Builtin int32

const (
	// BiUnify is =/2 (general unification).
	BiUnify Builtin = iota
	// BiStructEq is ==/2 (structural equality without binding).
	BiStructEq
	// BiStructNe is \==/2.
	BiStructNe
	// BiVar is var/1.
	BiVar
	// BiNonvar is nonvar/1.
	BiNonvar
	// BiAtom is atom/1.
	BiAtom
	// BiInteger is integer/1 (also serves number/1: integers only).
	BiInteger
	// BiAtomic is atomic/1.
	BiAtomic
	// BiGround is ground/1 (as a body goal).
	BiGround
	// BiIndep is indep/2 (as a body goal).
	BiIndep
	// BiTrue is true/0.
	BiTrue
	// BiFail is fail/0.
	BiFail
	// BiWrite is write/1 (appends to the worker's output buffer).
	BiWrite
	// BiNl is nl/0.
	BiNl
	// BiIs is is/2 for expressions too complex to inline (evaluates a
	// heap term recursively).
	BiIs
	// BiFunctor is functor/3 (both decomposition and construction).
	BiFunctor
	// BiArg is arg/3.
	BiArg
	// BiUniv is =../2 ("univ": term to/from [Name|Args] list).
	BiUniv
	// BiCall is call/1 (meta-call; transfers control to the called
	// procedure with CP set past the builtin).
	BiCall
	// BiLength is length/2 (list length, both directions).
	BiLength

	numBuiltins = int(BiLength) + 1
)

var builtinNames = [...]string{
	"=", "==", "\\==", "var", "nonvar", "atom", "integer", "atomic",
	"ground", "indep", "true", "fail", "write", "nl", "is",
	"functor", "arg", "=..", "call", "length",
}

// String returns the predicate name.
func (b Builtin) String() string {
	if int(b) < len(builtinNames) {
		return builtinNames[b]
	}
	return fmt.Sprintf("builtin(%d)", int32(b))
}

// Instr is one instruction. Operand meaning depends on Op (see the
// opcode docs); unused operands are zero.
type Instr struct {
	Op         Opcode
	R1, R2, R3 int16
	N          int32
	W          mem.Word
}

// String renders the instruction for listings.
func (i Instr) String() string {
	switch i.Op {
	case OpCall, OpExecute, OpTry, OpRetry, OpTrust, OpTryMeElse,
		OpRetryMeElse, OpJump, OpPushGoal, OpPCallLocal:
		return fmt.Sprintf("%s %d/%d @%d", i.Op, i.R1, i.R2, i.N)
	case OpArith:
		return fmt.Sprintf("arith x%d := x%d %s x%d", i.R1, i.R2, ArithOp(i.N), i.R3)
	case OpCompare:
		return fmt.Sprintf("compare x%d %s x%d", i.R1, CompareOp(i.N), i.R2)
	case OpBuiltin:
		return fmt.Sprintf("builtin %s/%d", Builtin(i.N), i.R1)
	default:
		return fmt.Sprintf("%s r1=%d r2=%d n=%d", i.Op, i.R1, i.R2, i.N)
	}
}

// NumRegs is the size of the X/A register file per worker.
const NumRegs = 64

// Functor identifies a name/arity pair.
type Functor struct {
	Name  string
	Arity int
}

// String renders name/arity.
func (f Functor) String() string { return fmt.Sprintf("%s/%d", f.Name, f.Arity) }

// SymTab interns atoms and functors; constant words refer into it.
type SymTab struct {
	Atoms      []string
	atomIdx    map[string]int
	Functors   []Functor
	functorIdx map[Functor]int
}

// NewSymTab returns an empty symbol table with "[]" preinterned at 0.
func NewSymTab() *SymTab {
	st := &SymTab{atomIdx: map[string]int{}, functorIdx: map[Functor]int{}}
	st.Atom("[]") // index 0: nil
	return st
}

// NilAtom is the atom index of "[]".
const NilAtom = 0

// Atom interns name and returns its index.
func (st *SymTab) Atom(name string) int {
	if i, ok := st.atomIdx[name]; ok {
		return i
	}
	i := len(st.Atoms)
	st.Atoms = append(st.Atoms, name)
	st.atomIdx[name] = i
	return i
}

// AtomName returns the atom at index i.
func (st *SymTab) AtomName(i int) string {
	if i < 0 || i >= len(st.Atoms) {
		return fmt.Sprintf("atom(%d)", i)
	}
	return st.Atoms[i]
}

// Fun interns a functor and returns its index.
func (st *SymTab) Fun(name string, arity int) int {
	f := Functor{name, arity}
	if i, ok := st.functorIdx[f]; ok {
		return i
	}
	i := len(st.Functors)
	st.Functors = append(st.Functors, f)
	st.functorIdx[f] = i
	return i
}

// FunctorAt returns the functor at index i.
func (st *SymTab) FunctorAt(i int) Functor {
	if i < 0 || i >= len(st.Functors) {
		return Functor{fmt.Sprintf("functor(%d)", i), 0}
	}
	return st.Functors[i]
}

// SwitchTable is the dispatch table of a switch instruction.
type SwitchTable struct {
	// For OpSwitchOnTerm: entry labels per tag class (-1 = fail).
	Var, Con, Lis, Str int32
	// For OpSwitchOnConstant / OpSwitchOnStructure: value (constant
	// word or functor index) to label.
	Cases map[mem.Word]int32
	// Default label for constant/structure switches (clauses whose
	// first argument is a variable make this non-fail); -1 = fail.
	Default int32
}

// Code is a compiled program: a flat instruction array plus tables.
type Code struct {
	Instrs   []Instr
	Switches []SwitchTable
	Syms     *SymTab
	// Procs maps functor index to entry label.
	Procs map[int]int32
	// QueryEntry is the label of the compiled query ($query/0).
	QueryEntry int32
	// QueryVars are the query's variable names in environment-slot
	// order (Y0..Yn-1), used to extract answers.
	QueryVars []string
	// Parallel reports whether any CGE instructions were emitted.
	Parallel bool
}

// Listing renders the full code array, for debugging and golden tests.
func (c *Code) Listing() string {
	out := ""
	for i, ins := range c.Instrs {
		out += fmt.Sprintf("%5d  %s\n", i, ins)
	}
	return out
}

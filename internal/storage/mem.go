package storage

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"strings"
	"sync"
	"time"
)

// Mem is an in-memory backend for tests and benchmarks. It implements
// the full Backend contract — atomic Put (the object appears only when
// the write callback succeeds), seekable writers, sorted List — so
// store-level tests exercise exactly the code paths production runs,
// minus the disk.
type Mem struct {
	mu      sync.RWMutex
	objects map[string]memObject
}

type memObject struct {
	data    []byte
	modTime time.Time
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{objects: make(map[string]memObject)}
}

// Name implements Backend.
func (m *Mem) Name() string { return "mem" }

// memWriter is the seekable write target handed to Put callbacks: the
// same grow-on-write + seek semantics as an *os.File, so the trace
// codec's header back-patch works against Mem too.
type memWriter struct {
	buf []byte
	off int64
}

func (w *memWriter) Write(p []byte) (int, error) {
	end := w.off + int64(len(p))
	if grow := end - int64(len(w.buf)); grow > 0 {
		w.buf = append(w.buf, make([]byte, grow)...)
	}
	copy(w.buf[w.off:end], p)
	w.off = end
	return len(p), nil
}

func (w *memWriter) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = w.off + offset
	case io.SeekEnd:
		abs = int64(len(w.buf)) + offset
	default:
		return 0, fmt.Errorf("mem: invalid whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("mem: negative seek offset")
	}
	w.off = abs
	return abs, nil
}

// Put implements Backend: the callback writes into a detached buffer;
// only a successful return installs the object, so failed or panicking
// writes leave the namespace untouched (the in-memory equivalent of
// temp+rename).
func (m *Mem) Put(name string, write func(w io.Writer) error) error {
	if !ValidName(name) {
		return &Error{Op: "put", Backend: m.Name(), Name: name, Err: fmt.Errorf("invalid object name")}
	}
	w := &memWriter{}
	if err := write(w); err != nil {
		return err
	}
	m.mu.Lock()
	m.objects[name] = memObject{data: w.buf, modTime: time.Now()}
	m.mu.Unlock()
	return nil
}

// notExist builds the backend's miss error (errors.Is fs.ErrNotExist).
func (m *Mem) notExist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
}

// Get implements Backend.
func (m *Mem) Get(name string) (io.ReadCloser, error) {
	m.mu.RLock()
	obj, ok := m.objects[name]
	m.mu.RUnlock()
	if !ok {
		return nil, m.notExist("open", name)
	}
	return io.NopCloser(bytes.NewReader(obj.data)), nil
}

// Stat implements Backend.
func (m *Mem) Stat(name string) (Info, error) {
	m.mu.RLock()
	obj, ok := m.objects[name]
	m.mu.RUnlock()
	if !ok {
		return Info{}, m.notExist("stat", name)
	}
	return Info{Size: int64(len(obj.data)), ModTime: obj.modTime}, nil
}

// List implements Backend, with the same one-level namespace semantics
// as Dir: a prefix without a slash lists root objects only.
func (m *Mem) List(prefix string) ([]string, error) {
	depth := strings.Count(prefix, "/")
	m.mu.RLock()
	var names []string
	for name := range m.objects {
		if strings.HasPrefix(name, prefix) && strings.Count(name, "/") == depth {
			names = append(names, name)
		}
	}
	m.mu.RUnlock()
	return sortedNames(names), nil
}

// Delete implements Backend.
func (m *Mem) Delete(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objects[name]; !ok {
		return m.notExist("remove", name)
	}
	delete(m.objects, name)
	return nil
}

// Rename implements Backend.
func (m *Mem) Rename(old, new string) error {
	if !ValidName(new) {
		return &Error{Op: "rename", Backend: m.Name(), Name: new, Err: fmt.Errorf("invalid object name")}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	obj, ok := m.objects[old]
	if !ok {
		return m.notExist("rename", old)
	}
	delete(m.objects, old)
	m.objects[new] = obj
	return nil
}

// Sweep implements Backend: Mem writes have no temp stage, so only
// aged quarantined objects are swept.
func (m *Mem) Sweep(olderThan time.Duration) int {
	cutoff := time.Now().Add(-olderThan)
	m.mu.Lock()
	defer m.mu.Unlock()
	removed := 0
	for name, obj := range m.objects {
		if strings.HasPrefix(name, QuarantinePrefix) && obj.modTime.Before(cutoff) {
			delete(m.objects, name)
			removed++
		}
	}
	return removed
}

// Len returns the number of stored objects (tests).
func (m *Mem) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Dir is the production backend: one local directory, with objects in
// sub-namespaces ("quarantine/...") stored in subdirectories. Writes
// go through a temp file in the object's directory followed by an
// atomic rename, so concurrent writers — including separate processes
// sharing the directory — race benignly: one complete file wins, and
// readers only ever observe complete files.
type Dir struct {
	root    string
	tempAge time.Duration
}

// NewDir creates (if needed) and opens a directory backend rooted at
// root, immediately sweeping stale *.tmp droppings and aged
// quarantined objects older than tempAge (the atomic temp+rename
// scheme cleans up after errors, but not after SIGKILL or a power cut
// mid-write). tempAge <= 0 disables the opening sweep.
func NewDir(root string, tempAge time.Duration) (*Dir, error) {
	if root == "" {
		return nil, fmt.Errorf("storage: empty directory")
	}
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	d := &Dir{root: root, tempAge: tempAge}
	if tempAge > 0 {
		d.Sweep(tempAge)
	}
	return d, nil
}

// Root returns the backend's root directory.
func (d *Dir) Root() string { return d.root }

// Name implements Backend.
func (d *Dir) Name() string { return "dir:" + d.root }

// path maps an object name to its file path. Names were validated by
// the caller-facing methods before reaching here.
func (d *Dir) path(name string) string {
	return filepath.Join(d.root, filepath.FromSlash(name))
}

// checkName rejects names the flat-directory layout cannot represent
// safely (escapes, absolute paths).
func (d *Dir) checkName(op, name string) error {
	if !ValidName(name) {
		return &Error{Op: op, Backend: d.Name(), Name: name, Err: fmt.Errorf("invalid object name")}
	}
	return nil
}

// Put implements Backend: temp file in the object's directory, atomic
// rename into place. The writer handed to write is an *os.File, so
// callers that type-assert io.WriteSeeker (the trace codec's header
// back-patch) get a seekable writer. On any error or panic the temp
// file is removed and the object is untouched.
func (d *Dir) Put(name string, write func(w io.Writer) error) (retErr error) {
	if err := d.checkName("put", name); err != nil {
		return err
	}
	path := d.path(name)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return wrapOp(d.Name(), "put", name, err)
	}
	tmp, err := os.CreateTemp(dir, "put-*"+filepath.Ext(path)+".tmp")
	if err != nil {
		return wrapOp(d.Name(), "put", name, err)
	}
	committed := false
	defer func() {
		// Clean the temp file up on error AND on panic (a machine
		// error escaping write must not strand a dropping).
		if !committed {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err // the callback's error, not a backend failure
	}
	if err := tmp.Close(); err != nil {
		return wrapOp(d.Name(), "put", name, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return wrapOp(d.Name(), "put", name, err)
	}
	committed = true
	return nil
}

// Get implements Backend. A missing object returns the raw *fs.PathError
// from os.Open, so legacy callers using os.IsNotExist still match.
func (d *Dir) Get(name string) (io.ReadCloser, error) {
	if err := d.checkName("get", name); err != nil {
		return nil, err
	}
	f, err := os.Open(d.path(name))
	if err != nil {
		return nil, err // raw: os.IsNotExist must keep working on misses
	}
	return f, nil
}

// Stat implements Backend (raw os error on a miss, like Get).
func (d *Dir) Stat(name string) (Info, error) {
	if err := d.checkName("stat", name); err != nil {
		return Info{}, err
	}
	fi, err := os.Stat(d.path(name))
	if err != nil {
		return Info{}, err
	}
	if !fi.Mode().IsRegular() {
		return Info{}, &Error{Op: "stat", Backend: d.Name(), Name: name, Err: fmt.Errorf("not a regular file")}
	}
	return Info{Size: fi.Size(), ModTime: fi.ModTime()}, nil
}

// List implements Backend: one directory level (the root for prefix
// without a slash, the named subdirectory for "sub/..."), temp files
// excluded.
func (d *Dir) List(prefix string) ([]string, error) {
	dir, rest := d.root, prefix
	if i := strings.LastIndex(prefix, "/"); i >= 0 {
		sub := prefix[:i]
		if !ValidName(sub) {
			return nil, &Error{Op: "list", Backend: d.Name(), Name: prefix, Err: fmt.Errorf("invalid prefix")}
		}
		dir, rest = filepath.Join(d.root, filepath.FromSlash(sub)), prefix[i+1:]
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil // an absent sub-namespace is empty, not an error
		}
		return nil, wrapOp(d.Name(), "list", prefix, err)
	}
	var names []string
	base := prefix[:len(prefix)-len(rest)]
	for _, e := range entries {
		if !e.Type().IsRegular() || !strings.HasPrefix(e.Name(), rest) || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		names = append(names, base+e.Name())
	}
	return sortedNames(names), nil
}

// Delete implements Backend (raw os error on a miss).
func (d *Dir) Delete(name string) error {
	if err := d.checkName("delete", name); err != nil {
		return err
	}
	return os.Remove(d.path(name))
}

// Rename implements Backend, creating the destination's directory
// (quarantining creates "quarantine/" on first use).
func (d *Dir) Rename(old, new string) error {
	if err := d.checkName("rename", old); err != nil {
		return err
	}
	if err := d.checkName("rename", new); err != nil {
		return err
	}
	to := d.path(new)
	if err := os.MkdirAll(filepath.Dir(to), 0o777); err != nil {
		return wrapOp(d.Name(), "rename", new, err)
	}
	if err := os.Rename(d.path(old), to); err != nil {
		return wrapOp(d.Name(), "rename", old, err)
	}
	return nil
}

// Sweep implements Backend: removes *.tmp droppings in the root and in
// quarantine/, and ages out quarantined objects older than olderThan
// (a quarantined file has already been replaced by a recompute — it is
// kept a while for inspection, not forever).
func (d *Dir) Sweep(olderThan time.Duration) int {
	cutoff := time.Now().Add(-olderThan)
	removed := sweepDir(d.root, cutoff, false)
	removed += sweepDir(filepath.Join(d.root, "quarantine"), cutoff, true)
	return removed
}

// sweepDir removes stale temp files (and, when all is set, every
// regular file) older than cutoff in one directory. Failures are
// swallowed: sweeping is hygiene, not correctness.
func sweepDir(dir string, cutoff time.Time, all bool) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		if !e.Type().IsRegular() || (!all && !strings.HasSuffix(e.Name(), ".tmp")) {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(dir, e.Name())) == nil {
			removed++
		}
	}
	return removed
}

package storage

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Rendezvous orders nodes by highest-random-weight (HRW) hash for key:
// every node that evaluates it independently computes the same order,
// so the first element is the key's deterministic owner with no
// coordination, and removing a node only reassigns that node's keys.
// The input slice is not modified; ties (duplicate nodes) break by
// node string so the order is total.
func Rendezvous(key string, nodes []string) []string {
	type scored struct {
		node  string
		score uint64
	}
	scores := make([]scored, len(nodes))
	for i, n := range nodes {
		h := sha256.Sum256([]byte(n + "\x00" + key))
		scores[i] = scored{node: n, score: binary.BigEndian.Uint64(h[:8])}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score > scores[j].score
		}
		return scores[i].node < scores[j].node
	})
	out := make([]string, len(nodes))
	for i, s := range scores {
		out[i] = s.node
	}
	return out
}

// Peer is a Backend client for the blob protocol other rapwamd nodes
// serve under /v1/blobs/ (see BlobHandler). Each node URL is the base
// of one remote namespace, e.g. "http://host:8080/v1/blobs/results".
//
// Reads (Get/Stat) try nodes in Rendezvous order for the object name —
// owner first, so the common warm fetch is one round trip. A name no
// node has is a miss (fs.ErrNotExist); any transport failure without a
// hit is a TransientError, never corruption, so a flaky network cannot
// get healthy objects quarantined. Put goes to the rendezvous owner
// only; Delete and Rename fan out to every node; List unions all
// nodes; Sweep asks each node to sweep itself.
//
// Peer holds no local state — compose it behind a local backend with
// NewTiered for the read-through/write-through cluster tier.
type Peer struct {
	client *http.Client
	nodes  []string
}

// NewPeer returns a Peer over the given node base URLs (trailing
// slashes are trimmed). A nil client gets a 10-second timeout default.
// An empty node list is legal and behaves as an always-missing,
// unwritable backend, so "no peers configured" needs no special-casing
// in callers.
func NewPeer(client *http.Client, nodes []string) *Peer {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	trimmed := make([]string, len(nodes))
	for i, n := range nodes {
		trimmed[i] = strings.TrimRight(n, "/")
	}
	return &Peer{client: client, nodes: trimmed}
}

// Name implements Backend.
func (p *Peer) Name() string { return "peer(" + strings.Join(p.nodes, ",") + ")" }

// Nodes returns the configured node base URLs.
func (p *Peer) Nodes() []string { return append([]string(nil), p.nodes...) }

// objectURL builds the blob URL for name on node, escaping each path
// segment (names may contain slashes: "quarantine/...").
func objectURL(node, name string) string {
	if name == "" {
		return node + "/"
	}
	segs := strings.Split(name, "/")
	for i, s := range segs {
		segs[i] = url.PathEscape(s)
	}
	return node + "/" + strings.Join(segs, "/")
}

// notExist builds the peer miss error (errors.Is fs.ErrNotExist).
func (p *Peer) notExist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
}

// Get implements Backend: try each node in rendezvous order; first 200
// wins. All nodes answering 404 is a miss; anything else without a hit
// is transient.
func (p *Peer) Get(name string) (io.ReadCloser, error) {
	var lastErr error
	for _, node := range Rendezvous(name, p.nodes) {
		resp, err := p.client.Get(objectURL(node, name))
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return &peerBody{rc: resp.Body, name: name}, nil
		case http.StatusNotFound:
			resp.Body.Close()
		default:
			resp.Body.Close()
			lastErr = fmt.Errorf("%s: status %s", node, resp.Status)
		}
	}
	if lastErr != nil {
		return nil, Transient(fmt.Errorf("peer get %q: %w", name, lastErr))
	}
	// Every node answered 404 (or none are configured): a true miss.
	return nil, p.notExist("get", name)
}

// peerBody wraps a blob response body, classifying every mid-stream
// failure (connection reset, truncation against Content-Length) as
// transient: a broken transfer is flaky I/O, not evidence the remote
// object is corrupt.
type peerBody struct {
	rc   io.ReadCloser
	name string
}

func (r *peerBody) Read(p []byte) (int, error) {
	n, err := r.rc.Read(p)
	if err != nil && err != io.EOF {
		err = Transient(fmt.Errorf("peer read %q: %w", r.name, err))
	}
	return n, err
}

func (r *peerBody) Close() error { return r.rc.Close() }

// Stat implements Backend via HEAD, same node order and miss/transient
// classification as Get.
func (p *Peer) Stat(name string) (Info, error) {
	var lastErr error
	for _, node := range Rendezvous(name, p.nodes) {
		req, err := http.NewRequest(http.MethodHead, objectURL(node, name), nil)
		if err != nil {
			return Info{}, wrapOp(p.Name(), "stat", name, err)
		}
		resp, err := p.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var info Info
			info.Size = resp.ContentLength
			if t, err := http.ParseTime(resp.Header.Get("Last-Modified")); err == nil {
				info.ModTime = t
			}
			return info, nil
		case http.StatusNotFound:
			// keep trying other nodes
		default:
			lastErr = fmt.Errorf("%s: status %s", node, resp.Status)
		}
	}
	if lastErr != nil {
		return Info{}, Transient(fmt.Errorf("peer stat %q: %w", name, lastErr))
	}
	return Info{}, p.notExist("stat", name)
}

// Put implements Backend: the callback writes into a detached seekable
// buffer (nothing leaves this process unless it succeeds — the remote
// can never observe a failed or panicking write), then the complete
// object is PUT to the rendezvous owner in one request. The owner's
// own backend makes the commit atomic.
func (p *Peer) Put(name string, write func(w io.Writer) error) error {
	if !ValidName(name) {
		return &Error{Op: "put", Backend: p.Name(), Name: name, Err: fmt.Errorf("invalid object name")}
	}
	if len(p.nodes) == 0 {
		return Transient(fmt.Errorf("peer put %q: no peer nodes configured", name))
	}
	w := &memWriter{}
	if err := write(w); err != nil {
		return err
	}
	owner := Rendezvous(name, p.nodes)[0]
	req, err := http.NewRequest(http.MethodPut, objectURL(owner, name), bytes.NewReader(w.buf))
	if err != nil {
		return wrapOp(p.Name(), "put", name, err)
	}
	req.ContentLength = int64(len(w.buf))
	resp, err := p.client.Do(req)
	if err != nil {
		return Transient(fmt.Errorf("peer put %q: %w", name, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return Transient(fmt.Errorf("peer put %q: %s: status %s", name, owner, resp.Status))
	}
	return nil
}

// Delete implements Backend, fanning out to every node (an object may
// have been written through on several). Any successful delete makes
// the whole delete succeed; all nodes missing it is fs.ErrNotExist.
func (p *Peer) Delete(name string) error {
	var lastErr error
	found := false
	for _, node := range p.nodes {
		req, err := http.NewRequest(http.MethodDelete, objectURL(node, name), nil)
		if err != nil {
			return wrapOp(p.Name(), "delete", name, err)
		}
		resp, err := p.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		switch {
		case resp.StatusCode/100 == 2:
			found = true
		case resp.StatusCode == http.StatusNotFound:
			// fine
		default:
			lastErr = fmt.Errorf("%s: status %s", node, resp.Status)
		}
	}
	if found {
		return nil
	}
	if lastErr != nil {
		return Transient(fmt.Errorf("peer delete %q: %w", name, lastErr))
	}
	return p.notExist("delete", name)
}

// Rename implements Backend, fanning out to every node so quarantining
// a corrupt object removes it from serving everywhere it exists.
func (p *Peer) Rename(old, new string) error {
	if !ValidName(new) {
		return &Error{Op: "rename", Backend: p.Name(), Name: new, Err: fmt.Errorf("invalid object name")}
	}
	var lastErr error
	found := false
	for _, node := range p.nodes {
		u := objectURL(node, old) + "?op=rename&to=" + url.QueryEscape(new)
		resp, err := p.client.Post(u, "", nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		switch {
		case resp.StatusCode/100 == 2:
			found = true
		case resp.StatusCode == http.StatusNotFound:
			// fine
		default:
			lastErr = fmt.Errorf("%s: status %s", node, resp.Status)
		}
	}
	if found {
		return nil
	}
	if lastErr != nil {
		return Transient(fmt.Errorf("peer rename %q: %w", old, lastErr))
	}
	return p.notExist("rename", old)
}

// List implements Backend, unioning every node's listing (sorted,
// deduplicated). A node that cannot answer makes the whole listing
// transient — a silently partial listing would let a scrubber conclude
// objects are gone.
func (p *Peer) List(prefix string) ([]string, error) {
	seen := make(map[string]bool)
	for _, node := range p.nodes {
		resp, err := p.client.Get(node + "/?prefix=" + url.QueryEscape(prefix))
		if err != nil {
			return nil, Transient(fmt.Errorf("peer list %q: %w", prefix, err))
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, Transient(fmt.Errorf("peer list %q: %s: status %s", prefix, node, resp.Status))
		}
		var body struct {
			Objects []struct {
				Name string `json:"name"`
			} `json:"objects"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return nil, Transient(fmt.Errorf("peer list %q: %s: %w", prefix, node, err))
		}
		for _, o := range body.Objects {
			seen[o.Name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	return sortedNames(names), nil
}

// Sweep implements Backend: ask each node to sweep itself, summing
// what they report. Best-effort, like every Sweep.
func (p *Peer) Sweep(olderThan time.Duration) int {
	total := 0
	for _, node := range p.nodes {
		u := node + "/?op=sweep&older-than=" + url.QueryEscape(olderThan.String())
		resp, err := p.client.Post(u, "", nil)
		if err != nil {
			continue
		}
		var body struct {
			Removed int `json:"removed"`
		}
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&body) == nil {
			total += body.Removed
		}
		resp.Body.Close()
	}
	return total
}

var _ Backend = (*Peer)(nil)

// parseOlderThan parses the sweep cutoff accepted by the blob API:
// a Go duration ("24h") or a bare integer of seconds.
func parseOlderThan(s string) (time.Duration, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Duration(n) * time.Second, nil
	}
	return 0, fmt.Errorf("invalid older-than %q", s)
}

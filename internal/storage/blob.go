package storage

import (
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// blobInfo is one entry in a blob listing.
type blobInfo struct {
	Name    string    `json:"name"`
	Size    int64     `json:"size"`
	ModTime time.Time `json:"mod_time"`
}

// BlobHandler serves a Backend over the content-addressed blob
// protocol Peer speaks. Mount it under a namespace root with
// http.StripPrefix, e.g.:
//
//	mux.Handle("/v1/blobs/results/",
//	    http.StripPrefix("/v1/blobs/results/", storage.BlobHandler(local)))
//
// The protocol, relative to the mount point:
//
//	GET    {name}                     object bytes (404 on miss)
//	HEAD   {name}                     size + Last-Modified only
//	PUT    {name}                     atomic create/replace from the body
//	DELETE {name}                     remove (404 on miss)
//	POST   {name}?op=rename&to={new}  atomic rename (quarantining)
//	GET    ?prefix={p}                JSON listing {"objects":[...]}
//	POST   ?op=sweep&older-than={d}   sweep, returns {"removed":n}
//
// Serve the node's LOCAL backend here, never a Tiered or Peer wrapper:
// a node answering blob requests out of its own peer fetcher would
// bounce misses around the cluster. Misses map to 404, invalid names
// to 400, and every backend failure to 503 — the remote taxonomy Peer
// folds back into TransientError on the client side.
func BlobHandler(b Backend) http.Handler {
	return &blobHandler{b: b}
}

type blobHandler struct {
	b Backend
}

func (h *blobHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/")
	if name == "" {
		h.serveRoot(w, r)
		return
	}
	if !ValidName(name) {
		http.Error(w, "invalid object name", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		h.serveObject(w, r, name)
	case http.MethodPut:
		h.putObject(w, r, name)
	case http.MethodDelete:
		h.fail(w, h.b.Delete(name))
	case http.MethodPost:
		if r.URL.Query().Get("op") != "rename" {
			http.Error(w, "unknown op", http.StatusBadRequest)
			return
		}
		to := r.URL.Query().Get("to")
		if !ValidName(to) {
			http.Error(w, "invalid rename target", http.StatusBadRequest)
			return
		}
		h.fail(w, h.b.Rename(name, to))
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serveRoot handles the namespace root: listing and sweep.
func (h *blobHandler) serveRoot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		names, err := h.b.List(r.URL.Query().Get("prefix"))
		if err != nil {
			http.Error(w, "list failed: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		objects := make([]blobInfo, 0, len(names))
		for _, n := range names {
			info, err := h.b.Stat(n)
			if err != nil {
				continue // deleted between List and Stat
			}
			objects = append(objects, blobInfo{Name: n, Size: info.Size, ModTime: info.ModTime})
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"objects": objects})
	case http.MethodPost:
		if r.URL.Query().Get("op") != "sweep" {
			http.Error(w, "unknown op", http.StatusBadRequest)
			return
		}
		olderThan, err := parseOlderThan(r.URL.Query().Get("older-than"))
		if err != nil || olderThan < 0 {
			http.Error(w, "invalid older-than", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int{"removed": h.b.Sweep(olderThan)})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serveObject streams one object. Content-Length comes from Stat, so a
// client can detect truncated transfers; the small stat→get race on a
// concurrently-replaced object surfaces client-side as a length
// mismatch, which Peer classifies transient — the retry then sees a
// consistent object.
func (h *blobHandler) serveObject(w http.ResponseWriter, r *http.Request, name string) {
	info, err := h.b.Stat(name)
	if err != nil {
		h.fail(w, err)
		return
	}
	var rc io.ReadCloser
	if r.Method == http.MethodGet {
		if rc, err = h.b.Get(name); err != nil {
			h.fail(w, err)
			return
		}
		defer rc.Close()
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(info.Size, 10))
	w.Header().Set("Last-Modified", info.ModTime.UTC().Format(http.TimeFormat))
	if rc != nil {
		io.Copy(w, rc) // too late for a status on error; the length mismatch tells the client
	}
}

// putObject atomically installs the request body as name. The
// backend's own Put makes the commit atomic, so a client that dies
// mid-upload leaves nothing behind.
func (h *blobHandler) putObject(w http.ResponseWriter, r *http.Request, name string) {
	err := h.b.Put(name, func(dst io.Writer) error {
		_, err := io.Copy(dst, r.Body)
		return err
	})
	if err != nil {
		http.Error(w, "put failed: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// fail maps a backend error to a blob-protocol status: nil → 204,
// miss → 404, anything else → 503.
func (h *blobHandler) fail(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, fs.ErrNotExist):
		http.Error(w, "not found", http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

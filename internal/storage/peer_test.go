package storage_test

import (
	"errors"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestRendezvousDeterministicAndOrderIndependent(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	shuffled := []string{"http://c:1", "http://a:1", "http://b:1"}
	for _, key := range []string{"x.bin", "y.bin", "fig2-abc123.json", "quarantine/z.bin"} {
		a := storage.Rendezvous(key, nodes)
		b := storage.Rendezvous(key, shuffled)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Fatalf("rendezvous order for %q depends on input order: %v vs %v", key, a, b)
		}
		if strings.Join(a, ",") != strings.Join(storage.Rendezvous(key, nodes), ",") {
			t.Fatalf("rendezvous for %q is not deterministic", key)
		}
	}
}

func TestRendezvousSpreadsOwnership(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	owned := map[string]int{}
	for i := 0; i < 300; i++ {
		key := strings.Repeat("k", 1+i%7) + string(rune('a'+i%26)) + ".bin"
		owned[storage.Rendezvous(key, nodes)[0]]++
	}
	for _, n := range nodes {
		if owned[n] == 0 {
			t.Fatalf("node %s owns no keys out of 300: %v", n, owned)
		}
	}
}

func TestRendezvousRemovalOnlyMovesOwnedKeys(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	survivors := []string{"http://a:1", "http://c:1"}
	for i := 0; i < 200; i++ {
		key := string(rune('a'+i%26)) + strings.Repeat("x", i%11) + ".bin"
		before := storage.Rendezvous(key, nodes)[0]
		after := storage.Rendezvous(key, survivors)[0]
		if before != "http://b:1" && after != before {
			t.Fatalf("removing b moved key %q from %s to %s", key, before, after)
		}
	}
}

func TestPeerAllNodesDownIsTransient(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	p := storage.NewPeer(peerClient(), []string{dead.URL})
	if _, err := p.Get("a.bin"); !storage.IsTransient(err) {
		t.Fatalf("get with all peers down must be transient, got %v", err)
	}
	if errors.Is(func() error { _, err := p.Get("a.bin"); return err }(), fs.ErrNotExist) {
		t.Fatal("an unreachable fleet must not read as a miss")
	}
	err := p.Put("a.bin", func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	})
	if !storage.IsTransient(err) {
		t.Fatalf("put with all peers down must be transient, got %v", err)
	}
	if _, err := p.List(""); !storage.IsTransient(err) {
		t.Fatalf("list with a node down must be transient, got %v", err)
	}
}

func TestPeerNoNodesIsAlwaysMiss(t *testing.T) {
	p := storage.NewPeer(peerClient(), nil)
	if _, err := p.Get("a.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("get with no nodes: %v", err)
	}
	if _, err := p.Stat("a.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stat with no nodes: %v", err)
	}
	names, err := p.List("")
	if err != nil || len(names) != 0 {
		t.Fatalf("list with no nodes: %v, %v", names, err)
	}
}

func TestPeerPutFailedCallbackSendsNothing(t *testing.T) {
	requests := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		http.NotFound(w, r)
	}))
	t.Cleanup(srv.Close)
	p := storage.NewPeer(peerClient(), []string{srv.URL})
	boom := errors.New("generator exploded")
	if err := p.Put("a.bin", func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("put must return the callback error, got %v", err)
	}
	if requests != 0 {
		t.Fatalf("failed put callback reached the wire: %d requests", requests)
	}
}

func TestPeerReadsPreferOwner(t *testing.T) {
	// Two nodes; only the rendezvous owner holds the object. The first
	// request must go to the owner (one request total, no fan-out).
	var hits [2]int
	mems := [2]*storage.Mem{storage.NewMem(), storage.NewMem()}
	var urls []string
	for i := 0; i < 2; i++ {
		i := i
		h := http.StripPrefix("/", storage.BlobHandler(mems[i]))
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i]++
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	const name = "owned.bin"
	owner := storage.Rendezvous(name, urls)[0]
	ownerIdx := 0
	if owner == urls[1] {
		ownerIdx = 1
	}
	if err := mems[ownerIdx].Put(name, func(w io.Writer) error {
		_, err := io.WriteString(w, "payload")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	p := storage.NewPeer(peerClient(), urls)
	rc, err := p.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(rc)
	rc.Close()
	if hits[ownerIdx] != 1 || hits[1-ownerIdx] != 0 {
		t.Fatalf("warm owner-first get took %d owner / %d non-owner requests, want 1/0", hits[ownerIdx], hits[1-ownerIdx])
	}
}

func TestBlobHandlerRejectsEscapes(t *testing.T) {
	srv := httptest.NewServer(http.StripPrefix("/", storage.BlobHandler(storage.NewMem())))
	t.Cleanup(srv.Close)
	for _, path := range []string{"/..%2Fescape.bin", "/a%2F..%2F..%2Fb"} {
		req, err := http.NewRequest(http.MethodPut, srv.URL+path, strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("PUT %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

package storage_test

import (
	"errors"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// tieredOverMem wires a Tiered backend whose remote tier is a real
// blob server over remoteMem, returning both ends.
func tieredOverMem(t *testing.T) (*storage.Tiered, *storage.Mem) {
	t.Helper()
	remoteMem := storage.NewMem()
	srv := httptest.NewServer(storage.BlobHandler(remoteMem))
	t.Cleanup(srv.Close)
	peer := storage.NewPeer(peerClient(), []string{srv.URL})
	return storage.NewTiered(storage.NewMem(), peer), remoteMem
}

func TestTieredPeerFetchWritesThrough(t *testing.T) {
	tiered, remoteMem := tieredOverMem(t)
	storagetest.Put(t, remoteMem, "hot.bin", "from the peer")

	if got := storagetest.Get(t, tiered, "hot.bin"); got != "from the peer" {
		t.Fatalf("peer fetch: %q", got)
	}
	s := tiered.Stats()
	if s.PeerHits != 1 || s.WriteThroughs != 1 || s.LocalHits != 0 {
		t.Fatalf("after peer fetch: %+v", s)
	}
	// An object nowhere in the cluster is a plain miss.
	if _, err := tiered.Get("missing-everywhere.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("cluster-wide miss: %v", err)
	}
	if s := tiered.Stats(); s.PeerMisses != 1 {
		t.Fatalf("cluster-wide miss not counted: %+v", s)
	}
	// Second read is a local hit — no peer round trip.
	if got := storagetest.Get(t, tiered, "hot.bin"); got != "from the peer" {
		t.Fatalf("local re-read: %q", got)
	}
	s = tiered.Stats()
	if s.LocalHits != 1 || s.PeerHits != 1 {
		t.Fatalf("after re-read: %+v", s)
	}
}

func TestTieredPeerReaderReportsBlobSource(t *testing.T) {
	tiered, remoteMem := tieredOverMem(t)
	storagetest.Put(t, remoteMem, "hot.bin", "x")
	rc, err := tiered.Get("hot.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	src, ok := rc.(interface{ BlobSource() string })
	if !ok || src.BlobSource() != "peer" {
		t.Fatalf("peer-served reader must report BlobSource peer, got %T", rc)
	}
	// A local hit must NOT claim to be peer-served.
	rc2, err := tiered.Get("hot.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	if _, ok := rc2.(interface{ BlobSource() string }); ok {
		t.Fatal("local hit must not carry a peer BlobSource")
	}
}

func TestTieredRemoteFailureReadsAsLocalMiss(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	peer := storage.NewPeer(peerClient(), []string{dead.URL})
	tiered := storage.NewTiered(storage.NewMem(), peer)
	_, err := tiered.Get("gone.bin")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("dead peer tier must surface the local miss, got %v", err)
	}
	if s := tiered.Stats(); s.PeerErrors != 1 {
		t.Fatalf("peer failure not counted: %+v", s)
	}
}

func TestTieredMutationsStayLocal(t *testing.T) {
	tiered, remoteMem := tieredOverMem(t)
	storagetest.Put(t, tiered, "local.bin", "mine")
	if remoteMem.Len() != 0 {
		t.Fatal("tiered put leaked to the remote tier")
	}
	storagetest.Put(t, remoteMem, "theirs.bin", "remote only")
	names, err := tiered.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "theirs.bin" {
			t.Fatal("tiered list must stay node-local")
		}
	}
	if err := tiered.Delete("local.bin"); err != nil {
		t.Fatal(err)
	}
	// Deleting a remote-only object is a local miss: mutations never
	// reach across the wire.
	if err := tiered.Delete("theirs.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("delete of remote-only object: %v", err)
	}
}

func TestTieredTornPeerTransferWritesNothingThrough(t *testing.T) {
	// A remote that advertises more bytes than it sends: the client
	// sees a truncated transfer, which must read as a local miss and
	// must not write a partial object through.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "1000")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "only this much")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Hijack and slam the connection so the client cannot read the
		// remaining bytes.
		if hj, ok := w.(http.Hijacker); ok {
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
		}
	}))
	t.Cleanup(srv.Close)
	local := storage.NewMem()
	tiered := storage.NewTiered(local, storage.NewPeer(peerClient(), []string{srv.URL}))
	_, err := tiered.Get("torn.bin")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("torn peer transfer must read as the local miss, got %v", err)
	}
	if local.Len() != 0 {
		t.Fatal("torn peer transfer was written through locally")
	}
	if s := tiered.Stats(); s.PeerErrors != 1 || s.WriteThroughs != 0 {
		t.Fatalf("torn transfer accounting: %+v", s)
	}
}

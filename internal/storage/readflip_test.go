package storage_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

func TestFaultReadFlipDamagesExactlyOneBit(t *testing.T) {
	mem := storage.NewMem()
	payload := bytes.Repeat([]byte("deterministic payload "), 100)
	if err := mem.Put("a.bin", func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	f := storage.NewFault(mem, storage.Faults{Seed: 42, ReadFlip: 1})
	rc, err := f.Get("a.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatalf("read flip must not surface as an error: %v", err)
	}
	if len(got) != len(payload) {
		t.Fatalf("read flip changed the length: %d vs %d", len(got), len(payload))
	}
	diffBits := 0
	for i := range got {
		for x := got[i] ^ payload[i]; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("read flip damaged %d bits, want exactly 1", diffBits)
	}
	if n := f.InjectedReadFlips(); n != 1 {
		t.Fatalf("InjectedReadFlips = %d, want 1", n)
	}
	// The object at rest is untouched — the damage was in flight.
	if storagetest.Get(t, mem, "a.bin") != string(payload) {
		t.Fatal("read flip damaged the stored object")
	}
}

func TestFaultReadFlipDeterministicPerSeed(t *testing.T) {
	read := func(seed int64) []byte {
		mem := storage.NewMem()
		payload := bytes.Repeat([]byte("x"), 4096)
		mem.Put("a.bin", func(w io.Writer) error {
			_, err := w.Write(payload)
			return err
		})
		f := storage.NewFault(mem, storage.Faults{Seed: seed, ReadFlip: 1})
		rc, err := f.Get("a.bin")
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		data, err := io.ReadAll(rc)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(read(7), read(7)) {
		t.Fatal("same seed must flip the same bit")
	}
}

func TestParseFaultsReadFlip(t *testing.T) {
	f, err := storage.ParseFaults("seed=3,readflip=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if f.ReadFlip != 0.25 || f.Seed != 3 {
		t.Fatalf("parsed: %+v", f)
	}
	if _, err := storage.ParseFaults("readflip=1.5"); err == nil {
		t.Fatal("out-of-range readflip must be rejected")
	}
}

package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The generic Backend contract lives in storagetest and runs over
// every implementation from contract_test.go. This file keeps the
// tests that reach into implementation specifics (raw os errors, the
// on-disk temp layout) and the package's error-taxonomy helpers.

// The dir backend must surface misses as RAW os errors, because the
// trace store's callers match with os.IsNotExist, which does not
// unwrap %w chains.
func TestDirMissMatchesOsIsNotExist(t *testing.T) {
	d, err := NewDir(filepath.Join(t.TempDir(), "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("nope.bin"); !os.IsNotExist(err) {
		t.Fatalf("dir get miss must satisfy os.IsNotExist, got %v", err)
	}
}

func TestDirSweepRemovesStaleTemps(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	d, err := NewDir(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(root, "put-123.rwt2.tmp")
	if err := os.WriteFile(stale, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	os.Chtimes(stale, old, old)
	fresh := filepath.Join(root, "put-456.rwt2.tmp")
	if err := os.WriteFile(fresh, []byte("in flight right now"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := d.Sweep(time.Hour); n != 1 {
		t.Fatalf("sweep removed %d, want 1 (only the stale temp)", n)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp survived sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("sweep removed an in-flight temp")
	}
}

func TestValidName(t *testing.T) {
	good := []string{"a.bin", "quarantine/a.bin", "sub/deep.bin"}
	bad := []string{"", "/abs", "trail/", "a//b", "./x", "../x", "a/../b"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestProbeBrokenBackend(t *testing.T) {
	b := NewFault(NewMem(), Faults{WriteErr: 1})
	if err := Probe(b); err == nil {
		t.Fatal("probe of a write-dead backend must fail")
	}
}

func TestErrorClassification(t *testing.T) {
	plain := errors.New("compute failed")
	if AsBackendError(plain) || IsTransient(plain) {
		t.Fatal("plain errors must not classify as storage failures")
	}
	tr := Transient(plain)
	if !IsTransient(tr) || !AsBackendError(tr) {
		t.Fatal("Transient must classify as transient and backend-side")
	}
	be := &Error{Op: "put", Backend: "dir:x", Name: "a", Err: plain}
	if !AsBackendError(be) || IsTransient(be) {
		t.Fatal("*Error must classify as backend-side but not transient")
	}
	pe := &fs.PathError{Op: "write", Path: "/x", Err: errors.New("EIO")}
	if !AsBackendError(fmt.Errorf("wrapped: %w", pe)) {
		t.Fatal("wrapped *fs.PathError must classify as backend-side")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must stay nil")
	}
}

func TestDegradedFlag(t *testing.T) {
	ctx, flag := WithDegraded(t.Context())
	MarkDegraded(ctx, "trace-store")
	MarkDegraded(ctx, "result-cache")
	MarkDegraded(ctx, "trace-store") // deduplicated
	if got := fmt.Sprint(flag.Components()); got != "[trace-store result-cache]" {
		t.Fatalf("components: %v", got)
	}
	// No flag planted: a no-op, never a panic.
	MarkDegraded(t.Context(), "whatever")
	var nilFlag *DegradedFlag
	if nilFlag.Components() != nil {
		t.Fatal("nil flag must read as empty")
	}
}

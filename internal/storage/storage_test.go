package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// backends returns one fresh instance of every shipped backend, so the
// contract tests below run identically over all of them.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	dir, err := NewDir(filepath.Join(t.TempDir(), "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"dir": dir, "mem": NewMem()}
}

func put(t *testing.T, b Backend, name, content string) {
	t.Helper()
	if err := b.Put(name, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	}); err != nil {
		t.Fatalf("put %q: %v", name, err)
	}
}

func get(t *testing.T, b Backend, name string) string {
	t.Helper()
	rc, err := b.Get(name)
	if err != nil {
		t.Fatalf("get %q: %v", name, err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read %q: %v", name, err)
	}
	return string(data)
}

func TestBackendRoundTrip(t *testing.T) {
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			put(t, b, "a.bin", "hello")
			if got := get(t, b, "a.bin"); got != "hello" {
				t.Fatalf("round trip: got %q", got)
			}
			// Replace atomically.
			put(t, b, "a.bin", "world")
			if got := get(t, b, "a.bin"); got != "world" {
				t.Fatalf("replace: got %q", got)
			}
			info, err := b.Stat("a.bin")
			if err != nil || info.Size != 5 {
				t.Fatalf("stat: %+v, %v", info, err)
			}
		})
	}
}

func TestBackendMissIsNotExist(t *testing.T) {
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			if _, err := b.Get("nope.bin"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("get miss: %v", err)
			}
			if _, err := b.Stat("nope.bin"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("stat miss: %v", err)
			}
			if err := b.Delete("nope.bin"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("delete miss: %v", err)
			}
		})
	}
}

// The dir backend must surface misses as RAW os errors, because the
// trace store's callers match with os.IsNotExist, which does not
// unwrap %w chains.
func TestDirMissMatchesOsIsNotExist(t *testing.T) {
	b := backends(t)["dir"]
	if _, err := b.Get("nope.bin"); !os.IsNotExist(err) {
		t.Fatalf("dir get miss must satisfy os.IsNotExist, got %v", err)
	}
}

func TestBackendPutFailureLeavesNoTrace(t *testing.T) {
	boom := errors.New("generator exploded")
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			put(t, b, "keep.bin", "original")
			err := b.Put("keep.bin", func(w io.Writer) error {
				io.WriteString(w, "partial garbage")
				return boom
			})
			if !errors.Is(err, boom) {
				t.Fatalf("put must return the callback error identically, got %v", err)
			}
			if got := get(t, b, "keep.bin"); got != "original" {
				t.Fatalf("failed put replaced the object: %q", got)
			}
			// A failed put of a NEW object must not create it.
			if err := b.Put("new.bin", func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
				t.Fatal(err)
			}
			if _, err := b.Stat("new.bin"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("failed put created the object: %v", err)
			}
		})
	}
}

func TestBackendPutPanicCleansUp(t *testing.T) {
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			func() {
				defer func() { recover() }()
				b.Put("x.bin", func(w io.Writer) error {
					io.WriteString(w, "half")
					panic("writer died")
				})
			}()
			if _, err := b.Stat("x.bin"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("panicking put left an object: %v", err)
			}
			if d, ok := b.(*Dir); ok {
				entries, err := os.ReadDir(d.Root())
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range entries {
					if strings.HasSuffix(e.Name(), ".tmp") {
						t.Fatalf("panicking put stranded temp %s", e.Name())
					}
				}
			}
		})
	}
}

func TestBackendWriterSeeks(t *testing.T) {
	// The trace codec back-patches its header; both shipped backends
	// must hand Put an io.WriteSeeker.
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			err := b.Put("patched.bin", func(w io.Writer) error {
				ws, ok := w.(io.WriteSeeker)
				if !ok {
					return fmt.Errorf("writer is %T, not an io.WriteSeeker", w)
				}
				if _, err := io.WriteString(ws, "????rest"); err != nil {
					return err
				}
				if _, err := ws.Seek(0, io.SeekStart); err != nil {
					return err
				}
				_, err := io.WriteString(ws, "head")
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := get(t, b, "patched.bin"); got != "headrest" {
				t.Fatalf("patched object: %q", got)
			}
		})
	}
}

func TestBackendListAndNamespaces(t *testing.T) {
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			put(t, b, "b.bin", "1")
			put(t, b, "a.bin", "2")
			put(t, b, QuarantinePrefix+"c.bin", "3")
			root, err := b.List("")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(root) != "[a.bin b.bin]" {
				t.Fatalf("root list: %v (quarantine must not leak into the root namespace)", root)
			}
			quar, err := b.List(QuarantinePrefix)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(quar) != "[quarantine/c.bin]" {
				t.Fatalf("quarantine list: %v", quar)
			}
			// Absent sub-namespace is empty, not an error.
			none, err := b.List("absent/")
			if err != nil || len(none) != 0 {
				t.Fatalf("absent namespace: %v, %v", none, err)
			}
		})
	}
}

func TestBackendRenameQuarantines(t *testing.T) {
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			put(t, b, "bad.bin", "damaged")
			if err := b.Rename("bad.bin", QuarantinePrefix+"bad.bin"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Stat("bad.bin"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("rename left the source: %v", err)
			}
			if got := get(t, b, QuarantinePrefix+"bad.bin"); got != "damaged" {
				t.Fatalf("quarantined content: %q", got)
			}
		})
	}
}

func TestBackendSweepAgesOutQuarantine(t *testing.T) {
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			put(t, b, "live.bin", "keep me")
			put(t, b, QuarantinePrefix+"old.bin", "age me out")
			if d, ok := b.(*Dir); ok {
				old := time.Now().Add(-2 * time.Hour)
				os.Chtimes(filepath.Join(d.Root(), "quarantine", "old.bin"), old, old)
			} else {
				time.Sleep(10 * time.Millisecond)
			}
			cutoff := time.Hour
			if _, ok := b.(*Mem); ok {
				cutoff = time.Millisecond
			}
			if n := b.Sweep(cutoff); n != 1 {
				t.Fatalf("sweep removed %d objects, want 1", n)
			}
			if _, err := b.Stat(QuarantinePrefix + "old.bin"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("aged quarantine object survived: %v", err)
			}
			if got := get(t, b, "live.bin"); got != "keep me" {
				t.Fatalf("sweep touched a live object: %q", got)
			}
		})
	}
}

func TestDirSweepRemovesStaleTemps(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	d, err := NewDir(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(root, "put-123.rwt2.tmp")
	if err := os.WriteFile(stale, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	os.Chtimes(stale, old, old)
	fresh := filepath.Join(root, "put-456.rwt2.tmp")
	if err := os.WriteFile(fresh, []byte("in flight right now"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := d.Sweep(time.Hour); n != 1 {
		t.Fatalf("sweep removed %d, want 1 (only the stale temp)", n)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp survived sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("sweep removed an in-flight temp")
	}
}

func TestBackendConcurrentPuts(t *testing.T) {
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					content := strings.Repeat(fmt.Sprintf("writer-%d ", i), 100)
					b.Put("contested.bin", func(w io.Writer) error {
						_, err := io.WriteString(w, content)
						return err
					})
				}(i)
			}
			wg.Wait()
			// Whoever won, the object must be one writer's COMPLETE
			// output — never interleaved or truncated.
			got := get(t, b, "contested.bin")
			matched := false
			for i := 0; i < 8; i++ {
				if got == strings.Repeat(fmt.Sprintf("writer-%d ", i), 100) {
					matched = true
				}
			}
			if !matched {
				t.Fatalf("contested object is not any single writer's output (%d bytes)", len(got))
			}
		})
	}
}

func TestValidName(t *testing.T) {
	good := []string{"a.bin", "quarantine/a.bin", "sub/deep.bin"}
	bad := []string{"", "/abs", "trail/", "a//b", "./x", "../x", "a/../b"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestProbe(t *testing.T) {
	for bname, b := range backends(t) {
		t.Run(bname, func(t *testing.T) {
			if err := Probe(b); err != nil {
				t.Fatal(err)
			}
			// The probe cleans up after itself.
			names, err := b.List("")
			if err != nil || len(names) != 0 {
				t.Fatalf("probe left droppings: %v, %v", names, err)
			}
		})
	}
	t.Run("broken", func(t *testing.T) {
		b := NewFault(NewMem(), Faults{WriteErr: 1})
		if err := Probe(b); err == nil {
			t.Fatal("probe of a write-dead backend must fail")
		}
	})
}

func TestErrorClassification(t *testing.T) {
	plain := errors.New("compute failed")
	if AsBackendError(plain) || IsTransient(plain) {
		t.Fatal("plain errors must not classify as storage failures")
	}
	tr := Transient(plain)
	if !IsTransient(tr) || !AsBackendError(tr) {
		t.Fatal("Transient must classify as transient and backend-side")
	}
	be := &Error{Op: "put", Backend: "dir:x", Name: "a", Err: plain}
	if !AsBackendError(be) || IsTransient(be) {
		t.Fatal("*Error must classify as backend-side but not transient")
	}
	pe := &fs.PathError{Op: "write", Path: "/x", Err: errors.New("EIO")}
	if !AsBackendError(fmt.Errorf("wrapped: %w", pe)) {
		t.Fatal("wrapped *fs.PathError must classify as backend-side")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must stay nil")
	}
}

func TestDegradedFlag(t *testing.T) {
	ctx, flag := WithDegraded(t.Context())
	MarkDegraded(ctx, "trace-store")
	MarkDegraded(ctx, "result-cache")
	MarkDegraded(ctx, "trace-store") // deduplicated
	if got := fmt.Sprint(flag.Components()); got != "[trace-store result-cache]" {
		t.Fatalf("components: %v", got)
	}
	// No flag planted: a no-op, never a panic.
	MarkDegraded(t.Context(), "whatever")
	var nilFlag *DegradedFlag
	if nilFlag.Components() != nil {
		t.Fatal("nil flag must read as empty")
	}
}

package storage

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"sync/atomic"
	"time"
)

// TieredStats is a point-in-time snapshot of a Tiered backend's
// counters, surfaced in /v1/stats.
type TieredStats struct {
	// LocalHits counts Gets served from the local tier.
	LocalHits int64 `json:"local_hits"`
	// PeerHits counts Gets the local tier missed and a peer served.
	PeerHits int64 `json:"peer_hits"`
	// PeerMisses counts Gets no tier could serve.
	PeerMisses int64 `json:"peer_misses"`
	// PeerErrors counts Gets where the peer tier failed (transport or
	// remote backend); the caller sees the local miss and recomputes.
	PeerErrors int64 `json:"peer_errors"`
	// WriteThroughs counts peer-served objects copied into the local
	// tier, and WriteThroughFails the copies that failed (the object
	// is still served from memory either way).
	WriteThroughs     int64 `json:"write_throughs"`
	WriteThroughFails int64 `json:"write_through_fails"`
}

// Tiered composes a local backend with a remote (peer) backend into
// the cluster read path: Get serves from local first and on a local
// miss fetches from the remote, writing the object through to local so
// the next read is a local hit. Everything else — Put, Delete, Rename,
// List, Sweep, Stat(local-first) — operates on the local tier only:
// each node owns its own mutations and hygiene, and objects spread
// between nodes only by being read.
//
// A remote failure is never surfaced from Get: the caller sees the
// local miss and recomputes (results here are pure functions — a
// perfect remote is an optimization, not a dependency). Content
// verification stays with the callers (the stores' CRC/SHA checks), so
// a corrupt peer blob is quarantined and healed exactly like a corrupt
// local one.
type Tiered struct {
	local  Backend
	remote Backend

	localHits         atomic.Int64
	peerHits          atomic.Int64
	peerMisses        atomic.Int64
	peerErrors        atomic.Int64
	writeThroughs     atomic.Int64
	writeThroughFails atomic.Int64
}

// NewTiered composes local and remote into a tiered backend.
func NewTiered(local, remote Backend) *Tiered {
	return &Tiered{local: local, remote: remote}
}

// Name implements Backend.
func (t *Tiered) Name() string {
	return "tiered(" + t.local.Name() + " + " + t.remote.Name() + ")"
}

// Local returns the local tier. The serving layer mounts BlobHandler
// over this (never over the Tiered itself) so peers are served only
// node-local objects.
func (t *Tiered) Local() Backend { return t.local }

// Remote returns the remote tier.
func (t *Tiered) Remote() Backend { return t.remote }

// Stats snapshots the tier counters.
func (t *Tiered) Stats() TieredStats {
	return TieredStats{
		LocalHits:         t.localHits.Load(),
		PeerHits:          t.peerHits.Load(),
		PeerMisses:        t.peerMisses.Load(),
		PeerErrors:        t.peerErrors.Load(),
		WriteThroughs:     t.writeThroughs.Load(),
		WriteThroughFails: t.writeThroughFails.Load(),
	}
}

// peerReadCloser marks a reader as peer-served; the result cache type-
// asserts for BlobSource to report X-Result-Source: peer.
type peerReadCloser struct {
	io.ReadCloser
}

// BlobSource identifies where the bytes came from.
func (peerReadCloser) BlobSource() string { return "peer" }

// Get implements Backend: local first, then the remote tier with
// write-through. The remote object is read fully before anything is
// returned — a mid-fetch transport failure therefore looks like a
// local miss, never a mid-stream error, and nothing partial is ever
// written through.
func (t *Tiered) Get(name string) (io.ReadCloser, error) {
	rc, localErr := t.local.Get(name)
	if localErr == nil {
		t.localHits.Add(1)
		return rc, nil
	}
	remote, err := t.remote.Get(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			t.peerMisses.Add(1)
		} else {
			t.peerErrors.Add(1)
		}
		return nil, localErr
	}
	data, err := io.ReadAll(remote)
	remote.Close()
	if err != nil {
		t.peerErrors.Add(1)
		return nil, localErr
	}
	t.peerHits.Add(1)
	if err := t.local.Put(name, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		t.writeThroughFails.Add(1)
	} else {
		t.writeThroughs.Add(1)
	}
	return peerReadCloser{io.NopCloser(bytes.NewReader(data))}, nil
}

// Stat implements Backend: local first, then remote (no write-through
// — stat is metadata, not content).
func (t *Tiered) Stat(name string) (Info, error) {
	info, localErr := t.local.Stat(name)
	if localErr == nil {
		return info, nil
	}
	if info, err := t.remote.Stat(name); err == nil {
		return info, nil
	}
	return Info{}, localErr
}

// Put implements Backend (local tier only).
func (t *Tiered) Put(name string, write func(w io.Writer) error) error {
	return t.local.Put(name, write)
}

// Delete implements Backend (local tier only).
func (t *Tiered) Delete(name string) error { return t.local.Delete(name) }

// Rename implements Backend (local tier only): quarantining removes
// the corrupt object from this node's serving set — and from the blob
// API, so peers stop fetching it too.
func (t *Tiered) Rename(old, new string) error { return t.local.Rename(old, new) }

// List implements Backend (local tier only, so scrubbing stays
// node-local).
func (t *Tiered) List(prefix string) ([]string, error) { return t.local.List(prefix) }

// Sweep implements Backend (local tier only; each node sweeps itself).
func (t *Tiered) Sweep(olderThan time.Duration) int { return t.local.Sweep(olderThan) }

var _ Backend = (*Tiered)(nil)

// Package storage is the pluggable blob-storage layer under every
// persistent store in the repo (the trace store in internal/tracestore
// and the experiment result cache in internal/service). The paper's
// results are pure functions of (benchmark, PEs, mode, emulator
// version), which is what lets those stores be content-addressed — and
// what makes storage failure recoverable by construction: any object a
// backend loses or corrupts can be recomputed bit-identically, so the
// storage contract here is deliberately small and failure is a
// first-class, injectable input.
//
// The Backend interface follows the swappable-backend pattern (one
// behavior, several interchangeable implementations): a flat namespace
// of atomically-replaced objects with streaming reads. The
// implementations shipping in this package:
//
//   - Dir — the production backend: one local directory, writes via
//     temp file + atomic rename (concurrent writers race benignly,
//     readers only observe complete objects);
//   - Mem — an in-memory backend for tests and benchmarks;
//   - Peer — an HTTP client backend over the blob protocol other
//     rapwamd nodes serve (BlobHandler), reads routed owner-first by
//     rendezvous hashing;
//   - Tiered — local-first composition with peer-fetch + local
//     write-through on miss: the cluster read tier;
//   - Fault — a deterministic fault-injection wrapper over any inner
//     backend: a seeded PRNG injects read/write/op errors, latency,
//     torn writes and bit flips (at rest and in flight), so every
//     store and serving path can be tested against a hostile disk or
//     wire.
//
// NewRetry adds bounded retry-with-backoff for transient errors around
// any backend. Higher layers classify errors with IsTransient (worth
// retrying, not evidence of corruption) and AsBackendError (the
// storage layer itself failed — degrade to compute-without-caching
// rather than failing the request).
package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strings"
	"sync"
	"time"
)

// Info describes one stored object.
type Info struct {
	// Size is the object's length in bytes.
	Size int64
	// ModTime is when the object was last committed.
	ModTime time.Time
}

// Backend is a flat namespace of atomically-written blobs. Names use
// forward slashes for sub-namespaces (the stores use "quarantine/...")
// and must be relative — no leading slash, no "." or ".." elements.
//
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put atomically creates or replaces name with the bytes write
	// produces. The writer passed to write is an io.WriteSeeker when
	// the backend supports in-place patching (both shipped backends
	// do; the trace codec uses it to back-fill the header count).
	// On any error — from write or from the backend — the object is
	// either fully replaced or untouched, never partial, and no
	// temporary droppings remain (including when write panics).
	Put(name string, write func(w io.Writer) error) error
	// Get opens name for streaming reads. A missing object returns an
	// error satisfying errors.Is(err, fs.ErrNotExist).
	Get(name string) (io.ReadCloser, error)
	// Stat returns the object's size and modification time.
	Stat(name string) (Info, error)
	// List returns the names of all objects whose name starts with
	// prefix, sorted. Prefix "" lists the root namespace only (not
	// sub-namespaces like "quarantine/"); a prefix ending in "/"
	// lists that sub-namespace.
	List(prefix string) ([]string, error)
	// Delete removes name (fs.ErrNotExist when absent).
	Delete(name string) error
	// Rename atomically moves old to new, replacing any existing
	// object at new. The stores use it to quarantine corrupt entries.
	Rename(old, new string) error
	// Sweep removes stale write droppings (temp files older than
	// olderThan) and ages out quarantined objects older than
	// olderThan, returning how many objects were removed. Sweeping is
	// best-effort hygiene: failures are not reported because a
	// stranded temp wastes space but corrupts nothing.
	Sweep(olderThan time.Duration) int
	// Name describes the backend for logs and health reports.
	Name() string
}

// QuarantinePrefix is the sub-namespace corrupt objects are moved to
// by the self-healing read paths ("quarantine/<original name>").
const QuarantinePrefix = "quarantine/"

// ValidName reports whether name is acceptable to the shipped
// backends: relative, slash-separated, no empty/dot/dotdot elements.
func ValidName(name string) bool {
	if name == "" || strings.HasPrefix(name, "/") || strings.HasSuffix(name, "/") {
		return false
	}
	for _, el := range strings.Split(name, "/") {
		if el == "" || el == "." || el == ".." {
			return false
		}
	}
	return true
}

// Error is a backend-side failure: the storage layer itself — not the
// caller's write callback and not the decoded content — failed. The
// serving layers use AsBackendError to tell "the disk is broken"
// (degrade to compute-without-caching) from "the computation failed"
// (surface the error).
type Error struct {
	// Op is the backend operation ("put", "get", "stat", ...).
	Op string
	// Backend names the backend the failure occurred in.
	Backend string
	// Name is the object involved.
	Name string
	// Err is the underlying cause.
	Err error
}

func (e *Error) Error() string {
	return fmt.Sprintf("storage: %s %s %q: %v", e.Backend, e.Op, e.Name, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// AsBackendError reports whether err's chain contains a storage-layer
// failure: a backend *Error, a raw filesystem *fs.PathError (I/O
// errors surface unwrapped through write callbacks streaming straight
// to a backend file), or a transient injected/retried fault.
func AsBackendError(err error) bool {
	var se *Error
	var pe *fs.PathError
	return errors.As(err, &se) || errors.As(err, &pe) || IsTransient(err)
}

// TransientError marks an error as transient: worth retrying and NOT
// evidence that stored content is corrupt (a flaky read must not
// quarantine a healthy object). The Fault backend wraps every injected
// operational error this way.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as transient (nil stays nil).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err's chain contains a TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// wrapOp wraps a backend-side failure as *Error, passing nil and
// not-exist errors through untouched (a miss is an answer, not a
// failure, and callers match it with errors.Is(err, fs.ErrNotExist)
// or os.IsNotExist on the raw error).
func wrapOp(backend, op, name string, err error) error {
	if err == nil || errors.Is(err, fs.ErrNotExist) {
		return err
	}
	if IsTransient(err) {
		return err // already classified; keep the transient marker on top
	}
	return &Error{Op: op, Backend: backend, Name: name, Err: err}
}

// Probe round-trips a small object through the backend — Put, Get,
// content compare, Delete — returning the first failure. The serving
// layer's deepened /v1/healthz runs one probe per component so a load
// balancer can drain a node whose disk went read-only before clients
// hit it. Callers should serialize probes per backend (the name is
// fixed so concurrent probes would race benignly but report noise).
//
//rapwam:allow errortaxonomy health probe reports raw first failure; classification is the healthz caller's job
func Probe(b Backend) error {
	const name = "healthz.probe"
	payload := []byte("probe " + time.Now().UTC().Format(time.RFC3339Nano))
	if err := b.Put(name, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		return fmt.Errorf("probe write: %w", err)
	}
	rc, err := b.Get(name)
	if err != nil {
		return fmt.Errorf("probe read: %w", err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return fmt.Errorf("probe read: %w", err)
	}
	if string(got) != string(payload) {
		return fmt.Errorf("probe read back %d bytes, wrote %d (storage not round-tripping)", len(got), len(payload))
	}
	if err := b.Delete(name); err != nil {
		return fmt.Errorf("probe delete: %w", err)
	}
	return nil
}

// --- degraded-mode accounting ---

// DegradedFlag collects which storage components a computation had to
// bypass (compute-without-caching). The serving layer plants one in
// the computation's context; the experiment grid marks it when a
// storage failure forces the storeless path, and the response carries
// the components in an X-Degraded header.
type DegradedFlag struct {
	mu         sync.Mutex
	components []string
}

// Components returns the distinct degraded components, in mark order.
func (f *DegradedFlag) Components() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.components...)
}

// mark records one degraded component (deduplicated).
func (f *DegradedFlag) mark(component string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.components {
		if c == component {
			return
		}
	}
	f.components = append(f.components, component)
}

type degradedKey struct{}

// WithDegraded returns a context carrying a fresh DegradedFlag, and
// the flag for reading after the computation completes.
func WithDegraded(ctx context.Context) (context.Context, *DegradedFlag) {
	f := &DegradedFlag{}
	return context.WithValue(ctx, degradedKey{}, f), f
}

// MarkDegraded records, on the context's DegradedFlag if one is
// planted, that component had to be bypassed. A context without a flag
// makes this a no-op, so library callers outside the serving path pay
// nothing.
func MarkDegraded(ctx context.Context, component string) {
	if f, _ := ctx.Value(degradedKey{}).(*DegradedFlag); f != nil {
		f.mark(component)
	}
}

// sortedNames is a small shared helper for List implementations.
func sortedNames(names []string) []string {
	sort.Strings(names)
	return names
}

package storage_test

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// Every shipped backend — and the cluster compositions — passes the
// identical exported contract suite. The networked backends run
// against a real HTTP server (BlobHandler over Mem on an httptest
// listener), so the suite exercises the wire protocol too.

func TestDirContract(t *testing.T) {
	storagetest.TestBackend(t, func(t *testing.T) storage.Backend {
		d, err := storage.NewDir(filepath.Join(t.TempDir(), "store"), 0)
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
}

func TestMemContract(t *testing.T) {
	storagetest.TestBackend(t, func(t *testing.T) storage.Backend {
		return storage.NewMem()
	})
}

// blobServer starts one blob node over a fresh Mem backend and returns
// its namespace base URL.
func blobServer(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.StripPrefix("/v1/blobs/results/",
		storage.BlobHandler(storage.NewMem())))
	t.Cleanup(srv.Close)
	return srv.URL + "/v1/blobs/results"
}

func peerClient() *http.Client { return &http.Client{Timeout: 5 * time.Second} }

func TestPeerContract(t *testing.T) {
	storagetest.TestBackend(t, func(t *testing.T) storage.Backend {
		return storage.NewPeer(peerClient(), []string{blobServer(t)})
	})
}

func TestPeerTwoNodeContract(t *testing.T) {
	// Two remote nodes: rendezvous routing must still present one
	// coherent namespace (puts land on the owner, reads find them).
	storagetest.TestBackend(t, func(t *testing.T) storage.Backend {
		return storage.NewPeer(peerClient(), []string{blobServer(t), blobServer(t)})
	})
}

func TestTieredContract(t *testing.T) {
	storagetest.TestBackend(t, func(t *testing.T) storage.Backend {
		remote := storage.NewPeer(peerClient(), []string{blobServer(t)})
		return storage.NewTiered(storage.NewMem(), remote)
	})
}

package storage

import (
	"io"
	"time"
)

// RetryOptions tunes the Retry wrapper.
type RetryOptions struct {
	// Attempts is the total number of tries per operation (min 1).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles each
	// further retry.
	Backoff time.Duration
	// RetryPut also retries Put's transient failures, re-running the
	// write callback. Enable only when the callback is cheap and
	// repeatable (the result cache writes a byte slice); the trace
	// store leaves it off — its callback re-runs the emulator, and
	// regeneration policy belongs to the grid layer.
	RetryPut bool
}

// Retry wraps an inner backend with bounded retry-with-backoff for
// transient errors (IsTransient). Non-transient errors — corrupt
// content surfaces on decode, not here; real disk errors are not
// marked transient — fail immediately, as does a miss.
type Retry struct {
	inner Backend
	opts  RetryOptions
}

// NewRetry wraps inner with retries. Attempts < 1 is treated as 1
// (no retries, pure passthrough).
func NewRetry(inner Backend, opts RetryOptions) *Retry {
	if opts.Attempts < 1 {
		opts.Attempts = 1
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 5 * time.Millisecond
	}
	return &Retry{inner: inner, opts: opts}
}

// Name implements Backend.
func (r *Retry) Name() string { return "retry(" + r.inner.Name() + ")" }

// Inner returns the wrapped backend.
func (r *Retry) Inner() Backend { return r.inner }

// do runs op up to Attempts times, backing off between transient
// failures.
func (r *Retry) do(op func() error) error {
	backoff := r.opts.Backoff
	var err error
	for attempt := 0; attempt < r.opts.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// Put implements Backend; retried only when RetryPut is set.
func (r *Retry) Put(name string, write func(w io.Writer) error) error {
	if !r.opts.RetryPut {
		return r.inner.Put(name, write)
	}
	return r.do(func() error { return r.inner.Put(name, write) })
}

// Get implements Backend. Only the open is retried here — a transient
// mid-stream read failure surfaces through the ReadCloser, and only
// the caller can restart its decode from the top (the stores' heal
// loops do).
func (r *Retry) Get(name string) (io.ReadCloser, error) {
	var rc io.ReadCloser
	err := r.do(func() (err error) {
		rc, err = r.inner.Get(name)
		return err
	})
	return rc, err
}

// Stat implements Backend.
func (r *Retry) Stat(name string) (Info, error) {
	var info Info
	err := r.do(func() (err error) {
		info, err = r.inner.Stat(name)
		return err
	})
	return info, err
}

// List implements Backend.
func (r *Retry) List(prefix string) ([]string, error) {
	var names []string
	err := r.do(func() (err error) {
		names, err = r.inner.List(prefix)
		return err
	})
	return names, err
}

// Delete implements Backend.
func (r *Retry) Delete(name string) error {
	return r.do(func() error { return r.inner.Delete(name) })
}

// Rename implements Backend.
func (r *Retry) Rename(old, new string) error {
	return r.do(func() error { return r.inner.Rename(old, new) })
}

// Sweep implements Backend.
func (r *Retry) Sweep(olderThan time.Duration) int { return r.inner.Sweep(olderThan) }

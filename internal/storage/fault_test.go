package storage

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"strings"
	"testing"
	"time"
)

// opSequence drives a fixed operation sequence against a fault backend
// and records which operations failed — the determinism fixture.
func opSequence(t *testing.T, b *Fault) string {
	t.Helper()
	var log strings.Builder
	mark := func(op string, err error) {
		if err != nil {
			log.WriteString(op + "!")
		} else {
			log.WriteString(op + ".")
		}
	}
	for i := 0; i < 50; i++ {
		mark("put", b.Put("obj.bin", func(w io.Writer) error {
			_, err := w.Write(bytes.Repeat([]byte("payload "), 64))
			return err
		}))
		rc, err := b.Get("obj.bin")
		if err == nil {
			_, err = io.Copy(io.Discard, rc)
			rc.Close()
		}
		if err != nil && errors.Is(err, fs.ErrNotExist) {
			err = nil // a prior injected write error legitimately left no object
		}
		mark("get", err)
		_, err = b.Stat("obj.bin")
		if errors.Is(err, fs.ErrNotExist) {
			err = nil
		}
		mark("stat", err)
	}
	return log.String()
}

func TestFaultDeterminism(t *testing.T) {
	spec := Faults{Seed: 7, ReadErr: 0.2, WriteErr: 0.15, OpErr: 0.1}
	a := opSequence(t, NewFault(NewMem(), spec))
	b := opSequence(t, NewFault(NewMem(), spec))
	if a != b {
		t.Fatalf("same seed, same op order, different faults:\n%s\n%s", a, b)
	}
	c := opSequence(t, NewFault(NewMem(), Faults{Seed: 8, ReadErr: 0.2, WriteErr: 0.15, OpErr: 0.1}))
	if a == c {
		t.Fatal("different seeds produced identical fault sequences (suspicious)")
	}
	if !strings.Contains(a, "!") {
		t.Fatal("no fault fired in 150 operations at these rates")
	}
}

func TestFaultInjectedErrorsAreTransient(t *testing.T) {
	b := NewFault(NewMem(), Faults{WriteErr: 1})
	err := b.Put("x.bin", func(w io.Writer) error { return nil })
	if !IsTransient(err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write error must be transient and wrap ErrInjected: %v", err)
	}
	b = NewFault(NewMem(), Faults{ReadErr: 1, Seed: 3})
	// At ReadErr=1 every Get fails: half open errors, half mid-stream.
	inner := b.Inner()
	if err := inner.Put("x.bin", func(w io.Writer) error {
		_, err := w.Write(bytes.Repeat([]byte{0xAB}, 128<<10))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rc, err := b.Get("x.bin")
		if err == nil {
			_, err = io.Copy(io.Discard, rc)
			rc.Close()
			if err == nil {
				t.Fatal("ReadErr=1 Get read through cleanly")
			}
		}
		if !IsTransient(err) {
			t.Fatalf("injected read error must be transient: %v", err)
		}
	}
}

func TestFaultTornWriteCommitsPrefix(t *testing.T) {
	b := NewFault(NewMem(), Faults{TornWrite: 1, Seed: 1})
	full := bytes.Repeat([]byte("0123456789abcdef"), 16<<10) // 256 KiB > 64 KiB cut window
	if err := b.Put("torn.bin", func(w io.Writer) error {
		_, err := w.Write(full)
		return err
	}); err != nil {
		t.Fatalf("a torn write must COMMIT (return nil): %v", err)
	}
	rc, err := b.Get("torn.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(full) {
		t.Fatalf("torn object is %d bytes of %d, want a strict non-empty prefix", len(got), len(full))
	}
	if !bytes.Equal(got, full[:len(got)]) {
		t.Fatal("torn object is not a prefix of the written bytes")
	}
	_, _, _, torn, _ := b.Injected()
	if torn != 1 {
		t.Fatalf("torn counter = %d, want 1", torn)
	}
}

func TestFaultBitFlipDamagesCopyNotCaller(t *testing.T) {
	b := NewFault(NewMem(), Faults{BitFlip: 1, Seed: 2})
	orig := bytes.Repeat([]byte{0x5A}, 4096)
	mine := append([]byte(nil), orig...)
	if err := b.Put("flip.bin", func(w io.Writer) error {
		_, err := w.Write(mine)
		return err
	}); err != nil {
		t.Fatalf("a bit-flipped write must COMMIT: %v", err)
	}
	if !bytes.Equal(mine, orig) {
		t.Fatal("fault injector mutated the caller's write buffer (io.Writer contract violation)")
	}
	rc, err := b.Get("flip.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("BitFlip=1 stored undamaged bytes")
	}
	diff := 0
	for i := range got {
		diff += popcount(got[i] ^ orig[i])
	}
	if diff != 1 {
		t.Fatalf("stored object differs by %d bits, want exactly 1 per write call", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestFaultZeroSpecIsTransparent(t *testing.T) {
	b := NewFault(NewMem(), Faults{})
	for i := 0; i < 100; i++ {
		if err := b.Put("x.bin", func(w io.Writer) error {
			_, err := io.WriteString(w, "clean")
			return err
		}); err != nil {
			t.Fatal(err)
		}
		rc, err := b.Get("x.bin")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || string(data) != "clean" {
			t.Fatalf("zero-fault backend damaged data: %q, %v", data, err)
		}
	}
	r, w, o, torn, flips := b.Injected()
	if r+w+o+torn+flips != 0 {
		t.Fatal("zero spec injected faults")
	}
}

func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("seed=7,readerr=0.1,writeerr=0.2,operr=0.02,tornwrite=0.05,bitflip=0.03,latency=2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Faults{Seed: 7, ReadErr: 0.1, WriteErr: 0.2, OpErr: 0.02, TornWrite: 0.05, BitFlip: 0.03, MaxLatency: 2 * time.Millisecond}
	if f != want {
		t.Fatalf("parsed %+v, want %+v", f, want)
	}
	for _, bad := range []string{"", "readerr=2", "readerr=-0.1", "bogus=1", "readerr", "latency=-1s", "seed=x"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted an invalid spec", bad)
		}
	}
}

func TestRetryHealsTransientFaults(t *testing.T) {
	// OpErr at 30% with 10 attempts: a bare operation flakes every few
	// calls, a retried one fails with probability 0.3^10 ≈ 6e-6 — and
	// the seeded PRNG plus the fixed operation order below make the
	// outcome deterministic, not merely likely.
	b := NewRetry(NewFault(NewMem(), Faults{Seed: 5, OpErr: 0.3}), RetryOptions{Attempts: 10, Backoff: time.Microsecond})
	if err := b.Put("x.bin", func(w io.Writer) error {
		_, err := io.WriteString(w, "v")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := b.Stat("x.bin"); err != nil {
			t.Fatalf("stat %d flaked through retry: %v", i, err)
		}
		if _, err := b.List(""); err != nil {
			t.Fatalf("list %d flaked through retry: %v", i, err)
		}
	}
}

func TestRetryDoesNotRetryPutByDefault(t *testing.T) {
	calls := 0
	b := NewRetry(NewFault(NewMem(), Faults{WriteErr: 1}), RetryOptions{Attempts: 5, Backoff: time.Microsecond})
	err := b.Put("x.bin", func(w io.Writer) error {
		calls++
		return nil
	})
	if err == nil {
		t.Fatal("WriteErr=1 put succeeded")
	}
	if calls != 0 {
		t.Fatalf("put callback ran %d times; default must not re-run expensive generators", calls)
	}
}

func TestRetryGivesUpOnPersistentFault(t *testing.T) {
	b := NewRetry(NewFault(NewMem(), Faults{OpErr: 1}), RetryOptions{Attempts: 3, Backoff: time.Microsecond})
	_, err := b.Stat("x.bin")
	if !IsTransient(err) {
		t.Fatalf("exhausted retry must surface the transient error: %v", err)
	}
}

func TestRetryDoesNotRetryRealErrors(t *testing.T) {
	b := NewRetry(NewMem(), RetryOptions{Attempts: 5, Backoff: time.Microsecond})
	if _, err := b.Get("missing.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("miss through retry: %v", err)
	}
}

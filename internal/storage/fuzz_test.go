package storage

import (
	"strings"
	"testing"
)

// FuzzParseFaults feeds arbitrary specs to the fault-spec parser used
// by every chaos-capable CLI flag (-faults). The contract: never
// panic, and any accepted spec yields a Faults whose probabilities are
// all within [0,1], whose latency is non-negative, and which parses to
// the same value when re-parsed (the spec grammar has no hidden
// state). The seeds cover every key, the documented error shapes and
// some hostile separators.
func FuzzParseFaults(f *testing.F) {
	f.Add("seed=7,readerr=0.1,writeerr=0.05,operr=0.02,tornwrite=0.01,bitflip=0.001,readflip=0.001,latency=2ms")
	f.Add("readerr=1")
	f.Add("readerr=1.5")
	f.Add("latency=-1s")
	f.Add("seed=not-a-number")
	f.Add("nonsense=1")
	f.Add("")
	f.Add(",,,")
	f.Add("readerr")
	f.Add("readerr=0.5,readerr=0.9")
	f.Add("seed=9223372036854775807,latency=1h")

	f.Fuzz(func(t *testing.T, spec string) {
		faults, err := ParseFaults(spec)
		if err != nil {
			return // rejected: the only requirement is no panic
		}
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"readerr", faults.ReadErr},
			{"writeerr", faults.WriteErr},
			{"operr", faults.OpErr},
			{"tornwrite", faults.TornWrite},
			{"bitflip", faults.BitFlip},
			{"readflip", faults.ReadFlip},
		} {
			if p.v < 0 || p.v > 1 {
				t.Fatalf("accepted spec %q: %s = %v outside [0,1]", spec, p.name, p.v)
			}
		}
		if faults.MaxLatency < 0 {
			t.Fatalf("accepted spec %q: negative latency %v", spec, faults.MaxLatency)
		}
		// An accepted spec must contain at least one key=value pair.
		if !strings.Contains(spec, "=") {
			t.Fatalf("accepted spec %q has no key=value pair", spec)
		}
	})
}

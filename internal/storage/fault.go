package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel at the bottom of every operational error
// the Fault backend injects; tests match it with errors.Is to tell
// injected failures from real ones.
var ErrInjected = errors.New("injected fault")

// Faults configures the fault-injection backend. All probabilities are
// in [0, 1] and are drawn independently per operation from one seeded
// PRNG, so a given (seed, operation sequence) always fails the same
// way — chaos tests are reproducible bug reports, not flakes.
type Faults struct {
	// Seed seeds the PRNG (same seed, same operation order → same faults).
	Seed int64
	// ReadErr is the probability a Get fails — half up front (open
	// error), half mid-stream after a random prefix of the object has
	// been read (the failure mode CRC-checked decoding must survive).
	ReadErr float64
	// WriteErr is the probability a Put fails cleanly before
	// committing anything.
	WriteErr float64
	// OpErr is the probability Stat/List/Delete/Rename fail.
	OpErr float64
	// TornWrite is the probability a Put commits only a prefix of the
	// written bytes — the torn-write crash model. The commit succeeds
	// (Put returns nil), so only content verification on the read path
	// can catch it.
	TornWrite float64
	// BitFlip is the probability, per Write call inside a Put, that
	// one random bit of that write is flipped before it reaches the
	// inner backend — silent media corruption. The commit succeeds.
	BitFlip float64
	// ReadFlip is the probability, per Get, that one random bit of the
	// returned stream is flipped — corruption in flight (a hostile
	// wire or a bad NIC), as opposed to BitFlip's corruption at rest.
	// The read "succeeds"; only content verification can catch it.
	// Wrapping a Peer backend with this is how the cluster tests model
	// a peer serving damaged blobs.
	ReadFlip float64
	// MaxLatency, when positive, sleeps a uniform [0, MaxLatency)
	// before every operation.
	MaxLatency time.Duration
}

// Fault wraps an inner backend and injects deterministic faults per
// the configured probabilities. Injected operational errors (failed
// reads/writes/ops) are wrapped as TransientError — they model flaky
// I/O, not corrupt content, and must not get healthy objects
// quarantined. Torn writes and bit flips are silent: the write
// "succeeds" and only read-path verification catches the damage.
type Fault struct {
	inner Backend
	f     Faults

	mu  sync.Mutex
	rng *rand.Rand

	injectedReads  int64
	injectedWrites int64
	injectedOps    int64
	tornWrites     int64
	bitFlips       int64
	readFlips      int64
}

// NewFault wraps inner with deterministic fault injection.
func NewFault(inner Backend, f Faults) *Fault {
	return &Fault{inner: inner, f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// Name implements Backend.
func (b *Fault) Name() string { return "fault(" + b.inner.Name() + ")" }

// Inner returns the wrapped backend (tests reach through to verify
// on-media state).
func (b *Fault) Inner() Backend { return b.inner }

// Injected returns how many faults of each kind have fired:
// reads, writes, ops, torn writes, bit flips.
func (b *Fault) Injected() (reads, writes, ops, torn, flips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.injectedReads, b.injectedWrites, b.injectedOps, b.tornWrites, b.bitFlips
}

// InjectedReadFlips returns how many read-path bit flips have fired.
func (b *Fault) InjectedReadFlips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.readFlips
}

// roll draws one uniform [0,1) variate (and applies latency) under the
// lock — the single PRNG keeps the fault sequence deterministic for a
// deterministic operation order.
func (b *Fault) roll() float64 {
	b.mu.Lock()
	v := b.rng.Float64()
	var lat time.Duration
	if b.f.MaxLatency > 0 {
		lat = time.Duration(b.rng.Int63n(int64(b.f.MaxLatency)))
	}
	b.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	return v
}

// randInt63n draws a uniform [0,n) integer under the lock.
func (b *Fault) randInt63n(n int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rng.Int63n(n)
}

func (b *Fault) count(c *int64) {
	b.mu.Lock()
	*c++
	b.mu.Unlock()
}

// Put implements Backend. Failure modes, in order of the dice: clean
// write error (transient, nothing committed), torn write (a prefix
// commits), bit flips (full length commits, damaged). Torn and flipped
// writes return nil — that is the point.
func (b *Fault) Put(name string, write func(w io.Writer) error) error {
	if b.roll() < b.f.WriteErr {
		b.count(&b.injectedWrites)
		return Transient(fmt.Errorf("put %q: %w", name, ErrInjected))
	}
	torn := b.roll() < b.f.TornWrite
	return b.inner.Put(name, func(w io.Writer) error {
		fw := &faultWriter{b: b, w: w, torn: torn}
		if torn {
			// Cut somewhere in the first 64KiB — early enough to tear
			// the header or an early chunk of any real object.
			fw.cutAt = 1 + b.randInt63n(64<<10)
		}
		err := write(fw)
		if err == nil && torn && !fw.cut {
			// The object was shorter than the cut point; tear the tail
			// anyway by reporting the write complete as-is (nothing to
			// do — the whole object was written). Count only real cuts.
			return nil
		}
		if fw.cut {
			b.count(&b.tornWrites)
			// Swallow the generator's error: the crash model is "the
			// process died and the file still got renamed into place"
			// (e.g. rename reordered before data flush on a power cut).
			return nil
		}
		return err
	})
}

// faultWriter sits between the Put callback and the inner backend's
// writer, tearing and flipping as configured. It forwards Seek when
// the inner writer supports it (the codec's header back-patch), which
// also means a bit flip can land in already-patched bytes — exactly
// the kind of damage CRCs are there to catch.
type faultWriter struct {
	b       *Fault
	w       io.Writer
	torn    bool
	cutAt   int64 // tear after this many bytes (when torn)
	written int64
	cut     bool
}

// errTorn aborts the callback once the cut point is reached; Put
// swallows it so the torn object commits.
var errTorn = errors.New("torn write cut point")

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.cut {
		return 0, errTorn
	}
	if fw.torn && fw.written+int64(len(p)) > fw.cutAt {
		keep := fw.cutAt - fw.written
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			if _, err := fw.w.Write(p[:keep]); err != nil {
				return 0, err
			}
		}
		fw.written += keep
		fw.cut = true
		return int(keep), errTorn
	}
	if fw.b.f.BitFlip > 0 && fw.b.roll() < fw.b.f.BitFlip {
		// Copy before flipping: the io.Writer contract forbids
		// mutating the caller's slice (bufio and the codec reuse
		// their buffers).
		dam := make([]byte, len(p))
		copy(dam, p)
		bit := fw.b.randInt63n(int64(len(dam)) * 8)
		dam[bit/8] ^= 1 << (bit % 8)
		fw.b.count(&fw.b.bitFlips)
		p = dam
	}
	n, err := fw.w.Write(p)
	fw.written += int64(n)
	return n, err
}

// Seek forwards to the inner writer when seekable. A torn writer
// refuses to seek once cut (the file is already abandoned mid-write).
func (fw *faultWriter) Seek(offset int64, whence int) (int64, error) {
	if fw.cut {
		return 0, errTorn
	}
	ws, ok := fw.w.(io.WriteSeeker)
	if !ok {
		return 0, fmt.Errorf("fault: inner writer is not seekable")
	}
	// Seeking makes the linear "written" count meaningless for
	// tearing; keep tearing on total bytes pushed, which is what the
	// crash model cares about.
	return ws.Seek(offset, whence)
}

// Get implements Backend. An injected read failure is either an open
// error or a mid-stream error after a random prefix — both transient.
func (b *Fault) Get(name string) (io.ReadCloser, error) {
	if v := b.roll(); v < b.f.ReadErr {
		b.count(&b.injectedReads)
		if v < b.f.ReadErr/2 {
			return nil, Transient(fmt.Errorf("get %q: %w", name, ErrInjected))
		}
		rc, err := b.inner.Get(name)
		if err != nil {
			return nil, err
		}
		return &failingReader{rc: rc, failAfter: b.randInt63n(64 << 10), name: name}, nil
	}
	// Only roll for a read flip when the knob is set, so existing
	// seeded fault sequences are unchanged when the feature is off.
	if b.f.ReadFlip > 0 && b.roll() < b.f.ReadFlip {
		rc, err := b.inner.Get(name)
		if err != nil {
			return nil, err
		}
		// Read the object fully and flip one bit at a uniform position
		// in its actual length, so the damage is guaranteed to land and
		// is deterministic regardless of the caller's read-chunk sizes.
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
		if len(data) > 0 {
			bit := b.randInt63n(int64(len(data)) * 8)
			data[bit/8] ^= 1 << (bit % 8)
			b.count(&b.readFlips)
		}
		return io.NopCloser(bytes.NewReader(data)), nil
	}
	return b.inner.Get(name)
}

// failingReader reads normally for failAfter bytes, then fails with a
// transient error — the mid-stream disk hiccup.
type failingReader struct {
	rc        io.ReadCloser
	failAfter int64
	read      int64
	name      string
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.read >= r.failAfter {
		return 0, Transient(fmt.Errorf("read %q after %d bytes: %w", r.name, r.read, ErrInjected))
	}
	if max := r.failAfter - r.read; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.rc.Read(p)
	r.read += int64(n)
	return n, err
}

func (r *failingReader) Close() error { return r.rc.Close() }

// opErr rolls for an operational fault on op/name.
func (b *Fault) opErr(op, name string) error {
	if b.roll() < b.f.OpErr {
		b.count(&b.injectedOps)
		return Transient(fmt.Errorf("%s %q: %w", op, name, ErrInjected))
	}
	return nil
}

// Stat implements Backend.
func (b *Fault) Stat(name string) (Info, error) {
	if err := b.opErr("stat", name); err != nil {
		return Info{}, err
	}
	return b.inner.Stat(name)
}

// List implements Backend.
func (b *Fault) List(prefix string) ([]string, error) {
	if err := b.opErr("list", prefix); err != nil {
		return nil, err
	}
	return b.inner.List(prefix)
}

// Delete implements Backend.
func (b *Fault) Delete(name string) error {
	if err := b.opErr("delete", name); err != nil {
		return err
	}
	return b.inner.Delete(name)
}

// Rename implements Backend. Quarantining rides on Rename, so under
// OpErr even self-healing itself is exercised against failure.
func (b *Fault) Rename(old, new string) error {
	if err := b.opErr("rename", old); err != nil {
		return err
	}
	return b.inner.Rename(old, new)
}

// Sweep implements Backend (never injected: hygiene is best-effort
// already).
func (b *Fault) Sweep(olderThan time.Duration) int { return b.inner.Sweep(olderThan) }

// ParseFaults parses a comma-separated fault spec, e.g.
//
//	"seed=7,readerr=0.1,writeerr=0.1,bitflip=0.05,tornwrite=0.05,operr=0.02,latency=2ms"
//
// Unknown keys and malformed values are errors (a chaos run with a
// silently-ignored knob tests nothing). The zero spec "" is invalid —
// callers gate on the flag being set at all.
func ParseFaults(spec string) (Faults, error) {
	var f Faults
	if strings.TrimSpace(spec) == "" {
		return f, fmt.Errorf("empty fault spec")
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return f, fmt.Errorf("fault spec %q: want key=value", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return f, fmt.Errorf("fault spec seed=%q: %w", val, err)
			}
			f.Seed = n
		case "latency":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return f, fmt.Errorf("fault spec latency=%q: want a non-negative duration", val)
			}
			f.MaxLatency = d
		case "readerr", "writeerr", "operr", "tornwrite", "bitflip", "readflip":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return f, fmt.Errorf("fault spec %s=%q: want a probability in [0,1]", key, val)
			}
			switch key {
			case "readerr":
				f.ReadErr = p
			case "writeerr":
				f.WriteErr = p
			case "operr":
				f.OpErr = p
			case "tornwrite":
				f.TornWrite = p
			case "bitflip":
				f.BitFlip = p
			case "readflip":
				f.ReadFlip = p
			}
		default:
			keys := []string{"seed", "readerr", "writeerr", "operr", "tornwrite", "bitflip", "readflip", "latency"}
			sort.Strings(keys)
			return f, fmt.Errorf("fault spec: unknown key %q (known: %s)", key, strings.Join(keys, ", "))
		}
	}
	return f, nil
}

// Package storagetest exports the storage.Backend contract as a
// reusable test suite: every backend — local, in-memory, networked, or
// a composition — must behave identically above the interface, and the
// only way to keep that true as backends multiply is to run them all
// through the same tests. Backend implementations call TestBackend
// from their own test files with a factory for a fresh, empty
// instance.
package storagetest

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

// Factory returns a fresh, empty backend for one subtest. Register
// cleanup on t; the suite never closes backends itself.
type Factory func(t *testing.T) storage.Backend

// TestBackend runs the full Backend contract over backends produced
// by open. Each subtest gets its own fresh instance.
func TestBackend(t *testing.T, open Factory) {
	suite := []struct {
		name string
		run  func(t *testing.T, b storage.Backend)
	}{
		{"RoundTrip", testRoundTrip},
		{"MissIsNotExist", testMissIsNotExist},
		{"PutInvalidName", testPutInvalidName},
		{"PutFailureLeavesNoTrace", testPutFailureLeavesNoTrace},
		{"PutPanicCleansUp", testPutPanicCleansUp},
		{"WriterSeeks", testWriterSeeks},
		{"ListAndNamespaces", testListAndNamespaces},
		{"RenameQuarantines", testRenameQuarantines},
		{"SweepAgesOutQuarantine", testSweepAgesOutQuarantine},
		{"ConcurrentPuts", testConcurrentPuts},
		{"Probe", testProbe},
	}
	for _, tc := range suite {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, open(t))
		})
	}
}

// Put writes content as name, failing the test on error.
func Put(t *testing.T, b storage.Backend, name, content string) {
	t.Helper()
	if err := b.Put(name, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	}); err != nil {
		t.Fatalf("put %q: %v", name, err)
	}
}

// Get reads name fully, failing the test on error.
func Get(t *testing.T, b storage.Backend, name string) string {
	t.Helper()
	rc, err := b.Get(name)
	if err != nil {
		t.Fatalf("get %q: %v", name, err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read %q: %v", name, err)
	}
	return string(data)
}

func testRoundTrip(t *testing.T, b storage.Backend) {
	Put(t, b, "a.bin", "hello")
	if got := Get(t, b, "a.bin"); got != "hello" {
		t.Fatalf("round trip: got %q", got)
	}
	// Replace atomically.
	Put(t, b, "a.bin", "world")
	if got := Get(t, b, "a.bin"); got != "world" {
		t.Fatalf("replace: got %q", got)
	}
	info, err := b.Stat("a.bin")
	if err != nil || info.Size != 5 {
		t.Fatalf("stat: %+v, %v", info, err)
	}
}

func testMissIsNotExist(t *testing.T, b storage.Backend) {
	if _, err := b.Get("nope.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("get miss: %v", err)
	}
	if _, err := b.Stat("nope.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stat miss: %v", err)
	}
	if err := b.Delete("nope.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("delete miss: %v", err)
	}
}

func testPutInvalidName(t *testing.T, b storage.Backend) {
	for _, name := range []string{"", "/abs.bin", "a/../b.bin", "trail/"} {
		err := b.Put(name, func(w io.Writer) error {
			_, err := io.WriteString(w, "x")
			return err
		})
		if err == nil {
			t.Fatalf("put %q succeeded, want invalid-name error", name)
		}
		if errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("put %q: invalid name must not classify as a miss: %v", name, err)
		}
	}
}

func testPutFailureLeavesNoTrace(t *testing.T, b storage.Backend) {
	boom := errors.New("generator exploded")
	Put(t, b, "keep.bin", "original")
	err := b.Put("keep.bin", func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("put must return the callback error identically, got %v", err)
	}
	if got := Get(t, b, "keep.bin"); got != "original" {
		t.Fatalf("failed put replaced the object: %q", got)
	}
	// A failed put of a NEW object must not create it.
	if err := b.Put("new.bin", func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if _, err := b.Stat("new.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("failed put created the object: %v", err)
	}
}

func testPutPanicCleansUp(t *testing.T, b storage.Backend) {
	func() {
		defer func() { recover() }()
		//rapwam:allow errortaxonomy the writer panics deliberately; the assertion below is that no object materialized
		b.Put("x.bin", func(w io.Writer) error {
			io.WriteString(w, "half")
			panic("writer died")
		})
	}()
	if _, err := b.Stat("x.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("panicking put left an object: %v", err)
	}
}

func testWriterSeeks(t *testing.T, b storage.Backend) {
	// The trace codec back-patches its header; every backend must hand
	// Put an io.WriteSeeker.
	err := b.Put("patched.bin", func(w io.Writer) error {
		ws, ok := w.(io.WriteSeeker)
		if !ok {
			return fmt.Errorf("writer is %T, not an io.WriteSeeker", w)
		}
		if _, err := io.WriteString(ws, "????rest"); err != nil {
			return err
		}
		if _, err := ws.Seek(0, io.SeekStart); err != nil {
			return err
		}
		_, err := io.WriteString(ws, "head")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := Get(t, b, "patched.bin"); got != "headrest" {
		t.Fatalf("patched object: %q", got)
	}
}

func testListAndNamespaces(t *testing.T, b storage.Backend) {
	Put(t, b, "b.bin", "1")
	Put(t, b, "a.bin", "2")
	Put(t, b, storage.QuarantinePrefix+"c.bin", "3")
	root, err := b.List("")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(root) != "[a.bin b.bin]" {
		t.Fatalf("root list: %v (quarantine must not leak into the root namespace)", root)
	}
	quar, err := b.List(storage.QuarantinePrefix)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(quar) != "[quarantine/c.bin]" {
		t.Fatalf("quarantine list: %v", quar)
	}
	// Absent sub-namespace is empty, not an error.
	none, err := b.List("absent/")
	if err != nil || len(none) != 0 {
		t.Fatalf("absent namespace: %v, %v", none, err)
	}
}

func testRenameQuarantines(t *testing.T, b storage.Backend) {
	Put(t, b, "bad.bin", "damaged")
	if err := b.Rename("bad.bin", storage.QuarantinePrefix+"bad.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Stat("bad.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("rename left the source: %v", err)
	}
	if got := Get(t, b, storage.QuarantinePrefix+"bad.bin"); got != "damaged" {
		t.Fatalf("quarantined content: %q", got)
	}
}

func testSweepAgesOutQuarantine(t *testing.T, b storage.Backend) {
	Put(t, b, "live.bin", "keep me")
	Put(t, b, storage.QuarantinePrefix+"old.bin", "age me out")
	// Age by waiting: backends time quarantine entries by commit time,
	// and the factory may not expose the medium (a peer backend's
	// objects live in another process's namespace).
	time.Sleep(50 * time.Millisecond)
	if n := b.Sweep(10 * time.Millisecond); n != 1 {
		t.Fatalf("sweep removed %d objects, want 1", n)
	}
	if _, err := b.Stat(storage.QuarantinePrefix + "old.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("aged quarantine object survived: %v", err)
	}
	if got := Get(t, b, "live.bin"); got != "keep me" {
		t.Fatalf("sweep touched a live object: %q", got)
	}
}

func testConcurrentPuts(t *testing.T, b storage.Backend) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			content := strings.Repeat(fmt.Sprintf("writer-%d ", i), 100)
			//rapwam:allow errortaxonomy racing writers may fail benignly; the test asserts one intact winner afterwards
			b.Put("contested.bin", func(w io.Writer) error {
				_, err := io.WriteString(w, content)
				return err
			})
		}(i)
	}
	wg.Wait()
	// Whoever won, the object must be one writer's COMPLETE output —
	// never interleaved or truncated.
	got := Get(t, b, "contested.bin")
	matched := false
	for i := 0; i < 8; i++ {
		if got == strings.Repeat(fmt.Sprintf("writer-%d ", i), 100) {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("contested object is not any single writer's output (%d bytes)", len(got))
	}
}

func testProbe(t *testing.T, b storage.Backend) {
	if err := storage.Probe(b); err != nil {
		t.Fatal(err)
	}
	// The probe cleans up after itself.
	names, err := b.List("")
	if err != nil || len(names) != 0 {
		t.Fatalf("probe left droppings: %v, %v", names, err)
	}
}

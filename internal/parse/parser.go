package parse

import (
	"fmt"
)

// opDef describes an operator.
type opDef struct {
	priority int
	typ      string // xfx, xfy, yfx, fy, fx
}

// Standard-Prolog operator subset plus the &-Prolog parallel operators.
var (
	infixTable = map[string]opDef{
		":-":   {1200, "xfx"},
		"-->":  {1200, "xfx"},
		";":    {1100, "xfy"},
		"|":    {1100, "xfy"}, // CGE: conditions | parallel goals
		"->":   {1050, "xfy"},
		",":    {1000, "xfy"},
		"&":    {950, "xfy"}, // AND-parallel conjunction
		"=":    {700, "xfx"},
		"\\=":  {700, "xfx"},
		"==":   {700, "xfx"},
		"\\==": {700, "xfx"},
		"@<":   {700, "xfx"},
		"@>":   {700, "xfx"},
		"@=<":  {700, "xfx"},
		"@>=":  {700, "xfx"},
		"is":   {700, "xfx"},
		"=..":  {700, "xfx"},
		"=:=":  {700, "xfx"},
		"=\\=": {700, "xfx"},
		"<":    {700, "xfx"},
		">":    {700, "xfx"},
		"=<":   {700, "xfx"},
		">=":   {700, "xfx"},
		"+":    {500, "yfx"},
		"-":    {500, "yfx"},
		"*":    {400, "yfx"},
		"/":    {400, "yfx"},
		"//":   {400, "yfx"},
		"mod":  {400, "yfx"},
		"rem":  {400, "yfx"},
		"^":    {200, "xfy"},
	}
	prefixTable = map[string]opDef{
		":-":  {1200, "fx"},
		"?-":  {1200, "fx"},
		"\\+": {900, "fy"},
		"-":   {200, "fy"},
		"+":   {200, "fy"},
	}
)

// parser consumes tokens from a lexer with one token of lookahead.
type parser struct {
	lx   *lexer
	tok  token
	vars map[string]*Var // per-clause variable interning
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

// intern returns the clause-scoped variable for name ("_" is always fresh).
func (p *parser) intern(name string) *Var {
	if name == "_" {
		return &Var{Name: "_"}
	}
	if v, ok := p.vars[name]; ok {
		return v
	}
	v := &Var{Name: name}
	p.vars[name] = v
	return v
}

// readClause parses one clause terminated by '.', or returns (nil, nil)
// at end of input.
func (p *parser) readClause() (Term, error) {
	if p.tok.kind == tokEOF {
		return nil, nil
	}
	p.vars = map[string]*Var{}
	t, err := p.parse(1200)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEnd {
		return nil, p.errf("expected '.' after clause, got %v", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return t, nil
}

// parse reads a term with priority at most maxPrec (precedence climbing).
func (p *parser) parse(maxPrec int) (Term, error) {
	left, leftPrec, err := p.parsePrimary(maxPrec)
	if err != nil {
		return nil, err
	}
	return p.parseInfix(left, leftPrec, maxPrec)
}

func (p *parser) parseInfix(left Term, leftPrec, maxPrec int) (Term, error) {
	for {
		var name string
		parenArg := false
		switch p.tok.kind {
		case tokAtom:
			name = p.tok.text
		case tokFunctor:
			// An infix operator directly followed by '(' lexes as a
			// functor token, e.g. "X/(Y*Z)"; the right operand is the
			// parenthesized term.
			name = p.tok.text
			parenArg = true
		case tokPunct:
			if p.tok.text == "," || p.tok.text == "|" {
				name = p.tok.text
			} else {
				return left, nil
			}
		default:
			return left, nil
		}
		def, ok := infixTable[name]
		if !ok || def.priority > maxPrec {
			return left, nil
		}
		leftMax, rightMax := def.priority-1, def.priority-1
		switch def.typ {
		case "xfy":
			rightMax = def.priority
		case "yfx":
			leftMax = def.priority
		}
		if leftPrec > leftMax {
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var right Term
		var err error
		if parenArg {
			right, err = p.parse(1200)
			if err != nil {
				return nil, err
			}
			if !(p.tok.kind == tokPunct && p.tok.text == ")") {
				return nil, p.errf("expected ')' after %s(...), got %v", name, p.tok)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			right, err = p.parse(rightMax)
			if err != nil {
				return nil, err
			}
		}
		left = Comp(name, left, right)
		leftPrec = def.priority
	}
}

// parsePrimary parses a primary term, returning it and its priority
// (operators used as atoms carry their priority).
func (p *parser) parsePrimary(maxPrec int) (Term, int, error) {
	switch p.tok.kind {
	case tokInt:
		v := p.tok.ival
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		return Int(v), 0, nil

	case tokVar:
		v := p.intern(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		return v, 0, nil

	case tokFunctor:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		var args []Term
		for {
			a, err := p.parse(999) // below ','
			if err != nil {
				return nil, 0, err
			}
			args = append(args, a)
			if p.tok.kind == tokPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, 0, err
				}
				continue
			}
			break
		}
		if !(p.tok.kind == tokPunct && p.tok.text == ")") {
			return nil, 0, p.errf("expected ')' in arguments of %s, got %v", name, p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		return Comp(name, args...), 0, nil

	case tokPunct:
		switch p.tok.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			t, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if !(p.tok.kind == tokPunct && p.tok.text == ")") {
				return nil, 0, p.errf("expected ')', got %v", p.tok)
			}
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			return t, 0, nil
		case "[":
			return p.parseList()
		case "{":
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			if p.tok.kind == tokPunct && p.tok.text == "}" {
				if err := p.advance(); err != nil {
					return nil, 0, err
				}
				return Atom("{}"), 0, nil
			}
			t, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if !(p.tok.kind == tokPunct && p.tok.text == "}") {
				return nil, 0, p.errf("expected '}', got %v", p.tok)
			}
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			return Comp("{}", t), 0, nil
		}
		return nil, 0, p.errf("unexpected %v", p.tok)

	case tokAtom:
		name := p.tok.text
		// Prefix operator?
		if def, ok := prefixTable[name]; ok && def.priority <= maxPrec {
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			// Negative numeric literal.
			if name == "-" && p.tok.kind == tokInt {
				v := p.tok.ival
				if err := p.advance(); err != nil {
					return nil, 0, err
				}
				return Int(-v), 0, nil
			}
			if p.startsTerm() {
				argMax := def.priority
				if def.typ == "fx" {
					argMax--
				}
				arg, err := p.parse(argMax)
				if err != nil {
					return nil, 0, err
				}
				return Comp(name, arg), def.priority, nil
			}
			// Operator used as a plain atom.
			return Atom(name), def.priority, nil
		}
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		prec := 0
		if def, ok := infixTable[name]; ok {
			prec = def.priority
		}
		return Atom(name), prec, nil

	case tokEnd:
		return nil, 0, p.errf("unexpected end of clause")
	default:
		return nil, 0, p.errf("unexpected %v", p.tok)
	}
}

// startsTerm reports whether the current token can begin a term.
func (p *parser) startsTerm() bool {
	switch p.tok.kind {
	case tokInt, tokVar, tokFunctor:
		return true
	case tokAtom:
		return true
	case tokPunct:
		return p.tok.text == "(" || p.tok.text == "[" || p.tok.text == "{"
	}
	return false
}

func (p *parser) parseList() (Term, int, error) {
	if err := p.advance(); err != nil { // consume '['
		return nil, 0, err
	}
	if p.tok.kind == tokPunct && p.tok.text == "]" {
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		return Nil, 0, nil
	}
	var items []Term
	for {
		t, err := p.parse(999)
		if err != nil {
			return nil, 0, err
		}
		items = append(items, t)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, 0, err
			}
			continue
		}
		break
	}
	tail := Term(Nil)
	if p.tok.kind == tokPunct && p.tok.text == "|" {
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		t, err := p.parse(999)
		if err != nil {
			return nil, 0, err
		}
		tail = t
	}
	if !(p.tok.kind == tokPunct && p.tok.text == "]") {
		return nil, 0, p.errf("expected ']', got %v", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, 0, err
	}
	return MkList(items, tail), 0, nil
}

// Program parses an entire source text into its clause terms.
func Program(src string) ([]Term, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out []Term
	for {
		c, err := p.readClause()
		if err != nil {
			return nil, err
		}
		if c == nil {
			return out, nil
		}
		out = append(out, c)
	}
}

// OneTerm parses a single term (no trailing '.') from src.
func OneTerm(src string) (Term, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	p.vars = map[string]*Var{}
	t, err := p.parse(1200)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF && p.tok.kind != tokEnd {
		return nil, p.errf("trailing input: %v", p.tok)
	}
	return t, nil
}

package parse

import (
	"testing"
	"testing/quick"
)

func mustTerm(t *testing.T, src string) Term {
	t.Helper()
	tm, err := OneTerm(src)
	if err != nil {
		t.Fatalf("OneTerm(%q): %v", src, err)
	}
	return tm
}

func TestAtomsAndIntegers(t *testing.T) {
	cases := map[string]string{
		"foo":           "foo",
		"42":            "42",
		"-7":            "-7",
		"'hello world'": "'hello world'",
		"[]":            "[]",
	}
	for src, want := range cases {
		if got := mustTerm(t, src).String(); got != want {
			t.Errorf("%q parsed to %q, want %q", src, got, want)
		}
	}
}

func TestCompoundTerms(t *testing.T) {
	tm := mustTerm(t, "f(a, g(X, 1), [b,c])")
	c, ok := tm.(*Compound)
	if !ok || c.Functor != "f" || c.Arity() != 3 {
		t.Fatalf("got %v", tm)
	}
	if got := c.String(); got != "f(a,g(X,1),[b,c])" {
		t.Errorf("String = %q", got)
	}
}

func TestVariableInterningPerClause(t *testing.T) {
	tm := mustTerm(t, "f(X, X, Y, _, _)")
	c := tm.(*Compound)
	if c.Args[0] != c.Args[1] {
		t.Error("two X occurrences are different variables")
	}
	if c.Args[0] == c.Args[2] {
		t.Error("X and Y are the same variable")
	}
	if c.Args[3] == c.Args[4] {
		t.Error("two _ occurrences were interned together")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	cases := map[string]string{
		"1+2*3":    "1+2*3", // * binds tighter
		"(1+2)*3":  "(1+2)*3",
		"1-2-3":    "1-2-3", // yfx: (1-2)-3
		"X is Y+1": "X is Y+1",
		"a:-b,c":   "a:-b,c",
		"a,b,c":    "a,b,c", // xfy
		"2^3^4":    "2^3^4", // xfy
	}
	for src, want := range cases {
		if got := mustTerm(t, src).String(); got != want {
			t.Errorf("%q parsed to %q, want %q", src, got, want)
		}
	}
}

func TestPrecedenceShapes(t *testing.T) {
	// (1-2)-3 : left nested
	tm := mustTerm(t, "1-2-3").(*Compound)
	if _, ok := tm.Args[0].(*Compound); !ok {
		t.Error("1-2-3 should nest left")
	}
	// 2^3^4 : right nested
	tm = mustTerm(t, "2^3^4").(*Compound)
	if _, ok := tm.Args[1].(*Compound); !ok {
		t.Error("2^3^4 should nest right")
	}
	// a,b,c : right nested
	tm = mustTerm(t, "a,b,c").(*Compound)
	if tm.Functor != "," {
		t.Fatalf("got %v", tm)
	}
	if inner, ok := tm.Args[1].(*Compound); !ok || inner.Functor != "," {
		t.Error("conjunction should nest right")
	}
}

func TestLists(t *testing.T) {
	tm := mustTerm(t, "[1,2|T]")
	c := tm.(*Compound)
	if c.Functor != "." {
		t.Fatalf("got %v", tm)
	}
	if got := tm.String(); got != "[1,2|T]" {
		t.Errorf("String = %q", got)
	}
	items, ok := ListSlice(mustTerm(t, "[a,b,c]"))
	if !ok || len(items) != 3 {
		t.Errorf("ListSlice: %v %v", items, ok)
	}
	if _, ok := ListSlice(mustTerm(t, "[a|X]")); ok {
		t.Error("partial list reported as proper")
	}
}

func TestCGESyntax(t *testing.T) {
	// The paper's own example clause.
	tm := mustTerm(t, "(indep(X,Z), ground(Y) | g(X,Y) & h(Y,Z))")
	c, ok := tm.(*Compound)
	if !ok || c.Functor != "|" || c.Arity() != 2 {
		t.Fatalf("CGE parsed to %v", tm)
	}
	cond := c.Args[0].(*Compound)
	if cond.Functor != "," {
		t.Errorf("condition part: %v", cond)
	}
	par := c.Args[1].(*Compound)
	if par.Functor != "&" {
		t.Errorf("parallel part: %v", par)
	}
}

func TestUnconditionalParallelConjunction(t *testing.T) {
	tm := mustTerm(t, "p(X) & q(Y) & r(Z)")
	c := tm.(*Compound)
	if c.Functor != "&" {
		t.Fatalf("got %v", tm)
	}
	// & is xfy: p & (q & r)
	if inner, ok := c.Args[1].(*Compound); !ok || inner.Functor != "&" {
		t.Error("& should nest right")
	}
}

func TestAmpersandBindsTighterThanComma(t *testing.T) {
	tm := mustTerm(t, "a & b, c")
	c := tm.(*Compound)
	if c.Functor != "," {
		t.Fatalf("got %v, want ',' at top", tm)
	}
	if inner, ok := c.Args[0].(*Compound); !ok || inner.Functor != "&" {
		t.Errorf("left of ',' should be a&b, got %v", c.Args[0])
	}
}

func TestProgramClauses(t *testing.T) {
	src := `
		% list concatenation
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
	`
	clauses, err := Program(src)
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	if len(clauses) != 2 {
		t.Fatalf("got %d clauses", len(clauses))
	}
	rule := clauses[1].(*Compound)
	if rule.Functor != ":-" {
		t.Errorf("second clause: %v", rule)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "a. /* block\ncomment */ b. % line\nc."
	clauses, err := Program(src)
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	if len(clauses) != 3 {
		t.Errorf("got %d clauses, want 3", len(clauses))
	}
}

func TestCutAndControlAtoms(t *testing.T) {
	tm := mustTerm(t, "f(X) :- X > 0, !, g(X)")
	if tm.(*Compound).Functor != ":-" {
		t.Fatalf("got %v", tm)
	}
}

func TestErrorCases(t *testing.T) {
	bad := []string{
		"f(a",       // unclosed args
		"[1,2",      // unclosed list
		"'oops",     // unterminated quote
		"f(a) g(b)", // no operator between terms (trailing)
		"/* nope",   // unterminated comment
	}
	for _, src := range bad {
		if _, err := OneTerm(src); err == nil {
			t.Errorf("OneTerm(%q) succeeded", src)
		}
	}
	if _, err := Program("f(a) :- ."); err == nil {
		t.Error("empty body accepted")
	}
}

func TestMissingClauseDot(t *testing.T) {
	if _, err := Program("a :- b"); err == nil {
		t.Error("clause without '.' accepted")
	}
}

func TestQuotedAtomEscapes(t *testing.T) {
	tm := mustTerm(t, `'a\'b\nc'`)
	a, ok := tm.(Atom)
	if !ok || string(a) != "a'b\nc" {
		t.Errorf("got %q", a)
	}
}

func TestVarsCollector(t *testing.T) {
	tm := mustTerm(t, "f(X, g(Y, X), Z)")
	vs := Vars(tm)
	if len(vs) != 3 {
		t.Fatalf("got %d vars", len(vs))
	}
	if vs[0].Name != "X" || vs[1].Name != "Y" || vs[2].Name != "Z" {
		t.Errorf("order: %v %v %v", vs[0], vs[1], vs[2])
	}
}

func TestPrintParseRoundTripProperty(t *testing.T) {
	// Property: printing a generated ground term and reparsing yields
	// the same printed form.
	gen := func(depth int, seed int64) Term {
		s := seed
		next := func(n int64) int64 {
			s = s*6364136223846793005 + 1442695040888963407
			r := s % n
			if r < 0 {
				r = -r
			}
			return r
		}
		var build func(d int) Term
		build = func(d int) Term {
			if d <= 0 || next(3) == 0 {
				if next(2) == 0 {
					return Int(next(1000) - 500)
				}
				return Atom([]string{"a", "foo", "bar_baz", "x1"}[next(4)])
			}
			n := int(next(3)) + 1
			args := make([]Term, n)
			for i := range args {
				args[i] = build(d - 1)
			}
			return Comp([]string{"f", "g", "h"}[next(3)], args...)
		}
		return build(depth)
	}
	f := func(seed int64) bool {
		t1 := gen(4, seed)
		s1 := t1.String()
		t2, err := OneTerm(s1)
		if err != nil {
			return false
		}
		return t2.String() == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArithmeticComparisonOperators(t *testing.T) {
	for _, src := range []string{"X =:= Y", "X =\\= Y", "X =< Y", "X >= Y", "X \\== Y", "X == Y"} {
		tm := mustTerm(t, src)
		if _, ok := tm.(*Compound); !ok {
			t.Errorf("%q: got %v", src, tm)
		}
	}
}

func TestNegativeNumberInList(t *testing.T) {
	items, ok := ListSlice(mustTerm(t, "[-1, -2, 3]"))
	if !ok || len(items) != 3 {
		t.Fatalf("got %v", items)
	}
	if items[0].(Int) != -1 {
		t.Errorf("first = %v", items[0])
	}
}

// Package parse implements the Prolog reader used by the reproduction:
// a tokenizer and operator-precedence parser for the subset of Prolog
// needed by the paper's benchmarks, including the &-Prolog Conditional
// Graph Expression (CGE) syntax:
//
//	f(X,Y,Z) :- (indep(X,Z), ground(Y) | g(X,Y) & h(Y,Z)).
//
// where "&" separates goals to run in AND-parallel and "|" separates the
// independence/groundness conditions from the parallel conjunction.
package parse

import (
	"fmt"
	"strings"
)

// Term is a parsed Prolog term: Atom, Int, *Var or *Compound.
type Term interface {
	String() string
}

// Atom is a Prolog atom (constant).
type Atom string

// String renders the atom, quoting when necessary.
func (a Atom) String() string {
	s := string(a)
	if s == "" {
		return "''"
	}
	if s == "[]" || s == "!" || s == ";" || s == "," {
		return s
	}
	plain := s[0] >= 'a' && s[0] <= 'z'
	if plain {
		for _, c := range s {
			if !isAlnum(byte(c)) {
				plain = false
				break
			}
		}
	}
	if plain || isAllSymbolic(s) {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
}

// Int is a Prolog integer.
type Int int64

// String renders the integer.
func (i Int) String() string { return fmt.Sprintf("%d", int64(i)) }

// Var is a Prolog variable. Pointer identity defines variable identity:
// the reader interns named variables per clause.
type Var struct {
	Name string
}

// String returns the variable name.
func (v *Var) String() string { return v.Name }

// Compound is a compound term.
type Compound struct {
	Functor string
	Args    []Term
}

// Comp builds a compound term.
func Comp(functor string, args ...Term) *Compound {
	return &Compound{Functor: functor, Args: args}
}

// Arity returns the number of arguments.
func (c *Compound) Arity() int { return len(c.Args) }

// String renders the term with minimal operator awareness (lists and a
// few infix operators print naturally; everything else is canonical).
func (c *Compound) String() string {
	if c.Functor == "." && len(c.Args) == 2 {
		return c.listString()
	}
	if len(c.Args) == 2 {
		if op, ok := printOps[c.Functor]; ok {
			leftMax, rightMax := op.prec-1, op.prec-1
			switch op.typ {
			case "xfy":
				rightMax = op.prec
			case "yfx":
				leftMax = op.prec
			}
			name := c.Functor
			if isAlnumOp(name) {
				name = " " + name + " "
			}
			return fmt.Sprintf("%s%s%s", paren(c.Args[0], leftMax), name, paren(c.Args[1], rightMax))
		}
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return Atom(c.Functor).String() + "(" + strings.Join(parts, ",") + ")"
}

func isAlnumOp(s string) bool {
	return s != "" && isLower(s[0])
}

// paren wraps t in parentheses when its operator priority exceeds what
// the surrounding context allows.
func paren(t Term, maxPrec int) string {
	if c, ok := t.(*Compound); ok && len(c.Args) == 2 {
		if op, ok := printOps[c.Functor]; ok && op.prec > maxPrec {
			return "(" + c.String() + ")"
		}
	}
	return t.String()
}

func (c *Compound) listString() string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(c.Args[0].String())
	t := c.Args[1]
	for {
		switch tt := t.(type) {
		case Atom:
			if tt == "[]" {
				b.WriteByte(']')
				return b.String()
			}
		case *Compound:
			if tt.Functor == "." && len(tt.Args) == 2 {
				b.WriteByte(',')
				b.WriteString(tt.Args[0].String())
				t = tt.Args[1]
				continue
			}
		}
		b.WriteByte('|')
		b.WriteString(t.String())
		b.WriteByte(']')
		return b.String()
	}
}

// MkList builds a proper list term from items with the given tail
// (Atom("[]") for a proper list).
func MkList(items []Term, tail Term) Term {
	out := tail
	for i := len(items) - 1; i >= 0; i-- {
		out = Comp(".", items[i], out)
	}
	return out
}

// Nil is the empty list atom.
var Nil = Atom("[]")

// IsNil reports whether t is the empty list.
func IsNil(t Term) bool { a, ok := t.(Atom); return ok && a == "[]" }

// ListSlice flattens a proper list term into a slice; ok is false if the
// term is not a proper list.
func ListSlice(t Term) (items []Term, ok bool) {
	for {
		switch tt := t.(type) {
		case Atom:
			if tt == "[]" {
				return items, true
			}
			return nil, false
		case *Compound:
			if tt.Functor == "." && len(tt.Args) == 2 {
				items = append(items, tt.Args[0])
				t = tt.Args[1]
				continue
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// Vars returns the distinct variables of t in first-occurrence order.
func Vars(t Term) []*Var {
	var out []*Var
	seen := map[*Var]bool{}
	var walk func(Term)
	walk = func(t Term) {
		switch tt := t.(type) {
		case *Var:
			if !seen[tt] {
				seen[tt] = true
				out = append(out, tt)
			}
		case *Compound:
			for _, a := range tt.Args {
				walk(a)
			}
		}
	}
	walk(t)
	return out
}

// printOps lists the infix operators recognized by the printer, mirroring
// the parser's operator table so printing and reparsing agree.
type printOp struct {
	prec int
	typ  string
}

var printOps = map[string]printOp{
	":-": {1200, "xfx"}, ";": {1100, "xfy"}, "|": {1100, "xfy"},
	"->": {1050, "xfy"}, ",": {1000, "xfy"}, "&": {950, "xfy"},
	"=": {700, "xfx"}, "\\=": {700, "xfx"}, "==": {700, "xfx"},
	"\\==": {700, "xfx"}, "is": {700, "xfx"}, "=..": {700, "xfx"},
	"=:=": {700, "xfx"}, "=\\=": {700, "xfx"}, "<": {700, "xfx"},
	">": {700, "xfx"}, "=<": {700, "xfx"}, ">=": {700, "xfx"},
	"+": {500, "yfx"}, "-": {500, "yfx"}, "*": {400, "yfx"},
	"/": {400, "yfx"}, "//": {400, "yfx"}, "mod": {400, "yfx"},
	"rem": {400, "yfx"}, "^": {200, "xfy"},
}

package parse

import "fmt"

// token kinds
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokAtom
	tokVar
	tokInt
	tokPunct   // ( ) [ ] , |
	tokFunctor // atom immediately followed by '(' — e.g. "f("
	tokEnd     // clause-terminating '.'
)

type token struct {
	kind tokKind
	text string
	ival int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokInt:
		return fmt.Sprintf("%d", t.ival)
	case tokEnd:
		return "."
	default:
		return t.text
	}
}

func isLower(c byte) bool { return c >= 'a' && c <= 'z' }
func isUpper(c byte) bool { return c >= 'A' && c <= 'Z' || c == '_' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool { return isLower(c) || isUpper(c) || isDigit(c) }

const symbolChars = "+-*/\\^<>=~:.?@#$&"

func isSymbol(c byte) bool {
	for i := 0; i < len(symbolChars); i++ {
		if symbolChars[i] == c {
			return true
		}
	}
	return false
}

func isAllSymbolic(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isSymbol(s[i]) {
			return false
		}
	}
	return true
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// skipWS consumes whitespace and comments.
func (l *lexer) skipWS() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for {
				if l.pos+1 >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipWS(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		var v int64
		for _, d := range l.src[start:l.pos] {
			v = v*10 + int64(d-'0')
		}
		return token{kind: tokInt, ival: v, line: l.line}, nil

	case isLower(c):
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if l.pos < len(l.src) && l.src[l.pos] == '(' {
			l.pos++
			return token{kind: tokFunctor, text: text, line: l.line}, nil
		}
		return token{kind: tokAtom, text: text, line: l.line}, nil

	case isUpper(c):
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokVar, text: l.src[start:l.pos], line: l.line}, nil

	case c == '\'':
		l.pos++
		var buf []byte
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated quoted atom")
			}
			ch := l.src[l.pos]
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos += 2
				switch l.src[l.pos-1] {
				case 'n':
					buf = append(buf, '\n')
				case 't':
					buf = append(buf, '\t')
				case '\\':
					buf = append(buf, '\\')
				case '\'':
					buf = append(buf, '\'')
				default:
					buf = append(buf, l.src[l.pos-1])
				}
				continue
			}
			if ch == '\'' {
				l.pos++
				break
			}
			if ch == '\n' {
				l.line++
			}
			buf = append(buf, ch)
			l.pos++
		}
		text := string(buf)
		if l.pos < len(l.src) && l.src[l.pos] == '(' {
			l.pos++
			return token{kind: tokFunctor, text: text, line: l.line}, nil
		}
		return token{kind: tokAtom, text: text, line: l.line}, nil

	case c == '(' || c == ')' || c == '[' || c == ']' || c == ',' || c == '|' || c == '{' || c == '}':
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil

	case c == '!' || c == ';':
		l.pos++
		return token{kind: tokAtom, text: string(c), line: l.line}, nil

	case isSymbol(c):
		for l.pos < len(l.src) && isSymbol(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		// A solo '.' followed by layout or EOF terminates the clause.
		if text == "." {
			return token{kind: tokEnd, line: l.line}, nil
		}
		if l.pos < len(l.src) && l.src[l.pos] == '(' && text != "," {
			l.pos++
			return token{kind: tokFunctor, text: text, line: l.line}, nil
		}
		return token{kind: tokAtom, text: text, line: l.line}, nil

	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

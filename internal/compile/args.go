package compile

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/parse"
)

// constWord converts an atomic term to its tagged word.
func (cc *clauseCtx) constWord(t parse.Term) (mem.Word, bool) {
	switch a := t.(type) {
	case parse.Atom:
		return mem.MakeCon(cc.e.syms.Atom(string(a))), true
	case parse.Int:
		return mem.MakeInt(int64(a)), true
	}
	return 0, false
}

// --- head compilation (get/unify in read-write mode) ---

func (cc *clauseCtx) compileHead() error {
	args := argsOf(cc.head)
	for i, a := range args {
		if err := cc.getArg(a, int16(i)); err != nil {
			return err
		}
	}
	return nil
}

func (cc *clauseCtx) getArg(a parse.Term, i int16) error {
	switch t := a.(type) {
	case *parse.Var:
		vi := cc.vars[t]
		if vi.count == 1 && !vi.perm {
			return nil // void
		}
		if !vi.assigned {
			vi.assigned = true
			if vi.perm {
				cc.e.emit(isa.Instr{Op: isa.OpGetVariableY, R1: vi.yslot, R2: i})
			} else {
				cc.e.emit(isa.Instr{Op: isa.OpGetVariableX, R1: vi.xreg, R2: i})
			}
			return nil
		}
		if vi.perm {
			cc.e.emit(isa.Instr{Op: isa.OpGetValueY, R1: vi.yslot, R2: i})
		} else {
			cc.e.emit(isa.Instr{Op: isa.OpGetValueX, R1: vi.xreg, R2: i})
		}
		return nil
	case parse.Atom:
		if t == "[]" {
			cc.e.emit(isa.Instr{Op: isa.OpGetNil, R2: i})
			return nil
		}
		w, _ := cc.constWord(t)
		cc.e.emit(isa.Instr{Op: isa.OpGetConstant, W: w, R2: i})
		return nil
	case parse.Int:
		w, _ := cc.constWord(t)
		cc.e.emit(isa.Instr{Op: isa.OpGetConstant, W: w, R2: i})
		return nil
	case *parse.Compound:
		return cc.expandHead(i, t, false)
	}
	return fmt.Errorf("unsupported head argument %v", a)
}

// expandHead emits the get/unify sequence matching a compound head
// argument held in register reg. Nested compounds are collected into
// scratch registers and expanded depth-first afterwards (the S register
// is clobbered by each get_structure, so a level must finish its unify
// sequence first). Right-nested list/structure spines are walked
// iteratively and scratch registers are recycled, so register pressure
// stays bounded even for very long literals. releaseReg indicates reg
// itself is a scratch register that can be recycled once consumed.
func (cc *clauseCtx) expandHead(reg int16, t *parse.Compound, releaseReg bool) error {
	for {
		if t.Functor == "." && t.Arity() == 2 {
			cc.e.emit(isa.Instr{Op: isa.OpGetList, R2: reg})
		} else {
			f := cc.e.syms.Fun(t.Functor, t.Arity())
			cc.e.emit(isa.Instr{Op: isa.OpGetStructure, N: int32(f), R2: reg})
		}
		if releaseReg {
			// The get instruction has consumed the register.
			cc.releaseScratch(reg)
		}
		// Emit the unify sequence, deferring nested compounds.
		type child struct {
			reg  int16
			term *parse.Compound
		}
		var children []child
		for _, a := range t.Args {
			c, ok := a.(*parse.Compound)
			if !ok {
				if err := cc.emitUnifyArg(a); err != nil {
					return err
				}
				continue
			}
			r, err := cc.freshScratch()
			if err != nil {
				return err
			}
			cc.e.emit(isa.Instr{Op: isa.OpUnifyVariableX, R1: r})
			children = append(children, child{reg: r, term: c})
		}
		if len(children) == 0 {
			return nil
		}
		// Expand all but the last child recursively; iterate into the
		// last (tail-position) child so long spines use O(1) registers.
		for _, c := range children[:len(children)-1] {
			if err := cc.expandHead(c.reg, c.term, true); err != nil {
				return err
			}
		}
		last := children[len(children)-1]
		reg, t, releaseReg = last.reg, last.term, true
	}
}

// --- body argument loading (put/unify in write mode) ---

// putArg loads argument a into X register target. lastGoal enables
// put_unsafe_value for environment-resident permanent variables.
func (cc *clauseCtx) putArg(a parse.Term, target int16, lastGoal bool) error {
	switch t := a.(type) {
	case *parse.Var:
		vi := cc.vars[t]
		if !vi.assigned {
			vi.assigned = true
			if vi.perm {
				cc.e.emit(isa.Instr{Op: isa.OpPutVariableY, R1: vi.yslot, R2: target})
			} else {
				vi.heapSafe = true // fresh heap cell
				reg := vi.xreg
				if reg < 0 {
					reg = target // single occurrence as a plain argument
				}
				cc.e.emit(isa.Instr{Op: isa.OpPutVariableX, R1: reg, R2: target})
			}
			return nil
		}
		if vi.perm {
			if lastGoal && !vi.heapSafe {
				cc.e.emit(isa.Instr{Op: isa.OpPutUnsafeValue, R1: vi.yslot, R2: target})
				return nil
			}
			cc.e.emit(isa.Instr{Op: isa.OpPutValueY, R1: vi.yslot, R2: target})
			return nil
		}
		cc.e.emit(isa.Instr{Op: isa.OpPutValueX, R1: vi.xreg, R2: target})
		return nil
	case parse.Atom:
		if t == "[]" {
			cc.e.emit(isa.Instr{Op: isa.OpPutNil, R2: target})
			return nil
		}
		w, _ := cc.constWord(t)
		cc.e.emit(isa.Instr{Op: isa.OpPutConstant, W: w, R2: target})
		return nil
	case parse.Int:
		w, _ := cc.constWord(t)
		cc.e.emit(isa.Instr{Op: isa.OpPutConstant, W: w, R2: target})
		return nil
	case *parse.Compound:
		return cc.buildStruct(t, target)
	}
	return fmt.Errorf("unsupported goal argument %v", a)
}

// buildStruct builds compound term t bottom-up on the heap, leaving a
// reference in the target register. Scratch registers used for nested
// children are released as soon as the parent has consumed them, and
// list spines are built iteratively, so register pressure stays bounded
// even for very long list literals.
func (cc *clauseCtx) buildStruct(t *parse.Compound, target int16) error {
	if t.Functor == "." && t.Arity() == 2 {
		return cc.buildListChain(t, target)
	}
	// Build nested compound children first, into scratch registers;
	// grandchild scratches are released after each child completes.
	childReg := make(map[int]int16)
	for i, a := range t.Args {
		if c, ok := a.(*parse.Compound); ok {
			r, err := cc.freshScratch()
			if err != nil {
				return err
			}
			if err := cc.buildStruct(c, r); err != nil {
				return err
			}
			cc.scratch = r + 1 // free the child's internal scratches
			childReg[i] = r
		}
	}
	f := cc.e.syms.Fun(t.Functor, t.Arity())
	cc.e.emit(isa.Instr{Op: isa.OpPutStructure, N: int32(f), R2: target})
	for i, a := range t.Args {
		if r, ok := childReg[i]; ok {
			cc.e.emit(isa.Instr{Op: isa.OpUnifyValueX, R1: r})
			continue
		}
		if err := cc.emitUnifyArg(a); err != nil {
			return err
		}
	}
	return nil
}

// buildListChain builds a list term iteratively from the innermost cons
// outward, alternating between two scratch registers so that arbitrary
// length list literals compile in O(1) registers.
func (cc *clauseCtx) buildListChain(t *parse.Compound, target int16) error {
	// Collect the right spine.
	var items []parse.Term
	tail := parse.Term(nil)
	cur := t
	for {
		items = append(items, cur.Args[0])
		next, ok := cur.Args[1].(*parse.Compound)
		if ok && next.Functor == "." && next.Arity() == 2 {
			cur = next
			continue
		}
		tail = cur.Args[1]
		break
	}
	altA, err := cc.freshScratch()
	if err != nil {
		return err
	}
	altB, err := cc.freshScratch()
	if err != nil {
		return err
	}
	// Pre-build a compound tail.
	tailReg := int16(-1)
	if tc, ok := tail.(*parse.Compound); ok {
		r, err := cc.freshScratch()
		if err != nil {
			return err
		}
		if err := cc.buildStruct(tc, r); err != nil {
			return err
		}
		cc.scratch = r + 1
		tailReg = r
	}
	curReg := int16(-1)
	for k := len(items) - 1; k >= 0; k-- {
		mark := cc.scratch
		dst := target
		if k > 0 {
			if k%2 == 0 {
				dst = altA
			} else {
				dst = altB
			}
		}
		item := items[k]
		itemReg := int16(-1)
		if icomp, ok := item.(*parse.Compound); ok {
			r, err := cc.freshScratch()
			if err != nil {
				return err
			}
			if err := cc.buildStruct(icomp, r); err != nil {
				return err
			}
			itemReg = r
		}
		cc.e.emit(isa.Instr{Op: isa.OpPutList, R2: dst})
		if itemReg >= 0 {
			cc.e.emit(isa.Instr{Op: isa.OpUnifyValueX, R1: itemReg})
		} else if err := cc.emitUnifyArg(item); err != nil {
			return err
		}
		if k == len(items)-1 {
			if tailReg >= 0 {
				cc.e.emit(isa.Instr{Op: isa.OpUnifyValueX, R1: tailReg})
			} else if err := cc.emitUnifyArg(tail); err != nil {
				return err
			}
		} else {
			cc.e.emit(isa.Instr{Op: isa.OpUnifyValueX, R1: curReg})
		}
		curReg = dst
		cc.scratch = mark
	}
	return nil
}

// emitUnifyArg emits the unify instruction for a non-compound structure
// argument in write mode.
func (cc *clauseCtx) emitUnifyArg(a parse.Term) error {
	switch s := a.(type) {
	case *parse.Var:
		vi := cc.vars[s]
		if vi.count == 1 && !vi.perm {
			cc.e.emit(isa.Instr{Op: isa.OpUnifyVoid, N: 1})
			return nil
		}
		if !vi.assigned {
			vi.assigned = true
			vi.heapSafe = true
			if vi.perm {
				cc.e.emit(isa.Instr{Op: isa.OpUnifyVariableY, R1: vi.yslot})
			} else {
				cc.e.emit(isa.Instr{Op: isa.OpUnifyVariableX, R1: vi.xreg})
			}
			return nil
		}
		op := isa.OpUnifyValueX
		reg := vi.xreg
		if vi.perm {
			op = isa.OpUnifyValueY
			reg = vi.yslot
			if !vi.heapSafe {
				op = isa.OpUnifyLocalValueY
				vi.heapSafe = true
			}
		} else if !vi.heapSafe {
			op = isa.OpUnifyLocalValueX
			vi.heapSafe = true
		}
		cc.e.emit(isa.Instr{Op: op, R1: reg})
		return nil
	case parse.Atom, parse.Int:
		if parse.IsNil(s) {
			cc.e.emit(isa.Instr{Op: isa.OpUnifyNil})
			return nil
		}
		w, _ := cc.constWord(s)
		cc.e.emit(isa.Instr{Op: isa.OpUnifyConstant, W: w})
		return nil
	}
	return fmt.Errorf("unsupported structure argument %v", a)
}

// compileCall emits a user-predicate call (with LCO when tail is true).
func (cc *clauseCtx) compileCall(g itemCall, tail bool) error {
	if g.name == "call" && len(g.args) == 1 {
		if err := cc.putArg(g.args[0], 0, false); err != nil {
			return err
		}
		cc.e.emit(isa.Instr{Op: isa.OpBuiltin, N: int32(isa.BiCall), R1: 1})
		return nil
	}
	fidx := cc.e.syms.Fun(g.name, len(g.args))
	for i, a := range g.args {
		if err := cc.putArg(a, int16(i), tail); err != nil {
			return err
		}
	}
	if tail {
		if cc.needEnv {
			cc.e.emit(isa.Instr{Op: isa.OpDeallocate})
		}
		cc.e.callProc(isa.Instr{Op: isa.OpExecute, R1: int16(len(g.args))}, fidx)
		return nil
	}
	cc.e.callProc(isa.Instr{Op: isa.OpCall, R1: int16(len(g.args))}, fidx)
	// A call ends the current unit: temporaries die, so clear
	// assignment state of unassigned-safe temps is unnecessary (each
	// temp lives in exactly one unit by construction).
	return nil
}

// --- inline builtins ---

func (cc *clauseCtx) compileInline(g itemInline) error {
	switch g.name {
	case "fail":
		cc.e.emit(isa.Instr{Op: isa.OpFail})
		return nil
	case "is":
		return cc.compileIs(g.args[0], g.args[1])
	}
	if cmp, ok := compareOps[g.name]; ok {
		l, err := cc.emitArith(g.args[0])
		if err != nil {
			return err
		}
		r, err := cc.emitArith(g.args[1])
		if err != nil {
			return err
		}
		cc.e.emit(isa.Instr{Op: isa.OpCompare, R1: l, R2: r, N: int32(cmp)})
		return nil
	}
	bi, ok := inlineBuiltins[isa.Functor{Name: g.name, Arity: len(g.args)}]
	if !ok {
		return fmt.Errorf("unknown inline builtin %s/%d", g.name, len(g.args))
	}
	for i, a := range g.args {
		if err := cc.putArg(a, int16(i), false); err != nil {
			return err
		}
	}
	cc.e.emit(isa.Instr{Op: isa.OpBuiltin, N: int32(bi), R1: int16(len(g.args))})
	return nil
}

// compileIs compiles Result is Expr with register-based arithmetic.
func (cc *clauseCtx) compileIs(result, expr parse.Term) error {
	r, err := cc.emitArith(expr)
	if err != nil {
		return err
	}
	switch t := result.(type) {
	case *parse.Var:
		vi := cc.vars[t]
		if !vi.assigned {
			vi.assigned = true
			vi.heapSafe = true // integer value
			if vi.perm {
				cc.e.emit(isa.Instr{Op: isa.OpGetVariableY, R1: vi.yslot, R2: r})
			} else {
				if vi.xreg < 0 {
					vi.xreg = r
					return nil
				}
				cc.e.emit(isa.Instr{Op: isa.OpPutValueX, R1: r, R2: vi.xreg})
			}
			return nil
		}
		if vi.perm {
			cc.e.emit(isa.Instr{Op: isa.OpGetValueY, R1: vi.yslot, R2: r})
		} else {
			cc.e.emit(isa.Instr{Op: isa.OpGetValueX, R1: vi.xreg, R2: r})
		}
		return nil
	case parse.Int:
		s, err := cc.freshScratch()
		if err != nil {
			return err
		}
		cc.e.emit(isa.Instr{Op: isa.OpPutConstant, W: mem.MakeInt(int64(t)), R2: s})
		cc.e.emit(isa.Instr{Op: isa.OpGetValueX, R1: s, R2: r})
		return nil
	}
	return fmt.Errorf("invalid is/2 result %v", result)
}

// emitArith compiles an arithmetic expression into a register holding an
// integer word, using scratch registers.
func (cc *clauseCtx) emitArith(expr parse.Term) (int16, error) {
	switch t := expr.(type) {
	case parse.Int:
		s, err := cc.freshScratch()
		if err != nil {
			return 0, err
		}
		cc.e.emit(isa.Instr{Op: isa.OpPutConstant, W: mem.MakeInt(int64(t)), R2: s})
		return s, nil
	case *parse.Var:
		vi := cc.vars[t]
		if !vi.assigned {
			return 0, fmt.Errorf("variable %s unbound in arithmetic", t.Name)
		}
		src := vi.xreg
		if vi.perm {
			s, err := cc.freshScratch()
			if err != nil {
				return 0, err
			}
			cc.e.emit(isa.Instr{Op: isa.OpPutValueY, R1: vi.yslot, R2: s})
			src = s
		}
		d, err := cc.freshScratch()
		if err != nil {
			return 0, err
		}
		cc.e.emit(isa.Instr{Op: isa.OpArith, R1: d, R2: src, N: int32(isa.ArithDeref)})
		return d, nil
	case *parse.Compound:
		if t.Functor == "-" && t.Arity() == 1 {
			a, err := cc.emitArith(t.Args[0])
			if err != nil {
				return 0, err
			}
			d, err := cc.freshScratch()
			if err != nil {
				return 0, err
			}
			cc.e.emit(isa.Instr{Op: isa.OpArith, R1: d, R2: a, N: int32(isa.ArithNeg)})
			return d, nil
		}
		if t.Functor == "+" && t.Arity() == 1 {
			return cc.emitArith(t.Args[0])
		}
		op, ok := arithOps[t.Functor]
		if !ok || t.Arity() != 2 {
			return 0, fmt.Errorf("unsupported arithmetic %v", t)
		}
		l, err := cc.emitArith(t.Args[0])
		if err != nil {
			return 0, err
		}
		r, err := cc.emitArith(t.Args[1])
		if err != nil {
			return 0, err
		}
		d, err := cc.freshScratch()
		if err != nil {
			return 0, err
		}
		cc.e.emit(isa.Instr{Op: isa.OpArith, R1: d, R2: l, R3: r, N: int32(op)})
		return d, nil
	}
	return 0, fmt.Errorf("unsupported arithmetic term %v", expr)
}

// --- CGE compilation ---

// compileCGE emits the parallel prelude (checks, pframe, goal pushes,
// local first goal) followed by the sequential fallback.
func (cc *clauseCtx) compileCGE(g itemCGE) error {
	cc.e.parallel = true

	// Pre-initialize every CGE variable whose first occurrence is
	// inside the expression, so the parallel and sequential paths see
	// identical environment state.
	for _, arm := range g.arms {
		for _, a := range arm.args {
			for _, v := range parse.Vars(a) {
				vi := cc.vars[v]
				if !vi.assigned {
					vi.assigned = true
					s, err := cc.freshScratch()
					if err != nil {
						return err
					}
					cc.e.emit(isa.Instr{Op: isa.OpPutVariableY, R1: vi.yslot, R2: s})
				}
			}
		}
	}
	cc.resetScratch()

	// Conditions: each failing check jumps to the sequential version.
	var seqPatches []int
	for _, cond := range g.conds {
		name, args, err := goalFunctor(cond)
		if err != nil {
			return err
		}
		switch name {
		case "true":
			continue
		case "ground":
			s, err := cc.freshScratch()
			if err != nil {
				return err
			}
			if err := cc.putArg(args[0], s, false); err != nil {
				return err
			}
			seqPatches = append(seqPatches, cc.e.emit(isa.Instr{Op: isa.OpCheckGround, R1: s}))
		case "indep":
			s1, err := cc.freshScratch()
			if err != nil {
				return err
			}
			if err := cc.putArg(args[0], s1, false); err != nil {
				return err
			}
			s2, err := cc.freshScratch()
			if err != nil {
				return err
			}
			if err := cc.putArg(args[1], s2, false); err != nil {
				return err
			}
			seqPatches = append(seqPatches, cc.e.emit(isa.Instr{Op: isa.OpCheckIndep, R1: s1, R2: s2}))
		}
	}

	// Parallel path: frame, push goals n..2, run goal 1 locally.
	pfAt := cc.e.emit(isa.Instr{Op: isa.OpPFrame, R1: int16(len(g.arms))})
	for k := len(g.arms) - 1; k >= 1; k-- {
		arm := g.arms[k]
		cc.resetScratch()
		fidx := cc.e.syms.Fun(arm.name, len(arm.args))
		for i, a := range arm.args {
			if err := cc.putArg(a, int16(i), false); err != nil {
				return err
			}
		}
		cc.e.callProc(isa.Instr{Op: isa.OpPushGoal, R1: int16(len(arm.args)), R2: int16(k + 1)}, fidx)
	}
	arm := g.arms[0]
	cc.resetScratch()
	fidx := cc.e.syms.Fun(arm.name, len(arm.args))
	for i, a := range arm.args {
		if err := cc.putArg(a, int16(i), false); err != nil {
			return err
		}
	}
	cc.e.callProc(isa.Instr{Op: isa.OpPCallLocal, R1: int16(len(arm.args)), R2: 1}, fidx)

	// Sequential fallback (reached only by the condition-check jumps).
	seqLabel := cc.e.here()
	for _, p := range seqPatches {
		cc.e.patch(p, seqLabel)
	}
	for _, arm := range g.arms {
		cc.resetScratch()
		fidx := cc.e.syms.Fun(arm.name, len(arm.args))
		for i, a := range arm.args {
			if err := cc.putArg(a, int16(i), false); err != nil {
				return err
			}
		}
		cc.e.callProc(isa.Instr{Op: isa.OpCall, R1: int16(len(arm.args))}, fidx)
	}
	jumpAt := cc.e.emit(isa.Instr{Op: isa.OpJump})

	cont := cc.e.here()
	cc.e.patch(pfAt, cont)
	cc.e.patch(jumpAt, cont)
	return nil
}

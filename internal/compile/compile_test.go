package compile

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustCompile(t *testing.T, program, query string, opt Options) *isa.Code {
	t.Helper()
	code, err := Compile(program, query, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return code
}

// ops extracts the opcode sequence of the whole program.
func ops(code *isa.Code) []isa.Opcode {
	out := make([]isa.Opcode, len(code.Instrs))
	for i, ins := range code.Instrs {
		out[i] = ins.Op
	}
	return out
}

func countOp(code *isa.Code, op isa.Opcode) int {
	n := 0
	for _, ins := range code.Instrs {
		if ins.Op == op {
			n++
		}
	}
	return n
}

func TestFactCompilesToGetAndProceed(t *testing.T) {
	code := mustCompile(t, "p(a, 1).", "p(X, Y)", Options{})
	if countOp(code, isa.OpGetConstant) != 2 {
		t.Errorf("want 2 get_constant:\n%s", code.Listing())
	}
	if countOp(code, isa.OpProceed) != 1 {
		t.Errorf("want 1 proceed:\n%s", code.Listing())
	}
}

func TestChainRuleUsesExecuteNotCall(t *testing.T) {
	// `a :- b.` needs no environment: compile to bare execute (LCO).
	code := mustCompile(t, "a :- b. b.", "a", Options{})
	listing := code.Listing()
	if countOp(code, isa.OpAllocate) != 1 { // only the query allocates
		t.Errorf("chain rule should not allocate:\n%s", listing)
	}
	if countOp(code, isa.OpExecute) != 1 {
		t.Errorf("chain rule should execute:\n%s", listing)
	}
}

func TestLastCallOptimization(t *testing.T) {
	code := mustCompile(t, "p :- q, r. q. r.", "p", Options{})
	// p allocates, calls q, then deallocate+execute r.
	var seq []isa.Opcode
	for _, op := range ops(code) {
		switch op {
		case isa.OpAllocate, isa.OpCall, isa.OpDeallocate, isa.OpExecute:
			seq = append(seq, op)
		}
	}
	want := []isa.Opcode{isa.OpAllocate, isa.OpCall, isa.OpDeallocate, isa.OpExecute, isa.OpAllocate, isa.OpCall}
	if len(seq) < 4 {
		t.Fatalf("sequence too short: %v\n%s", seq, code.Listing())
	}
	for i := 0; i < 4; i++ {
		if seq[i] != want[i] {
			t.Errorf("op %d = %v, want %v\n%s", i, seq[i], want[i], code.Listing())
		}
	}
}

func TestPermanentVariablesGetYSlots(t *testing.T) {
	// X spans two calls: must be permanent.
	code := mustCompile(t, "p(X) :- q(X), r(X). q(_). r(_).", "p(1)", Options{})
	if countOp(code, isa.OpGetVariableY) == 0 {
		t.Errorf("X should live in a Y slot:\n%s", code.Listing())
	}
	if countOp(code, isa.OpPutUnsafeValue) == 0 {
		t.Errorf("head-sourced Y var passed to the last call; compiler is conservative and must emit put_unsafe_value or put_value_y:\n%s", code.Listing())
	}
}

func TestTemporaryVariablesStayInRegisters(t *testing.T) {
	// X used only between head and first goal: temporary.
	code := mustCompile(t, "p(X) :- q(X). q(_).", "p(1)", Options{})
	if countOp(code, isa.OpGetVariableY) != 0 {
		t.Errorf("single-chunk variable must not get a Y slot:\n%s", code.Listing())
	}
}

func TestVoidVariablesEmitNothingOrVoid(t *testing.T) {
	code := mustCompile(t, "p(_, f(_, _)).", "p(1, f(2, 3))", Options{})
	if countOp(code, isa.OpUnifyVoid) == 0 {
		t.Errorf("structure voids should use unify_void:\n%s", code.Listing())
	}
	if countOp(code, isa.OpGetVariableX) != 0 {
		t.Errorf("bare void argument should emit nothing:\n%s", code.Listing())
	}
}

func TestFirstArgumentIndexing(t *testing.T) {
	prog := `
		t(a, 1). t(b, 2). t([], 3). t([_|_], 4). t(f(_), 5).
	`
	code := mustCompile(t, prog, "t(a, X)", Options{})
	if countOp(code, isa.OpSwitchOnTerm) != 1 {
		t.Errorf("want switch_on_term:\n%s", code.Listing())
	}
	if countOp(code, isa.OpSwitchOnConstant) != 1 {
		t.Errorf("want switch_on_constant:\n%s", code.Listing())
	}
	if countOp(code, isa.OpSwitchOnStructure) != 1 {
		t.Errorf("want switch_on_structure:\n%s", code.Listing())
	}
}

func TestNoIndexingForSingleClause(t *testing.T) {
	code := mustCompile(t, "only(x).", "only(X)", Options{})
	if countOp(code, isa.OpSwitchOnTerm)+countOp(code, isa.OpTry) != 0 {
		t.Errorf("single clause needs no indexing or choice points:\n%s", code.Listing())
	}
}

func TestVarFirstArgDisablesSwitching(t *testing.T) {
	code := mustCompile(t, "v(X, a) :- q(X). v(X, b) :- q(X). q(_).", "v(1, Z)", Options{})
	if countOp(code, isa.OpSwitchOnTerm) != 0 {
		t.Errorf("all-var first args: plain try chain expected:\n%s", code.Listing())
	}
	if countOp(code, isa.OpTry) != 1 || countOp(code, isa.OpTrust) != 1 {
		t.Errorf("want try/trust chain:\n%s", code.Listing())
	}
}

func TestCutCompilation(t *testing.T) {
	neck := mustCompile(t, "p :- !, q. p. q.", "p", Options{})
	if countOp(neck, isa.OpNeckCut) != 1 {
		t.Errorf("want neck_cut:\n%s", neck.Listing())
	}
	deep := mustCompile(t, "p(X) :- q(X), !, r(X). p(_). q(_). r(_).", "p(1)", Options{})
	if countOp(deep, isa.OpGetLevel) != 1 || countOp(deep, isa.OpCutY) != 1 {
		t.Errorf("want get_level + cut:\n%s", deep.Listing())
	}
}

func TestInlineArithmetic(t *testing.T) {
	code := mustCompile(t, "p(X, Y) :- Y is X * 2 + 1.", "p(3, R)", Options{})
	if countOp(code, isa.OpArith) < 3 { // deref X, mul, add
		t.Errorf("want register arithmetic:\n%s", code.Listing())
	}
	// No heap allocation for the expression itself.
	if countOp(code, isa.OpPutStructure) != 0 {
		t.Errorf("expression must not be built on the heap:\n%s", code.Listing())
	}
}

func TestComparisonCompilesToCompare(t *testing.T) {
	code := mustCompile(t, "p(X) :- X > 3.", "p(5)", Options{})
	if countOp(code, isa.OpCompare) != 1 {
		t.Errorf("want compare:\n%s", code.Listing())
	}
}

func TestCGECompilation(t *testing.T) {
	prog := "p(X, Y) :- q(X) & r(Y). q(_). r(_)."
	code := mustCompile(t, prog, "p(A, B)", Options{})
	if !code.Parallel {
		t.Error("Parallel flag not set")
	}
	if countOp(code, isa.OpPFrame) != 1 {
		t.Errorf("want pframe:\n%s", code.Listing())
	}
	if countOp(code, isa.OpPushGoal) != 1 {
		t.Errorf("want one push_goal (second arm):\n%s", code.Listing())
	}
	if countOp(code, isa.OpPCallLocal) != 1 {
		t.Errorf("want pcall_local (first arm):\n%s", code.Listing())
	}
	// The sequential fallback compiles both arms as calls.
	if countOp(code, isa.OpCall) < 2 {
		t.Errorf("want sequential fallback calls:\n%s", code.Listing())
	}
}

func TestCGEConditionsCompileToChecks(t *testing.T) {
	prog := "p(X, Y) :- (ground(X), indep(X, Y) | q(X) & r(Y)). q(_). r(_)."
	code := mustCompile(t, prog, "p(1, 2)", Options{})
	if countOp(code, isa.OpCheckGround) != 1 {
		t.Errorf("want check_ground:\n%s", code.Listing())
	}
	if countOp(code, isa.OpCheckIndep) != 1 {
		t.Errorf("want check_indep:\n%s", code.Listing())
	}
}

func TestSequentialModeDropsCGEs(t *testing.T) {
	prog := "p(X, Y) :- q(X) & r(Y). q(_). r(_)."
	code := mustCompile(t, prog, "p(A, B)", Options{Sequential: true})
	if code.Parallel {
		t.Error("sequential compile set Parallel")
	}
	if countOp(code, isa.OpPFrame)+countOp(code, isa.OpPushGoal)+countOp(code, isa.OpPCallLocal) != 0 {
		t.Errorf("sequential mode must not emit parallel instructions:\n%s", code.Listing())
	}
}

func TestQueryVariablesRecorded(t *testing.T) {
	code := mustCompile(t, "p(1, 2).", "p(X, Y)", Options{})
	if len(code.QueryVars) != 2 || code.QueryVars[0] != "X" || code.QueryVars[1] != "Y" {
		t.Errorf("QueryVars = %v", code.QueryVars)
	}
	if countOp(code, isa.OpStop) != 1 {
		t.Error("query must end with stop")
	}
}

func TestUndefinedProcedureError(t *testing.T) {
	if _, err := Compile("p :- missing.", "p", Options{}); err == nil {
		t.Error("undefined procedure accepted")
	}
	if _, err := Compile("p.", "missing", Options{}); err == nil {
		t.Error("undefined query goal accepted")
	}
}

func TestDisjunctionRejected(t *testing.T) {
	if _, err := Compile("p :- (a ; b). a. b.", "p", Options{}); err == nil {
		t.Error(";/2 should be rejected with a helpful error")
	}
	_, err := Compile("p :- (a -> b). a. b.", "p", Options{})
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("->/2 error unhelpful: %v", err)
	}
}

func TestBuiltinAsParallelGoalRejected(t *testing.T) {
	if _, err := Compile("p(X) :- (X = 1) & q. q.", "p(_)", Options{}); err == nil {
		t.Error("builtin as CGE arm accepted")
	}
}

func TestBadCGEConditionRejected(t *testing.T) {
	if _, err := Compile("p(X) :- (foo(X) | a & b). a. b. foo(_).", "p(1)", Options{}); err == nil {
		t.Error("arbitrary CGE condition accepted")
	}
}

func TestLongListLiteralCompiles(t *testing.T) {
	// Regression: list literals must compile in O(1) registers.
	var sb strings.Builder
	sb.WriteString("p([")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('a')
	}
	sb.WriteString("]).")
	code := mustCompile(t, sb.String(), "p(X)", Options{})
	if len(code.Instrs) == 0 {
		t.Fatal("no code")
	}
}

func TestDeepStructureCompiles(t *testing.T) {
	// Nested structure in query argument.
	code := mustCompile(t, "p(_).", "p(f(g(h(i(j(k(1)))))))", Options{})
	if countOp(code, isa.OpPutStructure) == 0 {
		t.Errorf("nested build missing:\n%s", code.Listing())
	}
}

func TestListingIsStable(t *testing.T) {
	// Deterministic compilation: identical inputs give identical code.
	prog := "p(a). p(b). p(f(_)). q(X) :- p(X), p(X)."
	a := mustCompile(t, prog, "q(Z)", Options{}).Listing()
	b := mustCompile(t, prog, "q(Z)", Options{}).Listing()
	if a != b {
		t.Error("compilation is not deterministic")
	}
}

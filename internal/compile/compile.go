// Package compile translates Prolog programs (with &-Prolog CGE
// annotations) into RAP-WAM code. It performs the classic WAM
// compilation steps — permanent/temporary variable classification,
// first-argument indexing, last-call optimization, unsafe-variable
// handling, cut — plus the CGE translation into parcall-frame
// instructions described in the paper (goals pushed onto the goal stack,
// first goal executed locally, with a compiled sequential fallback used
// when the independence conditions fail at run time).
package compile

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/parse"
)

// Options control compilation.
type Options struct {
	// Sequential compiles CGEs as ordinary conjunctions, yielding the
	// plain-WAM baseline the paper measures RAP-WAM against.
	Sequential bool
}

// Compile parses and compiles a program together with a query.
// The query is the body of the goal to run (without "?-").
func Compile(program, query string, opt Options) (*isa.Code, error) {
	clauses, err := parse.Program(program)
	if err != nil {
		return nil, fmt.Errorf("compile: program: %w", err)
	}
	q, err := parse.OneTerm(query)
	if err != nil {
		return nil, fmt.Errorf("compile: query: %w", err)
	}
	return compileClauses(clauses, q, opt)
}

// predicate groups the clauses of one name/arity.
type predicate struct {
	functor isa.Functor
	clauses []clauseSrc
}

type clauseSrc struct {
	head parse.Term // Atom or *Compound
	body parse.Term // nil for facts
}

type emitter struct {
	code     []isa.Instr
	switches []isa.SwitchTable
	syms     *isa.SymTab
	// procPatch lists instruction indexes whose N must be resolved to
	// the entry label of the functor-index key.
	procPatch map[int]int
	entries   map[int]int32 // functor index -> entry label
	opt       Options
	parallel  bool
}

func (e *emitter) emit(i isa.Instr) int {
	e.code = append(e.code, i)
	return len(e.code) - 1
}

// here returns the next instruction address.
func (e *emitter) here() int32 { return int32(len(e.code)) }

// patch sets the N operand of the instruction at idx.
func (e *emitter) patch(idx int, label int32) { e.code[idx].N = label }

// callProc emits an instruction whose N will be patched to the entry of
// the given functor.
func (e *emitter) callProc(ins isa.Instr, fidx int) {
	at := e.emit(ins)
	e.procPatch[at] = fidx
}

func compileClauses(clauses []parse.Term, query parse.Term, opt Options) (*isa.Code, error) {
	e := &emitter{
		syms:      isa.NewSymTab(),
		procPatch: map[int]int{},
		entries:   map[int]int32{},
		opt:       opt,
	}

	// Group clauses into predicates preserving first-occurrence order.
	var order []int
	preds := map[int]*predicate{}
	for _, c := range clauses {
		var head, body parse.Term
		if r, ok := c.(*parse.Compound); ok && r.Functor == ":-" && r.Arity() == 2 {
			head, body = r.Args[0], r.Args[1]
		} else {
			head = c
		}
		var f isa.Functor
		switch h := head.(type) {
		case parse.Atom:
			f = isa.Functor{Name: string(h), Arity: 0}
		case *parse.Compound:
			f = isa.Functor{Name: h.Functor, Arity: h.Arity()}
		default:
			return nil, fmt.Errorf("compile: invalid clause head %v", head)
		}
		fidx := e.syms.Fun(f.Name, f.Arity)
		p, ok := preds[fidx]
		if !ok {
			p = &predicate{functor: f}
			preds[fidx] = p
			order = append(order, fidx)
		}
		p.clauses = append(p.clauses, clauseSrc{head: head, body: body})
	}

	// Compile each predicate.
	for _, fidx := range order {
		if err := e.compilePredicate(fidx, preds[fidx]); err != nil {
			return nil, err
		}
	}

	// Compile the query as $query/0 with every variable permanent.
	queryEntry, queryVars, err := e.compileQuery(query)
	if err != nil {
		return nil, err
	}

	// Resolve procedure references.
	for at, fidx := range e.procPatch {
		entry, ok := e.entries[fidx]
		if !ok {
			return nil, fmt.Errorf("compile: undefined procedure %v", e.syms.FunctorAt(fidx))
		}
		e.code[at].N = entry
	}

	return &isa.Code{
		Instrs:     e.code,
		Switches:   e.switches,
		Syms:       e.syms,
		Procs:      e.entries,
		QueryEntry: queryEntry,
		QueryVars:  queryVars,
		Parallel:   e.parallel,
	}, nil
}

// compilePredicate emits clause code and the indexing preamble.
func (e *emitter) compilePredicate(fidx int, p *predicate) error {
	// Emit every clause body, collecting entry labels.
	labels := make([]int32, len(p.clauses))
	// The predicate entry must be a stable label emitted before clause
	// code, so reserve a jump that we patch to the real entry.
	jumpAt := e.emit(isa.Instr{Op: isa.OpJump})
	e.entries[fidx] = int32(jumpAt)

	for i, c := range p.clauses {
		labels[i] = e.here()
		if err := e.compileClause(p.functor, c); err != nil {
			return fmt.Errorf("compile: %v clause %d: %w", p.functor, i+1, err)
		}
	}

	entry := e.compileIndexing(p, labels)
	e.patch(jumpAt, entry)
	return nil
}

// chain emits a try/retry/trust chain over the given clause labels and
// returns its entry label. A single-clause chain is the clause itself.
func (e *emitter) chain(arity int, labels []int32) int32 {
	if len(labels) == 1 {
		return labels[0]
	}
	entry := e.here()
	e.emit(isa.Instr{Op: isa.OpTry, R1: int16(arity), N: labels[0]})
	for _, l := range labels[1 : len(labels)-1] {
		e.emit(isa.Instr{Op: isa.OpRetry, N: l})
	}
	e.emit(isa.Instr{Op: isa.OpTrust, N: labels[len(labels)-1]})
	return entry
}

// headArg1 classifies the first head argument of a clause for indexing.
type argClass uint8

const (
	argVar argClass = iota
	argCon
	argLis
	argStr
)

func (e *emitter) classifyArg1(c clauseSrc) (argClass, mem.Word) {
	comp, ok := c.head.(*parse.Compound)
	if !ok || len(comp.Args) == 0 {
		return argVar, 0
	}
	switch a := comp.Args[0].(type) {
	case *parse.Var:
		return argVar, 0
	case parse.Atom:
		if a == "[]" {
			return argCon, mem.MakeCon(isa.NilAtom)
		}
		return argCon, mem.MakeCon(e.syms.Atom(string(a)))
	case parse.Int:
		return argCon, mem.MakeInt(int64(a))
	case *parse.Compound:
		if a.Functor == "." && a.Arity() == 2 {
			return argLis, 0
		}
		return argStr, mem.Word(e.syms.Fun(a.Functor, a.Arity()))
	}
	return argVar, 0
}

// compileIndexing builds switch_on_term dispatch for multi-clause
// predicates with a usable first argument; otherwise a plain chain.
func (e *emitter) compileIndexing(p *predicate, labels []int32) int32 {
	if len(p.clauses) == 1 {
		return labels[0]
	}
	arity := p.functor.Arity
	if arity == 0 {
		return e.chain(arity, labels)
	}
	classes := make([]argClass, len(p.clauses))
	keys := make([]mem.Word, len(p.clauses))
	allVar := true
	for i, c := range p.clauses {
		classes[i], keys[i] = e.classifyArg1(c)
		if classes[i] != argVar {
			allVar = false
		}
	}
	if allVar {
		return e.chain(arity, labels)
	}

	// Candidate chains per tag class.
	var varChain, lisChain []int32
	conChains := map[mem.Word][]int32{}
	strChains := map[mem.Word][]int32{}
	var conKeys, strKeys []mem.Word
	for i := range p.clauses {
		switch classes[i] {
		case argVar:
			varChain = append(varChain, labels[i])
			lisChain = append(lisChain, labels[i])
			for _, k := range conKeys {
				conChains[k] = append(conChains[k], labels[i])
			}
			for _, k := range strKeys {
				strChains[k] = append(strChains[k], labels[i])
			}
		case argCon:
			if _, ok := conChains[keys[i]]; !ok {
				// Seed with preceding var-arg clauses.
				conChains[keys[i]] = append([]int32{}, prefixVar(classes, labels, i)...)
				conKeys = append(conKeys, keys[i])
			}
			conChains[keys[i]] = append(conChains[keys[i]], labels[i])
		case argLis:
			lisChain = append(lisChain, labels[i])
		case argStr:
			if _, ok := strChains[keys[i]]; !ok {
				strChains[keys[i]] = append([]int32{}, prefixVar(classes, labels, i)...)
				strKeys = append(strKeys, keys[i])
			}
			strChains[keys[i]] = append(strChains[keys[i]], labels[i])
		}
	}

	const failLabel = -1
	emitChain := func(ls []int32) int32 {
		if len(ls) == 0 {
			return failLabel
		}
		return e.chain(arity, ls)
	}

	varEntry := emitChain(labels) // variable: all clauses in order
	lisEntry := emitChain(lisChain)

	conEntry := int32(failLabel)
	if len(conKeys) > 0 || len(varChain) > 0 {
		cases := map[mem.Word]int32{}
		// Deterministic iteration for reproducible code layout.
		sort.Slice(conKeys, func(i, j int) bool { return conKeys[i] < conKeys[j] })
		for _, k := range conKeys {
			cases[k] = emitChain(conChains[k])
		}
		def := emitChain(varChain)
		e.switches = append(e.switches, isa.SwitchTable{Cases: cases, Default: def})
		conEntry = e.here()
		e.emit(isa.Instr{Op: isa.OpSwitchOnConstant, N: int32(len(e.switches) - 1)})
	}

	strEntry := int32(failLabel)
	if len(strKeys) > 0 || len(varChain) > 0 {
		cases := map[mem.Word]int32{}
		sort.Slice(strKeys, func(i, j int) bool { return strKeys[i] < strKeys[j] })
		for _, k := range strKeys {
			cases[k] = emitChain(strChains[k])
		}
		def := emitChain(varChain)
		e.switches = append(e.switches, isa.SwitchTable{Cases: cases, Default: def})
		strEntry = e.here()
		e.emit(isa.Instr{Op: isa.OpSwitchOnStructure, N: int32(len(e.switches) - 1)})
	}

	e.switches = append(e.switches, isa.SwitchTable{
		Var: varEntry, Con: conEntry, Lis: lisEntry, Str: strEntry,
	})
	entry := e.here()
	e.emit(isa.Instr{Op: isa.OpSwitchOnTerm, N: int32(len(e.switches) - 1)})
	return entry
}

// prefixVar returns the labels of var-first-arg clauses preceding index i.
func prefixVar(classes []argClass, labels []int32, i int) []int32 {
	var out []int32
	for j := 0; j < i; j++ {
		if classes[j] == argVar {
			out = append(out, labels[j])
		}
	}
	return out
}

package compile

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/parse"
)

// bodyItem is one element of a normalized clause body.
type bodyItem interface{ isItem() }

// itemCall is a user-predicate call.
type itemCall struct {
	name string
	args []parse.Term
	unit int
}

// itemInline is an inline builtin (arithmetic, comparison, type test,
// unification, I/O); it does not end a register-lifetime unit.
type itemInline struct {
	name string
	args []parse.Term
}

// itemCut is !.
type itemCut struct{}

// itemCGE is a Conditional Graph Expression: if conds hold, arms run in
// AND-parallel, otherwise sequentially.
type itemCGE struct {
	conds []parse.Term // ground/1, indep/2 or true
	arms  []itemCall
	unit  int // unit of the prelude / first arm; arm k has unit+k
}

func (itemCall) isItem()   {}
func (itemInline) isItem() {}
func (itemCut) isItem()    {}
func (itemCGE) isItem()    {}

// inlineBuiltins maps name/arity to "compiled inline" status.
var inlineBuiltins = map[isa.Functor]isa.Builtin{
	{Name: "=", Arity: 2}:       isa.BiUnify,
	{Name: "==", Arity: 2}:      isa.BiStructEq,
	{Name: "\\==", Arity: 2}:    isa.BiStructNe,
	{Name: "var", Arity: 1}:     isa.BiVar,
	{Name: "nonvar", Arity: 1}:  isa.BiNonvar,
	{Name: "atom", Arity: 1}:    isa.BiAtom,
	{Name: "integer", Arity: 1}: isa.BiInteger,
	{Name: "number", Arity: 1}:  isa.BiInteger,
	{Name: "atomic", Arity: 1}:  isa.BiAtomic,
	{Name: "ground", Arity: 1}:  isa.BiGround,
	{Name: "indep", Arity: 2}:   isa.BiIndep,
	{Name: "write", Arity: 1}:   isa.BiWrite,
	{Name: "nl", Arity: 0}:      isa.BiNl,
	{Name: "functor", Arity: 3}: isa.BiFunctor,
	{Name: "arg", Arity: 3}:     isa.BiArg,
	{Name: "=..", Arity: 2}:     isa.BiUniv,
	{Name: "length", Arity: 2}:  isa.BiLength,
}

var compareOps = map[string]isa.CompareOp{
	"<": isa.CmpLT, ">": isa.CmpGT, "=<": isa.CmpLE,
	">=": isa.CmpGE, "=:=": isa.CmpEQ, "=\\=": isa.CmpNE,
}

var arithOps = map[string]isa.ArithOp{
	"+": isa.ArithAdd, "-": isa.ArithSub, "*": isa.ArithMul,
	"//": isa.ArithIDiv, "/": isa.ArithDiv, "mod": isa.ArithMod,
	"rem": isa.ArithRem,
}

// varInfo tracks per-clause variable state during compilation.
type varInfo struct {
	v        *parse.Var
	units    map[int]bool
	count    int
	inCGE    bool
	perm     bool
	yslot    int16
	xreg     int16
	assigned bool // register/slot holds the variable at the current point
	heapSafe bool // value known to reside on the heap (or atomic)
}

// clauseCtx compiles one clause.
type clauseCtx struct {
	e           *emitter
	functor     isa.Functor
	head        parse.Term
	items       []bodyItem
	vars        map[*parse.Var]*varInfo
	numY        int
	cutSlot     int16 // -1 when absent
	hasCGE      bool
	needEnv     bool
	lastCall    int // index of the LCO call item, -1 otherwise
	tempBase    int16
	scratch     int16 // next scratch register (bump allocator)
	scratchBase int16
	scratchFree []int16 // recycled scratch registers (head expansion)
	query       bool
	queryVars   []string
}

func goalFunctor(t parse.Term) (string, []parse.Term, error) {
	switch g := t.(type) {
	case parse.Atom:
		return string(g), nil, nil
	case *parse.Compound:
		return g.Functor, g.Args, nil
	default:
		return "", nil, fmt.Errorf("invalid goal %v", t)
	}
}

// normalize flattens a body term into items, assigning call units.
func (cc *clauseCtx) normalize(body parse.Term) error {
	unit := 0
	var walk func(t parse.Term) error
	addCall := func(name string, args []parse.Term) {
		cc.items = append(cc.items, itemCall{name: name, args: args, unit: unit})
		unit++
	}
	walk = func(t parse.Term) error {
		if c, ok := t.(*parse.Compound); ok && c.Functor == "," && c.Arity() == 2 {
			if err := walk(c.Args[0]); err != nil {
				return err
			}
			return walk(c.Args[1])
		}
		// CGE forms: (conds | g1 & g2 ...) or g1 & g2.
		var conds []parse.Term
		parTerm := t
		if c, ok := t.(*parse.Compound); ok && c.Functor == "|" && c.Arity() == 2 {
			conds = flattenOp(c.Args[0], ",")
			parTerm = c.Args[1]
		}
		if c, ok := parTerm.(*parse.Compound); ok && c.Functor == "&" && c.Arity() == 2 {
			armTerms := flattenOp(parTerm, "&")
			if cc.e.opt.Sequential {
				// WAM baseline: plain conjunction, conditions dropped
				// (they only guard parallelism).
				for _, a := range armTerms {
					name, args, err := goalFunctor(a)
					if err != nil {
						return err
					}
					addCall(name, args)
				}
				return nil
			}
			cge := itemCGE{conds: conds, unit: unit}
			for _, a := range armTerms {
				name, args, err := goalFunctor(a)
				if err != nil {
					return err
				}
				f := isa.Functor{Name: name, Arity: len(args)}
				if _, inline := inlineBuiltins[f]; inline {
					return fmt.Errorf("builtin %v cannot be a parallel goal", f)
				}
				if _, cmp := compareOps[name]; cmp && len(args) == 2 {
					return fmt.Errorf("comparison %s cannot be a parallel goal", name)
				}
				cge.arms = append(cge.arms, itemCall{name: name, args: args, unit: unit})
				unit++
			}
			for _, cond := range cge.conds {
				if err := validateCond(cond); err != nil {
					return err
				}
			}
			cc.items = append(cc.items, cge)
			cc.hasCGE = true
			return nil
		}
		if conds != nil {
			return fmt.Errorf("'|' without '&' parallel body in %v", t)
		}

		name, args, err := goalFunctor(t)
		if err != nil {
			return err
		}
		switch {
		case name == "true" && len(args) == 0:
			return nil
		case name == "fail" && len(args) == 0 || name == "false" && len(args) == 0:
			cc.items = append(cc.items, itemInline{name: "fail"})
			return nil
		case name == "!" && len(args) == 0:
			cc.items = append(cc.items, itemCut{})
			return nil
		case name == ";" || name == "->":
			return fmt.Errorf("control construct %s/2 is not supported; rewrite with auxiliary predicates", name)
		case name == "is" && len(args) == 2:
			cc.items = append(cc.items, itemInline{name: name, args: args})
			return nil
		}
		if _, ok := compareOps[name]; ok && len(args) == 2 {
			cc.items = append(cc.items, itemInline{name: name, args: args})
			return nil
		}
		if _, ok := inlineBuiltins[isa.Functor{Name: name, Arity: len(args)}]; ok {
			cc.items = append(cc.items, itemInline{name: name, args: args})
			return nil
		}
		addCall(name, args)
		return nil
	}
	if body == nil {
		return nil
	}
	return walk(body)
}

func validateCond(c parse.Term) error {
	name, args, err := goalFunctor(c)
	if err != nil {
		return err
	}
	switch {
	case name == "ground" && len(args) == 1:
		return nil
	case name == "indep" && len(args) == 2:
		return nil
	case name == "true" && len(args) == 0:
		return nil
	}
	return fmt.Errorf("CGE condition must be ground/1, indep/2 or true, got %v", c)
}

func flattenOp(t parse.Term, op string) []parse.Term {
	if c, ok := t.(*parse.Compound); ok && c.Functor == op && c.Arity() == 2 {
		return append(flattenOp(c.Args[0], op), flattenOp(c.Args[1], op)...)
	}
	return []parse.Term{t}
}

// analyze performs variable classification and register/slot assignment.
func (cc *clauseCtx) analyze() error {
	cc.vars = map[*parse.Var]*varInfo{}
	var order []*parse.Var
	var note func(t parse.Term, unit int, inCGE bool)
	note = func(t parse.Term, unit int, inCGE bool) {
		switch tt := t.(type) {
		case *parse.Var:
			vi := cc.vars[tt]
			if vi == nil {
				vi = &varInfo{v: tt, units: map[int]bool{}, xreg: -1, yslot: -1}
				cc.vars[tt] = vi
				order = append(order, tt)
			}
			vi.units[unit] = true
			vi.count++ // every occurrence counts (void detection)
			if inCGE {
				vi.inCGE = true
			}
		case *parse.Compound:
			for _, a := range tt.Args {
				note(a, unit, inCGE)
			}
		}
	}
	if cc.head != nil {
		note(cc.head, 0, false)
	}
	callUnits := 0
	for _, it := range cc.items {
		switch g := it.(type) {
		case itemCall:
			for _, a := range g.args {
				note(a, g.unit, false)
			}
			callUnits++
		case itemInline:
			// Inline goals belong to the unit of the next call; using
			// the current unit is equivalent for classification.
			for _, a := range g.args {
				note(a, callUnits, false)
			}
		case itemCGE:
			for _, c := range g.conds {
				note(c, g.unit, true)
			}
			for k, arm := range g.arms {
				for _, a := range arm.args {
					note(a, g.unit+k, true)
				}
			}
			callUnits += len(g.arms)
		}
	}

	// Permanency: multiple units, or any CGE involvement (CGE variables
	// are environment-resident so that the parallel and sequential
	// paths agree and parallel goals can reach them — the paper's
	// global "Envts./P. Vars." class), or query variables (answers are
	// read from the environment).
	maxArity := len(argsOf(cc.head))
	for _, it := range cc.items {
		switch g := it.(type) {
		case itemCall:
			if len(g.args) > maxArity {
				maxArity = len(g.args)
			}
		case itemInline:
			if len(g.args) > maxArity {
				maxArity = len(g.args)
			}
		case itemCGE:
			for _, arm := range g.arms {
				if len(arm.args) > maxArity {
					maxArity = len(arm.args)
				}
			}
		}
	}
	cc.tempBase = int16(maxArity)
	nextTemp := cc.tempBase
	for _, v := range order {
		vi := cc.vars[v]
		vi.perm = len(vi.units) > 1 || vi.inCGE || cc.query
		if vi.perm {
			vi.yslot = int16(cc.numY)
			cc.numY++
			if cc.query && v.Name != "_" {
				cc.queryVars = append(cc.queryVars, v.Name)
			}
		} else if vi.count > 1 {
			vi.xreg = nextTemp
			nextTemp++
		}
	}
	cc.scratchBase = nextTemp
	cc.scratch = nextTemp

	// Cut slot: needed when a cut appears beyond the first item.
	cc.cutSlot = -1
	for i, it := range cc.items {
		if _, ok := it.(itemCut); ok && i > 0 {
			cc.cutSlot = int16(cc.numY)
			cc.numY++
			break
		}
	}

	// Last-call optimization target (meta-call is excluded: BiCall
	// needs the environment alive to set its continuation).
	cc.lastCall = -1
	if !cc.query && len(cc.items) > 0 {
		if c, ok := cc.items[len(cc.items)-1].(itemCall); ok && !(c.name == "call" && len(c.args) == 1) {
			cc.lastCall = len(cc.items) - 1
		}
	}

	calls := 0
	for _, it := range cc.items {
		if _, ok := it.(itemCall); ok {
			calls++
		}
	}
	nonLCOCalls := calls
	if cc.lastCall >= 0 {
		nonLCOCalls--
	}
	cc.needEnv = cc.query || cc.numY > 0 || cc.cutSlot >= 0 || cc.hasCGE || nonLCOCalls > 0

	if int(cc.scratchBase) >= isa.NumRegs-8 {
		return fmt.Errorf("clause too large: %d registers needed", cc.scratchBase)
	}
	return nil
}

func argsOf(head parse.Term) []parse.Term {
	if c, ok := head.(*parse.Compound); ok {
		return c.Args
	}
	return nil
}

// freshScratch allocates a scratch register (reset per item), reusing
// released registers first. The free list and the mark discipline used
// by the body-side builders must not mix within one item; resetScratch
// between items keeps them apart.
func (cc *clauseCtx) freshScratch() (int16, error) {
	if n := len(cc.scratchFree); n > 0 {
		r := cc.scratchFree[n-1]
		cc.scratchFree = cc.scratchFree[:n-1]
		return r, nil
	}
	if int(cc.scratch) >= isa.NumRegs {
		return 0, fmt.Errorf("out of scratch registers")
	}
	r := cc.scratch
	cc.scratch++
	return r, nil
}

// releaseScratch recycles a register once its value has been consumed.
func (cc *clauseCtx) releaseScratch(r int16) {
	cc.scratchFree = append(cc.scratchFree, r)
}

func (cc *clauseCtx) resetScratch() {
	cc.scratch = cc.scratchBase
	cc.scratchFree = cc.scratchFree[:0]
}

// compile emits the full clause.
func (cc *clauseCtx) compile(body parse.Term) error {
	if err := cc.normalize(body); err != nil {
		return err
	}
	if err := cc.analyze(); err != nil {
		return err
	}
	if cc.needEnv {
		cc.e.emit(isa.Instr{Op: isa.OpAllocate, N: int32(cc.numY)})
		if cc.cutSlot >= 0 {
			cc.e.emit(isa.Instr{Op: isa.OpGetLevel, R1: cc.cutSlot})
		}
	}
	if err := cc.compileHead(); err != nil {
		return err
	}
	for i, it := range cc.items {
		cc.resetScratch()
		switch g := it.(type) {
		case itemCall:
			if err := cc.compileCall(g, i == cc.lastCall); err != nil {
				return err
			}
		case itemInline:
			if err := cc.compileInline(g); err != nil {
				return err
			}
		case itemCut:
			if i == 0 {
				cc.e.emit(isa.Instr{Op: isa.OpNeckCut})
			} else {
				cc.e.emit(isa.Instr{Op: isa.OpCutY, R1: cc.cutSlot})
			}
		case itemCGE:
			if err := cc.compileCGE(g); err != nil {
				return err
			}
		}
	}
	// Clause ending.
	switch {
	case cc.query:
		cc.e.emit(isa.Instr{Op: isa.OpStop})
	case cc.lastCall >= 0:
		// ending already emitted by compileCall (deallocate+execute)
	case cc.needEnv:
		cc.e.emit(isa.Instr{Op: isa.OpDeallocate})
		cc.e.emit(isa.Instr{Op: isa.OpProceed})
	default:
		cc.e.emit(isa.Instr{Op: isa.OpProceed})
	}
	return nil
}

// compileClause compiles one program clause.
func (e *emitter) compileClause(f isa.Functor, c clauseSrc) error {
	cc := &clauseCtx{e: e, functor: f, head: c.head}
	return cc.compile(c.body)
}

// compileQuery compiles the query as $query/0 ending in OpStop.
func (e *emitter) compileQuery(q parse.Term) (int32, []string, error) {
	entry := e.here()
	cc := &clauseCtx{e: e, functor: isa.Functor{Name: "$query"}, query: true}
	if err := cc.compile(q); err != nil {
		return 0, nil, fmt.Errorf("compile: query: %w", err)
	}
	return entry, cc.queryVars, nil
}

package service

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"testing"

	"repro/internal/storage"
)

// listErrBackend fails List with a fixed error; everything else is the
// in-memory backend.
type listErrBackend struct {
	storage.Backend
	err error
}

func (b *listErrBackend) List(prefix string) ([]string, error) { return nil, b.err }

// TestResultCacheLenClassifiesListErrors is the regression test for a
// finding rapwamlint's errortaxonomy analyzer surfaced: Len used to
// propagate the backend's raw List error. A miss-shaped error (the
// cache's namespace was simply never written, which cluster peer
// backends report as fs.ErrNotExist) means an empty cache, not a
// failure; anything else must come back wrapped, still matchable
// through the taxonomy.
func TestResultCacheLenClassifiesListErrors(t *testing.T) {
	missing := NewResultCacheOn(&listErrBackend{
		Backend: storage.NewMem(),
		err:     fmt.Errorf("peer: %w", iofs.ErrNotExist),
	})
	if n, err := missing.Len(); err != nil || n != 0 {
		t.Fatalf("Len over a never-written namespace = %d, %v; want 0, nil", n, err)
	}

	broken := NewResultCacheOn(&listErrBackend{
		Backend: storage.NewMem(),
		err:     storage.Transient(errors.New("disk wobble")),
	})
	n, err := broken.Len()
	if err == nil {
		t.Fatal("Len over a failing backend returned nil error")
	}
	if n != 0 {
		t.Fatalf("Len over a failing backend = %d, want 0", n)
	}
	if !storage.IsTransient(err) {
		t.Fatalf("Len error %v lost its transient classification in the wrapping", err)
	}
}

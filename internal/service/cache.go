// Package service is the experiment results service: a long-running
// HTTP/JSON daemon (cmd/rapwamd) that exposes every table and figure
// of the paper over the experiments grid runner and the persistent
// trace store, memoizing each computed cell in a content-addressed
// result cache.
//
// The serving pipeline per request is
//
//	request → admission (load shedding) → result cache (memory, then
//	        backend) → single-flight → experiments grid → trace store
//	        → emulator
//
// so any experiment cell is computed at most once per (parameters,
// emulator version, codec version): N concurrent identical requests
// trigger exactly one grid run, and every later request — including
// requests to a restarted daemon over the same cache directory — is a
// backend or memory hit with a byte-identical body and zero emulator
// runs. Cancellation flows the other way: the server's base context
// and each request's context reach the grid (and the engine's
// instruction loop) end to end, so shutdown and client disconnects
// abort in-flight computations instead of stranding them.
//
// Failure is a first-class input (docs/API.md "Failure modes"):
// corrupt cache entries are quarantined and recomputed transparently,
// storage outages degrade the service to compute-without-caching
// (X-Degraded response header) instead of failing requests, overload
// sheds with 429 + Retry-After, and slow computations can be bounded
// with a per-request timeout (504).
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// CacheVersion is the result-envelope format version; it participates
// in every cache key, so an envelope change invalidates old entries
// instead of serving them in the stale shape. Version 2 added the
// result_sha256 payload checksum.
const CacheVersion = 2

// CacheKey identifies one cached experiment result: the experiment
// name plus its canonical parameter encoding. The emulator version,
// trace codec version and CacheVersion are folded into the content
// address, so results computed by a different engine build are
// distinct entries, exactly like trace-store cells.
type CacheKey struct {
	// Experiment is the registry name ("fig4", "table3", ...).
	Experiment string
	// Params is the canonical parameter encoding ("pes=1,2,4,8&sizes=64,...").
	Params string
}

// hash returns the key's content address (shared scheme with the
// trace store: tracestore.ContentHash).
func (k CacheKey) hash() string {
	return cacheHash(k.Experiment, k.Params, core.EmulatorVersion, trace.CodecVersion, CacheVersion)
}

// cacheHash is the content address for an explicit version triple —
// the running build's for live keys, an envelope's own recorded
// versions when Scrub re-derives the name an entry should live under
// (entries from an older build are stale-but-valid, not corrupt).
func cacheHash(experiment, params, emuVersion string, codecVersion, cacheVersion int) string {
	return tracestore.ContentHash(experiment, params, emuVersion,
		fmt.Sprintf("codec%d", codecVersion), fmt.Sprintf("rc%d", cacheVersion))
}

// name returns the key's object name in the backend.
func (k CacheKey) name() string {
	return sanitizeName(k.Experiment) + "-" + k.hash() + ".json"
}

// CacheStats are the result cache's counters since open (or the last
// ResetStats).
type CacheStats struct {
	// MemHits / DiskHits split hits by which layer served them.
	MemHits, DiskHits int64
	// Misses counts Get calls that found no valid entry.
	Misses int64
	// Puts counts completed writes.
	Puts int64
	// Quarantines counts corrupt entries moved to quarantine/ by the
	// read path and Scrub.
	Quarantines int64
}

// maxMemEntries bounds the in-memory layer. Result bodies are small
// (KBs) and the working set of distinct (experiment, params) cells is
// tiny, so a simple count cap suffices; on overflow an arbitrary
// entry is evicted (the backend layer still holds it).
const maxMemEntries = 128

// ResultCache is a content-addressed store of rendered experiment
// results over one storage backend (a local directory in production),
// with a small in-memory layer in front. Writes are atomic through the
// backend, so concurrent writers — including separate daemons sharing
// the directory — race benignly and readers only observe complete
// entries.
//
// Reads self-heal: an entry that exists but fails envelope
// verification (corrupt JSON, wrong cell, wrong versions for its
// address) is quarantined and the lookup reports a miss — the caller
// recomputes and overwrites, and because envelopes are canonical JSON
// the rewritten entry is byte-identical to what the corrupt one should
// have been. Transient backend read errors also read as misses (the
// recompute path is the retry), but never quarantine.
type ResultCache struct {
	b   storage.Backend
	dir string // filesystem root when directory-backed, "" otherwise

	memHits     atomic.Int64
	diskHits    atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	quarantines atomic.Int64

	mu  sync.RWMutex
	mem map[string][]byte
}

// OpenResultCache creates (if needed) and opens a result cache
// directory with the default sweep age. See OpenResultCacheDir.
func OpenResultCache(dir string) (*ResultCache, error) {
	return OpenResultCacheDir(dir, tracestore.StaleTempAge)
}

// OpenResultCacheDir creates (if needed) and opens a result cache
// directory, sweeping stale *.tmp droppings left by a killed writer
// and aged quarantined entries (same hygiene as tracestore.OpenDir).
func OpenResultCacheDir(dir string, tempAge time.Duration) (*ResultCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: empty result cache directory")
	}
	d, err := storage.NewDir(dir, tempAge)
	if err != nil {
		return nil, fmt.Errorf("service: result cache: %w", err)
	}
	return &ResultCache{b: d, dir: dir, mem: make(map[string][]byte)}, nil
}

// NewResultCacheOn opens a result cache over an arbitrary backend
// (in-memory caches for tests, fault-injection wrappers for chaos
// runs).
func NewResultCacheOn(b storage.Backend) *ResultCache {
	c := &ResultCache{b: b, mem: make(map[string][]byte)}
	if d, ok := b.(*storage.Dir); ok {
		c.dir = d.Root()
	}
	return c
}

// Backend returns the cache's storage backend.
func (c *ResultCache) Backend() storage.Backend { return c.b }

// Dir returns the cache's root directory ("" when the backend is not a
// local directory).
func (c *ResultCache) Dir() string { return c.dir }

// Path returns the file a key's result is (or would be) stored at for
// directory-backed caches; for other backends it returns the object
// name.
func (c *ResultCache) Path(k CacheKey) string {
	if c.dir == "" {
		return k.name()
	}
	return filepath.Join(c.dir, k.name())
}

// sanitizeName keeps object names portable (experiment names are
// already clean identifiers; this is belt and braces, mirroring the
// trace store).
func sanitizeName(s string) string {
	out := []byte(s)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Stats returns the hit/miss/put/quarantine counters.
func (c *ResultCache) Stats() CacheStats {
	return CacheStats{
		MemHits:     c.memHits.Load(),
		DiskHits:    c.diskHits.Load(),
		Misses:      c.misses.Load(),
		Puts:        c.puts.Load(),
		Quarantines: c.quarantines.Load(),
	}
}

// ResetStats zeroes the counters.
func (c *ResultCache) ResetStats() {
	c.memHits.Store(0)
	c.diskHits.Store(0)
	c.misses.Store(0)
	c.puts.Store(0)
	c.quarantines.Store(0)
}

// Sweep removes stale temp droppings and aged quarantined entries.
func (c *ResultCache) Sweep(olderThan time.Duration) int { return c.b.Sweep(olderThan) }

// Envelope is the stored (and served) result shape: the JSON response
// body is exactly these bytes, so a cached result is byte-identical
// across requests and daemon restarts.
type Envelope struct {
	// Experiment is the registry name the result was computed for.
	Experiment string `json:"experiment"`
	// Params are the canonical parameters of the computation.
	Params map[string]string `json:"params"`
	// EmulatorVersion / CodecVersion / CacheVersion pin the producing
	// stack; Get re-verifies them against the running build.
	EmulatorVersion string `json:"emulator_version"`
	CodecVersion    int    `json:"codec_version"`
	CacheVersion    int    `json:"cache_version"`
	// ResultSHA is the SHA-256 of the raw Result bytes. The key fields
	// above only prove the entry belongs to this cell; the checksum is
	// what catches silent payload corruption (a flipped bit inside an
	// otherwise well-formed Result would pass every other check).
	ResultSHA string `json:"result_sha256"`
	// Result is the experiment's structured result.
	Result json.RawMessage `json:"result"`
}

// resultSHA is the Envelope.ResultSHA checksum of a raw result payload.
func resultSHA(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// canonicalEnvelopeParams renders an envelope's parameter map back to
// the canonical sorted key string (every registry entry builds its
// params sorted, so the map round-trips).
func canonicalEnvelopeParams(params map[string]string) string {
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = name + "=" + params[name]
	}
	return strings.Join(parts, "&")
}

// verifyEnvelope checks a decoded envelope against the key it was
// looked up under — experiment, canonical parameters and all three
// versions — so a hand-copied or corrupt cache entry cannot silently
// stand in for a different cell (mirrors the trace store's
// header-vs-key verification).
func verifyEnvelope(k CacheKey, body []byte) bool {
	var env Envelope
	if json.Unmarshal(body, &env) != nil {
		return false
	}
	return env.Experiment == k.Experiment &&
		canonicalEnvelopeParams(env.Params) == k.Params &&
		env.EmulatorVersion == core.EmulatorVersion &&
		env.CodecVersion == trace.CodecVersion &&
		env.CacheVersion == CacheVersion &&
		env.ResultSHA == resultSHA(env.Result)
}

// Get returns the cached body for k and which layer served it
// ("memory" or "disk"), recording the lookup in the hit/miss
// counters. Invalid entries are quarantined and count as misses — the
// caller recomputes and overwrites.
func (c *ResultCache) Get(k CacheKey) (body []byte, source string, ok bool) {
	return c.lookup(k, true)
}

// peek is Get without touching the counters — for double-checked
// lookups whose request already recorded its miss.
func (c *ResultCache) peek(k CacheKey) (body []byte, source string, ok bool) {
	return c.lookup(k, false)
}

func (c *ResultCache) lookup(k CacheKey, record bool) (body []byte, source string, ok bool) {
	h := k.hash()
	c.mu.RLock()
	body, ok = c.mem[h]
	c.mu.RUnlock()
	if ok {
		if record {
			c.memHits.Add(1)
		}
		return body, "memory", true
	}
	miss := func() ([]byte, string, bool) {
		if record {
			c.misses.Add(1)
		}
		return nil, "", false
	}
	rc, err := c.b.Get(k.name())
	if err != nil {
		// Absent, or the backend hiccuped: either way the right next
		// step is the same — recompute. Computation is deterministic
		// and the rewrite is byte-identical, so a transient read error
		// costs one recompute, never a wrong answer.
		return miss()
	}
	// A tiered backend marks peer-fetched reads; the entry still goes
	// through full envelope verification below — a peer's word is
	// never trusted over the checks.
	layer := "disk"
	if bs, ok := rc.(interface{ BlobSource() string }); ok {
		layer = bs.BlobSource()
	}
	body, err = io.ReadAll(rc)
	rc.Close()
	if err != nil {
		if !storage.IsTransient(err) && !storage.AsBackendError(err) {
			c.quarantine(k.name(), h)
		}
		return miss()
	}
	if !verifyEnvelope(k, body) {
		// The entry exists and read cleanly but is not the result it
		// claims to be: corruption (or a forgery). Quarantine it so
		// the recompute's overwrite is never masked.
		c.quarantine(k.name(), h)
		return miss()
	}
	if record {
		c.diskHits.Add(1)
	}
	c.remember(h, body)
	return body, layer, true
}

// quarantine moves a bad entry aside (falling back to deletion like
// the trace store) and drops it from the memory layer.
func (c *ResultCache) quarantine(name, hash string) {
	c.mu.Lock()
	delete(c.mem, hash)
	c.mu.Unlock()
	if err := c.b.Rename(name, storage.QuarantinePrefix+name); err != nil {
		if c.b.Delete(name) != nil {
			return
		}
	}
	c.quarantines.Add(1)
}

// Put stores body as the result for k: atomically through the backend,
// then the in-memory layer. Any error leaves the cache unchanged.
func (c *ResultCache) Put(k CacheKey, body []byte) error {
	err := c.b.Put(k.name(), func(w io.Writer) error {
		_, err := w.Write(body)
		return err
	})
	if err != nil {
		return fmt.Errorf("service: result cache: %w", err)
	}
	c.puts.Add(1)
	c.remember(k.hash(), body)
	return nil
}

// remember inserts into the bounded in-memory layer.
func (c *ResultCache) remember(hash string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.mem) >= maxMemEntries {
		for k := range c.mem {
			delete(c.mem, k)
			break
		}
	}
	c.mem[hash] = body
}

// Len returns the number of complete entries in the backend.
func (c *ResultCache) Len() (int, error) {
	names, err := c.b.List("")
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return 0, nil // a never-written namespace is an empty cache
		}
		return 0, fmt.Errorf("service: result cache: %w", err)
	}
	n := 0
	for _, name := range names {
		if strings.HasSuffix(name, ".json") {
			n++
		}
	}
	return n, nil
}

// CacheScrubReport summarizes one result-cache Scrub pass.
type CacheScrubReport struct {
	// Checked counts entries examined.
	Checked int
	// Quarantined lists entry names moved to quarantine/.
	Quarantined []string
	// Errors holds one diagnostic per quarantined or unreadable entry.
	Errors []error
}

// Scrub validates every entry in the backend: the JSON must parse as
// an envelope and the entry must live at the name its own recorded
// (experiment, params, versions) hash to — a name/content mismatch
// means the bytes rotted or the file was mis-copied. Entries recorded
// under a different build's versions are left alone as long as they
// are internally consistent: they are stale, not corrupt, and a future
// build rollback would serve them again. Bad entries are quarantined.
func (c *ResultCache) Scrub() CacheScrubReport {
	var rep CacheScrubReport
	names, err := c.b.List("")
	if err != nil {
		rep.Errors = append(rep.Errors, fmt.Errorf("service: result cache: %w", err))
		return rep
	}
	for _, name := range names {
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		rep.Checked++
		rc, err := c.b.Get(name)
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("%s: %w", name, err))
			continue
		}
		body, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			if storage.IsTransient(err) || storage.AsBackendError(err) {
				rep.Errors = append(rep.Errors, fmt.Errorf("%s: %w", name, err))
				continue
			}
		}
		var env Envelope
		reason := ""
		if err := json.Unmarshal(body, &env); err != nil {
			reason = fmt.Sprintf("invalid envelope JSON: %v", err)
		} else if env.ResultSHA != resultSHA(env.Result) {
			reason = "result payload checksum mismatch (silent corruption)"
		} else {
			want := sanitizeName(env.Experiment) + "-" +
				cacheHash(env.Experiment, canonicalEnvelopeParams(env.Params),
					env.EmulatorVersion, env.CodecVersion, env.CacheVersion) + ".json"
			if want != name {
				reason = fmt.Sprintf("entry at %s hashes to %s (content does not match its address)", name, want)
			}
		}
		if reason == "" {
			continue
		}
		rep.Quarantined = append(rep.Quarantined, name)
		rep.Errors = append(rep.Errors, fmt.Errorf("%s: %s", name, reason))
		c.quarantine(name, hashFromName(name))
	}
	return rep
}

// hashFromName extracts the 12-hex content address from an entry name
// ("<experiment>-<hash>.json") for memory-layer eviction; unknown
// shapes return "" (harmless: no mem entry to evict).
func hashFromName(name string) string {
	stem := strings.TrimSuffix(name, ".json")
	i := strings.LastIndex(stem, "-")
	if i < 0 {
		return ""
	}
	return stem[i+1:]
}

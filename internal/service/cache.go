// Package service is the experiment results service: a long-running
// HTTP/JSON daemon (cmd/rapwamd) that exposes every table and figure
// of the paper over the experiments grid runner and the persistent
// trace store, memoizing each computed cell in a content-addressed
// on-disk result cache.
//
// The serving pipeline per request is
//
//	request → result cache (memory, then disk) → single-flight
//	        → experiments grid → trace store → emulator
//
// so any experiment cell is computed at most once per (parameters,
// emulator version, codec version): N concurrent identical requests
// trigger exactly one grid run, and every later request — including
// requests to a restarted daemon over the same cache directory — is a
// disk or memory hit with a byte-identical body and zero emulator
// runs. Cancellation flows the other way: the server's base context
// and each request's context reach the grid (and the engine's
// instruction loop) end to end, so shutdown and client disconnects
// abort in-flight computations instead of stranding them.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// CacheVersion is the result-envelope format version; it participates
// in every cache key, so an envelope change invalidates old entries
// instead of serving them in the stale shape.
const CacheVersion = 1

// CacheKey identifies one cached experiment result: the experiment
// name plus its canonical parameter encoding. The emulator version,
// trace codec version and CacheVersion are folded into the content
// address, so results computed by a different engine build are
// distinct entries, exactly like trace-store cells.
type CacheKey struct {
	// Experiment is the registry name ("fig4", "table3", ...).
	Experiment string
	// Params is the canonical parameter encoding ("pes=1,2,4,8&sizes=64,...").
	Params string
}

// hash returns the key's content address (shared scheme with the
// trace store: tracestore.ContentHash).
func (k CacheKey) hash() string {
	return tracestore.ContentHash(k.Experiment, k.Params, core.EmulatorVersion,
		fmt.Sprintf("codec%d", trace.CodecVersion), fmt.Sprintf("rc%d", CacheVersion))
}

// CacheStats are the result cache's counters since open (or the last
// ResetStats).
type CacheStats struct {
	// MemHits / DiskHits split hits by which layer served them.
	MemHits, DiskHits int64
	// Misses counts Get calls that found no valid entry.
	Misses int64
	// Puts counts completed writes.
	Puts int64
}

// maxMemEntries bounds the in-memory layer. Result bodies are small
// (KBs) and the working set of distinct (experiment, params) cells is
// tiny, so a simple count cap suffices; on overflow an arbitrary
// entry is evicted (the disk layer still holds it).
const maxMemEntries = 128

// ResultCache is a content-addressed store of rendered experiment
// results rooted at one directory, with a small in-memory layer in
// front. Writes are atomic (temp file + rename in the same
// directory), so concurrent writers — including separate daemons
// sharing the directory — race benignly and readers only observe
// complete files.
type ResultCache struct {
	dir      string
	memHits  atomic.Int64
	diskHits atomic.Int64
	misses   atomic.Int64
	puts     atomic.Int64

	mu  sync.RWMutex
	mem map[string][]byte
}

// OpenResultCache creates (if needed) and opens a result cache
// directory, sweeping stale *.tmp droppings left by a killed writer
// (same hygiene as tracestore.Open).
func OpenResultCache(dir string) (*ResultCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: empty result cache directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	tracestore.SweepStaleTemps(dir, tracestore.StaleTempAge)
	return &ResultCache{dir: dir, mem: make(map[string][]byte)}, nil
}

// Dir returns the cache's root directory.
func (c *ResultCache) Dir() string { return c.dir }

// Path returns the file a key's result is (or would be) stored at.
func (c *ResultCache) Path(k CacheKey) string {
	return filepath.Join(c.dir, sanitizeName(k.Experiment)+"-"+k.hash()+".json")
}

// sanitizeName keeps file names portable (experiment names are already
// clean identifiers; this is belt and braces, mirroring the trace
// store).
func sanitizeName(s string) string {
	out := []byte(s)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Stats returns the hit/miss/put counters.
func (c *ResultCache) Stats() CacheStats {
	return CacheStats{
		MemHits:  c.memHits.Load(),
		DiskHits: c.diskHits.Load(),
		Misses:   c.misses.Load(),
		Puts:     c.puts.Load(),
	}
}

// ResetStats zeroes the counters.
func (c *ResultCache) ResetStats() {
	c.memHits.Store(0)
	c.diskHits.Store(0)
	c.misses.Store(0)
	c.puts.Store(0)
}

// Envelope is the stored (and served) result shape: the JSON response
// body is exactly these bytes, so a cached result is byte-identical
// across requests and daemon restarts.
type Envelope struct {
	// Experiment is the registry name the result was computed for.
	Experiment string `json:"experiment"`
	// Params are the canonical parameters of the computation.
	Params map[string]string `json:"params"`
	// EmulatorVersion / CodecVersion / CacheVersion pin the producing
	// stack; Get re-verifies them against the running build.
	EmulatorVersion string `json:"emulator_version"`
	CodecVersion    int    `json:"codec_version"`
	CacheVersion    int    `json:"cache_version"`
	// Result is the experiment's structured result.
	Result json.RawMessage `json:"result"`
}

// verifyEnvelope checks a decoded envelope against the key it was
// looked up under — experiment, canonical parameters and all three
// versions — so a hand-copied or corrupt cache file cannot silently
// stand in for a different cell (mirrors the trace store's
// header-vs-key verification). Canonical parameter order is sorted by
// name (every registry entry builds its params sorted), so the
// envelope's map round-trips to the key's canonical string.
func verifyEnvelope(k CacheKey, body []byte) bool {
	var env Envelope
	if json.Unmarshal(body, &env) != nil {
		return false
	}
	names := make([]string, 0, len(env.Params))
	for name := range env.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = name + "=" + env.Params[name]
	}
	return env.Experiment == k.Experiment &&
		strings.Join(parts, "&") == k.Params &&
		env.EmulatorVersion == core.EmulatorVersion &&
		env.CodecVersion == trace.CodecVersion &&
		env.CacheVersion == CacheVersion
}

// Get returns the cached body for k and which layer served it
// ("memory" or "disk"), recording the lookup in the hit/miss
// counters. Unreadable or key-mismatched files count as misses — the
// caller recomputes and overwrites.
func (c *ResultCache) Get(k CacheKey) (body []byte, source string, ok bool) {
	return c.lookup(k, true)
}

// peek is Get without touching the counters — for double-checked
// lookups whose request already recorded its miss.
func (c *ResultCache) peek(k CacheKey) (body []byte, source string, ok bool) {
	return c.lookup(k, false)
}

func (c *ResultCache) lookup(k CacheKey, record bool) (body []byte, source string, ok bool) {
	h := k.hash()
	c.mu.RLock()
	body, ok = c.mem[h]
	c.mu.RUnlock()
	if ok {
		if record {
			c.memHits.Add(1)
		}
		return body, "memory", true
	}
	body, err := os.ReadFile(c.Path(k))
	if err != nil || !verifyEnvelope(k, body) {
		if record {
			c.misses.Add(1)
		}
		return nil, "", false
	}
	if record {
		c.diskHits.Add(1)
	}
	c.remember(h, body)
	return body, "disk", true
}

// Put stores body as the result for k: temp file plus atomic rename,
// then the in-memory layer. Any error leaves the cache unchanged.
func (c *ResultCache) Put(k CacheKey, body []byte) (retErr error) {
	tmp, err := os.CreateTemp(c.dir, "put-*.json.tmp")
	if err != nil {
		return fmt.Errorf("service: result cache: %w", err)
	}
	committed := false
	defer func() {
		// Clean up on error and on panic alike — no droppings.
		if !committed {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(body); err != nil {
		return fmt.Errorf("service: result cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: result cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.Path(k)); err != nil {
		return fmt.Errorf("service: result cache: %w", err)
	}
	committed = true
	c.puts.Add(1)
	c.remember(k.hash(), body)
	return nil
}

// remember inserts into the bounded in-memory layer.
func (c *ResultCache) remember(hash string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.mem) >= maxMemEntries {
		for k := range c.mem {
			delete(c.mem, k)
			break
		}
	}
	c.mem[hash] = body
}

// Len returns the number of complete entries on disk.
func (c *ResultCache) Len() (int, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, fmt.Errorf("service: result cache: %w", err)
	}
	n := 0
	for _, e := range entries {
		if e.Type().IsRegular() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// errShed reports a request refused at admission: the in-flight
// compute limit is reached and the queue is full. The handler maps it
// to 429 with Retry-After — the client did nothing wrong, the server
// is protecting its latency.
var errShed = errors.New("service: compute capacity exhausted, request shed")

// errComputeTimeout reports a computation that exceeded the
// per-request compute budget (Config.ComputeTimeout). The handler maps
// it to 504 — distinguishable from client disconnects and shutdown,
// which map to 503.
var errComputeTimeout = errors.New("service: computation deadline exceeded")

// admission bounds how many flight computations run at once and how
// many may queue for a slot. Cache hits and flight joins never pass
// through admission — only the caller that would START a computation
// acquires a slot, so N identical cold requests still cost one slot
// (single-flight) while N distinct cold requests are throttled to the
// compute limit, and everything beyond limit+queue sheds immediately
// instead of building an unbounded convoy.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
	sheds    atomic.Int64
}

// newAdmission builds an admission gate for maxComputes concurrent
// computations and maxQueue waiters (maxQueue <= 0 defaults to
// 4×maxComputes). maxComputes <= 0 returns nil: unlimited.
func newAdmission(maxComputes, maxQueue int) *admission {
	if maxComputes <= 0 {
		return nil
	}
	if maxQueue <= 0 {
		maxQueue = 4 * maxComputes
	}
	return &admission{slots: make(chan struct{}, maxComputes), maxQueue: int64(maxQueue)}
}

// Sheds returns how many requests were refused at admission.
func (a *admission) Sheds() int64 {
	if a == nil {
		return 0
	}
	return a.sheds.Load()
}

// acquire takes a compute slot, queueing (bounded) when none is free.
// Returns errShed when the queue is full, ctx.Err() if the caller goes
// away while queued.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.sheds.Add(1)
		return errShed
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot.
func (a *admission) release() {
	if a != nil {
		<-a.slots
	}
}

// flightResult is what a completed flight hands every waiter.
type flightResult struct {
	// body is the response body; src reports where it came from
	// ("computed", or a cache layer when the in-flight double-check
	// hit).
	body []byte
	src  string
	// degraded lists storage components the computation had to bypass
	// (compute-without-caching); the handler surfaces them in the
	// X-Degraded header for every waiter.
	degraded []string
}

// flightGroup deduplicates concurrent computations of the same result
// cache key: N simultaneous cold requests for one cell perform exactly
// one grid run, everyone shares the body. It is also where the
// server's two compute-protection mechanisms live, because both are
// per-computation, not per-request:
//
//   - admission (adm): the flight-creating caller must win a compute
//     slot first; joiners ride free. See admission.
//   - compute timeout (timeout): each flight's context carries an
//     optional deadline whose expiry surfaces as errComputeTimeout
//     (504), distinct from client-cancellation 503s.
//
// Cancellation semantics are reference-counted: the computation runs
// on its own goroutine under a context detached from any single
// request, and that context is cancelled only when every caller
// waiting on the flight has gone away (each waiter's own ctx.Done
// decrements the count). One impatient client disconnecting therefore
// cannot abort a computation other clients still want — but when the
// last waiter leaves (or the server's base context cancels every
// request at shutdown), the in-flight grid work is cancelled promptly
// rather than stranded.
//
// Flights are removed from the group on completion, success or
// failure: a successful body lives on in the result cache, and errors
// are deliberately never memoized — the next request retries.
type flightGroup struct {
	adm     *admission
	timeout time.Duration

	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	waiters int
	cancel  context.CancelFunc
	done    chan struct{}
	res     flightResult
	err     error
}

// do returns fn's result for key, joining an in-flight computation if
// one exists and starting one (through admission) otherwise. If ctx is
// cancelled while waiting, do returns ctx.Err() immediately; the
// computation itself keeps running until its last waiter leaves.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (flightResult, error)) (flightResult, error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	f, ok := g.flights[key]
	if !ok {
		// No flight to join: this caller would start a computation, so
		// it is the one that pays admission. Drop the lock while
		// queueing — joiners and other keys must not block behind us.
		g.mu.Unlock()
		if err := g.adm.acquire(ctx); err != nil {
			return flightResult{}, err
		}
		g.mu.Lock()
		if f, ok = g.flights[key]; ok {
			// Lost the race: an identical request started the flight
			// while we queued. Join it and give the slot back.
			g.adm.release()
		} else {
			f = g.launch(ctx, key, fn)
		}
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return flightResult{}, ctx.Err()
	}
}

// launch starts the flight goroutine for key (g.mu must be held). The
// goroutine owns the admission slot and releases it when the
// computation finishes.
func (g *flightGroup) launch(ctx context.Context, key string, fn func(context.Context) (flightResult, error)) *flight {
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	stopTimer := context.CancelFunc(func() {})
	if g.timeout > 0 {
		cctx, stopTimer = context.WithTimeoutCause(cctx, g.timeout, errComputeTimeout)
	}
	f := &flight{cancel: cancel, done: make(chan struct{})}
	g.flights[key] = f
	go func() {
		f.res, f.err = fn(cctx)
		if f.err != nil && context.Cause(cctx) == errComputeTimeout {
			// The budget expired: whatever shape the context error
			// bubbled up in, report the timeout — and NOT as a plain
			// DeadlineExceeded, which the caller's cancellation-retry
			// path would treat as collateral damage and loop on.
			f.err = fmt.Errorf("%w (budget %v)", errComputeTimeout, g.timeout)
		}
		g.mu.Lock()
		delete(g.flights, key)
		g.mu.Unlock()
		g.adm.release()
		close(f.done)
		stopTimer()
		cancel()
	}()
	return f
}

package service

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent computations of the same result
// cache key: N simultaneous cold requests for one cell perform exactly
// one grid run, everyone shares the body.
//
// Cancellation semantics are reference-counted: the computation runs
// on its own goroutine under a context detached from any single
// request, and that context is cancelled only when every caller
// waiting on the flight has gone away (each waiter's own ctx.Done
// decrements the count). One impatient client disconnecting therefore
// cannot abort a computation other clients still want — but when the
// last waiter leaves (or the server's base context cancels every
// request at shutdown), the in-flight grid work is cancelled promptly
// rather than stranded.
//
// Flights are removed from the group on completion, success or
// failure: a successful body lives on in the result cache, and errors
// are deliberately never memoized — the next request retries.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	waiters int
	cancel  context.CancelFunc
	done    chan struct{}
	body    []byte
	src     string
	err     error
}

// do returns fn's result for key, joining an in-flight computation if
// one exists and starting one otherwise (src is fn's report of where
// the body came from — "computed", or a cache layer when the in-flight
// double-check hit). If ctx is cancelled while waiting, do returns
// ctx.Err() immediately; the computation itself keeps running until
// its last waiter leaves.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) ([]byte, string, error)) (body []byte, src string, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	f, ok := g.flights[key]
	if !ok {
		cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		f = &flight{cancel: cancel, done: make(chan struct{})}
		g.flights[key] = f
		go func() {
			f.body, f.src, f.err = fn(cctx)
			g.mu.Lock()
			delete(g.flights, key)
			g.mu.Unlock()
			close(f.done)
			cancel()
		}()
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.body, f.src, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, "", ctx.Err()
	}
}

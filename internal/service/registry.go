package service

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// This file is the experiment registry: one descriptor per
// /v1/experiments/{name} endpoint, owning parameter parsing and
// canonicalization (the cache-key contract: two requests meaning the
// same computation must canonicalize to the same parameter string),
// the computation itself, and the CSV/text renderings derived from the
// cached JSON result.

// param is one canonical (name, value) parameter pair; the slice order
// is the canonical order.
type param struct{ name, value string }

// canonicalParams renders the cache key's parameter component.
func canonicalParams(ps []param) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.name + "=" + p.value
	}
	return strings.Join(parts, "&")
}

// paramMap renders the envelope's parameter map.
func paramMap(ps []param) map[string]string {
	m := make(map[string]string, len(ps))
	for _, p := range ps {
		m[p.name] = p.value
	}
	return m
}

// ParamDoc documents one request parameter for /v1/experiments and
// docs/API.md.
type ParamDoc struct {
	Name    string `json:"name"`
	Default string `json:"default"`
	Doc     string `json:"doc"`
}

// Experiment is one registry entry.
type Experiment struct {
	// Name is the endpoint path component.
	Name string `json:"name"`
	// Summary is the one-line description served by /v1/experiments.
	Summary string `json:"summary"`
	// Params documents the accepted parameters.
	Params []ParamDoc `json:"params"`

	// prepare validates and canonicalizes the request parameters and
	// binds the computation. The returned run closure is only invoked
	// on a cache miss, under the single-flight's context.
	prepare func(q url.Values) (ps []param, run func(ctx context.Context) (any, error), err error)
	// fresh returns a zero result pointer for decoding a cached
	// envelope back into the typed result.
	fresh func() any
	// csv renders the typed result as CSV rows.
	csv func(w *csv.Writer, v any) error
	// text renders the typed result as the CLI's human-readable table.
	text func(v any) string
}

// Registry returns the experiment descriptors in serving order.
func Registry() []*Experiment { return registry }

// Lookup finds a registry entry by name.
func Lookup(name string) (*Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// --- parameter helpers ---

// intParam parses q[name] as an integer in [lo, hi], defaulting when
// absent.
func intParam(q url.Values, name string, def, lo, hi int) (int, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < lo || n > hi {
		return 0, fmt.Errorf("parameter %s=%q: need an integer in [%d, %d]", name, s, lo, hi)
	}
	return n, nil
}

// floatParam parses q[name] as a positive float, defaulting when
// absent.
func floatParam(q url.Values, name string, def float64) (float64, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("parameter %s=%q: need a positive number", name, s)
	}
	return f, nil
}

// intListParam parses q[name] as a comma-separated ascending-sorted
// deduplicated integer list in [lo, hi], defaulting when absent.
func intListParam(q url.Values, name string, def []int, lo, hi int) ([]int, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	seen := make(map[int]bool)
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < lo || n > hi {
			return nil, fmt.Errorf("parameter %s=%q: %q is not an integer in [%d, %d]", name, s, tok, lo, hi)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("parameter %s=%q: empty list", name, s)
	}
	sort.Ints(out)
	return out, nil
}

// ints renders an int list canonically.
func ints(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// fs renders a float canonically (shortest round-trip form) — used
// for cache-key parameter values and CSV cells alike, so the two can
// never disagree.
func fs(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// is is the CSV cell rendering for integers.
func is(n int64) string { return strconv.FormatInt(n, 10) }

// --- result types owned by the service ---

// Table1Result is the storage-object classification in structured form
// (the CLI renders the same data as a table).
type Table1Result struct {
	Rows []Table1Row `json:"rows"`
}

// Table1Row is one storage-object class.
type Table1Row struct {
	Frame    string `json:"frame"`
	Area     string `json:"area"`
	WAM      bool   `json:"wam"`
	Locked   bool   `json:"locked"`
	Locality string `json:"locality"`
}

// BusResult pairs the analytic bus study with its discrete-event
// cross-check (the shape cmd/experiments -exp bus prints).
type BusResult struct {
	Study *experiments.BusStudy `json:"study"`
	DES   *experiments.BusDES   `json:"des"`
}

// AblationsResult bundles the ablation studies (the shape
// cmd/experiments -exp ablations prints).
type AblationsResult struct {
	Granularity *experiments.GranularitySweep `json:"granularity"`
	LineSize    *experiments.LineSizeSweep    `json:"line_size"`
	LockShare   []*experiments.LockShare      `json:"lock_share"`
	Assoc       *experiments.AssocSweep       `json:"assoc"`
}

// fig2Counts expands maxpes exactly the way cmd/experiments does —
// 1, 2, 4, 8, then steps of 4 up to maxpes (8 included even for
// smaller maxpes) — so ?format=text output matches the CLI's for the
// same parameters.
func fig2Counts(maxPEs int) []int {
	counts := []int{1, 2, 4, 8}
	for n := 12; n <= maxPEs; n += 4 {
		counts = append(counts, n)
	}
	return counts
}

var pesDoc = fmt.Sprintf("comma-separated PE counts, each in [1, %d]", trace.MaxPEs)

var registry = []*Experiment{
	{
		Name:    "table1",
		Summary: "storage-object characteristics (paper Table 1; architecture constants, no emulation)",
		prepare: func(q url.Values) ([]param, func(ctx context.Context) (any, error), error) {
			return nil, func(context.Context) (any, error) {
				out := &Table1Result{}
				for _, o := range trace.ObjTypes() {
					loc := "Local"
					if o.Global() {
						loc = "Global"
					}
					out.Rows = append(out.Rows, Table1Row{
						Frame: o.String(), Area: o.Area().String(),
						WAM: o.WAM(), Locked: o.Locked(), Locality: loc,
					})
				}
				return out, nil
			}, nil
		},
		fresh: func() any { return new(Table1Result) },
		csv: func(w *csv.Writer, v any) error {
			t := v.(*Table1Result)
			w.Write([]string{"frame", "area", "wam", "lock", "locality"})
			for _, r := range t.Rows {
				w.Write([]string{r.Frame, r.Area, fmt.Sprint(r.WAM), fmt.Sprint(r.Locked), r.Locality})
			}
			return nil
		},
		text: func(any) string { return experiments.Table1() },
	},
	{
		Name:    "fig2",
		Summary: "RAP-WAM work/overhead vs number of PEs for deriv (paper Figure 2)",
		Params: []ParamDoc{
			{Name: "pes", Default: "", Doc: pesDoc + " (overrides maxpes)"},
			{Name: "maxpes", Default: "16", Doc: "largest PE count of the default 1,2,4,8,12,... sweep"},
		},
		prepare: func(q url.Values) ([]param, func(ctx context.Context) (any, error), error) {
			maxPEs, err := intParam(q, "maxpes", 16, 1, trace.MaxPEs)
			if err != nil {
				return nil, nil, err
			}
			counts, err := intListParam(q, "pes", fig2Counts(maxPEs), 1, trace.MaxPEs)
			if err != nil {
				return nil, nil, err
			}
			ps := []param{{"pes", ints(counts)}}
			return ps, func(ctx context.Context) (any, error) {
				return experiments.RunFigure2(ctx, counts)
			}, nil
		},
		fresh: func() any { return new(experiments.Figure2) },
		csv: func(w *csv.Writer, v any) error {
			f := v.(*experiments.Figure2)
			w.Write([]string{"pes", "work_pct_wam", "speedup", "wait_pct", "idle_pct", "goals_parallel"})
			for _, p := range f.Points {
				w.Write([]string{is(int64(p.PEs)), fs(p.WorkPct), fs(p.Speedup), fs(p.WaitPct), fs(p.IdlePct), is(p.GoalsParallel)})
			}
			return nil
		},
		text: func(v any) string { return v.(*experiments.Figure2).String() },
	},
	{
		Name:    "table2",
		Summary: "benchmark statistics at P processors (paper Table 2)",
		Params: []ParamDoc{
			{Name: "pes", Default: "8", Doc: fmt.Sprintf("PE count in [1, %d]", trace.MaxPEs)},
		},
		prepare: func(q url.Values) ([]param, func(ctx context.Context) (any, error), error) {
			pes, err := intParam(q, "pes", 8, 1, trace.MaxPEs)
			if err != nil {
				return nil, nil, err
			}
			ps := []param{{"pes", strconv.Itoa(pes)}}
			return ps, func(ctx context.Context) (any, error) {
				return experiments.RunTable2(ctx, pes)
			}, nil
		},
		fresh: func() any { return new(experiments.Table2) },
		csv: func(w *csv.Writer, v any) error {
			t := v.(*experiments.Table2)
			w.Write([]string{"benchmark", "instructions", "refs_rapwam", "refs_wam", "goals_parallel", "goals_stolen"})
			for _, r := range t.Rows {
				w.Write([]string{r.Name, is(r.Instructions), is(r.RefsRAPWAM), is(r.RefsWAM), is(r.GoalsParallel), is(r.GoalsStolen)})
			}
			return nil
		},
		text: func(v any) string { return v.(*experiments.Table2).String() },
	},
	{
		Name:    "table3",
		Summary: "fit of small benchmarks to the large-benchmark locality (paper Table 3)",
		prepare: func(q url.Values) ([]param, func(ctx context.Context) (any, error), error) {
			return nil, func(ctx context.Context) (any, error) {
				return experiments.RunTable3(ctx)
			}, nil
		},
		fresh: func() any { return new(experiments.Table3) },
		csv: func(w *csv.Writer, v any) error {
			t := v.(*experiments.Table3)
			header := []string{"cache_words", "etr", "sigma"}
			for _, s := range t.Small {
				header = append(header, "z_"+s)
			}
			header = append(header, "mean_abs_z")
			w.Write(header)
			for i, size := range t.CacheSizes {
				row := []string{is(int64(size)), fs(t.Etr[i]), fs(t.Sigma[i])}
				for _, z := range t.Z[i] {
					row = append(row, fs(z))
				}
				row = append(row, fs(t.MeanAbsZ[i]))
				w.Write(row)
			}
			return nil
		},
		text: func(v any) string { return v.(*experiments.Table3).String() },
	},
	{
		Name:    "fig4",
		Summary: "traffic ratio of the coherency schemes vs cache size (paper Figure 4)",
		Params: []ParamDoc{
			{Name: "pes", Default: "1,2,4,8", Doc: pesDoc},
			{Name: "sizes", Default: "64,128,256,512,1024,2048,4096,8192", Doc: "comma-separated cache sizes in words"},
		},
		prepare: func(q url.Values) ([]param, func(ctx context.Context) (any, error), error) {
			pes, err := intListParam(q, "pes", []int{1, 2, 4, 8}, 1, trace.MaxPEs)
			if err != nil {
				return nil, nil, err
			}
			sizes, err := intListParam(q, "sizes", []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}, 1, 1<<22)
			if err != nil {
				return nil, nil, err
			}
			ps := []param{{"pes", ints(pes)}, {"sizes", ints(sizes)}}
			return ps, func(ctx context.Context) (any, error) {
				return experiments.RunFigure4(ctx, pes, sizes)
			}, nil
		},
		fresh: func() any { return new(experiments.Figure4) },
		csv: func(w *csv.Writer, v any) error {
			f := v.(*experiments.Figure4)
			w.Write([]string{"protocol", "pes", "cache_words", "traffic_ratio"})
			for _, s := range f.Series {
				for i, size := range f.CacheSizes {
					w.Write([]string{s.Protocol.String(), is(int64(s.PEs)), is(int64(size)), fs(s.Ratio[i])})
				}
			}
			return nil
		},
		text: func(v any) string { return v.(*experiments.Figure4).String() },
	},
	{
		Name:    "mlips",
		Summary: "the 2 MLIPS feasibility calculation from measured statistics (paper section 3.3)",
		Params: []ParamDoc{
			{Name: "cache", Default: "256", Doc: "cache size in words for the capture ratio"},
			{Name: "target", Default: "2", Doc: "MLIPS performance target"},
		},
		prepare: func(q url.Values) ([]param, func(ctx context.Context) (any, error), error) {
			cacheWords, err := intParam(q, "cache", 256, 1, 1<<22)
			if err != nil {
				return nil, nil, err
			}
			target, err := floatParam(q, "target", 2)
			if err != nil {
				return nil, nil, err
			}
			ps := []param{{"cache", strconv.Itoa(cacheWords)}, {"target", fs(target)}}
			return ps, func(ctx context.Context) (any, error) {
				return experiments.RunMLIPS(ctx, cacheWords, target)
			}, nil
		},
		fresh: func() any { return new(experiments.MLIPS) },
		csv: func(w *csv.Writer, v any) error {
			m := v.(*experiments.MLIPS)
			w.Write([]string{"metric", "value"})
			rows := [][2]string{
				{"instr_per_li", fs(m.InstrPerLI)},
				{"refs_per_instr", fs(m.RefsPerInstr)},
				{"words_per_li", fs(m.WordsPerLI)},
				{"bytes_per_li", fs(m.BytesPerLI)},
				{"target_mlips", fs(m.TargetMLIPS)},
				{"raw_bandwidth_mbs", fs(m.RawBandwidthMBs)},
				{"capture_ratio", fs(m.CaptureRatio)},
				{"bus_bandwidth_mbs", fs(m.BusBandwidthMBs)},
			}
			for _, r := range rows {
				w.Write(r[:])
			}
			return nil
		},
		text: func(v any) string { return v.(*experiments.MLIPS).String() },
	},
	{
		Name:    "bus",
		Summary: "bus contention: analytic M/M/1 study plus the discrete-event cross-check",
		Params: []ParamDoc{
			{Name: "pes", Default: "8", Doc: fmt.Sprintf("PE count in [1, %d]", trace.MaxPEs)},
			{Name: "cache", Default: "256", Doc: "cache size in words"},
			{Name: "bw", Default: "4", Doc: "bus words per cycle for the DES cross-check"},
			{Name: "desbench", Default: "qsort", Doc: "benchmark replayed through the DES bus"},
		},
		prepare: func(q url.Values) ([]param, func(ctx context.Context) (any, error), error) {
			pes, err := intParam(q, "pes", 8, 1, trace.MaxPEs)
			if err != nil {
				return nil, nil, err
			}
			cacheWords, err := intParam(q, "cache", 256, 1, 1<<22)
			if err != nil {
				return nil, nil, err
			}
			bw, err := floatParam(q, "bw", 4)
			if err != nil {
				return nil, nil, err
			}
			desBench := q.Get("desbench")
			if desBench == "" {
				desBench = "qsort"
			}
			if _, ok := bench.ByName(desBench); !ok {
				return nil, nil, fmt.Errorf("parameter desbench=%q: unknown benchmark", desBench)
			}
			ps := []param{
				{"bw", fs(bw)}, {"cache", strconv.Itoa(cacheWords)},
				{"desbench", desBench}, {"pes", strconv.Itoa(pes)},
			}
			return ps, func(ctx context.Context) (any, error) {
				study, err := experiments.RunBusStudy(ctx, pes, cacheWords)
				if err != nil {
					return nil, err
				}
				des, err := experiments.RunBusDES(ctx, desBench, pes, cacheWords, bw)
				if err != nil {
					return nil, err
				}
				return &BusResult{Study: study, DES: des}, nil
			}, nil
		},
		fresh: func() any { return new(BusResult) },
		csv: func(w *csv.Writer, v any) error {
			b := v.(*BusResult)
			w.Write([]string{"section", "bus_words_per_cycle", "utilization", "efficiency", "mean_wait_cycles"})
			for i := range b.Study.Bandwidths {
				w.Write([]string{"analytic", fs(b.Study.Bandwidths[i]), fs(b.Study.Utilization[i]), fs(b.Study.Efficiency[i]), ""})
			}
			w.Write([]string{"des", fs(b.DES.BusWordsPerCycle), fs(b.DES.DES.Utilization), fs(b.DES.DES.Efficiency), fs(b.DES.DES.MeanWaitCycles)})
			w.Write([]string{"des_analytic", fs(b.DES.BusWordsPerCycle), fs(b.DES.Analytic.Utilization), fs(b.DES.Analytic.Efficiency), fs(b.DES.Analytic.MeanWaitCycles)})
			return nil
		},
		text: func(v any) string {
			b := v.(*BusResult)
			return b.Study.String() + "\n" + b.DES.String()
		},
	},
	{
		Name:    "ablations",
		Summary: "design-choice ablations: CGE granularity, line size, lock share, associativity",
		Params: []ParamDoc{
			{Name: "pes", Default: "8", Doc: fmt.Sprintf("PE count for the lock-share study, in [1, %d]", trace.MaxPEs)},
		},
		prepare: func(q url.Values) ([]param, func(ctx context.Context) (any, error), error) {
			pes, err := intParam(q, "pes", 8, 1, trace.MaxPEs)
			if err != nil {
				return nil, nil, err
			}
			ps := []param{{"pes", strconv.Itoa(pes)}}
			return ps, func(ctx context.Context) (any, error) {
				out := &AblationsResult{}
				var err error
				if out.Granularity, err = experiments.RunGranularitySweep(ctx, []int{0, 1, 2, 3, 4, 6}); err != nil {
					return nil, err
				}
				if out.LineSize, err = experiments.RunLineSizeSweep(ctx, "qsort", 4, 1024, []int{1, 2, 4, 8, 16}); err != nil {
					return nil, err
				}
				for _, b := range []string{"deriv", "qsort", "matrix"} {
					ls, err := experiments.RunLockShare(ctx, b, pes)
					if err != nil {
						return nil, err
					}
					out.LockShare = append(out.LockShare, ls)
				}
				if out.Assoc, err = experiments.RunAssocSweep(ctx, "qsort", 4, 1024, []int{1, 2, 4, 8, 0}); err != nil {
					return nil, err
				}
				return out, nil
			}, nil
		},
		fresh: func() any { return new(AblationsResult) },
		csv: func(w *csv.Writer, v any) error {
			a := v.(*AblationsResult)
			w.Write([]string{"study", "x", "value", "extra"})
			for _, p := range a.Granularity.Points {
				w.Write([]string{"granularity_speedup8", is(int64(p.Depth)), fs(p.Speedup8), is(p.GoalsParallel)})
			}
			for i, lw := range a.LineSize.LineWords {
				w.Write([]string{"line_size_traffic", is(int64(lw)), fs(a.LineSize.Ratio[i]), fs(a.LineSize.MissRatio[i])})
			}
			for _, ls := range a.LockShare {
				w.Write([]string{"lock_share", ls.Benchmark, fs(ls.Share()), is(ls.Total)})
			}
			for i, ways := range a.Assoc.Ways {
				w.Write([]string{"assoc_traffic", is(int64(ways)), fs(a.Assoc.Ratio[i]), ""})
			}
			return nil
		},
		text: func(v any) string {
			a := v.(*AblationsResult)
			var sb strings.Builder
			sb.WriteString(a.Granularity.String())
			sb.WriteByte('\n')
			sb.WriteString(a.LineSize.String())
			sb.WriteByte('\n')
			for _, ls := range a.LockShare {
				sb.WriteString(ls.String())
			}
			sb.WriteByte('\n')
			sb.WriteString(a.Assoc.String())
			return sb.String()
		},
	},
}

// renderCSV runs an entry's CSV renderer over a decoded result.
func renderCSV(e *Experiment, v any, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := e.csv(cw, v); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/storage"
)

// newChaosServer builds a server whose result cache AND trace store sit
// on fault-injected in-memory backends.
func newChaosServer(t *testing.T, f storage.Faults) *Server {
	t.Helper()
	s, err := New(Config{
		ResultBackend: storage.NewFault(storage.NewMem(), f),
		TraceBackend:  storage.NewFault(storage.NewMem(), f),
		Parallelism:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { experiments.SetStore(nil) })
	return s
}

// TestChaosByteIdentity is the fault-injection matrix: with every
// failure mode enabled at >= 10% on both backends, warm and cold
// requests must either return the byte-identical body a fault-free
// server produces or fail with a clean JSON 5xx — never a corrupt 200.
// Several seeds exercise different deterministic fault interleavings.
func TestChaosByteIdentity(t *testing.T) {
	paths := []string{
		"/v1/experiments/table2?pes=2",
		"/v1/experiments/fig2?pes=1,2",
		"/v1/experiments/mlips?cache=64",
	}
	// Golden bodies from a fault-free server (envelopes are pure
	// functions of the cell, so they are comparable across servers).
	golden := map[string][]byte{}
	gs := newTestServer(t)
	for _, p := range paths {
		golden[p] = append([]byte(nil), getOK(t, gs.Handler(), p).Body.Bytes()...)
	}
	experiments.SetStore(nil)

	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := newChaosServer(t, storage.Faults{
				Seed:      seed,
				ReadErr:   0.15,
				WriteErr:  0.10,
				OpErr:     0.05,
				TornWrite: 0.10,
				BitFlip:   0.10,
			})
			h := s.Handler()
			oks, failures := 0, 0
			for round := 0; round < 4; round++ { // round 0 cold, later rounds warm-ish
				for _, p := range paths {
					w := get(t, h, p)
					switch {
					case w.Code == http.StatusOK:
						oks++
						if !bytes.Equal(w.Body.Bytes(), golden[p]) {
							t.Fatalf("round %d %s: 200 body differs from fault-free golden", round, p)
						}
					case w.Code >= 500 && w.Code < 600:
						failures++
						var e apiError
						if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
							t.Fatalf("round %d %s: %d body is not a JSON error: %q", round, p, w.Code, w.Body.String())
						}
					default:
						t.Fatalf("round %d %s: unexpected status %d: %s", round, p, w.Code, w.Body.String())
					}
				}
			}
			if oks == 0 {
				t.Fatal("no request succeeded under fault injection (self-healing is not healing)")
			}
			t.Logf("seed %d: %d ok (byte-identical), %d clean failures", seed, oks, failures)
		})
	}
}

// TestResultCorruptionHealsTransparently damages a cached result on
// disk and requires the next read to quarantine it, recompute, and
// serve a byte-identical body — with the quarantine visible in
// /v1/stats.
func TestResultCorruptionHealsTransparently(t *testing.T) {
	resultDir, traceDir := t.TempDir(), t.TempDir()
	s1 := newTestServerAt(t, resultDir, traceDir)
	const path = "/v1/experiments/table2?pes=2"
	cold := getOK(t, s1.Handler(), path).Body.Bytes()

	// Find the one cache entry and flip a byte in its JSON.
	names, err := s1.cache.Backend().List("")
	if err != nil || len(names) != 1 {
		t.Fatalf("cache entries: %v, %v", names, err)
	}
	entryPath := s1.cache.Dir() + "/" + names[0]
	data, err := os.ReadFile(entryPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(entryPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh server over the same directories (the restart pattern;
	// also drops the in-memory layer so the disk read really happens).
	s2 := newTestServerAt(t, resultDir, traceDir)
	w := getOK(t, s2.Handler(), path)
	if !bytes.Equal(w.Body.Bytes(), cold) {
		t.Fatal("healed response differs from the original body")
	}
	if got := w.Header().Get("X-Result-Source"); got != "computed" {
		t.Errorf("healed response source = %q, want computed (the corrupt entry cannot be a hit)", got)
	}

	var stats statsBody
	if err := json.Unmarshal(getOK(t, s2.Handler(), "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ResultCache.Quarantines != 1 {
		t.Fatalf("stats quarantines = %d, want 1", stats.ResultCache.Quarantines)
	}
	// The recompute re-stores the entry under the same content-addressed
	// name, so the path exists again — but with the damage gone.
	healed, err := os.ReadFile(entryPath)
	if err != nil {
		t.Fatalf("recomputed entry was not re-stored: %v", err)
	}
	if bytes.Equal(healed, data) {
		t.Fatal("corrupt entry still in place")
	}
	// The recomputed entry is back on disk and valid: a third server
	// serves it as a disk hit.
	s3 := newTestServerAt(t, resultDir, traceDir)
	w3 := getOK(t, s3.Handler(), path)
	if got := w3.Header().Get("X-Result-Source"); got != "disk" {
		t.Errorf("post-heal source = %q, want disk", got)
	}
	if !bytes.Equal(w3.Body.Bytes(), cold) {
		t.Fatal("post-heal disk body differs")
	}
}

// TestLoadShedding pins the admission contract: with 1 compute slot and
// a queue of 1, four concurrent cold requests for DISTINCT experiments
// admit one, queue one, and shed the rest with 429 + Retry-After.
func TestLoadShedding(t *testing.T) {
	var blockers []*blockingExperiment
	for i := 0; i < 4; i++ {
		blockers = append(blockers, newBlockingExperiment(t, fmt.Sprintf("shedtest%d", i)))
	}
	s, err := New(Config{
		ResultBackend: storage.NewMem(),
		MaxComputes:   1,
		MaxQueue:      1,
		Parallelism:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { experiments.SetStore(nil) })
	h := s.Handler()

	type resp struct {
		code       int
		retryAfter string
		body       []byte
	}
	results := make([]chan resp, 4)
	issue := func(i int) {
		results[i] = make(chan resp, 1)
		go func() {
			w := get(t, h, "/v1/experiments/"+blockers[i].exp.Name)
			results[i] <- resp{w.Code, w.Header().Get("Retry-After"), w.Body.Bytes()}
		}()
	}

	issue(0)
	<-blockers[0].started // request 0 holds the compute slot
	issue(1)              // request 1 queues (slot busy, queue has room)
	// Wait until request 1 is actually queued, not still dialing.
	for i := 0; i < 1000 && s.flights.adm.queued.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.flights.adm.queued.Load() != 1 {
		t.Fatal("request 1 did not queue")
	}
	issue(2) // queue full: shed
	issue(3) // shed
	for _, i := range []int{2, 3} {
		r := <-results[i]
		if r.code != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 429 (%s)", i, r.code, r.body)
		}
		if r.retryAfter == "" {
			t.Fatalf("request %d: 429 without Retry-After", i)
		}
	}
	if got := s.Sheds(); got != 2 {
		t.Fatalf("Sheds() = %d, want 2", got)
	}
	// Exactly one computation ever started.
	select {
	case <-blockers[1].started:
		t.Fatal("second computation started while the slot was held")
	default:
	}
	// Release: both admitted requests complete OK.
	close(blockers[0].unblock)
	close(blockers[1].unblock)
	for _, i := range []int{0, 1} {
		if r := <-results[i]; r.code != http.StatusOK {
			t.Fatalf("request %d: status %d after release (%s)", i, r.code, r.body)
		}
	}
}

// TestSingleFlightRidesFreeThroughAdmission: N identical requests need
// only ONE compute slot — joiners must not consume admission capacity.
func TestSingleFlightRidesFreeThroughAdmission(t *testing.T) {
	b := newBlockingExperiment(t, "joinfree")
	s, err := New(Config{
		ResultBackend: storage.NewMem(),
		MaxComputes:   1,
		MaxQueue:      1,
		Parallelism:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { experiments.SetStore(nil) })
	h := s.Handler()

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	launchOne := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i] = get(t, h, "/v1/experiments/joinfree").Code
		}()
	}
	launchOne(0)
	<-b.started
	for i := 1; i < n; i++ {
		launchOne(i)
	}
	// Joiners must enqueue onto the flight, not the admission queue, so
	// none of them shed even with queue capacity 1.
	time.Sleep(20 * time.Millisecond)
	close(b.unblock)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("identical request %d: status %d, want 200 (joiners ride free)", i, c)
		}
	}
	if got := s.Sheds(); got != 0 {
		t.Fatalf("identical requests shed %d times", got)
	}
	if got := s.Computes(); got != 1 {
		t.Fatalf("computes = %d, want 1", got)
	}
}

// TestComputeTimeout504 pins the budget contract: a computation that
// exceeds ComputeTimeout maps to 504 (not the 503 of a client
// disconnect) and counts in /v1/stats.
func TestComputeTimeout504(t *testing.T) {
	newBlockingExperiment(t, "stuck") // parks until its ctx dies
	s, err := New(Config{
		ResultBackend:  storage.NewMem(),
		ComputeTimeout: 50 * time.Millisecond,
		Parallelism:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { experiments.SetStore(nil) })
	w := get(t, s.Handler(), "/v1/experiments/stuck")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("stuck computation: status %d, want 504 (%s)", w.Code, w.Body.String())
	}
	var stats statsBody
	if err := json.Unmarshal(getOK(t, s.Handler(), "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ComputeTimeouts != 1 {
		t.Fatalf("compute_timeouts = %d, want 1", stats.ComputeTimeouts)
	}
}

// TestHealthzProbesComponents pins the deepened health check: a healthy
// server reports per-component "ok"; a server whose result backend
// cannot write turns 503 with the failure named.
func TestHealthzProbesComponents(t *testing.T) {
	s := newTestServer(t)
	w := getOK(t, s.Handler(), "/v1/healthz")
	var body struct {
		Status     string            `json:"status"`
		Components map[string]string `json:"components"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Components["result_cache"] != "ok" || body.Components["trace_store"] != "ok" {
		t.Fatalf("healthy server healthz: %s", w.Body.String())
	}
	experiments.SetStore(nil)

	broken, err := New(Config{
		ResultBackend: storage.NewFault(storage.NewMem(), storage.Faults{WriteErr: 1}),
		Parallelism:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { experiments.SetStore(nil) })
	w2 := get(t, broken.Handler(), "/v1/healthz")
	if w2.Code != http.StatusServiceUnavailable {
		t.Fatalf("write-dead backend healthz: status %d, want 503 (%s)", w2.Code, w2.Body.String())
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "unhealthy" || body.Components["result_cache"] == "ok" {
		t.Fatalf("unhealthy healthz body: %s", w2.Body.String())
	}
}

// TestDegradedServeWithoutCaching pins graceful degradation: when the
// result cache cannot be written, the response is still served (200,
// correct body) with X-Degraded naming the component.
func TestDegradedServeWithoutCaching(t *testing.T) {
	golden := newTestServer(t)
	const path = "/v1/experiments/table2?pes=2"
	want := append([]byte(nil), getOK(t, golden.Handler(), path).Body.Bytes()...)
	experiments.SetStore(nil)

	s, err := New(Config{
		ResultBackend: storage.NewFault(storage.NewMem(), storage.Faults{WriteErr: 1}),
		Parallelism:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { experiments.SetStore(nil) })
	w := getOK(t, s.Handler(), path)
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatal("degraded body differs from golden")
	}
	if got := w.Header().Get("X-Degraded"); got != "result-cache" {
		t.Fatalf("X-Degraded = %q, want result-cache", got)
	}
	var stats statsBody
	if err := json.Unmarshal(getOK(t, s.Handler(), "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.DegradedServes == 0 {
		t.Fatal("degraded_serves did not count")
	}
}

// TestScrubRepairsBothStores runs Server.Scrub over deliberately
// damaged stores and checks the damage is quarantined and the next
// request recomputes transparently.
func TestScrubRepairsBothStores(t *testing.T) {
	resultDir, traceDir := t.TempDir(), t.TempDir()
	s := newTestServerAt(t, resultDir, traceDir)
	const path = "/v1/experiments/table2?pes=2"
	want := append([]byte(nil), getOK(t, s.Handler(), path).Body.Bytes()...)

	// Damage the one result entry and one stored trace.
	names, err := s.cache.Backend().List("")
	if err != nil || len(names) != 1 {
		t.Fatalf("cache entries: %v, %v", names, err)
	}
	damage := func(p string) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x08
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	damage(s.cache.Dir() + "/" + names[0])
	traces, err := s.store.Backend().List("")
	if err != nil || len(traces) == 0 {
		t.Fatalf("trace entries: %v, %v", traces, err)
	}
	damage(s.store.Dir() + "/" + traces[0])

	sum := s.Scrub()
	if len(sum.CacheReport.Quarantined) != 1 {
		t.Fatalf("cache scrub quarantined %v, want 1 entry", sum.CacheReport.Quarantined)
	}
	if len(sum.TraceReport.Quarantined) != 1 {
		t.Fatalf("trace scrub quarantined %v, want 1 trace", sum.TraceReport.Quarantined)
	}
	// Post-scrub request recomputes byte-identically (the in-memory
	// layer was invalidated by the quarantine).
	w := getOK(t, s.Handler(), path)
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatal("post-scrub body differs")
	}
	if rep := s.Scrub(); len(rep.CacheReport.Quarantined)+len(rep.TraceReport.Quarantined) != 0 {
		t.Fatal("second scrub found damage after the heal")
	}
}

package service

import (
	"errors"
	"io"
	iofs "io/fs"
	"net/http"
	"testing"
	"time"

	"repro/internal/storage"
)

// Cluster-tier benchmarks (scripts/bench_cluster.sh records them in
// BENCH_cluster.json): what a warm request costs when the answer is on
// this node's own disk, when it must be fetched from a peer, and when
// the node has to proxy the whole compute to the cell's owner — the
// three price points of the cluster read path.

const clusterBenchPath = "/v1/experiments/table2?pes=2"

var clusterBenchKey = CacheKey{Experiment: "table2", Params: "pes=2"}

// benchFleet builds a two-node fleet with the benchmark cell warmed on
// the cell's owner, returning (fleet, owner index, non-owner index).
func benchFleet(b *testing.B, wrap func(storage.Backend) storage.Backend) (*testFleet, int, int) {
	b.Helper()
	f := newBenchFleet(b, 2, wrap)
	owner := -1
	o := storage.Rendezvous(clusterBenchKey.hash(), f.urls)[0]
	for i, nd := range f.nodes {
		if nd.url == o {
			owner = i
		}
	}
	if owner < 0 {
		b.Fatalf("owner %s not in fleet %v", o, f.urls)
	}
	resp, err := http.Get(f.nodes[owner].url + clusterBenchPath)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warming owner: status %d", resp.StatusCode)
	}
	return f, owner, 1 - owner
}

// newBenchFleet is newTestFleet for benchmarks (testing.B cleanup).
func newBenchFleet(b *testing.B, n int, wrap func(storage.Backend) storage.Backend) *testFleet {
	b.Helper()
	f := &testFleet{wrap: wrap}
	for i := 0; i < n; i++ {
		nd := &testNode{result: storage.NewMem()}
		nd.hts = newNodeListener(nd)
		b.Cleanup(nd.hts.Close)
		nd.url = nd.hts.URL
		f.nodes = append(f.nodes, nd)
		f.urls = append(f.urls, nd.url)
	}
	for _, nd := range f.nodes {
		srv, err := New(Config{
			ResultBackend: nd.result,
			Parallelism:   2,
			Peers:         f.urls,
			SelfURL:       nd.url,
			PeerClient:    &http.Client{Timeout: 30 * time.Second},
			PeerWrap:      f.wrap,
		})
		if err != nil {
			b.Fatal(err)
		}
		nd.srv = srv
		h := srv.Handler()
		nd.handler.Store(&h)
	}
	return f
}

// evict drops a node's copy of the benchmark cell from both cache
// layers, so the next request must go to the cluster.
func evict(b *testing.B, nd *testNode) {
	b.Helper()
	nd.srv.cache.mu.Lock()
	delete(nd.srv.cache.mem, clusterBenchKey.hash())
	nd.srv.cache.mu.Unlock()
	if err := nd.result.Delete(clusterBenchKey.name()); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		b.Fatalf("evicting local copy: %v", err)
	}
}

func benchGet(b *testing.B, client *http.Client, url string) {
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkClusterWarmLocalHit: the baseline — the requested cell is in
// the node's own cache (full HTTP round trip included), the price every
// non-first request pays regardless of cluster size.
func BenchmarkClusterWarmLocalHit(b *testing.B) {
	f, owner, _ := benchFleet(b, nil)
	client := &http.Client{Timeout: 30 * time.Second}
	url := f.nodes[owner].url + clusterBenchPath
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, client, url)
	}
}

// BenchmarkClusterWarmPeerFetch: the cell is warm on a peer but absent
// locally — one blob fetch over HTTP, envelope verification and a local
// write-through per request (the local copy is evicted every
// iteration to keep the path cold).
func BenchmarkClusterWarmPeerFetch(b *testing.B) {
	f, _, other := benchFleet(b, nil)
	client := &http.Client{Timeout: 30 * time.Second}
	url := f.nodes[other].url + clusterBenchPath
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		evict(b, f.nodes[other])
		b.StartTimer()
		benchGet(b, client, url)
	}
}

// BenchmarkClusterColdProxyHop: the cell is absent locally AND the peer
// blob fetch is unavailable (every peer read faults), so the node runs
// the full cold path: miss, failed peer fetch, proxied compute to the
// warm owner, verification and local write-through. The delta over
// WarmPeerFetch is what the proxy hop itself costs.
func BenchmarkClusterColdProxyHop(b *testing.B) {
	f, _, other := benchFleet(b, func(bk storage.Backend) storage.Backend {
		return storage.NewFault(bk, storage.Faults{Seed: 1, ReadErr: 1})
	})
	client := &http.Client{Timeout: 30 * time.Second}
	url := f.nodes[other].url + clusterBenchPath
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		evict(b, f.nodes[other])
		b.StartTimer()
		benchGet(b, client, url)
	}
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// Config parameterizes a Server.
type Config struct {
	// ResultDir roots the content-addressed result cache (required
	// unless ResultBackend is set).
	ResultDir string
	// TraceDir optionally attaches a persistent trace store, so cold
	// experiment computations reuse (and warm) stored traces.
	TraceDir string
	// ResultBackend / TraceBackend, when non-nil, override the
	// directory backends — in-memory backends for tests, fault
	// wrappers for chaos runs, networked backends later. A non-nil
	// TraceBackend attaches a trace store even when TraceDir is "".
	ResultBackend storage.Backend
	TraceBackend  storage.Backend
	// Parallelism bounds the experiments grid worker pool (0 keeps the
	// current setting).
	Parallelism int
	// Shards sets intra-cell parallelism — set-shard replay workers
	// per cache configuration and trace-generation encode workers —
	// within the grid's shared budget (0 keeps the current setting,
	// negative selects GOMAXPROCS). Results are bit-identical at any
	// setting.
	Shards int
	// ExecShards sets sharded emulation — host goroutines speculating
	// independent PEs' cycles inside each engine run — within the same
	// shared grid budget (0 keeps the current setting, negative
	// selects GOMAXPROCS, 1 is the serial dispatcher). Traces and
	// results are bit-identical at any setting.
	ExecShards int
	// MaxComputes caps concurrent experiment computations (flights);
	// 0 means unlimited. Cache hits are never throttled.
	MaxComputes int
	// MaxQueue caps cold requests waiting for a compute slot; beyond
	// it requests shed with 429 + Retry-After. 0 defaults to
	// 4×MaxComputes. Ignored when MaxComputes is 0.
	MaxQueue int
	// ComputeTimeout bounds each computation's wall-clock time;
	// expiry returns 504. 0 means no per-compute deadline.
	ComputeTimeout time.Duration
	// StaleTempAge is the age past which temp-file droppings (and
	// aged quarantined objects) are swept at open and by the
	// background scrubber; 0 selects tracestore.StaleTempAge (1h).
	StaleTempAge time.Duration
	// ScrubInterval, when positive, runs a background scrub loop
	// (Server.Scrub: full verification of both stores, quarantining
	// what fails, plus a temp sweep) at that period under Serve.
	ScrubInterval time.Duration
	// Peers lists every cluster member's base URL (http://host:port),
	// including this node's own (SelfURL). With two or more distinct
	// members the result cache — and the trace store, when attached —
	// become cluster-backed: local misses fetch from peers' blob APIs
	// and write through locally, and cold computes route to the cell's
	// rendezvous owner so the fleet runs each cell exactly once
	// cluster-wide. Empty (or just this node) disables clustering.
	Peers []string
	// SelfURL is this node's own base URL, matching its entry in Peers.
	SelfURL string
	// PeerClient is the HTTP client for peer blob fetches and proxied
	// computes (nil: a 10-second-timeout default).
	PeerClient *http.Client
	// PeerWrap, when non-nil, wraps each store's peer-fetch backend —
	// the cluster tests inject storage.Fault here to make the wire
	// hostile.
	PeerWrap func(b storage.Backend) storage.Backend
	// Log, when non-nil, receives one line per notable server event
	// (startup, compute begin/end, cache write failures, scrubs).
	Log func(msg string)
}

// Server is the experiment results service: an http.Handler serving
// the /v1 API over the result cache, admission gate, single-flight
// group and experiments grid.
type Server struct {
	cfg     Config
	cache   *ResultCache
	store   *tracestore.Store
	mux     *http.ServeMux
	flights flightGroup
	start   time.Time

	// cluster is nil on a solo node. resultTier/traceTier are the
	// Tiered compositions when clustered (their Local() is what the
	// blob API serves).
	cluster    *cluster
	resultTier *storage.Tiered
	traceTier  *storage.Tiered

	requests atomic.Int64
	errors   atomic.Int64
	inflight atomic.Int64
	computes atomic.Int64
	timeouts atomic.Int64
	degraded atomic.Int64

	// healthMu serializes healthz probes: they round-trip a
	// fixed-name object per backend, so concurrent probes would race
	// benignly but report noise.
	healthMu sync.Mutex
}

// New builds a Server: opens (creating if needed) the result cache,
// attaches the trace store when configured, and wires the routes.
//
// The experiments grid the server computes on is process-global
// (experiments.SetStore / SetParallelism), so run ONE server per
// process: constructing a second server with a different TraceDir
// rewires the first one's compute path to the new store. Sequential
// construction over the same directories (the restart pattern, and
// what the tests do) is fine.
func New(cfg Config) (*Server, error) {
	tempAge := cfg.StaleTempAge
	if tempAge <= 0 {
		tempAge = tracestore.StaleTempAge
	}
	// Resolve the LOCAL backends first: they are what this node
	// mutates, scrubs, and serves to peers over the blob API.
	var localResult storage.Backend
	if cfg.ResultBackend != nil {
		localResult = cfg.ResultBackend
	} else {
		if cfg.ResultDir == "" {
			return nil, fmt.Errorf("service: empty result cache directory")
		}
		d, err := storage.NewDir(cfg.ResultDir, tempAge)
		if err != nil {
			return nil, fmt.Errorf("service: result cache: %w", err)
		}
		localResult = d
	}
	var localTrace storage.Backend
	switch {
	case cfg.TraceBackend != nil:
		localTrace = cfg.TraceBackend
	case cfg.TraceDir != "":
		d, err := storage.NewDir(cfg.TraceDir, tempAge)
		if err != nil {
			return nil, fmt.Errorf("tracestore: %w", err)
		}
		localTrace = d
	}

	s := &Server{cfg: cfg, start: time.Now()}
	clu, err := newCluster(cfg)
	if err != nil {
		return nil, err
	}
	s.cluster = clu

	// When clustered, both stores sit on a Tiered composition: local
	// first, peer-fetch with local write-through on miss. Everything
	// above the Backend interface — cache verification, quarantining,
	// the trace codec's CRCs — is unchanged, which is the point: a
	// corrupt peer blob heals exactly like a corrupt local one.
	resultB, traceB := localResult, localTrace
	if clu != nil {
		s.resultTier = storage.NewTiered(localResult, clu.peerBackend("results", cfg.PeerWrap))
		resultB = s.resultTier
		if localTrace != nil {
			s.traceTier = storage.NewTiered(localTrace, clu.peerBackend("traces", cfg.PeerWrap))
			traceB = s.traceTier
		}
	}
	s.cache = NewResultCacheOn(resultB)
	if traceB != nil {
		s.store = tracestore.NewOn(traceB)
	}

	s.flights.adm = newAdmission(cfg.MaxComputes, cfg.MaxQueue)
	s.flights.timeout = cfg.ComputeTimeout
	if s.store != nil {
		experiments.SetStore(s.store)
	}
	if cfg.Parallelism != 0 {
		experiments.SetParallelism(cfg.Parallelism)
	}
	if cfg.Shards != 0 {
		experiments.SetShards(cfg.Shards)
	}
	if cfg.ExecShards != 0 {
		experiments.SetExecShards(cfg.ExecShards)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	mux.HandleFunc("GET /v1/traces/{bench}", s.handleTrace)
	// The blob API serves this node's LOCAL objects to peers (the
	// cluster read tier). Serving the local backend — never the Tiered
	// wrapper — means a miss here is final: peers cannot bounce a
	// lookup around the fleet.
	mux.Handle("/v1/blobs/results/", http.StripPrefix("/v1/blobs/results/", storage.BlobHandler(localResult)))
	if localTrace != nil {
		mux.Handle("/v1/blobs/traces/", http.StripPrefix("/v1/blobs/traces/", storage.BlobHandler(localTrace)))
	}
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler (request counting
// included).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		s.mux.ServeHTTP(w, r)
	})
}

// ResultCache exposes the server's result cache (stats, tests).
func (s *Server) ResultCache() *ResultCache { return s.cache }

// TraceStore exposes the server's trace store (nil when none is
// attached).
func (s *Server) TraceStore() *tracestore.Store { return s.store }

// Computes returns how many experiment computations (cache fills) the
// server has performed — the observable that verifies single-flight
// deduplication and warm-cache serving.
func (s *Server) Computes() int64 { return s.computes.Load() }

// Sheds returns how many requests were refused at admission (429).
func (s *Server) Sheds() int64 { return s.flights.adm.Sheds() }

// logf reports one server event.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(fmt.Sprintf(format, args...))
	}
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON marshals v with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// fail records and writes one error response.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleHealthz actively probes every storage component — a full
// Put/Get/compare/Delete round-trip per backend — and reports
// per-component status. Any failing component returns 503 so a load
// balancer can drain the node before clients hit a read-only disk;
// the probe object is tiny, so polling every few seconds is fine.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	components := map[string]string{}
	healthy := true
	probe := func(name string, b storage.Backend) {
		if err := storage.Probe(b); err != nil {
			components[name] = err.Error()
			healthy = false
		} else {
			components[name] = "ok"
		}
	}
	probe("result_cache", localBackend(s.cache.Backend()))
	if s.store != nil {
		probe("trace_store", localBackend(s.store.Backend()))
	}
	if s.cluster != nil {
		// Peer reachability is informational: a dead peer degrades the
		// cluster tier (this node falls back to local compute), it does
		// not make this node unhealthy — draining survivors because a
		// peer died would turn one failure into an outage.
		up, total := s.cluster.reachable(time.Second)
		state := "ok"
		if up < total {
			state = "degraded"
		}
		components["peers"] = fmt.Sprintf("%s (%d/%d reachable)", state, up, total)
	}
	body := map[string]any{
		"status":           "ok",
		"emulator_version": core.EmulatorVersion,
		"components":       components,
	}
	status := http.StatusOK
	if !healthy {
		body["status"] = "unhealthy"
		status = http.StatusServiceUnavailable
		s.errors.Add(1)
	}
	writeJSON(w, status, body)
}

// statsBody is the /v1/stats response shape.
type statsBody struct {
	UptimeSeconds   float64           `json:"uptime_seconds"`
	Requests        int64             `json:"requests"`
	Errors          int64             `json:"errors"`
	Inflight        int64             `json:"inflight"`
	Computes        int64             `json:"computes"`
	Sheds           int64             `json:"sheds"`
	ComputeTimeouts int64             `json:"compute_timeouts"`
	DegradedServes  int64             `json:"degraded_serves"`
	EngineRuns      int64             `json:"engine_runs"`
	ResultCache     CacheStats        `json:"result_cache"`
	TraceStore      *tracestore.Stats `json:"trace_store,omitempty"`
	Cluster         *clusterStatsBody `json:"cluster,omitempty"`
	EmulatorVersion string            `json:"emulator_version"`
	CodecVersion    int               `json:"codec_version"`
	Parallelism     int               `json:"parallelism"`
	Shards          int               `json:"shards"`
	ExecShards      int               `json:"exec_shards"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body := statsBody{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.requests.Load(),
		Errors:          s.errors.Load(),
		Inflight:        s.inflight.Load(),
		Computes:        s.computes.Load(),
		Sheds:           s.Sheds(),
		ComputeTimeouts: s.timeouts.Load(),
		DegradedServes:  s.degraded.Load(),
		EngineRuns:      bench.EngineRuns(),
		ResultCache:     s.cache.Stats(),
		EmulatorVersion: core.EmulatorVersion,
		CodecVersion:    trace.CodecVersion,
		Parallelism:     experiments.Parallelism(),
		Shards:          experiments.Shards(),
		ExecShards:      experiments.ExecShards(),
	}
	if s.store != nil {
		st := s.store.Stats()
		body.TraceStore = &st
	}
	if s.cluster != nil {
		cb := &clusterStatsBody{
			Self:            s.cluster.self,
			Peers:           s.cluster.peers,
			ProxiedComputes: s.cluster.proxied.Load(),
			ProxyFallbacks:  s.cluster.proxyFallbacks.Load(),
			ProxiedServes:   s.cluster.proxiedServes.Load(),
		}
		if s.resultTier != nil {
			st := s.resultTier.Stats()
			cb.ResultPeer = &st
		}
		if s.traceTier != nil {
			st := s.traceTier.Stats()
			cb.TracePeer = &st
		}
		body.Cluster = cb
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": Registry()})
}

// handleExperiment serves one experiment: parse and canonicalize the
// parameters, consult the result cache, and on a miss compute through
// admission and the single-flight group under a context that shutdown
// and client disconnects cancel.
//
// Error mapping (docs/API.md "Failure modes"): malformed parameters
// 400 naming the field; shed at admission 429 + Retry-After; client
// disconnect or shutdown 503; compute budget exceeded 504; everything
// else 500. A response computed while a storage component was bypassed
// carries X-Degraded naming the components.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	exp, ok := Lookup(name)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown experiment %q (see /v1/experiments)", name)
		return
	}
	q := r.URL.Query()
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "csv" && format != "text" {
		s.fail(w, http.StatusBadRequest, "parameter format=%q: want json, csv or text", format)
		return
	}
	ps, run, err := exp.prepare(q)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%s: %v", name, err)
		return
	}
	key := CacheKey{Experiment: name, Params: canonicalParams(ps)}
	// A request another node already proxied once is served entirely
	// locally — fetch, compute, or fail — never proxied again, so a
	// stale peer list cannot bounce a request around the fleet.
	proxied := r.Header.Get(proxyHeader) != ""
	if proxied && s.cluster != nil {
		s.cluster.proxiedServes.Add(1)
	}

	body, source, ok := s.cache.Get(key)
	var degraded []string
	if !ok {
		res, err := s.compute(r.Context(), key, ps, run, proxied)
		if err != nil {
			switch {
			case errors.Is(err, errShed):
				w.Header().Set("Retry-After", "1")
				s.fail(w, http.StatusTooManyRequests, "%s: %v", name, err)
			case errors.Is(err, errComputeTimeout):
				s.timeouts.Add(1)
				s.fail(w, http.StatusGatewayTimeout, "%s: %v", name, err)
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				// Shutdown or client disconnect: the connection is
				// (about to be) gone; 503 tells any proxy the truth.
				s.fail(w, http.StatusServiceUnavailable, "%s: computation cancelled: %v", name, err)
			default:
				s.fail(w, http.StatusInternalServerError, "%s: %v", name, err)
			}
			return
		}
		body, source, degraded = res.body, res.src, res.degraded
	}

	if len(degraded) > 0 {
		s.degraded.Add(1)
		w.Header().Set("X-Degraded", strings.Join(degraded, ","))
	}
	w.Header().Set("X-Result-Source", source)
	w.Header().Set("X-Emulator-Version", core.EmulatorVersion)
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case "csv", "text":
		v, err := decodeResult(exp, body)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "%s: decoding cached result: %v", name, err)
			return
		}
		if format == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			if err := renderCSV(exp, v, w); err != nil {
				s.fail(w, http.StatusInternalServerError, "%s: rendering csv: %v", name, err)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, exp.text(v))
	}
}

// compute fills the cache for key through the single-flight group:
// concurrent identical requests share one grid run; the computation's
// context is cancelled only when every waiter has disconnected (or the
// server is shutting down, which cancels every request). A context
// error with the requester's own context still live means this flight
// was collateral damage of someone ELSE's cancellation — joining a
// flight in the window after its last previous waiter disconnected,
// or sharing a trace-store cell with a cancelled experiment's grid run
// — so the request retries: it hits the cache, starts a fresh flight
// (cancelled cells are evicted from every memo layer), or in the worst
// case joins another doomed flight and loops again. Shed and
// compute-timeout errors are final — never retried here.
func (s *Server) compute(ctx context.Context, key CacheKey, ps []param, run func(context.Context) (any, error), proxied bool) (flightResult, error) {
	for {
		res, err := s.computeOnce(ctx, key, ps, run, proxied)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return res, err
	}
}

func (s *Server) computeOnce(ctx context.Context, key CacheKey, ps []param, run func(context.Context) (any, error), proxied bool) (flightResult, error) {
	return s.flights.do(ctx, key.hash(), func(cctx context.Context) (flightResult, error) {
		// Double check under the flight: a racing request may have
		// completed (and cached) this cell between our miss and this
		// flight starting. peek keeps the hit/miss counters honest —
		// the handler already recorded this request's miss.
		if body, src, ok := s.cache.peek(key); ok {
			return flightResult{body: body, src: src}, nil
		}
		// The degraded flag rides the compute context: the grid marks
		// it when a trace-store failure forces the storeless path, and
		// every waiter on this flight reports the same components.
		cctx, flag := storage.WithDegraded(cctx)
		// Cross-node single-flight: a cold cell another member owns is
		// proxied to the owner (one flight here covers all local
		// waiters; the owner's own flight group covers the fleet). An
		// unreachable or unusable owner degrades to computing locally —
		// a dead peer costs the fleet duplicate work, never an outage.
		if s.cluster != nil && !proxied {
			if owner := s.cluster.ownerOf(key.hash()); owner != s.cluster.self {
				res, final, err := s.proxyCompute(cctx, owner, key, ps)
				if err == nil {
					res.degraded = mergeDegraded(res.degraded, flag.Components())
					return res, nil
				}
				if final {
					return flightResult{}, err
				}
				storage.MarkDegraded(cctx, "peer-proxy")
				s.cluster.proxyFallbacks.Add(1)
				s.logf("proxy of %s?%s to owner %s failed (%v); computing locally", key.Experiment, key.Params, owner, err)
			}
		}
		s.computes.Add(1)
		s.logf("computing %s?%s", key.Experiment, key.Params)
		t0 := time.Now()
		v, err := run(cctx)
		if err != nil {
			s.logf("compute %s?%s failed after %v: %v", key.Experiment, key.Params, time.Since(t0), err)
			return flightResult{}, err
		}
		body, err := marshalEnvelope(key.Experiment, ps, v)
		if err != nil {
			return flightResult{}, err
		}
		if err := s.cache.Put(key, body); err != nil {
			// Serve the result anyway: a full disk degrades the cache,
			// not the response.
			storage.MarkDegraded(cctx, "result-cache")
			s.logf("result cache write for %s failed: %v", key.Experiment, err)
		}
		s.logf("computed %s?%s in %v (%d bytes)", key.Experiment, key.Params, time.Since(t0), len(body))
		return flightResult{body: body, src: "computed", degraded: flag.Components()}, nil
	})
}

// marshalEnvelope renders the canonical stored/served JSON body.
func marshalEnvelope(experiment string, ps []param, result any) ([]byte, error) {
	raw, err := json.Marshal(result)
	if err != nil {
		return nil, fmt.Errorf("service: marshaling %s result: %w", experiment, err)
	}
	body, err := json.Marshal(Envelope{
		Experiment:      experiment,
		Params:          paramMap(ps),
		EmulatorVersion: core.EmulatorVersion,
		CodecVersion:    trace.CodecVersion,
		CacheVersion:    CacheVersion,
		ResultSHA:       resultSHA(raw),
		Result:          raw,
	})
	if err != nil {
		return nil, fmt.Errorf("service: marshaling %s envelope: %w", experiment, err)
	}
	return append(body, '\n'), nil
}

// decodeResult unmarshals a cached envelope back into the entry's
// typed result.
func decodeResult(e *Experiment, body []byte) (any, error) {
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, err
	}
	v := e.fresh()
	if err := json.Unmarshal(env.Result, v); err != nil {
		return nil, err
	}
	return v, nil
}

// traceEntryBody is one /v1/traces list element.
type traceEntryBody struct {
	Key             string  `json:"key"`
	Benchmark       string  `json:"benchmark"`
	PEs             int     `json:"pes"`
	Mode            string  `json:"mode"`
	EmulatorVersion string  `json:"emulator_version"`
	Refs            int64   `json:"refs"`
	Bytes           int64   `json:"bytes"`
	BytesPerRef     float64 `json:"bytes_per_ref"`
}

func traceBody(meta trace.Meta, size int64) traceEntryBody {
	mode := "par"
	if meta.Sequential {
		mode = "seq"
	}
	k := tracestore.Key{
		Benchmark:       meta.Benchmark,
		PEs:             meta.PEs,
		Sequential:      meta.Sequential,
		EmulatorVersion: meta.EmulatorVersion,
	}
	b := traceEntryBody{
		Key:             k.String(),
		Benchmark:       meta.Benchmark,
		PEs:             meta.PEs,
		Mode:            mode,
		EmulatorVersion: meta.EmulatorVersion,
		Refs:            meta.Refs,
		Bytes:           size,
	}
	if meta.Refs > 0 {
		b.BytesPerRef = float64(size) / float64(meta.Refs)
	}
	return b
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.fail(w, http.StatusNotFound, "no trace store attached (start rapwamd with -tracedir)")
		return
	}
	entries, err := s.store.List()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "listing trace store: %v", err)
		return
	}
	out := make([]traceEntryBody, 0, len(entries))
	for _, e := range entries {
		out = append(out, traceBody(e.Meta, e.Bytes))
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleTrace serves one trace cell's metadata:
// /v1/traces/{bench}?pes=N&mode=par|seq. It never generates — a
// missing cell is a 404 (warm it with tracegen or by requesting an
// experiment that needs it).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.fail(w, http.StatusNotFound, "no trace store attached (start rapwamd with -tracedir)")
		return
	}
	name := r.PathValue("bench")
	if _, ok := bench.ByName(name); !ok {
		s.fail(w, http.StatusNotFound, "unknown benchmark %q", name)
		return
	}
	q := r.URL.Query()
	pes, err := intParam(q, "pes", 1, 1, trace.MaxPEs)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode := q.Get("mode")
	if mode == "" {
		mode = "par"
	}
	if mode != "par" && mode != "seq" {
		s.fail(w, http.StatusBadRequest, "parameter mode=%q: need par or seq", mode)
		return
	}
	k := bench.StoreKey(name, pes, mode == "seq")
	meta, size, err := s.store.Meta(k)
	if err != nil {
		s.fail(w, http.StatusNotFound, "trace %v not stored: %v", k, err)
		return
	}
	writeJSON(w, http.StatusOK, traceBody(meta, size))
}

// ScrubSummary reports one Server.Scrub pass across both stores.
type ScrubSummary struct {
	// TraceReport is the trace store's scrub result (zero when no
	// store is attached).
	TraceReport tracestore.ScrubReport
	// CacheReport is the result cache's scrub result.
	CacheReport CacheScrubReport
	// Swept counts stale temps and aged quarantined objects removed.
	Swept int
}

// Scrub verifies every object in the trace store and result cache,
// quarantining whatever fails (counted in /v1/stats), and sweeps
// stale temps and aged quarantine entries. It is what the background
// scrubber runs on its interval and what `tracegen verify -repair`
// builds on.
func (s *Server) Scrub() ScrubSummary {
	tempAge := s.cfg.StaleTempAge
	if tempAge <= 0 {
		tempAge = tracestore.StaleTempAge
	}
	var sum ScrubSummary
	sum.CacheReport = s.cache.Scrub()
	sum.Swept += s.cache.Sweep(tempAge)
	if s.store != nil {
		sum.TraceReport = s.store.Scrub()
		sum.Swept += s.store.Sweep(tempAge)
	}
	if n := len(sum.TraceReport.Quarantined) + len(sum.CacheReport.Quarantined); n > 0 || sum.Swept > 0 {
		s.logf("scrub: %d checked, %d quarantined, %d swept",
			sum.TraceReport.Checked+sum.CacheReport.Checked, n, sum.Swept)
	}
	return sum
}

// Serve runs the server on ln (or, when ln is nil, on addr) until ctx
// is cancelled, then shuts down gracefully: cancelling ctx cancels
// every in-flight request context (BaseContext), which aborts their
// grid computations end to end, so the drain completes quickly. When
// Config.ScrubInterval is positive a background scrubber runs
// alongside. A clean ctx-initiated shutdown returns nil.
func Serve(ctx context.Context, addr string, ln net.Listener, s *Server, drain time.Duration) error {
	if drain <= 0 {
		drain = 5 * time.Second
	}
	if s.cfg.ScrubInterval > 0 {
		go func() {
			t := time.NewTicker(s.cfg.ScrubInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					s.Scrub()
				}
			}
		}()
	}
	hs := &http.Server{
		Addr:        addr,
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- hs.Serve(ln)
		} else {
			errc <- hs.ListenAndServe()
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		//rapwam:allow ctxfirst shutdown drain must outlive the cancelled base context that triggered it
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := hs.Shutdown(sctx)
		<-errc // http.ErrServerClosed
		if err != nil {
			return fmt.Errorf("service: shutdown: %w", err)
		}
		return nil
	}
}
